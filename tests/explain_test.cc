// EXPLAIN ANALYZE plan profiles: collection on a real SSSP job, tuple
// conservation across every connector, spill accounting under small and
// large group-by budgets, deterministic JSON export, and the stall
// watchdog.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/metrics_registry.h"
#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dataflow/plan_profile.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "pregel/runtime.h"
#include "pregel/watchdog.h"

namespace pregelix {
namespace {

/// One disposable environment per run, so back-to-back runs share nothing
/// (the determinism test depends on that).
struct TestEnv {
  explicit TestEnv(size_t groupby_budget = 0) : dir("explain-test"),
                                            dfs(dir.Sub("dfs")) {
    config.num_workers = 2;
    config.partitions_per_worker = 2;
    config.worker_ram_bytes = 8u << 20;
    config.frame_size = 8 * 1024;
    if (groupby_budget != 0) config.groupby_memory_bytes = groupby_budget;
    config.temp_root = dir.Sub("cluster");
    cluster = std::make_unique<SimulatedCluster>(config);
    runtime = std::make_unique<PregelixRuntime>(cluster.get(), &dfs);
    GraphStats stats;
    EXPECT_TRUE(
        GenerateWebmapLike(dfs, "input/g", 3, 800, 6.0, 42, &stats).ok());
  }

  JobResult Sssp(JoinStrategy join = JoinStrategy::kFullOuter) {
    SsspProgram program(1);
    SsspProgram::Adapter adapter(&program);
    PregelixJobConfig job;
    job.name = "explain-sssp";
    job.input_dir = "input/g";
    job.join = join;
    job.profile_plan = true;
    JobResult result;
    Status s = runtime->Run(&adapter, job, &result);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return result;
  }

  TempDir dir;
  DistributedFileSystem dfs;
  ClusterConfig config;
  std::unique_ptr<SimulatedCluster> cluster;
  std::unique_ptr<PregelixRuntime> runtime;
};

TEST(ExplainTest, ProfileCollectedWithPaperLabels) {
  TestEnv run;
  const JobResult result = run.Sssp();
  ASSERT_GT(result.supersteps, 1);

  ASSERT_NE(result.plan_profile, nullptr);
  const PlanProfile& profile = *result.plan_profile;
  EXPECT_EQ(profile.supersteps_merged(),
            static_cast<int>(result.supersteps));
  ASSERT_FALSE(profile.ops().empty());
  ASSERT_FALSE(profile.edges().empty());

  bool saw_compute = false;
  bool saw_combine = false;
  bool saw_global = false;
  bool saw_resolve = false;
  for (const PlanOperatorProfile& op : profile.ops()) {
    if (op.name == "compute-full-outer-join") {
      saw_compute = true;
      // Paper vocabulary attached (Figures 3-5, 8).
      EXPECT_NE(op.label.find("full-outer scan-merge"), std::string::npos);
      EXPECT_GT(op.total.activations, 0u);
      EXPECT_GT(op.total.tuples_out, 0u);
      EXPECT_GT(op.total.wall_ns, 0u);
      EXPECT_GE(op.skew, 1.0);
    }
    if (op.name == "combine-msgs") {
      saw_combine = true;
      EXPECT_NE(op.label.find("D3"), std::string::npos);
      EXPECT_GT(op.total.tuples_in, 0u);
      EXPECT_GT(op.total.mem_hwm_bytes, 0u);
    }
    if (op.name == "global-agg") saw_global = true;
    if (op.name == "resolve") saw_resolve = true;
  }
  EXPECT_TRUE(saw_compute);
  EXPECT_TRUE(saw_combine);
  EXPECT_TRUE(saw_global);
  EXPECT_TRUE(saw_resolve);

  // A non-empty critical path through the timed plan.
  EXPECT_GT(profile.wall_ns(), 0u);
  EXPECT_FALSE(profile.critical_path().empty());
  EXPECT_GT(profile.critical_path_wall_ns(), 0u);

  // Every superstep carried its own profile, and the render has content.
  for (const SuperstepStats& s : result.superstep_stats) {
    ASSERT_NE(s.profile, nullptr);
    EXPECT_GT(s.bytes_shuffled, 0u);
  }
  std::ostringstream tree;
  profile.RenderTree(tree);
  EXPECT_NE(tree.str().find("compute-full-outer-join"), std::string::npos);
  EXPECT_NE(tree.str().find("critical path"), std::string::npos);
}

TEST(ExplainTest, TupleConservationAcrossEveryConnector) {
  TestEnv run;
  const JobResult result = run.Sssp(JoinStrategy::kAdaptive);
  ASSERT_NE(result.plan_profile, nullptr);

  // Cumulative and per-superstep: what a connector's producers appended is
  // exactly what its consumers saw (the executor drains channels even when
  // a consumer finishes early, so nothing leaks).
  for (const PlanEdgeProfile& e : result.plan_profile->edges()) {
    EXPECT_EQ(e.tuples_sent, e.tuples_recv)
        << e.src_name << " -> " << e.dst_name << " ["
        << ConnectorKindName(e.kind) << "]";
  }
  for (const SuperstepStats& s : result.superstep_stats) {
    ASSERT_NE(s.profile, nullptr);
    for (const PlanEdgeProfile& e : s.profile->edges()) {
      EXPECT_EQ(e.tuples_sent, e.tuples_recv)
          << "superstep " << s.superstep << ": " << e.src_name << " -> "
          << e.dst_name;
    }
  }
}

TEST(ExplainTest, NoSpillsWithAmpleBudget) {
  TestEnv run;  // default budget: 8 MB / 16 = 512 KB per group-by
  const JobResult result = run.Sssp();
  ASSERT_NE(result.plan_profile, nullptr);
  EXPECT_EQ(result.plan_profile->TotalSpillCount(), 0u);
  EXPECT_EQ(result.plan_profile->TotalSpillBytes(), 0u);
}

TEST(ExplainTest, SpillsSurfaceUnderTinyBudget) {
  TestEnv run(/*groupby_budget=*/8 * 1024);
  const JobResult result = run.Sssp();
  ASSERT_NE(result.plan_profile, nullptr);
  EXPECT_GT(result.plan_profile->TotalSpillCount(), 0u);
  EXPECT_GT(result.plan_profile->TotalSpillBytes(), 0u);
  // The spills land on the group-by/sort operators and carry a memory
  // high-water mark from the spill boundary.
  bool attributed = false;
  for (const PlanOperatorProfile& op : result.plan_profile->ops()) {
    if (op.total.spill_count > 0) {
      attributed = true;
      EXPECT_GT(op.total.spill_bytes, 0u) << op.name;
      EXPECT_GT(op.total.mem_hwm_bytes, 0u) << op.name;
    }
  }
  EXPECT_TRUE(attributed);
}

TEST(ExplainTest, ProfileJsonIsByteIdenticalAcrossRuns) {
  std::string first;
  std::string second;
  {
    TestEnv run;
    const JobResult result = run.Sssp();
    ASSERT_NE(result.plan_profile, nullptr);
    std::ostringstream os;
    result.plan_profile->WriteJson(os, /*include_timing=*/false);
    first = os.str();
  }
  {
    TestEnv run;
    const JobResult result = run.Sssp();
    ASSERT_NE(result.plan_profile, nullptr);
    std::ostringstream os;
    result.plan_profile->WriteJson(os, /*include_timing=*/false);
    second = os.str();
  }
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // The timing-free export must not leak any wall-clock field.
  EXPECT_EQ(first.find("wall_ns"), std::string::npos);
  EXPECT_EQ(first.find("skew"), std::string::npos);
  EXPECT_EQ(first.find("critical_path"), std::string::npos);
}

TEST(ExplainTest, ProfilingOffLeavesNoProfileBehind) {
  TestEnv run;
  SsspProgram program(1);
  SsspProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "no-profile";
  job.input_dir = "input/g";
  job.profile_plan = false;
  JobResult result;
  ASSERT_TRUE(run.runtime->Run(&adapter, job, &result).ok());
  EXPECT_EQ(result.plan_profile, nullptr);
  for (const SuperstepStats& s : result.superstep_stats) {
    EXPECT_EQ(s.profile, nullptr);
    EXPECT_EQ(s.spill_count, 0u);
  }
}

TEST(ExplainTest, StallWatchdogFlagsARunawaySuperstep) {
  MetricsRegistry registry;
  StallWatchdog watchdog(/*factor=*/2.0, &registry, "wd-test");
  // Three fast samples build the trailing mean (~2 ms each).
  for (int64_t s = 1; s <= 3; ++s) {
    watchdog.Arm(s);
    watchdog.Disarm(2'000'000);
  }
  EXPECT_EQ(watchdog.stall_count(), 0);
  // Superstep 4 blows through 2x the 2 ms mean while still "running".
  watchdog.Arm(4);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (watchdog.stall_count() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  watchdog.Disarm(60'000'000);
  EXPECT_EQ(watchdog.stall_count(), 1);
  EXPECT_EQ(registry.CounterValue("pregelix.pregel.stalls",
                                  MetricLabels{{"job", "wd-test"}}),
            1u);
  EXPECT_EQ(registry.GaugeValue("pregelix.pregel.superstep_stalled",
                                MetricLabels{{"job", "wd-test"}}),
            4);

  // Disabled watchdog: no thread, Arm/Disarm are no-ops.
  StallWatchdog off(/*factor=*/0.0, &registry, "wd-off");
  off.Arm(1);
  off.Disarm(1);
  EXPECT_EQ(off.stall_count(), 0);
}

}  // namespace
}  // namespace pregelix
