// Crash-recovery torture harness (ISSUE headline deliverable).
//
// Each schedule is derived from one RNG seed: it picks a checkpoint
// cadence, a number of simulated driver crashes, and for each crash a fault
// point and a target superstep. The job is run until a crash kills it, then
// resumed by job_id in a fresh "process" (new SimulatedCluster + runtime
// over the same DFS), crashed again, ... until the schedule is exhausted
// and a final resume completes. The dumped output must be BYTE-IDENTICAL
// to an undisturbed run of the same plan: recovery is only correct if it is
// invisible in the result.
//
// Determinism notes: SSSP's min-combiner is insensitive to message order,
// so every physical plan is fair game. PageRank sums floating-point
// contributions, so its schedules pin GroupByConnector::kMerged (the
// merging connector's tie-break makes the fold order reproducible).

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/fault_injection.h"
#include "common/random.h"
#include "common/temp_dir.h"
#include "common/time_ledger.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "graph/text_io.h"
#include "pregel/runtime.h"

namespace pregelix {
namespace {

using fault::Action;
using fault::FaultInjector;
using fault::FaultSpec;

/// Fault points a schedule may crash at. All unwind Status::Aborted through
/// the superstep loop; superstep scoping keeps them out of load/recovery.
const char* const kCrashPoints[] = {
    "pregel.gs.write",    "channel.send",
    "channel.recv",       "io.file.write",
    "io.run_file.append", "pregel.checkpoint.file",
    "pregel.checkpoint.manifest", "pregel.dump",
};
constexpr size_t kNumCrashPoints =
    sizeof(kCrashPoints) / sizeof(kCrashPoints[0]);

struct Plan {
  JoinStrategy join;
  GroupByStrategy groupby;
  GroupByConnector connector;
  VertexStorage storage;
};

std::string PlanKey(const Plan& plan) {
  return std::to_string(static_cast<int>(plan.join)) +
         std::to_string(static_cast<int>(plan.groupby)) +
         std::to_string(static_cast<int>(plan.connector)) +
         std::to_string(static_cast<int>(plan.storage));
}

class TortureTest : public ::testing::Test {
 protected:
  TortureTest() : dfs_(dir_.Sub("dfs")) {
    FaultInjector::Global().Reset();
    GraphStats stats;
    EXPECT_TRUE(GenerateBtcLike(dfs_, "input", 3, 400, 6.0, 21, &stats).ok());
    // Lollipop graph for the plan-switch schedules: a star head plus a long
    // path tail. SSSP from vertex 0 settles the head in two supersteps and
    // then walks the tail one vertex per superstep — a guaranteed sparse
    // frontier, so the kAuto join deterministically flips to left-outer.
    InMemoryGraph lollipop;
    constexpr int64_t kHead = 100, kTail = 30;
    lollipop.adj.resize(kHead + kTail);
    for (int64_t v = 1; v < kHead; ++v) {
      lollipop.adj[0].push_back(v);
      lollipop.adj[v].push_back(0);
    }
    for (int64_t i = 0; i < kTail; ++i) {
      const int64_t v = kHead + i;
      const int64_t prev = i == 0 ? kHead - 1 : v - 1;
      lollipop.adj[prev].push_back(v);
      lollipop.adj[v].push_back(prev);
    }
    EXPECT_TRUE(WriteGraph(dfs_, "lollipop", lollipop, 3).ok());
  }
  ~TortureTest() override {
    FaultInjector::Global().Reset();
    // Time-ledger conservation under crash torture (DESIGN.md §20): every
    // fault unwind must still settle every attached nanosecond into exactly
    // one bucket. Debug builds demand exact zero; release tolerates a sliver
    // in case a future platform's clock plays games.
    const TimeLedgerSnapshot ledger = TimeLedger::Global().TakeSnapshot();
    EXPECT_EQ(ledger.misuse_count, 0);
#ifndef NDEBUG
    EXPECT_EQ(ledger.unattributed_ns, 0);
#else
    EXPECT_LE(ledger.unattributed_ns, 1'000'000);
#endif
  }

  /// One job execution in a fresh simulated process.
  Status RunOnce(bool pagerank, const Plan& plan, PregelixJobConfig job,
                 JobResult* result) {
    job.join = plan.join;
    job.groupby = plan.groupby;
    job.groupby_connector = plan.connector;
    job.storage = plan.storage;
    ClusterConfig config;
    config.num_workers = 3;
    config.worker_ram_bytes = 8u << 20;
    config.temp_root = dir_.Sub("cluster-" + std::to_string(run_counter_++));
    SimulatedCluster cluster(config);
    PregelixRuntime runtime(&cluster, &dfs_);
    if (pagerank) {
      PageRankProgram program(5);
      PageRankProgram::Adapter adapter(&program);
      return runtime.Run(&adapter, job, result);
    }
    SsspProgram program(0);
    SsspProgram::Adapter adapter(&program);
    return runtime.Run(&adapter, job, result);
  }

  std::map<std::string, std::string> ReadOutput(const std::string& out_dir) {
    std::map<std::string, std::string> files;
    std::vector<std::string> names;
    EXPECT_TRUE(dfs_.List(out_dir, &names).ok()) << out_dir;
    for (const std::string& name : names) {
      EXPECT_TRUE(dfs_.Read(out_dir + "/" + name, &files[name]).ok());
    }
    return files;
  }

  /// Output bytes of an undisturbed run, computed once per (algorithm, plan).
  const std::map<std::string, std::string>& Baseline(bool pagerank,
                                                     const Plan& plan) {
    const std::string key = (pagerank ? "pr-" : "sssp-") + PlanKey(plan);
    auto it = baselines_.find(key);
    if (it != baselines_.end()) return it->second;
    PregelixJobConfig job;
    job.name = "baseline-" + key;
    job.input_dir = "input";
    job.output_dir = "out-baseline-" + key;
    JobResult result;
    Status s = RunOnce(pagerank, plan, job, &result);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return baselines_[key] = ReadOutput(job.output_dir);
  }

  /// Runs one seeded crash schedule end to end and compares the recovered
  /// output byte-for-byte against the undisturbed baseline. When
  /// `point_override` is set every crash in the schedule is pinned to that
  /// fault point instead of drawing one from kCrashPoints.
  void RunSchedule(uint64_t seed, bool pagerank, const Plan& plan,
                   const char* point_override = nullptr) {
    SCOPED_TRACE("schedule seed " + std::to_string(seed) + " plan " +
                 PlanKey(plan));
    const std::map<std::string, std::string>& baseline =
        Baseline(pagerank, plan);
    ASSERT_FALSE(baseline.empty());

    Random rnd(seed);
    PregelixJobConfig job;
    job.name = "torture";
    job.job_id = "torture-" + std::to_string(seed);
    job.input_dir = "input";
    job.output_dir = "out-torture-" + std::to_string(seed);
    job.checkpoint_interval = 1 + static_cast<int>(rnd.Uniform(2));
    // Crash targets land inside the job's actual superstep range.
    const uint64_t superstep_range = pagerank ? 6 : 8;
    const int crashes = 1 + static_cast<int>(rnd.Uniform(3));

    bool done = false;
    for (int i = 0; i < crashes && !done; ++i) {
      FaultSpec spec;
      spec.action = Action::kCrash;
      spec.scope_superstep =
          1 + static_cast<int64_t>(rnd.Uniform(superstep_range));
      const char* point = point_override != nullptr
                              ? point_override
                              : kCrashPoints[rnd.Uniform(kNumCrashPoints)];
      FaultInjector::Global().Arm(point, spec);
      job.resume = i > 0;
      JobResult result;
      Status s = RunOnce(pagerank, plan, job, &result);
      FaultInjector::Global().Reset();
      if (s.ok()) {
        // The crash superstep was never reached (job halted first, or a
        // resume started past it): the job simply finished.
        done = true;
        break;
      }
      ASSERT_TRUE(s.IsAborted())
          << "crash at " << point << " superstep " << spec.scope_superstep
          << " surfaced as a non-crash error: " << s.ToString();
      ++crashes_fired_;
    }
    if (!done) {
      job.resume = true;
      JobResult result;
      Status s = RunOnce(pagerank, plan, job, &result);
      ASSERT_TRUE(s.ok()) << "final resume failed: " << s.ToString();
    }

    const std::map<std::string, std::string> got = ReadOutput(job.output_dir);
    ASSERT_EQ(got.size(), baseline.size());
    for (const auto& [name, bytes] : baseline) {
      auto found = got.find(name);
      ASSERT_TRUE(found != got.end()) << "missing output file " << name;
      EXPECT_TRUE(found->second == bytes)
          << "output file " << name << " differs from the undisturbed run ("
          << found->second.size() << " vs " << bytes.size() << " bytes)";
    }
  }

  TempDir dir_{"torture-test"};
  DistributedFileSystem dfs_;
  std::map<std::string, std::map<std::string, std::string>> baselines_;
  int run_counter_ = 0;
  /// Jobs actually killed mid-run across all schedules. A schedule whose
  /// crash superstep is never reached contributes nothing; the per-suite
  /// assertions below keep the harness honest about exercising recovery.
  int crashes_fired_ = 0;
};

TEST_F(TortureTest, SsspSurvivesTwelveRandomizedCrashSchedules) {
  const Plan plans[] = {
      {JoinStrategy::kFullOuter, GroupByStrategy::kSort,
       GroupByConnector::kUnmerged, VertexStorage::kBTree},
      {JoinStrategy::kLeftOuter, GroupByStrategy::kSort,
       GroupByConnector::kMerged, VertexStorage::kLsmBTree},
      {JoinStrategy::kFullOuter, GroupByStrategy::kHashSort,
       GroupByConnector::kMerged, VertexStorage::kBTree},
      {JoinStrategy::kLeftOuter, GroupByStrategy::kHashSort,
       GroupByConnector::kUnmerged, VertexStorage::kLsmBTree},
  };
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    ASSERT_NO_FATAL_FAILURE(
        RunSchedule(seed, /*pagerank=*/false, plans[(seed - 1) % 4]));
  }
  // The schedules must actually kill jobs, not just arm faults that never
  // fire — otherwise this suite degenerates to a plain correctness test.
  EXPECT_GE(crashes_fired_, 8) << "too few schedules crashed mid-run";
}

// Crash schedules against the feedback-driven chooser: the recovered
// process rebuilds its optimizer from scratch, so the post-resume plan
// trajectory may differ from the undisturbed run — the output must not.
// SSSP's min-combiner makes its bytes plan-independent, so the all-kAuto
// baseline comparison stays byte-exact whatever the chooser does.
TEST_F(TortureTest, SsspAutoPlanSurvivesRandomizedCrashSchedules) {
  const Plan auto_plan = {JoinStrategy::kAuto, GroupByStrategy::kAuto,
                          GroupByConnector::kAuto, VertexStorage::kAuto};
  for (uint64_t seed = 51; seed <= 56; ++seed) {
    ASSERT_NO_FATAL_FAILURE(
        RunSchedule(seed, /*pagerank=*/false, auto_plan));
  }
  EXPECT_GE(crashes_fired_, 4) << "too few schedules crashed mid-run";
}

// The targeted schedule of the ISSUE: crash exactly at the plan-switch
// boundary (the `pregel.plan.switch` fault point fires on the first
// superstep whose plan differs from the last). Recovery restarts from the
// latest checkpoint with a fresh optimizer and must still produce bytes
// identical to the undisturbed kAuto run.
TEST_F(TortureTest, CrashAtThePlanSwitchBoundaryRecoversByteIdentically) {
  const Plan auto_plan = {JoinStrategy::kAuto, GroupByStrategy::kAuto,
                          GroupByConnector::kAuto, VertexStorage::kBTree};

  PregelixJobConfig base;
  base.name = "switch-baseline";
  base.input_dir = "lollipop";
  base.output_dir = "out-switch-baseline";
  JobResult base_result;
  ASSERT_TRUE(RunOnce(/*pagerank=*/false, auto_plan, base, &base_result).ok());
  // The schedule is only meaningful if the undisturbed run switches plans.
  bool switched = false;
  for (const PlanDecisionRecord& r : base_result.plan_decisions) {
    switched = switched || !r.switched.empty();
  }
  ASSERT_TRUE(switched)
      << "kAuto never switched plans on the lollipop graph; the crash "
         "below would never fire";
  const std::map<std::string, std::string> baseline =
      ReadOutput(base.output_dir);
  ASSERT_FALSE(baseline.empty());

  PregelixJobConfig job;
  job.name = "switch-crash";
  job.job_id = "switch-crash";
  job.input_dir = "lollipop";
  job.output_dir = "out-switch-crash";
  job.checkpoint_interval = 2;
  FaultSpec spec;
  spec.action = Action::kCrash;  // unscoped: fires at the first switch
  FaultInjector::Global().Arm("pregel.plan.switch", spec);
  JobResult result;
  Status s = RunOnce(/*pagerank=*/false, auto_plan, job, &result);
  const auto stats = FaultInjector::Global().Stats("pregel.plan.switch");
  FaultInjector::Global().Reset();
  ASSERT_TRUE(s.IsAborted()) << s.ToString();
  ASSERT_GE(stats.fires, 1u);

  job.resume = true;
  s = RunOnce(/*pagerank=*/false, auto_plan, job, &result);
  ASSERT_TRUE(s.ok()) << "resume across the plan switch failed: "
                      << s.ToString();

  const std::map<std::string, std::string> got = ReadOutput(job.output_dir);
  ASSERT_EQ(got.size(), baseline.size());
  for (const auto& [name, bytes] : baseline) {
    auto found = got.find(name);
    ASSERT_TRUE(found != got.end()) << "missing output file " << name;
    EXPECT_TRUE(found->second == bytes)
        << "output file " << name << " differs from the undisturbed run ("
        << found->second.size() << " vs " << bytes.size() << " bytes)";
  }
}

TEST_F(TortureTest, PageRankSurvivesEightRandomizedCrashSchedules) {
  // The kAuto arm pins the connector merged: PageRank sums floats, and only
  // the merging connector's tie-break makes the fold order reproducible
  // (the chooser is free to pick join and group-by).
  const Plan plans[] = {
      {JoinStrategy::kFullOuter, GroupByStrategy::kSort,
       GroupByConnector::kMerged, VertexStorage::kBTree},
      {JoinStrategy::kFullOuter, GroupByStrategy::kHashSort,
       GroupByConnector::kMerged, VertexStorage::kLsmBTree},
      {JoinStrategy::kAuto, GroupByStrategy::kAuto,
       GroupByConnector::kMerged, VertexStorage::kAuto},
  };
  for (uint64_t seed = 101; seed <= 108; ++seed) {
    ASSERT_NO_FATAL_FAILURE(
        RunSchedule(seed, /*pagerank=*/true, plans[(seed - 101) % 3]));
  }
  EXPECT_GE(crashes_fired_, 5) << "too few schedules crashed mid-run";
}

// Crash schedules pinned to the overlap pipeline's background fault points
// (DESIGN.md §19). io.writebehind.flush fires on the write-behind worker —
// inside async run-file appends and deferred LSM component flushes;
// io.prefetch.read fires on the read-ahead pool. Both latch into their
// ticket/slot and only surface at the next Await / WaitTicket / Drain
// barrier, so these schedules prove a crash on a *background* thread
// unwinds and recovers exactly like a foreground one. The LSM plans also
// exercise the deferred-flush rollback: a component whose flush dies before
// the CURRENT commit must vanish on recovery.
TEST_F(TortureTest, BackgroundOverlapCrashesRecoverByteIdentically) {
  const Plan plans[] = {
      {JoinStrategy::kFullOuter, GroupByStrategy::kSort,
       GroupByConnector::kUnmerged, VertexStorage::kLsmBTree},
      {JoinStrategy::kLeftOuter, GroupByStrategy::kHashSort,
       GroupByConnector::kMerged, VertexStorage::kLsmBTree},
      {JoinStrategy::kFullOuter, GroupByStrategy::kHashSort,
       GroupByConnector::kUnmerged, VertexStorage::kBTree},
  };
  const char* const kOverlapPoints[] = {"io.writebehind.flush",
                                        "io.prefetch.read"};
  for (uint64_t seed = 201; seed <= 208; ++seed) {
    ASSERT_NO_FATAL_FAILURE(RunSchedule(seed, /*pagerank=*/false,
                                        plans[(seed - 201) % 3],
                                        kOverlapPoints[seed % 2]));
  }
  EXPECT_GE(crashes_fired_, 4) << "too few schedules crashed mid-run";
}

// A torn write-behind append: the fault truncates the block mid-flush on
// the background worker and latches kIoError into the ticket. The per-file
// drain barrier in RunFileWriter::Finish must surface it — a half-written
// run must never be silently committed — so the job fails like any
// synchronous I/O error, and a resume from the previous checkpoint is
// byte-identical: the torn prefix that did reach disk is invisible after
// recovery. Superstep 3 sits between checkpoints (interval 2) and runs no
// checkpoint job of its own, so the scoped fire deterministically lands in
// a superstep writer rather than inside the checkpoint's retry loop.
TEST_F(TortureTest, TornWriteBehindSurfacesAtFinishAndResumesByteIdentically) {
  const Plan plan = {JoinStrategy::kFullOuter, GroupByStrategy::kSort,
                     GroupByConnector::kUnmerged, VertexStorage::kLsmBTree};
  const std::map<std::string, std::string>& baseline =
      Baseline(/*pagerank=*/false, plan);
  ASSERT_FALSE(baseline.empty());

  PregelixJobConfig job;
  job.name = "torn-writebehind";
  job.job_id = "torn-writebehind";
  job.input_dir = "input";
  job.output_dir = "out-torn-writebehind";
  job.checkpoint_interval = 2;
  FaultSpec spec;
  spec.action = Action::kTornWrite;
  spec.scope_superstep = 3;
  spec.max_fires = 1;
  FaultInjector::Global().Arm("io.writebehind.flush", spec);
  JobResult result;
  Status s = RunOnce(/*pagerank=*/false, plan, job, &result);
  const auto stats = FaultInjector::Global().Stats("io.writebehind.flush");
  FaultInjector::Global().Reset();
  ASSERT_GE(stats.fires, 1u) << "the torn write never fired";
  ASSERT_FALSE(s.ok()) << "a torn write-behind block went undetected";
  ASSERT_FALSE(s.IsAborted())
      << "torn write surfaced as a crash, not an I/O error: " << s.ToString();

  job.resume = true;
  s = RunOnce(/*pagerank=*/false, plan, job, &result);
  ASSERT_TRUE(s.ok()) << "resume after torn write failed: " << s.ToString();

  const std::map<std::string, std::string> got = ReadOutput(job.output_dir);
  ASSERT_EQ(got.size(), baseline.size());
  for (const auto& [name, bytes] : baseline) {
    auto found = got.find(name);
    ASSERT_TRUE(found != got.end()) << "missing output file " << name;
    EXPECT_TRUE(found->second == bytes)
        << "output file " << name << " differs from the undisturbed run ("
        << found->second.size() << " vs " << bytes.size() << " bytes)";
  }
}

}  // namespace
}  // namespace pregelix
