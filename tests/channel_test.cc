#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/serde.h"
#include "common/temp_dir.h"
#include "dataflow/channel.h"
#include "dataflow/tuple_run.h"

namespace pregelix {
namespace {

class ChannelTest : public ::testing::Test {
 protected:
  TempDir dir_{"channel-test"};
  std::atomic<bool> abort_{false};
};

TEST_F(ChannelTest, PipelinedFifoSingleSender) {
  FrameChannel channel(4, FrameChannel::Policy::kPipelined, "", nullptr,
                       &abort_, 1);
  ASSERT_TRUE(channel.Put("one").ok());
  ASSERT_TRUE(channel.Put("two").ok());
  ASSERT_TRUE(channel.CloseSender().ok());
  std::string frame;
  ASSERT_TRUE(channel.Get(&frame));
  EXPECT_EQ(frame, "one");
  ASSERT_TRUE(channel.Get(&frame));
  EXPECT_EQ(frame, "two");
  EXPECT_FALSE(channel.Get(&frame));
}

TEST_F(ChannelTest, BackpressureBlocksThenDrains) {
  FrameChannel channel(2, FrameChannel::Policy::kPipelined, "", nullptr,
                       &abort_, 1);
  std::atomic<int> sent{0};
  std::thread sender([&]() {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(channel.Put("frame-" + std::to_string(i)).ok());
      sent.fetch_add(1);
    }
    ASSERT_TRUE(channel.CloseSender().ok());
  });
  int received = 0;
  std::string frame;
  while (channel.Get(&frame)) {
    EXPECT_EQ(frame, "frame-" + std::to_string(received));
    ++received;
  }
  sender.join();
  EXPECT_EQ(received, 100);
  EXPECT_EQ(sent.load(), 100);
}

TEST_F(ChannelTest, MultipleSendersAllClose) {
  FrameChannel channel(8, FrameChannel::Policy::kPipelined, "", nullptr,
                       &abort_, 3);
  std::vector<std::thread> senders;
  for (int s = 0; s < 3; ++s) {
    senders.emplace_back([&channel, s]() {
      for (int i = 0; i < 10; ++i) {
        ASSERT_TRUE(channel.Put("s" + std::to_string(s)).ok());
      }
      ASSERT_TRUE(channel.CloseSender().ok());
    });
  }
  int received = 0;
  std::string frame;
  while (channel.Get(&frame)) ++received;
  for (auto& t : senders) t.join();
  EXPECT_EQ(received, 30);
}

TEST_F(ChannelTest, AbortUnblocksSender) {
  FrameChannel channel(1, FrameChannel::Policy::kPipelined, "", nullptr,
                       &abort_, 1);
  ASSERT_TRUE(channel.Put("fills-the-queue").ok());
  std::thread aborter([this]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    abort_.store(true);
  });
  Status s = channel.Put("blocks-until-abort");
  EXPECT_TRUE(s.IsAborted());
  aborter.join();
}

TEST_F(ChannelTest, AbortUnblocksReceiver) {
  FrameChannel channel(4, FrameChannel::Policy::kPipelined, "", nullptr,
                       &abort_, 1);
  std::thread aborter([this]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    abort_.store(true);
  });
  std::string frame;
  EXPECT_FALSE(channel.Get(&frame));  // no sender ever closes
  aborter.join();
}

TEST_F(ChannelTest, MaterializingSpillsAndReplays) {
  WorkerMetrics metrics;
  FrameChannel channel(2, FrameChannel::Policy::kSenderMaterialize,
                       dir_.path() + "/spill", &metrics, &abort_, 1);
  // Far more frames than capacity: materializing never blocks.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(channel.Put("frame-" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(channel.CloseSender().ok());
  std::string frame;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(channel.Get(&frame));
    EXPECT_EQ(frame, "frame-" + std::to_string(i));
  }
  EXPECT_FALSE(channel.Get(&frame));
  // The spill traffic was metered against the sender.
  EXPECT_GT(metrics.Snapshot().disk_write_bytes, 0u);
  EXPECT_GT(metrics.Snapshot().disk_read_bytes, 0u);
}

TEST_F(ChannelTest, MaterializingEmptyStream) {
  FrameChannel channel(2, FrameChannel::Policy::kSenderMaterialize,
                       dir_.path() + "/empty", nullptr, &abort_, 1);
  ASSERT_TRUE(channel.CloseSender().ok());
  std::string frame;
  EXPECT_FALSE(channel.Get(&frame));
}

TEST(TupleRunTest, WriteReadRoundTrip) {
  TempDir dir("tuple-run");
  WorkerMetrics metrics;
  TupleRunWriter writer(dir.path() + "/r", 512, 2, &metrics);
  for (int i = 0; i < 300; ++i) {
    const std::string key = OrderedKeyI64(i);
    const std::string payload = "p" + std::to_string(i);
    const Slice fields[2] = {Slice(key), Slice(payload)};
    ASSERT_TRUE(writer.Append(fields).ok());
  }
  ASSERT_TRUE(writer.Finish().ok());
  EXPECT_EQ(writer.count(), 300u);

  TupleRunReader reader(dir.path() + "/r", 2, &metrics);
  ASSERT_TRUE(reader.Init().ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(reader.Valid());
    EXPECT_EQ(DecodeOrderedI64(reader.field(0).data()), i);
    EXPECT_EQ(reader.field(1).ToString(), "p" + std::to_string(i));
    ASSERT_TRUE(reader.Next().ok());
  }
  EXPECT_FALSE(reader.Valid());
}

TEST(TupleRunTest, MissingFileIsEmpty) {
  TupleRunReader reader("/nonexistent/path/run", 2, nullptr);
  ASSERT_TRUE(reader.Init().ok());
  EXPECT_FALSE(reader.Valid());
}

TEST(TupleRunTest, EmptyRunIsValidRelation) {
  TempDir dir("tuple-run-empty");
  TupleRunWriter writer(dir.path() + "/e", 512, 2, nullptr);
  ASSERT_TRUE(writer.Finish().ok());  // no appends
  TupleRunReader reader(dir.path() + "/e", 2, nullptr);
  ASSERT_TRUE(reader.Init().ok());
  EXPECT_FALSE(reader.Valid());
}

}  // namespace
}  // namespace pregelix
