#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/event_journal.h"
#include "common/temp_dir.h"
#include "io/file.h"
#include "pregel/plan_optimizer.h"
#include "pregel/state.h"

namespace pregelix {
namespace {

using fault::Action;
using fault::FaultInjector;
using fault::FaultSpec;
using fault::Trigger;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

TEST_F(FaultInjectionTest, DisarmedIsOk) {
  EXPECT_FALSE(FaultInjector::Global().any_armed());
  EXPECT_TRUE(fault::MaybeFail("io.file.write").ok());
  // An unarmed injector records nothing.
  EXPECT_EQ(FaultInjector::Global().Stats("io.file.write").hits, 0u);
}

TEST_F(FaultInjectionTest, NthHitFiresExactlyOnce) {
  FaultSpec spec;
  spec.trigger = Trigger::kNthHit;
  spec.n = 3;
  FaultInjector::Global().Arm("p", spec);
  EXPECT_TRUE(fault::MaybeFail("p").ok());
  EXPECT_TRUE(fault::MaybeFail("p").ok());
  Status s = fault::MaybeFail("p");
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
  EXPECT_TRUE(fault::MaybeFail("p").ok());  // past n: quiet again
  const auto stats = FaultInjector::Global().Stats("p");
  EXPECT_EQ(stats.hits, 4u);
  EXPECT_EQ(stats.fires, 1u);
}

TEST_F(FaultInjectionTest, EveryKthFiresPeriodically) {
  FaultSpec spec;
  spec.trigger = Trigger::kEveryKth;
  spec.n = 2;
  FaultInjector::Global().Arm("p", spec);
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    if (!fault::MaybeFail("p").ok()) ++fired;
  }
  EXPECT_EQ(fired, 5);
}

TEST_F(FaultInjectionTest, UnrelatedPointDoesNotFire) {
  FaultInjector::Global().Arm("p", FaultSpec{});
  EXPECT_TRUE(fault::MaybeFail("q").ok());
  EXPECT_FALSE(fault::MaybeFail("p").ok());
}

TEST_F(FaultInjectionTest, ProbabilityIsSeedDeterministic) {
  auto schedule = [&](uint64_t seed) {
    FaultSpec spec;
    spec.trigger = Trigger::kProbability;
    spec.probability = 0.3;
    spec.seed = seed;
    FaultInjector::Global().Arm("p", spec);
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(!fault::MaybeFail("p").ok());
    }
    FaultInjector::Global().Disarm("p");
    return fires;
  };
  const auto a1 = schedule(42);
  const auto a2 = schedule(42);
  const auto b = schedule(43);
  EXPECT_EQ(a1, a2);  // same seed => same failure schedule
  EXPECT_NE(a1, b);   // different seed => different schedule
  const int fired = static_cast<int>(std::count(a1.begin(), a1.end(), true));
  EXPECT_GT(fired, 20);   // ~60 expected at p=0.3
  EXPECT_LT(fired, 120);
}

TEST_F(FaultInjectionTest, SuperstepScopeGatesFiring) {
  FaultSpec spec;
  spec.scope_superstep = 5;
  FaultInjector::Global().Arm("p", spec);
  EXPECT_TRUE(fault::MaybeFail("p").ok());  // no scope set
  FaultInjector::Global().SetScope(4);
  EXPECT_TRUE(fault::MaybeFail("p").ok());
  FaultInjector::Global().SetScope(5);
  EXPECT_FALSE(fault::MaybeFail("p").ok());
  FaultInjector::Global().SetScope(6);
  EXPECT_TRUE(fault::MaybeFail("p").ok());
}

TEST_F(FaultInjectionTest, MaxFiresBoundsTheDamage) {
  FaultSpec spec;
  spec.max_fires = 2;
  FaultInjector::Global().Arm("p", spec);
  EXPECT_FALSE(fault::MaybeFail("p").ok());
  EXPECT_FALSE(fault::MaybeFail("p").ok());
  EXPECT_TRUE(fault::MaybeFail("p").ok());
  EXPECT_EQ(FaultInjector::Global().Stats("p").fires, 2u);
}

TEST_F(FaultInjectionTest, CrashActionReturnsAborted) {
  FaultSpec spec;
  spec.action = Action::kCrash;
  FaultInjector::Global().Arm("p", spec);
  Status s = fault::MaybeFail("p");
  EXPECT_TRUE(s.IsAborted());
  EXPECT_TRUE(fault::IsSimulatedCrash(s));
}

TEST_F(FaultInjectionTest, ErrorCodeIsConfigurable) {
  FaultSpec spec;
  spec.code = StatusCode::kCorruption;
  spec.message = "bit rot";
  FaultInjector::Global().Arm("p", spec);
  Status s = fault::MaybeFail("p");
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
  EXPECT_NE(s.ToString().find("bit rot"), std::string::npos);
}

TEST_F(FaultInjectionTest, TornWriteHalvesTheLength) {
  FaultSpec spec;
  spec.action = Action::kTornWrite;
  FaultInjector::Global().Arm("p", spec);
  size_t len = 1000;
  Status s = fault::MaybeFailWrite("p", &len);
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(len, 500u);

  // Plain error action: nothing gets written.
  FaultInjector::Global().Arm("q", FaultSpec{});
  len = 1000;
  s = fault::MaybeFailWrite("q", &len);
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(len, 0u);
}

TEST_F(FaultInjectionTest, TornWriteLeavesPrefixOnDisk) {
  TempDir dir("fault-io");
  const std::string path = dir.path() + "/victim";
  // Write once cleanly to learn the flush boundary is the whole buffer.
  FaultSpec spec;
  spec.action = Action::kTornWrite;
  spec.trigger = Trigger::kAlways;
  FaultInjector::Global().Arm("io.file.write", spec);

  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(WritableFile::Open(path, nullptr, &file).ok());
  const std::string payload(4096, 'x');
  ASSERT_TRUE(file->Append(payload).ok());  // buffered: no fault yet
  Status s = file->Flush();
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
  FaultInjector::Global().Reset();
  (void)file->Close();

  uint64_t size = 0;
  ASSERT_TRUE(GetFileSize(path, &size).ok());
  EXPECT_EQ(size, 2048u);  // half of the buffered 4096 hit the disk
}

TEST_F(FaultInjectionTest, ChecksumFileDetectsCorruption) {
  TempDir dir("fault-io");
  const std::string path = dir.path() + "/f";
  ASSERT_TRUE(WriteStringToFileAtomic(path, "hello checkpoint world").ok());
  uint64_t before = 0;
  ASSERT_TRUE(ChecksumFile(path, &before).ok());
  ASSERT_TRUE(WriteStringToFileAtomic(path, "hello checkpoint w0rld").ok());
  uint64_t after = 0;
  ASSERT_TRUE(ChecksumFile(path, &after).ok());
  EXPECT_NE(before, after);
}

TEST_F(FaultInjectionTest, RenameFileFaultPoint) {
  TempDir dir("fault-io");
  const std::string from = dir.path() + "/a", to = dir.path() + "/b";
  ASSERT_TRUE(WriteStringToFileAtomic(from, "x").ok());
  FaultInjector::Global().Arm("io.file.rename", FaultSpec{});
  EXPECT_FALSE(RenameFile(from, to).ok());
  EXPECT_TRUE(FileExists(from));
  EXPECT_FALSE(FileExists(to));
  FaultInjector::Global().Reset();
  EXPECT_TRUE(RenameFile(from, to).ok());
  EXPECT_TRUE(FileExists(to));
}

TEST_F(FaultInjectionTest, PlanSwitchBoundaryIsAFaultPoint) {
  // `pregel.plan.switch` fires when (and only when) the resolved plan
  // differs from the previous superstep's, and it fires BEFORE the switch
  // is journaled or published — a crashed switch must leave no trace.
  struct OverrideGuard {
    ~OverrideGuard() { SetPlanDecisionOverrideForTesting(nullptr); }
  } guard;
  SetPlanDecisionOverrideForTesting([](int64_t superstep, PlanDecision* d) {
    d->join = superstep >= 2 ? JoinStrategy::kLeftOuter
                             : JoinStrategy::kFullOuter;
    return true;
  });

  PregelixJobConfig cfg;
  cfg.name = "plan-switch-fault";
  cfg.join = JoinStrategy::kAuto;
  cfg.groupby = GroupByStrategy::kAuto;
  cfg.groupby_connector = GroupByConnector::kAuto;
  JobRuntimeContext ctx;
  ctx.job_config = &cfg;
  ctx.job_id = "plan-switch-fault";
  ctx.optimizer = std::make_shared<PlanOptimizer>();

  FaultSpec spec;
  spec.action = Action::kCrash;
  FaultInjector::Global().Arm("pregel.plan.switch", spec);

  // Superstep 1 has no previous plan: nothing switches, the armed point
  // stays quiet.
  PlanDecisionRecord record;
  ctx.current_superstep = 1;
  EXPECT_TRUE(ResolveAndPublishPlan(&ctx, nullptr, &record).ok());
  EXPECT_TRUE(record.switched.empty());
  EXPECT_EQ(FaultInjector::Global().Stats("pregel.plan.switch").fires, 0u);

  // Superstep 2 flips the join: the boundary crashes, and the aborted
  // switch is never journaled.
  const uint64_t since = EventJournal::Global().last_seq();
  ctx.current_superstep = 2;
  Status s = ResolveAndPublishPlan(&ctx, nullptr, &record);
  EXPECT_TRUE(s.IsAborted()) << s.ToString();
  EXPECT_TRUE(fault::IsSimulatedCrash(s));
  for (const JournalEvent& e : EventJournal::Global().SnapshotSince(since)) {
    EXPECT_NE(e.category, "plan.switch") << "crashed switch was journaled";
  }

  // Disarmed, the retried (memoized) decision publishes the same switch.
  FaultInjector::Global().Reset();
  EXPECT_TRUE(ResolveAndPublishPlan(&ctx, nullptr, &record).ok());
  EXPECT_EQ(record.switched, "join");
  bool journaled = false;
  for (const JournalEvent& e : EventJournal::Global().SnapshotSince(since)) {
    journaled = journaled || e.category == "plan.switch";
  }
  EXPECT_TRUE(journaled);
}

TEST_F(FaultInjectionTest, RearmResetsCounters) {
  FaultInjector::Global().Arm("p", FaultSpec{});
  (void)fault::MaybeFail("p");
  EXPECT_EQ(FaultInjector::Global().Stats("p").hits, 1u);
  FaultInjector::Global().Arm("p", FaultSpec{});
  EXPECT_EQ(FaultInjector::Global().Stats("p").hits, 0u);
}

}  // namespace
}  // namespace pregelix
