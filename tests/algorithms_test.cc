#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>

#include "algorithms/algorithms.h"
#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "graph/ref_algos.h"
#include "graph/text_io.h"
#include "pregel/runtime.h"

namespace pregelix {
namespace {

class AlgorithmsTest : public ::testing::Test {
 protected:
  AlgorithmsTest() : dfs_(dir_.Sub("dfs")) {
    ClusterConfig config;
    config.num_workers = 3;
    config.worker_ram_bytes = 8u << 20;
    config.temp_root = dir_.Sub("cluster");
    cluster_ = std::make_unique<SimulatedCluster>(config);
    runtime_ = std::make_unique<PregelixRuntime>(cluster_.get(), &dfs_);
  }

  std::map<int64_t, std::string> RunAndDump(PregelProgram* program,
                                            PregelixJobConfig job,
                                            JobResult* result = nullptr) {
    static int counter = 0;
    job.output_dir = "out-" + std::to_string(counter++);
    JobResult local;
    Status s = runtime_->Run(program, job, result != nullptr ? result : &local);
    EXPECT_TRUE(s.ok()) << s.ToString();
    std::map<int64_t, std::string> out;
    std::vector<std::string> names;
    EXPECT_TRUE(dfs_.List(job.output_dir, &names).ok());
    for (const std::string& name : names) {
      std::string contents;
      EXPECT_TRUE(dfs_.Read(job.output_dir + "/" + name, &contents).ok());
      std::istringstream lines(contents);
      std::string line;
      while (std::getline(lines, line)) {
        if (line.empty()) continue;
        std::istringstream fields(line);
        int64_t vid;
        std::string value;
        fields >> vid >> value;
        out[vid] = value;
      }
    }
    return out;
  }

  TempDir dir_{"algos-test"};
  DistributedFileSystem dfs_;
  std::unique_ptr<SimulatedCluster> cluster_;
  std::unique_ptr<PregelixRuntime> runtime_;
};

TEST_F(AlgorithmsTest, BfsTreeParentsAreOneHopCloser) {
  GraphStats stats;
  ASSERT_TRUE(GenerateBtcLike(dfs_, "bfs-in", 3, 600, 6.0, 31, &stats).ok());
  InMemoryGraph graph;
  ASSERT_TRUE(LoadGraph(dfs_, "bfs-in", &graph).ok());
  const std::vector<double> dist = SsspRef(graph, 0);

  BfsTreeProgram program(0);
  BfsTreeProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "bfs-tree";
  job.input_dir = "bfs-in";
  auto parents = RunAndDump(&adapter, job);
  ASSERT_EQ(parents.size(), static_cast<size_t>(graph.num_vertices()));
  for (auto& [vid, value] : parents) {
    const int64_t parent = std::stoll(value);
    if (vid == 0) {
      EXPECT_EQ(parent, 0);
      continue;
    }
    if (dist[vid] < 0) {
      EXPECT_EQ(parent, -1) << "unreachable vertex got a parent";
      continue;
    }
    ASSERT_GE(parent, 0) << "reachable vertex " << vid << " has no parent";
    // The parent is exactly one BFS level above.
    EXPECT_EQ(dist[parent] + 1, dist[vid]) << "vid " << vid;
    // And the tree edge exists in the graph.
    const auto& adj = graph.adj[parent];
    EXPECT_NE(std::find(adj.begin(), adj.end(), vid), adj.end());
  }
}

TEST_F(AlgorithmsTest, SccMatchesTarjanOnDirectedGraph) {
  // A directed graph with interesting SCC structure: several cycles of
  // different lengths joined by one-way bridges, plus acyclic tails.
  InMemoryGraph graph;
  graph.adj.resize(30);
  auto cycle = [&](int64_t start, int64_t len) {
    for (int64_t i = 0; i < len; ++i) {
      graph.adj[start + i].push_back(start + (i + 1) % len);
    }
  };
  cycle(0, 5);    // SCC {0..4}
  cycle(5, 3);    // SCC {5..7}
  cycle(8, 7);    // SCC {8..14}
  graph.adj[2].push_back(5);    // bridge 1st -> 2nd
  graph.adj[6].push_back(8);    // bridge 2nd -> 3rd
  graph.adj[14].push_back(15);  // tail 15 -> 16 -> ... (singletons)
  for (int64_t v = 15; v < 29; ++v) graph.adj[v].push_back(v + 1);
  graph.adj[29].push_back(20);  // back edge creating SCC {20..29}
  ASSERT_TRUE(WriteGraph(dfs_, "scc-in", graph, 3).ok());
  const std::vector<int64_t> expected = SccRef(graph);

  SccProgram program;
  SccProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "scc";
  job.input_dir = "scc-in";
  job.max_supersteps = 500;
  JobResult result;
  auto labels = RunAndDump(&adapter, job, &result);
  EXPECT_TRUE(result.final_gs.halt) << "SCC did not converge";
  ASSERT_EQ(labels.size(), static_cast<size_t>(graph.num_vertices()));
  for (auto& [vid, value] : labels) {
    EXPECT_EQ(std::stoll(value), expected[vid]) << "vid " << vid;
  }
}

TEST_F(AlgorithmsTest, SccOnRandomDirectedGraphs) {
  GraphStats stats;
  ASSERT_TRUE(
      GenerateWebmapLike(dfs_, "scc-web", 3, 200, 3.0, 77, &stats).ok());
  InMemoryGraph graph;
  ASSERT_TRUE(LoadGraph(dfs_, "scc-web", &graph).ok());
  const std::vector<int64_t> expected = SccRef(graph);

  SccProgram program;
  SccProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "scc-web";
  job.input_dir = "scc-web";
  job.max_supersteps = 2000;
  JobResult result;
  auto labels = RunAndDump(&adapter, job, &result);
  EXPECT_TRUE(result.final_gs.halt) << "SCC did not converge";
  for (auto& [vid, value] : labels) {
    EXPECT_EQ(std::stoll(value), expected[vid]) << "vid " << vid;
  }
}

TEST_F(AlgorithmsTest, MaximalCliquesOnKnownGraph) {
  // Two overlapping triangles sharing an edge plus a K4: cliques (>=3) are
  // {0,1,2}, {1,2,3}, and {4,5,6,7}.
  InMemoryGraph graph;
  graph.adj.resize(8);
  auto undirected = [&](int64_t a, int64_t b) {
    graph.adj[a].push_back(b);
    graph.adj[b].push_back(a);
  };
  undirected(0, 1);
  undirected(0, 2);
  undirected(1, 2);
  undirected(1, 3);
  undirected(2, 3);
  for (int64_t a = 4; a < 8; ++a) {
    for (int64_t b = a + 1; b < 8; ++b) undirected(a, b);
  }
  ASSERT_TRUE(WriteGraph(dfs_, "clique-in", graph, 2).ok());

  MaximalCliquesProgram program;
  MaximalCliquesProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "cliques";
  job.input_dir = "clique-in";
  JobResult result;
  RunAndDump(&adapter, job, &result);
  std::pair<int64_t, int64_t> agg{0, 0};
  ASSERT_TRUE(DeserializeValue(Slice(result.final_gs.aggregate), &agg));
  // Each clique is counted at its minimum vertex: {0,1,2} at 0, {1,2,3} at
  // 1, K4 at 4 -> 3 maximal cliques, largest size 4.
  EXPECT_EQ(agg.first, 3);
  EXPECT_EQ(agg.second, 4);
}

TEST_F(AlgorithmsTest, GraphSamplingVisitsRequestedWalkLengths) {
  GraphStats stats;
  ASSERT_TRUE(GenerateBtcLike(dfs_, "gs-in", 3, 500, 6.0, 5, &stats).ok());
  GraphSamplingProgram program(/*walkers=*/8, /*steps=*/20);
  GraphSamplingProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "sampling";
  job.input_dir = "gs-in";
  auto visits = RunAndDump(&adapter, job);
  int64_t total_visits = 0, visited_vertices = 0;
  for (auto& [vid, value] : visits) {
    const int64_t count = std::stoll(value);
    total_visits += count;
    if (count > 0) ++visited_vertices;
  }
  // 8 walkers each take up to 20 hops (dead ends can cut a walk short).
  EXPECT_GT(total_visits, 8 * 10);
  EXPECT_LE(total_visits, 8 * 21);
  EXPECT_GT(visited_vertices, 20);
}

TEST_F(AlgorithmsTest, ListRankingByPointerJumping) {
  // Three disjoint linked lists of different lengths.
  InMemoryGraph graph;
  graph.adj.resize(180);
  auto make_list = [&](int64_t start, int64_t len) {
    for (int64_t i = 0; i < len - 1; ++i) {
      graph.adj[start + i].push_back(start + i + 1);
    }
  };
  make_list(0, 100);
  make_list(100, 50);
  make_list(150, 30);
  ASSERT_TRUE(WriteGraph(dfs_, "list-in", graph, 3).ok());

  ListRankingProgram program;
  ListRankingProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "list-ranking";
  job.input_dir = "list-in";
  JobResult result;
  auto ranks = RunAndDump(&adapter, job, &result);
  ASSERT_EQ(ranks.size(), 180u);
  auto check_list = [&](int64_t start, int64_t len) {
    for (int64_t i = 0; i < len; ++i) {
      EXPECT_EQ(std::stoll(ranks[start + i]), len - 1 - i)
          << "node " << start + i;
    }
  };
  check_list(0, 100);
  check_list(100, 50);
  check_list(150, 30);
  // Pointer jumping is logarithmic: a 100-node list must finish in far
  // fewer supersteps than 100 (2 supersteps per doubling round).
  EXPECT_LT(result.supersteps, 30);
}

/// Pregel semantics: a message sent to a nonexistent vid creates the vertex
/// (the left-outer case of the join, paper Section 3).
class GhostWriterProgram : public TypedVertexProgram<int64_t, Empty, int64_t> {
 public:
  using Adapter = TypedProgramAdapter<int64_t, Empty, int64_t>;

  void Compute(VertexT& vertex, MessageIterator<int64_t>& messages) override {
    if (vertex.superstep() == 1 && vertex.id() < 1000) {
      // Message a vid far outside the loaded graph.
      vertex.SendMessage(vertex.id() + 100000, vertex.id());
    }
    int64_t sum = vertex.value();
    while (messages.HasNext()) sum += messages.Next();
    vertex.set_value(sum);
    vertex.VoteToHalt();
  }
  bool has_combiner() const override { return true; }
  void Combine(int64_t* acc, const int64_t& m) const override { *acc += m; }
  std::string FormatValue(int64_t, const int64_t& v) const override {
    return std::to_string(v);
  }
};

TEST_F(AlgorithmsTest, MessagesToMissingVerticesCreateThem) {
  InMemoryGraph graph;
  graph.adj.resize(20);  // vids 0..19, no edges needed
  ASSERT_TRUE(WriteGraph(dfs_, "ghost-in", graph, 3).ok());
  for (auto join : {JoinStrategy::kFullOuter, JoinStrategy::kLeftOuter}) {
    GhostWriterProgram program;
    GhostWriterProgram::Adapter adapter(&program);
    PregelixJobConfig job;
    job.name = "ghost";
    job.input_dir = "ghost-in";
    job.join = join;
    JobResult result;
    auto output = RunAndDump(&adapter, job, &result);
    EXPECT_EQ(result.final_gs.num_vertices, 40);
    ASSERT_EQ(output.size(), 40u) << "join mode "
                                  << static_cast<int>(join);
    for (int64_t v = 0; v < 20; ++v) {
      ASSERT_TRUE(output.count(v + 100000)) << v;
      EXPECT_EQ(std::stoll(output[v + 100000]), v);
    }
  }
}

TEST_F(AlgorithmsTest, AdaptiveJoinSwitchesPlansAndStaysCorrect) {
  GraphStats stats;
  ASSERT_TRUE(GenerateBtcLike(dfs_, "ad-in", 3, 800, 6.0, 12, &stats).ok());
  InMemoryGraph graph;
  ASSERT_TRUE(LoadGraph(dfs_, "ad-in", &graph).ok());
  const std::vector<double> expected = SsspRef(graph, 0);

  SsspProgram program(0);
  SsspProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "adaptive";
  job.input_dir = "ad-in";
  job.join = JoinStrategy::kAdaptive;
  JobResult result;
  auto output = RunAndDump(&adapter, job, &result);
  for (auto& [vid, value] : output) {
    if (expected[vid] < 0) {
      EXPECT_EQ(value, "inf");
    } else {
      EXPECT_NEAR(std::stod(value), expected[vid], 1e-9) << "vid " << vid;
    }
  }
  // SSSP's sparse frontier must trip the adaptive switch to left outer.
  bool saw_foj = false, saw_loj = false;
  for (const SuperstepStats& stats : result.superstep_stats) {
    (stats.used_left_outer_join ? saw_loj : saw_foj) = true;
  }
  EXPECT_TRUE(saw_foj) << "superstep 1 should scan (everything live)";
  EXPECT_TRUE(saw_loj) << "sparse frontier should switch to probing";
}

TEST_F(AlgorithmsTest, AdaptiveJoinStaysFullOuterForPageRank) {
  GraphStats stats;
  ASSERT_TRUE(GenerateWebmapLike(dfs_, "ad-pr", 3, 500, 6.0, 3, &stats).ok());
  PageRankProgram program(4);
  PageRankProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "adaptive-pr";
  job.input_dir = "ad-pr";
  job.join = JoinStrategy::kAdaptive;
  JobResult result;
  ASSERT_TRUE(runtime_->Run(&adapter, job, &result).ok());
  // Every vertex stays live until the final vote: never switch.
  for (const SuperstepStats& stats : result.superstep_stats) {
    EXPECT_FALSE(stats.used_left_outer_join)
        << "superstep " << stats.superstep;
  }
}

}  // namespace
}  // namespace pregelix
