// Observability server: request-parser edge cases (partial reads, limit
// violations), routing via Dispatch, real-socket round trips, and the
// end-to-end live-scrape scenario — a multi-superstep PageRank polled over
// HTTP while it runs (/metrics parses and changes between supersteps,
// /jobs/<id> superstep counters are monotonic, /events replays in seq
// order).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/event_journal.h"
#include "common/metrics_registry.h"
#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "pregel/runtime.h"
#include "server/http.h"
#include "server/job_registry.h"
#include "server/server.h"

namespace pregelix {
namespace server {
namespace {

// ---------------------------------------------------------------------------
// Parser unit tests (no sockets)

HttpRequest Parse(const std::string& data,
                  ParseOutcome expected = ParseOutcome::kOk,
                  ParseLimits limits = {}) {
  HttpRequest req;
  EXPECT_EQ(ParseHttpRequest(data, limits, &req), expected) << data;
  return req;
}

TEST(HttpParserTest, ParsesRequestLineAndHeaders) {
  const HttpRequest req = Parse(
      "GET /jobs/pr-1?since=5 HTTP/1.1\r\nHost: x\r\nAccept: */*\r\n\r\n");
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/jobs/pr-1?since=5");
  EXPECT_EQ(req.path, "/jobs/pr-1");
  EXPECT_EQ(req.query, "since=5");
  ASSERT_EQ(req.headers.size(), 2u);
  EXPECT_EQ(req.headers[0].first, "Host");
  EXPECT_EQ(req.headers[0].second, "x");
}

TEST(HttpParserTest, PartialReadsNeedMoreByteByByte) {
  const std::string full = "GET /metrics HTTP/1.1\r\nHost: a\r\n\r\n";
  HttpRequest req;
  const ParseLimits limits;
  for (size_t n = 0; n < full.size(); ++n) {
    EXPECT_EQ(ParseHttpRequest(full.substr(0, n), limits, &req),
              ParseOutcome::kNeedMore)
        << "prefix length " << n;
  }
  EXPECT_EQ(ParseHttpRequest(full, limits, &req), ParseOutcome::kOk);
  EXPECT_EQ(req.path, "/metrics");
}

TEST(HttpParserTest, MalformedRequests) {
  HttpRequest req;
  const ParseLimits limits;
  // No spaces in the request line.
  EXPECT_EQ(ParseHttpRequest("GETmetrics\r\n\r\n", limits, &req),
            ParseOutcome::kBadRequest);
  // Missing HTTP version.
  EXPECT_EQ(ParseHttpRequest("GET /metrics\r\n\r\n", limits, &req),
            ParseOutcome::kBadRequest);
  // Header without a colon.
  EXPECT_EQ(
      ParseHttpRequest("GET / HTTP/1.1\r\nbogusheader\r\n\r\n", limits, &req),
      ParseOutcome::kBadRequest);
}

TEST(HttpParserTest, OversizedUriRejectedCompleteAndStreaming) {
  ParseLimits limits;
  limits.max_uri_bytes = 16;
  HttpRequest req;
  const std::string long_target(40, 'a');
  // Complete head, target too long -> 414.
  EXPECT_EQ(ParseHttpRequest("GET /" + long_target + " HTTP/1.1\r\n\r\n",
                             limits, &req),
            ParseOutcome::kUriTooLong);
  // Endless unterminated request line -> rejected while streaming, before
  // any terminator arrives.
  EXPECT_EQ(ParseHttpRequest("GET /" + std::string(200, 'a'), limits, &req),
            ParseOutcome::kUriTooLong);
}

TEST(HttpParserTest, OversizedHeadersRejectedCompleteAndStreaming) {
  ParseLimits limits;
  limits.max_header_bytes = 64;
  HttpRequest req;
  const std::string big(100, 'x');
  EXPECT_EQ(ParseHttpRequest("GET / HTTP/1.1\r\nH: " + big + "\r\n\r\n",
                             limits, &req),
            ParseOutcome::kHeaderTooLarge);
  // Streaming: terminated first line, endless header bytes.
  EXPECT_EQ(ParseHttpRequest("GET / HTTP/1.1\r\nH: " + big, limits, &req),
            ParseOutcome::kHeaderTooLarge);
}

TEST(HttpParserTest, QueryParamExtraction) {
  EXPECT_EQ(QueryParam("since=17&limit=5", "since"), "17");
  EXPECT_EQ(QueryParam("since=17&limit=5", "limit"), "5");
  EXPECT_EQ(QueryParam("since=17", "absent"), "");
  EXPECT_EQ(QueryParam("", "since"), "");
}

// ---------------------------------------------------------------------------
// Routing via Dispatch (no sockets)

struct DispatchEnv {
  MetricsRegistry metrics;
  JobStatusRegistry jobs;
  EventJournal journal{64};
  ObservabilityServer srv{ServerOptions{}, &metrics, &jobs, &journal};

  HttpResponse Get(const std::string& target, const std::string& method = "GET") {
    HttpRequest req;
    req.method = method;
    req.target = target;
    const size_t q = target.find('?');
    req.path = q == std::string::npos ? target : target.substr(0, q);
    if (q != std::string::npos) req.query = target.substr(q + 1);
    return srv.Dispatch(req);
  }
};

TEST(DispatchTest, HealthReadyAndIndex) {
  DispatchEnv env;
  EXPECT_EQ(env.Get("/healthz").code, 200);
  EXPECT_EQ(env.Get("/readyz").code, 503);  // not ready until SetReady
  env.srv.SetReady(true);
  EXPECT_EQ(env.Get("/readyz").code, 200);
  const HttpResponse index = env.Get("/");
  EXPECT_EQ(index.code, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);
  EXPECT_NE(index.body.find("/jobs/<id>"), std::string::npos);
}

TEST(DispatchTest, UnknownPathIs404AndNonGetIs405) {
  DispatchEnv env;
  EXPECT_EQ(env.Get("/nonesuch").code, 404);
  const HttpResponse post = env.Get("/metrics", "POST");
  EXPECT_EQ(post.code, 405);
  bool has_allow = false;
  for (const auto& [k, v] : post.headers) {
    if (k == "Allow" && v == "GET") has_allow = true;
  }
  EXPECT_TRUE(has_allow);
}

TEST(DispatchTest, MetricsServesPrometheusAndCountsRequests) {
  DispatchEnv env;
  env.metrics.GetCounter("pregelix.test.counter")->Add(7);
  const HttpResponse resp = env.Get("/metrics");
  EXPECT_EQ(resp.code, 200);
  EXPECT_NE(resp.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(resp.body.find("pregelix_test_counter 7"), std::string::npos);
  // The server's own request counter carries endpoint + code labels.
  EXPECT_EQ(env.metrics.CounterValue(
                "pregelix.server.requests",
                {{"endpoint", "/metrics"}, {"code", "200"}}),
            1u);
}

TEST(DispatchTest, JobEndpointsServeRegistryState) {
  DispatchEnv env;
  env.jobs.OnJobStart("pr-1", "pagerank");
  SuperstepBrief brief;
  brief.superstep = 3;
  brief.live_vertices = 100;
  brief.messages = 250;
  env.jobs.OnSuperstep("pr-1", brief, "{\"ops\":[]}");

  const HttpResponse list = env.Get("/jobs");
  EXPECT_EQ(list.code, 200);
  EXPECT_NE(list.body.find("\"job\":\"pr-1\""), std::string::npos);

  const HttpResponse one = env.Get("/jobs/pr-1");
  EXPECT_EQ(one.code, 200);
  EXPECT_NE(one.body.find("\"superstep\":3"), std::string::npos);
  EXPECT_NE(one.body.find("\"profile\":{\"ops\":[]}"), std::string::npos);
  EXPECT_NE(one.body.find("\"recent_supersteps\":[{"), std::string::npos);

  EXPECT_EQ(env.Get("/jobs/unknown").code, 404);
}

TEST(DispatchTest, EventsReplayWithSinceFilter) {
  DispatchEnv env;
  env.journal.Append("a", "j", 1);
  env.journal.Append("b", "j", 2);
  const HttpResponse all = env.Get("/events?since=0");
  EXPECT_EQ(all.code, 200);
  EXPECT_NE(all.body.find("\"category\":\"a\""), std::string::npos);
  const HttpResponse tail = env.Get("/events?since=1");
  EXPECT_EQ(tail.body.find("\"category\":\"a\""), std::string::npos);
  EXPECT_NE(tail.body.find("\"category\":\"b\""), std::string::npos);
  EXPECT_EQ(env.Get("/events?since=bogus").code, 400);
}

// ---------------------------------------------------------------------------
// Real sockets

/// Opens a client connection to 127.0.0.1:port.
int Connect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

/// Sends raw bytes, reads the full response until the server closes.
std::string RoundTrip(int port, const std::string& request) {
  const int fd = Connect(port);
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(int port, const std::string& target) {
  return RoundTrip(port, "GET " + target + " HTTP/1.1\r\nHost: t\r\n\r\n");
}

int StatusCodeOf(const std::string& response) {
  // "HTTP/1.1 200 OK\r\n..."
  if (response.size() < 12) return -1;
  return std::atoi(response.substr(9, 3).c_str());
}

std::string BodyOf(const std::string& response) {
  const size_t sep = response.find("\r\n\r\n");
  return sep == std::string::npos ? std::string() : response.substr(sep + 4);
}

struct SocketEnv {
  MetricsRegistry metrics;
  JobStatusRegistry jobs;
  EventJournal journal{64};
  std::unique_ptr<ObservabilityServer> srv;

  SocketEnv() {
    ServerOptions opts;
    opts.port = 0;  // ephemeral
    srv = std::make_unique<ObservabilityServer>(opts, &metrics, &jobs,
                                                &journal);
    Status s = srv->Start();
    EXPECT_TRUE(s.ok()) << s.ToString();
    EXPECT_GT(srv->port(), 0);
  }
  ~SocketEnv() { srv->Stop(); }
};

TEST(HttpServerSocketTest, ServesOverTcpIncludingSplitRequests) {
  SocketEnv env;
  const std::string whole = HttpGet(env.srv->port(), "/healthz");
  EXPECT_EQ(StatusCodeOf(whole), 200);
  EXPECT_EQ(BodyOf(whole), "ok\n");
  EXPECT_NE(whole.find("Content-Length: 3"), std::string::npos);

  // Same request delivered one byte at a time still parses.
  const int fd = Connect(env.srv->port());
  const std::string req = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n";
  for (char c : req) {
    ASSERT_EQ(::send(fd, &c, 1, 0), 1);
  }
  std::string response;
  char buf[1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  EXPECT_EQ(StatusCodeOf(response), 200);
}

TEST(HttpServerSocketTest, LimitAndMethodViolationsOverTcp) {
  SocketEnv env;
  const int port = env.srv->port();
  // Default limits: 2048-byte URI, 8192-byte head.
  EXPECT_EQ(StatusCodeOf(HttpGet(port, "/" + std::string(4000, 'a'))), 414);
  EXPECT_EQ(StatusCodeOf(RoundTrip(
                port, "GET / HTTP/1.1\r\nBig: " + std::string(9000, 'x') +
                          "\r\n\r\n")),
            431);
  EXPECT_EQ(StatusCodeOf(RoundTrip(
                port, "DELETE /metrics HTTP/1.1\r\nHost: t\r\n\r\n")),
            405);
  EXPECT_EQ(StatusCodeOf(RoundTrip(port, "garbage\r\n\r\n")), 400);
  EXPECT_EQ(StatusCodeOf(HttpGet(port, "/nonesuch")), 404);
}

// ---------------------------------------------------------------------------
// End-to-end: scrape a live PageRank

/// True when every non-empty line is a comment or `name{...} value` /
/// `name value` sample — the shape promtool accepts.
bool LooksLikePrometheus(const std::string& body) {
  std::istringstream in(body);
  std::string line;
  bool any = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') continue;
    const size_t sp = line.rfind(' ');
    if (sp == std::string::npos || sp + 1 >= line.size()) return false;
    const char first = line[0];
    if (!(std::isalpha(static_cast<unsigned char>(first)) || first == '_')) {
      return false;
    }
    any = true;
  }
  return any;
}

/// Extracts the integer value of `"key":` in a flat JSON object.
int64_t JsonInt(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return -1;
  return std::strtoll(json.c_str() + pos + needle.size(), nullptr, 10);
}

TEST(HttpServerE2eTest, LiveScrapeDuringPageRank) {
  TempDir dir("server-e2e");
  DistributedFileSystem dfs(dir.Sub("dfs"));
  ClusterConfig config;
  config.num_workers = 2;
  config.partitions_per_worker = 2;
  config.worker_ram_bytes = 8u << 20;
  config.frame_size = 8 * 1024;
  config.temp_root = dir.Sub("cluster");
  MetricsRegistry metrics;
  config.metrics_registry = &metrics;
  SimulatedCluster cluster(config);
  PregelixRuntime runtime(&cluster, &dfs);
  GraphStats stats;
  ASSERT_TRUE(
      GenerateWebmapLike(dfs, "input/g", 3, 800, 6.0, 42, &stats).ok());

  // The runtime publishes into the process-global job registry + journal;
  // serve exactly those, plus the cluster's registry.
  ServerOptions opts;
  opts.port = 0;
  ObservabilityServer srv(opts, &metrics, &JobStatusRegistry::Global(),
                          &EventJournal::Global());
  ASSERT_TRUE(srv.Start().ok());
  srv.SetPreScrapeHook([&cluster]() { cluster.PublishMetrics(); });
  srv.SetReady(true);
  const int port = srv.port();
  const uint64_t journal_start = EventJournal::Global().last_seq();

  PageRankProgram program(25);
  PageRankProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "e2e-pagerank";
  job.job_id = "e2e-pagerank";
  job.input_dir = "input/g";
  job.profile_plan = true;

  std::atomic<bool> done{false};
  Status job_status;
  JobResult result;
  std::thread driver([&]() {
    job_status = runtime.Run(&adapter, job, &result);
    done.store(true);
  });

  // Poll while the job runs: every /metrics body must be valid exposition,
  // and the /jobs/<id> superstep counter must move forward.
  std::vector<std::string> scrapes;
  std::vector<int64_t> superstep_samples;
  while (!done.load()) {
    const std::string metrics_resp = HttpGet(port, "/metrics");
    EXPECT_EQ(StatusCodeOf(metrics_resp), 200);
    const std::string body = BodyOf(metrics_resp);
    EXPECT_TRUE(LooksLikePrometheus(body)) << body.substr(0, 400);
    scrapes.push_back(body);

    const std::string job_resp = HttpGet(port, "/jobs/e2e-pagerank");
    if (StatusCodeOf(job_resp) == 200) {
      superstep_samples.push_back(JsonInt(BodyOf(job_resp), "superstep"));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  driver.join();
  ASSERT_TRUE(job_status.ok()) << job_status.ToString();
  ASSERT_GE(result.supersteps, 25);

  // The exposition changed across supersteps (live counters moved).
  const std::set<std::string> distinct(scrapes.begin(), scrapes.end());
  EXPECT_GE(scrapes.size(), 2u);
  EXPECT_GE(distinct.size(), 2u);

  // Superstep counters observed over HTTP are monotonically non-decreasing
  // and actually advanced while we watched.
  ASSERT_GE(superstep_samples.size(), 2u);
  for (size_t i = 1; i < superstep_samples.size(); ++i) {
    EXPECT_GE(superstep_samples[i], superstep_samples[i - 1]);
  }
  const std::set<int64_t> distinct_steps(superstep_samples.begin(),
                                         superstep_samples.end());
  EXPECT_GE(distinct_steps.size(), 2u);

  // After the job: the final status is visible, with the plan profile.
  const std::string final_resp = BodyOf(HttpGet(port, "/jobs/e2e-pagerank"));
  EXPECT_NE(final_resp.find("\"state\":\"finished\""), std::string::npos);
  EXPECT_EQ(JsonInt(final_resp, "superstep"), result.supersteps);
  EXPECT_NE(final_resp.find("\"profile\":{"), std::string::npos);

  // /events replays in seq order and pairs every superstep begin/end.
  const std::string events =
      BodyOf(HttpGet(port, "/events?since=" +
                               std::to_string(journal_start)));
  std::istringstream in(events);
  std::string line;
  uint64_t prev_seq = 0;
  int begins = 0, ends = 0;
  bool saw_start = false, saw_finish = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const int64_t seq = JsonInt(line, "seq");
    ASSERT_GT(seq, 0);
    EXPECT_GT(static_cast<uint64_t>(seq), prev_seq);
    prev_seq = static_cast<uint64_t>(seq);
    if (line.find("\"job\":\"e2e-pagerank\"") == std::string::npos) continue;
    if (line.find("\"category\":\"superstep.begin\"") != std::string::npos) {
      ++begins;
    }
    if (line.find("\"category\":\"superstep.end\"") != std::string::npos) {
      ++ends;
    }
    if (line.find("\"category\":\"job.start\"") != std::string::npos) {
      saw_start = true;
    }
    if (line.find("\"category\":\"job.finish\"") != std::string::npos) {
      saw_finish = true;
    }
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_finish);
  EXPECT_EQ(begins, ends);
  EXPECT_EQ(ends, static_cast<int>(result.supersteps));

  srv.Stop();
}

}  // namespace
}  // namespace server
}  // namespace pregelix
