#include <gtest/gtest.h>

#include <string>

#include "algorithms/sssp.h"
#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "pregel/plans.h"
#include "pregel/state.h"

namespace pregelix {
namespace {

/// White-box tests of the plan generator: the generated dataflow DAGs must
/// have the structure of the paper's Figures 3-5 and 8 and honor the
/// physical hints (Figure 7 connector choices).
class PlansTest : public ::testing::Test {
 protected:
  PlansTest() : dfs_(dir_.Sub("dfs")) {
    config_.num_workers = 4;
    config_.worker_ram_bytes = 4u << 20;
    config_.temp_root = dir_.Sub("cluster");
    cluster_ = std::make_unique<SimulatedCluster>(config_);
    ctx_.program = &adapter_;
    ctx_.job_config = &job_;
    ctx_.cluster = cluster_.get();
    ctx_.dfs = &dfs_;
    ctx_.job_id = "plans-test";
    ctx_.partitions.resize(cluster_->num_partitions());
    ctx_.gs.num_vertices = 1000;
    ctx_.gs.live_vertices = 1000;
    ctx_.current_superstep = 2;
  }

  const ConnectorSpec* FindConnector(const JobSpec& spec, int src_output) {
    for (const ConnectorSpec& c : spec.connectors()) {
      if (c.src_op == 0 && c.src_output == src_output) return &c;
    }
    return nullptr;
  }

  TempDir dir_{"plans-test"};
  DistributedFileSystem dfs_;
  ClusterConfig config_;
  std::unique_ptr<SimulatedCluster> cluster_;
  SsspProgram program_{0};
  SsspProgram::Adapter adapter_{&program_};
  PregelixJobConfig job_;
  JobRuntimeContext ctx_;
};

TEST_F(PlansTest, SuperstepJobHasFourOperatorsAndThreeFlows) {
  JobSpec spec = BuildSuperstepJob(&ctx_);
  // compute, combine, global-agg, resolve (Figures 3-5).
  ASSERT_EQ(spec.ops().size(), 4u);
  ASSERT_EQ(spec.connectors().size(), 3u);
  // compute and combine and resolve are partitioned; global agg is single.
  EXPECT_EQ(spec.ops()[0].num_partitions, cluster_->num_partitions());
  EXPECT_EQ(spec.ops()[1].num_partitions, cluster_->num_partitions());
  EXPECT_EQ(spec.ops()[2].num_partitions, 1);
  EXPECT_EQ(spec.ops()[3].num_partitions, cluster_->num_partitions());

  // D3/D7 messages repartition by destination vid.
  const ConnectorSpec* msgs = FindConnector(spec, 0);
  ASSERT_NE(msgs, nullptr);
  EXPECT_EQ(msgs->kind, ConnectorKind::kMToNPartition);
  EXPECT_EQ(msgs->key_field, 0);
  // D4/D5 contributions gather at one clone.
  const ConnectorSpec* contrib = FindConnector(spec, 1);
  ASSERT_NE(contrib, nullptr);
  EXPECT_EQ(contrib->kind, ConnectorKind::kMToOne);
  // D6 mutations repartition like the vertices.
  const ConnectorSpec* muts = FindConnector(spec, 2);
  ASSERT_NE(muts, nullptr);
  EXPECT_EQ(muts->kind, ConnectorKind::kMToNPartition);
}

TEST_F(PlansTest, MergedConnectorHintSelectsMergingKind) {
  job_.groupby_connector = GroupByConnector::kMerged;
  JobSpec spec = BuildSuperstepJob(&ctx_);
  const ConnectorSpec* msgs = FindConnector(spec, 0);
  ASSERT_NE(msgs, nullptr);
  EXPECT_EQ(msgs->kind, ConnectorKind::kMToNPartitionMerge);
}

TEST_F(PlansTest, JoinHintSelectsComputeOperator) {
  job_.join = JoinStrategy::kFullOuter;
  EXPECT_EQ(BuildSuperstepJob(&ctx_).ops()[0].descriptor->name(),
            "compute-full-outer-join");
  job_.join = JoinStrategy::kLeftOuter;
  EXPECT_EQ(BuildSuperstepJob(&ctx_).ops()[0].descriptor->name(),
            "compute-left-outer-join");
}

TEST_F(PlansTest, AdaptiveJoinResolvesFromStatistics) {
  job_.join = JoinStrategy::kAdaptive;
  // Dense frontier: stay with the scan.
  ctx_.gs.live_vertices = 800;
  ctx_.gs.messages = 0;
  EXPECT_EQ(BuildSuperstepJob(&ctx_).ops()[0].descriptor->name(),
            "compute-full-outer-join");
  EXPECT_EQ(ctx_.current_join, JoinStrategy::kFullOuter);
  // Sparse frontier: switch to probing.
  ctx_.gs.live_vertices = 10;
  ctx_.gs.messages = 15;
  EXPECT_EQ(BuildSuperstepJob(&ctx_).ops()[0].descriptor->name(),
            "compute-left-outer-join");
  EXPECT_EQ(ctx_.current_join, JoinStrategy::kLeftOuter);
  // Superstep 1 always scans (everything starts live).
  ctx_.current_superstep = 1;
  EXPECT_EQ(BuildSuperstepJob(&ctx_).ops()[0].descriptor->name(),
            "compute-full-outer-join");
}

TEST_F(PlansTest, LoadJobScansThenPartitionsThenBulkLoads) {
  JobSpec spec = BuildLoadJob(&ctx_);
  ASSERT_EQ(spec.ops().size(), 2u);
  ASSERT_EQ(spec.connectors().size(), 1u);
  EXPECT_EQ(spec.connectors()[0].kind, ConnectorKind::kMToNPartition);
  EXPECT_EQ(spec.ops()[0].descriptor->name(), "scan-input");
  EXPECT_EQ(spec.ops()[1].descriptor->name(), "sort-bulkload");
}

TEST_F(PlansTest, UtilityJobsArePartitionLocal) {
  // Dump, checkpoint, and recovery move no data between partitions: they
  // are single-operator jobs with no connectors (sticky locality).
  EXPECT_EQ(BuildDumpJob(&ctx_).connectors().size(), 0u);
  EXPECT_EQ(BuildCheckpointJob(&ctx_, 3).connectors().size(), 0u);
  EXPECT_EQ(BuildRecoveryJob(&ctx_, 3).connectors().size(), 0u);
  EXPECT_EQ(BuildDumpJob(&ctx_).ops()[0].num_partitions,
            cluster_->num_partitions());
}

TEST_F(PlansTest, CheckpointDirsAreNamespacedPerJobAndSuperstep) {
  EXPECT_EQ(CheckpointDir(ctx_, 4), "jobs/plans-test/ckpt/4");
  EXPECT_NE(CheckpointDir(ctx_, 4), CheckpointDir(ctx_, 8));
}

}  // namespace
}  // namespace pregelix
