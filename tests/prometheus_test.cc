// Prometheus text-exposition writer: golden format, label escaping, metric
// name sanitization, and histogram bucket cumulativity — including under
// concurrent Observe, where the +Inf bucket must still equal _count.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"

namespace pregelix {
namespace {

std::string Expose(const MetricsRegistry& registry) {
  std::ostringstream os;
  registry.WritePrometheus(os);
  return os.str();
}

TEST(PrometheusTest, GoldenCounterAndGauge) {
  MetricsRegistry registry;
  registry
      .GetCounter("pregelix.buffer.hits", MetricLabels{{"worker", "0"}})
      ->Add(7);
  registry
      .GetCounter("pregelix.buffer.hits", MetricLabels{{"worker", "1"}})
      ->Add(9);
  registry.GetGauge("pregelix.bench.dataset_seed")->Set(-42);

  EXPECT_EQ(Expose(registry),
            "# HELP pregelix_bench_dataset_seed pregelix.bench.dataset_seed\n"
            "# TYPE pregelix_bench_dataset_seed gauge\n"
            "pregelix_bench_dataset_seed -42\n"
            "# HELP pregelix_buffer_hits pregelix.buffer.hits\n"
            "# TYPE pregelix_buffer_hits counter\n"
            "pregelix_buffer_hits{worker=\"0\"} 7\n"
            "pregelix_buffer_hits{worker=\"1\"} 9\n");
}

TEST(PrometheusTest, OneHelpTypePairPerFamily) {
  MetricsRegistry registry;
  for (int w = 0; w < 3; ++w) {
    registry
        .GetCounter("pregelix.dataflow.tuples_out",
                    MetricLabels{{"worker", std::to_string(w)}})
        ->Increment();
  }
  const std::string text = Expose(registry);
  size_t help = 0;
  size_t type = 0;
  for (size_t pos = 0; (pos = text.find("# HELP", pos)) != std::string::npos;
       ++pos) {
    ++help;
  }
  for (size_t pos = 0; (pos = text.find("# TYPE", pos)) != std::string::npos;
       ++pos) {
    ++type;
  }
  EXPECT_EQ(help, 1u);
  EXPECT_EQ(type, 1u);
}

TEST(PrometheusTest, LabelValueEscaping) {
  MetricsRegistry registry;
  registry
      .GetCounter("pregelix.test.escapes",
                  MetricLabels{{"job", "line1\nline2"},
                               {"op", "say \"hi\""},
                               {"path", "a\\b"}})
      ->Increment();
  const std::string text = Expose(registry);
  EXPECT_NE(text.find("job=\"line1\\nline2\""), std::string::npos) << text;
  EXPECT_NE(text.find("op=\"say \\\"hi\\\"\""), std::string::npos) << text;
  EXPECT_NE(text.find("path=\"a\\\\b\""), std::string::npos) << text;
  // No raw newline may survive inside a label value: every '\n' in the
  // output must terminate a complete exposition line.
  EXPECT_EQ(text.find("line1\nline2"), std::string::npos);
}

TEST(PrometheusTest, NameSanitization) {
  MetricsRegistry registry;
  registry.GetCounter("pregelix.storage.probes")->Increment();
  registry.GetCounter("0weird-name.with+chars")->Increment();
  const std::string text = Expose(registry);
  EXPECT_NE(text.find("pregelix_storage_probes 1\n"), std::string::npos);
  // Leading digit gets a '_' prefix; '-', '.', '+' all map to '_'.
  EXPECT_NE(text.find("_0weird_name_with_chars 1\n"), std::string::npos);
}

TEST(PrometheusTest, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("pregelix.test.latency");
  h->Observe(0);   // bucket le="0"
  h->Observe(1);   // bucket le="1"
  h->Observe(3);   // bucket le="3"
  h->Observe(3);   // bucket le="3"
  h->Observe(100); // bucket le="127"

  const std::string text = Expose(registry);
  EXPECT_NE(text.find("# TYPE pregelix_test_latency histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("pregelix_test_latency_bucket{le=\"0\"} 1\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("pregelix_test_latency_bucket{le=\"1\"} 2\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("pregelix_test_latency_bucket{le=\"3\"} 4\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("pregelix_test_latency_bucket{le=\"127\"} 5\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("pregelix_test_latency_bucket{le=\"+Inf\"} 5\n"),
            std::string::npos) << text;
  EXPECT_NE(text.find("pregelix_test_latency_sum 107\n"), std::string::npos);
  EXPECT_NE(text.find("pregelix_test_latency_count 5\n"), std::string::npos);
}

TEST(PrometheusTest, HistogramLabelsComposeWithLe) {
  MetricsRegistry registry;
  registry
      .GetHistogram("pregelix.test.latency", MetricLabels{{"op", "sort"}})
      ->Observe(2);
  const std::string text = Expose(registry);
  EXPECT_NE(text.find("pregelix_test_latency_bucket{op=\"sort\",le=\"3\"} 1"),
            std::string::npos) << text;
  EXPECT_NE(text.find("pregelix_test_latency_sum{op=\"sort\"} 2"),
            std::string::npos) << text;
}

/// Parses every `<family>_bucket{...le="B"} V` line of one histogram and
/// checks (a) counts are non-decreasing in bucket order as printed, and
/// (b) the +Inf bucket equals the _count sample.
void CheckScrape(const std::string& text) {
  std::istringstream lines(text);
  std::string line;
  uint64_t prev = 0;
  uint64_t inf = 0;
  uint64_t count = 0;
  bool saw_inf = false;
  bool saw_count = false;
  while (std::getline(lines, line)) {
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos);
    if (line.compare(0, 22, "pregelix_test_ops_buck") == 0) {
      const uint64_t v = std::stoull(line.substr(space + 1));
      ASSERT_GE(v, prev) << "bucket counts regressed: " << line;
      prev = v;
      if (line.find("le=\"+Inf\"") != std::string::npos) {
        inf = v;
        saw_inf = true;
      }
    } else if (line.compare(0, 24, "pregelix_test_ops_count ") == 0) {
      count = std::stoull(line.substr(space + 1));
      saw_count = true;
    }
  }
  ASSERT_TRUE(saw_inf);
  ASSERT_TRUE(saw_count);
  EXPECT_EQ(inf, count) << "scrape is internally inconsistent:\n" << text;
}

TEST(PrometheusTest, BucketCumulativityUnderConcurrentObserve) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("pregelix.test.ops");
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < 3; ++t) {
    writers.emplace_back([h, &stop, t]() {
      uint64_t v = static_cast<uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        h->Observe(v % 1024);
        v = v * 2862933555777941757ull + 3037000493ull;  // splmix step
      }
    });
  }

  for (int scrape = 0; scrape < 50; ++scrape) {
    CheckScrape(Expose(registry));
  }
  stop = true;
  for (std::thread& t : writers) t.join();

  // Quiescent: count() and the bucket-derived total agree again.
  uint64_t buckets[Histogram::kNumBuckets];
  EXPECT_EQ(h->SnapshotBuckets(buckets), h->count());
  CheckScrape(Expose(registry));
}

}  // namespace
}  // namespace pregelix
