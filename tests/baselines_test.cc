#include <gtest/gtest.h>

#include <string>
#include <unordered_map>

#include "algorithms/algorithms.h"
#include "baselines/memory_meter.h"
#include "baselines/process_centric.h"
#include "common/temp_dir.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "graph/ref_algos.h"
#include "graph/text_io.h"

namespace pregelix {
namespace {

TEST(MemoryMeterTest, ChargesWithOverheadAndFails) {
  MemoryMeter meter(1000, 2.0);
  ASSERT_TRUE(meter.Charge(400, "x").ok());  // 800 physical
  EXPECT_EQ(meter.used_bytes(), 800u);
  Status s = meter.Charge(200, "y");  // would be 1200
  EXPECT_TRUE(s.IsOutOfMemory());
  meter.Release(100);  // -200 physical
  EXPECT_EQ(meter.used_bytes(), 600u);
  ASSERT_TRUE(meter.Charge(200, "y").ok());
  EXPECT_EQ(meter.peak_bytes(), 1000u);
}

class BaselinesTest : public ::testing::Test {
 protected:
  BaselinesTest() : dfs_(dir_.Sub("dfs")) {
    GraphStats stats;
    EXPECT_TRUE(
        GenerateBtcLike(dfs_, "btc", 2, 400, 6.0, 13, &stats).ok());
    EXPECT_TRUE(
        GenerateWebmapLike(dfs_, "web", 2, 400, 5.0, 13, &stats).ok());
    EXPECT_TRUE(LoadGraph(dfs_, "btc", &btc_).ok());
    EXPECT_TRUE(LoadGraph(dfs_, "web", &web_).ok());
  }

  TempDir dir_{"baselines-test"};
  DistributedFileSystem dfs_;
  InMemoryGraph btc_;
  InMemoryGraph web_;
};

TEST_F(BaselinesTest, GiraphSsspMatchesReference) {
  const std::vector<double> expected = SsspRef(btc_, 0);
  SsspProgram program(0);
  SsspProgram::Adapter adapter(&program);
  ProcessCentricEngine engine(GiraphMemOptions(), 4, 64u << 20);
  ProcessCentricEngine::Result result;
  std::unordered_map<int64_t, std::string> values;
  ASSERT_TRUE(engine.Run(dfs_, "btc", &adapter, 100, &result, &values).ok());
  ASSERT_TRUE(result.succeeded) << result.failure;
  ASSERT_EQ(values.size(), expected.size());
  for (auto& [vid, value] : values) {
    if (expected[vid] < 0) {
      EXPECT_EQ(value, "inf");
    } else {
      EXPECT_NEAR(std::stod(value), expected[vid], 1e-9) << "vid " << vid;
    }
  }
}

TEST_F(BaselinesTest, GiraphPageRankMatchesReference) {
  const std::vector<double> expected = PageRankRef(web_, 8);
  PageRankProgram program(8);
  PageRankProgram::Adapter adapter(&program);
  ProcessCentricEngine engine(GiraphMemOptions(), 4, 64u << 20);
  ProcessCentricEngine::Result result;
  std::unordered_map<int64_t, std::string> values;
  ASSERT_TRUE(engine.Run(dfs_, "web", &adapter, 100, &result, &values).ok());
  ASSERT_TRUE(result.succeeded) << result.failure;
  for (auto& [vid, value] : values) {
    EXPECT_NEAR(std::stod(value), expected[vid], 1e-9) << "vid " << vid;
  }
}

TEST_F(BaselinesTest, AllEnginesAgreeOnConnectedComponents) {
  const std::vector<int64_t> expected = CcRef(btc_);
  for (auto options : {GiraphMemOptions(), GiraphOocOptions(), HamaOptions(),
                       GraphLabOptions(), GraphXOptions()}) {
    ConnectedComponentsProgram program;
    ConnectedComponentsProgram::Adapter adapter(&program);
    ProcessCentricEngine engine(options, 3, 64u << 20);
    ProcessCentricEngine::Result result;
    std::unordered_map<int64_t, std::string> values;
    ASSERT_TRUE(engine.Run(dfs_, "btc", &adapter, 100, &result, &values).ok());
    ASSERT_TRUE(result.succeeded) << options.name << ": " << result.failure;
    for (auto& [vid, value] : values) {
      EXPECT_EQ(std::stoll(value), expected[vid])
          << options.name << " vid " << vid;
    }
  }
}

TEST_F(BaselinesTest, EnginesFailWhenMemoryTooSmall) {
  // A budget far below the working set: every engine must fail gracefully
  // (succeeded = false), never crash or return a hard error.
  for (auto options : {GiraphMemOptions(), GiraphOocOptions(), HamaOptions(),
                       GraphLabOptions(), GraphXOptions()}) {
    PageRankProgram program(8);
    PageRankProgram::Adapter adapter(&program);
    ProcessCentricEngine engine(options, 2, 8 * 1024);
    ProcessCentricEngine::Result result;
    Status s = engine.Run(dfs_, "web", &adapter, 100, &result);
    ASSERT_TRUE(s.ok()) << options.name << ": " << s.ToString();
    EXPECT_FALSE(result.succeeded) << options.name;
    EXPECT_FALSE(result.failure.empty()) << options.name;
  }
}

TEST_F(BaselinesTest, FailureThresholdsAreOrderedLikeThePaper) {
  // Find each engine's minimum working budget for PageRank on the same
  // graph by bisection; the paper's ordering is
  // Giraph < GraphLab/Hama < GraphX (GraphX needs the most memory).
  GraphStats stats;
  ASSERT_TRUE(
      GenerateWebmapLike(dfs_, "web-big", 2, 4000, 8.0, 17, &stats).ok());
  auto min_budget = [&](ProcessCentricEngine::Options options) {
    size_t lo = 16 * 1024, hi = 256u << 20;
    while (lo + 16 * 1024 < hi) {
      const size_t mid = (lo + hi) / 2;
      PageRankProgram program(3);
      PageRankProgram::Adapter adapter(&program);
      ProcessCentricEngine engine(options, 2, mid);
      ProcessCentricEngine::Result result;
      EXPECT_TRUE(engine.Run(dfs_, "web-big", &adapter, 100, &result).ok());
      if (result.succeeded) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    return hi;
  };
  const size_t giraph = min_budget(GiraphMemOptions());
  const size_t graphlab = min_budget(GraphLabOptions());
  const size_t graphx = min_budget(GraphXOptions());
  EXPECT_LT(giraph, graphlab);
  EXPECT_LT(graphlab, graphx);
}

TEST_F(BaselinesTest, GraphLabIsFastestPerIterationWhenDataFits) {
  PageRankProgram program(5);
  PageRankProgram::Adapter adapter(&program);
  auto run = [&](ProcessCentricEngine::Options options) {
    ProcessCentricEngine engine(options, 2, 256u << 20);
    ProcessCentricEngine::Result result;
    EXPECT_TRUE(engine.Run(dfs_, "web", &adapter, 100, &result).ok());
    EXPECT_TRUE(result.succeeded) << options.name;
    return result.avg_iteration_sim_seconds;
  };
  const double graphlab = run(GraphLabOptions());
  const double giraph = run(GiraphMemOptions());
  EXPECT_LT(graphlab, giraph);
}

TEST_F(BaselinesTest, GiraphOocSurvivesWhereGiraphMemFails) {
  // A budget sized between the two systems' needs: vertex spilling keeps
  // ooc alive (at a disk cost) where the in-memory setting dies.
  PageRankProgram program(5);
  PageRankProgram::Adapter adapter(&program);
  GraphStats stats;
  ASSERT_TRUE(
      GenerateWebmapLike(dfs_, "ooc-web", 2, 3000, 8.0, 19, &stats).ok());
  const size_t budget = 420 * 1024;
  ProcessCentricEngine mem(GiraphMemOptions(), 2, budget);
  ProcessCentricEngine ooc(GiraphOocOptions(), 2, budget);
  ProcessCentricEngine::Result mem_result, ooc_result;
  ASSERT_TRUE(mem.Run(dfs_, "ooc-web", &adapter, 100, &mem_result).ok());
  ASSERT_TRUE(ooc.Run(dfs_, "ooc-web", &adapter, 100, &ooc_result).ok());
  EXPECT_FALSE(mem_result.succeeded);
  ASSERT_TRUE(ooc_result.succeeded) << ooc_result.failure;
  // ...but the crude spilling costs it time relative to a fitting run.
  ProcessCentricEngine roomy(GiraphMemOptions(), 2, 64u << 20);
  ProcessCentricEngine::Result roomy_result;
  ASSERT_TRUE(roomy.Run(dfs_, "ooc-web", &adapter, 100, &roomy_result).ok());
  EXPECT_GT(ooc_result.avg_iteration_sim_seconds,
            roomy_result.avg_iteration_sim_seconds);
}

TEST_F(BaselinesTest, HamaPaysDiskEveryIterationGiraphMemDoesNot) {
  ConnectedComponentsProgram program;
  ConnectedComponentsProgram::Adapter adapter(&program);
  auto run = [&](ProcessCentricEngine::Options options) {
    ProcessCentricEngine engine(options, 2, 256u << 20);
    ProcessCentricEngine::Result result;
    EXPECT_TRUE(engine.Run(dfs_, "btc", &adapter, 100, &result).ok());
    return result;
  };
  const auto hama = run(HamaOptions());
  const auto giraph = run(GiraphMemOptions());
  ASSERT_TRUE(hama.succeeded && giraph.succeeded);
  EXPECT_GT(hama.avg_iteration_sim_seconds,
            giraph.avg_iteration_sim_seconds);
}

}  // namespace
}  // namespace pregelix
