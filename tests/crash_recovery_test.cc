// Crash-recovery tests for the Pregel runtime's checkpoint commit protocol
// (ISSUE: fault suite).
//
// The scenarios simulate a driver "process" dying mid-job — a fault point
// unwinds Status::Aborted through the superstep loop — and a new process
// (fresh SimulatedCluster + PregelixRuntime over the same DFS) resuming the
// job by its stable job_id. Recovery must never trust a checkpoint directory
// just because it exists: the MANIFEST is the commit record, and torn
// snapshot files (size or checksum mismatch) disqualify a candidate.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/fault_injection.h"
#include "common/metrics_registry.h"
#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "graph/ref_algos.h"
#include "graph/text_io.h"
#include "pregel/runtime.h"

namespace pregelix {
namespace {

using fault::Action;
using fault::FaultInjector;
using fault::FaultSpec;
using fault::Trigger;

class CrashRecoveryTest : public ::testing::Test {
 protected:
  CrashRecoveryTest() : dfs_(dir_.Sub("dfs")) {
    FaultInjector::Global().Reset();
    GraphStats stats;
    EXPECT_TRUE(GenerateBtcLike(dfs_, "input", 3, 400, 6.0, 21, &stats).ok());
    InMemoryGraph graph;
    EXPECT_TRUE(LoadGraph(dfs_, "input", &graph).ok());
    expected_ = SsspRef(graph, 0);
  }
  ~CrashRecoveryTest() override { FaultInjector::Global().Reset(); }

  /// A fresh cluster + runtime over the shared DFS: the moral equivalent of
  /// restarting the driver process after a crash.
  std::unique_ptr<PregelixRuntime> NewProcess() {
    ClusterConfig config;
    config.num_workers = 3;
    config.worker_ram_bytes = 8u << 20;
    config.temp_root = dir_.Sub("cluster-" + std::to_string(process_count_++));
    clusters_.push_back(std::make_unique<SimulatedCluster>(config));
    return std::make_unique<PregelixRuntime>(clusters_.back().get(), &dfs_);
  }

  Status RunSssp(PregelixRuntime* runtime, const PregelixJobConfig& job,
                 JobResult* result) {
    SsspProgram program(0);
    SsspProgram::Adapter adapter(&program);
    return runtime->Run(&adapter, job, result);
  }

  void VerifyOutput(const std::string& dir) {
    std::vector<std::string> names;
    ASSERT_TRUE(dfs_.List(dir, &names).ok());
    int64_t seen = 0;
    for (const std::string& name : names) {
      std::string contents;
      ASSERT_TRUE(dfs_.Read(dir + "/" + name, &contents).ok());
      std::istringstream lines(contents);
      std::string line;
      while (std::getline(lines, line)) {
        if (line.empty()) continue;
        std::istringstream fields(line);
        int64_t vid;
        std::string value;
        fields >> vid >> value;
        if (expected_[vid] < 0) {
          EXPECT_EQ(value, "inf");
        } else {
          EXPECT_NEAR(std::stod(value), expected_[vid], 1e-9) << "vid " << vid;
        }
        ++seen;
      }
    }
    EXPECT_EQ(seen, static_cast<int64_t>(expected_.size()));
  }

  /// Arms a simulated driver crash at `superstep` (fires on every hit of
  /// `point` while that superstep is executing).
  void ArmCrashAt(const std::string& point, int64_t superstep) {
    FaultSpec spec;
    spec.action = Action::kCrash;
    spec.scope_superstep = superstep;
    FaultInjector::Global().Arm(point, spec);
  }

  TempDir dir_{"crash-recovery-test"};
  DistributedFileSystem dfs_;
  std::vector<std::unique_ptr<SimulatedCluster>> clusters_;
  int process_count_ = 0;
  std::vector<double> expected_;
};

TEST_F(CrashRecoveryTest, ResumeAfterDriverCrashRecoversFromCheckpoint) {
  PregelixJobConfig job;
  job.name = "sssp-crash";
  job.job_id = "crash-job";
  job.input_dir = "input";
  job.output_dir = "out-crash";
  job.checkpoint_interval = 2;

  ArmCrashAt("pregel.gs.write", /*superstep=*/5);
  JobResult result;
  auto runtime = NewProcess();
  Status s = RunSssp(runtime.get(), job, &result);
  ASSERT_TRUE(s.IsAborted()) << s.ToString();
  // The failed job kept its DFS state: checkpoints at supersteps 2 and 4.
  EXPECT_TRUE(dfs_.Exists("jobs/crash-job/ckpt/4/MANIFEST"));
  FaultInjector::Global().Reset();

  job.resume = true;
  auto restarted = NewProcess();
  JobResult resumed;
  s = RunSssp(restarted.get(), job, &resumed);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(resumed.recoveries, 1);
  VerifyOutput("out-crash");
  // A successful resumed run cleans the job directory up behind itself.
  EXPECT_FALSE(dfs_.Exists("jobs/crash-job"));
}

TEST_F(CrashRecoveryTest, TornCheckpointFileFallsBackToOlderCheckpoint) {
  PregelixJobConfig job;
  job.name = "sssp-torn";
  job.job_id = "torn-job";
  job.input_dir = "input";
  job.output_dir = "out-torn";
  job.checkpoint_interval = 2;

  ArmCrashAt("pregel.gs.write", /*superstep=*/5);
  JobResult result;
  auto runtime = NewProcess();
  ASSERT_TRUE(RunSssp(runtime.get(), job, &result).IsAborted());
  FaultInjector::Global().Reset();

  // Corrupt a snapshot file inside the newest checkpoint. Its MANIFEST still
  // parses, so only per-file checksum validation can reject it.
  std::vector<std::string> names;
  ASSERT_TRUE(dfs_.List("jobs/torn-job/ckpt/4", &names).ok());
  bool corrupted = false;
  for (const std::string& name : names) {
    if (name.rfind("vertex", 0) == 0) {
      ASSERT_TRUE(
          dfs_.Write("jobs/torn-job/ckpt/4/" + name, "torn garbage").ok());
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted) << "no vertex snapshot found in checkpoint 4";

  job.resume = true;
  auto restarted = NewProcess();
  JobResult resumed;
  Status s = RunSssp(restarted.get(), job, &resumed);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(resumed.recoveries, 1);  // recovered — from checkpoint 2
  VerifyOutput("out-torn");
}

TEST_F(CrashRecoveryTest, CrashBeforeManifestCommitLeavesCheckpointInvisible) {
  PregelixJobConfig job;
  job.name = "sssp-manifest";
  job.job_id = "manifest-job";
  job.input_dir = "input";
  job.output_dir = "out-manifest";
  job.checkpoint_interval = 2;

  // Crash inside the checkpoint at superstep 4, after the snapshot files are
  // installed but before the MANIFEST commit: the directory exists yet must
  // count for nothing during recovery.
  ArmCrashAt("pregel.checkpoint.manifest", /*superstep=*/4);
  JobResult result;
  auto runtime = NewProcess();
  ASSERT_TRUE(RunSssp(runtime.get(), job, &result).IsAborted());
  FaultInjector::Global().Reset();
  EXPECT_TRUE(dfs_.Exists("jobs/manifest-job/ckpt/4"));
  EXPECT_FALSE(dfs_.Exists("jobs/manifest-job/ckpt/4/MANIFEST"));
  EXPECT_TRUE(dfs_.Exists("jobs/manifest-job/ckpt/2/MANIFEST"));

  job.resume = true;
  auto restarted = NewProcess();
  JobResult resumed;
  Status s = RunSssp(restarted.get(), job, &resumed);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(resumed.recoveries, 1);
  VerifyOutput("out-manifest");
}

TEST_F(CrashRecoveryTest, NoValidCheckpointRestartsFromLoad) {
  PregelixJobConfig job;
  job.name = "sssp-novalid";
  job.job_id = "novalid-job";
  job.input_dir = "input";
  job.output_dir = "out-novalid";
  job.checkpoint_interval = 2;

  ArmCrashAt("pregel.gs.write", /*superstep=*/3);
  JobResult result;
  auto runtime = NewProcess();
  ASSERT_TRUE(RunSssp(runtime.get(), job, &result).IsAborted());
  FaultInjector::Global().Reset();

  // Invalidate every checkpoint the crashed run left behind.
  std::vector<std::string> steps;
  ASSERT_TRUE(dfs_.List("jobs/novalid-job/ckpt", &steps).ok());
  ASSERT_FALSE(steps.empty());
  for (const std::string& step : steps) {
    ASSERT_TRUE(
        dfs_.Delete("jobs/novalid-job/ckpt/" + step + "/MANIFEST").ok());
  }

  job.resume = true;
  auto restarted = NewProcess();
  JobResult resumed;
  Status s = RunSssp(restarted.get(), job, &resumed);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(resumed.recoveries, 0);  // no checkpoint survived: full reload
  VerifyOutput("out-novalid");
}

TEST_F(CrashRecoveryTest, TransientGsWriteFaultIsRetriedAndRecorded) {
  Counter* recovered = MetricsRegistry::Global().GetCounter(
      "pregelix.retry.recovered", {{"op", "gs.write"}});
  const uint64_t base = recovered->value();

  FaultSpec spec;
  spec.trigger = Trigger::kNthHit;
  spec.n = 1;  // first GS write attempt fails with a transient kIoError
  FaultInjector::Global().Arm("pregel.gs.write", spec);

  PregelixJobConfig job;
  job.name = "sssp-transient";
  job.input_dir = "input";
  job.output_dir = "out-transient";
  JobResult result;
  auto runtime = NewProcess();
  Status s = RunSssp(runtime.get(), job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(result.recoveries, 0);  // absorbed by retry, not by recovery
  EXPECT_GT(recovered->value(), base);
  VerifyOutput("out-transient");
}

TEST_F(CrashRecoveryTest, TransientDumpFaultIsRetriedIdempotently) {
  Counter* recovered = MetricsRegistry::Global().GetCounter(
      "pregelix.retry.recovered", {{"op", "dump"}});
  const uint64_t base = recovered->value();

  FaultSpec spec;
  spec.trigger = Trigger::kNthHit;
  spec.n = 1;
  FaultInjector::Global().Arm("pregel.dump", spec);

  PregelixJobConfig job;
  job.name = "sssp-dump-retry";
  job.input_dir = "input";
  job.output_dir = "out-dump-retry";
  JobResult result;
  auto runtime = NewProcess();
  Status s = RunSssp(runtime.get(), job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GT(recovered->value(), base);
  // The rerun truncated and rewrote the output: still exactly one tuple per
  // vertex, all correct.
  VerifyOutput("out-dump-retry");
}

}  // namespace
}  // namespace pregelix
