#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/serde.h"
#include "dataflow/frame.h"
#include "dataflow/operator.h"

namespace pregelix {
namespace {

TEST(FrameTest, AppendAndReadBack) {
  FrameTupleAppender appender(1024, 2);
  const Slice t1[2] = {Slice("key1"), Slice("payload-one")};
  const Slice t2[2] = {Slice("k2"), Slice("")};
  const Slice t3[2] = {Slice(""), Slice("only-payload")};
  ASSERT_TRUE(appender.Append(t1));
  ASSERT_TRUE(appender.Append(t2));
  ASSERT_TRUE(appender.Append(t3));
  EXPECT_EQ(appender.tuple_count(), 3);

  const std::string frame = appender.Take();
  EXPECT_EQ(frame.size(), 1024u);
  FrameTupleAccessor acc(2);
  acc.Reset(Slice(frame));
  ASSERT_EQ(acc.tuple_count(), 3);
  EXPECT_EQ(acc.field(0, 0).ToString(), "key1");
  EXPECT_EQ(acc.field(0, 1).ToString(), "payload-one");
  EXPECT_EQ(acc.field(1, 0).ToString(), "k2");
  EXPECT_EQ(acc.field(1, 1).ToString(), "");
  EXPECT_EQ(acc.field(2, 0).ToString(), "");
  EXPECT_EQ(acc.field(2, 1).ToString(), "only-payload");
}

TEST(FrameTest, AppenderResetsAfterTake) {
  FrameTupleAppender appender(256, 1);
  const Slice t[1] = {Slice("x")};
  ASSERT_TRUE(appender.Append(t));
  appender.Take();
  EXPECT_TRUE(appender.empty());
  ASSERT_TRUE(appender.Append(t));
  EXPECT_EQ(appender.tuple_count(), 1);
}

TEST(FrameTest, FullFrameRejectsThenFitsAfterFlush) {
  FrameTupleAppender appender(128, 1);
  // Tuple = 4 (offset) + 70 (data); two of them plus slots exceed 128.
  const std::string big(70, 'a');
  const Slice t[1] = {Slice(big)};
  ASSERT_TRUE(appender.Append(t));
  ASSERT_FALSE(appender.Append(t));
  appender.Take();
  ASSERT_TRUE(appender.Append(t));
}

TEST(FrameTest, OversizedTupleGrowsEmptyFrame) {
  FrameTupleAppender appender(64, 2);
  const std::string huge(1000, 'z');
  const Slice t[2] = {Slice("k"), Slice(huge)};
  ASSERT_TRUE(appender.Append(t));
  const std::string frame = appender.Take();
  EXPECT_GT(frame.size(), 1000u);
  FrameTupleAccessor acc(2);
  acc.Reset(Slice(frame));
  ASSERT_EQ(acc.tuple_count(), 1);
  EXPECT_EQ(acc.field(0, 1).size(), 1000u);
}

TEST(FrameTest, AppendRawPreservesTuple) {
  FrameTupleAppender a(512, 3);
  const Slice t[3] = {Slice("f0"), Slice("f11"), Slice("f222")};
  ASSERT_TRUE(a.Append(t));
  const std::string frame = a.Take();
  FrameTupleAccessor acc(3);
  acc.Reset(Slice(frame));

  FrameTupleAppender b(512, 3);
  ASSERT_TRUE(b.AppendRaw(acc.tuple_bytes(0)));
  const std::string frame2 = b.Take();
  FrameTupleAccessor acc2(3);
  acc2.Reset(Slice(frame2));
  EXPECT_EQ(acc2.field(0, 0).ToString(), "f0");
  EXPECT_EQ(acc2.field(0, 1).ToString(), "f11");
  EXPECT_EQ(acc2.field(0, 2).ToString(), "f222");
}

TEST(FrameTest, TupleFieldFromRawMatchesAccessor) {
  FrameTupleAppender a(512, 3);
  const Slice t[3] = {Slice("alpha"), Slice(""), Slice("gamma")};
  ASSERT_TRUE(a.Append(t));
  const std::string frame = a.Take();
  FrameTupleAccessor acc(3);
  acc.Reset(Slice(frame));
  const Slice raw = acc.tuple_bytes(0);
  EXPECT_EQ(TupleFieldFromRaw(raw, 3, 0).ToString(), "alpha");
  EXPECT_EQ(TupleFieldFromRaw(raw, 3, 1).ToString(), "");
  EXPECT_EQ(TupleFieldFromRaw(raw, 3, 2).ToString(), "gamma");
}

TEST(FrameTest, ManyTuplesRoundTrip) {
  FrameTupleAppender appender(32 * 1024, 2);
  std::vector<std::string> keys;
  int count = 0;
  for (;; ++count) {
    keys.push_back(OrderedKeyI64(count));
    const std::string payload = "p" + std::to_string(count);
    const Slice t[2] = {Slice(keys.back()), Slice(payload)};
    if (!appender.Append(t)) break;
  }
  EXPECT_GT(count, 500);
  const std::string frame = appender.Take();
  FrameTupleAccessor acc(2);
  acc.Reset(Slice(frame));
  ASSERT_EQ(acc.tuple_count(), count);
  for (int i = 0; i < count; i += 97) {
    EXPECT_EQ(DecodeOrderedI64(acc.field(i, 0).data()), i);
    EXPECT_EQ(acc.field(i, 1).ToString(), "p" + std::to_string(i));
  }
}

TEST(OwnedTupleTest, CopyAndAccess) {
  OwnedTuple t;
  t.AddField(Slice("one"));
  t.AddField(Slice(""));
  t.AddField(Slice("three"));
  EXPECT_EQ(t.field_count(), 3);
  EXPECT_EQ(t.field(0).ToString(), "one");
  EXPECT_EQ(t.field(1).ToString(), "");
  EXPECT_EQ(t.field(2).ToString(), "three");
  auto fields = t.fields();
  EXPECT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[2].ToString(), "three");
}

}  // namespace
}  // namespace pregelix
