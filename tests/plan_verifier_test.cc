// Static plan verifier suite (DESIGN.md §18).
//
// Negative half: hand-built invalid JobSpecs, one per rule — each test
// asserts the precise rule id and that the diagnostic names the offending
// operator or edge, so a refactor cannot silently degrade the messages into
// something a user can't act on.
//
// Positive half: zero false positives over everything the plan generator
// can emit — all 16 plan-matrix combinations plus the load / dump /
// checkpoint / recovery jobs, and every plan the kAuto optimizer can switch
// to (forced through the decision-override hook).
//
// End-to-end half: a kAuto run whose optimizer is forced to switch to a
// plan that a (test-injected) buggy plan generator corrupts. The verifier
// must reject the switch, pin the previous plan, journal
// `plan.verify.reject`, bump `pregelix.verifier.rejects` — and the job must
// complete with output byte-identical to a static-plan run.

#include "dataflow/plan_verifier.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/event_journal.h"
#include "common/metrics_registry.h"
#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dataflow/job.h"
#include "dataflow/operator.h"
#include "dfs/dfs.h"
#include "graph/text_io.h"
#include "pregel/plan_optimizer.h"
#include "pregel/plans.h"
#include "pregel/runtime.h"
#include "pregel/state.h"

namespace pregelix {
namespace {

// ---------------------------------------------------------------------------
// Unit half: one invalid spec per rule

std::shared_ptr<LambdaOperatorDescriptor> Op(const std::string& name) {
  return std::make_shared<LambdaOperatorDescriptor>(
      name, [](TaskContext&) { return Status::OK(); });
}

ConnectorSpec Edge(int src, int src_out, int dst, int dst_in,
                   ConnectorKind kind = ConnectorKind::kMToNPartition) {
  ConnectorSpec c;
  c.src_op = src;
  c.src_output = src_out;
  c.dst_op = dst;
  c.dst_input = dst_in;
  c.kind = kind;
  return c;
}

/// The first violation carrying `rule`, or nullptr.
const PlanViolation* Find(const PlanVerifyResult& result,
                          const std::string& rule) {
  for (const PlanViolation& v : result.violations) {
    if (v.rule == rule) return &v;
  }
  return nullptr;
}

/// Asserts exactly one rule fired and returns its message.
std::string ExpectOnly(const PlanVerifyResult& result,
                       const std::string& rule) {
  EXPECT_EQ(result.violations.size(), 1u)
      << result.Render("test");
  const PlanViolation* v = Find(result, rule);
  EXPECT_NE(v, nullptr) << "rule '" << rule << "' did not fire:\n"
                        << result.Render("test");
  return v != nullptr ? v->message : "";
}

TEST(PlanVerifierTest, EmptyPlanIsClean) {
  JobSpec spec;
  EXPECT_TRUE(VerifyPlan(spec).ok());
}

TEST(PlanVerifierTest, SingleOperatorPlanIsClean) {
  JobSpec spec;
  spec.AddOperator(Op("solo"), 4);
  EXPECT_TRUE(VerifyPlan(spec).ok());
}

TEST(PlanVerifierTest, ZeroPartitionsRejected) {
  JobSpec spec;
  spec.AddOperator(Op("broken"), 0);
  const std::string msg = ExpectOnly(VerifyPlan(spec), "op-partitions");
  EXPECT_NE(msg.find("broken(op 0)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("num_partitions is 0"), std::string::npos) << msg;
}

TEST(PlanVerifierTest, SelfLoopRejected) {
  JobSpec spec;
  spec.AddOperator(Op("ouroboros"), 2);
  spec.Connect(Edge(0, 0, 0, 0));
  const PlanVerifyResult result = VerifyPlan(spec);
  const PlanViolation* v = Find(result, "dag-acyclic");
  ASSERT_NE(v, nullptr) << result.Render("test");
  EXPECT_NE(v->message.find("ouroboros(op 0) -> ouroboros(op 0)"),
            std::string::npos)
      << v->message;
}

TEST(PlanVerifierTest, TwoOperatorCycleRejectedWithPath) {
  JobSpec spec;
  spec.AddOperator(Op("ping"), 2);
  spec.AddOperator(Op("pong"), 2);
  spec.Connect(Edge(0, 0, 1, 0));
  spec.Connect(Edge(1, 0, 0, 0));
  const PlanVerifyResult result = VerifyPlan(spec);
  const PlanViolation* v = Find(result, "dag-acyclic");
  ASSERT_NE(v, nullptr) << result.Render("test");
  // The diagnostic renders the actual cycle, both ops named.
  EXPECT_NE(v->message.find("cycle"), std::string::npos);
  EXPECT_NE(v->message.find("ping(op 0)"), std::string::npos) << v->message;
  EXPECT_NE(v->message.find("pong(op 1)"), std::string::npos) << v->message;
}

TEST(PlanVerifierTest, DisconnectedOperatorRejected) {
  JobSpec spec;
  spec.AddOperator(Op("gen"), 2);
  spec.AddOperator(Op("sink"), 2);
  spec.AddOperator(Op("orphan"), 2);
  spec.Connect(Edge(0, 0, 1, 0));
  const std::string msg = ExpectOnly(VerifyPlan(spec), "graph-connected");
  EXPECT_NE(msg.find("orphan(op 2)"), std::string::npos) << msg;
}

TEST(PlanVerifierTest, TwoWritersToOneInputRejected) {
  JobSpec spec;
  spec.AddOperator(Op("a"), 2);
  spec.AddOperator(Op("b"), 2);
  spec.AddOperator(Op("sink"), 2);
  spec.Connect(Edge(0, 0, 2, 0));
  spec.Connect(Edge(1, 0, 2, 0));
  const std::string msg = ExpectOnly(VerifyPlan(spec), "input-single-writer");
  EXPECT_NE(msg.find("sink(op 2)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("2 writers"), std::string::npos) << msg;
  EXPECT_NE(msg.find("connectors #0 and #1"), std::string::npos) << msg;
}

TEST(PlanVerifierTest, OutputFeedingTwoConnectorsRejected) {
  JobSpec spec;
  spec.AddOperator(Op("gen"), 2);
  spec.AddOperator(Op("a"), 2);
  spec.AddOperator(Op("b"), 2);
  spec.Connect(Edge(0, 0, 1, 0));
  spec.Connect(Edge(0, 0, 2, 0));
  const std::string msg = ExpectOnly(VerifyPlan(spec), "port-contiguous");
  EXPECT_NE(msg.find("gen(op 0)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("one sender per output port"), std::string::npos) << msg;
}

TEST(PlanVerifierTest, InputPortGapRejected) {
  JobSpec spec;
  spec.AddOperator(Op("gen"), 2);
  spec.AddOperator(Op("sink"), 2);
  spec.Connect(Edge(0, 0, 1, 1));  // input 1 used, input 0 never
  const std::string msg = ExpectOnly(VerifyPlan(spec), "port-contiguous");
  EXPECT_NE(msg.find("sink(op 1)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("gap before input 1"), std::string::npos) << msg;
}

TEST(PlanVerifierTest, DanglingDeclaredPortRejected) {
  JobSpec spec;
  auto gen = Op("gen");
  gen->DeclarePorts(0, 2);  // declares two outputs, only one connected
  spec.AddOperator(gen, 2);
  spec.AddOperator(Op("sink"), 2);
  spec.Connect(Edge(0, 0, 1, 0));
  const std::string msg = ExpectOnly(VerifyPlan(spec), "port-contiguous");
  EXPECT_NE(msg.find("declares 2 output port(s) but 1 are connected"),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("dangling output port"), std::string::npos) << msg;
}

TEST(PlanVerifierTest, OneToOnePartitionMismatchRejected) {
  JobSpec spec;
  spec.AddOperator(Op("gen"), 4);
  spec.AddOperator(Op("sink"), 2);
  spec.Connect(Edge(0, 0, 1, 0, ConnectorKind::kOneToOne));
  const std::string msg = ExpectOnly(VerifyPlan(spec), "partition-one-to-one");
  EXPECT_NE(msg.find("connector #0 [kOneToOne]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("got 4 -> 2"), std::string::npos) << msg;
}

TEST(PlanVerifierTest, MToOneIntoMultiPartitionDstRejected) {
  JobSpec spec;
  spec.AddOperator(Op("gen"), 4);
  spec.AddOperator(Op("agg"), 2);
  spec.Connect(Edge(0, 0, 1, 0, ConnectorKind::kMToOne));
  const std::string msg = ExpectOnly(VerifyPlan(spec), "partition-m-to-one");
  EXPECT_NE(msg.find("connector #0 [kMToOne]"), std::string::npos) << msg;
  EXPECT_NE(msg.find("exactly 1 dst partition, got 2"), std::string::npos)
      << msg;
}

TEST(PlanVerifierTest, MergeFedByUndeclaredSortOrderRejected) {
  JobSpec spec;
  spec.AddOperator(Op("gen"), 4);  // declares nothing => unsorted output
  spec.AddOperator(Op("sink"), 4);
  spec.Connect(Edge(0, 0, 1, 0, ConnectorKind::kMToNPartitionMerge));
  const std::string msg = ExpectOnly(VerifyPlan(spec), "merge-sorted-input");
  EXPECT_NE(msg.find("kMToNPartitionMerge"), std::string::npos) << msg;
  EXPECT_NE(msg.find("declares unsorted"), std::string::npos) << msg;
}

TEST(PlanVerifierTest, ExplicitlyPipelinedMergeIsDeadlockHazard) {
  JobSpec spec;
  auto gen = Op("gen");
  gen->DeclareOutput(0, {Sortedness::kSortedByKey, Partitioning::kArbitrary});
  spec.AddOperator(gen, 4);
  spec.AddOperator(Op("sink"), 4);
  ConnectorSpec c = Edge(0, 0, 1, 0, ConnectorKind::kMToNPartitionMerge);
  c.policy = ConnectorSpec::Policy::kPipelined;
  spec.Connect(c);
  const std::string msg =
      ExpectOnly(VerifyPlan(spec), "merge-pipelined-deadlock");
  EXPECT_NE(msg.find("deadlock hazard"), std::string::npos) << msg;
  EXPECT_NE(msg.find("4 senders"), std::string::npos) << msg;

  // Single sender: nothing to interleave, no hazard.
  JobSpec single;
  auto gen1 = Op("gen");
  gen1->DeclareOutput(0, {Sortedness::kSortedByKey, Partitioning::kArbitrary});
  single.AddOperator(gen1, 1);
  single.AddOperator(Op("sink"), 4);
  single.Connect(c);
  EXPECT_TRUE(VerifyPlan(single).ok()) << VerifyPlan(single).Render("single");

  // The escape hatch acknowledges the hazard explicitly.
  JobSpec waived;
  auto gen2 = Op("gen");
  gen2->DeclareOutput(0, {Sortedness::kSortedByKey, Partitioning::kArbitrary});
  waived.AddOperator(gen2, 4);
  waived.AddOperator(Op("sink"), 4);
  c.unsafe_allow_pipelined_merge = true;
  waived.Connect(c);
  EXPECT_TRUE(VerifyPlan(waived).ok()) << VerifyPlan(waived).Render("waived");
}

TEST(PlanVerifierTest, CustomPartitionerOnMergeMustDeclareKeyRouting) {
  JobSpec spec;
  auto gen = Op("gen");
  gen->DeclareOutput(0, {Sortedness::kSortedByKey, Partitioning::kArbitrary});
  spec.AddOperator(gen, 4);
  spec.AddOperator(Op("sink"), 4);
  ConnectorSpec c = Edge(0, 0, 1, 0, ConnectorKind::kMToNPartitionMerge);
  c.partitioner = [](const Slice&, uint32_t) { return 0u; };
  spec.Connect(c);
  const std::string msg =
      ExpectOnly(VerifyPlan(spec), "merge-partitioner-key");
  EXPECT_NE(msg.find("partitioner_routes_on_key"), std::string::npos) << msg;

  // Declaring the routing contract clears it.
  JobSpec declared;
  auto gen2 = Op("gen");
  gen2->DeclareOutput(0, {Sortedness::kSortedByKey, Partitioning::kArbitrary});
  declared.AddOperator(gen2, 4);
  declared.AddOperator(Op("sink"), 4);
  c.partitioner_routes_on_key = true;
  declared.Connect(c);
  EXPECT_TRUE(VerifyPlan(declared).ok())
      << VerifyPlan(declared).Render("declared");
}

TEST(PlanVerifierTest, UnmetInputRequirementRejected) {
  JobSpec spec;
  spec.AddOperator(Op("gen"), 4);
  auto sink = Op("sink");
  // Requires sorted arrival, but the plain partitioning connector delivers
  // unordered interleavings.
  sink->DeclareInput(0, {Sortedness::kSortedByKey, Partitioning::kHashByKey});
  spec.AddOperator(sink, 4);
  spec.Connect(Edge(0, 0, 1, 0, ConnectorKind::kMToNPartition));
  const std::string msg = ExpectOnly(VerifyPlan(spec), "input-requirements");
  EXPECT_NE(msg.find("sink(op 1)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("requires {sorted-by-key, hash-by-key}"),
            std::string::npos)
      << msg;
  EXPECT_NE(msg.find("delivers {unsorted, hash-by-key}"), std::string::npos)
      << msg;
}

TEST(PlanVerifierTest, SingletonRequirementNeedsGatheringConnector) {
  JobSpec spec;
  spec.AddOperator(Op("gen"), 4);
  auto agg = Op("agg");
  agg->DeclareInput(0, {Sortedness::kUnsorted, Partitioning::kSingleton});
  spec.AddOperator(agg, 1);
  // Repartitioning into a 1-partition op is not the same as gathering: the
  // declared singleton requirement is still satisfied only by kMToOne.
  spec.Connect(Edge(0, 0, 1, 0, ConnectorKind::kMToNPartition));
  const PlanVerifyResult result = VerifyPlan(spec);
  EXPECT_NE(Find(result, "input-requirements"), nullptr)
      << result.Render("test");

  JobSpec gathered;
  gathered.AddOperator(Op("gen"), 4);
  auto agg2 = Op("agg");
  agg2->DeclareInput(0, {Sortedness::kUnsorted, Partitioning::kSingleton});
  gathered.AddOperator(agg2, 1);
  gathered.Connect(Edge(0, 0, 1, 0, ConnectorKind::kMToOne));
  EXPECT_TRUE(VerifyPlan(gathered).ok())
      << VerifyPlan(gathered).Render("gathered");
}

TEST(PlanVerifierTest, InfeasibleCloneBudgetRejected) {
  JobSpec spec;
  spec.AddOperator(Op("gen"), 4);
  auto hog = Op("hog");
  hog->DeclareMemoryBytes(2u << 20);  // one clone wants 2 MB
  spec.AddOperator(hog, 4);
  spec.Connect(Edge(0, 0, 1, 0));
  PlanVerifyOptions opts;
  opts.worker_ram_bytes = 1u << 20;  // on a 1 MB worker
  const std::string msg = ExpectOnly(VerifyPlan(spec, opts), "budget-feasible");
  EXPECT_NE(msg.find("hog(op 1)"), std::string::npos) << msg;
  EXPECT_NE(msg.find("worker_ram_bytes is 1048576"), std::string::npos) << msg;

  // The same plan on a big-enough worker is feasible; with no target
  // cluster (worker_ram_bytes == 0) the budget rule is off entirely.
  opts.worker_ram_bytes = 16u << 20;
  EXPECT_TRUE(VerifyPlan(spec, opts).ok());
  EXPECT_TRUE(VerifyPlan(spec).ok());
}

TEST(PlanVerifierTest, MergeReceiveFramesCountAgainstTheBudget) {
  // 64 senders x 32 KB materialized read frame = 2 MB pinned at the
  // receiver before its own budget — infeasible on a 1 MB worker even
  // though the declared budget alone would fit.
  JobSpec spec;
  auto gen = Op("gen");
  gen->DeclareOutput(0, {Sortedness::kSortedByKey, Partitioning::kArbitrary});
  spec.AddOperator(gen, 64);
  auto sink = Op("sink");
  sink->DeclareMemoryBytes(64u << 10);
  spec.AddOperator(sink, 4);
  spec.Connect(Edge(0, 0, 1, 0, ConnectorKind::kMToNPartitionMerge));
  PlanVerifyOptions opts;
  opts.worker_ram_bytes = 1u << 20;
  const std::string msg = ExpectOnly(VerifyPlan(spec, opts), "budget-feasible");
  EXPECT_NE(msg.find("merge-receive frames"), std::string::npos) << msg;
}

TEST(PlanVerifierTest, AllViolationsReportedInOnePass) {
  // The verifier never short-circuits: one pass, every diagnostic.
  JobSpec spec;
  spec.AddOperator(Op("broken"), 0);   // op-partitions
  spec.AddOperator(Op("orphan"), 2);   // graph-connected
  spec.AddOperator(Op("ping"), 2);     // dag-acyclic (with pong)
  spec.AddOperator(Op("pong"), 2);
  spec.Connect(Edge(2, 0, 3, 0));
  spec.Connect(Edge(3, 0, 2, 0));
  const PlanVerifyResult result = VerifyPlan(spec);
  EXPECT_NE(Find(result, "op-partitions"), nullptr);
  EXPECT_NE(Find(result, "graph-connected"), nullptr);
  EXPECT_NE(Find(result, "dag-acyclic"), nullptr);
  const std::string rendered = result.Render("multi");
  EXPECT_NE(rendered.find("plan verification failed for job 'multi'"),
            std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("error(s)"), std::string::npos) << rendered;
}

TEST(PlanVerifierTest, VerifyPlanOrErrorWrapsTheDiagnostic) {
  JobSpec spec;
  spec.set_name("bad-job");
  spec.AddOperator(Op("broken"), 0);
  const Status s = VerifyPlanOrError(spec);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.ToString().find("bad-job"), std::string::npos) << s.ToString();
  EXPECT_NE(s.ToString().find("[op-partitions]"), std::string::npos)
      << s.ToString();
}

TEST(PlanVerifierTest, CountVerificationMetersChecksAndViolations) {
  MetricsRegistry registry;
  JobSpec ok_spec;
  ok_spec.AddOperator(Op("solo"), 1);
  CountVerification(&registry, VerifyPlan(ok_spec));
  JobSpec bad;
  bad.AddOperator(Op("broken"), 0);
  CountVerification(&registry, VerifyPlan(bad));
  EXPECT_EQ(registry.GetCounter("pregelix.verifier.checks", {})->value(), 2u);
  EXPECT_EQ(registry
                .GetCounter("pregelix.verifier.violations",
                            {{"rule", "op-partitions"}})
                ->value(),
            1u);
  CountVerification(nullptr, VerifyPlan(bad));  // null registry: no-op
}

// ---------------------------------------------------------------------------
// Positive half: the plan generator's entire output space verifies clean

class GeneratedPlansTest : public ::testing::Test {
 protected:
  GeneratedPlansTest() : dfs_(dir_.Sub("dfs")) {
    config_.num_workers = 4;
    config_.temp_root = dir_.Sub("cluster");
    cluster_ = std::make_unique<SimulatedCluster>(config_);
    ctx_.program = &adapter_;
    ctx_.job_config = &job_;
    ctx_.cluster = cluster_.get();
    ctx_.dfs = &dfs_;
    ctx_.job_id = "verifier-positive";
    ctx_.partitions.resize(cluster_->num_partitions());
    ctx_.gs.num_vertices = 1000;
    ctx_.gs.live_vertices = 1000;
    ctx_.current_superstep = 2;
    opts_ = PlanVerifyOptionsFrom(cluster_->config());
  }

  void ExpectClean(const JobSpec& spec, const std::string& what) {
    const PlanVerifyResult result = VerifyPlan(spec, opts_);
    EXPECT_TRUE(result.ok())
        << "false positive on " << what << ":\n" << result.Render(what);
  }

  TempDir dir_{"verifier-positive"};
  DistributedFileSystem dfs_;
  ClusterConfig config_;
  std::unique_ptr<SimulatedCluster> cluster_;
  SsspProgram program_{0};
  SsspProgram::Adapter adapter_{&program_};
  PregelixJobConfig job_;
  JobRuntimeContext ctx_;
  PlanVerifyOptions opts_;
};

TEST_F(GeneratedPlansTest, AllSixteenMatrixPlansVerifyClean) {
  for (JoinStrategy join :
       {JoinStrategy::kFullOuter, JoinStrategy::kLeftOuter}) {
    for (GroupByStrategy groupby :
         {GroupByStrategy::kSort, GroupByStrategy::kHashSort}) {
      for (GroupByConnector conn :
           {GroupByConnector::kUnmerged, GroupByConnector::kMerged}) {
        for (VertexStorage storage :
             {VertexStorage::kBTree, VertexStorage::kLsmBTree}) {
          job_.join = join;
          job_.groupby = groupby;
          job_.groupby_connector = conn;
          job_.storage = storage;
          ctx_.current_storage = storage;
          const JobSpec spec = BuildSuperstepJob(&ctx_);
          const PlanDecision d{ctx_.current_join, ctx_.current_groupby,
                               ctx_.current_connector};
          ExpectClean(spec, "superstep " + PlanDecisionString(d) + "/" +
                                VertexStorageName(storage));
        }
      }
    }
  }
}

TEST_F(GeneratedPlansTest, AuxiliaryJobsVerifyClean) {
  ExpectClean(BuildLoadJob(&ctx_), "load");
  ExpectClean(BuildDumpJob(&ctx_), "dump");
  ExpectClean(BuildCheckpointJob(&ctx_, 2), "checkpoint");
  ExpectClean(BuildRecoveryJob(&ctx_, 2), "recovery");
}

TEST_F(GeneratedPlansTest, EveryAutoSwitchTargetVerifiesClean) {
  // Whatever plan the optimizer switches to arrives through exactly this
  // path: kAuto knobs + a PlanOptimizer decision. Force each reachable
  // decision through the override hook and verify the resulting spec — a
  // false positive here would mean ResolveAndPublishPlan vetoing a healthy
  // switch at runtime.
  job_.join = JoinStrategy::kAuto;
  job_.groupby = GroupByStrategy::kAuto;
  job_.groupby_connector = GroupByConnector::kAuto;
  ctx_.optimizer = std::make_shared<PlanOptimizer>();
  for (JoinStrategy join :
       {JoinStrategy::kFullOuter, JoinStrategy::kLeftOuter}) {
    for (GroupByStrategy groupby :
         {GroupByStrategy::kSort, GroupByStrategy::kHashSort}) {
      for (GroupByConnector conn :
           {GroupByConnector::kUnmerged, GroupByConnector::kMerged}) {
        SetPlanDecisionOverrideForTesting(
            [join, groupby, conn](int64_t, PlanDecision* d) {
              d->join = join;
              d->groupby = groupby;
              d->connector = conn;
              return true;
            });
        ctx_.current_superstep++;  // Decide() memoizes per superstep
        const JobSpec spec = BuildSuperstepJob(&ctx_);
        const PlanDecision d{ctx_.current_join, ctx_.current_groupby,
                             ctx_.current_connector};
        ExpectClean(spec, "kAuto switch to " + PlanDecisionString(d));
      }
    }
  }
  SetPlanDecisionOverrideForTesting(nullptr);
  ctx_.optimizer.reset();
}

// ---------------------------------------------------------------------------
// End-to-end half: rejected switch falls back, job completes byte-identical

InMemoryGraph PathGraph(int64_t n) {
  InMemoryGraph g;
  g.adj.resize(n);
  for (int64_t v = 0; v + 1 < n; ++v) {
    g.adj[v].push_back(v + 1);
    g.adj[v + 1].push_back(v);
  }
  return g;
}

/// All part files of a DFS output directory, concatenated in list order.
std::string SlurpOutput(DistributedFileSystem& dfs, const std::string& out) {
  std::vector<std::string> names;
  EXPECT_TRUE(dfs.List(out, &names).ok());
  std::string all;
  for (const std::string& part : names) {
    std::string contents;
    EXPECT_TRUE(dfs.Read(out + "/" + part, &contents).ok());
    all += part + ":\n" + contents;
  }
  return all;
}

TEST(VerifierFallbackEndToEndTest, RejectedSwitchKeepsThePreviousPlan) {
  TempDir dir("verifier-fallback");
  DistributedFileSystem dfs(dir.Sub("dfs"));
  const InMemoryGraph graph = PathGraph(24);
  ASSERT_TRUE(WriteGraph(dfs, "path", graph, 2).ok());

  ClusterConfig config;
  config.num_workers = 2;
  config.temp_root = dir.Sub("cluster");

  // Reference run: the plan the fallback should pin us to, end to end.
  std::string want;
  {
    SimulatedCluster cluster(config);
    PregelixRuntime runtime(&cluster, &dfs);
    PregelixJobConfig job;
    job.name = "cc-static";
    job.input_dir = "path";
    job.output_dir = "out-static";
    ConnectedComponentsProgram program;
    ConnectedComponentsProgram::Adapter adapter(&program);
    JobResult result;
    ASSERT_TRUE(runtime.Run(&adapter, job, &result).ok());
    want = SlurpOutput(dfs, "out-static");
    ASSERT_FALSE(want.empty());
  }

  // Adversarial run: the optimizer demands a switch to the merged
  // connector from superstep 2 on, and a (test-injected) buggy plan
  // generator corrupts exactly those merged-connector specs by wiring a
  // second writer onto the group-by input. The verifier must reject every
  // such switch and pin the previous (valid, unmerged) plan.
  SetPlanDecisionOverrideForTesting([](int64_t superstep, PlanDecision* d) {
    d->join = JoinStrategy::kFullOuter;
    d->groupby = GroupByStrategy::kSort;
    d->connector = superstep >= 2 ? GroupByConnector::kMerged
                                  : GroupByConnector::kUnmerged;
    return true;
  });
  SetSuperstepSpecTamperForTesting([](JobRuntimeContext* ctx, JobSpec* spec) {
    if (ctx->current_connector != GroupByConnector::kMerged) return;
    ConnectorSpec dup = spec->connectors()[0];
    spec->Connect(dup);  // duplicate writer + duplicate output binding
  });

  const uint64_t since = EventJournal::Global().last_seq();
  SimulatedCluster cluster(config);
  PregelixRuntime runtime(&cluster, &dfs);
  PregelixJobConfig job;
  job.name = "cc-fallback";
  job.input_dir = "path";
  job.output_dir = "out-fallback";
  job.join = JoinStrategy::kAuto;
  job.groupby = GroupByStrategy::kAuto;
  job.groupby_connector = GroupByConnector::kAuto;
  ConnectedComponentsProgram program;
  ConnectedComponentsProgram::Adapter adapter(&program);
  JobResult result;
  const Status s = runtime.Run(&adapter, job, &result);
  SetPlanDecisionOverrideForTesting(nullptr);
  SetSuperstepSpecTamperForTesting(nullptr);
  ASSERT_TRUE(s.ok()) << s.ToString();

  // The rejected switch never ran: every superstep stayed unmerged, and
  // the decision trail says why.
  bool saw_reject_reason = false;
  for (const PlanDecisionRecord& r : result.plan_decisions) {
    EXPECT_EQ(r.plan.connector, GroupByConnector::kUnmerged)
        << "superstep " << r.superstep << " ran the rejected merged plan";
    if (r.reason.rfind("verify-reject:", 0) == 0) {
      saw_reject_reason = true;
      EXPECT_NE(r.reason.find("input-single-writer"), std::string::npos)
          << r.reason;
    }
  }
  EXPECT_TRUE(saw_reject_reason)
      << "no decision record carries the verify-reject reason";

  // The journal carries the rejection with the rejected and fallback plans.
  bool journaled = false;
  for (const JournalEvent& e : EventJournal::Global().SnapshotSince(since)) {
    if (e.category != "plan.verify.reject") continue;
    std::map<std::string, std::string> kv(e.kv.begin(), e.kv.end());
    EXPECT_NE(kv["rejected"].find("merged"), std::string::npos);
    EXPECT_NE(kv["fallback"].find("unmerged"), std::string::npos);
    EXPECT_NE(kv["rules"].find("input-single-writer"), std::string::npos);
    journaled = true;
  }
  EXPECT_TRUE(journaled) << "no plan.verify.reject event";

  // The meters counted it: at least one reject, and admission checked
  // every job that ran.
  EXPECT_GE(cluster.registry()
                ->GetCounter("pregelix.verifier.rejects",
                             {{"job", "cc-fallback"}})
                ->value(),
            1u);
  EXPECT_GT(
      cluster.registry()->GetCounter("pregelix.verifier.checks", {})->value(),
      0u);

  // And the fallback is not a degraded mode: the output is byte-identical
  // to the static-plan run.
  const std::string got = SlurpOutput(dfs, "out-fallback");
  EXPECT_EQ(got, want)
      << "fallback run output diverged from the static-plan run";
}

}  // namespace
}  // namespace pregelix
