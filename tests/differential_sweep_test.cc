// Randomized differential sweep (ISSUE: fault suite): every physical plan
// in the 2x2x2x2 matrix (join x group-by x connector x storage) runs SSSP
// and CC on a seeded BTC-like graph and PageRank on a seeded webmap-like
// graph, and every dumped tuple is checked against the single-threaded
// `ref_algos` golden results. The graphs are pseudo-random but seeded, so a
// failure reproduces exactly.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "graph/ref_algos.h"
#include "graph/text_io.h"
#include "pregel/plan_optimizer.h"
#include "pregel/runtime.h"

namespace pregelix {
namespace {

using PlanParam =
    std::tuple<JoinStrategy, GroupByStrategy, GroupByConnector, VertexStorage>;

constexpr uint64_t kBtcSeed = 1234;
constexpr uint64_t kWebSeed = 5678;

class DifferentialSweepTest : public ::testing::TestWithParam<PlanParam> {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir("diff-sweep");
    dfs_ = new DistributedFileSystem(dir_->Sub("dfs"));
    GraphStats stats;
    ASSERT_TRUE(
        GenerateBtcLike(*dfs_, "btc", 3, 500, 7.0, kBtcSeed, &stats).ok());
    ASSERT_TRUE(
        GenerateWebmapLike(*dfs_, "web", 3, 400, 6.0, kWebSeed, &stats).ok());
    InMemoryGraph btc, web;
    ASSERT_TRUE(LoadGraph(*dfs_, "btc", &btc).ok());
    ASSERT_TRUE(LoadGraph(*dfs_, "web", &web).ok());
    sssp_ref_ = new std::vector<double>(SsspRef(btc, 0));
    cc_ref_ = new std::vector<int64_t>(CcRef(btc));
    pagerank_ref_ = new std::vector<double>(PageRankRef(web, 5));
  }
  static void TearDownTestSuite() {
    delete sssp_ref_;
    delete cc_ref_;
    delete pagerank_ref_;
    delete dfs_;
    delete dir_;
    sssp_ref_ = nullptr;
    cc_ref_ = nullptr;
    pagerank_ref_ = nullptr;
    dfs_ = nullptr;
    dir_ = nullptr;
  }

  std::string PlanKey() const {
    const auto [join, groupby, connector, storage] = GetParam();
    return std::to_string(static_cast<int>(join)) +
           std::to_string(static_cast<int>(groupby)) +
           std::to_string(static_cast<int>(connector)) +
           std::to_string(static_cast<int>(storage));
  }

  /// Runs `program` under the parameterized plan, returns vid -> value text.
  void RunAndParse(PregelProgram* program, const std::string& name,
                   const std::string& input_dir,
                   std::map<int64_t, std::string>* out) {
    const auto [join, groupby, connector, storage] = GetParam();
    ClusterConfig config;
    config.num_workers = 3;
    config.worker_ram_bytes = 8u << 20;
    config.frame_size = 4 * 1024;
    config.temp_root = dir_->Sub("cluster-" + name + "-" + PlanKey());
    SimulatedCluster cluster(config);
    PregelixRuntime runtime(&cluster, dfs_);

    PregelixJobConfig job;
    job.name = name;
    job.input_dir = input_dir;
    job.output_dir = "out-" + name + "-" + PlanKey();
    job.join = join;
    job.groupby = groupby;
    job.groupby_connector = connector;
    job.storage = storage;
    JobResult result;
    Status s = runtime.Run(program, job, &result);
    ASSERT_TRUE(s.ok()) << s.ToString();

    std::vector<std::string> names;
    ASSERT_TRUE(dfs_->List(job.output_dir, &names).ok());
    for (const std::string& part : names) {
      std::string contents;
      ASSERT_TRUE(dfs_->Read(job.output_dir + "/" + part, &contents).ok());
      std::istringstream lines(contents);
      std::string line;
      while (std::getline(lines, line)) {
        if (line.empty()) continue;
        std::istringstream fields(line);
        int64_t vid;
        std::string value;
        fields >> vid >> value;
        // Tuple-for-tuple: each vertex dumped exactly once.
        EXPECT_TRUE(out->emplace(vid, value).second)
            << "vid " << vid << " dumped twice";
      }
    }
  }

  static TempDir* dir_;
  static DistributedFileSystem* dfs_;
  static std::vector<double>* sssp_ref_;
  static std::vector<int64_t>* cc_ref_;
  static std::vector<double>* pagerank_ref_;
};

TempDir* DifferentialSweepTest::dir_ = nullptr;
DistributedFileSystem* DifferentialSweepTest::dfs_ = nullptr;
std::vector<double>* DifferentialSweepTest::sssp_ref_ = nullptr;
std::vector<int64_t>* DifferentialSweepTest::cc_ref_ = nullptr;
std::vector<double>* DifferentialSweepTest::pagerank_ref_ = nullptr;

TEST_P(DifferentialSweepTest, SsspMatchesReferenceOnSeededBtcGraph) {
  SsspProgram program(0);
  SsspProgram::Adapter adapter(&program);
  std::map<int64_t, std::string> out;
  ASSERT_NO_FATAL_FAILURE(RunAndParse(&adapter, "sssp", "btc", &out));
  ASSERT_EQ(out.size(), sssp_ref_->size());
  for (const auto& [vid, value] : out) {
    ASSERT_LT(static_cast<size_t>(vid), sssp_ref_->size());
    if ((*sssp_ref_)[vid] < 0) {
      EXPECT_EQ(value, "inf") << "vid " << vid;
    } else {
      EXPECT_NEAR(std::stod(value), (*sssp_ref_)[vid], 1e-9) << "vid " << vid;
    }
  }
}

TEST_P(DifferentialSweepTest, CcMatchesReferenceOnSeededBtcGraph) {
  ConnectedComponentsProgram program;
  ConnectedComponentsProgram::Adapter adapter(&program);
  std::map<int64_t, std::string> out;
  ASSERT_NO_FATAL_FAILURE(RunAndParse(&adapter, "cc", "btc", &out));
  ASSERT_EQ(out.size(), cc_ref_->size());
  for (const auto& [vid, value] : out) {
    ASSERT_LT(static_cast<size_t>(vid), cc_ref_->size());
    EXPECT_EQ(std::stoll(value), (*cc_ref_)[vid]) << "vid " << vid;
  }
}

TEST_P(DifferentialSweepTest, PageRankMatchesReferenceOnSeededWebmapGraph) {
  PageRankProgram program(5);
  PageRankProgram::Adapter adapter(&program);
  std::map<int64_t, std::string> out;
  ASSERT_NO_FATAL_FAILURE(RunAndParse(&adapter, "pagerank", "web", &out));
  ASSERT_EQ(out.size(), pagerank_ref_->size());
  for (const auto& [vid, value] : out) {
    ASSERT_LT(static_cast<size_t>(vid), pagerank_ref_->size());
    EXPECT_NEAR(std::stod(value), (*pagerank_ref_)[vid], 1e-9)
        << "vid " << vid;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSixteenPlans, DifferentialSweepTest,
    ::testing::Combine(
        ::testing::Values(JoinStrategy::kFullOuter, JoinStrategy::kLeftOuter),
        ::testing::Values(GroupByStrategy::kSort, GroupByStrategy::kHashSort),
        ::testing::Values(GroupByConnector::kUnmerged,
                          GroupByConnector::kMerged),
        ::testing::Values(VertexStorage::kBTree, VertexStorage::kLsmBTree)));

// The adaptive arm: the legacy per-superstep heuristic and the
// feedback-driven optimizer must land on the same answers as the static
// plans they switch between, whatever trajectory they take.
INSTANTIATE_TEST_SUITE_P(
    AdaptivePlans, DifferentialSweepTest,
    ::testing::Combine(
        ::testing::Values(JoinStrategy::kAdaptive, JoinStrategy::kAuto),
        ::testing::Values(GroupByStrategy::kAuto),
        ::testing::Values(GroupByConnector::kAuto),
        ::testing::Values(VertexStorage::kBTree, VertexStorage::kAuto)));

/// Clears the plan-decision override even when an assertion bails out.
struct ScopedPlanOverride {
  explicit ScopedPlanOverride(PlanDecisionOverride fn) {
    SetPlanDecisionOverrideForTesting(std::move(fn));
  }
  ~ScopedPlanOverride() { SetPlanDecisionOverrideForTesting(nullptr); }
};

/// Adversarial schedule: every switchable knob flips on every superstep —
/// the worst case the hysteresis normally forbids. The runtime must carry
/// Msg/Vertex/Vid state across arbitrary plan boundaries, so the answers
/// must still match the references exactly.
class AdversarialFlipTest : public DifferentialSweepTest {};

TEST_P(AdversarialFlipTest, EverySuperstepPlanFlipMatchesReferences) {
  ScopedPlanOverride guard([](int64_t superstep, PlanDecision* d) {
    const bool odd = superstep % 2 != 0;
    d->join = odd ? JoinStrategy::kFullOuter : JoinStrategy::kLeftOuter;
    d->groupby = odd ? GroupByStrategy::kSort : GroupByStrategy::kHashSort;
    d->connector =
        odd ? GroupByConnector::kUnmerged : GroupByConnector::kMerged;
    return true;
  });

  SsspProgram sssp(0);
  SsspProgram::Adapter sssp_adapter(&sssp);
  std::map<int64_t, std::string> sssp_out;
  ASSERT_NO_FATAL_FAILURE(
      RunAndParse(&sssp_adapter, "sssp-flip", "btc", &sssp_out));
  ASSERT_EQ(sssp_out.size(), sssp_ref_->size());
  for (const auto& [vid, value] : sssp_out) {
    if ((*sssp_ref_)[vid] < 0) {
      EXPECT_EQ(value, "inf") << "vid " << vid;
    } else {
      EXPECT_NEAR(std::stod(value), (*sssp_ref_)[vid], 1e-9) << "vid " << vid;
    }
  }

  ConnectedComponentsProgram cc;
  ConnectedComponentsProgram::Adapter cc_adapter(&cc);
  std::map<int64_t, std::string> cc_out;
  ASSERT_NO_FATAL_FAILURE(RunAndParse(&cc_adapter, "cc-flip", "btc", &cc_out));
  ASSERT_EQ(cc_out.size(), cc_ref_->size());
  for (const auto& [vid, value] : cc_out) {
    EXPECT_EQ(std::stoll(value), (*cc_ref_)[vid]) << "vid " << vid;
  }

  PageRankProgram pagerank(5);
  PageRankProgram::Adapter pr_adapter(&pagerank);
  std::map<int64_t, std::string> pr_out;
  ASSERT_NO_FATAL_FAILURE(
      RunAndParse(&pr_adapter, "pagerank-flip", "web", &pr_out));
  ASSERT_EQ(pr_out.size(), pagerank_ref_->size());
  for (const auto& [vid, value] : pr_out) {
    EXPECT_NEAR(std::stod(value), (*pagerank_ref_)[vid], 1e-9)
        << "vid " << vid;
  }
}

// The override only engages when an optimizer is installed, i.e. under
// all-kAuto knobs; both storage engines get the adversarial treatment.
INSTANTIATE_TEST_SUITE_P(
    AdversarialAllAuto, AdversarialFlipTest,
    ::testing::Combine(
        ::testing::Values(JoinStrategy::kAuto),
        ::testing::Values(GroupByStrategy::kAuto),
        ::testing::Values(GroupByConnector::kAuto),
        ::testing::Values(VertexStorage::kBTree, VertexStorage::kLsmBTree)));

}  // namespace
}  // namespace pregelix
