// EventJournal: ring wraparound, seq continuity, since=/limit filtering,
// JSONL rendering + escaping, the --events-out spill, DumpTail, the
// crash-dump integration (exactly-once), and the fault-injector "fault.fire"
// feed.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/crash_dump.h"
#include "common/event_journal.h"
#include "common/fault_injection.h"
#include "common/temp_dir.h"

namespace pregelix {
namespace {

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(EventJournalTest, SeqStartsAtOneAndIsContinuous) {
  EventJournal journal(16);
  EXPECT_EQ(journal.last_seq(), 0u);
  EXPECT_EQ(journal.Append("a", "job", 1), 1u);
  EXPECT_EQ(journal.Append("b", "job", 2), 2u);
  EXPECT_EQ(journal.Append("c", "", -1), 3u);
  EXPECT_EQ(journal.last_seq(), 3u);
  EXPECT_EQ(journal.dropped(), 0u);

  const std::vector<JournalEvent> all = journal.SnapshotSince(0);
  ASSERT_EQ(all.size(), 3u);
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_EQ(all[i].seq, i + 1);
  }
  EXPECT_EQ(all[0].category, "a");
  EXPECT_EQ(all[2].superstep, -1);
}

TEST(EventJournalTest, RingWraparoundKeepsNewestAndCountsDropped) {
  EventJournal journal(8);
  for (int i = 1; i <= 20; ++i) {
    journal.Append("ev", "job", i);
  }
  EXPECT_EQ(journal.last_seq(), 20u);
  EXPECT_EQ(journal.dropped(), 12u);

  // A replay from 0 only sees the 8 newest events, in seq order.
  const std::vector<JournalEvent> events = journal.SnapshotSince(0);
  ASSERT_EQ(events.size(), 8u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 13 + i);
    EXPECT_EQ(events[i].superstep, static_cast<int64_t>(13 + i));
  }
}

TEST(EventJournalTest, SinceAndLimitFiltering) {
  EventJournal journal(32);
  for (int i = 0; i < 20; ++i) journal.Append("ev", "job", i);

  const std::vector<JournalEvent> tail = journal.SnapshotSince(15);
  ASSERT_EQ(tail.size(), 5u);
  EXPECT_EQ(tail.front().seq, 16u);
  EXPECT_EQ(tail.back().seq, 20u);

  EXPECT_TRUE(journal.SnapshotSince(20).empty());
  EXPECT_TRUE(journal.SnapshotSince(99).empty());

  // limit keeps the *newest* N of the filtered range.
  const std::vector<JournalEvent> newest = journal.SnapshotSince(0, 3);
  ASSERT_EQ(newest.size(), 3u);
  EXPECT_EQ(newest.front().seq, 18u);
  EXPECT_EQ(newest.back().seq, 20u);
}

TEST(EventJournalTest, JsonRenderingEscapesSpecials) {
  JournalEvent e;
  e.seq = 7;
  e.wall_us = 123;
  e.steady_ns = 456;
  e.category = "cat";
  e.job_id = "job \"q\"";
  e.superstep = 3;
  e.kv = {{"key", "line1\nline2\ttab\\slash"}};
  std::ostringstream os;
  WriteEventJson(os, e);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(json.find("\"job\":\"job \\\"q\\\"\""), std::string::npos);
  EXPECT_NE(json.find("line1\\nline2\\ttab\\\\slash"), std::string::npos);
  EXPECT_EQ(json.find('\n'), std::string::npos);  // single line
}

TEST(EventJournalTest, WriteJsonlOneLinePerEvent) {
  EventJournal journal(8);
  journal.Append("a", "j", 1);
  journal.Append("b", "j", 2, {{"k", "v"}});
  std::ostringstream os;
  journal.WriteJsonl(os, 0);
  const std::string out = os.str();
  size_t lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_NE(out.find("\"category\":\"b\""), std::string::npos);
  EXPECT_NE(out.find("\"kv\":{\"k\":\"v\"}"), std::string::npos);
}

TEST(EventJournalTest, SpillWritesEveryEventEvenPastRingCapacity) {
  TempDir dir("journal-spill");
  const std::string path = dir.path() + "/events.jsonl";
  EventJournal journal(4);
  ASSERT_TRUE(journal.SetSpillPath(path).ok());
  for (int i = 1; i <= 10; ++i) journal.Append("ev", "j", i);
  // The ring only holds 4, but the spill holds all 10.
  EXPECT_EQ(journal.SnapshotSince(0).size(), 4u);
  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 10u);
  EXPECT_NE(lines[0].find("\"seq\":1"), std::string::npos);
  EXPECT_NE(lines[9].find("\"seq\":10"), std::string::npos);

  // Disabling the spill stops the file from growing.
  ASSERT_TRUE(journal.SetSpillPath("").ok());
  journal.Append("ev", "j", 11);
  EXPECT_EQ(ReadLines(path).size(), 10u);
}

TEST(EventJournalTest, DumpTailWritesNewestEvents) {
  TempDir dir("journal-tail");
  const std::string path = dir.path() + "/tail.jsonl";
  EventJournal journal(64);
  for (int i = 1; i <= 40; ++i) journal.Append("ev", "j", i);
  ASSERT_TRUE(journal.DumpTail(path, 5).ok());
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_NE(lines.front().find("\"seq\":36"), std::string::npos);
  EXPECT_NE(lines.back().find("\"seq\":40"), std::string::npos);
}

TEST(EventJournalTest, CrashDumpFlushesTailExactlyOnce) {
  TempDir dir("journal-crash");
  const std::string path = dir.path() + "/crash-events.jsonl";
  EventJournal journal(64);
  journal.Append("before", "j", 1);
  crash_dump::Configure(/*tracer=*/nullptr, "", /*registry=*/nullptr, "", "",
                        &journal, path, /*events_spill_active=*/false);
  crash_dump::DumpNow();
  ASSERT_EQ(ReadLines(path).size(), 1u);

  // A second DumpNow is a no-op: events appended in between must not
  // appear (the first dump won).
  journal.Append("after", "j", 2);
  crash_dump::DumpNow();
  const std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"category\":\"before\""), std::string::npos);
}

TEST(EventJournalTest, CrashDumpFlushesLiveSpillInsteadOfTruncating) {
  TempDir dir("journal-crash-spill");
  const std::string path = dir.path() + "/events.jsonl";
  EventJournal journal(4);
  ASSERT_TRUE(journal.SetSpillPath(path).ok());
  for (int i = 1; i <= 9; ++i) journal.Append("ev", "j", i);
  crash_dump::Configure(nullptr, "", nullptr, "", "", &journal, path,
                        /*events_spill_active=*/true);
  crash_dump::DumpNow();
  // All 9 spilled lines survive — the dump must not truncate the live
  // spill down to the 4-event in-memory tail.
  EXPECT_EQ(ReadLines(path).size(), 9u);
  ASSERT_TRUE(journal.SetSpillPath("").ok());
}

TEST(EventJournalTest, FaultInjectorFiresAreJournaled) {
  const uint64_t before = EventJournal::Global().last_seq();
  fault::FaultSpec spec;
  spec.trigger = fault::Trigger::kAlways;
  spec.code = StatusCode::kIoError;
  fault::FaultInjector::Global().Arm("test.journal.point", spec);
  EXPECT_FALSE(fault::MaybeFail("test.journal.point").ok());
  fault::FaultInjector::Global().Reset();

  bool found = false;
  for (const JournalEvent& e : EventJournal::Global().SnapshotSince(before)) {
    if (e.category != "fault.fire") continue;
    for (const auto& [k, v] : e.kv) {
      if (k == "point" && v == "test.journal.point") found = true;
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace pregelix
