// Worker time ledger (DESIGN.md §20): conservation on attach/detach, nested
// scope suspend/resume, reattribution of measured waits, contended-lock
// accounting, guard-misuse counting, the run-file io_wait equality the
// overlap layer guarantees, and end-to-end surface consistency — after a
// full PageRank run, /profilez (JSON and collapsed), the Prometheus
// exposition, and TakeSnapshot must all report the same totals, with zero
// unattributed nanoseconds.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/event_journal.h"
#include "common/metrics.h"
#include "common/metrics_registry.h"
#include "common/mutex.h"
#include "common/temp_dir.h"
#include "common/time_ledger.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "io/overlap.h"
#include "io/run_file.h"
#include "pregel/runtime.h"
#include "server/http.h"
#include "server/job_registry.h"
#include "server/server.h"

namespace pregelix {
namespace {

/// Burns wall time on the steady clock the ledger reads, so every test
/// interval is bounded below deterministically (sleep_for could oversleep,
/// never undersleep — but a spin keeps the thread attached-and-running the
/// way engine threads are).
void SpinFor(uint64_t ns) {
  const uint64_t until = TimeLedger::NowNs() + ns;
  while (TimeLedger::NowNs() < until) {
  }
}

TEST(TimeLedgerTest, AttachDetachConservesExactly) {
  TimeLedger& ledger = TimeLedger::Global();
  ledger.Reset();
  ASSERT_TRUE(TimeLedger::AttachCurrentThread(0, TimeCategory::kCompute,
                                              "unit-op"));
  EXPECT_TRUE(TimeLedger::CurrentThreadAttached());
  // Double attach refuses and stays inert.
  EXPECT_FALSE(
      TimeLedger::AttachCurrentThread(1, TimeCategory::kIdle, "dup"));
  SpinFor(1'000'000);
  TimeLedger::DetachCurrentThread();
  EXPECT_FALSE(TimeLedger::CurrentThreadAttached());

  const TimeLedgerSnapshot snap = ledger.TakeSnapshot();
  EXPECT_EQ(snap.unattributed_ns, 0);
  EXPECT_EQ(snap.misuse_count, 0);
  EXPECT_GE(snap.elapsed_ns, 1'000'000);
  // Conservation: every attached nanosecond is in exactly one bucket.
  EXPECT_EQ(snap.attributed_ns(), snap.elapsed_ns);
  // All of it landed in the base category of the one attached thread.
  EXPECT_EQ(snap.ns(TimeCategory::kCompute), snap.elapsed_ns);
  ASSERT_EQ(snap.cells.size(), 1u);
  EXPECT_EQ(snap.cells[0].worker, 0);
  EXPECT_EQ(snap.cells[0].label, "unit-op");
}

TEST(TimeLedgerTest, NestedScopesSuspendParentWithoutDoubleCounting) {
  TimeLedger& ledger = TimeLedger::Global();
  ledger.Reset();
  ASSERT_TRUE(
      TimeLedger::AttachCurrentThread(0, TimeCategory::kCompute, "nested"));
  SpinFor(500'000);  // compute
  {
    ScopedTimeCategory sort(TimeCategory::kSort);
    SpinFor(2'000'000);
    {
      ScopedTimeCategory merge(TimeCategory::kMerge);
      SpinFor(2'000'000);
    }
    SpinFor(1'000'000);  // back in sort after the nested scope pops
  }
  SpinFor(500'000);  // back in compute
  TimeLedger::DetachCurrentThread();

  const TimeLedgerSnapshot snap = ledger.TakeSnapshot();
  EXPECT_EQ(snap.unattributed_ns, 0);
  EXPECT_EQ(snap.misuse_count, 0);
  EXPECT_EQ(snap.attributed_ns(), snap.elapsed_ns);
  // Each category holds at least its own spins — and strictly less than the
  // whole, which it would swallow if nesting failed to suspend the parent.
  EXPECT_GE(snap.ns(TimeCategory::kSort), 3'000'000);
  EXPECT_GE(snap.ns(TimeCategory::kMerge), 2'000'000);
  EXPECT_GE(snap.ns(TimeCategory::kCompute), 1'000'000);
  EXPECT_LT(snap.ns(TimeCategory::kSort), snap.elapsed_ns);
  EXPECT_LT(snap.ns(TimeCategory::kMerge),
            snap.elapsed_ns - snap.ns(TimeCategory::kSort));
}

TEST(TimeLedgerTest, ReattributeMovesExactNanoseconds) {
  TimeLedger& ledger = TimeLedger::Global();
  ledger.Reset();
  ASSERT_TRUE(
      TimeLedger::AttachCurrentThread(0, TimeCategory::kCompute, "reattr"));
  SpinFor(2'000'000);
  TimeLedger::Reattribute(TimeCategory::kIoWait, 1'000'000);
  // Reattributing into the current category is a no-op by contract.
  {
    ScopedTimeCategory io_wait(TimeCategory::kIoWait);
    TimeLedger::Reattribute(TimeCategory::kIoWait, 123'456'789);
  }
  TimeLedger::DetachCurrentThread();

  const TimeLedgerSnapshot snap = ledger.TakeSnapshot();
  EXPECT_EQ(snap.unattributed_ns, 0);
  // The move is exact: the io_wait bucket carries precisely the measured
  // wait (plus whatever the brief io_wait scope itself accrued, < the spin).
  EXPECT_GE(snap.ns(TimeCategory::kIoWait), 1'000'000);
  EXPECT_LT(snap.ns(TimeCategory::kIoWait), 2'000'000);
  // Conservation survives the move — it shifts, never creates, time.
  EXPECT_EQ(snap.attributed_ns(), snap.elapsed_ns);
}

TEST(TimeLedgerTest, CrossThreadGuardDestructionIsCountedNotCorrupting) {
  TimeLedger& ledger = TimeLedger::Global();
  ledger.Reset();

  std::unique_ptr<ScopedTimeCategory> stray;
  std::atomic<bool> guard_made{false};
  std::atomic<bool> may_detach{false};
  std::thread t([&]() {
    ASSERT_TRUE(
        TimeLedger::AttachCurrentThread(7, TimeCategory::kCompute, "owner"));
    stray = std::make_unique<ScopedTimeCategory>(TimeCategory::kSort);
    guard_made.store(true);
    while (!may_detach.load()) {
    }
    // Detaching with the guard still open is the second misuse: the stack
    // entry is counted and the bracketed time stays in its category.
    TimeLedger::DetachCurrentThread();
  });
  while (!guard_made.load()) {
  }
  // First misuse: destroyed on this (unattached) thread — the guard must
  // skip accounting instead of touching the owner's stack.
  stray.reset();
  may_detach.store(true);
  t.join();

  const TimeLedgerSnapshot snap = ledger.TakeSnapshot();
  EXPECT_EQ(snap.misuse_count, 2);
  // Misuse never costs nanoseconds: conservation still holds exactly.
  EXPECT_EQ(snap.unattributed_ns, 0);
  EXPECT_EQ(snap.attributed_ns(), snap.elapsed_ns);
}

TEST(TimeLedgerTest, GuardsAreInertOnUnattachedThreads) {
  TimeLedger& ledger = TimeLedger::Global();
  ledger.Reset();
  ASSERT_FALSE(TimeLedger::CurrentThreadAttached());
  {
    ScopedTimeCategory sort(TimeCategory::kSort);
    ScopedTimeCategory merge(TimeCategory::kMerge);
  }
  TimeLedger::Reattribute(TimeCategory::kIoWait, 1'000'000);
  TimeLedger::ChargeLockWait("inert_lock", 1'000'000);
  const TimeLedgerSnapshot snap = ledger.TakeSnapshot();
  EXPECT_EQ(snap.misuse_count, 0);
  EXPECT_EQ(snap.attributed_ns(), 0);
  EXPECT_TRUE(snap.locks.empty());
}

TEST(TimeLedgerTest, ContendedMutexChargesLockWaitTable) {
  TimeLedger& ledger = TimeLedger::Global();
  ledger.Reset();

  Mutex contended("ledger_test_lock", LockRank::kChannel);
  std::atomic<bool> held{false};
  std::thread holder([&]() {
    MutexLock lock(&contended);
    held.store(true);
    SpinFor(5'000'000);
  });
  while (!held.load()) {
  }

  ASSERT_TRUE(
      TimeLedger::AttachCurrentThread(0, TimeCategory::kCompute, "waiter"));
  {
    // Blocks until the holder releases: a contended acquisition, so
    // pregelix::Mutex charges the blocked interval to the ledger.
    MutexLock lock(&contended);
  }
  TimeLedger::DetachCurrentThread();
  holder.join();

  const TimeLedgerSnapshot snap = ledger.TakeSnapshot();
  EXPECT_EQ(snap.unattributed_ns, 0);
  EXPECT_EQ(snap.attributed_ns(), snap.elapsed_ns);
  EXPECT_GT(snap.ns(TimeCategory::kLockWait), 0);
  bool found = false;
  for (const TimeLedgerSnapshot::LockWait& l : snap.locks) {
    if (l.name != "ledger_test_lock") continue;
    found = true;
    EXPECT_GE(l.count, 1);
    EXPECT_GT(l.ns, 0);
    // The per-lock table and the category bucket measure the same blocked
    // intervals (other engine locks may add to the bucket, never subtract).
    EXPECT_LE(l.ns, snap.ns(TimeCategory::kLockWait));
  }
  EXPECT_TRUE(found);
}

TEST(TimeLedgerTest, DisabledLedgerRefusesAttachesAndStaysEmpty) {
  TimeLedger& ledger = TimeLedger::Global();
  ledger.Reset();
  ledger.SetEnabled(false);
  EXPECT_FALSE(
      TimeLedger::AttachCurrentThread(0, TimeCategory::kCompute, "off"));
  {
    ScopedTimeCategory sort(TimeCategory::kSort);
    SpinFor(100'000);
  }
  ledger.SetEnabled(true);
  const TimeLedgerSnapshot snap = ledger.TakeSnapshot();
  EXPECT_EQ(snap.elapsed_ns, 0);
  EXPECT_EQ(snap.attributed_ns(), 0);
  EXPECT_EQ(snap.misuse_count, 0);
}

// The satellite guarantee from PR 9's profiled waits: the measured
// io_wait_ns counters of an overlapped run file equal the ledger's io_wait
// bucket for the thread that drove them — to the nanosecond, because
// WaitReattribution moves exactly the counter delta.
TEST(TimeLedgerTest, RunFileIoWaitEqualsLedgerBucketExactly) {
  TimeLedger& ledger = TimeLedger::Global();
  ledger.Reset();
  TempDir dir("ledger-runfile");
  WorkerMetrics metrics;
  // A 1-byte budget forces every append to stall behind the previous one.
  OverlapRuntime overlap(/*writebehind_budget_bytes=*/1);

  ASSERT_TRUE(
      TimeLedger::AttachCurrentThread(0, TimeCategory::kCompute, "runfile"));
  const std::string run_path = dir.path() + "/run";
  const std::string block(64 * 1024, 'x');
  uint64_t total_io_wait = 0;
  {
    std::unique_ptr<RunFileWriter> writer;
    ASSERT_TRUE(
        RunFileWriter::Open(run_path, &metrics, &overlap, &writer).ok());
    for (int i = 0; i < 16; ++i) {
      ASSERT_TRUE(writer->AppendBlock(Slice(block)).ok());
    }
    ASSERT_TRUE(writer->Finish().ok());
    EXPECT_GT(writer->io_wait_ns(), 0u);
    total_io_wait += writer->io_wait_ns();
  }
  {
    std::unique_ptr<RunFileReader> reader;
    ASSERT_TRUE(
        RunFileReader::Open(run_path, &metrics, &overlap, &reader).ok());
    std::string out;
    int blocks = 0;
    for (;;) {
      const Status s = reader->NextBlock(&out);
      if (!s.ok()) break;
      ++blocks;
    }
    EXPECT_EQ(blocks, 16);
    total_io_wait += reader->io_wait_ns();
  }
  TimeLedger::DetachCurrentThread();

  const TimeLedgerSnapshot snap = ledger.TakeSnapshot();
  EXPECT_EQ(snap.unattributed_ns, 0);
  EXPECT_EQ(snap.attributed_ns(), snap.elapsed_ns);
  // Exact equality: the ledger bucket is the same measurement, relocated.
  EXPECT_EQ(snap.ns(TimeCategory::kIoWait),
            static_cast<int64_t>(total_io_wait));
  const std::map<std::string, int64_t> by_op =
      snap.ByLabel(TimeCategory::kIoWait);
  ASSERT_EQ(by_op.count("runfile"), 1u);
  EXPECT_EQ(by_op.at("runfile"), static_cast<int64_t>(total_io_wait));
}

// ---------------------------------------------------------------------------
// End-to-end surface consistency

int64_t JsonInt(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return -1;
  return std::strtoll(json.c_str() + pos + needle.size(), nullptr, 10);
}

TEST(TimeLedgerE2eTest, FullRunConservesAndAllSurfacesAgree) {
  TimeLedger& ledger = TimeLedger::Global();
  ledger.Reset();
  server::JobStatusRegistry::Global().Reset();
  const uint64_t journal_start = EventJournal::Global().last_seq();

  TempDir dir("ledger-e2e");
  DistributedFileSystem dfs(dir.Sub("dfs"));
  {
    ClusterConfig config;
    config.num_workers = 2;
    config.partitions_per_worker = 2;
    config.worker_ram_bytes = 8u << 20;
    config.frame_size = 8 * 1024;
    config.temp_root = dir.Sub("cluster");
    SimulatedCluster cluster(config);
    PregelixRuntime runtime(&cluster, &dfs);
    GraphStats stats;
    ASSERT_TRUE(
        GenerateWebmapLike(dfs, "input/g", 3, 600, 6.0, 42, &stats).ok());

    PageRankProgram program(6);
    PageRankProgram::Adapter adapter(&program);
    PregelixJobConfig job;
    job.name = "ledger-e2e";
    job.job_id = "ledger-e2e";
    job.input_dir = "input/g";
    JobResult result;
    ASSERT_TRUE(runtime.Run(&adapter, job, &result).ok());
    ASSERT_GE(result.supersteps, 6);
  }
  // Cluster destroyed: every engine thread has detached, so the ledger is
  // static and all surfaces below must agree exactly.

  const TimeLedgerSnapshot snap = ledger.TakeSnapshot();
  // Conservation on a full job, across every instrumented thread.
  EXPECT_EQ(snap.unattributed_ns, 0);
  EXPECT_EQ(snap.misuse_count, 0);
  EXPECT_EQ(snap.attributed_ns(), snap.elapsed_ns);
  EXPECT_GT(snap.ns(TimeCategory::kCompute), 0);
  EXPECT_GT(snap.ns(TimeCategory::kBarrierWait), 0);

  // /profilez JSON: byte-for-byte what WriteJson produces, with the same
  // totals the snapshot reports.
  server::ObservabilityServer srv(server::ServerOptions{}, nullptr, nullptr,
                                  nullptr);
  server::HttpRequest req;
  req.method = "GET";
  req.path = "/profilez";
  const server::HttpResponse json_resp = srv.Dispatch(req);
  EXPECT_EQ(json_resp.code, 200);
  EXPECT_EQ(json_resp.content_type, "application/json");
  std::ostringstream json_os;
  ledger.WriteJson(json_os);
  EXPECT_EQ(json_resp.body, json_os.str());
  EXPECT_EQ(JsonInt(json_resp.body, "elapsed_ns"), snap.elapsed_ns);
  EXPECT_EQ(JsonInt(json_resp.body, "attributed_ns"), snap.attributed_ns());
  EXPECT_EQ(JsonInt(json_resp.body, "unattributed_ns"), 0);

  // /profilez?format=collapsed: one `worker;operator;category ns` line per
  // positive cell entry; the integer sum reproduces the snapshot exactly.
  req.query = "format=collapsed";
  const server::HttpResponse collapsed_resp = srv.Dispatch(req);
  EXPECT_EQ(collapsed_resp.code, 200);
  int64_t collapsed_sum = 0;
  int64_t positive_cell_sum = 0;
  {
    std::istringstream in(collapsed_resp.body);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      const size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      collapsed_sum += std::strtoll(line.c_str() + space + 1, nullptr, 10);
    }
    for (const TimeLedgerSnapshot::Cell& cell : snap.cells) {
      for (int64_t ns : cell.ns) {
        if (ns > 0) positive_cell_sum += ns;
      }
    }
  }
  EXPECT_EQ(collapsed_sum, positive_cell_sum);
  req.query.clear();

  // A bad format is rejected, not served as something else.
  req.query = "format=xml";
  EXPECT_EQ(srv.Dispatch(req).code, 400);
  req.query.clear();

  // Prometheus: pregelix_time_seconds_total series sum back to the
  // attributed total (each value is ns-exact decimal seconds).
  std::ostringstream prom;
  ledger.WritePrometheus(prom);
  const std::string exposition = prom.str();
  double prom_seconds = 0;
  {
    std::istringstream in(exposition);
    std::string line;
    while (std::getline(in, line)) {
      if (line.rfind("pregelix_time_seconds_total{", 0) != 0) continue;
      const size_t space = line.rfind(' ');
      ASSERT_NE(space, std::string::npos) << line;
      prom_seconds += std::strtod(line.c_str() + space + 1, nullptr);
    }
  }
  EXPECT_NEAR(prom_seconds * 1e9, static_cast<double>(snap.attributed_ns()),
              1e4);
  // The per-operator io_wait family mirrors the ledger bucket by label.
  for (const auto& [label, ns] : snap.ByLabel(TimeCategory::kIoWait)) {
    EXPECT_NE(
        exposition.find("pregelix_io_wait_seconds_total{operator=\"" + label),
        std::string::npos)
        << label;
    (void)ns;
  }

  // /metrics carries the ledger families and its conservation gauges.
  req.path = "/metrics";
  const server::HttpResponse metrics_resp = srv.Dispatch(req);
  EXPECT_EQ(metrics_resp.code, 200);
  EXPECT_NE(metrics_resp.body.find("pregelix_time_seconds_total"),
            std::string::npos);
  EXPECT_NE(metrics_resp.body.find("pregelix_ledger_unattributed_ns"),
            std::string::npos);

  // Per-superstep ledger deltas reached the job registry and /jobs/<id>.
  server::JobStatus status;
  ASSERT_TRUE(server::JobStatusRegistry::Global().Get("ledger-e2e", &status));
  ASSERT_FALSE(status.recent.empty());
  int briefs_with_ledger = 0;
  for (const server::SuperstepBrief& b : status.recent) {
    int64_t sum = 0;
    for (int64_t ns : b.ledger_ns) sum += ns;
    if (sum > 0) ++briefs_with_ledger;
  }
  EXPECT_GT(briefs_with_ledger, 0);
  std::ostringstream job_os;
  ASSERT_TRUE(
      server::JobStatusRegistry::Global().WriteJobJson("ledger-e2e", job_os));
  EXPECT_NE(job_os.str().find("\"ledger_ns\":{"), std::string::npos);

  // ... and the superstep.end journal events carry the same rollup.
  std::ostringstream events;
  EventJournal::Global().WriteJsonl(events, journal_start, 0);
  EXPECT_NE(events.str().find("ledger_ns"), std::string::npos);
}

}  // namespace
}  // namespace pregelix
