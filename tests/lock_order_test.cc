#include "common/mutex.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

// This suite acquires locks in deliberately inverted order to prove the
// detector reports them, and TSan's own deadlock detector (correctly) flags
// the same cycles. Turn that check off for this binary only; data-race
// detection is unaffected. No-op outside TSan builds.
extern "C" const char* __tsan_default_options() {
  return "detect_deadlocks=0";
}

namespace pregelix {
namespace {

using lock_order::Violation;

/// Violations captured by the test handler (the handler is a plain function
/// pointer, so the sink is a file-level global). All scenarios here are
/// single-threaded, so no synchronization is needed.
std::vector<Violation>* g_violations = nullptr;

void RecordingHandler(const Violation& v) { g_violations->push_back(v); }

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    g_violations = &violations_;
    previous_ = lock_order::SetHandler(&RecordingHandler);
    was_enabled_ = lock_order::Enabled();
    lock_order::SetEnabled(true);
    lock_order::ResetGraphForTest();
  }

  void TearDown() override {
    lock_order::ResetGraphForTest();
    lock_order::SetEnabled(was_enabled_);
    lock_order::SetHandler(previous_);
    g_violations = nullptr;
  }

  std::vector<Violation> violations_;
  lock_order::Handler previous_ = nullptr;
  bool was_enabled_ = false;
};

TEST_F(LockOrderTest, RankOrderedNestingIsClean) {
  Mutex outer("cluster", LockRank::kCluster);
  Mutex mid("channel", LockRank::kChannel);
  Mutex inner("metrics_registry", LockRank::kMetricsRegistry);
  {
    MutexLock l1(&outer);
    MutexLock l2(&mid);
    MutexLock l3(&inner);
  }
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LockOrderTest, RankInversionIsReportedWithBothNamesAndRanks) {
  Mutex hi("metrics_registry", LockRank::kMetricsRegistry);
  Mutex lo("channel", LockRank::kChannel);
  {
    MutexLock l1(&hi);
    MutexLock l2(&lo);  // rank 20 under rank 70: inversion
  }
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].kind, Violation::Kind::kRankInversion);
  const std::string& report = violations_[0].report;
  EXPECT_NE(report.find("rank inversion"), std::string::npos) << report;
  EXPECT_NE(report.find("\"channel\" (rank 20)"), std::string::npos) << report;
  EXPECT_NE(report.find("\"metrics_registry\" (rank 70)"), std::string::npos)
      << report;
  // The report includes the acquiring thread's held-lock stack.
  EXPECT_NE(report.find("metrics_registry(rank 70)"), std::string::npos)
      << report;
}

TEST_F(LockOrderTest, EqualRankCountsAsInversion) {
  // Two distinct locks of the same rank: "strictly greater" is the rule,
  // so same-rank nesting is rejected (it permits an A/B deadlock).
  Mutex a("channel", LockRank::kChannel);
  Mutex b("channel", LockRank::kChannel);
  {
    MutexLock l1(&a);
    MutexLock l2(&b);
  }
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].kind, Violation::Kind::kRankInversion);
}

TEST_F(LockOrderTest, UnrankedLocksSkipTheRankCheck) {
  Mutex ranked("fault_injector", LockRank::kFaultInjector);
  Mutex unranked("test_unranked");
  {
    // Unranked under ranked and ranked under unranked are both allowed;
    // unranked locks participate only in the cycle graph.
    MutexLock l1(&ranked);
    MutexLock l2(&unranked);
  }
  {
    MutexLock l1(&unranked);
    MutexLock l2(&ranked);
  }
  // Note the two blocks above insert fault_injector -> test_unranked and
  // test_unranked -> fault_injector into the acquisition graph, which IS a
  // cycle — exactly why unranked locks are a migration crutch, not a free
  // pass.
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].kind, Violation::Kind::kCycle);
}

TEST_F(LockOrderTest, TwoLockCycleIsReported) {
  Mutex a("lock_a");
  Mutex b("lock_b");
  {
    MutexLock l1(&a);
    MutexLock l2(&b);  // records edge lock_a -> lock_b
  }
  EXPECT_TRUE(violations_.empty());
  {
    MutexLock l1(&b);
    MutexLock l2(&a);  // lock_b -> lock_a completes the cycle
  }
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].kind, Violation::Kind::kCycle);
  const std::string& report = violations_[0].report;
  EXPECT_NE(report.find("completes the cycle"), std::string::npos) << report;
  EXPECT_NE(report.find("lock_a -> lock_b"), std::string::npos) << report;
}

TEST_F(LockOrderTest, CycleReportShowsBothSidesHeldStacks) {
  Mutex a("lock_a");
  Mutex b("lock_b");
  Mutex c("lock_c");
  {
    MutexLock l1(&a);
    MutexLock l2(&b);  // edge lock_a -> lock_b, holder stack [lock_a]
  }
  {
    MutexLock l1(&b);
    MutexLock l2(&c);  // edge lock_b -> lock_c, holder stack [lock_b]
  }
  {
    MutexLock l1(&c);
    MutexLock l2(&a);  // closes lock_a -> lock_b -> lock_c -> lock_a
  }
  ASSERT_EQ(violations_.size(), 1u);
  EXPECT_EQ(violations_[0].kind, Violation::Kind::kCycle);
  const std::string& report = violations_[0].report;
  // This thread's held stack at the closing acquisition...
  EXPECT_NE(report.find("this thread holds [lock_c"), std::string::npos)
      << report;
  // ...plus the holder stack recorded when each prior edge was first seen.
  EXPECT_NE(report.find("edge lock_a -> lock_b first seen with holder stack "
                        "[lock_a]"),
            std::string::npos)
      << report;
  EXPECT_NE(report.find("edge lock_b -> lock_c first seen with holder stack "
                        "[lock_b]"),
            std::string::npos)
      << report;
}

TEST_F(LockOrderTest, KnownEdgeDoesNotReportTwice) {
  Mutex a("lock_a");
  Mutex b("lock_b");
  for (int i = 0; i < 3; ++i) {
    MutexLock l1(&a);
    MutexLock l2(&b);
  }
  EXPECT_TRUE(violations_.empty());
  // The inverted order re-detects the same cycle on each new edge insert
  // attempt... but the edge is only inserted once, so exactly one report.
  for (int i = 0; i < 3; ++i) {
    MutexLock l1(&b);
    MutexLock l2(&a);
  }
  EXPECT_EQ(violations_.size(), 1u);
}

TEST_F(LockOrderTest, HeldLocksTracksTheStack) {
  Mutex outer("outer_lock");
  Mutex inner("inner_lock");
  EXPECT_TRUE(lock_order::HeldLocksForTest().empty());
  {
    MutexLock l1(&outer);
    MutexLock l2(&inner);
    EXPECT_EQ(lock_order::HeldLocksForTest(),
              (std::vector<std::string>{"outer_lock", "inner_lock"}));
  }
  EXPECT_TRUE(lock_order::HeldLocksForTest().empty());
}

TEST_F(LockOrderTest, TryLockTracksButNeverReports) {
  Mutex hi("metrics_registry", LockRank::kMetricsRegistry);
  Mutex lo("channel", LockRank::kChannel);
  MutexLock l1(&hi);
  // try_lock cannot deadlock, so even an inverted try_lock is silent; it
  // still lands on the held stack so later plain acquisitions see it.
  ASSERT_TRUE(lo.try_lock());
  EXPECT_TRUE(violations_.empty());
  EXPECT_EQ(lock_order::HeldLocksForTest(),
            (std::vector<std::string>{"metrics_registry", "channel"}));
  lo.unlock();
}

TEST_F(LockOrderTest, DisabledDetectorChecksNothing) {
  lock_order::SetEnabled(false);
  Mutex hi("metrics_registry", LockRank::kMetricsRegistry);
  Mutex lo("channel", LockRank::kChannel);
  {
    MutexLock l1(&hi);
    MutexLock l2(&lo);
  }
  EXPECT_TRUE(violations_.empty());
}

TEST_F(LockOrderTest, CondVarWaitKeepsTheHeldStackAccurate) {
  Mutex mu("cv_lock");
  CondVar cv;
  MutexLock lock(&mu);
  // WaitFor releases through Mutex::unlock and reacquires through
  // Mutex::lock, so the held stack is empty during the wait and restored
  // after — no violation, and the stack is intact here.
  cv.WaitFor(&mu, std::chrono::milliseconds(1));
  EXPECT_EQ(lock_order::HeldLocksForTest(),
            (std::vector<std::string>{"cv_lock"}));
}

using LockOrderDeathTest = LockOrderTest;

TEST_F(LockOrderDeathTest, RecursiveAcquisitionAbortsWithDefaultHandler) {
  // The default handler prints the report and aborts *before* the
  // underlying std::mutex would self-deadlock.
  EXPECT_DEATH(
      {
        lock_order::SetEnabled(true);
        lock_order::SetHandler(nullptr);  // restore print-and-abort
        Mutex m("recursive_lock");
        m.lock();
        m.lock();
      },
      "recursive acquisition.*recursive_lock");
}

TEST_F(LockOrderDeathTest, RankInversionAbortsWithDefaultHandler) {
  EXPECT_DEATH(
      {
        lock_order::SetEnabled(true);
        lock_order::SetHandler(nullptr);
        Mutex hi("metrics_registry", LockRank::kMetricsRegistry);
        Mutex lo("channel", LockRank::kChannel);
        MutexLock l1(&hi);
        MutexLock l2(&lo);
      },
      "rank inversion");
}

}  // namespace
}  // namespace pregelix
