#include "common/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/metrics.h"

namespace pregelix {
namespace {

TEST(TracerTest, DisabledRecordsNothing) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  {
    TraceSpan span(&tracer, "noop", trace_cat::kDataflow, 0);
    EXPECT_FALSE(span.active());
    span.AddArg("ignored", 1);
  }
  EXPECT_EQ(tracer.event_count(), 0u);
  // Null tracer is equally inert.
  TraceSpan null_span(nullptr, "noop", trace_cat::kDataflow, 0);
  EXPECT_FALSE(null_span.active());
}

TEST(TracerTest, EnableIsCheckedAtSpanStart) {
  Tracer tracer;
  tracer.Enable();
  {
    TraceSpan span(&tracer, "work", trace_cat::kOperator, 3);
    EXPECT_TRUE(span.active());
    // Disabling mid-span does not lose the already-started span.
    tracer.Disable();
  }
  EXPECT_EQ(tracer.event_count(), 1u);
  const std::vector<TraceEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_STREQ(events[0].category, trace_cat::kOperator);
  EXPECT_EQ(events[0].worker, 3);
}

TEST(TracerTest, NestedSpansOrderedByStart) {
  Tracer tracer;
  tracer.Enable();
  {
    TraceSpan outer(&tracer, "outer", trace_cat::kPregel, kTraceDriverWorker);
    {
      TraceSpan inner(&tracer, "inner", trace_cat::kStorage, 0);
      inner.AddArg("depth", 2);
    }
  }
  const std::vector<TraceEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 2u);
  const TraceEvent& first = events[0];
  const TraceEvent& second = events[1];
  // Collect orders by start time (enclosing span first on a same-tick tie);
  // with a microsecond clock both spans can share a start tick AND a zero
  // duration, in which case the order is a legitimate tie — so locate the
  // spans by name and assert the interval relationship instead of indices.
  const TraceEvent& outer = first.name == "outer" ? first : second;
  const TraceEvent& inner = first.name == "inner" ? first : second;
  ASSERT_EQ(outer.name, "outer");
  ASSERT_EQ(inner.name, "inner");
  EXPECT_LE(outer.start_us, inner.start_us);
  // The inner span nests inside the outer interval.
  EXPECT_LE(inner.start_us + inner.duration_us,
            outer.start_us + outer.duration_us);
  // When the spans are distinguishable at all, the outer one sorts first.
  if (first.start_us != second.start_us ||
      first.duration_us != second.duration_us) {
    EXPECT_EQ(first.name, "outer");
  }
}

TEST(TracerTest, EndIsIdempotentAndEarly) {
  Tracer tracer;
  tracer.Enable();
  TraceSpan span(&tracer, "early", trace_cat::kDataflow, 0);
  span.End();
  span.End();  // no double-record
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(TracerTest, MetricsDeltasBecomeArgs) {
  Tracer tracer;
  tracer.Enable();
  WorkerMetrics metrics;
  metrics.AddCpuOps(5);
  {
    TraceSpan span(&tracer, "metered", trace_cat::kOperator, 0, &metrics);
    metrics.AddCpuOps(37);
    metrics.AddNet(1024);
  }
  const std::vector<TraceEvent> events = tracer.Collect();
  ASSERT_EQ(events.size(), 1u);
  int64_t cpu = -1, net = -1;
  for (const auto& [key, value] : events[0].args) {
    if (key == "cpu_ops") cpu = value;
    if (key == "net_bytes") net = value;
  }
  EXPECT_EQ(cpu, 37);  // delta, not the absolute counter
  EXPECT_EQ(net, 1024);
}

TEST(TracerTest, PerThreadBuffersMergeInCollect) {
  Tracer tracer;
  tracer.Enable();
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t]() {
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span(&tracer, "t" + std::to_string(t), trace_cat::kDataflow,
                       t);
        span.AddArg("i", i);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(tracer.event_count(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  const std::vector<TraceEvent> events = tracer.Collect();
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].start_us, events[i].start_us);
  }
  tracer.Clear();
  EXPECT_EQ(tracer.event_count(), 0u);
}

// --- Chrome JSON well-formedness: parse the export back with a minimal
// recursive-descent JSON parser (no third-party dependency).

struct JsonParser {
  const std::string s;  // owned copy: callers may pass temporaries
  size_t i = 0;

  explicit JsonParser(std::string text) : s(std::move(text)) {}

  void Ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\n' || s[i] == '\t' ||
                            s[i] == '\r')) {
      ++i;
    }
  }
  bool Eat(char c) {
    Ws();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool ParseString() {
    Ws();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    while (i < s.size() && s[i] != '"') {
      if (s[i] == '\\') ++i;  // skip escaped char
      ++i;
    }
    if (i >= s.size()) return false;
    ++i;
    return true;
  }
  bool ParseNumber() {
    Ws();
    const size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    while (i < s.size() &&
           (isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
            s[i] == 'e' || s[i] == 'E' || s[i] == '-' || s[i] == '+')) {
      ++i;
    }
    return i > start;
  }
  bool ParseValue() {
    Ws();
    if (i >= s.size()) return false;
    if (s[i] == '"') return ParseString();
    if (s[i] == '{') return ParseObject();
    if (s[i] == '[') return ParseArray();
    if (s.compare(i, 4, "true") == 0) {
      i += 4;
      return true;
    }
    if (s.compare(i, 5, "false") == 0) {
      i += 5;
      return true;
    }
    if (s.compare(i, 4, "null") == 0) {
      i += 4;
      return true;
    }
    return ParseNumber();
  }
  bool ParseObject() {
    if (!Eat('{')) return false;
    if (Eat('}')) return true;
    do {
      if (!ParseString()) return false;
      if (!Eat(':')) return false;
      if (!ParseValue()) return false;
    } while (Eat(','));
    return Eat('}');
  }
  bool ParseArray() {
    if (!Eat('[')) return false;
    if (Eat(']')) return true;
    do {
      if (!ParseValue()) return false;
    } while (Eat(','));
    return Eat(']');
  }
  bool ParseDocument() {
    if (!ParseValue()) return false;
    Ws();
    return i == s.size();
  }
};

size_t CountOccurrences(const std::string& text, const std::string& needle) {
  size_t n = 0;
  for (size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(TracerTest, ChromeTraceJsonParsesBack) {
  Tracer tracer;
  tracer.Enable();
  WorkerMetrics metrics;
  {
    TraceSpan span(&tracer, "load \"quoted\"\n", trace_cat::kPregel,
                   kTraceDriverWorker);
    span.AddArg("superstep", 1);
  }
  {
    TraceSpan span(&tracer, "op", trace_cat::kOperator, 2, &metrics);
    metrics.AddCpuOps(9);
  }

  std::ostringstream os;
  tracer.WriteChromeTrace(os);
  const std::string json = os.str();

  JsonParser parser(json);
  EXPECT_TRUE(parser.ParseDocument()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One complete ("X") event per span, plus process_name metadata for the
  // driver track and worker-2 track.
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"M\""), 2u);
  EXPECT_NE(json.find("driver"), std::string::npos);
  EXPECT_NE(json.find("worker-2"), std::string::npos);

  // File export round-trips through the filesystem too.
  const std::string path = ::testing::TempDir() + "/pregelix_trace_test.json";
  ASSERT_TRUE(tracer.ExportChromeTrace(path).ok());
  std::ifstream in(path);
  std::stringstream file_content;
  file_content << in.rdbuf();
  JsonParser file_parser(file_content.str());
  EXPECT_TRUE(file_parser.ParseDocument()) << file_content.str();
  std::remove(path.c_str());
}

TEST(TracerTest, SummaryJsonParsesBack) {
  Tracer tracer;
  tracer.Enable();
  for (int i = 0; i < 3; ++i) {
    TraceSpan span(&tracer, "repeated", trace_cat::kStorage, 0);
  }
  std::ostringstream os;
  tracer.WriteSummaryJson(os);
  JsonParser parser(os.str());
  EXPECT_TRUE(parser.ParseDocument()) << os.str();
  EXPECT_NE(os.str().find("\"count\":3"), std::string::npos);
}

TEST(TracerTest, GlobalStartsDisabled) {
  // Must hold for the near-zero-cost-when-off guarantee: code paths use
  // Tracer::Global() freely and spans stay inert until someone enables it.
  EXPECT_FALSE(Tracer::Global().enabled());
}

}  // namespace
}  // namespace pregelix
