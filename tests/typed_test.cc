#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "pregel/serde.h"
#include "pregel/typed.h"
#include "pregel/vertex_format.h"

namespace pregelix {
namespace {

// ---------------------------------------------------------------------------
// Serde

TEST(SerdeTypedTest, PodRoundTrips) {
  EXPECT_EQ(SerializeValue<double>(3.25).size(), 8u);
  double d = 0;
  ASSERT_TRUE(DeserializeValue(Slice(SerializeValue(3.25)), &d));
  EXPECT_EQ(d, 3.25);

  int64_t i = 0;
  ASSERT_TRUE(DeserializeValue(Slice(SerializeValue<int64_t>(-17)), &i));
  EXPECT_EQ(i, -17);

  uint8_t b = 0;
  ASSERT_TRUE(DeserializeValue(Slice(SerializeValue<uint8_t>(200)), &b));
  EXPECT_EQ(b, 200);
}

TEST(SerdeTypedTest, StringAndVectorRoundTrips) {
  std::string s;
  ASSERT_TRUE(
      DeserializeValue(Slice(SerializeValue<std::string>("hello")), &s));
  EXPECT_EQ(s, "hello");

  std::vector<int64_t> v;
  ASSERT_TRUE(DeserializeValue(
      Slice(SerializeValue(std::vector<int64_t>{1, -2, 3})), &v));
  EXPECT_EQ(v, (std::vector<int64_t>{1, -2, 3}));

  std::vector<std::string> vs;
  ASSERT_TRUE(DeserializeValue(
      Slice(SerializeValue(std::vector<std::string>{"a", "", "ccc"})), &vs));
  EXPECT_EQ(vs, (std::vector<std::string>{"a", "", "ccc"}));
}

TEST(SerdeTypedTest, PairAndEmpty) {
  std::pair<int64_t, int64_t> p;
  ASSERT_TRUE(DeserializeValue(
      Slice(SerializeValue(std::pair<int64_t, int64_t>(7, -9))), &p));
  EXPECT_EQ(p.first, 7);
  EXPECT_EQ(p.second, -9);
  EXPECT_TRUE(SerializeValue(Empty{}).empty());
}

TEST(SerdeTypedTest, TruncatedInputFails) {
  std::string buf = SerializeValue<double>(1.0);
  buf.resize(4);
  double d;
  EXPECT_FALSE(DeserializeValue(Slice(buf), &d));
  std::vector<int64_t> v;
  std::string vec = SerializeValue(std::vector<int64_t>{1, 2, 3});
  vec.resize(vec.size() - 3);
  EXPECT_FALSE(DeserializeValue(Slice(vec), &v));
}

// ---------------------------------------------------------------------------
// Vertex record format

TEST(VertexFormatTest, RoundTrip) {
  std::string record;
  EncodeVertexRecord(true, Slice("VALUE"),
                     {{7, "e7"}, {9, ""}, {-3, "edge"}}, &record);
  VertexRecordView view;
  ASSERT_TRUE(view.Parse(Slice(record)).ok());
  EXPECT_TRUE(view.halt);
  EXPECT_EQ(view.value.ToString(), "VALUE");
  ASSERT_EQ(view.edges.size(), 3u);
  EXPECT_EQ(view.edges[0].dst, 7);
  EXPECT_EQ(view.edges[0].value.ToString(), "e7");
  EXPECT_EQ(view.edges[1].value.ToString(), "");
  EXPECT_EQ(view.edges[2].dst, -3);
  EXPECT_EQ(VertexEdgeCount(Slice(record)), 3);
  EXPECT_TRUE(VertexHalt(Slice(record)));
}

TEST(VertexFormatTest, HaltFlipInPlace) {
  std::string record;
  EncodeVertexRecord(false, Slice("v"), {{1, "x"}}, &record);
  EXPECT_FALSE(VertexHalt(Slice(record)));
  SetVertexHalt(&record, true);
  EXPECT_TRUE(VertexHalt(Slice(record)));
  VertexRecordView view;
  ASSERT_TRUE(view.Parse(Slice(record)).ok());
  EXPECT_EQ(view.value.ToString(), "v");  // rest untouched
}

TEST(VertexFormatTest, CorruptionDetected) {
  VertexRecordView view;
  EXPECT_FALSE(view.Parse(Slice("ab")).ok());
  std::string record;
  EncodeVertexRecord(false, Slice("value"), {{1, "edge"}}, &record);
  record.resize(record.size() - 2);
  EXPECT_FALSE(view.Parse(Slice(record)).ok());
}

// ---------------------------------------------------------------------------
// MessageIterator

TEST(MessageIteratorTest, CombinedSingleMessage) {
  const std::string payload = SerializeValue<double>(4.5);
  MessageIterator<double> it(Slice(payload), /*combined=*/true,
                             /*has_messages=*/true);
  ASSERT_TRUE(it.HasNext());
  EXPECT_EQ(it.Next(), 4.5);
  EXPECT_FALSE(it.HasNext());
}

TEST(MessageIteratorTest, ListOfMessages) {
  std::string payload;
  for (double d : {1.0, 2.0, 3.0}) {
    std::string item = SerializeValue(d);
    PutLengthPrefixed(&payload, Slice(item));
  }
  MessageIterator<double> it(Slice(payload), /*combined=*/false, true);
  std::vector<double> got;
  while (it.HasNext()) got.push_back(it.Next());
  EXPECT_EQ(got, (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(MessageIteratorTest, NoMessages) {
  MessageIterator<double> it(Slice(), /*combined=*/true,
                             /*has_messages=*/false);
  EXPECT_FALSE(it.HasNext());
  MessageIterator<Empty> it2(Slice(), /*combined=*/true, true);
  EXPECT_TRUE(it2.HasNext());  // zero-byte combined Empty message
  it2.Next();
  EXPECT_FALSE(it2.HasNext());
}

// ---------------------------------------------------------------------------
// TypedProgramAdapter end-to-end on one compute call

class EchoProgram : public TypedVertexProgram<double, double, double> {
 public:
  using Adapter = TypedProgramAdapter<double, double, double>;

  void Compute(VertexT& vertex, MessageIterator<double>& messages) override {
    double sum = 0;
    while (messages.HasNext()) sum += messages.Next();
    vertex.set_value(vertex.value() + sum);
    for (const EdgeT& e : vertex.edges()) {
      vertex.SendMessage(e.dst, vertex.value() + e.value);
    }
    vertex.Contribute(sum);
    if (vertex.superstep() >= 3) vertex.VoteToHalt();
  }

  bool has_combiner() const override { return true; }
  void Combine(double* acc, const double& m) const override { *acc += m; }
  GlobalAggHooks AggregatorHooks() const override {
    return MakeGlobalAgg<double>(0.0, [](double a, double b) { return a + b; });
  }
  std::string FormatValue(int64_t, const double& v) const override {
    return FormatDouble(v);
  }
};

TEST(TypedAdapterTest, ComputeRoundTrip) {
  EchoProgram program;
  EchoProgram::Adapter adapter(&program);

  std::string record;
  ASSERT_TRUE(adapter.InitialVertex(5, {10, 20}, &record).ok());

  ComputeInput input;
  input.vid = 5;
  input.vertex_exists = true;
  input.vertex_bytes = Slice(record);
  input.has_messages = true;
  const std::string payload = SerializeValue<double>(2.5);
  input.message_payload = Slice(payload);
  input.superstep = 1;
  ComputeOutput output;
  ASSERT_TRUE(adapter.Compute(input, &output).ok());

  EXPECT_TRUE(output.vertex_dirty);
  EXPECT_FALSE(output.voted_halt);
  ASSERT_EQ(output.messages.size(), 2u);
  EXPECT_EQ(output.messages[0].first, 10);
  double sent = 0;
  ASSERT_TRUE(DeserializeValue(Slice(output.messages[0].second), &sent));
  EXPECT_EQ(sent, 2.5);  // value (0 + 2.5) + edge value (0)
  EXPECT_TRUE(output.has_aggregate);
  double contributed = 0;
  ASSERT_TRUE(
      DeserializeValue(Slice(output.aggregate_contribution), &contributed));
  EXPECT_EQ(contributed, 2.5);

  // Superstep 3 vote-to-halt propagates.
  input.superstep = 3;
  input.vertex_bytes = Slice(output.vertex_bytes);
  ASSERT_TRUE(adapter.Compute(input, &output).ok());
  EXPECT_TRUE(output.voted_halt);
}

TEST(TypedAdapterTest, MissingVertexGetsDefault) {
  EchoProgram program;
  EchoProgram::Adapter adapter(&program);
  ComputeInput input;
  input.vid = 99;
  input.vertex_exists = false;
  input.has_messages = true;
  const std::string payload = SerializeValue<double>(1.0);
  input.message_payload = Slice(payload);
  input.superstep = 2;
  ComputeOutput output;
  ASSERT_TRUE(adapter.Compute(input, &output).ok());
  EXPECT_TRUE(output.vertex_dirty);  // created vertices must persist
  VertexRecordView view;
  ASSERT_TRUE(view.Parse(Slice(output.vertex_bytes)).ok());
  double value = 0;
  ASSERT_TRUE(DeserializeValue(view.value, &value));
  EXPECT_EQ(value, 1.0);
  EXPECT_TRUE(view.edges.empty());
}

TEST(TypedAdapterTest, UnchangedVertexIsNotDirty) {
  EchoProgram program;
  EchoProgram::Adapter adapter(&program);
  std::string record;
  ASSERT_TRUE(adapter.InitialVertex(1, {}, &record).ok());
  // No messages, superstep 1: value += 0, re-encoded identically.
  ComputeInput input;
  input.vid = 1;
  input.vertex_exists = true;
  input.vertex_bytes = Slice(record);
  input.has_messages = false;
  input.superstep = 1;
  ComputeOutput output;
  ASSERT_TRUE(adapter.Compute(input, &output).ok());
  EXPECT_FALSE(output.vertex_dirty);  // identical bytes: no churn
}

TEST(TypedAdapterTest, CombinerHooksFold) {
  EchoProgram program;
  EchoProgram::Adapter adapter(&program);
  GroupCombiner combiner = adapter.MsgCombiner();
  ASSERT_TRUE(combiner.valid());
  std::string acc;
  combiner.init(Slice(SerializeValue<double>(1.5)), &acc);
  combiner.step(Slice(SerializeValue<double>(2.0)), &acc);
  combiner.step(Slice(SerializeValue<double>(-0.5)), &acc);
  double result = 0;
  ASSERT_TRUE(DeserializeValue(Slice(acc), &result));
  EXPECT_EQ(result, 3.0);
}

TEST(TypedAdapterTest, FormatVertexPrefixesVid) {
  EchoProgram program;
  EchoProgram::Adapter adapter(&program);
  std::string record;
  ASSERT_TRUE(adapter.InitialVertex(42, {}, &record).ok());
  std::string line;
  ASSERT_TRUE(adapter.FormatVertex(42, Slice(record), &line).ok());
  EXPECT_EQ(line.rfind("42 ", 0), 0u);
}

TEST(TypedAdapterTest, MutationsFlowThrough) {
  class MutateOnce : public TypedVertexProgram<int64_t, Empty, int64_t> {
   public:
    void Compute(VertexT& vertex, MessageIterator<int64_t>&) override {
      vertex.AddVertex(100, 7);
      vertex.RemoveVertex(200);
      vertex.VoteToHalt();
    }
    std::string FormatValue(int64_t, const int64_t& v) const override {
      return std::to_string(v);
    }
  };
  MutateOnce program;
  TypedProgramAdapter<int64_t, Empty, int64_t> adapter(&program);
  std::string record;
  ASSERT_TRUE(adapter.InitialVertex(1, {}, &record).ok());
  ComputeInput input;
  input.vid = 1;
  input.vertex_exists = true;
  input.vertex_bytes = Slice(record);
  input.superstep = 1;
  ComputeOutput output;
  ASSERT_TRUE(adapter.Compute(input, &output).ok());
  ASSERT_EQ(output.mutations.size(), 2u);
  EXPECT_EQ(output.mutations[0].op, MutationRecord::Op::kAddVertex);
  EXPECT_EQ(output.mutations[0].vid, 100);
  VertexRecordView view;
  ASSERT_TRUE(view.Parse(Slice(output.mutations[0].vertex_bytes)).ok());
  EXPECT_FALSE(view.halt);  // added vertices start active
  EXPECT_EQ(output.mutations[1].op, MutationRecord::Op::kRemoveVertex);
  EXPECT_EQ(output.mutations[1].vid, 200);
}

}  // namespace
}  // namespace pregelix
