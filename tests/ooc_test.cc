#include <gtest/gtest.h>

#include <sstream>

#include "algorithms/algorithms.h"
#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "graph/ref_algos.h"
#include "graph/text_io.h"
#include "pregel/runtime.h"

namespace pregelix {
namespace {

/// The paper's headline property: Pregelix runs out-of-core workloads
/// transparently. These tests pin the per-worker memory far below the data
/// size and check both correctness and that spilling actually happened.
class OutOfCoreTest : public ::testing::Test {
 protected:
  OutOfCoreTest() : dfs_(dir_.Sub("dfs")) {}

  std::unique_ptr<SimulatedCluster> MakeTinyCluster(size_t worker_ram) {
    ClusterConfig config;
    config.num_workers = 2;
    config.worker_ram_bytes = worker_ram;
    config.frame_size = 4 * 1024;
    config.page_size = 1024;
    config.temp_root = dir_.Sub("cluster-" + std::to_string(worker_ram) +
                                "-" + std::to_string(counter_++));
    return std::make_unique<SimulatedCluster>(config);
  }

  TempDir dir_{"ooc-test"};
  DistributedFileSystem dfs_;
  int counter_ = 0;
};

TEST_F(OutOfCoreTest, PageRankCorrectUnderMemoryPressure) {
  GraphStats stats;
  ASSERT_TRUE(
      GenerateWebmapLike(dfs_, "web", 2, 4000, 8.0, 3, &stats).ok());
  InMemoryGraph graph;
  ASSERT_TRUE(LoadGraph(dfs_, "web", &graph).ok());
  const std::vector<double> expected = PageRankRef(graph, 5);

  // ~128 KB of simulated RAM per worker versus a multi-MB working set.
  auto cluster = MakeTinyCluster(128 * 1024);
  PregelixRuntime runtime(cluster.get(), &dfs_);
  PageRankProgram program(5);
  PageRankProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "pr-ooc";
  job.input_dir = "web";
  job.output_dir = "out";
  JobResult result;
  Status s = runtime.Run(&adapter, job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();

  // Spilling must actually have occurred (this is the out-of-core regime).
  uint64_t disk_bytes = 0;
  for (const auto& snap : cluster->SnapshotAll()) {
    disk_bytes += snap.disk_read_bytes + snap.disk_write_bytes;
  }
  EXPECT_GT(disk_bytes, stats.size_bytes)
      << "expected buffer-cache/group-by spills beyond the input size";

  std::vector<std::string> names;
  ASSERT_TRUE(dfs_.List("out", &names).ok());
  int64_t checked = 0;
  for (const std::string& name : names) {
    std::string contents;
    ASSERT_TRUE(dfs_.Read("out/" + name, &contents).ok());
    std::istringstream lines(contents);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      std::istringstream fields(line);
      int64_t vid;
      double rank;
      fields >> vid >> rank;
      EXPECT_NEAR(rank, expected[vid], 1e-9) << "vid " << vid;
      ++checked;
    }
  }
  EXPECT_EQ(checked, graph.num_vertices());
}

TEST_F(OutOfCoreTest, InMemoryAndOutOfCoreProduceIdenticalMetricsShape) {
  GraphStats stats;
  ASSERT_TRUE(GenerateBtcLike(dfs_, "btc", 2, 3000, 8.0, 5, &stats).ok());

  auto run = [&](size_t worker_ram, JobResult* result,
                 uint64_t* disk_bytes) {
    auto cluster = MakeTinyCluster(worker_ram);
    PregelixRuntime runtime(cluster.get(), &dfs_);
    ConnectedComponentsProgram program;
    ConnectedComponentsProgram::Adapter adapter(&program);
    PregelixJobConfig job;
    job.name = "cc-shape";
    job.input_dir = "btc";
    Status s = runtime.Run(&adapter, job, result);
    ASSERT_TRUE(s.ok()) << s.ToString();
    *disk_bytes = 0;
    for (const auto& snap : cluster->SnapshotAll()) {
      *disk_bytes += snap.disk_read_bytes + snap.disk_write_bytes;
    }
  };
  JobResult big, small;
  uint64_t big_disk = 0, small_disk = 0;
  run(64u << 20, &big, &big_disk);
  run(96 * 1024, &small, &small_disk);
  // Same computation, same number of supersteps...
  EXPECT_EQ(big.supersteps, small.supersteps);
  EXPECT_EQ(big.final_gs.num_vertices, small.final_gs.num_vertices);
  // ...but the memory-starved run paid for it in I/O and simulated time.
  EXPECT_GT(small_disk, 2 * big_disk);
  EXPECT_GT(small.total_sim_seconds, big.total_sim_seconds);
}

TEST_F(OutOfCoreTest, LsmStorageAlsoRunsOutOfCore) {
  GraphStats stats;
  ASSERT_TRUE(GenerateBtcLike(dfs_, "btc2", 2, 2000, 6.0, 6, &stats).ok());
  InMemoryGraph graph;
  ASSERT_TRUE(LoadGraph(dfs_, "btc2", &graph).ok());
  const std::vector<double> expected = SsspRef(graph, 0);

  auto cluster = MakeTinyCluster(128 * 1024);
  PregelixRuntime runtime(cluster.get(), &dfs_);
  SsspProgram program(0);
  SsspProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "sssp-lsm-ooc";
  job.input_dir = "btc2";
  job.output_dir = "out-lsm";
  job.storage = VertexStorage::kLsmBTree;
  job.join = JoinStrategy::kLeftOuter;
  JobResult result;
  Status s = runtime.Run(&adapter, job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();

  std::vector<std::string> names;
  ASSERT_TRUE(dfs_.List("out-lsm", &names).ok());
  int64_t checked = 0;
  for (const std::string& name : names) {
    std::string contents;
    ASSERT_TRUE(dfs_.Read("out-lsm/" + name, &contents).ok());
    std::istringstream lines(contents);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      std::istringstream fields(line);
      int64_t vid;
      double dist;
      fields >> vid >> dist;
      EXPECT_NEAR(dist, expected[vid], 1e-9) << "vid " << vid;
      ++checked;
    }
  }
  EXPECT_EQ(checked, graph.num_vertices());
}

}  // namespace
}  // namespace pregelix
