#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <tuple>

#include "algorithms/algorithms.h"
#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "graph/ref_algos.h"
#include "graph/text_io.h"
#include "pregel/runtime.h"

namespace pregelix {
namespace {

/// Every physical plan must compute the same answer: 2 join strategies x
/// 2 group-by algorithms x 2 group-by connectors x 2 vertex storages = the
/// sixteen tailored executions of paper Section 5.8.
using PlanParam =
    std::tuple<JoinStrategy, GroupByStrategy, GroupByConnector, VertexStorage>;

class PlanMatrixTest : public ::testing::TestWithParam<PlanParam> {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir("plan-matrix");
    dfs_ = new DistributedFileSystem(dir_->Sub("dfs"));
    GraphStats stats;
    ASSERT_TRUE(GenerateBtcLike(*dfs_, "input", 3, 500, 7.0, 77, &stats).ok());
    InMemoryGraph graph;
    ASSERT_TRUE(LoadGraph(*dfs_, "input", &graph).ok());
    expected_ = new std::vector<double>(SsspRef(graph, 0));
  }
  static void TearDownTestSuite() {
    delete expected_;
    delete dfs_;
    delete dir_;
    expected_ = nullptr;
    dfs_ = nullptr;
    dir_ = nullptr;
  }

  static TempDir* dir_;
  static DistributedFileSystem* dfs_;
  static std::vector<double>* expected_;
};

TempDir* PlanMatrixTest::dir_ = nullptr;
DistributedFileSystem* PlanMatrixTest::dfs_ = nullptr;
std::vector<double>* PlanMatrixTest::expected_ = nullptr;

TEST_P(PlanMatrixTest, SsspIdenticalAcrossPhysicalPlans) {
  const auto [join, groupby, connector, storage] = GetParam();

  ClusterConfig config;
  config.num_workers = 3;
  config.worker_ram_bytes = 8u << 20;
  config.frame_size = 4 * 1024;
  config.temp_root = dir_->Sub(
      "cluster-" + std::to_string(static_cast<int>(join)) +
      std::to_string(static_cast<int>(groupby)) +
      std::to_string(static_cast<int>(connector)) +
      std::to_string(static_cast<int>(storage)));
  SimulatedCluster cluster(config);
  PregelixRuntime runtime(&cluster, dfs_);

  SsspProgram program(0);
  SsspProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "sssp-matrix";
  job.input_dir = "input";
  job.join = join;
  job.groupby = groupby;
  job.groupby_connector = connector;
  job.storage = storage;
  JobResult result;
  Status s = runtime.Run(&adapter, job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();

  // Validate against the reference via the final vertex values read through
  // a fresh dump job (separate output dir per plan).
  const std::string out_dir =
      "out-" + std::to_string(static_cast<int>(join)) +
      std::to_string(static_cast<int>(groupby)) +
      std::to_string(static_cast<int>(connector)) +
      std::to_string(static_cast<int>(storage));
  job.output_dir = out_dir;
  JobResult result2;
  s = runtime.Run(&adapter, job, &result2);
  ASSERT_TRUE(s.ok()) << s.ToString();

  std::vector<std::string> names;
  ASSERT_TRUE(dfs_->List(out_dir, &names).ok());
  int64_t seen = 0;
  for (const std::string& name : names) {
    std::string contents;
    ASSERT_TRUE(dfs_->Read(out_dir + "/" + name, &contents).ok());
    std::istringstream lines(contents);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      std::istringstream fields(line);
      int64_t vid;
      std::string value;
      fields >> vid >> value;
      ASSERT_LT(static_cast<size_t>(vid), expected_->size());
      if ((*expected_)[vid] < 0) {
        EXPECT_EQ(value, "inf") << "vid " << vid;
      } else {
        EXPECT_NEAR(std::stod(value), (*expected_)[vid], 1e-9)
            << "vid " << vid;
      }
      ++seen;
    }
  }
  EXPECT_EQ(seen, static_cast<int64_t>(expected_->size()));
}

INSTANTIATE_TEST_SUITE_P(
    AllSixteenPlans, PlanMatrixTest,
    ::testing::Combine(
        ::testing::Values(JoinStrategy::kFullOuter, JoinStrategy::kLeftOuter),
        ::testing::Values(GroupByStrategy::kSort, GroupByStrategy::kHashSort),
        ::testing::Values(GroupByConnector::kUnmerged,
                          GroupByConnector::kMerged),
        ::testing::Values(VertexStorage::kBTree, VertexStorage::kLsmBTree)));

}  // namespace
}  // namespace pregelix
