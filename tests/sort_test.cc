#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <new>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "common/random.h"
#include "common/serde.h"
#include "common/temp_dir.h"
#include "dataflow/ops/sort.h"

// Binary-wide counting allocator: every global operator new bumps a counter,
// so tests can assert that a code path performs zero heap allocations (the
// "no per-tuple allocation on the group-by hit path" guarantee, DESIGN.md
// §13). Replacing these in one TU replaces them for the whole test binary.
namespace {
std::atomic<uint64_t> g_heap_allocs{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pregelix {
namespace {

/// min-combiner over 8-byte little-endian doubles, as SSSP uses.
GroupCombiner MinDoubleCombiner() {
  GroupCombiner c;
  c.init = [](const Slice& payload, std::string* acc) {
    acc->assign(payload.data(), payload.size());
  };
  c.step = [](const Slice& payload, std::string* acc) {
    const double incoming = DecodeDouble(payload.data());
    const double current = DecodeDouble(acc->data());
    if (incoming < current) acc->assign(payload.data(), payload.size());
  };
  return c;
}

/// Concatenating list combiner (the default "gather" combine). Payloads
/// must already be length-prefixed item sequences so that accumulators and
/// payloads share one representation and combining stays associative across
/// spilled runs (a partially combined run entry is just a longer sequence).
GroupCombiner ListCombiner() {
  GroupCombiner c;
  c.init = [](const Slice& payload, std::string* acc) {
    acc->assign(payload.data(), payload.size());
  };
  c.step = [](const Slice& payload, std::string* acc) {
    acc->append(payload.data(), payload.size());
  };
  return c;
}

/// Wraps one message as a single-item sequence for ListCombiner.
std::string ListItem(const std::string& message) {
  std::string out;
  PutLengthPrefixed(&out, message);
  return out;
}

class SortTest : public ::testing::Test {
 protected:
  SortConfig MakeConfig(size_t budget) {
    SortConfig config;
    config.field_count = 2;
    config.key_field = 0;
    config.memory_budget_bytes = budget;
    config.frame_size = 1024;
    config.scratch_prefix = dir_.path() + "/sort";
    config.metrics = &metrics_;
    return config;
  }

  TempDir dir_{"sort-test"};
  WorkerMetrics metrics_;
};

TEST_F(SortTest, InMemorySortNoCombiner) {
  ExternalSortGrouper sorter(MakeConfig(1 << 20));
  Random rnd(5);
  std::vector<int64_t> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.push_back(static_cast<int64_t>(rnd.Uniform(10000)));
    const std::string k = OrderedKeyI64(keys.back());
    const std::string v = "v" + std::to_string(keys.back());
    const Slice t[2] = {Slice(k), Slice(v)};
    ASSERT_TRUE(sorter.Add(t).ok());
  }
  EXPECT_EQ(sorter.runs_spilled(), 0);
  std::sort(keys.begin(), keys.end());
  size_t i = 0;
  ASSERT_TRUE(sorter
                  .Finish([&](std::span<const Slice> fields) {
                    EXPECT_EQ(DecodeOrderedI64(fields[0].data()), keys[i]);
                    ++i;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(i, keys.size());
}

TEST_F(SortTest, SpillingSortKeepsAllTuplesSorted) {
  // 4 KB budget forces many spilled runs.
  ExternalSortGrouper sorter(MakeConfig(4 * 1024));
  Random rnd(6);
  std::multiset<int64_t> expected;
  for (int i = 0; i < 5000; ++i) {
    const int64_t key = static_cast<int64_t>(rnd.Uniform(500));
    expected.insert(key);
    const std::string k = OrderedKeyI64(key);
    const Slice t[2] = {Slice(k), Slice("payload")};
    ASSERT_TRUE(sorter.Add(t).ok());
  }
  EXPECT_GT(sorter.runs_spilled(), 1);
  std::vector<int64_t> seen;
  ASSERT_TRUE(sorter
                  .Finish([&](std::span<const Slice> fields) {
                    seen.push_back(DecodeOrderedI64(fields[0].data()));
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(seen.size(), expected.size());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  std::vector<int64_t> expected_vec(expected.begin(), expected.end());
  EXPECT_EQ(seen, expected_vec);
}

TEST_F(SortTest, MultiPassMergeBeyondFanin) {
  SortConfig config = MakeConfig(512);
  config.merge_fanin = 3;  // force multiple merge passes
  ExternalSortGrouper sorter(config);
  const int n = 3000;
  for (int i = n - 1; i >= 0; --i) {
    const std::string k = OrderedKeyI64(i);
    const Slice t[2] = {Slice(k), Slice("x")};
    ASSERT_TRUE(sorter.Add(t).ok());
  }
  EXPECT_GT(sorter.runs_spilled(), 3);
  int64_t next = 0;
  ASSERT_TRUE(sorter
                  .Finish([&](std::span<const Slice> fields) {
                    EXPECT_EQ(DecodeOrderedI64(fields[0].data()), next);
                    ++next;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(next, n);
}

TEST_F(SortTest, SortGroupByCombinesDuplicates) {
  ExternalSortGrouper grouper(MakeConfig(1 << 20), MinDoubleCombiner());
  // Messages to 100 destinations, 10 each; min payload should win.
  std::map<int64_t, double> expected;
  Random rnd(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t dest = static_cast<int64_t>(rnd.Uniform(100));
    const double dist = rnd.NextDouble() * 100;
    auto it = expected.find(dest);
    if (it == expected.end() || dist < it->second) expected[dest] = dist;
    const std::string k = OrderedKeyI64(dest);
    std::string payload;
    PutDouble(&payload, dist);
    const Slice t[2] = {Slice(k), Slice(payload)};
    ASSERT_TRUE(grouper.Add(t).ok());
  }
  std::map<int64_t, double> got;
  ASSERT_TRUE(grouper
                  .Finish([&](std::span<const Slice> fields) {
                    got[DecodeOrderedI64(fields[0].data())] =
                        DecodeDouble(fields[1].data());
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [dest, dist] : expected) {
    EXPECT_DOUBLE_EQ(got[dest], dist);
  }
}

TEST_F(SortTest, SortGroupByCombinesAcrossSpilledRuns) {
  ExternalSortGrouper grouper(MakeConfig(2048), MinDoubleCombiner());
  std::map<int64_t, double> expected;
  Random rnd(8);
  for (int i = 0; i < 5000; ++i) {
    const int64_t dest = static_cast<int64_t>(rnd.Uniform(50));
    const double dist = rnd.NextDouble() * 100;
    auto it = expected.find(dest);
    if (it == expected.end() || dist < it->second) expected[dest] = dist;
    const std::string k = OrderedKeyI64(dest);
    std::string payload;
    PutDouble(&payload, dist);
    const Slice t[2] = {Slice(k), Slice(payload)};
    ASSERT_TRUE(grouper.Add(t).ok());
  }
  EXPECT_GT(grouper.runs_spilled(), 1);
  int groups = 0;
  ASSERT_TRUE(grouper
                  .Finish([&](std::span<const Slice> fields) {
                    const int64_t dest = DecodeOrderedI64(fields[0].data());
                    EXPECT_DOUBLE_EQ(DecodeDouble(fields[1].data()),
                                     expected[dest]);
                    ++groups;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(groups, 50);
}

TEST_F(SortTest, HashSortGroupByMatchesSortGroupBy) {
  HashSortGrouper hash_grouper(MakeConfig(1 << 20), MinDoubleCombiner());
  ExternalSortGrouper sort_grouper(MakeConfig(1 << 20), MinDoubleCombiner());
  Random rnd(9);
  for (int i = 0; i < 2000; ++i) {
    const int64_t dest = static_cast<int64_t>(rnd.Uniform(64));
    const double dist = rnd.NextDouble();
    const std::string k = OrderedKeyI64(dest);
    std::string payload;
    PutDouble(&payload, dist);
    const Slice t[2] = {Slice(k), Slice(payload)};
    ASSERT_TRUE(hash_grouper.Add(t).ok());
    ASSERT_TRUE(sort_grouper.Add(t).ok());
  }
  std::map<int64_t, double> hash_result, sort_result;
  ASSERT_TRUE(hash_grouper
                  .Finish([&](std::span<const Slice> fields) {
                    hash_result[DecodeOrderedI64(fields[0].data())] =
                        DecodeDouble(fields[1].data());
                    return Status::OK();
                  })
                  .ok());
  ASSERT_TRUE(sort_grouper
                  .Finish([&](std::span<const Slice> fields) {
                    sort_result[DecodeOrderedI64(fields[0].data())] =
                        DecodeDouble(fields[1].data());
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(hash_result, sort_result);
}

TEST_F(SortTest, HashSortSpillsAndStillCombines) {
  HashSortGrouper grouper(MakeConfig(2048), MinDoubleCombiner());
  std::map<int64_t, double> expected;
  Random rnd(10);
  for (int i = 0; i < 4000; ++i) {
    const int64_t dest = static_cast<int64_t>(rnd.Uniform(200));
    const double dist = rnd.NextDouble();
    auto it = expected.find(dest);
    if (it == expected.end() || dist < it->second) expected[dest] = dist;
    const std::string k = OrderedKeyI64(dest);
    std::string payload;
    PutDouble(&payload, dist);
    const Slice t[2] = {Slice(k), Slice(payload)};
    ASSERT_TRUE(grouper.Add(t).ok());
  }
  EXPECT_GT(grouper.runs_spilled(), 0);
  int64_t prev = INT64_MIN;
  int groups = 0;
  ASSERT_TRUE(grouper
                  .Finish([&](std::span<const Slice> fields) {
                    const int64_t dest = DecodeOrderedI64(fields[0].data());
                    EXPECT_GT(dest, prev);  // sorted, distinct
                    prev = dest;
                    EXPECT_DOUBLE_EQ(DecodeDouble(fields[1].data()),
                                     expected[dest]);
                    ++groups;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(groups, static_cast<int>(expected.size()));
}

TEST_F(SortTest, PreclusteredGrouperStreams) {
  PreclusteredGrouper grouper(ListCombiner(), &metrics_);
  std::vector<std::pair<int64_t, std::string>> got;
  auto emit = [&](std::span<const Slice> fields) {
    got.emplace_back(DecodeOrderedI64(fields[0].data()),
                     fields[1].ToString());
    return Status::OK();
  };
  // Sorted input: keys 1,1,2,3,3,3.
  for (const auto& [key, payload] :
       std::vector<std::pair<int64_t, std::string>>{
           {1, "a"}, {1, "b"}, {2, "c"}, {3, "d"}, {3, "e"}, {3, "f"}}) {
    const std::string k = OrderedKeyI64(key);
    ASSERT_TRUE(grouper.Add(k, ListItem(payload), emit).ok());
  }
  ASSERT_TRUE(grouper.Finish(emit).ok());
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].first, 1);
  EXPECT_EQ(got[1].first, 2);
  EXPECT_EQ(got[2].first, 3);
  // Group 3 gathered three payloads.
  Slice acc(got[2].second);
  Slice item;
  int count = 0;
  while (GetLengthPrefixed(&acc, &item)) ++count;
  EXPECT_EQ(count, 3);
}

TEST_F(SortTest, ListCombinerGathersAllMessages) {
  ExternalSortGrouper grouper(MakeConfig(4096), ListCombiner());
  const int dests = 10, per_dest = 37;
  for (int m = 0; m < per_dest; ++m) {
    for (int64_t d = 0; d < dests; ++d) {
      const std::string k = OrderedKeyI64(d);
      const std::string payload = ListItem("m" + std::to_string(m));
      const Slice t[2] = {Slice(k), Slice(payload)};
      ASSERT_TRUE(grouper.Add(t).ok());
    }
  }
  int total_messages = 0, groups = 0;
  ASSERT_TRUE(grouper
                  .Finish([&](std::span<const Slice> fields) {
                    Slice acc = fields[1];
                    Slice item;
                    while (GetLengthPrefixed(&acc, &item)) ++total_messages;
                    ++groups;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(groups, dests);
  EXPECT_EQ(total_messages, dests * per_dest);
}

TEST_F(SortTest, EmptyInputProducesNothing) {
  ExternalSortGrouper sorter(MakeConfig(1024));
  int count = 0;
  ASSERT_TRUE(sorter
                  .Finish([&](std::span<const Slice>) {
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, 0);

  HashSortGrouper grouper(MakeConfig(1024), MinDoubleCombiner());
  ASSERT_TRUE(grouper
                  .Finish([&](std::span<const Slice>) {
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, 0);
}

// Hand-built runs fed straight into internal_sort::MergeRuns: one group's
// fragments sit in three different runs (two of which merge in different
// *passes* at fan-in 2), plus an empty run in the middle. With the
// order-sensitive ListCombiner the final accumulator proves both that
// combining works across run AND pass boundaries and that the loser tree
// breaks key ties by cursor index (run order), i.e. gather order is the
// run-creation order — the stability contract the Pregel gather path
// depends on.
TEST_F(SortTest, MergeRunsCombinesAcrossRunAndPassBoundaries) {
  SortConfig config = MakeConfig(1 << 20);
  config.merge_fanin = 2;
  const std::string k5 = OrderedKeyI64(5), k7 = OrderedKeyI64(7);
  auto write_run = [&](int id,
                       std::vector<std::pair<const std::string*, std::string>>
                           tuples) {
    const std::string path = dir_.path() + "/hand-run-" + std::to_string(id);
    internal_sort::RunWriter writer(config, path);
    for (const auto& [key, payload] : tuples) {
      const std::string item = ListItem(payload);
      const Slice t[2] = {Slice(*key), Slice(item)};
      EXPECT_TRUE(writer.Append(t).ok());
    }
    EXPECT_TRUE(writer.Finish().ok());
    return path;
  };
  std::vector<std::string> runs;
  runs.push_back(write_run(0, {{&k5, "a"}}));
  runs.push_back(write_run(1, {{&k5, "b"}}));
  runs.push_back(write_run(2, {}));  // empty run: exhausted leaf at Init
  runs.push_back(write_run(3, {{&k5, "c"}, {&k7, "x"}}));
  runs.push_back(write_run(4, {{&k7, "y"}}));
  std::vector<std::pair<int64_t, std::vector<std::string>>> got;
  ASSERT_TRUE(internal_sort::MergeRuns(
                  config, ListCombiner(), std::move(runs),
                  [&](std::span<const Slice> fields) {
                    std::vector<std::string> items;
                    Slice acc = fields[1], item;
                    while (GetLengthPrefixed(&acc, &item))
                      items.push_back(item.ToString());
                    got.emplace_back(DecodeOrderedI64(fields[0].data()),
                                     std::move(items));
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].first, 5);
  EXPECT_EQ(got[0].second, (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(got[1].first, 7);
  EXPECT_EQ(got[1].second, (std::vector<std::string>{"x", "y"}));
}

// Duplicate-heavy input through a tiny budget and fan-in 2: every group's
// tuples straddle many runs and several merge passes, and the combined
// result must still be one exact minimum per key.
TEST_F(SortTest, CombinerGroupsStraddleRunsAndPasses) {
  SortConfig config = MakeConfig(512);
  config.merge_fanin = 2;
  ExternalSortGrouper grouper(config, MinDoubleCombiner());
  std::map<int64_t, double> expected;
  Random rnd(21);
  for (int i = 0; i < 3000; ++i) {
    const int64_t dest = static_cast<int64_t>(rnd.Uniform(10));
    const double dist = rnd.NextDouble() * 100;
    auto it = expected.find(dest);
    if (it == expected.end() || dist < it->second) expected[dest] = dist;
    const std::string k = OrderedKeyI64(dest);
    std::string payload;
    PutDouble(&payload, dist);
    const Slice t[2] = {Slice(k), Slice(payload)};
    ASSERT_TRUE(grouper.Add(t).ok());
  }
  // Way more runs than fanin^2 so at least three merge passes happen.
  EXPECT_GT(grouper.runs_spilled(), 8);
  int groups = 0;
  ASSERT_TRUE(grouper
                  .Finish([&](std::span<const Slice> fields) {
                    const int64_t dest = DecodeOrderedI64(fields[0].data());
                    EXPECT_DOUBLE_EQ(DecodeDouble(fields[1].data()),
                                     expected[dest]);
                    ++groups;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(groups, static_cast<int>(expected.size()));
}

// Regression (S1): a combiner step that SHRINKS the accumulator. The old
// byte accounting subtracted sizes as size_t, so a shrink underflowed the
// counter to ~2^64, every later Add thought the table was over budget, and
// the grouper degenerated into spilling a run per tuple. With a generous
// budget there must be no spills at all.
TEST_F(SortTest, HashSortShrinkingAccumulatorDoesNotUnderflowBudget) {
  GroupCombiner last;  // acc := most recent payload (shrinks and grows)
  last.init = [](const Slice& p, std::string* acc) {
    acc->assign(p.data(), p.size());
  };
  last.step = [](const Slice& p, std::string* acc) {
    acc->assign(p.data(), p.size());
  };
  HashSortGrouper grouper(MakeConfig(1 << 20), last);
  const std::string long_payload(64, 'L');
  const std::string short_payload(8, 's');
  for (int round = 0; round < 200; ++round) {
    for (int64_t dest = 0; dest < 16; ++dest) {
      const std::string k = OrderedKeyI64(dest);
      const Slice& p = (round % 2 == 0) ? Slice(long_payload)
                                        : Slice(short_payload);
      const Slice t[2] = {Slice(k), p};
      ASSERT_TRUE(grouper.Add(t).ok());
    }
  }
  EXPECT_EQ(grouper.runs_spilled(), 0);
  int groups = 0;
  ASSERT_TRUE(grouper
                  .Finish([&](std::span<const Slice> fields) {
                    EXPECT_EQ(fields[1].ToString(), short_payload);
                    ++groups;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(groups, 16);
}

// S2: the sort grouper charges the Entry array's capacity against the
// budget, not just the tuple bytes. With empty payloads the per-tuple pool
// cost is 16 bytes but the honest cost is ~32+ (Entry capacity), so spills
// must happen roughly twice as often as a pool-bytes-only accounting would
// predict: 640 tuples at 16 pool bytes each under a 1 KiB budget would
// yield 10 runs; honest accounting yields strictly more.
TEST_F(SortTest, SortGrouperChargesEntryArrayToBudget) {
  ExternalSortGrouper sorter(MakeConfig(1024));
  for (int i = 0; i < 640; ++i) {
    const std::string k = OrderedKeyI64(i);
    const Slice t[2] = {Slice(k), Slice()};
    ASSERT_TRUE(sorter.Add(t).ok());
  }
  EXPECT_GT(sorter.runs_spilled(), 10);
  int64_t next = 0;
  ASSERT_TRUE(sorter
                  .Finish([&](std::span<const Slice> fields) {
                    EXPECT_EQ(DecodeOrderedI64(fields[0].data()), next++);
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(next, 640);
}

// The in-memory hash group-by hit path must not allocate: probing is a
// flat-array walk, the key is compared in place (transparent hash/eq, no
// materialized lookup key), and the min-combiner folds into the resident
// SSO accumulator. Counted with the binary-wide allocator hook above.
TEST_F(SortTest, HashSortHitPathDoesNotAllocate) {
  HashSortGrouper grouper(MakeConfig(1 << 20), MinDoubleCombiner());
  std::vector<std::string> keys;
  std::vector<std::string> payloads;
  for (int64_t dest = 0; dest < 64; ++dest) {
    keys.push_back(OrderedKeyI64(dest));
    std::string payload;
    PutDouble(&payload, 100.0 + static_cast<double>(dest));
    payloads.push_back(payload);
  }
  // Two warm-up rounds: the first creates every group, the second verifies
  // the table is steady (no slot growth pending).
  for (int round = 0; round < 2; ++round) {
    for (size_t i = 0; i < keys.size(); ++i) {
      const Slice t[2] = {Slice(keys[i]), Slice(payloads[i])};
      ASSERT_TRUE(grouper.Add(t).ok());
    }
  }
  const uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int round = 0; round < 100; ++round) {
    for (size_t i = 0; i < keys.size(); ++i) {
      const Slice t[2] = {Slice(keys[i]), Slice(payloads[i])};
      if (!grouper.Add(t).ok()) FAIL() << "Add failed";
    }
  }
  const uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "hit path allocated";
}

// S6: the merge refill boundary is a fault point. Arming it with an error
// makes a spilling Finish surface the injected status instead of OK.
TEST_F(SortTest, MergeRefillFaultPointSurfacesInjectedError) {
  fault::FaultSpec spec;
  spec.trigger = fault::Trigger::kNthHit;
  spec.n = 100;
  spec.code = StatusCode::kIoError;
  spec.message = "injected merge refill failure";
  fault::FaultInjector::Global().Arm("sort.merge.refill", spec);
  ExternalSortGrouper sorter(MakeConfig(1024));
  Random rnd(22);
  for (int i = 0; i < 2000; ++i) {
    const std::string k =
        OrderedKeyI64(static_cast<int64_t>(rnd.Uniform(1000)));
    const Slice t[2] = {Slice(k), Slice("p")};
    ASSERT_TRUE(sorter.Add(t).ok());
  }
  ASSERT_GT(sorter.runs_spilled(), 1);
  const Status s =
      sorter.Finish([](std::span<const Slice>) { return Status::OK(); });
  fault::FaultInjector::Global().Reset();
  ASSERT_FALSE(s.ok());
  EXPECT_TRUE(s.message().find("injected merge refill failure") !=
              std::string::npos)
      << s.message();
}

}  // namespace
}  // namespace pregelix
