#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/serde.h"
#include "common/temp_dir.h"
#include "dataflow/ops/sort.h"

namespace pregelix {
namespace {

/// min-combiner over 8-byte little-endian doubles, as SSSP uses.
GroupCombiner MinDoubleCombiner() {
  GroupCombiner c;
  c.init = [](const Slice& payload, std::string* acc) {
    acc->assign(payload.data(), payload.size());
  };
  c.step = [](const Slice& payload, std::string* acc) {
    const double incoming = DecodeDouble(payload.data());
    const double current = DecodeDouble(acc->data());
    if (incoming < current) acc->assign(payload.data(), payload.size());
  };
  return c;
}

/// Concatenating list combiner (the default "gather" combine). Payloads
/// must already be length-prefixed item sequences so that accumulators and
/// payloads share one representation and combining stays associative across
/// spilled runs (a partially combined run entry is just a longer sequence).
GroupCombiner ListCombiner() {
  GroupCombiner c;
  c.init = [](const Slice& payload, std::string* acc) {
    acc->assign(payload.data(), payload.size());
  };
  c.step = [](const Slice& payload, std::string* acc) {
    acc->append(payload.data(), payload.size());
  };
  return c;
}

/// Wraps one message as a single-item sequence for ListCombiner.
std::string ListItem(const std::string& message) {
  std::string out;
  PutLengthPrefixed(&out, message);
  return out;
}

class SortTest : public ::testing::Test {
 protected:
  SortConfig MakeConfig(size_t budget) {
    SortConfig config;
    config.field_count = 2;
    config.key_field = 0;
    config.memory_budget_bytes = budget;
    config.frame_size = 1024;
    config.scratch_prefix = dir_.path() + "/sort";
    config.metrics = &metrics_;
    return config;
  }

  TempDir dir_{"sort-test"};
  WorkerMetrics metrics_;
};

TEST_F(SortTest, InMemorySortNoCombiner) {
  ExternalSortGrouper sorter(MakeConfig(1 << 20));
  Random rnd(5);
  std::vector<int64_t> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.push_back(static_cast<int64_t>(rnd.Uniform(10000)));
    const std::string k = OrderedKeyI64(keys.back());
    const std::string v = "v" + std::to_string(keys.back());
    const Slice t[2] = {Slice(k), Slice(v)};
    ASSERT_TRUE(sorter.Add(t).ok());
  }
  EXPECT_EQ(sorter.runs_spilled(), 0);
  std::sort(keys.begin(), keys.end());
  size_t i = 0;
  ASSERT_TRUE(sorter
                  .Finish([&](std::span<const Slice> fields) {
                    EXPECT_EQ(DecodeOrderedI64(fields[0].data()), keys[i]);
                    ++i;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(i, keys.size());
}

TEST_F(SortTest, SpillingSortKeepsAllTuplesSorted) {
  // 4 KB budget forces many spilled runs.
  ExternalSortGrouper sorter(MakeConfig(4 * 1024));
  Random rnd(6);
  std::multiset<int64_t> expected;
  for (int i = 0; i < 5000; ++i) {
    const int64_t key = static_cast<int64_t>(rnd.Uniform(500));
    expected.insert(key);
    const std::string k = OrderedKeyI64(key);
    const Slice t[2] = {Slice(k), Slice("payload")};
    ASSERT_TRUE(sorter.Add(t).ok());
  }
  EXPECT_GT(sorter.runs_spilled(), 1);
  std::vector<int64_t> seen;
  ASSERT_TRUE(sorter
                  .Finish([&](std::span<const Slice> fields) {
                    seen.push_back(DecodeOrderedI64(fields[0].data()));
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(seen.size(), expected.size());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  std::vector<int64_t> expected_vec(expected.begin(), expected.end());
  EXPECT_EQ(seen, expected_vec);
}

TEST_F(SortTest, MultiPassMergeBeyondFanin) {
  SortConfig config = MakeConfig(512);
  config.merge_fanin = 3;  // force multiple merge passes
  ExternalSortGrouper sorter(config);
  const int n = 3000;
  for (int i = n - 1; i >= 0; --i) {
    const std::string k = OrderedKeyI64(i);
    const Slice t[2] = {Slice(k), Slice("x")};
    ASSERT_TRUE(sorter.Add(t).ok());
  }
  EXPECT_GT(sorter.runs_spilled(), 3);
  int64_t next = 0;
  ASSERT_TRUE(sorter
                  .Finish([&](std::span<const Slice> fields) {
                    EXPECT_EQ(DecodeOrderedI64(fields[0].data()), next);
                    ++next;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(next, n);
}

TEST_F(SortTest, SortGroupByCombinesDuplicates) {
  ExternalSortGrouper grouper(MakeConfig(1 << 20), MinDoubleCombiner());
  // Messages to 100 destinations, 10 each; min payload should win.
  std::map<int64_t, double> expected;
  Random rnd(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t dest = static_cast<int64_t>(rnd.Uniform(100));
    const double dist = rnd.NextDouble() * 100;
    auto it = expected.find(dest);
    if (it == expected.end() || dist < it->second) expected[dest] = dist;
    const std::string k = OrderedKeyI64(dest);
    std::string payload;
    PutDouble(&payload, dist);
    const Slice t[2] = {Slice(k), Slice(payload)};
    ASSERT_TRUE(grouper.Add(t).ok());
  }
  std::map<int64_t, double> got;
  ASSERT_TRUE(grouper
                  .Finish([&](std::span<const Slice> fields) {
                    got[DecodeOrderedI64(fields[0].data())] =
                        DecodeDouble(fields[1].data());
                    return Status::OK();
                  })
                  .ok());
  ASSERT_EQ(got.size(), expected.size());
  for (const auto& [dest, dist] : expected) {
    EXPECT_DOUBLE_EQ(got[dest], dist);
  }
}

TEST_F(SortTest, SortGroupByCombinesAcrossSpilledRuns) {
  ExternalSortGrouper grouper(MakeConfig(2048), MinDoubleCombiner());
  std::map<int64_t, double> expected;
  Random rnd(8);
  for (int i = 0; i < 5000; ++i) {
    const int64_t dest = static_cast<int64_t>(rnd.Uniform(50));
    const double dist = rnd.NextDouble() * 100;
    auto it = expected.find(dest);
    if (it == expected.end() || dist < it->second) expected[dest] = dist;
    const std::string k = OrderedKeyI64(dest);
    std::string payload;
    PutDouble(&payload, dist);
    const Slice t[2] = {Slice(k), Slice(payload)};
    ASSERT_TRUE(grouper.Add(t).ok());
  }
  EXPECT_GT(grouper.runs_spilled(), 1);
  int groups = 0;
  ASSERT_TRUE(grouper
                  .Finish([&](std::span<const Slice> fields) {
                    const int64_t dest = DecodeOrderedI64(fields[0].data());
                    EXPECT_DOUBLE_EQ(DecodeDouble(fields[1].data()),
                                     expected[dest]);
                    ++groups;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(groups, 50);
}

TEST_F(SortTest, HashSortGroupByMatchesSortGroupBy) {
  HashSortGrouper hash_grouper(MakeConfig(1 << 20), MinDoubleCombiner());
  ExternalSortGrouper sort_grouper(MakeConfig(1 << 20), MinDoubleCombiner());
  Random rnd(9);
  for (int i = 0; i < 2000; ++i) {
    const int64_t dest = static_cast<int64_t>(rnd.Uniform(64));
    const double dist = rnd.NextDouble();
    const std::string k = OrderedKeyI64(dest);
    std::string payload;
    PutDouble(&payload, dist);
    const Slice t[2] = {Slice(k), Slice(payload)};
    ASSERT_TRUE(hash_grouper.Add(t).ok());
    ASSERT_TRUE(sort_grouper.Add(t).ok());
  }
  std::map<int64_t, double> hash_result, sort_result;
  ASSERT_TRUE(hash_grouper
                  .Finish([&](std::span<const Slice> fields) {
                    hash_result[DecodeOrderedI64(fields[0].data())] =
                        DecodeDouble(fields[1].data());
                    return Status::OK();
                  })
                  .ok());
  ASSERT_TRUE(sort_grouper
                  .Finish([&](std::span<const Slice> fields) {
                    sort_result[DecodeOrderedI64(fields[0].data())] =
                        DecodeDouble(fields[1].data());
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(hash_result, sort_result);
}

TEST_F(SortTest, HashSortSpillsAndStillCombines) {
  HashSortGrouper grouper(MakeConfig(2048), MinDoubleCombiner());
  std::map<int64_t, double> expected;
  Random rnd(10);
  for (int i = 0; i < 4000; ++i) {
    const int64_t dest = static_cast<int64_t>(rnd.Uniform(200));
    const double dist = rnd.NextDouble();
    auto it = expected.find(dest);
    if (it == expected.end() || dist < it->second) expected[dest] = dist;
    const std::string k = OrderedKeyI64(dest);
    std::string payload;
    PutDouble(&payload, dist);
    const Slice t[2] = {Slice(k), Slice(payload)};
    ASSERT_TRUE(grouper.Add(t).ok());
  }
  EXPECT_GT(grouper.runs_spilled(), 0);
  int64_t prev = INT64_MIN;
  int groups = 0;
  ASSERT_TRUE(grouper
                  .Finish([&](std::span<const Slice> fields) {
                    const int64_t dest = DecodeOrderedI64(fields[0].data());
                    EXPECT_GT(dest, prev);  // sorted, distinct
                    prev = dest;
                    EXPECT_DOUBLE_EQ(DecodeDouble(fields[1].data()),
                                     expected[dest]);
                    ++groups;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(groups, static_cast<int>(expected.size()));
}

TEST_F(SortTest, PreclusteredGrouperStreams) {
  PreclusteredGrouper grouper(ListCombiner(), &metrics_);
  std::vector<std::pair<int64_t, std::string>> got;
  auto emit = [&](std::span<const Slice> fields) {
    got.emplace_back(DecodeOrderedI64(fields[0].data()),
                     fields[1].ToString());
    return Status::OK();
  };
  // Sorted input: keys 1,1,2,3,3,3.
  for (const auto& [key, payload] :
       std::vector<std::pair<int64_t, std::string>>{
           {1, "a"}, {1, "b"}, {2, "c"}, {3, "d"}, {3, "e"}, {3, "f"}}) {
    const std::string k = OrderedKeyI64(key);
    ASSERT_TRUE(grouper.Add(k, ListItem(payload), emit).ok());
  }
  ASSERT_TRUE(grouper.Finish(emit).ok());
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].first, 1);
  EXPECT_EQ(got[1].first, 2);
  EXPECT_EQ(got[2].first, 3);
  // Group 3 gathered three payloads.
  Slice acc(got[2].second);
  Slice item;
  int count = 0;
  while (GetLengthPrefixed(&acc, &item)) ++count;
  EXPECT_EQ(count, 3);
}

TEST_F(SortTest, ListCombinerGathersAllMessages) {
  ExternalSortGrouper grouper(MakeConfig(4096), ListCombiner());
  const int dests = 10, per_dest = 37;
  for (int m = 0; m < per_dest; ++m) {
    for (int64_t d = 0; d < dests; ++d) {
      const std::string k = OrderedKeyI64(d);
      const std::string payload = ListItem("m" + std::to_string(m));
      const Slice t[2] = {Slice(k), Slice(payload)};
      ASSERT_TRUE(grouper.Add(t).ok());
    }
  }
  int total_messages = 0, groups = 0;
  ASSERT_TRUE(grouper
                  .Finish([&](std::span<const Slice> fields) {
                    Slice acc = fields[1];
                    Slice item;
                    while (GetLengthPrefixed(&acc, &item)) ++total_messages;
                    ++groups;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(groups, dests);
  EXPECT_EQ(total_messages, dests * per_dest);
}

TEST_F(SortTest, EmptyInputProducesNothing) {
  ExternalSortGrouper sorter(MakeConfig(1024));
  int count = 0;
  ASSERT_TRUE(sorter
                  .Finish([&](std::span<const Slice>) {
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, 0);

  HashSortGrouper grouper(MakeConfig(1024), MinDoubleCombiner());
  ASSERT_TRUE(grouper
                  .Finish([&](std::span<const Slice>) {
                    ++count;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(count, 0);
}

}  // namespace
}  // namespace pregelix
