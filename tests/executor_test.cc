#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/hash.h"
#include "common/serde.h"
#include "common/temp_dir.h"
#include "dataflow/executor.h"
#include "dataflow/frame.h"
#include "dataflow/job.h"
#include "dataflow/operator.h"

namespace pregelix {
namespace {

/// Shared collection target for sink operators.
struct Collected {
  std::mutex mutex;
  std::map<int, std::vector<std::pair<int64_t, std::string>>> by_partition;

  void Add(int partition, int64_t key, std::string payload) {
    std::lock_guard<std::mutex> lock(mutex);
    by_partition[partition].emplace_back(key, std::move(payload));
  }
  size_t Total() {
    std::lock_guard<std::mutex> lock(mutex);
    size_t n = 0;
    for (auto& [p, v] : by_partition) n += v.size();
    return n;
  }
};

/// Source operator: emits `count` (vid, payload) tuples per partition.
/// `sorted` both staggers the vids into key order and declares the
/// sortedness (the verifier demands the declaration on merge edges).
std::shared_ptr<OperatorDescriptor> MakeGenerator(int count,
                                                  bool sorted = false) {
  auto gen = std::make_shared<LambdaOperatorDescriptor>(
      "gen", [count, sorted](TaskContext& ctx) -> Status {
        for (int i = 0; i < count; ++i) {
          const int64_t vid =
              sorted ? static_cast<int64_t>(i) * ctx.num_partitions +
                           ctx.partition
                     : static_cast<int64_t>(i);
          const std::string key = OrderedKeyI64(vid);
          const std::string payload =
              "from-p" + std::to_string(ctx.partition);
          const Slice t[2] = {Slice(key), Slice(payload)};
          PREGELIX_RETURN_NOT_OK(ctx.output(0).Append(t));
        }
        return Status::OK();
      });
  if (sorted) {
    gen->DeclareOutput(
        0, {Sortedness::kSortedByKey, Partitioning::kArbitrary});
  }
  return gen;
}

/// Sink operator: drains input 0 into the Collected struct.
std::shared_ptr<OperatorDescriptor> MakeCollector() {
  return std::make_shared<LambdaOperatorDescriptor>(
      "collect", [](TaskContext& ctx) -> Status {
        auto* collected = static_cast<Collected*>(ctx.runtime_context);
        FrameTupleAccessor acc(2);
        std::string frame;
        while (ctx.input(0).Next(&frame)) {
          acc.Reset(Slice(frame));
          for (int t = 0; t < acc.tuple_count(); ++t) {
            collected->Add(ctx.partition,
                           DecodeOrderedI64(acc.field(t, 0).data()),
                           acc.field(t, 1).ToString());
          }
        }
        return Status::OK();
      });
}

class ExecutorTest : public ::testing::Test {
 protected:
  ClusterConfig MakeConfig(int workers) {
    ClusterConfig config;
    config.num_workers = workers;
    config.temp_root = dir_.Sub("cluster");
    config.frame_size = 1024;
    config.channel_capacity_frames = 4;
    return config;
  }

  TempDir dir_{"executor-test"};
};

TEST_F(ExecutorTest, MToNPartitionRoutesByHash) {
  SimulatedCluster cluster(MakeConfig(4));
  Collected collected;
  JobSpec spec;
  spec.set_name("m2n");
  const int gen = spec.AddOperator(MakeGenerator(500), 4);
  const int sink = spec.AddOperator(MakeCollector(), 4);
  ConnectorSpec conn;
  conn.src_op = gen;
  conn.dst_op = sink;
  conn.kind = ConnectorKind::kMToNPartition;
  conn.field_count = 2;
  spec.Connect(conn);

  ASSERT_TRUE(RunJob(cluster, spec, &collected).ok());
  // 4 generators x 500 tuples all arrive.
  EXPECT_EQ(collected.Total(), 2000u);
  // Every tuple lands on the hash-designated partition.
  for (auto& [p, tuples] : collected.by_partition) {
    for (auto& [vid, payload] : tuples) {
      const std::string key = OrderedKeyI64(vid);
      EXPECT_EQ(Hash64(Slice(key)) % 4, static_cast<uint64_t>(p));
    }
  }
}

TEST_F(ExecutorTest, MToOneGathersEverything) {
  SimulatedCluster cluster(MakeConfig(3));
  Collected collected;
  JobSpec spec;
  const int gen = spec.AddOperator(MakeGenerator(100), 3);
  const int sink = spec.AddOperator(MakeCollector(), 1);
  ConnectorSpec conn;
  conn.src_op = gen;
  conn.dst_op = sink;
  conn.kind = ConnectorKind::kMToOne;
  spec.Connect(conn);

  ASSERT_TRUE(RunJob(cluster, spec, &collected).ok());
  EXPECT_EQ(collected.Total(), 300u);
  EXPECT_EQ(collected.by_partition.size(), 1u);
  EXPECT_EQ(collected.by_partition[0].size(), 300u);
}

TEST_F(ExecutorTest, OneToOneStaysLocal) {
  SimulatedCluster cluster(MakeConfig(3));
  Collected collected;
  JobSpec spec;
  const int gen = spec.AddOperator(MakeGenerator(50), 3);
  const int sink = spec.AddOperator(MakeCollector(), 3);
  ConnectorSpec conn;
  conn.src_op = gen;
  conn.dst_op = sink;
  conn.kind = ConnectorKind::kOneToOne;
  spec.Connect(conn);

  ASSERT_TRUE(RunJob(cluster, spec, &collected).ok());
  EXPECT_EQ(collected.Total(), 150u);
  // Each partition received exactly its own generator's tuples.
  for (int p = 0; p < 3; ++p) {
    ASSERT_EQ(collected.by_partition[p].size(), 50u);
    for (auto& [vid, payload] : collected.by_partition[p]) {
      EXPECT_EQ(payload, "from-p" + std::to_string(p));
    }
  }
}

TEST_F(ExecutorTest, MergingConnectorDeliversSortedStreams) {
  SimulatedCluster cluster(MakeConfig(4));
  Collected collected;
  JobSpec spec;
  // Sorted generators + identity routing on vid ranges: use hash routing but
  // verify per-partition arrival order is key-sorted (the merge property).
  const int gen = spec.AddOperator(MakeGenerator(400, /*sorted=*/true), 4);
  const int sink = spec.AddOperator(MakeCollector(), 4);
  ConnectorSpec conn;
  conn.src_op = gen;
  conn.dst_op = sink;
  conn.kind = ConnectorKind::kMToNPartitionMerge;
  conn.field_count = 2;
  spec.Connect(conn);

  ASSERT_TRUE(RunJob(cluster, spec, &collected).ok());
  EXPECT_EQ(collected.Total(), 1600u);
  for (auto& [p, tuples] : collected.by_partition) {
    for (size_t i = 1; i < tuples.size(); ++i) {
      EXPECT_LE(tuples[i - 1].first, tuples[i].first)
          << "partition " << p << " out of order at " << i;
    }
  }
}

TEST_F(ExecutorTest, PipelinedMergePolicyOverrideAlsoWorks) {
  // With ample channel capacity a pipelined merging connector is safe and
  // must produce the same sorted result.
  ClusterConfig config = MakeConfig(2);
  config.channel_capacity_frames = 1024;
  SimulatedCluster cluster(config);
  Collected collected;
  JobSpec spec;
  const int gen = spec.AddOperator(MakeGenerator(200, /*sorted=*/true), 2);
  const int sink = spec.AddOperator(MakeCollector(), 2);
  ConnectorSpec conn;
  conn.src_op = gen;
  conn.dst_op = sink;
  conn.kind = ConnectorKind::kMToNPartitionMerge;
  conn.policy = ConnectorSpec::Policy::kPipelined;
  // The verifier flags a pipelined merge as a deadlock hazard; this test
  // guarantees channel capacity larger than any sender run, so acknowledge.
  conn.unsafe_allow_pipelined_merge = true;
  spec.Connect(conn);

  ASSERT_TRUE(RunJob(cluster, spec, &collected).ok());
  EXPECT_EQ(collected.Total(), 400u);
  for (auto& [p, tuples] : collected.by_partition) {
    EXPECT_TRUE(std::is_sorted(tuples.begin(), tuples.end()));
  }
}

TEST_F(ExecutorTest, BackpressureDoesNotDeadlockPipelines) {
  // Tiny channels, big data: senders must block and resume correctly.
  ClusterConfig config = MakeConfig(2);
  config.channel_capacity_frames = 1;
  config.frame_size = 256;
  SimulatedCluster cluster(config);
  Collected collected;
  JobSpec spec;
  const int gen = spec.AddOperator(MakeGenerator(3000), 2);
  const int sink = spec.AddOperator(MakeCollector(), 2);
  ConnectorSpec conn;
  conn.src_op = gen;
  conn.dst_op = sink;
  conn.kind = ConnectorKind::kMToNPartition;
  spec.Connect(conn);

  ASSERT_TRUE(RunJob(cluster, spec, &collected).ok());
  EXPECT_EQ(collected.Total(), 6000u);
}

TEST_F(ExecutorTest, FailingOperatorAbortsJob) {
  SimulatedCluster cluster(MakeConfig(2));
  Collected collected;
  JobSpec spec;
  spec.set_name("failing-job");
  const int gen = spec.AddOperator(MakeGenerator(100000), 2);
  auto failing = std::make_shared<LambdaOperatorDescriptor>(
      "boom", [](TaskContext& ctx) -> Status {
        std::string frame;
        ctx.input(0).Next(&frame);
        return Status::Internal("synthetic failure");
      });
  const int sink = spec.AddOperator(failing, 2);
  ConnectorSpec conn;
  conn.src_op = gen;
  conn.dst_op = sink;
  conn.kind = ConnectorKind::kMToNPartition;
  spec.Connect(conn);

  Status s = RunJob(cluster, spec, &collected);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("synthetic failure"), std::string::npos);
  EXPECT_NE(s.message().find("failing-job"), std::string::npos);
}

TEST_F(ExecutorTest, TwoStagePipelineWithBranches) {
  // gen --(m2n)--> relay --(m2one)--> sink   and relay also counts locally.
  SimulatedCluster cluster(MakeConfig(2));
  Collected collected;
  JobSpec spec;
  const int gen = spec.AddOperator(MakeGenerator(100), 2);
  auto relay = std::make_shared<LambdaOperatorDescriptor>(
      "relay", [](TaskContext& ctx) -> Status {
        FrameTupleAccessor acc(2);
        std::string frame;
        while (ctx.input(0).Next(&frame)) {
          acc.Reset(Slice(frame));
          for (int t = 0; t < acc.tuple_count(); ++t) {
            const Slice fields[2] = {acc.field(t, 0), acc.field(t, 1)};
            PREGELIX_RETURN_NOT_OK(ctx.output(0).Append(fields));
          }
        }
        return Status::OK();
      });
  const int mid = spec.AddOperator(relay, 2);
  const int sink = spec.AddOperator(MakeCollector(), 1);
  ConnectorSpec c1;
  c1.src_op = gen;
  c1.dst_op = mid;
  c1.kind = ConnectorKind::kMToNPartition;
  spec.Connect(c1);
  ConnectorSpec c2;
  c2.src_op = mid;
  c2.dst_op = sink;
  c2.kind = ConnectorKind::kMToOne;
  spec.Connect(c2);

  ASSERT_TRUE(RunJob(cluster, spec, &collected).ok());
  EXPECT_EQ(collected.Total(), 200u);
}

TEST_F(ExecutorTest, NetworkBytesMeteredForCrossWorkerTraffic) {
  SimulatedCluster cluster(MakeConfig(2));
  Collected collected;
  JobSpec spec;
  const int gen = spec.AddOperator(MakeGenerator(2000), 2);
  const int sink = spec.AddOperator(MakeCollector(), 2);
  ConnectorSpec conn;
  conn.src_op = gen;
  conn.dst_op = sink;
  conn.kind = ConnectorKind::kMToNPartition;
  spec.Connect(conn);

  ASSERT_TRUE(RunJob(cluster, spec, &collected).ok());
  uint64_t net = 0;
  for (const auto& snap : cluster.SnapshotAll()) net += snap.net_bytes;
  EXPECT_GT(net, 0u);
}

TEST_F(ExecutorTest, OversizedTuplesCrossConnectors) {
  SimulatedCluster cluster(MakeConfig(2));
  Collected collected;
  JobSpec spec;
  auto gen = std::make_shared<LambdaOperatorDescriptor>(
      "gen-big", [](TaskContext& ctx) -> Status {
        // A payload far larger than the frame size (1 KB frames).
        const std::string huge(10000, 'x');
        const std::string key = OrderedKeyI64(ctx.partition);
        const Slice t[2] = {Slice(key), Slice(huge)};
        return ctx.output(0).Append(t);
      });
  const int g = spec.AddOperator(gen, 2);
  const int sink = spec.AddOperator(MakeCollector(), 2);
  ConnectorSpec conn;
  conn.src_op = g;
  conn.dst_op = sink;
  conn.kind = ConnectorKind::kMToNPartition;
  spec.Connect(conn);

  ASSERT_TRUE(RunJob(cluster, spec, &collected).ok());
  ASSERT_EQ(collected.Total(), 2u);
  for (auto& [p, tuples] : collected.by_partition) {
    for (auto& [vid, payload] : tuples) {
      EXPECT_EQ(payload.size(), 10000u);
    }
  }
}

}  // namespace
}  // namespace pregelix
