#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "common/config.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/serde.h"
#include "common/slice.h"
#include "common/status.h"

namespace pregelix {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: missing key");
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() { return Status::IoError("disk gone"); };
  auto outer = [&]() -> Status {
    PREGELIX_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsIoError());
}

TEST(SliceTest, CompareIsMemcmpOrder) {
  EXPECT_LT(Slice("abc").compare(Slice("abd")), 0);
  EXPECT_GT(Slice("abcd").compare(Slice("abc")), 0);
  EXPECT_EQ(Slice("abc").compare(Slice("abc")), 0);
  EXPECT_TRUE(Slice("hello world").starts_with(Slice("hello")));
  EXPECT_FALSE(Slice("he").starts_with(Slice("hello")));
}

TEST(SliceTest, EmptySlices) {
  Slice a, b;
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.compare(b), 0);
  EXPECT_TRUE(a.empty());
}

TEST(SerdeTest, Fixed32RoundTrip) {
  char buf[4];
  for (uint32_t v : {0u, 1u, 0xdeadbeefu, 0xffffffffu}) {
    EncodeFixed32(buf, v);
    EXPECT_EQ(DecodeFixed32(buf), v);
  }
}

TEST(SerdeTest, Fixed64RoundTrip) {
  char buf[8];
  for (uint64_t v : {0ull, 1ull, 0xdeadbeefcafebabeull, ~0ull}) {
    EncodeFixed64(buf, v);
    EXPECT_EQ(DecodeFixed64(buf), v);
  }
}

TEST(SerdeTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("hello"));
  PutLengthPrefixed(&buf, Slice(""));
  PutLengthPrefixed(&buf, Slice("world!"));
  Slice input(buf);
  Slice out;
  ASSERT_TRUE(GetLengthPrefixed(&input, &out));
  EXPECT_EQ(out.ToString(), "hello");
  ASSERT_TRUE(GetLengthPrefixed(&input, &out));
  EXPECT_EQ(out.ToString(), "");
  ASSERT_TRUE(GetLengthPrefixed(&input, &out));
  EXPECT_EQ(out.ToString(), "world!");
  EXPECT_FALSE(GetLengthPrefixed(&input, &out));
}

TEST(SerdeTest, GetLengthPrefixedRejectsTruncation) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("hello"));
  buf.resize(buf.size() - 2);
  Slice input(buf);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixed(&input, &out));
}

TEST(SerdeTest, OrderedI64PreservesOrder) {
  std::vector<int64_t> values = {-1000000, -1, 0, 1, 2, 42, 1000000,
                                 INT64_MIN, INT64_MAX};
  std::sort(values.begin(), values.end());
  for (size_t i = 1; i < values.size(); ++i) {
    const std::string a = OrderedKeyI64(values[i - 1]);
    const std::string b = OrderedKeyI64(values[i]);
    EXPECT_LT(Slice(a).compare(Slice(b)), 0)
        << values[i - 1] << " vs " << values[i];
  }
  for (int64_t v : values) {
    EXPECT_EQ(DecodeOrderedI64(OrderedKeyI64(v).data()), v);
  }
}

TEST(HashTest, DeterministicAndSpreads) {
  EXPECT_EQ(Hash64(Slice("abc")), Hash64(Slice("abc")));
  EXPECT_NE(Hash64(Slice("abc")), Hash64(Slice("abd")));
  EXPECT_NE(Hash64(Slice("abc"), 1), Hash64(Slice("abc"), 2));
  // Vid hashing should spread consecutive ids across 8 partitions.
  std::set<uint64_t> buckets;
  for (int64_t vid = 0; vid < 64; ++vid) {
    buckets.insert(HashVid(vid) % 8);
  }
  EXPECT_EQ(buckets.size(), 8u);
}

TEST(RandomTest, DeterministicWithSeed) {
  Random a(7), b(7), c(8);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RandomTest, UniformInRange) {
  Random r(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(10), 10u);
    const double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, SkewedFavorsSmallValues) {
  Random r(3);
  uint64_t small = 0, total = 100000;
  for (uint64_t i = 0; i < total; ++i) {
    if (r.Skewed(1000000) < 1000) ++small;
  }
  // A power-law with theta≈0.99 puts far more than 0.1% of the mass on the
  // first 0.1% of values.
  EXPECT_GT(small, total / 10);
}

TEST(MetricsTest, SnapshotDeltaAndCostModel) {
  WorkerMetrics m;
  MetricsSnapshot before = m.Snapshot();
  m.AddCpuOps(1'000'000);      // 1 s of CPU at default rate
  m.AddDiskRead(100'000'000);  // 1 s of disk
  m.AddNet(117'000'000);       // 1 s of network
  m.AddSeeks(200);             // 1 s of seeks
  MetricsSnapshot delta = m.Snapshot() - before;
  CostModelParams params;
  EXPECT_NEAR(SimulatedWorkerSeconds(delta, params), 4.0, 1e-9);
}

TEST(MetricsTest, StepTimeIsMaxAcrossWorkersPlusBarrier) {
  CostModelParams params;
  params.barrier_sec = 0.5;
  params.per_worker_coord_sec = 0.0;
  MetricsSnapshot fast, slow;
  fast.cpu_ops = 1'000'000;        // 1 s
  slow.cpu_ops = 3'000'000;        // 3 s
  const double t = SimulatedStepSeconds({fast, slow}, params);
  EXPECT_NEAR(t, 3.5, 1e-9);
}

TEST(MetricsTest, SnapshotWhileAddingIsSafeAndResetIsAtomic) {
  // Concurrency smoke test: writers hammer the counters while a reader
  // snapshots and occasionally resets. Under TSan this catches any regression
  // to non-atomic accesses; everywhere it checks snapshots stay coherent
  // (monotone between resets, never torn past the per-writer total).
  WorkerMetrics m;
  constexpr int kWriters = 3;
  constexpr uint64_t kAddsPerWriter = 20000;
  std::atomic<bool> done{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&m]() {
      for (uint64_t i = 0; i < kAddsPerWriter; ++i) {
        m.AddCpuOps(1);
        m.AddNet(2);
      }
    });
  }
  std::thread reader([&m, &done]() {
    while (!done.load(std::memory_order_relaxed)) {
      MetricsSnapshot s = m.Snapshot();
      EXPECT_LE(s.cpu_ops, kWriters * kAddsPerWriter);
      EXPECT_LE(s.net_bytes, 2 * kWriters * kAddsPerWriter);
    }
  });
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();
  MetricsSnapshot total = m.Snapshot();
  EXPECT_EQ(total.cpu_ops, kWriters * kAddsPerWriter);
  EXPECT_EQ(total.net_bytes, 2 * kWriters * kAddsPerWriter);
  m.Reset();
  MetricsSnapshot zero = m.Snapshot();
  EXPECT_EQ(zero.cpu_ops, 0u);
  EXPECT_EQ(zero.net_bytes, 0u);
  EXPECT_EQ(zero.disk_read_bytes, 0u);
  EXPECT_EQ(zero.disk_write_bytes, 0u);
  EXPECT_EQ(zero.disk_seeks, 0u);
}

TEST(ConfigTest, DeriveFillsBudgetsFromWorkerRam) {
  ClusterConfig c;
  c.worker_ram_bytes = 16u << 20;
  c.page_size = 4096;
  c.frame_size = 32 * 1024;
  ClusterConfig d = c.Derive();
  EXPECT_EQ(d.buffer_cache_pages, (16u << 20) / 4 / 4096);
  EXPECT_EQ(d.groupby_memory_bytes, (16u << 20) / 16);
  EXPECT_GT(d.sort_memory_frames, 0u);
  EXPECT_EQ(d.aggregate_ram_bytes(), 4 * (16ull << 20));
}

}  // namespace
}  // namespace pregelix
