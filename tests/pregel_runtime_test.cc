#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "algorithms/algorithms.h"
#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "graph/ref_algos.h"
#include "graph/text_io.h"
#include "pregel/runtime.h"

namespace pregelix {
namespace {

/// Reads a dumped result directory into vid -> value-string.
std::map<int64_t, std::string> ParseOutput(const DistributedFileSystem& dfs,
                                           const std::string& dir) {
  std::map<int64_t, std::string> out;
  std::vector<std::string> names;
  EXPECT_TRUE(dfs.List(dir, &names).ok());
  for (const std::string& name : names) {
    std::string contents;
    EXPECT_TRUE(dfs.Read(dir + "/" + name, &contents).ok());
    std::istringstream lines(contents);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      std::istringstream fields(line);
      int64_t vid;
      std::string value;
      fields >> vid >> value;
      out[vid] = value;
    }
  }
  return out;
}

class PregelRuntimeTest : public ::testing::Test {
 protected:
  PregelRuntimeTest() : dfs_(dir_.Sub("dfs")) {
    config_.num_workers = 2;
    config_.partitions_per_worker = 2;
    config_.worker_ram_bytes = 8u << 20;
    config_.frame_size = 8 * 1024;
    config_.temp_root = dir_.Sub("cluster");
    cluster_ = std::make_unique<SimulatedCluster>(config_);
    runtime_ = std::make_unique<PregelixRuntime>(cluster_.get(), &dfs_);
  }

  /// A small symmetric (undirected) test graph.
  void MakeUndirected(int64_t n, const std::string& dir) {
    GraphStats stats;
    ASSERT_TRUE(GenerateBtcLike(dfs_, dir, 3, n, 6.0, 42, &stats).ok());
  }
  /// A small directed power-law graph.
  void MakeDirected(int64_t n, const std::string& dir) {
    GraphStats stats;
    ASSERT_TRUE(GenerateWebmapLike(dfs_, dir, 3, n, 5.0, 42, &stats).ok());
  }

  TempDir dir_{"pregel-test"};
  DistributedFileSystem dfs_;
  ClusterConfig config_;
  std::unique_ptr<SimulatedCluster> cluster_;
  std::unique_ptr<PregelixRuntime> runtime_;
};

TEST_F(PregelRuntimeTest, PageRankMatchesReference) {
  MakeDirected(300, "input/pr");
  InMemoryGraph graph;
  ASSERT_TRUE(LoadGraph(dfs_, "input/pr", &graph).ok());
  const std::vector<double> expected = PageRankRef(graph, 10);

  PageRankProgram program(10);
  PageRankProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "pr";
  job.input_dir = "input/pr";
  job.output_dir = "output/pr";
  job.join = JoinStrategy::kFullOuter;
  JobResult result;
  Status s = runtime_->Run(&adapter, job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(result.supersteps, 11);

  auto output = ParseOutput(dfs_, "output/pr");
  ASSERT_EQ(output.size(), static_cast<size_t>(graph.num_vertices()));
  double sum = 0;
  for (auto& [vid, value] : output) {
    const double rank = std::stod(value);
    EXPECT_NEAR(rank, expected[vid], 1e-9) << "vid " << vid;
    sum += rank;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST_F(PregelRuntimeTest, SsspLeftOuterMatchesBfs) {
  MakeUndirected(400, "input/sssp");
  InMemoryGraph graph;
  ASSERT_TRUE(LoadGraph(dfs_, "input/sssp", &graph).ok());
  const std::vector<double> expected = SsspRef(graph, 0);

  SsspProgram program(0);
  SsspProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "sssp";
  job.input_dir = "input/sssp";
  job.output_dir = "output/sssp";
  job.join = JoinStrategy::kLeftOuter;
  job.groupby = GroupByStrategy::kHashSort;
  JobResult result;
  Status s = runtime_->Run(&adapter, job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();

  auto output = ParseOutput(dfs_, "output/sssp");
  ASSERT_EQ(output.size(), static_cast<size_t>(graph.num_vertices()));
  for (auto& [vid, value] : output) {
    if (expected[vid] < 0) {
      EXPECT_EQ(value, "inf");
    } else {
      EXPECT_NEAR(std::stod(value), expected[vid], 1e-9) << "vid " << vid;
    }
  }
}

TEST_F(PregelRuntimeTest, ConnectedComponentsMatchesUnionFind) {
  MakeUndirected(300, "input/cc");
  InMemoryGraph graph;
  ASSERT_TRUE(LoadGraph(dfs_, "input/cc", &graph).ok());
  const std::vector<int64_t> expected = CcRef(graph);

  ConnectedComponentsProgram program;
  ConnectedComponentsProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "cc";
  job.input_dir = "input/cc";
  job.output_dir = "output/cc";
  JobResult result;
  Status s = runtime_->Run(&adapter, job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();

  auto output = ParseOutput(dfs_, "output/cc");
  ASSERT_EQ(output.size(), static_cast<size_t>(graph.num_vertices()));
  for (auto& [vid, value] : output) {
    EXPECT_EQ(std::stoll(value), expected[vid]) << "vid " << vid;
  }
}

TEST_F(PregelRuntimeTest, ReachabilityMatchesBfs) {
  MakeDirected(300, "input/reach");
  InMemoryGraph graph;
  ASSERT_TRUE(LoadGraph(dfs_, "input/reach", &graph).ok());
  const std::vector<bool> expected = ReachabilityRef(graph, 5);

  ReachabilityProgram program(5);
  ReachabilityProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "reach";
  job.input_dir = "input/reach";
  job.output_dir = "output/reach";
  job.join = JoinStrategy::kLeftOuter;
  JobResult result;
  Status s = runtime_->Run(&adapter, job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();

  auto output = ParseOutput(dfs_, "output/reach");
  for (auto& [vid, value] : output) {
    EXPECT_EQ(value == "reachable", static_cast<bool>(expected[vid]))
        << "vid " << vid;
  }
}

TEST_F(PregelRuntimeTest, TriangleCountMatchesReference) {
  MakeUndirected(150, "input/tri");
  InMemoryGraph graph;
  ASSERT_TRUE(LoadGraph(dfs_, "input/tri", &graph).ok());
  const uint64_t expected = TriangleCountRef(graph);

  TriangleCountProgram program;
  TriangleCountProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "tri";
  job.input_dir = "input/tri";
  JobResult result;
  Status s = runtime_->Run(&adapter, job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();
  int64_t total = 0;
  ASSERT_TRUE(DeserializeValue(Slice(result.final_gs.aggregate), &total));
  EXPECT_EQ(static_cast<uint64_t>(total), expected);
}

TEST_F(PregelRuntimeTest, StatsTrackLiveVerticesAndMessages) {
  MakeUndirected(200, "input/stats");
  SsspProgram program(0);
  SsspProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "stats";
  job.input_dir = "input/stats";
  JobResult result;
  ASSERT_TRUE(runtime_->Run(&adapter, job, &result).ok());
  ASSERT_GT(result.superstep_stats.size(), 2u);
  // Superstep 1: only the source updates and messages its neighbors.
  EXPECT_GT(result.superstep_stats[0].messages, 0);
  // The frontier stays bounded by the vertex count.
  for (const SuperstepStats& stats : result.superstep_stats) {
    EXPECT_LE(stats.messages, result.final_gs.num_vertices);
    EXPECT_GE(stats.sim_seconds, 0.0);
  }
  // Final superstep produced no messages; job halted.
  EXPECT_EQ(result.superstep_stats.back().messages, 0);
  EXPECT_TRUE(result.final_gs.halt);
}

}  // namespace
}  // namespace pregelix
