#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "algorithms/algorithms.h"
#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "graph/ref_algos.h"
#include "graph/text_io.h"
#include "pregel/runtime.h"

namespace pregelix {
namespace {

class FaultToleranceTest : public ::testing::Test {
 protected:
  FaultToleranceTest() : dfs_(dir_.Sub("dfs")) {
    ClusterConfig config;
    config.num_workers = 3;
    config.worker_ram_bytes = 8u << 20;
    config.temp_root = dir_.Sub("cluster");
    cluster_ = std::make_unique<SimulatedCluster>(config);
    runtime_ = std::make_unique<PregelixRuntime>(cluster_.get(), &dfs_);
    GraphStats stats;
    EXPECT_TRUE(
        GenerateBtcLike(dfs_, "input", 3, 400, 6.0, 21, &stats).ok());
    InMemoryGraph graph;
    EXPECT_TRUE(LoadGraph(dfs_, "input", &graph).ok());
    expected_ = SsspRef(graph, 0);
  }

  void VerifyOutput(const std::string& dir) {
    std::vector<std::string> names;
    ASSERT_TRUE(dfs_.List(dir, &names).ok());
    int64_t seen = 0;
    for (const std::string& name : names) {
      std::string contents;
      ASSERT_TRUE(dfs_.Read(dir + "/" + name, &contents).ok());
      std::istringstream lines(contents);
      std::string line;
      while (std::getline(lines, line)) {
        if (line.empty()) continue;
        std::istringstream fields(line);
        int64_t vid;
        std::string value;
        fields >> vid >> value;
        if (expected_[vid] < 0) {
          EXPECT_EQ(value, "inf");
        } else {
          EXPECT_NEAR(std::stod(value), expected_[vid], 1e-9) << "vid " << vid;
        }
        ++seen;
      }
    }
    EXPECT_EQ(seen, static_cast<int64_t>(expected_.size()));
  }

  TempDir dir_{"ft-test"};
  DistributedFileSystem dfs_;
  std::unique_ptr<SimulatedCluster> cluster_;
  std::unique_ptr<PregelixRuntime> runtime_;
  std::vector<double> expected_;
};

TEST_F(FaultToleranceTest, RecoversFromCheckpointAfterWorkerFailure) {
  SsspProgram program(0);
  SsspProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "sssp-ft";
  job.input_dir = "input";
  job.output_dir = "out-ckpt";
  job.checkpoint_interval = 2;
  runtime_->InjectFailure(/*superstep=*/5, /*worker=*/1);
  JobResult result;
  Status s = runtime_->Run(&adapter, job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(result.recoveries, 1);
  VerifyOutput("out-ckpt");
}

TEST_F(FaultToleranceTest, RestartsFromLoadWithoutCheckpoints) {
  SsspProgram program(0);
  SsspProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "sssp-nockpt";
  job.input_dir = "input";
  job.output_dir = "out-nockpt";
  job.checkpoint_interval = 0;  // no checkpoints: failure -> full restart
  runtime_->InjectFailure(/*superstep=*/4, /*worker=*/0);
  JobResult result;
  Status s = runtime_->Run(&adapter, job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(result.recoveries, 1);
  VerifyOutput("out-nockpt");
}

TEST_F(FaultToleranceTest, RecoveryWorksWithLeftOuterJoinPlan) {
  SsspProgram program(0);
  SsspProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "sssp-ft-loj";
  job.input_dir = "input";
  job.output_dir = "out-loj";
  job.join = JoinStrategy::kLeftOuter;
  job.checkpoint_interval = 2;
  runtime_->InjectFailure(/*superstep=*/3, /*worker=*/2);
  JobResult result;
  Status s = runtime_->Run(&adapter, job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(result.recoveries, 1);
  VerifyOutput("out-loj");
}

TEST_F(FaultToleranceTest, RecoveryWorksWithLsmStorage) {
  SsspProgram program(0);
  SsspProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "sssp-ft-lsm";
  job.input_dir = "input";
  job.output_dir = "out-lsm-ft";
  job.storage = VertexStorage::kLsmBTree;
  job.checkpoint_interval = 2;
  runtime_->InjectFailure(/*superstep=*/4, /*worker=*/1);
  JobResult result;
  Status s = runtime_->Run(&adapter, job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(result.recoveries, 1);
  VerifyOutput("out-lsm-ft");
}

TEST_F(FaultToleranceTest, PipelinedJobsShareVertexState) {
  // Two compatible jobs chained without re-loading (paper Section 5.6):
  // SSSP from vertex 1, then SSSP from vertex 0 over the same vertex
  // storage. The handoff reactivates all vertices and clears Msg; the
  // second job's superstep 1 re-initializes values, as a chained graph
  // cleaning pass would.
  SsspProgram first(1);
  SsspProgram::Adapter first_adapter(&first);
  SsspProgram second(0);
  SsspProgram::Adapter second_adapter(&second);

  PregelixJobConfig job1;
  job1.name = "pipe";
  job1.input_dir = "input";
  PregelixJobConfig job2 = job1;
  job2.output_dir = "out-pipe";
  job2.join = JoinStrategy::kLeftOuter;

  std::vector<std::pair<PregelProgram*, PregelixJobConfig>> jobs = {
      {&first_adapter, job1}, {&second_adapter, job2}};
  std::vector<JobResult> results;
  Status s = runtime_->RunPipeline(jobs, &results);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_GT(results[0].supersteps, 1);
  EXPECT_GT(results[1].supersteps, 1);
  VerifyOutput("out-pipe");
}

}  // namespace
}  // namespace pregelix
