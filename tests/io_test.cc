#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/temp_dir.h"
#include "io/file.h"
#include "io/run_file.h"

namespace pregelix {
namespace {

class IoTest : public ::testing::Test {
 protected:
  TempDir dir_{"io-test"};
};

TEST_F(IoTest, WriteThenReadBack) {
  const std::string path = dir_.path() + "/f";
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(WritableFile::Open(path, nullptr, &w).ok());
  ASSERT_TRUE(w->Append(Slice("hello ")).ok());
  ASSERT_TRUE(w->Append(Slice("world")).ok());
  ASSERT_TRUE(w->Close().ok());

  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "hello world");
}

TEST_F(IoTest, LargeAppendBypassesBuffer) {
  const std::string path = dir_.path() + "/big";
  const std::string big(1 << 20, 'x');
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(WritableFile::Open(path, nullptr, &w).ok());
  ASSERT_TRUE(w->Append(Slice("pre")).ok());
  ASSERT_TRUE(w->Append(Slice(big)).ok());
  ASSERT_TRUE(w->Close().ok());
  uint64_t size = 0;
  ASSERT_TRUE(GetFileSize(path, &size).ok());
  EXPECT_EQ(size, big.size() + 3);
}

TEST_F(IoTest, RandomAccessReadAtOffset) {
  const std::string path = dir_.path() + "/r";
  ASSERT_TRUE(WriteStringToFileAtomic(path, Slice("0123456789")).ok());
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(RandomAccessFile::Open(path, nullptr, &f).ok());
  char buf[4];
  ASSERT_TRUE(f->Read(3, 4, buf).ok());
  EXPECT_EQ(std::string(buf, 4), "3456");
  EXPECT_TRUE(f->Read(8, 4, buf).IsIoError());  // short read
}

TEST_F(IoTest, RandomAccessWriteInPlace) {
  const std::string path = dir_.path() + "/w";
  ASSERT_TRUE(WriteStringToFileAtomic(path, Slice("aaaaaaaa")).ok());
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(RandomAccessFile::Open(path, nullptr, &f).ok());
  ASSERT_TRUE(f->Write(2, Slice("XY")).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "aaXYaaaa");
}

TEST_F(IoTest, MetricsCountBytes) {
  WorkerMetrics metrics;
  const std::string path = dir_.path() + "/m";
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(WritableFile::Open(path, &metrics, &w).ok());
  ASSERT_TRUE(w->Append(Slice(std::string(1000, 'a'))).ok());
  ASSERT_TRUE(w->Close().ok());
  EXPECT_EQ(metrics.Snapshot().disk_write_bytes, 1000u);

  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(RandomAccessFile::Open(path, &metrics, &f).ok());
  std::string buf(500, '\0');
  ASSERT_TRUE(f->Read(0, 500, buf.data()).ok());
  EXPECT_EQ(metrics.Snapshot().disk_read_bytes, 500u);
}

TEST_F(IoTest, AtomicWriteReplaces) {
  const std::string path = dir_.path() + "/a";
  ASSERT_TRUE(WriteStringToFileAtomic(path, Slice("one")).ok());
  ASSERT_TRUE(WriteStringToFileAtomic(path, Slice("two")).ok());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(path, &contents).ok());
  EXPECT_EQ(contents, "two");
}

TEST_F(IoTest, RunFileRoundTrip) {
  const std::string path = dir_.path() + "/run";
  std::unique_ptr<RunFileWriter> w;
  ASSERT_TRUE(RunFileWriter::Open(path, nullptr, &w).ok());
  ASSERT_TRUE(w->AppendBlock(Slice("block-one")).ok());
  ASSERT_TRUE(w->AppendBlock(Slice("")).ok());
  ASSERT_TRUE(w->AppendBlock(Slice("block-three")).ok());
  EXPECT_EQ(w->num_blocks(), 3u);
  ASSERT_TRUE(w->Finish().ok());

  std::unique_ptr<RunFileReader> r;
  ASSERT_TRUE(RunFileReader::Open(path, nullptr, &r).ok());
  std::string block;
  ASSERT_TRUE(r->NextBlock(&block).ok());
  EXPECT_EQ(block, "block-one");
  ASSERT_TRUE(r->NextBlock(&block).ok());
  EXPECT_EQ(block, "");
  ASSERT_TRUE(r->NextBlock(&block).ok());
  EXPECT_EQ(block, "block-three");
  EXPECT_TRUE(r->NextBlock(&block).IsNotFound());
  EXPECT_TRUE(r->AtEnd());
}

TEST_F(IoTest, RunFileReaderReset) {
  const std::string path = dir_.path() + "/run2";
  std::unique_ptr<RunFileWriter> w;
  ASSERT_TRUE(RunFileWriter::Open(path, nullptr, &w).ok());
  ASSERT_TRUE(w->AppendBlock(Slice("x")).ok());
  ASSERT_TRUE(w->Finish().ok());
  std::unique_ptr<RunFileReader> r;
  ASSERT_TRUE(RunFileReader::Open(path, nullptr, &r).ok());
  std::string block;
  ASSERT_TRUE(r->NextBlock(&block).ok());
  r->Reset();
  ASSERT_TRUE(r->NextBlock(&block).ok());
  EXPECT_EQ(block, "x");
}

TEST_F(IoTest, EmptyRunFile) {
  const std::string path = dir_.path() + "/empty";
  std::unique_ptr<RunFileWriter> w;
  ASSERT_TRUE(RunFileWriter::Open(path, nullptr, &w).ok());
  ASSERT_TRUE(w->Finish().ok());
  std::unique_ptr<RunFileReader> r;
  ASSERT_TRUE(RunFileReader::Open(path, nullptr, &r).ok());
  std::string block;
  EXPECT_TRUE(r->NextBlock(&block).IsNotFound());
}

}  // namespace
}  // namespace pregelix
