#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "buffer/buffer_cache.h"
#include "common/random.h"
#include "common/serde.h"
#include "common/temp_dir.h"
#include "dataflow/executor.h"
#include "dataflow/frame.h"
#include "dataflow/job.h"
#include "dataflow/ops/sort.h"
#include "dataflow/tuple_run.h"
#include "storage/btree.h"
#include "storage/lsm_btree.h"

namespace pregelix {
namespace {

// ---------------------------------------------------------------------------
// Oversized tuples through the spill machinery

TEST(OpsEdgeTest, ExternalSortSpillsOversizedTuples) {
  TempDir dir("edge-sort");
  SortConfig config;
  config.memory_budget_bytes = 16 * 1024;  // force spills
  config.frame_size = 1024;                // tuples exceed the frame
  config.scratch_prefix = dir.path() + "/s";
  ExternalSortGrouper sorter(config);
  Random rnd(1);
  // 100 tuples whose payloads (up to 4 KB) dwarf the 1 KB frames.
  std::map<int64_t, size_t> expected;
  for (int i = 0; i < 100; ++i) {
    const int64_t vid = static_cast<int64_t>(rnd.Uniform(1000000));
    const size_t len = 500 + rnd.Uniform(3500);
    if (expected.count(vid)) continue;
    expected[vid] = len;
    const std::string key = OrderedKeyI64(vid);
    const std::string payload(len, 'x');
    const Slice fields[2] = {Slice(key), Slice(payload)};
    ASSERT_TRUE(sorter.Add(fields).ok());
  }
  EXPECT_GT(sorter.runs_spilled(), 1);
  auto it = expected.begin();
  ASSERT_TRUE(sorter
                  .Finish([&](std::span<const Slice> fields) {
                    EXPECT_EQ(DecodeOrderedI64(fields[0].data()), it->first);
                    EXPECT_EQ(fields[1].size(), it->second);
                    ++it;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(it, expected.end());
}

TEST(OpsEdgeTest, GroupByAccumulatorLargerThanFrame) {
  // One destination gathers thousands of messages: the list accumulator
  // grows far beyond the frame size and must survive spilling + emission.
  TempDir dir("edge-acc");
  SortConfig config;
  config.memory_budget_bytes = 8 * 1024;
  config.frame_size = 1024;
  config.scratch_prefix = dir.path() + "/g";
  GroupCombiner list;
  list.init = [](const Slice& p, std::string* acc) {
    acc->assign(p.data(), p.size());
  };
  list.step = [](const Slice& p, std::string* acc) {
    acc->append(p.data(), p.size());
  };
  ExternalSortGrouper grouper(config, list);
  const std::string key = OrderedKeyI64(7);
  for (int i = 0; i < 3000; ++i) {
    std::string item;
    PutLengthPrefixed(&item, Slice("payload-" + std::to_string(i)));
    const Slice fields[2] = {Slice(key), Slice(item)};
    ASSERT_TRUE(grouper.Add(fields).ok());
  }
  int groups = 0;
  int items = 0;
  ASSERT_TRUE(grouper
                  .Finish([&](std::span<const Slice> fields) {
                    ++groups;
                    Slice acc = fields[1];
                    Slice item;
                    while (GetLengthPrefixed(&acc, &item)) ++items;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(groups, 1);
  EXPECT_EQ(items, 3000);
}

TEST(OpsEdgeTest, TupleRunHandlesOversizedTuples) {
  TempDir dir("edge-run");
  TupleRunWriter writer(dir.path() + "/r", 512, 2, nullptr);
  const std::string small = "s";
  const std::string huge(20000, 'H');
  const std::string k1 = OrderedKeyI64(1), k2 = OrderedKeyI64(2),
                    k3 = OrderedKeyI64(3);
  const Slice t1[2] = {Slice(k1), Slice(small)};
  const Slice t2[2] = {Slice(k2), Slice(huge)};
  const Slice t3[2] = {Slice(k3), Slice(small)};
  ASSERT_TRUE(writer.Append(t1).ok());
  ASSERT_TRUE(writer.Append(t2).ok());
  ASSERT_TRUE(writer.Append(t3).ok());
  ASSERT_TRUE(writer.Finish().ok());

  TupleRunReader reader(dir.path() + "/r", 2, nullptr);
  ASSERT_TRUE(reader.Init().ok());
  ASSERT_TRUE(reader.Valid());
  EXPECT_EQ(reader.field(1).size(), 1u);
  ASSERT_TRUE(reader.Next().ok());
  EXPECT_EQ(reader.field(1).size(), 20000u);
  ASSERT_TRUE(reader.Next().ok());
  EXPECT_EQ(reader.field(1).size(), 1u);
  ASSERT_TRUE(reader.Next().ok());
  EXPECT_FALSE(reader.Valid());
}

// ---------------------------------------------------------------------------
// Merging connector with uneven senders

TEST(OpsEdgeTest, MergingConnectorToleratesEmptyAndSkewedSenders) {
  TempDir dir("edge-merge");
  ClusterConfig config;
  config.num_workers = 4;
  config.frame_size = 512;
  config.temp_root = dir.Sub("cluster");
  SimulatedCluster cluster(config);

  // Partition 0 sends everything (sorted); the others send nothing.
  auto gen = std::make_shared<LambdaOperatorDescriptor>(
      "skewed-gen", [](TaskContext& ctx) -> Status {
        if (ctx.partition != 0) return Status::OK();
        for (int64_t i = 0; i < 500; ++i) {
          const std::string key = OrderedKeyI64(i);
          const Slice t[2] = {Slice(key), Slice("x")};
          PREGELIX_RETURN_NOT_OK(ctx.output(0).Append(t));
        }
        return Status::OK();
      });
  gen->DeclareOutput(0, {Sortedness::kSortedByKey, Partitioning::kArbitrary});
  struct Counts {
    std::mutex mutex;
    int64_t total = 0;
    bool sorted = true;
  } counts;
  auto sink = std::make_shared<LambdaOperatorDescriptor>(
      "count", [&counts](TaskContext& ctx) -> Status {
        FrameTupleAccessor acc(2);
        std::string frame;
        int64_t prev = INT64_MIN;
        while (ctx.input(0).Next(&frame)) {
          acc.Reset(Slice(frame));
          for (int t = 0; t < acc.tuple_count(); ++t) {
            const int64_t vid = DecodeOrderedI64(acc.field(t, 0).data());
            std::lock_guard<std::mutex> lock(counts.mutex);
            ++counts.total;
            if (vid < prev) counts.sorted = false;
            prev = vid;
          }
        }
        return Status::OK();
      });
  JobSpec spec;
  const int g = spec.AddOperator(gen, 4);
  const int s = spec.AddOperator(sink, 4);
  ConnectorSpec conn;
  conn.src_op = g;
  conn.dst_op = s;
  conn.kind = ConnectorKind::kMToNPartitionMerge;
  spec.Connect(conn);
  ASSERT_TRUE(RunJob(cluster, spec, nullptr).ok());
  EXPECT_EQ(counts.total, 500);
  EXPECT_TRUE(counts.sorted);
}

// ---------------------------------------------------------------------------
// Index edge cases

TEST(OpsEdgeTest, BTreeMixedKeyLengthsAndEmptyValues) {
  TempDir dir("edge-btree");
  WorkerMetrics metrics;
  BufferCache cache(2048, 64, &metrics);
  std::unique_ptr<BTree> tree;
  ASSERT_TRUE(BTree::Open(&cache, dir.path() + "/t", &tree).ok());
  // Keys from 1 to 200 bytes, values from 0 to 400 bytes.
  std::map<std::string, std::string> model;
  Random rnd(3);
  for (int i = 0; i < 2000; ++i) {
    std::string key(1 + rnd.Uniform(200), 'a' + rnd.Uniform(26));
    key += std::to_string(i % 97);
    std::string value(rnd.Uniform(400), 'v');
    ASSERT_TRUE(tree->Upsert(key, value).ok());
    model[key] = value;
  }
  Status cs = tree->CheckConsistency();
  ASSERT_TRUE(cs.ok()) << cs.ToString();
  auto it = tree->NewIterator();
  ASSERT_TRUE(it->SeekToFirst().ok());
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key().ToString(), key);
    EXPECT_EQ(it->value().size(), value.size());
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_FALSE(it->Valid());
}

TEST(OpsEdgeTest, BTreeSeekWithinAndPastLeaves) {
  TempDir dir("edge-seek");
  WorkerMetrics metrics;
  BufferCache cache(2048, 64, &metrics);
  std::unique_ptr<BTree> tree;
  ASSERT_TRUE(BTree::Open(&cache, dir.path() + "/t", &tree).ok());
  for (int64_t vid = 10; vid <= 10000; vid += 10) {
    ASSERT_TRUE(
        tree->Upsert(OrderedKeyI64(vid), std::string(50, 'x')).ok());
  }
  auto it = tree->NewIterator();
  // Exact, between, before-first, after-last.
  ASSERT_TRUE(it->Seek(OrderedKeyI64(5000)).ok());
  EXPECT_EQ(DecodeOrderedI64(it->key().data()), 5000);
  ASSERT_TRUE(it->Seek(OrderedKeyI64(5001)).ok());
  EXPECT_EQ(DecodeOrderedI64(it->key().data()), 5010);
  ASSERT_TRUE(it->Seek(OrderedKeyI64(-100)).ok());
  EXPECT_EQ(DecodeOrderedI64(it->key().data()), 10);
  ASSERT_TRUE(it->Seek(OrderedKeyI64(10001)).ok());
  EXPECT_FALSE(it->Valid());
}

TEST(OpsEdgeTest, LsmSeekLandsAfterTombstonedRange) {
  TempDir dir("edge-lsm");
  WorkerMetrics metrics;
  BufferCache cache(2048, 64, &metrics);
  std::unique_ptr<LsmBTree> lsm;
  ASSERT_TRUE(LsmBTree::Open(&cache, dir.Sub("l"), 4096, &lsm).ok());
  for (int64_t vid = 0; vid < 100; ++vid) {
    ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(vid), "v").ok());
  }
  ASSERT_TRUE(lsm->FlushMemtable().ok());
  // Tombstone a middle range in a newer component.
  for (int64_t vid = 40; vid < 60; ++vid) {
    ASSERT_TRUE(lsm->Delete(OrderedKeyI64(vid)).ok());
  }
  auto it = lsm->NewIterator();
  ASSERT_TRUE(it->Seek(OrderedKeyI64(45)).ok());
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(DecodeOrderedI64(it->key().data()), 60);
  // Scan never surfaces the tombstoned keys.
  ASSERT_TRUE(it->SeekToFirst().ok());
  int count = 0;
  while (it->Valid()) {
    const int64_t vid = DecodeOrderedI64(it->key().data());
    EXPECT_TRUE(vid < 40 || vid >= 60) << vid;
    ++count;
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_EQ(count, 80);
}

TEST(OpsEdgeTest, PreclusteredGrouperRejectsUnsortedInputInDebug) {
  // Documented contract: preclustered group-by requires clustered input.
  // (Enforced by PREGELIX_CHECK; validated here only for sorted input.)
  GroupCombiner list;
  list.init = [](const Slice& p, std::string* acc) {
    acc->assign(p.data(), p.size());
  };
  list.step = [](const Slice& p, std::string* acc) {
    acc->append(p.data(), p.size());
  };
  PreclusteredGrouper grouper(list, nullptr);
  int emitted = 0;
  auto emit = [&](std::span<const Slice>) {
    ++emitted;
    return Status::OK();
  };
  const std::string k1 = OrderedKeyI64(1), k2 = OrderedKeyI64(2);
  ASSERT_TRUE(grouper.Add(k1, "a", emit).ok());
  ASSERT_TRUE(grouper.Add(k1, "b", emit).ok());
  ASSERT_TRUE(grouper.Add(k2, "c", emit).ok());
  ASSERT_TRUE(grouper.Finish(emit).ok());
  EXPECT_EQ(emitted, 2);
}

}  // namespace
}  // namespace pregelix
