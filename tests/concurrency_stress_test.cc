// The TSan gate for the simulated cluster: real multi-worker Pregel jobs
// with every observability and fault-injection surface poked concurrently
// from the outside, the way a monitoring sidecar would.
//
// Built into the `tsan`-labeled ctest suite (PREGELIX_SANITIZE=thread); in
// plain builds it still runs as a tier-1 functional test with the runtime
// lock-order detector forced on, so a lock inversion anywhere under a job
// aborts the test with a two-sided report.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/fault_injection.h"
#include "common/metrics_registry.h"
#include "common/mutex.h"
#include "common/temp_dir.h"
#include "common/time_ledger.h"
#include "common/trace.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "graph/ref_algos.h"
#include "graph/text_io.h"
#include "pregel/runtime.h"

namespace pregelix {
namespace {

/// Reads a dumped result directory into vid -> value-string.
std::map<int64_t, std::string> ParseOutput(const DistributedFileSystem& dfs,
                                           const std::string& dir) {
  std::map<int64_t, std::string> out;
  std::vector<std::string> names;
  EXPECT_TRUE(dfs.List(dir, &names).ok());
  for (const std::string& name : names) {
    std::string contents;
    EXPECT_TRUE(dfs.Read(dir + "/" + name, &contents).ok());
    std::istringstream lines(contents);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      std::istringstream fields(line);
      int64_t vid;
      std::string value;
      fields >> vid >> value;
      out[vid] = value;
    }
  }
  return out;
}

class ConcurrencyStressTest : public ::testing::Test {
 protected:
  ConcurrencyStressTest() : dfs_(dir_.Sub("dfs")) {
    config_.num_workers = 2;
    config_.partitions_per_worker = 2;
    config_.worker_ram_bytes = 8u << 20;
    config_.frame_size = 8 * 1024;
    config_.temp_root = dir_.Sub("cluster");
    // nullptr sinks = the process-global tracer/registry, shared with the
    // scraper threads below — that sharing is the point of this test.
    cluster_ = std::make_unique<SimulatedCluster>(config_);
    runtime_ = std::make_unique<PregelixRuntime>(cluster_.get(), &dfs_);
    // Force the runtime lock-order detector on even in NDEBUG builds: any
    // rank inversion or acquisition cycle under the stress aborts loudly.
    lock_order::SetEnabled(true);
    Tracer::Global().Enable();
  }

  ~ConcurrencyStressTest() override {
    fault::FaultInjector::Global().Reset();
    Tracer::Global().Disable();
    Tracer::Global().Clear();
    // Time-ledger conservation under concurrency stress (DESIGN.md §20):
    // scrapers and fault reconfiguration racing the jobs must not cost a
    // nanosecond of attribution or trip a guard off its owner thread.
    const TimeLedgerSnapshot ledger = TimeLedger::Global().TakeSnapshot();
    EXPECT_EQ(ledger.misuse_count, 0);
#ifndef NDEBUG
    EXPECT_EQ(ledger.unattributed_ns, 0);
#else
    EXPECT_LE(ledger.unattributed_ns, 1'000'000);
#endif
  }

  TempDir dir_{"concurrency-stress"};
  DistributedFileSystem dfs_;
  ClusterConfig config_;
  std::unique_ptr<SimulatedCluster> cluster_;
  std::unique_ptr<PregelixRuntime> runtime_;
};

TEST_F(ConcurrencyStressTest, JobsVsScrapesVsFaultReconfig) {
  GraphStats stats;
  ASSERT_TRUE(
      GenerateBtcLike(dfs_, "input/sssp", 3, 200, 6.0, 42, &stats).ok());
  ASSERT_TRUE(
      GenerateWebmapLike(dfs_, "input/pr", 3, 150, 5.0, 42, &stats).ok());

  InMemoryGraph sssp_graph;
  ASSERT_TRUE(LoadGraph(dfs_, "input/sssp", &sssp_graph).ok());
  const std::vector<double> sssp_expected = SsspRef(sssp_graph, 0);

  std::atomic<bool> done{false};
  std::atomic<int> scrape_rounds{0};

  // Scraper 1: metrics exports — registry JSON dump plus the cluster's
  // per-worker publish/snapshot paths (cluster lock vs. job threads).
  std::thread metrics_scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      cluster_->PublishMetrics();
      std::ostringstream json;
      MetricsRegistry::Global().WriteJson(json);
      EXPECT_FALSE(json.str().empty());
      const std::vector<MetricsSnapshot> snaps = cluster_->SnapshotAll();
      EXPECT_EQ(snaps.size(), 2u);
      scrape_rounds.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  // Scraper 2: trace flushes — collect/export/clear race the per-thread
  // buffer appends from every operator span in the running jobs.
  std::thread trace_scraper([&] {
    int round = 0;
    while (!done.load(std::memory_order_relaxed)) {
      (void)Tracer::Global().Collect();
      (void)Tracer::Global().event_count();
      std::ostringstream chrome;
      Tracer::Global().WriteChromeTrace(chrome);
      EXPECT_FALSE(chrome.str().empty());
      if (++round % 16 == 0) Tracer::Global().Clear();
      std::this_thread::yield();
    }
  });

  // Scraper 3: fault-injector reconfiguration. The armed spec can never
  // fire (hit number 2^60 of a test-only point), but arming flips
  // any_armed(), so every MaybeFail site in the jobs takes the full
  // locked path — injector lock vs. channel/buffer-cache locks.
  std::thread fault_reconfig([&] {
    fault::FaultSpec spec;
    spec.trigger = fault::Trigger::kNthHit;
    spec.n = uint64_t{1} << 60;
    while (!done.load(std::memory_order_relaxed)) {
      fault::FaultInjector::Global().Arm("stress.never.fires", spec);
      (void)fault::FaultInjector::Global().Stats("io.file.write");
      (void)fault::FaultInjector::Global().scope();
      fault::FaultInjector::Global().Disarm("stress.never.fires");
      std::this_thread::yield();
    }
  });

  // Two full Pregel jobs back to back while the scrapers hammer away; the
  // jobs themselves fan out onto the simulated workers' threads.
  SsspProgram sssp(0);
  SsspProgram::Adapter sssp_adapter(&sssp);
  PregelixJobConfig sssp_job;
  sssp_job.name = "stress-sssp";
  sssp_job.input_dir = "input/sssp";
  sssp_job.output_dir = "output/sssp";
  sssp_job.join = JoinStrategy::kLeftOuter;
  JobResult sssp_result;
  Status s = runtime_->Run(&sssp_adapter, sssp_job, &sssp_result);
  EXPECT_TRUE(s.ok()) << s.ToString();

  PageRankProgram pr(10);
  PageRankProgram::Adapter pr_adapter(&pr);
  PregelixJobConfig pr_job;
  pr_job.name = "stress-pr";
  pr_job.input_dir = "input/pr";
  pr_job.output_dir = "output/pr";
  pr_job.join = JoinStrategy::kFullOuter;
  JobResult pr_result;
  s = runtime_->Run(&pr_adapter, pr_job, &pr_result);
  EXPECT_TRUE(s.ok()) << s.ToString();

  done.store(true, std::memory_order_relaxed);
  metrics_scraper.join();
  trace_scraper.join();
  fault_reconfig.join();

  // The scrapers genuinely overlapped the jobs.
  EXPECT_GT(scrape_rounds.load(), 0);

  // Concurrent observation must not have perturbed the computation: the
  // SSSP result still matches the single-threaded reference exactly.
  auto output = ParseOutput(dfs_, "output/sssp");
  ASSERT_EQ(output.size(), static_cast<size_t>(sssp_graph.num_vertices()));
  for (auto& [vid, value] : output) {
    if (sssp_expected[vid] < 0) {
      EXPECT_EQ(value, "inf");
    } else {
      EXPECT_NEAR(std::stod(value), sssp_expected[vid], 1e-9) << "vid " << vid;
    }
  }
  EXPECT_EQ(pr_result.supersteps, 11);
}

TEST_F(ConcurrencyStressTest, OverlapPipelineVsScrapesVsFaultReconfig) {
  // Overlap-pipeline stress (DESIGN.md §19): a 1-byte write-behind budget
  // makes every enqueue against a non-empty queue take the stall path, so
  // the prefetch pool and write-behind worker stay hot and contended for
  // the whole job, while (1) a scraper hammers PublishMetrics — reading the
  // pregelix.io.* gauges off the live counters — and (2) a reconfig thread
  // flips the overlap fault points' armed state, pushing every background
  // MaybeFail onto the fully locked injector path. Exercises the overlap
  // locks (ranks 22/24) against the cluster lock, the metrics registry and
  // the fault injector from all sides at once.
  GraphStats stats;
  ASSERT_TRUE(
      GenerateBtcLike(dfs_, "input/overlap", 2, 200, 6.0, 7, &stats).ok());
  InMemoryGraph graph;
  ASSERT_TRUE(LoadGraph(dfs_, "input/overlap", &graph).ok());
  const std::vector<double> expected = SsspRef(graph, 0);

  ClusterConfig config = config_;
  config.overlap = OverlapMode::kOn;
  config.writebehind_budget_bytes = 1;
  config.temp_root = dir_.Sub("cluster-overlap");
  SimulatedCluster cluster(config);
  PregelixRuntime runtime(&cluster, &dfs_);
  ASSERT_NE(cluster.overlap(), nullptr);

  std::atomic<bool> done{false};
  std::atomic<int> scrape_rounds{0};

  std::thread metrics_scraper([&] {
    while (!done.load(std::memory_order_relaxed)) {
      cluster.PublishMetrics();
      std::ostringstream json;
      MetricsRegistry::Global().WriteJson(json);
      EXPECT_NE(json.str().find("pregelix.io.writebehind_queue_bytes"),
                std::string::npos);
      // Raw counter reads race the worker threads' updates (atomics).
      (void)cluster.overlap()->prefetch().hits();
      (void)cluster.overlap()->prefetch().wasted();
      (void)cluster.overlap()->writebehind().queue_bytes();
      (void)cluster.overlap()->writebehind().stall_count();
      scrape_rounds.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::yield();
    }
  });

  // Arming flips any_armed(), so the prefetch/write-behind threads take the
  // locked MaybeFail path at their injection sites; hit 2^60 never fires.
  std::thread fault_reconfig([&] {
    fault::FaultSpec spec;
    spec.trigger = fault::Trigger::kNthHit;
    spec.n = uint64_t{1} << 60;
    while (!done.load(std::memory_order_relaxed)) {
      fault::FaultInjector::Global().Arm("io.prefetch.read", spec);
      fault::FaultInjector::Global().Arm("io.writebehind.flush", spec);
      (void)fault::FaultInjector::Global().Stats("io.writebehind.flush");
      fault::FaultInjector::Global().Disarm("io.prefetch.read");
      fault::FaultInjector::Global().Disarm("io.writebehind.flush");
      std::this_thread::yield();
    }
  });

  // LSM storage routes component flushes through the write-behind queue on
  // top of the run-file appends; the unmerged connector keeps the eager
  // group-by sink in play.
  SsspProgram sssp(0);
  SsspProgram::Adapter adapter(&sssp);
  PregelixJobConfig job;
  job.name = "stress-overlap";
  job.input_dir = "input/overlap";
  job.output_dir = "output/overlap";
  job.join = JoinStrategy::kFullOuter;
  job.storage = VertexStorage::kLsmBTree;
  job.groupby_connector = GroupByConnector::kUnmerged;
  JobResult result;
  Status s = runtime.Run(&adapter, job, &result);
  EXPECT_TRUE(s.ok()) << s.ToString();

  done.store(true, std::memory_order_relaxed);
  metrics_scraper.join();
  fault_reconfig.join();

  EXPECT_GT(scrape_rounds.load(), 0);
  // The job really ran through the overlap pipeline, not the sync fallback.
  EXPECT_GT(cluster.overlap()->prefetch().hits() +
                cluster.overlap()->prefetch().misses(),
            0u);
  EXPECT_EQ(cluster.overlap()->writebehind().queue_bytes(), 0u);

  // Contention must not have perturbed the computation.
  auto output = ParseOutput(dfs_, "output/overlap");
  ASSERT_EQ(output.size(), static_cast<size_t>(graph.num_vertices()));
  for (auto& [vid, value] : output) {
    if (expected[vid] < 0) {
      EXPECT_EQ(value, "inf");
    } else {
      EXPECT_NEAR(std::stod(value), expected[vid], 1e-9) << "vid " << vid;
    }
  }
}

TEST_F(ConcurrencyStressTest, HistogramSnapshotsDuringConcurrentObserves) {
  // Regression stress for the Observe/count ordering: a snapshot that
  // reads count == n must see >= n bucket increments, so the percentile
  // walk can never run past the populated buckets.
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("stress.histogram");

  constexpr int kWriters = 3;
  constexpr uint64_t kObservations = 20000;
  std::atomic<bool> done{false};

  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([h, w] {
      for (uint64_t i = 0; i < kObservations; ++i) {
        h->Observe(i << (w % 3));
      }
    });
  }

  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const uint64_t n = h->count();
      const uint64_t p50 = h->Percentile(50);
      const uint64_t p100 = h->Percentile(100);
      if (n > 0) {
        EXPECT_LE(p50, p100);
        // Bucketed upper-bound estimate: never past the largest observable
        // value's bucket ((kObservations - 1) << 2 < 2^20).
        EXPECT_LT(p100, uint64_t{1} << 21);
      }
      std::ostringstream json;
      registry.WriteJson(json);
      std::this_thread::yield();
    }
  });

  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(h->count(), kWriters * kObservations);
  EXPECT_EQ(h->max(), (kObservations - 1) << 2);
}

}  // namespace
}  // namespace pregelix
