#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "buffer/buffer_cache.h"
#include "common/random.h"
#include "common/serde.h"
#include "common/temp_dir.h"
#include "storage/lsm_btree.h"

namespace pregelix {
namespace {

class LsmBTreeTest : public ::testing::Test {
 protected:
  LsmBTreeTest() : cache_(4096, 128, &metrics_) {}

  std::unique_ptr<LsmBTree> OpenLsm(const std::string& name,
                                    size_t budget = 64 * 1024) {
    std::unique_ptr<LsmBTree> lsm;
    Status s = LsmBTree::Open(&cache_, dir_.Sub(name), budget, &lsm);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return lsm;
  }

  TempDir dir_{"lsm-test"};
  WorkerMetrics metrics_;
  BufferCache cache_;
};

TEST_F(LsmBTreeTest, PutGetDelete) {
  auto lsm = OpenLsm("t");
  ASSERT_TRUE(lsm->Upsert("a", "1").ok());
  ASSERT_TRUE(lsm->Upsert("b", "2").ok());
  std::string value;
  ASSERT_TRUE(lsm->Get("a", &value).ok());
  EXPECT_EQ(value, "1");
  ASSERT_TRUE(lsm->Delete("a").ok());
  EXPECT_TRUE(lsm->Get("a", &value).IsNotFound());
  ASSERT_TRUE(lsm->Get("b", &value).ok());
  EXPECT_EQ(value, "2");
}

TEST_F(LsmBTreeTest, MemtableFlushCreatesComponent) {
  auto lsm = OpenLsm("t", /*budget=*/2048);
  for (int64_t vid = 0; vid < 200; ++vid) {
    ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(vid), std::string(32, 'x')).ok());
  }
  EXPECT_GT(lsm->num_disk_components(), 0);
  std::string value;
  ASSERT_TRUE(lsm->Get(OrderedKeyI64(13), &value).ok());
  EXPECT_EQ(value, std::string(32, 'x'));
}

TEST_F(LsmBTreeTest, NewestComponentWins) {
  auto lsm = OpenLsm("t", /*budget=*/1024);
  for (int round = 0; round < 5; ++round) {
    for (int64_t vid = 0; vid < 50; ++vid) {
      ASSERT_TRUE(
          lsm->Upsert(OrderedKeyI64(vid), "round-" + std::to_string(round))
              .ok());
    }
    ASSERT_TRUE(lsm->FlushMemtable().ok());
  }
  std::string value;
  for (int64_t vid = 0; vid < 50; ++vid) {
    ASSERT_TRUE(lsm->Get(OrderedKeyI64(vid), &value).ok());
    EXPECT_EQ(value, "round-4");
  }
}

TEST_F(LsmBTreeTest, TombstonesMaskOlderComponents) {
  auto lsm = OpenLsm("t");
  ASSERT_TRUE(lsm->Upsert("k", "v").ok());
  ASSERT_TRUE(lsm->FlushMemtable().ok());
  ASSERT_TRUE(lsm->Delete("k").ok());
  ASSERT_TRUE(lsm->FlushMemtable().ok());
  std::string value;
  EXPECT_TRUE(lsm->Get("k", &value).IsNotFound());
  // Iterator must not surface the tombstoned key either.
  auto it = lsm->NewIterator();
  ASSERT_TRUE(it->SeekToFirst().ok());
  EXPECT_FALSE(it->Valid());
}

TEST_F(LsmBTreeTest, MergeCollapsesComponents) {
  auto lsm = OpenLsm("t");
  for (int round = 0; round < 3; ++round) {
    for (int64_t vid = round * 100; vid < (round + 1) * 100; ++vid) {
      ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(vid), "v").ok());
    }
    ASSERT_TRUE(lsm->FlushMemtable().ok());
  }
  EXPECT_EQ(lsm->num_disk_components(), 3);
  ASSERT_TRUE(lsm->MergeAll().ok());
  EXPECT_EQ(lsm->num_disk_components(), 1);
  EXPECT_EQ(lsm->num_entries(), 300u);
  std::string value;
  ASSERT_TRUE(lsm->Get(OrderedKeyI64(250), &value).ok());
}

TEST_F(LsmBTreeTest, AutoMergeBoundsComponentCount) {
  auto lsm = OpenLsm("t", /*budget=*/512);
  for (int64_t vid = 0; vid < 3000; ++vid) {
    ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(vid), std::string(16, 'a')).ok());
  }
  EXPECT_LE(lsm->num_disk_components(), LsmBTree::kMaxComponents + 1);
}

TEST_F(LsmBTreeTest, IteratorMergesAllLevels) {
  auto lsm = OpenLsm("t");
  // Component 1: even keys. Component 2: multiples of 3 (overwrites some).
  for (int64_t vid = 0; vid < 100; vid += 2) {
    ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(vid), "even").ok());
  }
  ASSERT_TRUE(lsm->FlushMemtable().ok());
  for (int64_t vid = 0; vid < 100; vid += 3) {
    ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(vid), "three").ok());
  }
  ASSERT_TRUE(lsm->FlushMemtable().ok());
  // Memtable: one fresh key.
  ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(1), "mem").ok());

  std::map<int64_t, std::string> expected;
  for (int64_t vid = 0; vid < 100; vid += 2) expected[vid] = "even";
  for (int64_t vid = 0; vid < 100; vid += 3) expected[vid] = "three";
  expected[1] = "mem";

  auto it = lsm->NewIterator();
  ASSERT_TRUE(it->SeekToFirst().ok());
  for (const auto& [vid, value] : expected) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(DecodeOrderedI64(it->key().data()), vid);
    EXPECT_EQ(it->value().ToString(), value);
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_FALSE(it->Valid());
}

TEST_F(LsmBTreeTest, SeekAcrossComponents) {
  auto lsm = OpenLsm("t");
  for (int64_t vid = 0; vid < 50; vid += 10) {
    ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(vid), "v").ok());
  }
  ASSERT_TRUE(lsm->FlushMemtable().ok());
  ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(25), "v").ok());
  auto it = lsm->NewIterator();
  ASSERT_TRUE(it->Seek(OrderedKeyI64(21)).ok());
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(DecodeOrderedI64(it->key().data()), 25);
  ASSERT_TRUE(it->Next().ok());
  EXPECT_EQ(DecodeOrderedI64(it->key().data()), 30);
}

TEST_F(LsmBTreeTest, RandomizedAgainstStdMap) {
  auto lsm = OpenLsm("t", /*budget=*/4096);
  std::map<std::string, std::string> model;
  Random rnd(123);
  for (int op = 0; op < 20000; ++op) {
    const int64_t vid = static_cast<int64_t>(rnd.Uniform(500));
    const std::string key = OrderedKeyI64(vid);
    const int action = static_cast<int>(rnd.Uniform(10));
    if (action < 6) {
      std::string value(rnd.Uniform(30) + 1, 'a' + vid % 26);
      ASSERT_TRUE(lsm->Upsert(key, value).ok());
      model[key] = value;
    } else if (action < 8) {
      ASSERT_TRUE(lsm->Delete(key).ok());
      model.erase(key);
    } else {
      std::string value;
      Status s = lsm->Get(key, &value);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(s.IsNotFound());
      } else {
        ASSERT_TRUE(s.ok());
        EXPECT_EQ(value, it->second);
      }
    }
  }
  // Final merged scan equals the model.
  auto it = lsm->NewIterator();
  ASSERT_TRUE(it->SeekToFirst().ok());
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key().ToString(), key);
    EXPECT_EQ(it->value().ToString(), value);
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_FALSE(it->Valid());
  ASSERT_TRUE(lsm->MergeAll().ok());
  EXPECT_EQ(lsm->num_entries(), model.size());
}

TEST_F(LsmBTreeTest, BulkLoadFastPath) {
  auto lsm = OpenLsm("t");
  auto loader = lsm->NewBulkLoader();
  for (int64_t vid = 0; vid < 1000; ++vid) {
    ASSERT_TRUE(loader->Add(OrderedKeyI64(vid), "bulk").ok());
  }
  ASSERT_TRUE(loader->Finish().ok());
  EXPECT_EQ(lsm->num_disk_components(), 1);
  std::string value;
  ASSERT_TRUE(lsm->Get(OrderedKeyI64(999), &value).ok());
  EXPECT_EQ(value, "bulk");
  // Post-load updates land in the memtable and still win.
  ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(999), "updated").ok());
  ASSERT_TRUE(lsm->Get(OrderedKeyI64(999), &value).ok());
  EXPECT_EQ(value, "updated");
}

TEST_F(LsmBTreeTest, ReopenRecoversDiskComponents) {
  const std::string dir = dir_.Sub("reopen");
  {
    std::unique_ptr<LsmBTree> lsm;
    ASSERT_TRUE(LsmBTree::Open(&cache_, dir, 64 * 1024, &lsm).ok());
    for (int64_t vid = 0; vid < 100; ++vid) {
      ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(vid), "gen1").ok());
    }
    ASSERT_TRUE(lsm->FlushMemtable().ok());
    // Second generation overwrites half in a newer component.
    for (int64_t vid = 0; vid < 50; ++vid) {
      ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(vid), "gen2").ok());
    }
    ASSERT_TRUE(lsm->Flush().ok());
    EXPECT_EQ(lsm->num_disk_components(), 2);
  }
  // Reopen through a fresh cache: components re-attach, newest still wins.
  WorkerMetrics metrics;
  BufferCache cache(4096, 128, &metrics);
  std::unique_ptr<LsmBTree> lsm;
  ASSERT_TRUE(LsmBTree::Open(&cache, dir, 64 * 1024, &lsm).ok());
  EXPECT_EQ(lsm->num_disk_components(), 2);
  std::string value;
  ASSERT_TRUE(lsm->Get(OrderedKeyI64(10), &value).ok());
  EXPECT_EQ(value, "gen2");
  ASSERT_TRUE(lsm->Get(OrderedKeyI64(80), &value).ok());
  EXPECT_EQ(value, "gen1");
  // New writes continue with fresh component ids.
  ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(10), "gen3").ok());
  ASSERT_TRUE(lsm->FlushMemtable().ok());
  ASSERT_TRUE(lsm->Get(OrderedKeyI64(10), &value).ok());
  EXPECT_EQ(value, "gen3");
}

TEST_F(LsmBTreeTest, DestroyRemovesFiles) {
  auto lsm = OpenLsm("destroy-me");
  ASSERT_TRUE(lsm->Upsert("k", "v").ok());
  ASSERT_TRUE(lsm->FlushMemtable().ok());
  ASSERT_TRUE(lsm->Destroy().ok());
}

}  // namespace
}  // namespace pregelix
