// Crash-consistency tests for the LSM B-tree (ISSUE: fault suite).
//
// Each scenario arms a fault point inside flush or merge, lets the failure
// happen, then "reboots" by reopening the directory through a FRESH
// BufferCache (the moral equivalent of a new process). Invariants checked
// after every crash:
//   - every committed key is still readable with its committed value,
//   - deleted keys stay deleted (no resurrection from half-merged files),
//   - the attached component list matches the CURRENT manifest,
//   - orphan component files from the crash window are swept at reopen.

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <system_error>

#include "buffer/buffer_cache.h"
#include "common/fault_injection.h"
#include "common/serde.h"
#include "common/temp_dir.h"
#include "io/file.h"
#include "storage/lsm_btree.h"

namespace pregelix {
namespace {

using fault::Action;
using fault::FaultInjector;
using fault::FaultSpec;
using fault::Trigger;

int CountComponentFiles(const std::string& dir) {
  int n = 0;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    const std::string name = it->path().filename().string();
    if (name.size() > 6 && name.substr(name.size() - 6) == ".btree") ++n;
  }
  return n;
}

class LsmCrashTest : public ::testing::Test {
 protected:
  LsmCrashTest() : cache_(4096, 128, &metrics_) {
    FaultInjector::Global().Reset();
  }
  ~LsmCrashTest() override { FaultInjector::Global().Reset(); }

  std::unique_ptr<LsmBTree> OpenLsm(const std::string& dir, BufferCache* cache,
                                    size_t budget = 256 * 1024) {
    std::unique_ptr<LsmBTree> lsm;
    Status s = LsmBTree::Open(cache, dir, budget, &lsm);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return lsm;
  }

  /// Reopens `dir` through a brand-new cache, as a restarted process would.
  std::unique_ptr<LsmBTree> Reboot(const std::string& dir) {
    reboot_metrics_ = std::make_unique<WorkerMetrics>();
    reboot_cache_ =
        std::make_unique<BufferCache>(4096, 128, reboot_metrics_.get());
    return OpenLsm(dir, reboot_cache_.get());
  }

  void ExpectValue(LsmBTree* lsm, int64_t vid, const std::string& expected) {
    std::string value;
    Status s = lsm->Get(OrderedKeyI64(vid), &value);
    ASSERT_TRUE(s.ok()) << "vid " << vid << ": " << s.ToString();
    EXPECT_EQ(value, expected) << "vid " << vid;
  }

  void ExpectGone(LsmBTree* lsm, int64_t vid) {
    std::string value;
    EXPECT_TRUE(lsm->Get(OrderedKeyI64(vid), &value).IsNotFound())
        << "vid " << vid << " resurrected with value " << value;
  }

  TempDir dir_{"lsm-crash-test"};
  WorkerMetrics metrics_;
  BufferCache cache_;
  std::unique_ptr<WorkerMetrics> reboot_metrics_;
  std::unique_ptr<BufferCache> reboot_cache_;
};

TEST_F(LsmCrashTest, TransientFlushFaultRetryKeepsAllKeys) {
  const std::string dir = dir_.Sub("t");
  {
    auto lsm = OpenLsm(dir, &cache_, /*budget=*/2048);
    FaultSpec spec;
    spec.trigger = Trigger::kNthHit;
    spec.n = 1;  // first flush attempt fails, every retry succeeds
    FaultInjector::Global().Arm("lsm.flush", spec);
    int failures = 0;
    for (int64_t vid = 0; vid < 200; ++vid) {
      Status s = lsm->Upsert(OrderedKeyI64(vid), std::string(32, 'x'));
      if (!s.ok()) {
        EXPECT_TRUE(s.IsIoError()) << s.ToString();
        ++failures;  // key is already in the memtable; nothing to redo
      }
    }
    EXPECT_EQ(failures, 1);
    EXPECT_EQ(FaultInjector::Global().Stats("lsm.flush").fires, 1u);
    FaultInjector::Global().Reset();
    ASSERT_TRUE(lsm->Flush().ok());
    for (int64_t vid = 0; vid < 200; ++vid) {
      ExpectValue(lsm.get(), vid, std::string(32, 'x'));
    }
  }
  auto lsm = Reboot(dir);
  for (int64_t vid = 0; vid < 200; ++vid) {
    ExpectValue(lsm.get(), vid, std::string(32, 'x'));
  }
}

TEST_F(LsmCrashTest, CrashDuringFlushLosesOnlyUncommittedKeys) {
  const std::string dir = dir_.Sub("t");
  {
    auto lsm = OpenLsm(dir, &cache_);
    for (int64_t vid = 0; vid < 100; ++vid) {
      ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(vid), "committed").ok());
    }
    ASSERT_TRUE(lsm->FlushMemtable().ok());
    ASSERT_EQ(lsm->num_disk_components(), 1);

    FaultSpec spec;
    spec.action = Action::kCrash;
    FaultInjector::Global().Arm("lsm.flush", spec);
    for (int64_t vid = 100; vid < 150; ++vid) {
      ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(vid), "lost").ok());
    }
    Status s = lsm->FlushMemtable();
    EXPECT_TRUE(fault::IsSimulatedCrash(s)) << s.ToString();
    // The LsmBTree destructor retries the flush on close; the fault stays
    // armed so that retry fails too — the memtable truly dies with the
    // "process", leaving half-built component files behind as orphans.
  }
  FaultInjector::Global().Reset();

  auto lsm = Reboot(dir);
  EXPECT_EQ(lsm->num_disk_components(), 1);
  EXPECT_EQ(CountComponentFiles(dir), 1);  // crash debris swept at open
  for (int64_t vid = 0; vid < 100; ++vid) {
    ExpectValue(lsm.get(), vid, "committed");
  }
  for (int64_t vid = 100; vid < 150; ++vid) {
    ExpectGone(lsm.get(), vid);
  }
}

TEST_F(LsmCrashTest, FlushCommitFaultKeepsMemtableIntact) {
  const std::string dir = dir_.Sub("t");
  {
    auto lsm = OpenLsm(dir, &cache_);
    for (int64_t vid = 0; vid < 50; ++vid) {
      ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(vid), "v").ok());
    }
    FaultSpec spec;
    spec.trigger = Trigger::kNthHit;
    spec.n = 1;
    FaultInjector::Global().Arm("lsm.flush.commit", spec);
    Status s = lsm->FlushMemtable();
    EXPECT_TRUE(s.IsIoError()) << s.ToString();
    // The component was rolled back and the memtable kept: reads still work
    // and a retry commits everything.
    EXPECT_EQ(lsm->num_disk_components(), 0);
    ExpectValue(lsm.get(), 25, "v");
    ASSERT_TRUE(lsm->FlushMemtable().ok());
    EXPECT_EQ(lsm->num_disk_components(), 1);
  }
  FaultInjector::Global().Reset();
  auto lsm = Reboot(dir);
  EXPECT_EQ(lsm->num_disk_components(), 1);
  for (int64_t vid = 0; vid < 50; ++vid) {
    ExpectValue(lsm.get(), vid, "v");
  }
}

TEST_F(LsmCrashTest, CrashDuringMergeKeepsOldStackAndTombstones) {
  const std::string dir = dir_.Sub("t");
  {
    auto lsm = OpenLsm(dir, &cache_);
    for (int64_t vid = 0; vid < 150; ++vid) {
      ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(vid), "v").ok());
    }
    ASSERT_TRUE(lsm->FlushMemtable().ok());
    for (int64_t vid = 0; vid < 30; ++vid) {
      ASSERT_TRUE(lsm->Delete(OrderedKeyI64(vid)).ok());
    }
    ASSERT_TRUE(lsm->FlushMemtable().ok());
    for (int64_t vid = 150; vid < 200; ++vid) {
      ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(vid), "v").ok());
    }
    ASSERT_TRUE(lsm->FlushMemtable().ok());
    ASSERT_EQ(lsm->num_disk_components(), 3);

    // Crash after the merged component is fully written but before commit.
    // The merged file has the tombstones dropped — attaching it alongside
    // the old stack (or instead of it, without the commit record) would
    // resurrect the 30 deleted keys.
    FaultSpec spec;
    spec.action = Action::kCrash;
    FaultInjector::Global().Arm("lsm.merge", spec);
    Status s = lsm->MergeAll();
    EXPECT_TRUE(fault::IsSimulatedCrash(s)) << s.ToString();
    EXPECT_EQ(lsm->num_disk_components(), 3);  // old stack still installed
  }
  FaultInjector::Global().Reset();

  auto lsm = Reboot(dir);
  EXPECT_EQ(lsm->num_disk_components(), 3);
  EXPECT_EQ(CountComponentFiles(dir), 3);  // merged orphan swept
  for (int64_t vid = 0; vid < 30; ++vid) {
    ExpectGone(lsm.get(), vid);
  }
  for (int64_t vid = 30; vid < 200; ++vid) {
    ExpectValue(lsm.get(), vid, "v");
  }
}

TEST_F(LsmCrashTest, MergeCommitFaultRollsBackAndRetries) {
  const std::string dir = dir_.Sub("t");
  {
    auto lsm = OpenLsm(dir, &cache_);
    for (int64_t vid = 0; vid < 50; ++vid) {
      ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(vid), "old").ok());
    }
    ASSERT_TRUE(lsm->FlushMemtable().ok());
    for (int64_t vid = 0; vid < 25; ++vid) {
      ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(vid), "new").ok());
    }
    ASSERT_TRUE(lsm->FlushMemtable().ok());
    ASSERT_EQ(lsm->num_disk_components(), 2);

    FaultSpec spec;
    spec.trigger = Trigger::kNthHit;
    spec.n = 1;
    FaultInjector::Global().Arm("lsm.merge.commit", spec);
    Status s = lsm->MergeAll();
    EXPECT_TRUE(s.IsIoError()) << s.ToString();
    // In-memory rollback: the pre-merge stack answers reads as before.
    EXPECT_EQ(lsm->num_disk_components(), 2);
    ExpectValue(lsm.get(), 10, "new");
    ExpectValue(lsm.get(), 40, "old");
    // Retry past the transient fault collapses the stack for real.
    ASSERT_TRUE(lsm->MergeAll().ok());
    EXPECT_EQ(lsm->num_disk_components(), 1);
    ExpectValue(lsm.get(), 10, "new");
    ExpectValue(lsm.get(), 40, "old");
  }
  FaultInjector::Global().Reset();
  auto lsm = Reboot(dir);
  EXPECT_EQ(lsm->num_disk_components(), 1);
  ExpectValue(lsm.get(), 10, "new");
  ExpectValue(lsm.get(), 40, "old");
}

TEST_F(LsmCrashTest, OrphanComponentFileIsSweptAtOpen) {
  const std::string dir = dir_.Sub("t");
  {
    auto lsm = OpenLsm(dir, &cache_);
    for (int64_t vid = 0; vid < 20; ++vid) {
      ASSERT_TRUE(lsm->Upsert(OrderedKeyI64(vid), "v").ok());
    }
    ASSERT_TRUE(lsm->Flush().ok());
  }
  // Simulate the crash window directly: a component file on disk that no
  // CURRENT manifest ever committed.
  const std::string orphan = dir + "/c42.btree";
  ASSERT_TRUE(WriteStringToFileAtomic(orphan, "torn junk from a crash").ok());

  auto lsm = Reboot(dir);
  EXPECT_FALSE(FileExists(orphan));
  EXPECT_EQ(lsm->num_disk_components(), 1);
  for (int64_t vid = 0; vid < 20; ++vid) {
    ExpectValue(lsm.get(), vid, "v");
  }
}

TEST_F(LsmCrashTest, CurrentReferencingMissingComponentIsCorruption) {
  const std::string dir = dir_.Sub("t");
  { auto lsm = OpenLsm(dir, &cache_); }  // creates the directory
  ASSERT_TRUE(WriteStringToFileAtomic(dir + "/CURRENT", "7\n").ok());
  std::unique_ptr<LsmBTree> lsm;
  Status s = LsmBTree::Open(&cache_, dir, 256 * 1024, &lsm);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
}

}  // namespace
}  // namespace pregelix
