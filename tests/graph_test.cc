#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/temp_dir.h"
#include "graph/generator.h"
#include "graph/ref_algos.h"
#include "graph/sampler.h"
#include "graph/text_io.h"

namespace pregelix {
namespace {

class GraphTest : public ::testing::Test {
 protected:
  GraphTest() : dfs_(dir_.Sub("dfs")) {}

  TempDir dir_{"graph-test"};
  DistributedFileSystem dfs_;
};

TEST_F(GraphTest, TextRoundTrip) {
  InMemoryGraph graph;
  graph.adj = {{1, 2}, {2}, {}, {0, 1, 2}};
  ASSERT_TRUE(WriteGraph(dfs_, "g", graph, 2).ok());
  InMemoryGraph loaded;
  ASSERT_TRUE(LoadGraph(dfs_, "g", &loaded).ok());
  EXPECT_EQ(loaded.adj, graph.adj);
  EXPECT_EQ(loaded.num_edges(), 6u);
}

TEST_F(GraphTest, WebmapLikeHitsDegreeTarget) {
  GraphStats stats;
  ASSERT_TRUE(
      GenerateWebmapLike(dfs_, "web", 4, 5000, 8.0, 1, &stats).ok());
  EXPECT_EQ(stats.num_vertices, 5000);
  EXPECT_NEAR(stats.avg_degree(), 8.0, 2.5);
  EXPECT_GT(stats.size_bytes, 0u);
  // Degree distribution should be skewed: some vertex has >4x the mean.
  InMemoryGraph graph;
  ASSERT_TRUE(LoadGraph(dfs_, "web", &graph).ok());
  size_t max_degree = 0;
  for (const auto& adj : graph.adj) max_degree = std::max(max_degree, adj.size());
  EXPECT_GT(max_degree, 32u);
}

TEST_F(GraphTest, WebmapLikeIsDeterministic) {
  GraphStats a, b;
  ASSERT_TRUE(GenerateWebmapLike(dfs_, "wa", 2, 1000, 5.0, 9, &a).ok());
  ASSERT_TRUE(GenerateWebmapLike(dfs_, "wb", 2, 1000, 5.0, 9, &b).ok());
  EXPECT_EQ(a.num_edges, b.num_edges);
  InMemoryGraph ga, gb;
  ASSERT_TRUE(LoadGraph(dfs_, "wa", &ga).ok());
  ASSERT_TRUE(LoadGraph(dfs_, "wb", &gb).ok());
  EXPECT_EQ(ga.adj, gb.adj);
}

TEST_F(GraphTest, BtcLikeIsSymmetricWithTargetDegree) {
  GraphStats stats;
  ASSERT_TRUE(GenerateBtcLike(dfs_, "btc", 3, 2000, 8.94, 2, &stats).ok());
  EXPECT_NEAR(stats.avg_degree(), 8.94, 0.5);
  InMemoryGraph graph;
  ASSERT_TRUE(LoadGraph(dfs_, "btc", &graph).ok());
  // Symmetry: u in adj[v] iff v in adj[u] (as multisets).
  std::multiset<std::pair<int64_t, int64_t>> fwd, rev;
  for (int64_t v = 0; v < graph.num_vertices(); ++v) {
    for (int64_t d : graph.adj[v]) {
      fwd.insert({v, d});
      rev.insert({d, v});
    }
  }
  EXPECT_EQ(fwd, rev);
  // Ring lattice guarantees one connected component.
  const std::vector<int64_t> cc = CcRef(graph);
  EXPECT_TRUE(std::all_of(cc.begin(), cc.end(),
                          [](int64_t c) { return c == 0; }));
}

TEST_F(GraphTest, ScaleUpMakesDisjointCopies) {
  GraphStats base;
  ASSERT_TRUE(GenerateBtcLike(dfs_, "base", 2, 500, 6.0, 3, &base).ok());
  GraphStats scaled;
  ASSERT_TRUE(ScaleUpGraph(dfs_, "base", "scaled", 2, 3, &scaled).ok());
  EXPECT_EQ(scaled.num_vertices, 3 * base.num_vertices);
  EXPECT_EQ(scaled.num_edges, 3 * base.num_edges);
  InMemoryGraph graph;
  ASSERT_TRUE(LoadGraph(dfs_, "scaled", &graph).ok());
  // Three disjoint copies -> exactly 3 components.
  const std::vector<int64_t> cc = CcRef(graph);
  std::set<int64_t> components(cc.begin(), cc.end());
  EXPECT_EQ(components.size(), 3u);
}

TEST_F(GraphTest, MeasureMatchesGenerateStats) {
  GraphStats generated;
  ASSERT_TRUE(
      GenerateWebmapLike(dfs_, "m", 2, 800, 4.0, 5, &generated).ok());
  GraphStats measured;
  ASSERT_TRUE(MeasureGraph(dfs_, "m", &measured).ok());
  EXPECT_EQ(measured.num_vertices, generated.num_vertices);
  EXPECT_EQ(measured.num_edges, generated.num_edges);
  EXPECT_EQ(measured.size_bytes, generated.size_bytes);
}

TEST_F(GraphTest, RandomWalkSamplerHitsTargetSize) {
  GraphStats stats;
  ASSERT_TRUE(GenerateBtcLike(dfs_, "full", 2, 3000, 8.0, 4, &stats).ok());
  InMemoryGraph full;
  ASSERT_TRUE(LoadGraph(dfs_, "full", &full).ok());
  InMemoryGraph sample;
  ASSERT_TRUE(RandomWalkSample(full, 500, 11, 0.15, &sample).ok());
  EXPECT_EQ(sample.num_vertices(), 500);
  // Sampled vids are dense and edges stay in range.
  for (int64_t v = 0; v < sample.num_vertices(); ++v) {
    for (int64_t d : sample.adj[v]) {
      EXPECT_GE(d, 0);
      EXPECT_LT(d, sample.num_vertices());
    }
  }
  EXPECT_GT(sample.num_edges(), 0u);
}

TEST_F(GraphTest, ReferenceAlgorithmsAgreeOnToyGraph) {
  // Path 0-1-2 plus isolated 3, as directed symmetric edges.
  InMemoryGraph graph;
  graph.adj = {{1}, {0, 2}, {1}, {}};
  const auto dist = SsspRef(graph, 0);
  EXPECT_EQ(dist[0], 0);
  EXPECT_EQ(dist[1], 1);
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], -1);
  const auto cc = CcRef(graph);
  EXPECT_EQ(cc[0], 0);
  EXPECT_EQ(cc[2], 0);
  EXPECT_EQ(cc[3], 3);
  const auto reach = ReachabilityRef(graph, 1);
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[2]);
  EXPECT_FALSE(reach[3]);
  // Triangle 0-1-2 plus the path: K3 graph.
  InMemoryGraph tri;
  tri.adj = {{1, 2}, {0, 2}, {0, 1}};
  EXPECT_EQ(TriangleCountRef(tri), 1u);
  const auto pr = PageRankRef(tri, 30);
  EXPECT_NEAR(pr[0] + pr[1] + pr[2], 1.0, 1e-9);
  EXPECT_NEAR(pr[0], pr[1], 1e-9);  // symmetric graph, equal ranks
}

}  // namespace
}  // namespace pregelix
