#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>

#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/text_io.h"
#include "pregel/runtime.h"
#include "pregel/typed.h"

namespace pregelix {
namespace {

/// Exercises flow D6 (vertex addition/removal + resolve): in superstep 1
/// every even vertex deletes its odd successor (vid+1) and adds a "shadow"
/// vertex at vid+1000; everything halts by superstep 2.
class MutatingProgram : public TypedVertexProgram<int64_t, Empty, int64_t> {
 public:
  using Adapter = TypedProgramAdapter<int64_t, Empty, int64_t>;

  void Compute(VertexT& vertex, MessageIterator<int64_t>& messages) override {
    if (vertex.superstep() == 1 && vertex.id() < 1000) {
      if (vertex.id() % 2 == 0) {
        vertex.RemoveVertex(vertex.id() + 1);
        vertex.AddVertex(vertex.id() + 1000, vertex.id());
      }
    }
    vertex.VoteToHalt();
  }

  std::string FormatValue(int64_t, const int64_t& value) const override {
    return std::to_string(value);
  }
};

/// Conflicting mutations: many vertices add the SAME vid with different
/// values; a custom resolve keeps the max.
class ConflictProgram : public TypedVertexProgram<int64_t, Empty, int64_t> {
 public:
  using Adapter = TypedProgramAdapter<int64_t, Empty, int64_t>;

  void Compute(VertexT& vertex, MessageIterator<int64_t>& messages) override {
    if (vertex.superstep() == 1 && vertex.id() < 1000) {
      vertex.AddVertex(5000, vertex.id());  // everyone fights over vid 5000
    }
    vertex.VoteToHalt();
  }

  bool has_custom_resolve() const override { return true; }
  PregelProgram::ResolveAction ResolveTyped(
      int64_t vid, const std::vector<MutationRecord>& mutations,
      std::string* vertex_bytes) const override {
    int64_t best = std::numeric_limits<int64_t>::min();
    std::string best_bytes;
    for (const MutationRecord& m : mutations) {
      if (m.op != MutationRecord::Op::kAddVertex) continue;
      VertexRecordView view;
      if (!view.Parse(Slice(m.vertex_bytes)).ok()) continue;
      int64_t value = 0;
      DeserializeValue(view.value, &value);
      if (value > best) {
        best = value;
        best_bytes = m.vertex_bytes;
      }
    }
    if (best_bytes.empty()) return PregelProgram::ResolveAction::kNone;
    *vertex_bytes = best_bytes;
    return PregelProgram::ResolveAction::kUpsert;
  }

  std::string FormatValue(int64_t, const int64_t& value) const override {
    return std::to_string(value);
  }
};

class MutationTest : public ::testing::Test {
 protected:
  MutationTest() : dfs_(dir_.Sub("dfs")) {
    ClusterConfig config;
    config.num_workers = 3;
    config.worker_ram_bytes = 8u << 20;
    config.temp_root = dir_.Sub("cluster");
    cluster_ = std::make_unique<SimulatedCluster>(config);
    runtime_ = std::make_unique<PregelixRuntime>(cluster_.get(), &dfs_);

    // A 20-vertex cycle.
    InMemoryGraph graph;
    graph.adj.resize(20);
    for (int64_t v = 0; v < 20; ++v) graph.adj[v] = {(v + 1) % 20};
    EXPECT_TRUE(WriteGraph(dfs_, "input", graph, 2).ok());
  }

  std::map<int64_t, int64_t> ReadOutput(const std::string& dir) {
    std::map<int64_t, int64_t> out;
    std::vector<std::string> names;
    EXPECT_TRUE(dfs_.List(dir, &names).ok());
    for (const std::string& name : names) {
      std::string contents;
      EXPECT_TRUE(dfs_.Read(dir + "/" + name, &contents).ok());
      std::istringstream lines(contents);
      std::string line;
      while (std::getline(lines, line)) {
        if (line.empty()) continue;
        std::istringstream fields(line);
        int64_t vid, value;
        fields >> vid >> value;
        out[vid] = value;
      }
    }
    return out;
  }

  TempDir dir_{"mutation-test"};
  DistributedFileSystem dfs_;
  std::unique_ptr<SimulatedCluster> cluster_;
  std::unique_ptr<PregelixRuntime> runtime_;
};

TEST_F(MutationTest, AddAndRemoveVerticesWithDefaultResolve) {
  MutatingProgram program;
  MutatingProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "mutate";
  job.input_dir = "input";
  job.output_dir = "out";
  JobResult result;
  Status s = runtime_->Run(&adapter, job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();

  auto output = ReadOutput("out");
  // Odd originals deleted, shadows added: 10 even + 10 shadows.
  EXPECT_EQ(output.size(), 20u);
  for (int64_t v = 0; v < 20; v += 2) {
    EXPECT_TRUE(output.count(v)) << v;
    EXPECT_FALSE(output.count(v + 1)) << v + 1;
    ASSERT_TRUE(output.count(v + 1000)) << v + 1000;
    EXPECT_EQ(output[v + 1000], v);
  }
  // GS bookkeeping followed the mutations.
  EXPECT_EQ(result.final_gs.num_vertices, 20);
}

TEST_F(MutationTest, MutationsWorkWithLsmStorageAndLeftOuterJoin) {
  MutatingProgram program;
  MutatingProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "mutate-lsm";
  job.input_dir = "input";
  job.output_dir = "out-lsm";
  job.storage = VertexStorage::kLsmBTree;
  job.join = JoinStrategy::kLeftOuter;
  JobResult result;
  Status s = runtime_->Run(&adapter, job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();
  auto output = ReadOutput("out-lsm");
  EXPECT_EQ(output.size(), 20u);
  EXPECT_FALSE(output.count(1));
  EXPECT_TRUE(output.count(1000));
}

TEST_F(MutationTest, CustomResolvePicksWinner) {
  ConflictProgram program;
  ConflictProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "conflict";
  job.input_dir = "input";
  job.output_dir = "out-conflict";
  JobResult result;
  Status s = runtime_->Run(&adapter, job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();
  auto output = ReadOutput("out-conflict");
  ASSERT_TRUE(output.count(5000));
  // Max contributor is vertex 19.
  EXPECT_EQ(output[5000], 19);
  EXPECT_EQ(result.final_gs.num_vertices, 21);
}

}  // namespace
}  // namespace pregelix
