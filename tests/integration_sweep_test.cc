#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <tuple>

#include "algorithms/algorithms.h"
#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "graph/ref_algos.h"
#include "graph/text_io.h"
#include "pregel/runtime.h"

namespace pregelix {
namespace {

/// Property sweep over cluster shapes: (workers, partitions-per-worker,
/// frame size). Every shape must compute identical SSSP results — partition
/// count, worker mapping, and frame granularity are performance knobs, never
/// correctness knobs.
using ShapeParam = std::tuple<int, int, int>;  // workers, ppw, frame KB

class ClusterShapeTest : public ::testing::TestWithParam<ShapeParam> {
 protected:
  static void SetUpTestSuite() {
    dir_ = new TempDir("shape-sweep");
    dfs_ = new DistributedFileSystem(dir_->Sub("dfs"));
    GraphStats stats;
    ASSERT_TRUE(GenerateBtcLike(*dfs_, "input", 5, 700, 7.0, 55, &stats).ok());
    InMemoryGraph graph;
    ASSERT_TRUE(LoadGraph(*dfs_, "input", &graph).ok());
    expected_ = new std::vector<double>(SsspRef(graph, 0));
  }
  static void TearDownTestSuite() {
    delete expected_;
    delete dfs_;
    delete dir_;
    expected_ = nullptr;
    dfs_ = nullptr;
    dir_ = nullptr;
  }

  static TempDir* dir_;
  static DistributedFileSystem* dfs_;
  static std::vector<double>* expected_;
};

TempDir* ClusterShapeTest::dir_ = nullptr;
DistributedFileSystem* ClusterShapeTest::dfs_ = nullptr;
std::vector<double>* ClusterShapeTest::expected_ = nullptr;

TEST_P(ClusterShapeTest, SsspInvariantAcrossClusterShapes) {
  const auto [workers, ppw, frame_kb] = GetParam();
  ClusterConfig config;
  config.num_workers = workers;
  config.partitions_per_worker = ppw;
  config.worker_ram_bytes = 4u << 20;
  config.frame_size = static_cast<size_t>(frame_kb) * 1024;
  config.temp_root = dir_->Sub("c" + std::to_string(workers) + "-" +
                               std::to_string(ppw) + "-" +
                               std::to_string(frame_kb));
  SimulatedCluster cluster(config);
  PregelixRuntime runtime(&cluster, dfs_);

  SsspProgram program(0);
  SsspProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "shape";
  job.input_dir = "input";
  job.output_dir = "out-" + std::to_string(workers) + "-" +
                   std::to_string(ppw) + "-" + std::to_string(frame_kb);
  JobResult result;
  Status s = runtime.Run(&adapter, job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();

  std::vector<std::string> names;
  ASSERT_TRUE(dfs_->List(job.output_dir, &names).ok());
  int64_t seen = 0;
  for (const std::string& name : names) {
    std::string contents;
    ASSERT_TRUE(dfs_->Read(job.output_dir + "/" + name, &contents).ok());
    std::istringstream lines(contents);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      std::istringstream fields(line);
      int64_t vid;
      std::string value;
      fields >> vid >> value;
      if ((*expected_)[vid] < 0) {
        EXPECT_EQ(value, "inf");
      } else {
        EXPECT_NEAR(std::stod(value), (*expected_)[vid], 1e-9)
            << "vid " << vid;
      }
      ++seen;
    }
  }
  EXPECT_EQ(seen, static_cast<int64_t>(expected_->size()));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClusterShapeTest,
    ::testing::Values(ShapeParam{1, 1, 8},   // single worker
                      ShapeParam{2, 2, 8},   // multiple partitions per worker
                      ShapeParam{3, 1, 4},   // small frames
                      ShapeParam{2, 3, 2},   // tiny frames, 6 partitions
                      ShapeParam{5, 1, 32},  // wide cluster, big frames
                      ShapeParam{4, 2, 16}));

/// Concurrent jobs on one shared cluster must not interfere (Figure 13's
/// multi-user scenario, asserted for correctness rather than throughput).
TEST(ConcurrentJobsTest, ParallelJobsComputeIndependentCorrectResults) {
  TempDir dir("concurrent-jobs");
  DistributedFileSystem dfs(dir.Sub("dfs"));
  GraphStats stats;
  ASSERT_TRUE(GenerateBtcLike(dfs, "g1", 3, 400, 6.0, 71, &stats).ok());
  ASSERT_TRUE(GenerateWebmapLike(dfs, "g2", 3, 400, 6.0, 72, &stats).ok());
  InMemoryGraph graph1, graph2;
  ASSERT_TRUE(LoadGraph(dfs, "g1", &graph1).ok());
  ASSERT_TRUE(LoadGraph(dfs, "g2", &graph2).ok());
  const std::vector<double> sssp_ref = SsspRef(graph1, 0);
  const std::vector<double> pr_ref = PageRankRef(graph2, 5);
  const std::vector<int64_t> cc_ref = CcRef(graph1);

  ClusterConfig config;
  config.num_workers = 3;
  config.worker_ram_bytes = 4u << 20;
  config.temp_root = dir.Sub("cluster");
  SimulatedCluster cluster(config);

  std::atomic<int> failures{0};
  auto run = [&](auto fn) {
    return std::thread([&, fn]() {
      if (!fn()) failures.fetch_add(1);
    });
  };
  auto parse = [&dfs](const std::string& out_dir,
                      std::map<int64_t, std::string>* result) {
    std::vector<std::string> names;
    if (!dfs.List(out_dir, &names).ok()) return false;
    for (const std::string& name : names) {
      std::string contents;
      if (!dfs.Read(out_dir + "/" + name, &contents).ok()) return false;
      std::istringstream lines(contents);
      std::string line;
      while (std::getline(lines, line)) {
        if (line.empty()) continue;
        std::istringstream fields(line);
        int64_t vid;
        std::string value;
        fields >> vid >> value;
        (*result)[vid] = value;
      }
    }
    return true;
  };

  std::vector<std::thread> threads;
  threads.push_back(run([&]() {
    PregelixRuntime runtime(&cluster, &dfs);
    SsspProgram program(0);
    SsspProgram::Adapter adapter(&program);
    PregelixJobConfig job;
    job.name = "conc-sssp";
    job.input_dir = "g1";
    job.output_dir = "conc-sssp-out";
    job.join = JoinStrategy::kLeftOuter;
    JobResult result;
    if (!runtime.Run(&adapter, job, &result).ok()) return false;
    std::map<int64_t, std::string> out;
    if (!parse("conc-sssp-out", &out)) return false;
    for (auto& [vid, value] : out) {
      if (sssp_ref[vid] < 0) {
        if (value != "inf") return false;
      } else if (std::abs(std::stod(value) - sssp_ref[vid]) > 1e-9) {
        return false;
      }
    }
    return out.size() == sssp_ref.size();
  }));
  threads.push_back(run([&]() {
    PregelixRuntime runtime(&cluster, &dfs);
    PageRankProgram program(5);
    PageRankProgram::Adapter adapter(&program);
    PregelixJobConfig job;
    job.name = "conc-pr";
    job.input_dir = "g2";
    job.output_dir = "conc-pr-out";
    JobResult result;
    if (!runtime.Run(&adapter, job, &result).ok()) return false;
    std::map<int64_t, std::string> out;
    if (!parse("conc-pr-out", &out)) return false;
    for (auto& [vid, value] : out) {
      if (std::abs(std::stod(value) - pr_ref[vid]) > 1e-9) return false;
    }
    return out.size() == pr_ref.size();
  }));
  threads.push_back(run([&]() {
    PregelixRuntime runtime(&cluster, &dfs);
    ConnectedComponentsProgram program;
    ConnectedComponentsProgram::Adapter adapter(&program);
    PregelixJobConfig job;
    job.name = "conc-cc";
    job.input_dir = "g1";
    job.output_dir = "conc-cc-out";
    job.storage = VertexStorage::kLsmBTree;
    JobResult result;
    if (!runtime.Run(&adapter, job, &result).ok()) return false;
    std::map<int64_t, std::string> out;
    if (!parse("conc-cc-out", &out)) return false;
    for (auto& [vid, value] : out) {
      if (std::stoll(value) != cc_ref[vid]) return false;
    }
    return out.size() == cc_ref.size();
  }));
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

/// Generator property sweep: (vertices, degree) grid.
using GenParam = std::tuple<int, double>;

class GeneratorSweepTest : public ::testing::TestWithParam<GenParam> {};

TEST_P(GeneratorSweepTest, BtcLikePropertiesHold) {
  const auto [vertices, degree] = GetParam();
  TempDir dir("gen-sweep");
  DistributedFileSystem dfs(dir.Sub("dfs"));
  GraphStats stats;
  ASSERT_TRUE(
      GenerateBtcLike(dfs, "g", 2, vertices, degree, 99, &stats).ok());
  EXPECT_EQ(stats.num_vertices, vertices);
  EXPECT_NEAR(stats.avg_degree(), degree, degree * 0.15 + 0.6);
  InMemoryGraph graph;
  ASSERT_TRUE(LoadGraph(dfs, "g", &graph).ok());
  // Symmetric and connected (ring backbone).
  const std::vector<int64_t> cc = CcRef(graph);
  for (int64_t label : cc) EXPECT_EQ(label, 0);
}

TEST_P(GeneratorSweepTest, WebmapLikePropertiesHold) {
  const auto [vertices, degree] = GetParam();
  TempDir dir("gen-sweep-web");
  DistributedFileSystem dfs(dir.Sub("dfs"));
  GraphStats stats;
  ASSERT_TRUE(
      GenerateWebmapLike(dfs, "g", 2, vertices, degree, 99, &stats).ok());
  EXPECT_EQ(stats.num_vertices, vertices);
  EXPECT_NEAR(stats.avg_degree(), degree, degree * 0.2 + 0.5);
  InMemoryGraph graph;
  ASSERT_TRUE(LoadGraph(dfs, "g", &graph).ok());
  // All edge targets in range.
  for (int64_t v = 0; v < graph.num_vertices(); ++v) {
    for (int64_t d : graph.adj[v]) {
      ASSERT_GE(d, 0);
      ASSERT_LT(d, vertices);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, GeneratorSweepTest,
                         ::testing::Values(GenParam{100, 4.0},
                                           GenParam{1000, 8.94},
                                           GenParam{5000, 6.0},
                                           GenParam{500, 12.0}));

}  // namespace
}  // namespace pregelix
