#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "buffer/buffer_cache.h"
#include "common/metrics.h"
#include "common/temp_dir.h"

namespace pregelix {
namespace {

constexpr size_t kPage = 256;

class BufferCacheTest : public ::testing::Test {
 protected:
  TempDir dir_{"bufcache-test"};
  WorkerMetrics metrics_;
};

TEST_F(BufferCacheTest, AllocateWriteReadBack) {
  BufferCache cache(kPage, 8, &metrics_);
  int fid;
  ASSERT_TRUE(cache.OpenFile(dir_.path() + "/f", &fid).ok());
  PageHandle page;
  ASSERT_TRUE(cache.AllocatePage(fid, &page).ok());
  EXPECT_EQ(page.page_id(), 0u);
  memcpy(page.data(), "hello", 5);
  page.MarkDirty();
  page.Release();

  PageHandle again;
  ASSERT_TRUE(cache.Pin(fid, 0, &again).ok());
  EXPECT_EQ(memcmp(again.data(), "hello", 5), 0);
}

TEST_F(BufferCacheTest, EvictionWritesBackDirtyPages) {
  BufferCache cache(kPage, 4, &metrics_);
  int fid;
  ASSERT_TRUE(cache.OpenFile(dir_.path() + "/f", &fid).ok());
  // Create 16 pages through a 4-page cache; each carries its index.
  for (int i = 0; i < 16; ++i) {
    PageHandle page;
    ASSERT_TRUE(cache.AllocatePage(fid, &page).ok());
    memcpy(page.data(), &i, sizeof(i));
    page.MarkDirty();
  }
  EXPECT_GT(cache.eviction_count(), 0u);
  // All pages must come back with their contents.
  for (int i = 0; i < 16; ++i) {
    PageHandle page;
    ASSERT_TRUE(cache.Pin(fid, i, &page).ok());
    int stored;
    memcpy(&stored, page.data(), sizeof(stored));
    EXPECT_EQ(stored, i);
  }
}

TEST_F(BufferCacheTest, PinnedPagesAreNotEvictable) {
  BufferCache cache(kPage, 2, &metrics_);
  int fid;
  ASSERT_TRUE(cache.OpenFile(dir_.path() + "/f", &fid).ok());
  PageHandle a, b;
  ASSERT_TRUE(cache.AllocatePage(fid, &a).ok());
  ASSERT_TRUE(cache.AllocatePage(fid, &b).ok());
  PageHandle c;
  // Both slots pinned: a third allocation must fail, not evict.
  EXPECT_EQ(cache.AllocatePage(fid, &c).code(),
            StatusCode::kResourceExhausted);
  a.Release();
  ASSERT_TRUE(cache.AllocatePage(fid, &c).ok());
}

TEST_F(BufferCacheTest, HitAndMissCounters) {
  BufferCache cache(kPage, 4, &metrics_);
  int fid;
  ASSERT_TRUE(cache.OpenFile(dir_.path() + "/f", &fid).ok());
  {
    PageHandle page;
    ASSERT_TRUE(cache.AllocatePage(fid, &page).ok());
    page.MarkDirty();
  }
  const uint64_t misses_before = cache.miss_count();
  {
    PageHandle page;
    ASSERT_TRUE(cache.Pin(fid, 0, &page).ok());
  }
  EXPECT_EQ(cache.miss_count(), misses_before);
  EXPECT_GT(cache.hit_count(), 0u);
}

TEST_F(BufferCacheTest, PersistsAcrossReopen) {
  {
    BufferCache cache(kPage, 4, &metrics_);
    int fid;
    ASSERT_TRUE(cache.OpenFile(dir_.path() + "/p", &fid).ok());
    PageHandle page;
    ASSERT_TRUE(cache.AllocatePage(fid, &page).ok());
    memcpy(page.data(), "persist", 7);
    page.MarkDirty();
    page.Release();
    ASSERT_TRUE(cache.FlushFile(fid).ok());
  }
  BufferCache cache(kPage, 4, &metrics_);
  int fid;
  ASSERT_TRUE(cache.OpenFile(dir_.path() + "/p", &fid).ok());
  EXPECT_EQ(cache.NumPages(fid), 1u);
  PageHandle page;
  ASSERT_TRUE(cache.Pin(fid, 0, &page).ok());
  EXPECT_EQ(memcmp(page.data(), "persist", 7), 0);
}

TEST_F(BufferCacheTest, SeeksAreMeteredOnMiss) {
  {
    BufferCache cache(kPage, 2, &metrics_);
    int fid;
    ASSERT_TRUE(cache.OpenFile(dir_.path() + "/s", &fid).ok());
    for (int i = 0; i < 8; ++i) {
      PageHandle page;
      ASSERT_TRUE(cache.AllocatePage(fid, &page).ok());
      page.MarkDirty();
    }
    ASSERT_TRUE(cache.FlushFile(fid).ok());
  }
  metrics_.Reset();
  BufferCache cache(kPage, 2, &metrics_);
  int fid;
  ASSERT_TRUE(cache.OpenFile(dir_.path() + "/s", &fid).ok());
  // Sequential misses pay one seek (readahead); the bytes are all charged.
  for (int i = 0; i < 8; ++i) {
    PageHandle page;
    ASSERT_TRUE(cache.Pin(fid, i, &page).ok());
  }
  EXPECT_EQ(metrics_.Snapshot().disk_seeks, 1u);
  EXPECT_EQ(metrics_.Snapshot().disk_read_bytes, 8 * kPage);
  // Random misses each pay a seek.
  for (int i = 6; i >= 0; i -= 2) {
    PageHandle page;
    ASSERT_TRUE(cache.Pin(fid, i, &page).ok());
  }
  EXPECT_GE(metrics_.Snapshot().disk_seeks, 3u);
}

TEST_F(BufferCacheTest, DeleteFileRemovesBacking) {
  BufferCache cache(kPage, 4, &metrics_);
  int fid;
  const std::string path = dir_.path() + "/d";
  ASSERT_TRUE(cache.OpenFile(path, &fid).ok());
  {
    PageHandle page;
    ASSERT_TRUE(cache.AllocatePage(fid, &page).ok());
    page.MarkDirty();
  }
  ASSERT_TRUE(cache.DeleteFile(fid).ok());
  EXPECT_FALSE(FileExists(path));
}

TEST_F(BufferCacheTest, TwoFilesDoNotAlias) {
  BufferCache cache(kPage, 8, &metrics_);
  int f1, f2;
  ASSERT_TRUE(cache.OpenFile(dir_.path() + "/f1", &f1).ok());
  ASSERT_TRUE(cache.OpenFile(dir_.path() + "/f2", &f2).ok());
  {
    PageHandle a, b;
    ASSERT_TRUE(cache.AllocatePage(f1, &a).ok());
    ASSERT_TRUE(cache.AllocatePage(f2, &b).ok());
    memcpy(a.data(), "AAAA", 4);
    memcpy(b.data(), "BBBB", 4);
    a.MarkDirty();
    b.MarkDirty();
  }
  PageHandle a, b;
  ASSERT_TRUE(cache.Pin(f1, 0, &a).ok());
  ASSERT_TRUE(cache.Pin(f2, 0, &b).ok());
  EXPECT_EQ(memcmp(a.data(), "AAAA", 4), 0);
  EXPECT_EQ(memcmp(b.data(), "BBBB", 4), 0);
}

}  // namespace
}  // namespace pregelix
