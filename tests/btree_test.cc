#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "buffer/buffer_cache.h"
#include "common/random.h"
#include "common/serde.h"
#include "common/temp_dir.h"
#include "storage/btree.h"

namespace pregelix {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : cache_(4096, 64, &metrics_) {}

  std::unique_ptr<BTree> OpenTree(const std::string& name) {
    std::unique_ptr<BTree> tree;
    Status s = BTree::Open(&cache_, dir_.path() + "/" + name, &tree);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return tree;
  }

  TempDir dir_{"btree-test"};
  WorkerMetrics metrics_;
  BufferCache cache_;
};

TEST_F(BTreeTest, EmptyTreeBehaviour) {
  auto tree = OpenTree("t");
  std::string value;
  EXPECT_TRUE(tree->Get("missing", &value).IsNotFound());
  EXPECT_EQ(tree->num_entries(), 0u);
  auto it = tree->NewIterator();
  ASSERT_TRUE(it->SeekToFirst().ok());
  EXPECT_FALSE(it->Valid());
}

TEST_F(BTreeTest, InsertAndGet) {
  auto tree = OpenTree("t");
  ASSERT_TRUE(tree->Upsert("b", "2").ok());
  ASSERT_TRUE(tree->Upsert("a", "1").ok());
  ASSERT_TRUE(tree->Upsert("c", "3").ok());
  std::string value;
  ASSERT_TRUE(tree->Get("a", &value).ok());
  EXPECT_EQ(value, "1");
  ASSERT_TRUE(tree->Get("b", &value).ok());
  EXPECT_EQ(value, "2");
  ASSERT_TRUE(tree->Get("c", &value).ok());
  EXPECT_EQ(value, "3");
  EXPECT_TRUE(tree->Get("d", &value).IsNotFound());
  EXPECT_EQ(tree->num_entries(), 3u);
}

TEST_F(BTreeTest, UpsertReplaces) {
  auto tree = OpenTree("t");
  ASSERT_TRUE(tree->Upsert("k", "old").ok());
  ASSERT_TRUE(tree->Upsert("k", "new").ok());
  std::string value;
  ASSERT_TRUE(tree->Get("k", &value).ok());
  EXPECT_EQ(value, "new");
  EXPECT_EQ(tree->num_entries(), 1u);
}

TEST_F(BTreeTest, UpsertSameSizeInPlace) {
  auto tree = OpenTree("t");
  ASSERT_TRUE(tree->Upsert("k", "aaaa").ok());
  ASSERT_TRUE(tree->Upsert("k", "bbbb").ok());
  std::string value;
  ASSERT_TRUE(tree->Get("k", &value).ok());
  EXPECT_EQ(value, "bbbb");
  EXPECT_EQ(tree->num_entries(), 1u);
}

TEST_F(BTreeTest, DeleteIsIdempotent) {
  auto tree = OpenTree("t");
  ASSERT_TRUE(tree->Upsert("k", "v").ok());
  ASSERT_TRUE(tree->Delete("k").ok());
  std::string value;
  EXPECT_TRUE(tree->Get("k", &value).IsNotFound());
  EXPECT_EQ(tree->num_entries(), 0u);
  ASSERT_TRUE(tree->Delete("k").ok());
  ASSERT_TRUE(tree->Delete("never-there").ok());
}

TEST_F(BTreeTest, ManyInsertsSplitAndStaySorted) {
  auto tree = OpenTree("t");
  // Enough 8-byte-key entries to force multiple levels with 4 KB pages.
  const int n = 20000;
  Random rnd(11);
  std::vector<int64_t> vids(n);
  for (int i = 0; i < n; ++i) vids[i] = i;
  // Shuffle insertion order.
  for (int i = n - 1; i > 0; --i) {
    std::swap(vids[i], vids[rnd.Uniform(i + 1)]);
  }
  for (int64_t vid : vids) {
    std::string value = "value-" + std::to_string(vid);
    ASSERT_TRUE(tree->Upsert(OrderedKeyI64(vid), value).ok());
  }
  EXPECT_EQ(tree->num_entries(), static_cast<uint64_t>(n));
  EXPECT_GT(tree->height(), 1);

  // Full scan must return all keys in order.
  auto it = tree->NewIterator();
  ASSERT_TRUE(it->SeekToFirst().ok());
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(it->Valid()) << "stopped early at " << i;
    EXPECT_EQ(DecodeOrderedI64(it->key().data()), i);
    EXPECT_EQ(it->value().ToString(), "value-" + std::to_string(i));
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_FALSE(it->Valid());
}

TEST_F(BTreeTest, RandomizedAgainstStdMap) {
  auto tree = OpenTree("t");
  std::map<std::string, std::string> model;
  Random rnd(99);
  for (int op = 0; op < 30000; ++op) {
    const int64_t vid = static_cast<int64_t>(rnd.Uniform(2000));
    const std::string key = OrderedKeyI64(vid);
    const int action = static_cast<int>(rnd.Uniform(10));
    if (action < 6) {
      std::string value(rnd.Uniform(40) + 1, 'a' + vid % 26);
      ASSERT_TRUE(tree->Upsert(key, value).ok());
      model[key] = value;
    } else if (action < 8) {
      ASSERT_TRUE(tree->Delete(key).ok());
      model.erase(key);
    } else {
      std::string value;
      Status s = tree->Get(key, &value);
      auto it = model.find(key);
      if (it == model.end()) {
        EXPECT_TRUE(s.IsNotFound());
      } else {
        ASSERT_TRUE(s.ok()) << s.ToString();
        EXPECT_EQ(value, it->second);
      }
    }
  }
  EXPECT_EQ(tree->num_entries(), model.size());
  Status cs = tree->CheckConsistency();
  EXPECT_TRUE(cs.ok()) << cs.ToString();
  // Final scan equals model scan.
  auto it = tree->NewIterator();
  ASSERT_TRUE(it->SeekToFirst().ok());
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(it->key().ToString(), key);
    EXPECT_EQ(it->value().ToString(), value);
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_FALSE(it->Valid());
}

TEST_F(BTreeTest, SeekPositionsAtLowerBound) {
  auto tree = OpenTree("t");
  for (int64_t vid = 0; vid < 100; vid += 10) {
    ASSERT_TRUE(tree->Upsert(OrderedKeyI64(vid), "v").ok());
  }
  auto it = tree->NewIterator();
  ASSERT_TRUE(it->Seek(OrderedKeyI64(35)).ok());
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(DecodeOrderedI64(it->key().data()), 40);
  ASSERT_TRUE(it->Seek(OrderedKeyI64(40)).ok());
  EXPECT_EQ(DecodeOrderedI64(it->key().data()), 40);
  ASSERT_TRUE(it->Seek(OrderedKeyI64(91)).ok());
  EXPECT_FALSE(it->Valid());
  ASSERT_TRUE(it->Seek(OrderedKeyI64(-5)).ok());
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(DecodeOrderedI64(it->key().data()), 0);
}

TEST_F(BTreeTest, OverflowValuesRoundTrip) {
  auto tree = OpenTree("t");
  // Values far larger than a page exercise the overflow chain.
  std::string big1(3 * 4096 + 123, 'x');
  std::string big2(10 * 4096, 'y');
  ASSERT_TRUE(tree->Upsert("big1", big1).ok());
  ASSERT_TRUE(tree->Upsert("big2", big2).ok());
  ASSERT_TRUE(tree->Upsert("small", "s").ok());
  std::string value;
  ASSERT_TRUE(tree->Get("big1", &value).ok());
  EXPECT_EQ(value, big1);
  ASSERT_TRUE(tree->Get("big2", &value).ok());
  EXPECT_EQ(value, big2);
  // Iterator also reads overflowed values.
  auto it = tree->NewIterator();
  ASSERT_TRUE(it->SeekToFirst().ok());
  ASSERT_TRUE(it->Valid());
  EXPECT_EQ(it->value().size(), big1.size());
}

TEST_F(BTreeTest, OverflowPagesAreRecycled) {
  auto tree = OpenTree("t");
  std::string big(4 * 4096, 'x');
  ASSERT_TRUE(tree->Upsert("k", big).ok());
  const uint32_t pages_after_first = tree->num_pages();
  // Repeated same-size overwrites must reuse freed overflow pages instead of
  // growing the file.
  for (int i = 0; i < 10; ++i) {
    big[0] = static_cast<char>('a' + i);
    ASSERT_TRUE(tree->Upsert("k", big).ok());
  }
  EXPECT_LE(tree->num_pages(), pages_after_first + 5);
  std::string value;
  ASSERT_TRUE(tree->Get("k", &value).ok());
  EXPECT_EQ(value, big);
}

TEST_F(BTreeTest, BulkLoadThenRead) {
  auto tree = OpenTree("t");
  auto loader = tree->NewBulkLoader();
  const int n = 50000;
  for (int64_t vid = 0; vid < n; ++vid) {
    ASSERT_TRUE(loader->Add(OrderedKeyI64(vid), "v" + std::to_string(vid)).ok());
  }
  ASSERT_TRUE(loader->Finish().ok());
  EXPECT_EQ(tree->num_entries(), static_cast<uint64_t>(n));

  std::string value;
  ASSERT_TRUE(tree->Get(OrderedKeyI64(0), &value).ok());
  EXPECT_EQ(value, "v0");
  ASSERT_TRUE(tree->Get(OrderedKeyI64(n / 2), &value).ok());
  EXPECT_EQ(value, "v" + std::to_string(n / 2));
  ASSERT_TRUE(tree->Get(OrderedKeyI64(n - 1), &value).ok());
  EXPECT_EQ(value, "v" + std::to_string(n - 1));
  EXPECT_TRUE(tree->Get(OrderedKeyI64(n), &value).IsNotFound());

  // Updates after a bulk load must work (splits into loaded pages).
  for (int64_t vid = 0; vid < 1000; ++vid) {
    ASSERT_TRUE(
        tree->Upsert(OrderedKeyI64(vid), std::string(60, 'z')).ok());
  }
  ASSERT_TRUE(tree->Get(OrderedKeyI64(500), &value).ok());
  EXPECT_EQ(value, std::string(60, 'z'));
  EXPECT_EQ(tree->num_entries(), static_cast<uint64_t>(n));
}

TEST_F(BTreeTest, BulkLoadEmptyInput) {
  auto tree = OpenTree("t");
  auto loader = tree->NewBulkLoader();
  ASSERT_TRUE(loader->Finish().ok());
  EXPECT_EQ(tree->num_entries(), 0u);
  auto it = tree->NewIterator();
  ASSERT_TRUE(it->SeekToFirst().ok());
  EXPECT_FALSE(it->Valid());
}

TEST_F(BTreeTest, PersistsAcrossReopen) {
  const std::string path = dir_.path() + "/persist";
  {
    std::unique_ptr<BTree> tree;
    ASSERT_TRUE(BTree::Open(&cache_, path, &tree).ok());
    for (int64_t vid = 0; vid < 5000; ++vid) {
      ASSERT_TRUE(tree->Upsert(OrderedKeyI64(vid), "p" + std::to_string(vid))
                      .ok());
    }
    ASSERT_TRUE(tree->Flush().ok());
  }
  std::unique_ptr<BTree> tree;
  ASSERT_TRUE(BTree::Open(&cache_, path, &tree).ok());
  EXPECT_EQ(tree->num_entries(), 5000u);
  std::string value;
  ASSERT_TRUE(tree->Get(OrderedKeyI64(4321), &value).ok());
  EXPECT_EQ(value, "p4321");
}

TEST_F(BTreeTest, WorksWithTinyBufferCache) {
  // 24 pages of 4 KB = 96 KB of memory for a multi-MB tree: everything
  // must still be correct, just slower (this is the out-of-core path).
  WorkerMetrics metrics;
  BufferCache small_cache(4096, 24, &metrics);
  std::unique_ptr<BTree> tree;
  ASSERT_TRUE(BTree::Open(&small_cache, dir_.path() + "/small", &tree).ok());
  const int n = 20000;
  for (int64_t vid = 0; vid < n; ++vid) {
    ASSERT_TRUE(
        tree->Upsert(OrderedKeyI64(vid), std::string(100, 'a' + vid % 26))
            .ok());
  }
  EXPECT_GT(small_cache.eviction_count(), 0u);
  std::string value;
  for (int64_t vid = 0; vid < n; vid += 997) {
    ASSERT_TRUE(tree->Get(OrderedKeyI64(vid), &value).ok());
    EXPECT_EQ(value, std::string(100, 'a' + vid % 26));
  }
  EXPECT_GT(metrics.Snapshot().disk_read_bytes, 0u);
}

struct BTreeSweepParam {
  int num_keys;
  int value_size;
};

class BTreeSweepTest : public ::testing::TestWithParam<BTreeSweepParam> {};

/// Property sweep: for a grid of (cardinality, record size), a full scan
/// after random-order inserts yields exactly the sorted key sequence.
TEST_P(BTreeSweepTest, ScanEqualsSortedInsertSet) {
  const auto [num_keys, value_size] = GetParam();
  TempDir dir("btree-sweep");
  WorkerMetrics metrics;
  BufferCache cache(4096, 64, &metrics);
  std::unique_ptr<BTree> tree;
  ASSERT_TRUE(BTree::Open(&cache, dir.path() + "/t", &tree).ok());
  Random rnd(static_cast<uint64_t>(num_keys * 31 + value_size));
  std::vector<int64_t> vids(num_keys);
  for (int i = 0; i < num_keys; ++i) vids[i] = i * 3;  // gaps
  for (int i = num_keys - 1; i > 0; --i) {
    std::swap(vids[i], vids[rnd.Uniform(i + 1)]);
  }
  for (int64_t vid : vids) {
    ASSERT_TRUE(
        tree->Upsert(OrderedKeyI64(vid), std::string(value_size, 'v')).ok());
  }
  Status cs = tree->CheckConsistency();
  ASSERT_TRUE(cs.ok()) << cs.ToString();
  auto it = tree->NewIterator();
  ASSERT_TRUE(it->SeekToFirst().ok());
  for (int i = 0; i < num_keys; ++i) {
    ASSERT_TRUE(it->Valid());
    EXPECT_EQ(DecodeOrderedI64(it->key().data()), i * 3);
    EXPECT_EQ(it->value().size(), static_cast<size_t>(value_size));
    ASSERT_TRUE(it->Next().ok());
  }
  EXPECT_FALSE(it->Valid());
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, BTreeSweepTest,
    ::testing::Values(BTreeSweepParam{10, 8}, BTreeSweepParam{100, 100},
                      BTreeSweepParam{1000, 500}, BTreeSweepParam{5000, 40},
                      BTreeSweepParam{300, 2000}));

}  // namespace
}  // namespace pregelix
