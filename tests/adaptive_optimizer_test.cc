// Adaptive plan optimizer suite (DESIGN.md "Adaptive plan optimization").
//
// Unit half: the decision functions in isolation — the legacy kAdaptive
// heuristic (including the message-volume blind spot it used to have), the
// PlanOptimizer's threshold edges, confirmation streaks, cooldowns, and
// reactive (stall/spill) switches, all driven by hand-built
// OptimizerFeedback records; plus admission-time storage resolution and the
// ResolvePlanDecision fallback paths.
//
// End-to-end half: a connected-components run under all-kAuto knobs on a
// "lollipop" graph (a star head that converges fast, then a long path tail
// that keeps the frontier at 2-3 vertices for dozens of supersteps). The
// sparse tail makes the full-outer -> left-outer join flip deterministic,
// and the test reads it back from all three observable channels: the
// JobResult decision trail, the `plan.switch` event journal, and the
// `pregelix.optimizer.*` metrics.

#include "pregel/plan_optimizer.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/algorithms.h"
#include "common/event_journal.h"
#include "common/metrics_registry.h"
#include "common/temp_dir.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "graph/ref_algos.h"
#include "graph/text_io.h"
#include "pregel/runtime.h"
#include "pregel/state.h"

namespace pregelix {
namespace {

// ---------------------------------------------------------------------------
// Legacy kAdaptive heuristic

TEST(ApproxVertexScanBytesTest, TracksGraphShape) {
  // The constants are a contract: both the legacy heuristic and the
  // optimizer's message-dominance guard compare message volume against
  // exactly this approximation.
  EXPECT_EQ(ApproxVertexScanBytes(0, 0), 0);
  EXPECT_EQ(ApproxVertexScanBytes(1000, 5000), 1000 * 16 + 5000 * 8);
  EXPECT_LT(ApproxVertexScanBytes(100, 100), ApproxVertexScanBytes(100, 200));
}

TEST(LegacyAdaptiveJoinTest, AlwaysScansInEarlySupersteps) {
  // Superstep 1: everything is live, nothing is known — scan.
  EXPECT_EQ(LegacyAdaptiveJoin(0, 1, 1, 0, 1000, 5000),
            JoinStrategy::kFullOuter);
  EXPECT_EQ(LegacyAdaptiveJoin(1, 1, 1, 0, 1000, 5000),
            JoinStrategy::kFullOuter);
}

TEST(LegacyAdaptiveJoinTest, FrontierFifthOfGraphIsTheScanBoundary) {
  // frontier * 5 >= |V| keeps the scan; one vertex under flips to probe.
  EXPECT_EQ(LegacyAdaptiveJoin(5, 100, 100, 0, 1000, 5000),
            JoinStrategy::kFullOuter);
  EXPECT_EQ(LegacyAdaptiveJoin(5, 100, 99, 0, 1000, 5000),
            JoinStrategy::kLeftOuter);
}

TEST(LegacyAdaptiveJoinTest, MessageVolumeKeepsTheScanOnSparseFrontiers) {
  // The old heuristic's blind spot: a sparse frontier with heavy fanout
  // (few destinations, large combined payloads) is message-bound — the
  // probe join saves the sequential scan but pays a random descent per key
  // while still moving every message byte. message_bytes*2 >= approx scan
  // bytes must stay with the merge scan.
  const int64_t scan = ApproxVertexScanBytes(1000, 5000);  // 56000
  EXPECT_EQ(LegacyAdaptiveJoin(5, 10, 10, scan / 2, 1000, 5000),
            JoinStrategy::kFullOuter)
      << "message-bound superstep picked the probe join (the regression "
         "this guard exists for)";
  // Just under the threshold: the probe join is genuinely cheaper.
  EXPECT_EQ(LegacyAdaptiveJoin(5, 10, 10, scan / 2 - 1, 1000, 5000),
            JoinStrategy::kLeftOuter);
}

// ---------------------------------------------------------------------------
// PlanOptimizer decision logic (fake feedback feed)

/// Baseline feedback: 1000 vertices, 5000 edges, negligible message volume.
/// Scan approximation is 56000 bytes, so the default message-dominance
/// threshold sits at 28000.
OptimizerFeedback Feedback(int64_t superstep, int64_t live, int64_t messages) {
  OptimizerFeedback fb;
  fb.superstep = superstep;
  fb.num_vertices = 1000;
  fb.num_edges = 5000;
  fb.live_vertices = live;
  fb.messages = messages;
  fb.message_bytes = 64;
  return fb;
}

TEST(PlanOptimizerTest, DefaultsBeforeAnyFeedback) {
  PlanOptimizer opt;
  const PlanDecision d = opt.Decide(1);
  EXPECT_EQ(d.join, JoinStrategy::kFullOuter);
  // Hash pre-aggregation is the optimistic start (within budget it is
  // never worse than sort; a spill demotes it reactively).
  EXPECT_EQ(d.groupby, GroupByStrategy::kHashSort);
  EXPECT_EQ(d.connector, GroupByConnector::kUnmerged);
  EXPECT_EQ(opt.last_reason(), "initial");
  EXPECT_FALSE(opt.last_reactive());
  EXPECT_EQ(opt.switch_count(), 0);
}

TEST(PlanOptimizerTest, JoinSwitchRequiresConfirmationStreak) {
  PlanOptimizer opt;
  opt.Observe(Feedback(1, 50, 50));  // ratio 0.1 < 0.20
  EXPECT_EQ(opt.Decide(2).join, JoinStrategy::kFullOuter) << "streak of 1";
  opt.Observe(Feedback(2, 50, 50));
  EXPECT_EQ(opt.Decide(3).join, JoinStrategy::kLeftOuter) << "streak of 2";
  EXPECT_EQ(opt.switch_count(), 1);
  EXPECT_FALSE(opt.last_reactive());
  EXPECT_EQ(opt.last_reason().rfind("frontier", 0), 0u) << opt.last_reason();
}

TEST(PlanOptimizerTest, SparseBoundaryIsExclusive) {
  PlanOptimizer opt;
  // ratio == sparse_frontier_ratio exactly (200/1000 = 0.20): not sparse.
  for (int64_t ss = 1; ss <= 6; ++ss) {
    opt.Observe(Feedback(ss, 100, 100));
    EXPECT_EQ(opt.Decide(ss + 1).join, JoinStrategy::kFullOuter)
        << "superstep " << ss + 1;
  }
  EXPECT_EQ(opt.switch_count(), 0);
}

TEST(PlanOptimizerTest, HysteresisBandHoldsTheProbeJoin) {
  PlanOptimizer opt;
  opt.Observe(Feedback(1, 50, 50));
  opt.Decide(2);
  opt.Observe(Feedback(2, 50, 50));
  ASSERT_EQ(opt.Decide(3).join, JoinStrategy::kLeftOuter);

  // Ratio 0.30 sits inside the [0.20, 0.35] band: no backswitch, ever.
  for (int64_t ss = 3; ss <= 8; ++ss) {
    opt.Observe(Feedback(ss, 200, 100));
    EXPECT_EQ(opt.Decide(ss + 1).join, JoinStrategy::kLeftOuter)
        << "band ratio flapped at superstep " << ss + 1;
  }
  EXPECT_EQ(opt.switch_count(), 1);

  // Ratio 0.50 is past the dense edge: back to the scan after the streak.
  opt.Observe(Feedback(9, 400, 100));
  EXPECT_EQ(opt.Decide(10).join, JoinStrategy::kLeftOuter);
  opt.Observe(Feedback(10, 400, 100));
  EXPECT_EQ(opt.Decide(11).join, JoinStrategy::kFullOuter);
  EXPECT_EQ(opt.switch_count(), 2);
}

TEST(PlanOptimizerTest, MessageVolumeBlocksTheProbeJoin) {
  PlanOptimizer opt;
  for (int64_t ss = 1; ss <= 6; ++ss) {
    OptimizerFeedback fb = Feedback(ss, 25, 25);  // ratio 0.05: very sparse
    fb.message_bytes = 30000;                     // >= 0.5 * 56000: dominant
    opt.Observe(fb);
    EXPECT_EQ(opt.Decide(ss + 1).join, JoinStrategy::kFullOuter)
        << "message-bound superstep " << ss + 1 << " picked the probe join";
  }
  EXPECT_EQ(opt.switch_count(), 0);
}

TEST(PlanOptimizerTest, StallSwitchesReactivelyButRespectsCooldown) {
  PlanOptimizer opt;
  // Ratio 0.30 would not proactively switch (inside the band), but a stall
  // relaxes the edge and skips the confirmation streak.
  OptimizerFeedback fb = Feedback(1, 200, 100);
  fb.stalled = true;
  opt.Observe(fb);
  EXPECT_EQ(opt.Decide(2).join, JoinStrategy::kLeftOuter);
  EXPECT_TRUE(opt.last_reactive());
  EXPECT_EQ(opt.last_reason(), "stall");

  // The new plan stalls too at a dense ratio: wants to switch back
  // reactively, but the cooldown pins the knob until superstep 5.
  for (int64_t ss = 2; ss <= 3; ++ss) {
    OptimizerFeedback dense = Feedback(ss, 400, 100);
    dense.stalled = true;
    opt.Observe(dense);
    EXPECT_EQ(opt.Decide(ss + 1).join, JoinStrategy::kLeftOuter)
        << "cooldown violated at superstep " << ss + 1;
  }
  OptimizerFeedback dense = Feedback(4, 400, 100);
  dense.stalled = true;
  opt.Observe(dense);
  EXPECT_EQ(opt.Decide(5).join, JoinStrategy::kFullOuter);
  EXPECT_TRUE(opt.last_reactive());
  EXPECT_EQ(opt.switch_count(), 2);
}

TEST(PlanOptimizerTest, AlternatingSignalNeverConfirms) {
  PlanOptimizer opt;
  // Adversarial feed: the frontier alternates sparse/dense every superstep.
  // The confirmation streak resets on every flip, so the plan never moves.
  for (int64_t ss = 1; ss <= 12; ++ss) {
    opt.Observe(ss % 2 == 1 ? Feedback(ss, 25, 25)     // ratio 0.05
                            : Feedback(ss, 900, 50));  // ratio 0.95
    EXPECT_EQ(opt.Decide(ss + 1).join, JoinStrategy::kFullOuter)
        << "oscillating signal switched the join at superstep " << ss + 1;
  }
  EXPECT_EQ(opt.switch_count(), 0);
}

TEST(PlanOptimizerTest, GroupBySpillDemotesHashAndReductionRepromotes) {
  PlanOptimizerOptions opts;
  opts.groupby_memory_bytes = 1u << 20;
  PlanOptimizer opt(opts);

  // Spill bytes past the budget: reactive demotion from the optimistic
  // hash start to sort (which degrades gracefully to runs), in a single
  // superstep — no confirmation streak needed.
  OptimizerFeedback spilled = Feedback(1, 500, 100);
  spilled.spill_count = 3;
  spilled.spill_bytes = 3u << 20;  // 3x the budget
  opt.Observe(spilled);
  EXPECT_EQ(opt.Decide(2).groupby, GroupByStrategy::kSort);
  EXPECT_TRUE(opt.last_reactive());
  EXPECT_EQ(opt.last_reason(), "spill");

  // Re-promotion must be earned: the combiner folds 10:1 with nothing
  // spilling, but the switch waits for the cooldown (pinned through
  // superstep 4) plus the two-superstep confirmation streak.
  OptimizerFeedback fb = Feedback(2, 500, 100);
  fb.combine_tuples_in = 1000;
  fb.combine_tuples_out = 100;
  for (int64_t ss = 2; ss <= 5; ++ss) {
    fb.superstep = ss;
    opt.Observe(fb);
    EXPECT_EQ(opt.Decide(ss + 1).groupby,
              ss < 5 ? GroupByStrategy::kSort : GroupByStrategy::kHashSort)
        << "superstep " << ss + 1;
  }
  EXPECT_FALSE(opt.last_reactive());
}

TEST(PlanOptimizerTest, GroupByStaysSortWithoutReductionEvidence) {
  PlanOptimizerOptions opts;
  opts.groupby_memory_bytes = 1u << 20;
  PlanOptimizer opt(opts);
  OptimizerFeedback spilled = Feedback(1, 500, 100);
  spilled.spill_bytes = 3u << 20;
  opt.Observe(spilled);
  ASSERT_EQ(opt.Decide(2).groupby, GroupByStrategy::kSort);

  // Clean supersteps but a combiner that barely folds (1.5:1, below the
  // 2.0 re-promotion threshold): sort holds indefinitely.
  OptimizerFeedback weak = Feedback(2, 500, 100);
  weak.combine_tuples_in = 300;
  weak.combine_tuples_out = 200;
  for (int64_t ss = 2; ss <= 10; ++ss) {
    weak.superstep = ss;
    opt.Observe(weak);
    EXPECT_EQ(opt.Decide(ss + 1).groupby, GroupByStrategy::kSort)
        << "superstep " << ss + 1;
  }
}

TEST(PlanOptimizerTest, ConnectorBackswitchNeedsTheLoadToHalve) {
  PlanOptimizer opt;
  // Heavy combine-op skew prefers the merged (sender-materializing)
  // connector; no spill and no stall, so this is a proactive streak switch.
  OptimizerFeedback skewed = Feedback(1, 500, 100);
  skewed.groupby_skew = 5.0;
  skewed.message_bytes = 1000;
  opt.Observe(skewed);
  EXPECT_EQ(opt.Decide(2).connector, GroupByConnector::kUnmerged);
  skewed.superstep = 2;
  opt.Observe(skewed);
  EXPECT_EQ(opt.Decide(3).connector, GroupByConnector::kMerged);
  EXPECT_FALSE(opt.last_reactive());

  // Clean again, but message volume has only dropped to 600 of the 1000 at
  // switch time: the merged connector hides the signal that caused the
  // switch, so the backswitch demands the load halve. Stays merged.
  for (int64_t ss = 3; ss <= 8; ++ss) {
    OptimizerFeedback clean = Feedback(ss, 500, 100);
    clean.message_bytes = 600;
    opt.Observe(clean);
    EXPECT_EQ(opt.Decide(ss + 1).connector, GroupByConnector::kMerged)
        << "backswitched without the load halving at superstep " << ss + 1;
  }

  // Load at 400 (< half of 1000): backswitch after the streak.
  OptimizerFeedback light = Feedback(9, 500, 100);
  light.message_bytes = 400;
  opt.Observe(light);
  EXPECT_EQ(opt.Decide(10).connector, GroupByConnector::kMerged);
  light.superstep = 10;
  opt.Observe(light);
  EXPECT_EQ(opt.Decide(11).connector, GroupByConnector::kUnmerged);
  EXPECT_EQ(opt.last_reason(), "load-drop");
}

TEST(PlanOptimizerTest, DecideIsMemoizedPerSuperstep) {
  PlanOptimizer opt;
  opt.Observe(Feedback(1, 50, 50));  // sparse: wants the probe join
  // The driver resolves the plan twice per superstep (publish path + job
  // build); repeated Decide calls must not advance the streak.
  EXPECT_EQ(opt.Decide(2).join, JoinStrategy::kFullOuter);
  EXPECT_EQ(opt.Decide(2).join, JoinStrategy::kFullOuter);
  EXPECT_EQ(opt.Decide(2).join, JoinStrategy::kFullOuter);
  opt.Observe(Feedback(2, 50, 50));
  EXPECT_EQ(opt.Decide(3).join, JoinStrategy::kLeftOuter)
      << "streak should reach the confirm threshold exactly at the second "
         "superstep";
}

TEST(PlanOptimizerTest, OverrideHookForcesAdversarialPlans) {
  PlanOptimizer opt;
  SetPlanDecisionOverrideForTesting([](int64_t superstep, PlanDecision* d) {
    d->join = superstep % 2 == 0 ? JoinStrategy::kLeftOuter
                                 : JoinStrategy::kFullOuter;
    d->connector = GroupByConnector::kMerged;
    return true;
  });
  EXPECT_EQ(opt.Decide(2).join, JoinStrategy::kLeftOuter);
  EXPECT_EQ(opt.Decide(2).connector, GroupByConnector::kMerged);
  EXPECT_EQ(opt.last_reason(), "override");
  EXPECT_EQ(opt.Decide(3).join, JoinStrategy::kFullOuter);
  SetPlanDecisionOverrideForTesting(nullptr);
  // Cleared: the optimizer's own (carried) plan is back in charge.
  EXPECT_EQ(opt.Decide(4).join, JoinStrategy::kFullOuter);
  EXPECT_NE(opt.last_reason(), "override");
}

// ---------------------------------------------------------------------------
// Resolution helpers (storage admission, ResolvePlanDecision fallbacks)

/// Minimal program whose only interesting property is MutatesGraph().
class FakeProgram : public PregelProgram {
 public:
  explicit FakeProgram(bool mutates) : mutates_(mutates) {}
  Status InitialVertex(int64_t, const std::vector<int64_t>&,
                       std::string*) override {
    return Status::OK();
  }
  Status Compute(const ComputeInput&, ComputeOutput*) override {
    return Status::OK();
  }
  GroupCombiner MsgCombiner() const override { return ListMsgCombiner(); }
  Status FormatVertex(int64_t, const Slice&, std::string*) override {
    return Status::OK();
  }
  bool MutatesGraph() const override { return mutates_; }

 private:
  bool mutates_;
};

TEST(ResolveStorageTest, AutoPicksLsmForMutatingPrograms) {
  FakeProgram mutating(true), readonly(false);
  PregelixJobConfig cfg;
  cfg.storage = VertexStorage::kAuto;
  JobRuntimeContext ctx;
  ctx.job_config = &cfg;

  ctx.program = &mutating;
  EXPECT_EQ(ResolveStorageAtAdmission(ctx), VertexStorage::kLsmBTree);
  ctx.program = &readonly;
  EXPECT_EQ(ResolveStorageAtAdmission(ctx), VertexStorage::kBTree);

  // Static hints pass through untouched, mutations or not.
  cfg.storage = VertexStorage::kLsmBTree;
  EXPECT_EQ(ResolveStorageAtAdmission(ctx), VertexStorage::kLsmBTree);
  cfg.storage = VertexStorage::kBTree;
  ctx.program = &mutating;
  EXPECT_EQ(ResolveStorageAtAdmission(ctx), VertexStorage::kBTree);
}

TEST(ResolvePlanDecisionTest, AutoWithoutOptimizerFallsBackToLegacy) {
  // Direct BuildSuperstepJob callers (plan-generator unit tests) and a
  // recovering driver have no optimizer yet: kAuto must still resolve
  // deterministically, via the legacy heuristic and the plan defaults.
  PregelixJobConfig cfg;
  cfg.join = JoinStrategy::kAuto;
  cfg.groupby = GroupByStrategy::kAuto;
  cfg.groupby_connector = GroupByConnector::kAuto;
  JobRuntimeContext ctx;
  ctx.job_config = &cfg;
  ctx.current_superstep = 3;
  ctx.gs.num_vertices = 1000;
  ctx.gs.num_edges = 5000;
  ctx.gs.live_vertices = 10;
  ctx.gs.messages = 10;

  const PlanDecision d = ResolvePlanDecision(&ctx);
  EXPECT_EQ(d.join, JoinStrategy::kLeftOuter);  // sparse, message-light
  EXPECT_EQ(d.groupby, GroupByStrategy::kHashSort);  // optimistic default
  EXPECT_EQ(d.connector, GroupByConnector::kUnmerged);
  EXPECT_EQ(ctx.current_join, d.join);
  EXPECT_EQ(ctx.current_groupby, d.groupby);
  EXPECT_EQ(ctx.current_connector, d.connector);
}

TEST(ResolvePlanDecisionTest, StaticHintsWinOverTheOptimizer) {
  PregelixJobConfig cfg;
  cfg.join = JoinStrategy::kLeftOuter;
  cfg.groupby = GroupByStrategy::kAuto;
  cfg.groupby_connector = GroupByConnector::kMerged;
  JobRuntimeContext ctx;
  ctx.job_config = &cfg;
  ctx.current_superstep = 2;
  ctx.optimizer = std::make_shared<PlanOptimizer>();

  const PlanDecision d = ResolvePlanDecision(&ctx);
  EXPECT_EQ(d.join, JoinStrategy::kLeftOuter);
  EXPECT_EQ(d.groupby, GroupByStrategy::kHashSort);  // the kAuto knob
  EXPECT_EQ(d.connector, GroupByConnector::kMerged);
}

TEST(PlanNamesTest, CanonicalSpellings) {
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kFullOuter), "fullouter");
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kLeftOuter), "leftouter");
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kAdaptive), "adaptive");
  EXPECT_STREQ(JoinStrategyName(JoinStrategy::kAuto), "auto");
  EXPECT_STREQ(GroupByStrategyName(GroupByStrategy::kHashSort), "hashsort");
  EXPECT_STREQ(GroupByConnectorName(GroupByConnector::kMerged), "merged");
  EXPECT_STREQ(VertexStorageName(VertexStorage::kLsmBTree), "lsm");
  PlanDecision d;
  EXPECT_EQ(PlanDecisionString(d), "fullouter/sort/unmerged");
}

// ---------------------------------------------------------------------------
// End to end: the observable plan flip

/// Star head (vertex 0 adjacent to 1..head-1) plus a path tail hung off
/// vertex head-1. CC floods component 0 through the head in a couple of
/// supersteps, then walks the tail one vertex per superstep: a long run of
/// supersteps whose frontier is 2-3 vertices out of head+tail.
InMemoryGraph LollipopGraph(int64_t head, int64_t tail) {
  InMemoryGraph g;
  g.adj.resize(head + tail);
  for (int64_t v = 1; v < head; ++v) {
    g.adj[0].push_back(v);
    g.adj[v].push_back(0);
  }
  for (int64_t i = 0; i < tail; ++i) {
    const int64_t v = head + i;
    const int64_t prev = i == 0 ? head - 1 : v - 1;
    g.adj[prev].push_back(v);
    g.adj[v].push_back(prev);
  }
  return g;
}

TEST(AdaptiveEndToEndTest, CcUnderAutoFlipsJoinToLeftOuter) {
  TempDir dir("adaptive-e2e");
  DistributedFileSystem dfs(dir.Sub("dfs"));
  const InMemoryGraph graph = LollipopGraph(100, 30);
  ASSERT_TRUE(WriteGraph(dfs, "lollipop", graph, 3).ok());
  const std::vector<int64_t> ref = CcRef(graph);

  ClusterConfig config;
  config.num_workers = 3;
  config.worker_ram_bytes = 8u << 20;
  config.temp_root = dir.Sub("cluster");
  SimulatedCluster cluster(config);
  PregelixRuntime runtime(&cluster, &dfs);

  PregelixJobConfig job;
  job.name = "cc-auto";
  job.input_dir = "lollipop";
  job.output_dir = "out";
  job.join = JoinStrategy::kAuto;
  job.groupby = GroupByStrategy::kAuto;
  job.groupby_connector = GroupByConnector::kAuto;
  job.storage = VertexStorage::kAuto;

  const uint64_t since = EventJournal::Global().last_seq();
  ConnectedComponentsProgram program;
  ConnectedComponentsProgram::Adapter adapter(&program);
  JobResult result;
  Status s = runtime.Run(&adapter, job, &result);
  ASSERT_TRUE(s.ok()) << s.ToString();

  // Channel 1: the JobResult decision trail. Superstep 1 is the default
  // scan plan; the sparse tail must have flipped the join to the probe.
  ASSERT_FALSE(result.plan_decisions.empty());
  EXPECT_EQ(result.plan_decisions.front().plan.join, JoinStrategy::kFullOuter);
  EXPECT_EQ(result.plan_decisions.front().reason, "initial");
  const PlanDecisionRecord* flip = nullptr;
  for (const PlanDecisionRecord& r : result.plan_decisions) {
    if (r.switched.find("join") != std::string::npos &&
        r.plan.join == JoinStrategy::kLeftOuter) {
      flip = &r;
      break;
    }
  }
  ASSERT_NE(flip, nullptr)
      << "kAuto never switched to the left-outer join on a graph whose "
         "frontier is 2-3 vertices for 30 supersteps";
  EXPECT_GT(flip->superstep, 1);
  // The tail stays sparse to the end: the flip must not revert.
  EXPECT_EQ(result.plan_decisions.back().plan.join, JoinStrategy::kLeftOuter);

  // Channel 2: the event journal carries the same switch.
  bool journaled = false;
  for (const JournalEvent& e : EventJournal::Global().SnapshotSince(since)) {
    if (e.category != "plan.switch") continue;
    std::map<std::string, std::string> kv(e.kv.begin(), e.kv.end());
    if (kv["knob"] == "join" && kv["from"] == "fullouter" &&
        kv["to"] == "leftouter") {
      EXPECT_EQ(e.superstep, flip->superstep);
      journaled = true;
    }
  }
  EXPECT_TRUE(journaled) << "no plan.switch event for the join flip";

  // Channel 3: the optimizer metrics counted it.
  EXPECT_GE(cluster.registry()
                ->GetCounter("pregelix.optimizer.switches",
                             {{"job", "cc-auto"}, {"knob", "join"}})
                ->value(),
            1u);
  EXPECT_GE(cluster.registry()
                ->GetCounter("pregelix.optimizer.decisions",
                             {{"job", "cc-auto"}})
                ->value(),
            static_cast<uint64_t>(result.plan_decisions.size()));

  // And the answer is still right: every vertex lands in component 0.
  std::vector<std::string> names;
  ASSERT_TRUE(dfs.List("out", &names).ok());
  std::map<int64_t, int64_t> out;
  for (const std::string& part : names) {
    std::string contents;
    ASSERT_TRUE(dfs.Read("out/" + part, &contents).ok());
    std::istringstream lines(contents);
    std::string line;
    while (std::getline(lines, line)) {
      if (line.empty()) continue;
      std::istringstream fields(line);
      int64_t vid, component;
      fields >> vid >> component;
      EXPECT_TRUE(out.emplace(vid, component).second);
    }
  }
  ASSERT_EQ(out.size(), ref.size());
  for (const auto& [vid, component] : out) {
    EXPECT_EQ(component, ref[vid]) << "vid " << vid;
  }
}

}  // namespace
}  // namespace pregelix
