#include "common/metrics_registry.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace pregelix {
namespace {

TEST(MetricLabelsTest, NormalizationMakesOrderIrrelevant) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter(
      "pregelix.test.c", MetricLabels{{"operator", "join"}, {"worker", "1"}});
  Counter* b = registry.GetCounter(
      "pregelix.test.c", MetricLabels{{"worker", "1"}, {"operator", "join"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MetricLabelsTest, DuplicateKeysLastWins) {
  MetricLabels labels;
  labels.Add("k", "old").Add("k", "new");
  labels.Normalize();
  ASSERT_EQ(labels.kv.size(), 1u);
  EXPECT_EQ(labels.kv[0].second, "new");
}

TEST(MetricsRegistryTest, LabelCardinalityCreatesDistinctInstruments) {
  MetricsRegistry registry;
  for (int w = 0; w < 4; ++w) {
    registry
        .GetCounter("pregelix.dataflow.tuples_out",
                    MetricLabels{{"worker", std::to_string(w)}})
        ->Add(static_cast<uint64_t>(w + 1));
  }
  EXPECT_EQ(registry.size(), 4u);
  EXPECT_EQ(registry.CounterValue("pregelix.dataflow.tuples_out",
                                  MetricLabels{{"worker", "2"}}),
            3u);
  // 1 + 2 + 3 + 4 across all label sets.
  EXPECT_EQ(registry.SumCounters("pregelix.dataflow.tuples_out"), 10u);
  // Unlabeled same-name metric is yet another instrument.
  registry.GetCounter("pregelix.dataflow.tuples_out")->Add(100);
  EXPECT_EQ(registry.SumCounters("pregelix.dataflow.tuples_out"), 110u);
}

TEST(MetricsRegistryTest, StablePointersAcrossLookups) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("pregelix.test.g");
  g->Set(-7);
  // Many unrelated registrations must not invalidate g (std::map nodes).
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("pregelix.filler." + std::to_string(i));
  }
  EXPECT_EQ(registry.GetGauge("pregelix.test.g"), g);
  EXPECT_EQ(registry.GaugeValue("pregelix.test.g"), -7);
  g->Add(7);
  EXPECT_EQ(registry.GaugeValue("pregelix.test.g"), 0);
}

TEST(HistogramTest, PercentilesBracketObservations) {
  Histogram h;
  // 100 observations: 1..100.
  for (uint64_t v = 1; v <= 100; ++v) h.Observe(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_EQ(h.max(), 100u);
  // Power-of-two buckets bound the estimate: the true p50 is 50, which lives
  // in bucket [32,64) whose upper bound is 63; p99=99 lives in [64,128) whose
  // bound clamps to max()=100.
  EXPECT_GE(h.Percentile(50), 50u);
  EXPECT_LE(h.Percentile(50), 63u);
  EXPECT_GE(h.Percentile(99), 99u);
  EXPECT_LE(h.Percentile(99), 100u);
  EXPECT_EQ(h.Percentile(100), 100u);
}

TEST(HistogramTest, ZeroAndEmptyEdges) {
  Histogram h;
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.Observe(0);
  h.Observe(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.Percentile(50), 0u);
  EXPECT_EQ(h.Percentile(100), 0u);
}

TEST(HistogramTest, LargeValues) {
  Histogram h;
  h.Observe(1);
  h.Observe(uint64_t{1} << 40);
  EXPECT_EQ(h.max(), uint64_t{1} << 40);
  EXPECT_EQ(h.Percentile(100), uint64_t{1} << 40);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry]() {
      // Every thread resolves the same instruments and hammers them.
      Counter* c = registry.GetCounter("pregelix.test.concurrent");
      Histogram* h = registry.GetHistogram("pregelix.test.latency");
      for (int i = 0; i < kIncrements; ++i) {
        c->Increment();
        h->Observe(static_cast<uint64_t>(i % 128));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.CounterValue("pregelix.test.concurrent"),
            static_cast<uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(registry.GetHistogram("pregelix.test.latency")->count(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsRegistryTest, JsonDumpContainsAllKinds) {
  MetricsRegistry registry;
  registry
      .GetCounter("pregelix.buffer.hits", MetricLabels{{"worker", "0"}})
      ->Add(42);
  registry.GetGauge("pregelix.worker.net_bytes")->Set(-1);
  registry.GetHistogram("pregelix.op.micros")->Observe(10);
  std::ostringstream os;
  registry.WriteJson(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"counters\":["), std::string::npos);
  EXPECT_NE(json.find("\"gauges\":["), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":["), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"pregelix.buffer.hits\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\":{\"worker\":\"0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"value\":42"), std::string::npos);
  EXPECT_NE(json.find("\"value\":-1"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

}  // namespace
}  // namespace pregelix
