#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/temp_dir.h"
#include "dfs/dfs.h"

namespace pregelix {
namespace {

class DfsTest : public ::testing::Test {
 protected:
  DfsTest() : dfs_(dir_.Sub("dfs-root")) {}

  TempDir dir_{"dfs-test"};
  DistributedFileSystem dfs_;
};

TEST_F(DfsTest, WriteReadRoundTrip) {
  ASSERT_TRUE(dfs_.Write("a/b/c.txt", "payload").ok());
  std::string out;
  ASSERT_TRUE(dfs_.Read("a/b/c.txt", &out).ok());
  EXPECT_EQ(out, "payload");
  EXPECT_TRUE(dfs_.Exists("a/b/c.txt"));
  EXPECT_FALSE(dfs_.Exists("a/b/missing.txt"));
}

TEST_F(DfsTest, WriteIsAtomicReplace) {
  ASSERT_TRUE(dfs_.Write("gs", "superstep=1").ok());
  ASSERT_TRUE(dfs_.Write("gs", "superstep=2").ok());
  std::string out;
  ASSERT_TRUE(dfs_.Read("gs", &out).ok());
  EXPECT_EQ(out, "superstep=2");
}

TEST_F(DfsTest, AppendAccumulates) {
  ASSERT_TRUE(dfs_.Append("log", "a").ok());
  ASSERT_TRUE(dfs_.Append("log", "b").ok());
  std::string out;
  ASSERT_TRUE(dfs_.Read("log", &out).ok());
  EXPECT_EQ(out, "ab");
}

TEST_F(DfsTest, ListsPartFilesSorted) {
  ASSERT_TRUE(dfs_.Write("input/part-2", "x").ok());
  ASSERT_TRUE(dfs_.Write("input/part-0", "x").ok());
  ASSERT_TRUE(dfs_.Write("input/part-1", "x").ok());
  std::vector<std::string> names;
  ASSERT_TRUE(dfs_.List("input", &names).ok());
  EXPECT_EQ(names, (std::vector<std::string>{"part-0", "part-1", "part-2"}));
}

TEST_F(DfsTest, ListMissingDirFails) {
  std::vector<std::string> names;
  EXPECT_FALSE(dfs_.List("no-such-dir", &names).ok());
}

TEST_F(DfsTest, DeleteAndRecursiveDelete) {
  ASSERT_TRUE(dfs_.Write("ckpt/3/vertex-part-0", "x").ok());
  ASSERT_TRUE(dfs_.Write("ckpt/3/msg-part-0", "x").ok());
  ASSERT_TRUE(dfs_.Delete("ckpt/3/msg-part-0").ok());
  EXPECT_FALSE(dfs_.Exists("ckpt/3/msg-part-0"));
  EXPECT_TRUE(dfs_.Exists("ckpt/3/vertex-part-0"));
  ASSERT_TRUE(dfs_.DeleteRecursive("ckpt").ok());
  EXPECT_FALSE(dfs_.Exists("ckpt/3/vertex-part-0"));
}

TEST_F(DfsTest, ReadMissingIsNotFound) {
  std::string out;
  EXPECT_TRUE(dfs_.Read("missing", &out).IsNotFound());
}

}  // namespace
}  // namespace pregelix
