#!/usr/bin/env python3
"""Cross-checks time-ledger categories against DESIGN.md section 20.

Two-way contract (stage of `tools/lint_all.py`, wired into the
`check-static` target):

  1. Every category in the `kTimeCategoryNames` literal in
     src/common/time_ledger.h appears in the DESIGN.md section-20
     category table.
  2. Every category documented in that table appears in
     `kTimeCategoryNames` (a documented-but-dead bucket is as much a
     lint error as an undocumented live one).

The category set is *closed* — the conservation invariant
(sum(categories) == elapsed) only means something if the vocabulary in
the header, the /profilez surface, the Prometheus `category` label, and
the documentation are all the same 13 names. This lint pins the docs to
the header; the compiler pins everything else to the header via the
TimeCategory enum.

Exit code 0 when clean; 1 with one line per violation otherwise.
"""

import re
import sys

import lint_common as common

LEDGER_H = common.SRC / "common" / "time_ledger.h"

ARRAY = re.compile(r"kTimeCategoryNames\[[^\]]*\]\s*=\s*\{(.*?)\};", re.S)
LITERAL = re.compile(r'"([a-z][a-z0-9_]*)"')

# Rows look like:  | `compute` | vertex programs ... |
TABLE_CATEGORY = re.compile(r"`([a-z][a-z0-9_]*)`")


def collect_src_categories():
    """Categories listed in the kTimeCategoryNames literal."""
    if not LEDGER_H.exists():
        sys.stderr.write(f"lint_ledger: {LEDGER_H} does not exist\n")
        sys.exit(1)
    match = ARRAY.search(LEDGER_H.read_text())
    if match is None:
        sys.stderr.write(
            "lint_ledger: cannot find the kTimeCategoryNames literal in "
            f"{LEDGER_H.relative_to(common.REPO)}\n")
        sys.exit(1)
    where = f"{LEDGER_H.relative_to(common.REPO)}"
    return {name: [where] for name in LITERAL.findall(match.group(1))}


def main():
    src = collect_src_categories()
    design = common.design_table_names(
        "lint_ledger", "Category table", TABLE_CATEGORY)

    errors = common.two_way_diff(
        src, design, "time category", "category table", verb="declared")

    return common.report(
        "lint_ledger", errors,
        f"{len(src)} categories, src/ and DESIGN.md agree",
        f"{len(src)} categories in src/, {len(design)} in DESIGN.md")


if __name__ == "__main__":
    sys.exit(main())
