#!/usr/bin/env python3
"""Cross-checks fault-injection point names against DESIGN.md.

Two-way contract (wired into the `check-static` target):

  1. Every point used in src/ follows the `layer.object.op` naming
     convention: two or more lowercase dot-separated segments of
     [a-z0-9_].
  2. Every point used in src/ appears in the DESIGN.md section-11
     fault-point table, and every point in the table is used in src/
     (a documented-but-dead point is as much a lint error as an
     undocumented live one).

Points are collected from literal arguments to MaybeFail / MaybeFailWrite
plus the known indirections that forward a point name verbatim (currently
LsmBTree::WriteCurrent). `src/common/fault_injection.{h,cc}` is the
framework itself and is excluded from collection (its doc comments quote
example points).

Exit code 0 when clean; 1 with one line per violation otherwise.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"
DESIGN = REPO / "DESIGN.md"

# Literal point-name collectors. WriteCurrent forwards its argument to
# MaybeFail unchanged (the LSM commit points).
CALL_PATTERNS = [
    re.compile(r'MaybeFail(?:Write)?\(\s*"([^"]+)"'),
    re.compile(r'WriteCurrent\(\s*"([^"]+)"'),
]

NAME_CONVENTION = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

# Rows look like:  | `io.file.write` | ... |  or  | `a` / `a.commit` | ... |
TABLE_POINT = re.compile(r"`([a-z][a-z0-9_.]*)`")

EXCLUDED = {SRC / "common" / "fault_injection.h",
            SRC / "common" / "fault_injection.cc"}


def collect_src_points():
    """point name -> list of file:line where it is used."""
    points = {}
    for path in sorted(SRC.rglob("*")):
        if path.suffix not in (".h", ".cc") or path in EXCLUDED:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for pattern in CALL_PATTERNS:
                for name in pattern.findall(line):
                    where = f"{path.relative_to(REPO)}:{lineno}"
                    points.setdefault(name, []).append(where)
    return points


def collect_design_points():
    """Points listed in the DESIGN.md fault-point table."""
    text = DESIGN.read_text()
    match = re.search(
        r"^\*\*Point naming\*\*.*?\n(.*?)\n\n", text, re.S | re.M)
    if match is None:
        sys.stderr.write(
            "lint_fault_points: cannot find the fault-point table in "
            "DESIGN.md (expected after the '**Point naming**' paragraph)\n")
        sys.exit(1)
    table = match.group(1)
    points = set()
    for line in table.splitlines():
        if not line.startswith("|") or set(line) <= {"|", "-", " "}:
            continue
        first_cell = line.split("|")[1]
        points.update(TABLE_POINT.findall(first_cell))
    points.discard("layer.component.event")  # the convention header row
    return points


def main():
    src_points = collect_src_points()
    design_points = collect_design_points()
    errors = []

    for name, sites in sorted(src_points.items()):
        if not NAME_CONVENTION.match(name):
            errors.append(
                f"point '{name}' violates the layer.object.op convention "
                f"(used at {sites[0]})")
        if name not in design_points:
            errors.append(
                f"point '{name}' (used at {sites[0]}) is missing from the "
                f"DESIGN.md fault-point table")

    for name in sorted(design_points - set(src_points)):
        errors.append(
            f"point '{name}' is documented in DESIGN.md but never used "
            f"in src/")

    if errors:
        for e in errors:
            sys.stderr.write(f"lint_fault_points: {e}\n")
        sys.stderr.write(
            f"lint_fault_points: FAILED ({len(errors)} error(s); "
            f"{len(src_points)} points in src/, "
            f"{len(design_points)} in DESIGN.md)\n")
        return 1

    print(f"lint_fault_points: OK ({len(src_points)} points, "
          f"src/ and DESIGN.md agree)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
