#!/usr/bin/env python3
"""Cross-checks fault-injection point names against DESIGN.md.

Two-way contract (stage of `tools/lint_all.py`, wired into the
`check-static` target):

  1. Every point used in src/ follows the `layer.object.op` naming
     convention: two or more lowercase dot-separated segments of
     [a-z0-9_].
  2. Every point used in src/ appears in the DESIGN.md section-11
     fault-point table, and every point in the table is used in src/
     (a documented-but-dead point is as much a lint error as an
     undocumented live one).

Points are collected from literal arguments to MaybeFail / MaybeFailWrite
plus the known indirections that forward a point name verbatim (currently
LsmBTree::WriteCurrent). `src/common/fault_injection.{h,cc}` is the
framework itself and is excluded from collection (its doc comments quote
example points).

Exit code 0 when clean; 1 with one line per violation otherwise.
"""

import re
import sys

import lint_common as common

# Literal point-name collectors. WriteCurrent forwards its argument to
# MaybeFail unchanged (the LSM commit points).
CALL_PATTERNS = [
    re.compile(r'MaybeFail(?:Write)?\(\s*"([^"]+)"'),
    re.compile(r'WriteCurrent\(\s*"([^"]+)"'),
]

NAME_CONVENTION = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

# Rows look like:  | `io.file.write` | ... |  or  | `a` / `a.commit` | ... |
TABLE_POINT = re.compile(r"`([a-z][a-z0-9_.]*)`")

EXCLUDED = {common.SRC / "common" / "fault_injection.h",
            common.SRC / "common" / "fault_injection.cc"}


def main():
    src_points = common.scan_sources(CALL_PATTERNS, excluded=EXCLUDED)
    design_points = common.design_table_names(
        "lint_fault_points", "Point naming", TABLE_POINT,
        discard={"layer.component.event"})  # the convention header row

    errors = []
    for name, sites in sorted(src_points.items()):
        if not NAME_CONVENTION.match(name):
            errors.append(
                f"point '{name}' violates the layer.object.op convention "
                f"(used at {sites[0]})")
    errors += common.two_way_diff(
        src_points, design_points, "point", "fault-point table")

    return common.report(
        "lint_fault_points", errors,
        f"{len(src_points)} points, src/ and DESIGN.md agree",
        f"{len(src_points)} points in src/, {len(design_points)} in "
        f"DESIGN.md")


if __name__ == "__main__":
    sys.exit(main())
