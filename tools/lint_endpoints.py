#!/usr/bin/env python3
"""Cross-checks observability-server endpoints against DESIGN.md.

Two-way contract (stage of `tools/lint_all.py`, wired into the
`check-static` target):

  1. Every endpoint in the `kEndpoints` table in src/server/server.cc
     appears in the DESIGN.md section-15 endpoint table.
  2. Every endpoint documented in that table appears in `kEndpoints`
     (a documented-but-unserved endpoint is as much a lint error as an
     undocumented live one).

The `kEndpoints` array is the single routing vocabulary: Dispatch routes
by exact match against it (plus the `/jobs/<id>` prefix rule), and the
request-counter labels are folded onto it, so keeping it in lockstep
with the docs keeps routing, metrics labels, and documentation aligned.

Exit code 0 when clean; 1 with one line per violation otherwise.
"""

import re
import sys

import lint_common as common

SERVER_CC = common.SRC / "server" / "server.cc"

ARRAY = re.compile(r"kEndpoints\[\]\s*=\s*\{(.*?)\};", re.S)
LITERAL = re.compile(r'"(/[^"]*)"')

# Rows look like:  | `/metrics` | Prometheus ... |
TABLE_ENDPOINT = re.compile(r"`(/[^`]*)`")


def collect_src_endpoints():
    """Endpoints listed in the kEndpoints array in server.cc."""
    if not SERVER_CC.exists():
        sys.stderr.write(f"lint_endpoints: {SERVER_CC} does not exist\n")
        sys.exit(1)
    match = ARRAY.search(SERVER_CC.read_text())
    if match is None:
        sys.stderr.write(
            "lint_endpoints: cannot find the kEndpoints array in "
            f"{SERVER_CC.relative_to(common.REPO)}\n")
        sys.exit(1)
    where = f"{SERVER_CC.relative_to(common.REPO)}"
    return {name: [where] for name in LITERAL.findall(match.group(1))}


def main():
    src = collect_src_endpoints()
    design = common.design_table_names(
        "lint_endpoints", "Endpoint table", TABLE_ENDPOINT)

    errors = common.two_way_diff(
        src, design, "endpoint", "endpoint table", verb="served")

    return common.report(
        "lint_endpoints", errors,
        f"{len(src)} endpoints, src/ and DESIGN.md agree",
        f"{len(src)} endpoints in src/, {len(design)} in DESIGN.md")


if __name__ == "__main__":
    sys.exit(main())
