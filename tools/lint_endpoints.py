#!/usr/bin/env python3
"""Cross-checks observability-server endpoints against DESIGN.md.

Two-way contract (wired into the `check-static` target, next to
lint_fault_points.py and lint_metrics.py):

  1. Every endpoint in the `kEndpoints` table in src/server/server.cc
     appears in the DESIGN.md section-15 endpoint table.
  2. Every endpoint documented in that table appears in `kEndpoints`
     (a documented-but-unserved endpoint is as much a lint error as an
     undocumented live one).

The `kEndpoints` array is the single routing vocabulary: Dispatch routes
by exact match against it (plus the `/jobs/<id>` prefix rule), and the
request-counter labels are folded onto it, so keeping it in lockstep
with the docs keeps routing, metrics labels, and documentation aligned.

Exit code 0 when clean; 1 with one line per violation otherwise.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SERVER_CC = REPO / "src" / "server" / "server.cc"
DESIGN = REPO / "DESIGN.md"

ARRAY = re.compile(r"kEndpoints\[\]\s*=\s*\{(.*?)\};", re.S)
LITERAL = re.compile(r'"(/[^"]*)"')

# Rows look like:  | `/metrics` | Prometheus ... |
TABLE_ENDPOINT = re.compile(r"`(/[^`]*)`")


def collect_src_endpoints():
    """Endpoints listed in the kEndpoints array in server.cc."""
    if not SERVER_CC.exists():
        sys.stderr.write(f"lint_endpoints: {SERVER_CC} does not exist\n")
        sys.exit(1)
    match = ARRAY.search(SERVER_CC.read_text())
    if match is None:
        sys.stderr.write(
            "lint_endpoints: cannot find the kEndpoints array in "
            f"{SERVER_CC.relative_to(REPO)}\n")
        sys.exit(1)
    return set(LITERAL.findall(match.group(1)))


def collect_design_endpoints():
    """Endpoints listed in the DESIGN.md endpoint table."""
    text = DESIGN.read_text()
    match = re.search(
        r"^\*\*Endpoint table\*\*.*?\n(\|.*?)\n\n", text, re.S | re.M)
    if match is None:
        sys.stderr.write(
            "lint_endpoints: cannot find the endpoint table in DESIGN.md "
            "(expected after the '**Endpoint table**' paragraph)\n")
        sys.exit(1)
    endpoints = set()
    for line in match.group(1).splitlines():
        if not line.startswith("|") or set(line) <= {"|", "-", " "}:
            continue
        first_cell = line.split("|")[1]
        endpoints.update(TABLE_ENDPOINT.findall(first_cell))
    return endpoints


def main():
    src = collect_src_endpoints()
    design = collect_design_endpoints()
    errors = []

    for endpoint in sorted(src - design):
        errors.append(
            f"endpoint '{endpoint}' is served (kEndpoints in "
            f"src/server/server.cc) but missing from the DESIGN.md "
            f"endpoint table")
    for endpoint in sorted(design - src):
        errors.append(
            f"endpoint '{endpoint}' is documented in DESIGN.md but not in "
            f"kEndpoints in src/server/server.cc")

    if errors:
        for e in errors:
            sys.stderr.write(f"lint_endpoints: {e}\n")
        sys.stderr.write(
            f"lint_endpoints: FAILED ({len(errors)} error(s); "
            f"{len(src)} endpoints in src/, {len(design)} in DESIGN.md)\n")
        return 1

    print(f"lint_endpoints: OK ({len(src)} endpoints, "
          f"src/ and DESIGN.md agree)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
