#!/usr/bin/env python3
"""Runs every DESIGN.md cross-check lint; fails if any fails.

One stage of `tools/check_static.sh` (and usable standalone). Each lint
stays an independent script on top of tools/lint_common.py; this driver
just sequences them and aggregates the exit code:

    lint_fault_points   fault-injection points  vs DESIGN.md §11
    lint_metrics        metric registrations    vs DESIGN.md §10
    lint_endpoints      server routes           vs DESIGN.md §15
    lint_journal        journal categories      vs DESIGN.md §15
    lint_ledger         time-ledger categories  vs DESIGN.md §20

Exit code 0 when every lint is clean; 1 otherwise.
"""

import importlib
import sys

LINTS = [
    "lint_fault_points",
    "lint_metrics",
    "lint_endpoints",
    "lint_journal",
    "lint_ledger",
]


def main():
    failed = []
    for name in LINTS:
        if importlib.import_module(name).main() != 0:
            failed.append(name)
    if failed:
        sys.stderr.write(
            f"lint_all: FAILED ({len(failed)} of {len(LINTS)} lints: "
            f"{', '.join(failed)})\n")
        return 1
    print(f"lint_all: OK ({len(LINTS)} lints clean)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
