#!/usr/bin/env bash
# Smoke-runs the kernel microbenchmarks for one short iteration and checks
# that they still emit valid google-benchmark JSON. No timing assertions —
# this guards "the kernels run and the perf-trajectory artifact stays
# machine-readable", not any particular number. Wired up as the `bench_smoke`
# ctest test (tier1 label) and as a stage of tools/check_static.sh.
#
# usage: bench_smoke.sh <bench_micro_dataflow binary> <output json>

set -u

if [ "$#" -ne 2 ]; then
  echo "usage: $0 <bench-binary> <out.json>" >&2
  exit 2
fi
BIN="$1"
OUT="$2"

# A tiny min_time runs each benchmark for a single iteration batch. (The
# pinned google-benchmark predates the `--benchmark_min_time=1x` syntax.)
"$BIN" --benchmark_min_time=0.001 \
       --benchmark_out="$OUT" --benchmark_out_format=json > /dev/null || {
  echo "bench_smoke: $BIN failed" >&2
  exit 1
}

python3 - "$OUT" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
benches = doc.get("benchmarks", [])
if not benches:
    sys.exit("bench_smoke: no benchmarks in JSON output")
for b in benches:
    if "name" not in b or "real_time" not in b:
        sys.exit(f"bench_smoke: malformed benchmark entry: {b}")
print(f"bench_smoke: OK ({len(benches)} benchmarks, valid JSON)")
EOF
