#!/usr/bin/env bash
# Smoke-runs the kernel microbenchmarks for one short iteration and checks
# that they still emit valid google-benchmark JSON. No timing assertions —
# this guards "the kernels run and the perf-trajectory artifact stays
# machine-readable", not any particular number. Wired up as the `bench_smoke`
# ctest test (tier1 label) and as a stage of tools/check_static.sh.
#
# With a third argument — the pregelix CLI binary — it additionally
# smoke-tests the observability server: `pregelix serve` on an ephemeral
# port, then /healthz and /metrics must answer 200 (DESIGN.md §15).
#
# With a fourth and fifth argument — the bench_adaptive binary and its JSON
# output path — it also runs the adaptive-plan bench in FAST mode (small
# graphs, same deterministic cost model) and validates the artifact: every
# experiment carries a finite adaptive/best-static ratio, and SSSP and
# PageRank stay within the acceptance bar (DESIGN.md §17).
#
# With a sixth and seventh argument — the bench_overlap binary and its JSON
# output path — it also runs the overlap-pipeline bench in FAST mode and
# validates the artifact: every experiment carries a finite per-iteration
# speedup >= 1.0 (the overlapped pipeline must never lose to phase-serial;
# DESIGN.md §19).
#
# With an eighth and ninth argument — the bench_ledger binary and its JSON
# output path — it also runs the time-ledger overhead bench in FAST mode and
# validates the artifact: every experiment's simulated-time delta between
# ledger-on and ledger-off stays within the 2% gate and the ledger-on arm
# reports zero unattributed nanoseconds (DESIGN.md §20).
#
# usage: bench_smoke.sh <bench_micro_dataflow binary> <output json> \
#            [pregelix-cli] [bench_adaptive binary] [adaptive json] \
#            [bench_overlap binary] [overlap json] \
#            [bench_ledger binary] [ledger json]

set -u

if [ "$#" -lt 2 ] || [ "$#" -gt 9 ]; then
  echo "usage: $0 <bench-binary> <out.json> [pregelix-cli]" \
       "[bench-adaptive] [adaptive.json] [bench-overlap] [overlap.json]" \
       "[bench-ledger] [ledger.json]" >&2
  exit 2
fi
BIN="$1"
OUT="$2"
CLI="${3:-}"
ADAPTIVE_BIN="${4:-}"
ADAPTIVE_OUT="${5:-}"
OVERLAP_BIN="${6:-}"
OVERLAP_OUT="${7:-}"
LEDGER_BIN="${8:-}"
LEDGER_OUT="${9:-}"

# A tiny min_time runs each benchmark for a single iteration batch. (The
# pinned google-benchmark predates the `--benchmark_min_time=1x` syntax.)
"$BIN" --benchmark_min_time=0.001 \
       --benchmark_out="$OUT" --benchmark_out_format=json > /dev/null || {
  echo "bench_smoke: $BIN failed" >&2
  exit 1
}

python3 - "$OUT" <<'EOF' || exit 1
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
benches = doc.get("benchmarks", [])
if not benches:
    sys.exit("bench_smoke: no benchmarks in JSON output")
for b in benches:
    if "name" not in b or "real_time" not in b:
        sys.exit(f"bench_smoke: malformed benchmark entry: {b}")
print(f"bench_smoke: OK ({len(benches)} benchmarks, valid JSON)")
EOF

# --- Optional: adaptive-plan bench smoke -------------------------------------
if [ -n "$ADAPTIVE_BIN" ] && [ -n "$ADAPTIVE_OUT" ]; then
  PREGELIX_BENCH_ADAPTIVE_FAST=1 "$ADAPTIVE_BIN" "$ADAPTIVE_OUT" \
      > /dev/null || {
    echo "bench_smoke: $ADAPTIVE_BIN failed" >&2
    exit 1
  }
  python3 - "$ADAPTIVE_OUT" <<'EOF' || exit 1
import json, math, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
experiments = doc.get("experiments", [])
if not experiments:
    sys.exit("bench_smoke: no experiments in adaptive JSON")
algos = set()
for e in experiments:
    for key in ("algorithm", "static_sim_seconds", "adaptive_sim_seconds",
                "best_static_sim_seconds", "ratio_adaptive_vs_best"):
        if key not in e:
            sys.exit(f"bench_smoke: adaptive entry missing '{key}': {e}")
    ratio = e["ratio_adaptive_vs_best"]
    if not math.isfinite(ratio) or ratio <= 0:
        sys.exit(f"bench_smoke: bad adaptive ratio {ratio} in {e}")
    # The acceptance bar bench_adaptive itself enforces for SSSP/PageRank.
    if e["algorithm"] in ("sssp", "pagerank") and ratio > 1.05:
        sys.exit(f"bench_smoke: {e['algorithm']} adaptive ratio {ratio} "
                 "exceeds the 1.05 acceptance bar")
    algos.add(e["algorithm"])
for required in ("sssp", "pagerank"):
    if required not in algos:
        sys.exit(f"bench_smoke: adaptive JSON lacks a {required} experiment")
print(f"bench_smoke: OK ({len(experiments)} adaptive experiments, "
      "ratios within the acceptance bar)")
EOF
fi

# --- Optional: overlap-pipeline bench smoke ----------------------------------
if [ -n "$OVERLAP_BIN" ] && [ -n "$OVERLAP_OUT" ]; then
  PREGELIX_BENCH_OVERLAP_FAST=1 "$OVERLAP_BIN" "$OVERLAP_OUT" \
      > /dev/null || {
    echo "bench_smoke: $OVERLAP_BIN failed" >&2
    exit 1
  }
  python3 - "$OVERLAP_OUT" <<'EOF' || exit 1
import json, math, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
experiments = doc.get("experiments", [])
if not experiments:
    sys.exit("bench_smoke: no experiments in overlap JSON")
for e in experiments:
    for key in ("algorithm", "serial_iter_sim_seconds",
                "overlapped_iter_sim_seconds", "speedup_iteration"):
        if key not in e:
            sys.exit(f"bench_smoke: overlap entry missing '{key}': {e}")
    speedup = e["speedup_iteration"]
    if not math.isfinite(speedup) or speedup < 1.0:
        sys.exit(f"bench_smoke: overlap speedup {speedup} below 1.0 in {e}")
print(f"bench_smoke: OK ({len(experiments)} overlap experiments, "
      "speedups >= 1.0)")
EOF
fi

# --- Optional: time-ledger overhead bench smoke ------------------------------
if [ -n "$LEDGER_BIN" ] && [ -n "$LEDGER_OUT" ]; then
  PREGELIX_BENCH_LEDGER_FAST=1 "$LEDGER_BIN" "$LEDGER_OUT" \
      > /dev/null || {
    echo "bench_smoke: $LEDGER_BIN failed" >&2
    exit 1
  }
  python3 - "$LEDGER_OUT" <<'EOF' || exit 1
import json, math, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
experiments = doc.get("experiments", [])
if not experiments:
    sys.exit("bench_smoke: no experiments in ledger JSON")
gate = doc.get("sim_delta_gate", 0.02)
algos = set()
for e in experiments:
    for key in ("algorithm", "ledger_off_sim_seconds",
                "ledger_on_sim_seconds", "sim_delta", "wall_ratio",
                "unattributed_ns"):
        if key not in e:
            sys.exit(f"bench_smoke: ledger entry missing '{key}': {e}")
    delta = e["sim_delta"]
    if not math.isfinite(delta) or delta > gate:
        sys.exit(f"bench_smoke: ledger sim delta {delta} exceeds the "
                 f"{gate} gate in {e}")
    if e["unattributed_ns"] != 0:
        sys.exit(f"bench_smoke: ledger-on arm left "
                 f"{e['unattributed_ns']} unattributed ns in {e}")
    algos.add(e["algorithm"])
for required in ("sssp", "pagerank"):
    if required not in algos:
        sys.exit(f"bench_smoke: ledger JSON lacks a {required} experiment")
print(f"bench_smoke: OK ({len(experiments)} ledger experiments, sim deltas "
      "within the gate, books balanced)")
EOF
fi

# --- Optional: observability-server smoke -----------------------------------
if [ -z "$CLI" ]; then
  exit 0
fi
if ! command -v curl >/dev/null 2>&1; then
  echo "bench_smoke: no curl on PATH, skipping server smoke"
  exit 0
fi

SERVE_LOG="$(mktemp)"
"$CLI" serve --admin-port=0 --serve-seconds=20 > "$SERVE_LOG" 2>&1 &
SERVE_PID=$!
cleanup() {
  kill "$SERVE_PID" 2>/dev/null
  wait "$SERVE_PID" 2>/dev/null
  rm -f "$SERVE_LOG"
}
trap cleanup EXIT

# The CLI prints "admin server listening on 127.0.0.1:<port>" once bound.
PORT=""
for _ in $(seq 1 50); do
  PORT="$(sed -n 's/.*admin server listening on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
          "$SERVE_LOG" | head -n 1)"
  [ -n "$PORT" ] && break
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "bench_smoke: pregelix serve never reported its port" >&2
  cat "$SERVE_LOG" >&2
  exit 1
fi

for path in /healthz /metrics; do
  CODE="$(curl -s -o /dev/null -w '%{http_code}' \
          "http://127.0.0.1:$PORT$path")"
  if [ "$CODE" != "200" ]; then
    echo "bench_smoke: GET $path returned $CODE (want 200)" >&2
    exit 1
  fi
done
echo "bench_smoke: OK (server answered /healthz and /metrics on :$PORT)"
