#!/usr/bin/env bash
# The one-command static/concurrency gate (also exposed as the CMake target
# `check-static`):
#
#   1. thread-safety build: clang with -DPREGELIX_THREAD_SAFETY_ANALYSIS=ON
#      (-Wthread-safety -Werror), a compile-only proof of the locking
#      annotations in src/common/thread_annotations.h
#   2. clang-tidy over src/ with the checked-in .clang-tidy
#   3. tools/lint_all.py: the five DESIGN.md cross-check lints —
#      fault-injection points (§11), metric names (§10), server endpoints
#      (§15), journal categories (§15), and time-ledger categories (§20),
#      each two-way
#   3b. static plan verification: `pregelix verify` over the built-in
#      example jobs (DESIGN.md §18; needs the built CLI, skipped otherwise)
#   4. bench smoke: one short iteration of the kernel microbenchmarks via
#      tools/bench_smoke.sh (needs a built build/ tree; skipped otherwise),
#      plus an HTTP smoke of `pregelix serve` when the CLI is built
#   5. --tsan: additionally build with PREGELIX_SANITIZE=thread and run the
#      `tsan`-labeled ctest suites (tier-1 + concurrency_stress_test)
#   6. --ubsan: additionally build with PREGELIX_SANITIZE=undefined and run
#      the tier-1 ctest suites under UndefinedBehaviorSanitizer
#
# Stages whose toolchain is absent (no clang / clang-tidy on the box) are
# SKIPPED with a notice rather than failed, so the gate degrades on
# gcc-only machines; CI images with clang run everything. Any stage that
# runs and fails fails the script.

set -u

cd "$(dirname "$0")/.."
REPO="$PWD"
RUN_TSAN=0
RUN_UBSAN=0
for arg in "$@"; do
  case "$arg" in
    --tsan) RUN_TSAN=1 ;;
    --ubsan) RUN_UBSAN=1 ;;
    *) echo "usage: $0 [--tsan] [--ubsan]" >&2; exit 2 ;;
  esac
done

JOBS="$(nproc 2>/dev/null || echo 2)"
FAILED=0
SKIPPED=0

note()  { printf '\n== check-static: %s\n' "$*"; }
skip()  { printf '   SKIPPED: %s\n' "$*"; SKIPPED=$((SKIPPED + 1)); }
fail()  { printf '   FAILED: %s\n' "$*"; FAILED=$((FAILED + 1)); }

find_clang() {
  for c in clang++ clang++-18 clang++-17 clang++-16 clang++-15 clang++-14; do
    command -v "$c" >/dev/null 2>&1 && { echo "$c"; return; }
  done
}

find_tidy() {
  for c in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
           clang-tidy-15 clang-tidy-14; do
    command -v "$c" >/dev/null 2>&1 && { echo "$c"; return; }
  done
}

# --- 1. Thread-safety analysis build ---------------------------------------
note "thread-safety analysis build (-Wthread-safety -Werror)"
CLANG="$(find_clang)"
if [ -z "$CLANG" ]; then
  skip "no clang++ on PATH (gcc cannot run Clang Thread Safety Analysis)"
else
  BUILD_TSA="$REPO/build-tsa"
  if cmake -B "$BUILD_TSA" -S "$REPO" \
        -DCMAKE_CXX_COMPILER="$CLANG" \
        -DPREGELIX_THREAD_SAFETY_ANALYSIS=ON \
        > "$BUILD_TSA.configure.log" 2>&1 \
     && cmake --build "$BUILD_TSA" -j "$JOBS" > "$BUILD_TSA.build.log" 2>&1
  then
    echo "   OK: thread-safety build clean"
  else
    tail -n 40 "$BUILD_TSA.build.log" "$BUILD_TSA.configure.log" 2>/dev/null
    fail "thread-safety build (logs: $BUILD_TSA.*.log)"
  fi
fi

# --- 2. clang-tidy ----------------------------------------------------------
note "clang-tidy over src/ (.clang-tidy at repo root)"
TIDY="$(find_tidy)"
if [ -z "$TIDY" ]; then
  skip "no clang-tidy on PATH"
else
  BUILD_CDB="$REPO/build"
  if [ ! -f "$BUILD_CDB/compile_commands.json" ]; then
    cmake -B "$BUILD_CDB" -S "$REPO" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      > /dev/null 2>&1 || true
  fi
  if [ ! -f "$BUILD_CDB/compile_commands.json" ]; then
    skip "no compile_commands.json (configure build/ first)"
  else
    mapfile -t TIDY_SOURCES < <(find "$REPO/src" -name '*.cc' | sort)
    if "$TIDY" -p "$BUILD_CDB" --quiet "${TIDY_SOURCES[@]}"; then
      echo "   OK: clang-tidy clean (${#TIDY_SOURCES[@]} files)"
    else
      fail "clang-tidy"
    fi
  fi
fi

# --- 3. DESIGN.md cross-check lints ----------------------------------------
note "DESIGN.md cross-check lints (tools/lint_all.py)"
if python3 "$REPO/tools/lint_all.py"; then
  :
else
  fail "lint_all.py"
fi

# --- 3b. Static plan verification -------------------------------------------
note "static plan verification (pregelix verify, DESIGN.md section 18)"
CLI_BIN="$REPO/build/src/tools/pregelix"
if [ ! -x "$CLI_BIN" ]; then
  skip "no built pregelix CLI (build the default tree first)"
else
  VERIFY_OK=1
  "$CLI_BIN" verify --algorithm=pagerank --workers=4 --worker-ram-mb=16 \
    || VERIFY_OK=0
  "$CLI_BIN" verify --algorithm=sssp --workers=4 --worker-ram-mb=16 \
    --join=leftouter --groupby=hashsort --connector=merged \
    --storage=lsm --configured-only \
    || VERIFY_OK=0
  if [ "$VERIFY_OK" = 1 ]; then
    echo "   OK: example job plans verify clean"
  else
    fail "pregelix verify"
  fi
fi

# --- 4. Bench smoke ---------------------------------------------------------
note "bench smoke (kernels run, JSON output valid; server scrape)"
BENCH_BIN="$REPO/build/bench/bench_micro_dataflow"
CLI_BIN="$REPO/build/src/tools/pregelix"
if [ ! -x "$BENCH_BIN" ]; then
  skip "no built bench_micro_dataflow (build the default tree first)"
elif "$REPO/tools/bench_smoke.sh" "$BENCH_BIN" \
     "$REPO/build/BENCH_kernels.json" \
     "$([ -x "$CLI_BIN" ] && echo "$CLI_BIN")"; then
  :
else
  fail "bench_smoke.sh"
fi

# --- 5. Optional: TSan suite ------------------------------------------------
if [ "$RUN_TSAN" = 1 ]; then
  note "ThreadSanitizer suite (PREGELIX_SANITIZE=thread, ctest -L tsan)"
  BUILD_TSAN="$REPO/build-tsan"
  if cmake -B "$BUILD_TSAN" -S "$REPO" -DPREGELIX_SANITIZE=thread \
        > "$BUILD_TSAN.configure.log" 2>&1 \
     && cmake --build "$BUILD_TSAN" -j "$JOBS" > "$BUILD_TSAN.build.log" 2>&1 \
     && (cd "$BUILD_TSAN" && ctest -L tsan --output-on-failure -j "$JOBS")
  then
    echo "   OK: tsan suites clean"
  else
    fail "TSan suite (logs: $BUILD_TSAN.*.log)"
  fi
fi

# --- 6. Optional: UBSan suite -----------------------------------------------
if [ "$RUN_UBSAN" = 1 ]; then
  note "UndefinedBehaviorSanitizer suite (PREGELIX_SANITIZE=undefined, ctest -L tier1)"
  BUILD_UBSAN="$REPO/build-ubsan"
  if cmake -B "$BUILD_UBSAN" -S "$REPO" -DPREGELIX_SANITIZE=undefined \
        > "$BUILD_UBSAN.configure.log" 2>&1 \
     && cmake --build "$BUILD_UBSAN" -j "$JOBS" > "$BUILD_UBSAN.build.log" 2>&1 \
     && (cd "$BUILD_UBSAN" \
         && UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
            ctest -L tier1 --output-on-failure -j "$JOBS")
  then
    echo "   OK: ubsan suites clean"
  else
    fail "UBSan suite (logs: $BUILD_UBSAN.*.log)"
  fi
fi

# --- Summary ---------------------------------------------------------------
printf '\n== check-static: %d failed, %d skipped\n' "$FAILED" "$SKIPPED"
[ "$FAILED" = 0 ]
