#!/usr/bin/env python3
"""Cross-checks metric names against DESIGN.md.

Two-way contract (stage of `tools/lint_all.py`, wired into the
`check-static` target):

  1. Every metric registered in src/ or bench/ follows the
     `pregelix.<layer>.<name>` naming convention: the literal prefix
     `pregelix.` plus two or more lowercase dot-separated segments of
     [a-z0-9_].
  2. Every metric registered in src/ or bench/ appears in the DESIGN.md
     metric table, and every metric in the table is registered somewhere
     (a documented-but-dead metric is as much a lint error as an
     undocumented live one).

Names are collected from literal first arguments to GetCounter /
GetGauge / GetHistogram. `src/common/metrics_registry.{h,cc}` is the
framework itself and is excluded (its doc comments quote example names);
tests/ may register throwaway names and is not scanned.

Exit code 0 when clean; 1 with one line per violation otherwise.
"""

import re
import sys

import lint_common as common

# Literal registration collector; matches across a line break between the
# call and its name argument.
CALL_PATTERNS = [
    re.compile(r'Get(?:Counter|Gauge|Histogram)\(\s*"([^"]+)"'),
]

NAME_CONVENTION = re.compile(r"^pregelix(\.[a-z][a-z0-9_]*){2,}$")

# Table rows look like:  | `pregelix.buffer.hits` | counter | ... |
TABLE_NAME = re.compile(r"`(pregelix[a-z0-9_.]*)`")

SCAN_ROOTS = (common.SRC, common.REPO / "bench")

EXCLUDED = {common.SRC / "common" / "metrics_registry.h",
            common.SRC / "common" / "metrics_registry.cc"}

# Families that must stay live in src/. The two-way check above cannot
# catch a family deleted from *both* code and table at once; these are
# documented contracts (DESIGN.md §10/§17/§18) other tooling scrapes.
REQUIRED_FAMILIES = (
    "pregelix.optimizer.",
    "pregelix.verifier.",
)


def main():
    src_names = common.scan_sources(
        CALL_PATTERNS, roots=SCAN_ROOTS, excluded=EXCLUDED)
    design_names = common.design_table_names(
        "lint_metrics", "Metric naming", TABLE_NAME,
        discard={"pregelix.layer.name"})  # the convention header row

    errors = []
    for name, sites in sorted(src_names.items()):
        if not NAME_CONVENTION.match(name):
            errors.append(
                f"metric '{name}' violates the pregelix.<layer>.<name> "
                f"convention (registered at {sites[0]})")
    errors += common.two_way_diff(
        src_names, design_names, "metric", "metric table", verb="registered")
    for family in REQUIRED_FAMILIES:
        if not any(name.startswith(family) for name in src_names):
            errors.append(
                f"required metric family '{family}*' has no registration "
                f"in src/ or bench/")

    return common.report(
        "lint_metrics", errors,
        f"{len(src_names)} metrics, src/+bench/ and DESIGN.md agree",
        f"{len(src_names)} metrics in src/+bench/, {len(design_names)} in "
        f"DESIGN.md")


if __name__ == "__main__":
    sys.exit(main())
