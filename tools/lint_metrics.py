#!/usr/bin/env python3
"""Cross-checks metric names against DESIGN.md.

Two-way contract (wired into the `check-static` target, next to
lint_fault_points.py):

  1. Every metric registered in src/ or bench/ follows the
     `pregelix.<layer>.<name>` naming convention: the literal prefix
     `pregelix.` plus two or more lowercase dot-separated segments of
     [a-z0-9_].
  2. Every metric registered in src/ or bench/ appears in the DESIGN.md
     metric table, and every metric in the table is registered somewhere
     (a documented-but-dead metric is as much a lint error as an
     undocumented live one).

Names are collected from literal first arguments to GetCounter /
GetGauge / GetHistogram. `src/common/metrics_registry.{h,cc}` is the
framework itself and is excluded (its doc comments quote example names);
tests/ may register throwaway names and is not scanned.

Exit code 0 when clean; 1 with one line per violation otherwise.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SCAN_ROOTS = [REPO / "src", REPO / "bench"]
DESIGN = REPO / "DESIGN.md"

# Literal registration collector; matches across a line break between the
# call and its name argument.
CALL_PATTERN = re.compile(
    r'Get(?:Counter|Gauge|Histogram)\(\s*"([^"]+)"')

NAME_CONVENTION = re.compile(r"^pregelix(\.[a-z][a-z0-9_]*){2,}$")

# Table rows look like:  | `pregelix.buffer.hits` | counter | ... |
TABLE_NAME = re.compile(r"`(pregelix[a-z0-9_.]*)`")

EXCLUDED = {REPO / "src" / "common" / "metrics_registry.h",
            REPO / "src" / "common" / "metrics_registry.cc"}

# Families that must stay live in src/. The two-way check above cannot
# catch a family deleted from *both* code and table at once; these are
# documented contracts (DESIGN.md §10/§17) other tooling scrapes.
REQUIRED_FAMILIES = (
    "pregelix.optimizer.",
)


def collect_src_names():
    """metric name -> list of file:line where it is registered."""
    names = {}
    for root in SCAN_ROOTS:
        for path in sorted(root.rglob("*")):
            if path.suffix not in (".h", ".cc") or path in EXCLUDED:
                continue
            text = path.read_text()
            for match in CALL_PATTERN.finditer(text):
                lineno = text.count("\n", 0, match.start()) + 1
                where = f"{path.relative_to(REPO)}:{lineno}"
                names.setdefault(match.group(1), []).append(where)
    return names


def collect_design_names():
    """Metric names listed in the DESIGN.md metric table."""
    text = DESIGN.read_text()
    match = re.search(
        r"^\*\*Metric naming\*\*.*?(\n\|.*?)\n\n", text, re.S | re.M)
    if match is None:
        sys.stderr.write(
            "lint_metrics: cannot find the metric table in DESIGN.md "
            "(expected after the '**Metric naming**' paragraph)\n")
        sys.exit(1)
    table = match.group(1)
    names = set()
    for line in table.splitlines():
        if not line.startswith("|") or set(line) <= {"|", "-", " "}:
            continue
        first_cell = line.split("|")[1]
        names.update(TABLE_NAME.findall(first_cell))
    names.discard("pregelix.layer.name")  # the convention header row
    return names


def main():
    src_names = collect_src_names()
    design_names = collect_design_names()
    errors = []

    for name, sites in sorted(src_names.items()):
        if not NAME_CONVENTION.match(name):
            errors.append(
                f"metric '{name}' violates the pregelix.<layer>.<name> "
                f"convention (registered at {sites[0]})")
        if name not in design_names:
            errors.append(
                f"metric '{name}' (registered at {sites[0]}) is missing "
                f"from the DESIGN.md metric table")

    for name in sorted(design_names - set(src_names)):
        errors.append(
            f"metric '{name}' is documented in DESIGN.md but never "
            f"registered in src/ or bench/")

    for family in REQUIRED_FAMILIES:
        if not any(name.startswith(family) for name in src_names):
            errors.append(
                f"required metric family '{family}*' has no registration "
                f"in src/ or bench/")

    if errors:
        for e in errors:
            sys.stderr.write(f"lint_metrics: {e}\n")
        sys.stderr.write(
            f"lint_metrics: FAILED ({len(errors)} error(s); "
            f"{len(src_names)} metrics in src/+bench/, "
            f"{len(design_names)} in DESIGN.md)\n")
        return 1

    print(f"lint_metrics: OK ({len(src_names)} metrics, "
          f"src/+bench/ and DESIGN.md agree)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
