#!/usr/bin/env python3
"""Cross-checks event-journal categories against DESIGN.md.

Two-way contract (stage of `tools/lint_all.py`, wired into the
`check-static` target):

  1. Every category appended in src/ follows the `layer.event` naming
     convention: two or more lowercase dot-separated segments of
     [a-z0-9_].
  2. Every category appended in src/ appears in the DESIGN.md
     section-15 journal-category table, and every category in the table
     is appended somewhere (a documented-but-dead category is as much a
     lint error as an undocumented live one).

Categories are collected from literal first arguments to
`EventJournal::Global().Append(...)` (the literal may sit on the line
after the call). `src/common/event_journal.{h,cc}` is the framework
itself and is excluded (its doc comments quote example categories);
tests/ may append throwaway categories and is not scanned.

Exit code 0 when clean; 1 with one line per violation otherwise.
"""

import re
import sys

import lint_common as common

# Literal category collector; the category is the first argument and
# routinely lands on the next line after the 80-column break.
CALL_PATTERNS = [
    re.compile(r'EventJournal::Global\(\)\.Append\(\s*"([^"]+)"'),
]

NAME_CONVENTION = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

# Rows look like:  | `plan.switch` | ... |
TABLE_CATEGORY = re.compile(r"`([a-z][a-z0-9_.]*)`")

EXCLUDED = {common.SRC / "common" / "event_journal.h",
            common.SRC / "common" / "event_journal.cc"}


def main():
    src_cats = common.scan_sources(CALL_PATTERNS, excluded=EXCLUDED)
    design_cats = common.design_table_names(
        "lint_journal", "Journal categories", TABLE_CATEGORY)

    errors = []
    for name, sites in sorted(src_cats.items()):
        if not NAME_CONVENTION.match(name):
            errors.append(
                f"category '{name}' violates the layer.event convention "
                f"(appended at {sites[0]})")
    errors += common.two_way_diff(
        src_cats, design_cats, "category", "journal-category table",
        verb="appended")

    return common.report(
        "lint_journal", errors,
        f"{len(src_cats)} categories, src/ and DESIGN.md agree",
        f"{len(src_cats)} categories in src/, {len(design_cats)} in "
        f"DESIGN.md")


if __name__ == "__main__":
    sys.exit(main())
