"""Shared plumbing for the DESIGN.md cross-check lints.

Every lint in this family enforces the same two-way contract: a set of
names collected from the sources (fault points, metric names, journal
categories, server endpoints) must equal the corresponding inventory
table in DESIGN.md — an undocumented live name and a documented-but-dead
name are both errors. This module holds the pieces they share:

  * repo-relative paths (``REPO``, ``SRC``, ``DESIGN``)
  * ``scan_sources()``        — collect literal names from source trees
  * ``design_table_names()``  — extract backticked names from the first
    column of the table following a bold ``**Anchor**`` paragraph
  * ``two_way_diff()``        — the shared src-vs-DESIGN error messages
  * ``report()``              — the uniform ``<tool>: OK/FAILED`` footer

Individual lints stay single-purpose scripts (runnable on their own and
via tools/lint_all.py); this module is their only shared dependency.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent
SRC = REPO / "src"
DESIGN = REPO / "DESIGN.md"


def scan_sources(patterns, roots=(SRC,), excluded=(), suffixes=(".h", ".cc")):
    """Collects literal names: name -> list of ``file:line`` usage sites.

    ``patterns`` are compiled regexes whose group 1 is the name; they are
    matched against whole-file text, so a pattern may span the line break
    between a call and its first argument.
    """
    names = {}
    excluded = set(excluded)
    for root in roots:
        for path in sorted(root.rglob("*")):
            if path.suffix not in suffixes or path in excluded:
                continue
            text = path.read_text()
            for pattern in patterns:
                for match in pattern.finditer(text):
                    lineno = text.count("\n", 0, match.start()) + 1
                    where = f"{path.relative_to(REPO)}:{lineno}"
                    names.setdefault(match.group(1), []).append(where)
    return names


def design_table_names(tool, anchor, cell_pattern, discard=()):
    """Names from the first column of the DESIGN.md table after ``anchor``.

    ``anchor`` is the bold paragraph opener (e.g. ``"Metric naming"``);
    the table is everything from the first ``|`` row to the next blank
    line. ``discard`` drops convention-header placeholders.
    """
    text = DESIGN.read_text()
    match = re.search(
        r"^\*\*" + re.escape(anchor) + r"\*\*.*?(\n\|.*?)\n\n",
        text, re.S | re.M)
    if match is None:
        sys.stderr.write(
            f"{tool}: cannot find the table in DESIGN.md (expected after "
            f"the '**{anchor}**' paragraph)\n")
        sys.exit(1)
    names = set()
    for line in match.group(1).splitlines():
        if not line.startswith("|") or set(line) <= {"|", "-", " "}:
            continue
        first_cell = line.split("|")[1]
        names.update(cell_pattern.findall(first_cell))
    names.difference_update(discard)
    return names


def two_way_diff(src_names, design_names, what, table, verb="used"):
    """The shared two-way error list: live-but-undocumented names first,
    then documented-but-dead ones."""
    errors = []
    for name, sites in sorted(src_names.items()):
        if name not in design_names:
            errors.append(
                f"{what} '{name}' ({verb} at {sites[0]}) is missing from "
                f"the DESIGN.md {table}")
    for name in sorted(design_names - set(src_names)):
        errors.append(
            f"{what} '{name}' is documented in DESIGN.md but never "
            f"{verb} in the sources")
    return errors


def report(tool, errors, ok_detail, fail_detail):
    """Prints the uniform footer; returns the process exit code."""
    if errors:
        for e in errors:
            sys.stderr.write(f"{tool}: {e}\n")
        sys.stderr.write(
            f"{tool}: FAILED ({len(errors)} error(s); {fail_detail})\n")
        return 1
    print(f"{tool}: OK ({ok_detail})")
    return 0
