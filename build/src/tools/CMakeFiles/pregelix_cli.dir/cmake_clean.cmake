file(REMOVE_RECURSE
  "CMakeFiles/pregelix_cli.dir/pregelix_cli.cc.o"
  "CMakeFiles/pregelix_cli.dir/pregelix_cli.cc.o.d"
  "pregelix"
  "pregelix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregelix_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
