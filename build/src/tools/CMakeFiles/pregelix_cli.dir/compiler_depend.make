# Empty compiler generated dependencies file for pregelix_cli.
# This may be replaced when dependencies are built.
