file(REMOVE_RECURSE
  "CMakeFiles/pregelix_common.dir/logging.cc.o"
  "CMakeFiles/pregelix_common.dir/logging.cc.o.d"
  "CMakeFiles/pregelix_common.dir/metrics.cc.o"
  "CMakeFiles/pregelix_common.dir/metrics.cc.o.d"
  "CMakeFiles/pregelix_common.dir/random.cc.o"
  "CMakeFiles/pregelix_common.dir/random.cc.o.d"
  "CMakeFiles/pregelix_common.dir/status.cc.o"
  "CMakeFiles/pregelix_common.dir/status.cc.o.d"
  "CMakeFiles/pregelix_common.dir/temp_dir.cc.o"
  "CMakeFiles/pregelix_common.dir/temp_dir.cc.o.d"
  "libpregelix_common.a"
  "libpregelix_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregelix_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
