# Empty dependencies file for pregelix_common.
# This may be replaced when dependencies are built.
