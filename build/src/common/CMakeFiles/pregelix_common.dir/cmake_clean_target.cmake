file(REMOVE_RECURSE
  "libpregelix_common.a"
)
