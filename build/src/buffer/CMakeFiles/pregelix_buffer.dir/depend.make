# Empty dependencies file for pregelix_buffer.
# This may be replaced when dependencies are built.
