file(REMOVE_RECURSE
  "libpregelix_buffer.a"
)
