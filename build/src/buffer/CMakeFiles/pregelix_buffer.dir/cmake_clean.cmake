file(REMOVE_RECURSE
  "CMakeFiles/pregelix_buffer.dir/buffer_cache.cc.o"
  "CMakeFiles/pregelix_buffer.dir/buffer_cache.cc.o.d"
  "libpregelix_buffer.a"
  "libpregelix_buffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregelix_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
