file(REMOVE_RECURSE
  "libpregelix_dataflow.a"
)
