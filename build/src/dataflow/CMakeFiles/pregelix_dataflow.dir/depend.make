# Empty dependencies file for pregelix_dataflow.
# This may be replaced when dependencies are built.
