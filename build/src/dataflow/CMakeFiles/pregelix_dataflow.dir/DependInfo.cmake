
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/channel.cc" "src/dataflow/CMakeFiles/pregelix_dataflow.dir/channel.cc.o" "gcc" "src/dataflow/CMakeFiles/pregelix_dataflow.dir/channel.cc.o.d"
  "/root/repo/src/dataflow/cluster.cc" "src/dataflow/CMakeFiles/pregelix_dataflow.dir/cluster.cc.o" "gcc" "src/dataflow/CMakeFiles/pregelix_dataflow.dir/cluster.cc.o.d"
  "/root/repo/src/dataflow/executor.cc" "src/dataflow/CMakeFiles/pregelix_dataflow.dir/executor.cc.o" "gcc" "src/dataflow/CMakeFiles/pregelix_dataflow.dir/executor.cc.o.d"
  "/root/repo/src/dataflow/frame.cc" "src/dataflow/CMakeFiles/pregelix_dataflow.dir/frame.cc.o" "gcc" "src/dataflow/CMakeFiles/pregelix_dataflow.dir/frame.cc.o.d"
  "/root/repo/src/dataflow/ops/sort.cc" "src/dataflow/CMakeFiles/pregelix_dataflow.dir/ops/sort.cc.o" "gcc" "src/dataflow/CMakeFiles/pregelix_dataflow.dir/ops/sort.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pregelix_common.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/pregelix_io.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/pregelix_buffer.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
