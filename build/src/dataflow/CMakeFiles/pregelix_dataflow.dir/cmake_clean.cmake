file(REMOVE_RECURSE
  "CMakeFiles/pregelix_dataflow.dir/channel.cc.o"
  "CMakeFiles/pregelix_dataflow.dir/channel.cc.o.d"
  "CMakeFiles/pregelix_dataflow.dir/cluster.cc.o"
  "CMakeFiles/pregelix_dataflow.dir/cluster.cc.o.d"
  "CMakeFiles/pregelix_dataflow.dir/executor.cc.o"
  "CMakeFiles/pregelix_dataflow.dir/executor.cc.o.d"
  "CMakeFiles/pregelix_dataflow.dir/frame.cc.o"
  "CMakeFiles/pregelix_dataflow.dir/frame.cc.o.d"
  "CMakeFiles/pregelix_dataflow.dir/ops/sort.cc.o"
  "CMakeFiles/pregelix_dataflow.dir/ops/sort.cc.o.d"
  "libpregelix_dataflow.a"
  "libpregelix_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregelix_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
