file(REMOVE_RECURSE
  "libpregelix_graph.a"
)
