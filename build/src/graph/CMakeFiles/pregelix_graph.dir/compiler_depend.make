# Empty compiler generated dependencies file for pregelix_graph.
# This may be replaced when dependencies are built.
