
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/generator.cc" "src/graph/CMakeFiles/pregelix_graph.dir/generator.cc.o" "gcc" "src/graph/CMakeFiles/pregelix_graph.dir/generator.cc.o.d"
  "/root/repo/src/graph/ref_algos.cc" "src/graph/CMakeFiles/pregelix_graph.dir/ref_algos.cc.o" "gcc" "src/graph/CMakeFiles/pregelix_graph.dir/ref_algos.cc.o.d"
  "/root/repo/src/graph/sampler.cc" "src/graph/CMakeFiles/pregelix_graph.dir/sampler.cc.o" "gcc" "src/graph/CMakeFiles/pregelix_graph.dir/sampler.cc.o.d"
  "/root/repo/src/graph/text_io.cc" "src/graph/CMakeFiles/pregelix_graph.dir/text_io.cc.o" "gcc" "src/graph/CMakeFiles/pregelix_graph.dir/text_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pregelix_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/pregelix_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/pregelix_io.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
