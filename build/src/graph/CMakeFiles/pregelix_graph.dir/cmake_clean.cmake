file(REMOVE_RECURSE
  "CMakeFiles/pregelix_graph.dir/generator.cc.o"
  "CMakeFiles/pregelix_graph.dir/generator.cc.o.d"
  "CMakeFiles/pregelix_graph.dir/ref_algos.cc.o"
  "CMakeFiles/pregelix_graph.dir/ref_algos.cc.o.d"
  "CMakeFiles/pregelix_graph.dir/sampler.cc.o"
  "CMakeFiles/pregelix_graph.dir/sampler.cc.o.d"
  "CMakeFiles/pregelix_graph.dir/text_io.cc.o"
  "CMakeFiles/pregelix_graph.dir/text_io.cc.o.d"
  "libpregelix_graph.a"
  "libpregelix_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregelix_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
