file(REMOVE_RECURSE
  "CMakeFiles/pregelix_core.dir/plans.cc.o"
  "CMakeFiles/pregelix_core.dir/plans.cc.o.d"
  "CMakeFiles/pregelix_core.dir/program.cc.o"
  "CMakeFiles/pregelix_core.dir/program.cc.o.d"
  "CMakeFiles/pregelix_core.dir/runtime.cc.o"
  "CMakeFiles/pregelix_core.dir/runtime.cc.o.d"
  "CMakeFiles/pregelix_core.dir/state.cc.o"
  "CMakeFiles/pregelix_core.dir/state.cc.o.d"
  "CMakeFiles/pregelix_core.dir/vertex_format.cc.o"
  "CMakeFiles/pregelix_core.dir/vertex_format.cc.o.d"
  "libpregelix_core.a"
  "libpregelix_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregelix_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
