
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pregel/plans.cc" "src/pregel/CMakeFiles/pregelix_core.dir/plans.cc.o" "gcc" "src/pregel/CMakeFiles/pregelix_core.dir/plans.cc.o.d"
  "/root/repo/src/pregel/program.cc" "src/pregel/CMakeFiles/pregelix_core.dir/program.cc.o" "gcc" "src/pregel/CMakeFiles/pregelix_core.dir/program.cc.o.d"
  "/root/repo/src/pregel/runtime.cc" "src/pregel/CMakeFiles/pregelix_core.dir/runtime.cc.o" "gcc" "src/pregel/CMakeFiles/pregelix_core.dir/runtime.cc.o.d"
  "/root/repo/src/pregel/state.cc" "src/pregel/CMakeFiles/pregelix_core.dir/state.cc.o" "gcc" "src/pregel/CMakeFiles/pregelix_core.dir/state.cc.o.d"
  "/root/repo/src/pregel/vertex_format.cc" "src/pregel/CMakeFiles/pregelix_core.dir/vertex_format.cc.o" "gcc" "src/pregel/CMakeFiles/pregelix_core.dir/vertex_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pregelix_common.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/pregelix_io.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/pregelix_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pregelix_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/pregelix_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/pregelix_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pregelix_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
