# Empty dependencies file for pregelix_core.
# This may be replaced when dependencies are built.
