file(REMOVE_RECURSE
  "libpregelix_core.a"
)
