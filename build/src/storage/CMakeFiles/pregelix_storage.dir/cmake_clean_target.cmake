file(REMOVE_RECURSE
  "libpregelix_storage.a"
)
