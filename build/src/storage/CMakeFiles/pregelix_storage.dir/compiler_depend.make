# Empty compiler generated dependencies file for pregelix_storage.
# This may be replaced when dependencies are built.
