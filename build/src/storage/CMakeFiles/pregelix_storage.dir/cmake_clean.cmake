file(REMOVE_RECURSE
  "CMakeFiles/pregelix_storage.dir/btree.cc.o"
  "CMakeFiles/pregelix_storage.dir/btree.cc.o.d"
  "CMakeFiles/pregelix_storage.dir/lsm_btree.cc.o"
  "CMakeFiles/pregelix_storage.dir/lsm_btree.cc.o.d"
  "libpregelix_storage.a"
  "libpregelix_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregelix_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
