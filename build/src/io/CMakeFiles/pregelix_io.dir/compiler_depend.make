# Empty compiler generated dependencies file for pregelix_io.
# This may be replaced when dependencies are built.
