file(REMOVE_RECURSE
  "libpregelix_io.a"
)
