file(REMOVE_RECURSE
  "CMakeFiles/pregelix_io.dir/file.cc.o"
  "CMakeFiles/pregelix_io.dir/file.cc.o.d"
  "CMakeFiles/pregelix_io.dir/run_file.cc.o"
  "CMakeFiles/pregelix_io.dir/run_file.cc.o.d"
  "libpregelix_io.a"
  "libpregelix_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregelix_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
