# Empty compiler generated dependencies file for pregelix_baselines.
# This may be replaced when dependencies are built.
