file(REMOVE_RECURSE
  "CMakeFiles/pregelix_baselines.dir/process_centric.cc.o"
  "CMakeFiles/pregelix_baselines.dir/process_centric.cc.o.d"
  "libpregelix_baselines.a"
  "libpregelix_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregelix_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
