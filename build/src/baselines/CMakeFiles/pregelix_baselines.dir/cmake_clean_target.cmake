file(REMOVE_RECURSE
  "libpregelix_baselines.a"
)
