# Empty dependencies file for pregelix_baselines.
# This may be replaced when dependencies are built.
