file(REMOVE_RECURSE
  "CMakeFiles/pregelix_dfs.dir/dfs.cc.o"
  "CMakeFiles/pregelix_dfs.dir/dfs.cc.o.d"
  "libpregelix_dfs.a"
  "libpregelix_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregelix_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
