file(REMOVE_RECURSE
  "libpregelix_dfs.a"
)
