# Empty dependencies file for pregelix_dfs.
# This may be replaced when dependencies are built.
