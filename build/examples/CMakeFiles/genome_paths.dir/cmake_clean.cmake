file(REMOVE_RECURSE
  "CMakeFiles/genome_paths.dir/genome_paths.cpp.o"
  "CMakeFiles/genome_paths.dir/genome_paths.cpp.o.d"
  "genome_paths"
  "genome_paths.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_paths.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
