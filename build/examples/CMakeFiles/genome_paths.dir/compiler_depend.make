# Empty compiler generated dependencies file for genome_paths.
# This may be replaced when dependencies are built.
