# Empty dependencies file for road_network_sssp.
# This may be replaced when dependencies are built.
