file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_groupby.dir/bench_ablation_groupby.cc.o"
  "CMakeFiles/bench_ablation_groupby.dir/bench_ablation_groupby.cc.o.d"
  "bench_ablation_groupby"
  "bench_ablation_groupby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_groupby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
