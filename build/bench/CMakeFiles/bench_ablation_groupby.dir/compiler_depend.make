# Empty compiler generated dependencies file for bench_ablation_groupby.
# This may be replaced when dependencies are built.
