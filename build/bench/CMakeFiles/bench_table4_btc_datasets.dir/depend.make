# Empty dependencies file for bench_table4_btc_datasets.
# This may be replaced when dependencies are built.
