
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig13_throughput.cc" "bench/CMakeFiles/bench_fig13_throughput.dir/bench_fig13_throughput.cc.o" "gcc" "bench/CMakeFiles/bench_fig13_throughput.dir/bench_fig13_throughput.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/pregelix_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/pregelix_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/pregel/CMakeFiles/pregelix_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/pregelix_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/pregelix_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/buffer/CMakeFiles/pregelix_buffer.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/pregelix_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/pregelix_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/pregelix_io.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pregelix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
