# Empty compiler generated dependencies file for bench_fig10_execution_time.
# This may be replaced when dependencies are built.
