# Empty dependencies file for bench_table3_webmap_datasets.
# This may be replaced when dependencies are built.
