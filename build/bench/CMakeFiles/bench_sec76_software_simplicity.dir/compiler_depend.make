# Empty compiler generated dependencies file for bench_sec76_software_simplicity.
# This may be replaced when dependencies are built.
