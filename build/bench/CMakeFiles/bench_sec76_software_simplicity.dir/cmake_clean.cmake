file(REMOVE_RECURSE
  "CMakeFiles/bench_sec76_software_simplicity.dir/bench_sec76_software_simplicity.cc.o"
  "CMakeFiles/bench_sec76_software_simplicity.dir/bench_sec76_software_simplicity.cc.o.d"
  "bench_sec76_software_simplicity"
  "bench_sec76_software_simplicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec76_software_simplicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
