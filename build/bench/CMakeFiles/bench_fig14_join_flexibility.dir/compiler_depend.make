# Empty compiler generated dependencies file for bench_fig14_join_flexibility.
# This may be replaced when dependencies are built.
