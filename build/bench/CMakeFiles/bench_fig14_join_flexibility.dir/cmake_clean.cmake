file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_join_flexibility.dir/bench_fig14_join_flexibility.cc.o"
  "CMakeFiles/bench_fig14_join_flexibility.dir/bench_fig14_join_flexibility.cc.o.d"
  "bench_fig14_join_flexibility"
  "bench_fig14_join_flexibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_join_flexibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
