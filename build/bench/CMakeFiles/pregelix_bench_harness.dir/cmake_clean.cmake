file(REMOVE_RECURSE
  "../lib/libpregelix_bench_harness.a"
  "../lib/libpregelix_bench_harness.pdb"
  "CMakeFiles/pregelix_bench_harness.dir/harness.cc.o"
  "CMakeFiles/pregelix_bench_harness.dir/harness.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregelix_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
