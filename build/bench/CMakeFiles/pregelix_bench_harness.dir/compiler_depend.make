# Empty compiler generated dependencies file for pregelix_bench_harness.
# This may be replaced when dependencies are built.
