file(REMOVE_RECURSE
  "../lib/libpregelix_bench_harness.a"
)
