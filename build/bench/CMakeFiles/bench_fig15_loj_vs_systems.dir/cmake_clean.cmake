file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_loj_vs_systems.dir/bench_fig15_loj_vs_systems.cc.o"
  "CMakeFiles/bench_fig15_loj_vs_systems.dir/bench_fig15_loj_vs_systems.cc.o.d"
  "bench_fig15_loj_vs_systems"
  "bench_fig15_loj_vs_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_loj_vs_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
