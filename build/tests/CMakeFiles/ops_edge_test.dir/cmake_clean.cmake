file(REMOVE_RECURSE
  "CMakeFiles/ops_edge_test.dir/ops_edge_test.cc.o"
  "CMakeFiles/ops_edge_test.dir/ops_edge_test.cc.o.d"
  "ops_edge_test"
  "ops_edge_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ops_edge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
