# Empty dependencies file for ops_edge_test.
# This may be replaced when dependencies are built.
