# Empty dependencies file for plan_matrix_test.
# This may be replaced when dependencies are built.
