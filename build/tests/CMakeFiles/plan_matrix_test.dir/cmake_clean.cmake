file(REMOVE_RECURSE
  "CMakeFiles/plan_matrix_test.dir/plan_matrix_test.cc.o"
  "CMakeFiles/plan_matrix_test.dir/plan_matrix_test.cc.o.d"
  "plan_matrix_test"
  "plan_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
