file(REMOVE_RECURSE
  "CMakeFiles/ooc_test.dir/ooc_test.cc.o"
  "CMakeFiles/ooc_test.dir/ooc_test.cc.o.d"
  "ooc_test"
  "ooc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ooc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
