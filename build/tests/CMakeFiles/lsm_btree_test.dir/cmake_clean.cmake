file(REMOVE_RECURSE
  "CMakeFiles/lsm_btree_test.dir/lsm_btree_test.cc.o"
  "CMakeFiles/lsm_btree_test.dir/lsm_btree_test.cc.o.d"
  "lsm_btree_test"
  "lsm_btree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
