# Empty dependencies file for lsm_btree_test.
# This may be replaced when dependencies are built.
