# Empty compiler generated dependencies file for pregel_runtime_test.
# This may be replaced when dependencies are built.
