file(REMOVE_RECURSE
  "CMakeFiles/pregel_runtime_test.dir/pregel_runtime_test.cc.o"
  "CMakeFiles/pregel_runtime_test.dir/pregel_runtime_test.cc.o.d"
  "pregel_runtime_test"
  "pregel_runtime_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pregel_runtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
