// Microbenchmarks (google-benchmark) for the storage substrate: B-tree and
// LSM B-tree operations under an ample and a starved buffer cache. These are
// supporting numbers for the access-method choices of paper Section 4.

#include <benchmark/benchmark.h>

#include <memory>

#include "buffer/buffer_cache.h"
#include "common/logging.h"
#include "common/random.h"
#include "common/serde.h"
#include "common/temp_dir.h"
#include "storage/btree.h"
#include "storage/lsm_btree.h"

namespace pregelix {
namespace {

constexpr size_t kPage = 4096;

struct BTreeFixture {
  BTreeFixture(size_t cache_pages, int preload)
      : dir("micro-btree"), cache(kPage, cache_pages, nullptr) {
    Status s = BTree::Open(&cache, dir.path() + "/t", &tree);
    PREGELIX_CHECK(s.ok());
    auto loader = tree->NewBulkLoader();
    for (int64_t vid = 0; vid < preload; ++vid) {
      PREGELIX_CHECK(
          loader->Add(OrderedKeyI64(vid), std::string(64, 'v')).ok());
    }
    PREGELIX_CHECK(loader->Finish().ok());
  }
  TempDir dir;
  WorkerMetrics metrics;
  BufferCache cache;
  std::unique_ptr<BTree> tree;
};

void BM_BTreeUpsertSequential(benchmark::State& state) {
  BTreeFixture f(/*cache_pages=*/4096, /*preload=*/0);
  int64_t vid = 0;
  const std::string value(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.tree->Upsert(OrderedKeyI64(vid++), value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeUpsertSequential);

void BM_BTreeUpsertRandom(benchmark::State& state) {
  BTreeFixture f(4096, 0);
  Random rnd(1);
  const std::string value(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.tree->Upsert(OrderedKeyI64(rnd.Uniform(1 << 20)), value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeUpsertRandom);

void BM_BTreeGetHot(benchmark::State& state) {
  BTreeFixture f(4096, 100000);
  Random rnd(2);
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.tree->Get(OrderedKeyI64(rnd.Uniform(100000)), &value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeGetHot);

void BM_BTreeGetColdCache(benchmark::State& state) {
  // 32 pages of cache against a ~7000-page tree: every probe mostly misses.
  BTreeFixture f(/*cache_pages=*/32, /*preload=*/200000);
  Random rnd(3);
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.tree->Get(OrderedKeyI64(rnd.Uniform(200000)), &value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BTreeGetColdCache);

void BM_BTreeFullScan(benchmark::State& state) {
  BTreeFixture f(4096, 100000);
  for (auto _ : state) {
    auto it = f.tree->NewIterator();
    PREGELIX_CHECK(it->SeekToFirst().ok());
    int64_t count = 0;
    while (it->Valid()) {
      ++count;
      PREGELIX_CHECK(it->Next().ok());
    }
    benchmark::DoNotOptimize(count);
    state.SetItemsProcessed(state.items_processed() + count);
  }
}
BENCHMARK(BM_BTreeFullScan)->Unit(benchmark::kMillisecond);

void BM_LsmUpsert(benchmark::State& state) {
  TempDir dir("micro-lsm");
  BufferCache cache(kPage, 4096, nullptr);
  std::unique_ptr<LsmBTree> lsm;
  PREGELIX_CHECK(
      LsmBTree::Open(&cache, dir.Sub("l"), 1 << 20, &lsm).ok());
  Random rnd(4);
  const std::string value(64, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lsm->Upsert(OrderedKeyI64(rnd.Uniform(1 << 20)), value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsmUpsert);

void BM_LsmGet(benchmark::State& state) {
  TempDir dir("micro-lsm-get");
  BufferCache cache(kPage, 4096, nullptr);
  std::unique_ptr<LsmBTree> lsm;
  PREGELIX_CHECK(
      LsmBTree::Open(&cache, dir.Sub("l"), 64 * 1024, &lsm).ok());
  for (int64_t vid = 0; vid < 50000; ++vid) {
    PREGELIX_CHECK(lsm->Upsert(OrderedKeyI64(vid), "value").ok());
  }
  Random rnd(5);
  std::string value;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        lsm->Get(OrderedKeyI64(rnd.Uniform(50000)), &value));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LsmGet);

void BM_BufferCachePinHit(benchmark::State& state) {
  TempDir dir("micro-cache");
  BufferCache cache(kPage, 64, nullptr);
  int fid;
  PREGELIX_CHECK(cache.OpenFile(dir.path() + "/f", &fid).ok());
  for (int i = 0; i < 32; ++i) {
    PageHandle page;
    PREGELIX_CHECK(cache.AllocatePage(fid, &page).ok());
    page.MarkDirty();
  }
  Random rnd(6);
  for (auto _ : state) {
    PageHandle page;
    benchmark::DoNotOptimize(
        cache.Pin(fid, static_cast<PageId>(rnd.Uniform(32)), &page));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BufferCachePinHit);

}  // namespace
}  // namespace pregelix

BENCHMARK_MAIN();
