// Reproduces Section 7.6: software simplicity.
//
// The paper counts lines of code: Giraph-core (a from-scratch
// process-centric runtime: networking, message delivery, vertex storage,
// memory management, fault tolerance) is 32,197 lines, while the Pregelix
// core — which implements the same Pregel semantics as dataflow plans over
// Hyracks — is just 8,514 lines.
//
// This repository has exactly the same structure: src/pregel (the Pregelix
// core: plan generator + runtime driver + typed API) sits on top of reusable
// general-purpose infrastructure (src/dataflow, src/storage, src/buffer,
// src/io, src/dfs) that a Pregel system would otherwise have had to build
// and maintain itself. This bench counts both at runtime from the source
// tree and prints the leverage ratio next to the paper's.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace pregelix {
namespace bench {
namespace {

namespace fs = std::filesystem;

/// Counts non-blank, non-pure-comment lines of .h/.cc files under dir.
int64_t CountLoc(const fs::path& dir) {
  int64_t lines = 0;
  std::error_code ec;
  for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
       it.increment(ec)) {
    if (ec) break;
    const fs::path& p = it->path();
    if (p.extension() != ".h" && p.extension() != ".cc") continue;
    std::ifstream in(p);
    std::string line;
    while (std::getline(in, line)) {
      size_t start = line.find_first_not_of(" \t");
      if (start == std::string::npos) continue;           // blank
      if (line.compare(start, 2, "//") == 0) continue;    // comment
      ++lines;
    }
  }
  return lines;
}

void Run() {
  PrintBanner("Section 7.6: software simplicity (lines of code)",
              "Bu et al., VLDB 2014, Section 7.6",
              "the Pregel-specific core is a small fraction of what a "
              "from-scratch process-centric runtime must build "
              "(paper: Pregelix-core 8,514 vs Giraph-core 32,197 = 3.8x)");

  // Locate the repository's src/ relative to this source file.
  fs::path here(__FILE__);
  fs::path src = here.parent_path().parent_path() / "src";
  if (!fs::exists(src)) {
    printf("source tree not found at %s; skipping\n", src.c_str());
    return;
  }

  const int64_t core = CountLoc(src / "pregel");
  int64_t reused = 0;
  printf("\n");
  PrintRow({"module", "LoC", "role"}, 22);
  PrintRow({"src/pregel", std::to_string(core),
            "the Pregelix core (plans+runtime+API)"},
           22);
  for (const char* module :
       {"dataflow", "storage", "buffer", "io", "dfs", "common"}) {
    const int64_t loc = CountLoc(src / module);
    reused += loc;
    PrintRow({std::string("src/") + module, std::to_string(loc),
              "general-purpose, reused (Hyracks analog)"},
             22);
  }
  printf("\n");
  PrintRow({"", "core", "reused infra", "leverage"}, 22);
  char ratio[32];
  snprintf(ratio, sizeof(ratio), "%.1fx",
           static_cast<double>(reused) / static_cast<double>(core));
  PrintRow({"this repo", std::to_string(core), std::to_string(reused),
            ratio},
           22);
  PrintRow({"paper", "8,514 (Pregelix)", "32,197 (Giraph-core)", "3.8x"},
           22);
  printf("\nReading: a from-scratch Pregel runtime carries the whole right "
         "column itself; building on a dataflow engine, the Pregel-specific "
         "code is only the left column.\n");
}

}  // namespace
}  // namespace bench
}  // namespace pregelix

int main() {
  pregelix::bench::Run();
  return 0;
}
