// Overlapped superstep pipeline vs the phase-serial baseline (DESIGN.md
// §19). Same jobs, same plan, same deterministic cost model — the only
// difference between the two arms is ClusterConfig::overlap: kOff runs
// every read, spill and flush synchronously; kOn double-buffers run reads,
// pushes writes through the write-behind queue and starts the group-by
// eagerly. The cost model credits overlapped I/O bytes against the
// concurrent CPU time (bounded by min(cpu, disk) per worker), so the
// speedup below is exactly the I/O the pipeline managed to hide.
//
// Out-of-core sizing on purpose: 1 MB workers against multi-MB datasets is
// the paper's Section 7 regime, where spilled runs and B-tree I/O dominate
// and overlap has something to hide.
//
// Emits BENCH_overlap.json (path = argv[1], default ./BENCH_overlap.json);
// tools/bench_smoke.sh runs this binary in PREGELIX_BENCH_OVERLAP_FAST mode
// and validates the artifact. The binary itself gates speedup >= 1.0 for
// every experiment (overlap must never lose to phase-serial).

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace pregelix {
namespace bench {
namespace {

constexpr int kWorkers = 2;
constexpr size_t kWorkerRam = 1024 * 1024;

struct ExperimentResult {
  std::string algorithm;
  std::string dataset;
  int64_t vertices = 0;
  double serial_iter_seconds = 0;
  double overlapped_iter_seconds = 0;
  double serial_total_seconds = 0;
  double overlapped_total_seconds = 0;
  int64_t supersteps = 0;
  double speedup() const {
    return serial_iter_seconds / overlapped_iter_seconds;
  }
};

std::string LowerName(Algorithm algorithm) {
  std::string name = AlgorithmName(algorithm);
  for (char& c : name) c = static_cast<char>(std::tolower(c));
  return name;
}

bool RunExperiment(Env& env, const Dataset& dataset, Algorithm algorithm,
                   ExperimentResult* out) {
  out->algorithm = LowerName(algorithm);
  out->dataset = dataset.name;
  out->vertices = dataset.stats.num_vertices;
  // The paper's default plan; the unmerged connector keeps the eager
  // group-by leg of the pipeline in play.
  const PregelixPlan plan;

  ClusterConfig serial = env.Cluster(kWorkers, kWorkerRam);
  serial.overlap = OverlapMode::kOff;
  Outcome off = RunPregelix(env, dataset, algorithm, serial, plan);
  if (!off.ok) {
    fprintf(stderr, "bench_overlap: %s/%s serial failed: %s\n",
            out->algorithm.c_str(), dataset.name.c_str(),
            off.fail_reason.c_str());
    return false;
  }

  ClusterConfig overlapped = env.Cluster(kWorkers, kWorkerRam);
  overlapped.overlap = OverlapMode::kOn;
  Outcome on = RunPregelix(env, dataset, algorithm, overlapped, plan);
  if (!on.ok) {
    fprintf(stderr, "bench_overlap: %s/%s overlapped failed: %s\n",
            out->algorithm.c_str(), dataset.name.c_str(),
            on.fail_reason.c_str());
    return false;
  }
  if (off.supersteps != on.supersteps) {
    fprintf(stderr,
            "bench_overlap: %s/%s superstep count diverged (%lld serial vs "
            "%lld overlapped) — overlap changed the computation\n",
            out->algorithm.c_str(), dataset.name.c_str(),
            static_cast<long long>(off.supersteps),
            static_cast<long long>(on.supersteps));
    return false;
  }

  out->serial_iter_seconds = off.avg_iteration_seconds;
  out->overlapped_iter_seconds = on.avg_iteration_seconds;
  out->serial_total_seconds = off.total_seconds;
  out->overlapped_total_seconds = on.total_seconds;
  out->supersteps = on.supersteps;
  return true;
}

void PrintExperiment(const ExperimentResult& r) {
  PrintRow({r.algorithm + " " + r.dataset, Seconds(r.serial_iter_seconds),
            Seconds(r.overlapped_iter_seconds),
            Seconds(r.serial_total_seconds),
            Seconds(r.overlapped_total_seconds), Ratio3(r.speedup())});
}

bool WriteJson(const std::string& path, bool fast,
               const std::vector<ExperimentResult>& results) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "bench_overlap: cannot write %s\n", path.c_str());
    return false;
  }
  fprintf(f, "{\n  \"name\": \"bench_overlap\",\n  \"mode\": \"%s\",\n",
          fast ? "fast" : "full");
  fprintf(f, "  \"experiments\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    fprintf(f, "    {\n");
    fprintf(f, "      \"algorithm\": \"%s\",\n", r.algorithm.c_str());
    fprintf(f, "      \"dataset\": \"%s\",\n", r.dataset.c_str());
    fprintf(f, "      \"vertices\": %lld,\n",
            static_cast<long long>(r.vertices));
    fprintf(f, "      \"supersteps\": %lld,\n",
            static_cast<long long>(r.supersteps));
    fprintf(f, "      \"serial_iter_sim_seconds\": %.6f,\n",
            r.serial_iter_seconds);
    fprintf(f, "      \"overlapped_iter_sim_seconds\": %.6f,\n",
            r.overlapped_iter_seconds);
    fprintf(f, "      \"serial_total_sim_seconds\": %.6f,\n",
            r.serial_total_seconds);
    fprintf(f, "      \"overlapped_total_sim_seconds\": %.6f,\n",
            r.overlapped_total_seconds);
    fprintf(f, "      \"speedup_iteration\": %.4f\n", r.speedup());
    fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  return true;
}

int Run(const std::string& out_path) {
  const bool fast = getenv("PREGELIX_BENCH_OVERLAP_FAST") != nullptr;
  PrintBanner(
      "Overlapped superstep pipeline vs phase-serial execution",
      "Bu et al., VLDB 2014, Section 7 (out-of-core regime); this "
      "repository's I/O-overlap extension (DESIGN.md Section 19)",
      "per-iteration time strictly no worse with overlap on, with a "
      "material speedup where spilled-run I/O dominates");

  Env env;
  const int64_t btc_vertices = fast ? 6000 : 26000;
  const int64_t web_vertices = fast ? 6000 : 26000;
  Dataset btc = env.Btc("BTC-1.0", btc_vertices, 8.94);
  Dataset web = env.Webmap("Web-1.0", web_vertices, 8.0);

  PrintRow({"experiment", "serial/it", "overlap/it", "serial", "overlap",
            "speedup"});
  std::vector<ExperimentResult> results;
  struct Case {
    Dataset* dataset;
    Algorithm algorithm;
  };
  const Case cases[] = {{&btc, Algorithm::kSssp},
                        {&web, Algorithm::kPageRank},
                        {&btc, Algorithm::kCc}};
  for (const Case& c : cases) {
    ExperimentResult r;
    if (!RunExperiment(env, *c.dataset, c.algorithm, &r)) return 1;
    PrintExperiment(r);
    results.push_back(std::move(r));
  }

  printf("\n(times are simulated seconds from the DESIGN.md cost model; "
         "speedup is serial over overlapped per-iteration time — the "
         "overlap credit is the I/O the pipeline hid under compute)\n");
  if (!WriteJson(out_path, fast, results)) return 1;
  printf("wrote %s\n", out_path.c_str());

  // Self-gate: overlap must never lose to phase-serial — the credit is
  // bounded by the measured I/O, so a ratio below 1.0 means the pipeline
  // (or the cost model) regressed.
  int failures = 0;
  for (const ExperimentResult& r : results) {
    if (!(r.speedup() >= 1.0)) {
      fprintf(stderr,
              "bench_overlap: %s on %s: overlapped %.4fs/it vs serial "
              "%.4fs/it — speedup %.3f below 1.0\n",
              r.algorithm.c_str(), r.dataset.c_str(),
              r.overlapped_iter_seconds, r.serial_iter_seconds, r.speedup());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace pregelix

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "BENCH_overlap.json";
  return pregelix::bench::Run(out);
}
