// Adaptive plan chooser vs the static plan matrix (DESIGN.md "Adaptive
// plan optimization"; the cost-based optimizer the paper's Section 9 leaves
// as future work).
//
// For each (algorithm, dataset) the four static join x group-by plans run
// alongside the all-kAuto adaptive plan. The claim under test: the
// feedback-driven chooser tracks whichever static plan is best for the
// workload — within a few percent on SSSP (where left-outer wins late) and
// PageRank (where full-outer wins throughout) — without being told which.
//
// Emits BENCH_adaptive.json (path = argv[1], default ./BENCH_adaptive.json)
// with per-experiment simulated seconds and the adaptive/best-static ratio;
// tools/bench_smoke.sh runs this binary in PREGELIX_BENCH_ADAPTIVE_FAST
// mode and validates the artifact.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.h"

namespace pregelix {
namespace bench {
namespace {

constexpr int kWorkers = 2;
constexpr size_t kWorkerRam = 1024 * 1024;

struct StaticArm {
  const char* name;
  PregelixPlan plan;
};

std::vector<StaticArm> StaticArms() {
  std::vector<StaticArm> arms;
  for (JoinStrategy join :
       {JoinStrategy::kFullOuter, JoinStrategy::kLeftOuter}) {
    for (GroupByStrategy groupby :
         {GroupByStrategy::kSort, GroupByStrategy::kHashSort}) {
      PregelixPlan plan;
      plan.join = join;
      plan.groupby = groupby;
      arms.push_back({nullptr, plan});
    }
  }
  arms[0].name = "fullouter/sort";
  arms[1].name = "fullouter/hashsort";
  arms[2].name = "leftouter/sort";
  arms[3].name = "leftouter/hashsort";
  return arms;
}

struct ExperimentResult {
  std::string algorithm;
  std::string dataset;
  int64_t vertices = 0;
  std::vector<std::pair<std::string, double>> static_seconds;
  std::string best_static;
  double best_seconds = 0;
  double worst_seconds = 0;
  double adaptive_seconds = 0;
  int64_t adaptive_supersteps = 0;
  double ratio() const { return adaptive_seconds / best_seconds; }
};

/// JSON keys are lowercase ("sssp", "pagerank", "cc"); the display name
/// stays as the harness spells it.
std::string LowerName(Algorithm algorithm) {
  std::string name = AlgorithmName(algorithm);
  for (char& c : name) c = static_cast<char>(std::tolower(c));
  return name;
}

bool RunExperiment(Env& env, const Dataset& dataset, Algorithm algorithm,
                   ExperimentResult* out) {
  out->algorithm = LowerName(algorithm);
  out->dataset = dataset.name;
  out->vertices = dataset.stats.num_vertices;
  for (const StaticArm& arm : StaticArms()) {
    Outcome o = RunPregelix(env, dataset, algorithm,
                            env.Cluster(kWorkers, kWorkerRam), arm.plan);
    if (!o.ok) {
      fprintf(stderr, "bench_adaptive: %s/%s %s failed: %s\n",
              out->algorithm.c_str(), dataset.name.c_str(), arm.name,
              o.fail_reason.c_str());
      return false;
    }
    out->static_seconds.emplace_back(arm.name, o.total_seconds);
    if (out->best_static.empty() || o.total_seconds < out->best_seconds) {
      out->best_static = arm.name;
      out->best_seconds = o.total_seconds;
    }
    if (o.total_seconds > out->worst_seconds) {
      out->worst_seconds = o.total_seconds;
    }
  }
  PregelixPlan adaptive;
  adaptive.join = JoinStrategy::kAuto;
  adaptive.groupby = GroupByStrategy::kAuto;
  adaptive.connector = GroupByConnector::kAuto;
  adaptive.storage = VertexStorage::kAuto;
  Outcome o = RunPregelix(env, dataset, algorithm,
                          env.Cluster(kWorkers, kWorkerRam), adaptive);
  if (!o.ok) {
    fprintf(stderr, "bench_adaptive: %s/%s adaptive failed: %s\n",
            out->algorithm.c_str(), dataset.name.c_str(),
            o.fail_reason.c_str());
    return false;
  }
  out->adaptive_seconds = o.total_seconds;
  out->adaptive_supersteps = o.supersteps;
  return true;
}

void PrintExperiment(const ExperimentResult& r) {
  PrintRow({r.algorithm + " " + r.dataset, Seconds(r.static_seconds[0].second),
            Seconds(r.static_seconds[1].second),
            Seconds(r.static_seconds[2].second),
            Seconds(r.static_seconds[3].second), Seconds(r.adaptive_seconds),
            Ratio3(r.ratio())});
}

bool WriteJson(const std::string& path, bool fast,
               const std::vector<ExperimentResult>& results) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "bench_adaptive: cannot write %s\n", path.c_str());
    return false;
  }
  fprintf(f, "{\n  \"name\": \"bench_adaptive\",\n  \"mode\": \"%s\",\n",
          fast ? "fast" : "full");
  fprintf(f, "  \"experiments\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    fprintf(f, "    {\n");
    fprintf(f, "      \"algorithm\": \"%s\",\n", r.algorithm.c_str());
    fprintf(f, "      \"dataset\": \"%s\",\n", r.dataset.c_str());
    fprintf(f, "      \"vertices\": %lld,\n",
            static_cast<long long>(r.vertices));
    fprintf(f, "      \"static_sim_seconds\": {");
    for (size_t j = 0; j < r.static_seconds.size(); ++j) {
      fprintf(f, "%s\"%s\": %.6f", j == 0 ? "" : ", ",
              r.static_seconds[j].first.c_str(), r.static_seconds[j].second);
    }
    fprintf(f, "},\n");
    fprintf(f, "      \"best_static\": \"%s\",\n", r.best_static.c_str());
    fprintf(f, "      \"best_static_sim_seconds\": %.6f,\n", r.best_seconds);
    fprintf(f, "      \"worst_static_sim_seconds\": %.6f,\n",
            r.worst_seconds);
    fprintf(f, "      \"adaptive_sim_seconds\": %.6f,\n", r.adaptive_seconds);
    fprintf(f, "      \"adaptive_supersteps\": %lld,\n",
            static_cast<long long>(r.adaptive_supersteps));
    fprintf(f, "      \"ratio_adaptive_vs_best\": %.4f\n", r.ratio());
    fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  return true;
}

int Run(const std::string& out_path) {
  const bool fast = getenv("PREGELIX_BENCH_ADAPTIVE_FAST") != nullptr;
  PrintBanner(
      "Adaptive plan chooser vs static plan matrix",
      "Bu et al., VLDB 2014, Section 9 (future work: cost-based "
      "optimization); this repository's feedback-driven extension",
      "all-kAuto within a few percent of the best static join x group-by "
      "plan on SSSP and PageRank, never near the worst");

  Env env;
  const int64_t btc_vertices = fast ? 6000 : 26000;
  const int64_t web_vertices = fast ? 6000 : 26000;
  Dataset btc = env.Btc("BTC-1.0", btc_vertices, 8.94);
  Dataset web = env.Webmap("Web-1.0", web_vertices, 8.0);

  PrintRow({"experiment", "fo/sort", "fo/hash", "lo/sort", "lo/hash",
            "adaptive", "ad/best"});
  std::vector<ExperimentResult> results;
  struct Case {
    Dataset* dataset;
    Algorithm algorithm;
  };
  const Case cases[] = {{&btc, Algorithm::kSssp},
                        {&web, Algorithm::kPageRank},
                        {&btc, Algorithm::kCc}};
  for (const Case& c : cases) {
    ExperimentResult r;
    if (!RunExperiment(env, *c.dataset, c.algorithm, &r)) return 1;
    PrintExperiment(r);
    results.push_back(std::move(r));
  }

  printf("\n(times are simulated seconds from the DESIGN.md cost model; "
         "ad/best is adaptive over the best static plan — the acceptance "
         "bar for SSSP and PageRank is 1.05)\n");
  if (!WriteJson(out_path, fast, results)) return 1;
  printf("wrote %s\n", out_path.c_str());

  // The bench itself enforces the headline claim so a perf regression in
  // the chooser fails loudly rather than silently shipping a worse JSON.
  int failures = 0;
  for (const ExperimentResult& r : results) {
    if (r.algorithm == "cc") continue;  // reported, not gated
    if (r.ratio() > 1.05) {
      fprintf(stderr,
              "bench_adaptive: %s on %s: adaptive %.3fs vs best static "
              "(%s) %.3fs — ratio %.3f exceeds 1.05\n",
              r.algorithm.c_str(), r.dataset.c_str(), r.adaptive_seconds,
              r.best_static.c_str(), r.best_seconds, r.ratio());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace pregelix

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "BENCH_adaptive.json";
  return pregelix::bench::Run(out);
}
