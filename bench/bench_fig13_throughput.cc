// Reproduces Figure 13: multi-user throughput (jobs per hour) as the number
// of concurrent PageRank jobs grows, on four Webmap sizes.
//
// Paper shape:
//   (a) X-Small (always in-memory): jph RISES with concurrency (CPU
//       utilization improves).
//   (b) Small (in-memory -> minor spilling): jph still rises slightly.
//   (c) Medium (concurrency exhausts memory): jph DROPS sharply once
//       concurrent jobs force significant I/O.
//   (d) Large (always disk-based): jph rises again with concurrency (CPU
//       overlaps the ever-present I/O).
// The baselines cannot sustain concurrent jobs at all in the paper; here
// the jobs share each worker's buffer cache, so the same mechanism
// (cache pressure from neighbors) produces the Medium-size collapse.
//
// Concurrent jobs genuinely run on concurrent threads against one shared
// SimulatedCluster; the makespan uses the overlapped cost model (the
// bottleneck resource dominates when jobs overlap).

#include <mutex>
#include <thread>
#include <vector>

#include "algorithms/pagerank.h"
#include "bench/harness.h"
#include "common/logging.h"
#include "dataflow/cluster.h"

namespace pregelix {
namespace bench {
namespace {

constexpr int kWorkers = 4;
constexpr size_t kWorkerRam = 1024 * 1024;

/// Runs `concurrency` identical PageRank jobs at once; returns jobs/hour.
double MeasureJph(Env& env, const Dataset& dataset, int concurrency) {
  SimulatedCluster cluster(env.Cluster(kWorkers, kWorkerRam));
  const std::vector<MetricsSnapshot> before = cluster.SnapshotAll();

  int64_t total_supersteps = 0;
  std::mutex mutex;
  std::vector<std::thread> threads;
  for (int j = 0; j < concurrency; ++j) {
    threads.emplace_back([&env, &cluster, &dataset, &mutex,
                          &total_supersteps]() {
      PregelixRuntime runtime(&cluster, &env.dfs());
      PageRankProgram program(5);
      PageRankProgram::Adapter adapter(&program);
      PregelixJobConfig job;
      job.name = "jph";
      job.input_dir = dataset.dir;
      JobResult result;
      Status s = runtime.Run(&adapter, job, &result);
      PREGELIX_CHECK(s.ok()) << s.ToString();
      std::lock_guard<std::mutex> lock(mutex);
      total_supersteps += result.supersteps;
    });
  }
  for (std::thread& t : threads) t.join();

  const std::vector<MetricsSnapshot> after = cluster.SnapshotAll();
  CostModelParams params;
  // Pipeline-utilization bound: a single job serializes its own CPU, disk
  // and network phases (additive); k concurrent jobs overlap one job's CPU
  // with another's I/O, down to the bottleneck resource. The makespan is
  // max(bottleneck-resource total, additive total / k).
  double additive = 0;
  double bottleneck = 0;
  for (size_t w = 0; w < before.size(); ++w) {
    const MetricsSnapshot delta = after[w] - before[w];
    additive = std::max(additive, SimulatedWorkerSeconds(delta, params));
    bottleneck =
        std::max(bottleneck, OverlappedWorkerSeconds(delta, params));
  }
  double makespan =
      std::max(bottleneck, additive / static_cast<double>(concurrency));
  // Barriers do not overlap across jobs within one master, so they add up.
  makespan += static_cast<double>(total_supersteps) *
              (params.barrier_sec + params.per_worker_coord_sec * kWorkers);
  return 3600.0 * concurrency / makespan;
}

void Run() {
  Env env;
  PrintBanner(
      "Figure 13: throughput (jobs/hour) vs number of concurrent PageRank "
      "jobs",
      "Bu et al., VLDB 2014, Figure 13 (a)(b)(c)(d)",
      "jph rises with concurrency for X-Small/Small/Large; it collapses for "
      "Medium where concurrency pushes the working set out of memory");

  const std::vector<std::pair<std::string, int64_t>> sizes = {
      {"(a) X-Small (in-memory at any concurrency)", 1500},
      {"(b) Small (minor spilling when concurrent)", 2000},
      {"(c) Medium (concurrency exhausts memory)", 4000},
      {"(d) Large (always disk-based)", 26000},
  };
  for (const auto& [label, vertices] : sizes) {
    Dataset dataset = env.Webmap("jph-" + std::to_string(vertices), vertices,
                                 8.0);
    printf("\n--- %s (size/RAM = %s) ---\n", label.c_str(),
           Ratio3(dataset.Ratio(static_cast<uint64_t>(kWorkers) *
                                kWorkerRam))
               .c_str());
    PrintRow({"concurrent", "jobs/hour"});
    for (int concurrency = 1; concurrency <= 3; ++concurrency) {
      const double jph = MeasureJph(env, dataset, concurrency);
      char buf[32];
      snprintf(buf, sizeof(buf), "%.1f", jph);
      PrintRow({std::to_string(concurrency), buf});
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace pregelix

int main() {
  pregelix::bench::Run();
  return 0;
}
