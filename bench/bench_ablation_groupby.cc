// Ablation: the four parallel group-by strategies of Figure 7 / the m-to-n
// connector comparison of the early technical report ([13] Figure 9, cited
// in Section 7.5 of the paper).
//
//   Sort-Groupby-M-to-N-Partitioning        (pipelined, receiver re-groups)
//   HashSort-Groupby-M-to-N-Partitioning    (pipelined, receiver re-groups)
//   Sort-Groupby-M-to-N-Merge-Partitioning  (materializing, preclustered)
//   HashSort-Groupby-M-to-N-Merge-Partitioning
//
// Paper shape: the merging connector can be slightly faster on small
// clusters (one-pass preclustered receiver) but loses as the cluster grows
// (receiver-side stream coordination / materialization); HashSort beats
// Sort when the number of distinct message destinations is small.

#include <vector>

#include "bench/harness.h"

namespace pregelix {
namespace bench {
namespace {

constexpr size_t kWorkerRam = 1024 * 1024;

void Run() {
  Env env;
  PrintBanner(
      "Ablation: four group-by strategies (Figure 7; report [13] Fig. 9)",
      "Bu et al., VLDB 2014, Sections 5.3.1 and 7.5",
      "merging connector competitive on the small cluster, worse on the "
      "bigger one; strategy choice matters more out-of-core");

  struct Strategy {
    const char* name;
    GroupByStrategy groupby;
    GroupByConnector connector;
  };
  const std::vector<Strategy> strategies = {
      {"Sort+Partition", GroupByStrategy::kSort, GroupByConnector::kUnmerged},
      {"HashSort+Partition", GroupByStrategy::kHashSort,
       GroupByConnector::kUnmerged},
      {"Sort+Merge", GroupByStrategy::kSort, GroupByConnector::kMerged},
      {"HashSort+Merge", GroupByStrategy::kHashSort,
       GroupByConnector::kMerged},
  };

  for (const auto& [label, vertices] :
       std::vector<std::pair<std::string, int64_t>>{
           {"in-memory Webmap", 5000}, {"out-of-core Webmap", 25000}}) {
    Dataset dataset =
        env.Webmap("gb-" + std::to_string(vertices), vertices, 8.0);
    for (int workers : {2, 6}) {
      printf("\n--- PageRank, %s, %d workers ---\n", label.c_str(), workers);
      PrintRow({"strategy", "total", "avg-iteration"}, 22);
      for (const Strategy& strategy : strategies) {
        PregelixPlan plan;
        plan.groupby = strategy.groupby;
        plan.connector = strategy.connector;
        Outcome outcome =
            RunPregelix(env, dataset, Algorithm::kPageRank,
                        env.Cluster(workers, kWorkerRam), plan);
        PrintRow({strategy.name, Seconds(outcome.total_seconds),
                  Seconds(outcome.avg_iteration_seconds)},
                 22);
      }
    }
  }
}

}  // namespace
}  // namespace bench
}  // namespace pregelix

int main() {
  pregelix::bench::Run();
  return 0;
}
