// Microbenchmarks (google-benchmark) for the dataflow substrate: frame
// encode/decode, the group-by family, external sorting, the k-way merge
// (loser tree, varying fan-in), and the normalized-key comparison kernel.
// Supporting numbers for the operator choices of paper Sections 4 and
// 5.3.1, and the before/after record in BENCH_kernels.json (DESIGN.md §13).
//
// Machine-readable output: run with
//   --benchmark_out=BENCH_kernels.json --benchmark_out_format=json
// (the `bench_smoke` ctest target does exactly this for one iteration).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "common/random.h"
#include "common/serde.h"
#include "common/slice.h"
#include "common/temp_dir.h"
#include "dataflow/frame.h"
#include "dataflow/ops/sort.h"

namespace pregelix {
namespace {

GroupCombiner SumCombiner() {
  GroupCombiner c;
  c.init = [](const Slice& payload, std::string* acc) {
    acc->assign(payload.data(), payload.size());
  };
  c.step = [](const Slice& payload, std::string* acc) {
    const double sum = DecodeDouble(acc->data()) + DecodeDouble(payload.data());
    acc->clear();
    PutDouble(acc, sum);
  };
  return c;
}

void BM_FrameAppend(benchmark::State& state) {
  FrameTupleAppender appender(32 * 1024, 2);
  const std::string key = OrderedKeyI64(42);
  const std::string payload(16, 'p');
  const Slice fields[2] = {Slice(key), Slice(payload)};
  for (auto _ : state) {
    if (!appender.Append(fields)) {
      benchmark::DoNotOptimize(appender.Take());
      appender.Append(fields);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameAppend);

void BM_FrameFieldAccess(benchmark::State& state) {
  FrameTupleAppender appender(32 * 1024, 2);
  const std::string key = OrderedKeyI64(42);
  const std::string payload(16, 'p');
  const Slice fields[2] = {Slice(key), Slice(payload)};
  while (appender.Append(fields)) {
  }
  const std::string frame = appender.Take();
  FrameTupleAccessor accessor(2);
  accessor.Reset(Slice(frame));
  const int n = accessor.tuple_count();
  int t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(accessor.field(t, 1));
    t = (t + 1) % n;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameFieldAccess);

void GroupByBench(benchmark::State& state, bool hash, int64_t distinct) {
  TempDir dir("micro-gb");
  for (auto _ : state) {
    SortConfig config;
    config.memory_budget_bytes = 4 << 20;
    config.frame_size = 32 * 1024;
    config.scratch_prefix = dir.path() + "/gb";
    Random rnd(7);
    std::string payload;
    const int n = 100000;
    auto feed = [&](auto& grouper) {
      for (int i = 0; i < n; ++i) {
        const std::string key =
            OrderedKeyI64(static_cast<int64_t>(rnd.Uniform(distinct)));
        payload.clear();
        PutDouble(&payload, 1.0);
        const Slice fields[2] = {Slice(key), Slice(payload)};
        PREGELIX_CHECK(grouper.Add(fields).ok());
      }
      int64_t groups = 0;
      PREGELIX_CHECK(grouper
                         .Finish([&](std::span<const Slice>) {
                           ++groups;
                           return Status::OK();
                         })
                         .ok());
      benchmark::DoNotOptimize(groups);
    };
    if (hash) {
      HashSortGrouper grouper(config, SumCombiner());
      feed(grouper);
    } else {
      ExternalSortGrouper grouper(config, SumCombiner());
      feed(grouper);
    }
    state.SetItemsProcessed(state.items_processed() + n);
  }
}

void BM_SortGroupByFewGroups(benchmark::State& state) {
  GroupByBench(state, /*hash=*/false, /*distinct=*/256);
}
BENCHMARK(BM_SortGroupByFewGroups)->Unit(benchmark::kMillisecond);

void BM_HashSortGroupByFewGroups(benchmark::State& state) {
  // The paper: HashSort wins when the number of groups is small.
  GroupByBench(state, /*hash=*/true, /*distinct=*/256);
}
BENCHMARK(BM_HashSortGroupByFewGroups)->Unit(benchmark::kMillisecond);

void BM_SortGroupByManyGroups(benchmark::State& state) {
  GroupByBench(state, /*hash=*/false, /*distinct=*/100000);
}
BENCHMARK(BM_SortGroupByManyGroups)->Unit(benchmark::kMillisecond);

void BM_HashSortGroupByManyGroups(benchmark::State& state) {
  GroupByBench(state, /*hash=*/true, /*distinct=*/100000);
}
BENCHMARK(BM_HashSortGroupByManyGroups)->Unit(benchmark::kMillisecond);

void BM_ExternalSortSpilling(benchmark::State& state) {
  TempDir dir("micro-sort");
  for (auto _ : state) {
    SortConfig config;
    config.memory_budget_bytes = 256 * 1024;  // forces spills
    config.frame_size = 32 * 1024;
    config.scratch_prefix = dir.path() + "/s";
    ExternalSortGrouper sorter(config);
    Random rnd(8);
    const int n = 100000;
    const std::string payload(16, 'p');
    for (int i = 0; i < n; ++i) {
      const std::string key =
          OrderedKeyI64(static_cast<int64_t>(rnd.Next() & 0x7fffffff));
      const Slice fields[2] = {Slice(key), Slice(payload)};
      PREGELIX_CHECK(sorter.Add(fields).ok());
    }
    int64_t out = 0;
    PREGELIX_CHECK(sorter
                       .Finish([&](std::span<const Slice>) {
                         ++out;
                         return Status::OK();
                       })
                       .ok());
    benchmark::DoNotOptimize(out);
    state.SetItemsProcessed(state.items_processed() + n);
  }
}
BENCHMARK(BM_ExternalSortSpilling)->Unit(benchmark::kMillisecond);

// K-way merge through the loser tree: a tiny batch budget manufactures
// dozens of sorted runs, then Finish (the timed part) merges them at the
// configured fan-in. Fan-ins above the run count measure one wide pass;
// small fan-ins add intermediate passes. Feeding is untimed.
void BM_MergeFanin(benchmark::State& state) {
  const int fanin = static_cast<int>(state.range(0));
  TempDir dir("micro-merge");
  const int n = 100000;
  for (auto _ : state) {
    state.PauseTiming();
    SortConfig config;
    config.memory_budget_bytes = 64 * 1024;  // ~40 runs of ~2.5k tuples
    config.frame_size = 32 * 1024;
    config.scratch_prefix = dir.path() + "/m";
    config.merge_fanin = fanin;
    ExternalSortGrouper sorter(config);
    Random rnd(11);
    const std::string payload(16, 'p');
    for (int i = 0; i < n; ++i) {
      const std::string key =
          OrderedKeyI64(static_cast<int64_t>(rnd.Next() & 0xffffff));
      const Slice fields[2] = {Slice(key), Slice(payload)};
      PREGELIX_CHECK(sorter.Add(fields).ok());
    }
    state.ResumeTiming();
    int64_t out = 0;
    PREGELIX_CHECK(sorter
                       .Finish([&](std::span<const Slice>) {
                         ++out;
                         return Status::OK();
                       })
                       .ok());
    benchmark::DoNotOptimize(out);
    state.SetItemsProcessed(state.items_processed() + n);
  }
}
BENCHMARK(BM_MergeFanin)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMillisecond);

// The comparison kernel in isolation: sorting an index array over 64k
// 8-byte ordered keys with the plain Slice comparator vs. the cached
// normalized-prefix comparator used by DrainBatchSorted. The spread between
// the two is the per-comparison saving every batch sort gets.
void KeySortBench(benchmark::State& state, bool normalized) {
  const int n = 64 * 1024;
  Random rnd(12);
  std::string pool;
  std::vector<uint64_t> norms;
  pool.reserve(8u * n);
  for (int i = 0; i < n; ++i) {
    const std::string key =
        OrderedKeyI64(static_cast<int64_t>(rnd.Next() & 0xffffffff));
    pool.append(key);
    norms.push_back(NormalizedKeyPrefix(Slice(key)));
  }
  auto key_at = [&](uint32_t i) { return Slice(pool.data() + 8u * i, 8); };
  std::vector<uint32_t> order(n);
  for (auto _ : state) {
    std::iota(order.begin(), order.end(), 0u);
    if (normalized) {
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        if (norms[a] != norms[b]) return norms[a] < norms[b];
        return key_at(a).compare(key_at(b)) < 0;
      });
    } else {
      std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        return key_at(a).compare(key_at(b)) < 0;
      });
    }
    benchmark::DoNotOptimize(order.data());
    state.SetItemsProcessed(state.items_processed() + n);
  }
}

void BM_KeySortSliceCompare(benchmark::State& state) {
  KeySortBench(state, /*normalized=*/false);
}
BENCHMARK(BM_KeySortSliceCompare)->Unit(benchmark::kMillisecond);

void BM_KeySortNormalizedPrefix(benchmark::State& state) {
  KeySortBench(state, /*normalized=*/true);
}
BENCHMARK(BM_KeySortNormalizedPrefix)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace pregelix

BENCHMARK_MAIN();
