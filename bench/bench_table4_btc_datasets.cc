// Reproduces Table 4: "The BTC dataset (X-Small) and its samples/scale-ups."
//
// The paper's base dataset is the Billion Triple Challenge 2009 graph
// (X-Small); Small/Medium/Large were produced by deep-copying the graph and
// renumbering the duplicate vertices, and Tiny is a sample. We generate a
// BTC-like undirected graph at the X-Small scale (matching the constant
// ~8.94 average degree) and apply exactly the same copy+renumber scale-up.

#include <cstdio>
#include <vector>

#include "bench/harness.h"

namespace pregelix {
namespace bench {
namespace {

struct PaperRow {
  const char* name;
  const char* size;
  const char* vertices;
  const char* edges;
  double avg_degree;
};

constexpr PaperRow kPaperRows[] = {
    {"Large", "66.48GB", "690,621,916", "6,177,086,016", 8.94},
    {"Medium", "49.86GB", "517,966,437", "4,632,814,512", 8.94},
    {"Small", "33.24GB", "345,310,958", "3,088,543,008", 8.94},
    {"X-Small", "16.62GB", "172,655,479", "1,544,271,504", 8.94},
    {"Tiny", "7.04GB", "107,706,280", "607,509,766", 5.64},
};

void Run() {
  Env env;
  PrintBanner("Table 4: the BTC dataset and its samples/scale-ups",
              "Bu et al., VLDB 2014, Table 4",
              "Large/Medium/Small are exact 4x/3x/2x copies of X-Small "
              "(identical 8.94 average degree); Tiny is sparser (5.64)");

  Dataset xsmall = env.Btc("BTC-X-Small", 4000, 8.94);
  Dataset small = env.ScaleUp(xsmall, "BTC-Small", 2);
  Dataset medium = env.ScaleUp(xsmall, "BTC-Medium", 3);
  Dataset large = env.ScaleUp(xsmall, "BTC-Large", 4);
  Dataset tiny = env.Btc("BTC-Tiny", 2500, 5.64);
  const std::vector<Dataset> rows = {large, medium, small, xsmall, tiny};

  PrintRow({"Name", "Size", "#Vertices", "#Edges", "AvgDeg",
            "| paper: Size", "#Vertices", "#Edges", "AvgDeg"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const GraphStats& s = rows[i].stats;
    const PaperRow& p = kPaperRows[i];
    char size[32], deg[16], pdeg[16];
    snprintf(size, sizeof(size), "%.2fMB",
             static_cast<double>(s.size_bytes) / (1 << 20));
    snprintf(deg, sizeof(deg), "%.2f", s.avg_degree());
    snprintf(pdeg, sizeof(pdeg), "%.2f", p.avg_degree);
    PrintRow({rows[i].name, size, std::to_string(s.num_vertices),
              std::to_string(s.num_edges), deg, std::string("| ") + p.size,
              p.vertices, p.edges, pdeg});
  }
}

}  // namespace
}  // namespace bench
}  // namespace pregelix

int main() {
  pregelix::bench::Run();
  return 0;
}
