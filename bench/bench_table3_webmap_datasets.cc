// Reproduces Table 3: "The Webmap dataset (Large) and its samples."
//
// The paper took the Yahoo! Webmap (1.4B vertices) and produced four
// down-samples with a random-walk graph sampler built on Pregelix. We
// generate a laptop-scale Webmap-like graph (same degree profile) and
// down-sample it with the same random-walk technique, printing our measured
// row next to the paper's (scaled ~44,000x smaller in vertex count).

#include <cstdio>
#include <vector>

#include "bench/harness.h"

namespace pregelix {
namespace bench {
namespace {

struct PaperRow {
  const char* name;
  const char* size;
  const char* vertices;
  const char* edges;
  double avg_degree;
};

constexpr PaperRow kPaperRows[] = {
    {"Large", "71.82GB", "1,413,511,390", "8,050,112,169", 5.69},
    {"Medium", "31.78GB", "709,673,622", "2,947,603,924", 4.15},
    {"Small", "14.05GB", "143,060,913", "1,470,129,872", 10.27},
    {"X-Small", "9.99GB", "75,605,388", "1,082,093,483", 14.31},
    {"Tiny", "2.93GB", "25,370,077", "318,823,779", 12.02},
};

void Run() {
  Env env;
  PrintBanner("Table 3: the Webmap dataset and its samples",
              "Bu et al., VLDB 2014, Table 3",
              "sample sizes shrink like the paper's (2-7x steps). Note: "
              "induced-subgraph random-walk sampling thins the tail at "
              "laptop scale, so sample degrees drop; the paper's "
              "planet-scale hubs kept theirs at 10-14");

  // Laptop-scale Large (~1/44,000 of the paper's vertex count), then
  // random-walk samples at the paper's relative sizes.
  Dataset large = env.Webmap("Webmap-Large", 32000, 5.69);
  std::vector<Dataset> rows = {large};
  rows.push_back(env.Sample(large, "Webmap-Medium", 16000));
  rows.push_back(env.Sample(large, "Webmap-Small", 3200));
  rows.push_back(env.Sample(large, "Webmap-X-Small", 1700));
  rows.push_back(env.Sample(large, "Webmap-Tiny", 570));

  PrintRow({"Name", "Size", "#Vertices", "#Edges", "AvgDeg",
            "| paper: Size", "#Vertices", "#Edges", "AvgDeg"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const GraphStats& s = rows[i].stats;
    const PaperRow& p = kPaperRows[i];
    char size[32], deg[16], pdeg[16];
    snprintf(size, sizeof(size), "%.2fMB",
             static_cast<double>(s.size_bytes) / (1 << 20));
    snprintf(deg, sizeof(deg), "%.2f", s.avg_degree());
    snprintf(pdeg, sizeof(pdeg), "%.2f", p.avg_degree);
    PrintRow({rows[i].name, size, std::to_string(s.num_vertices),
              std::to_string(s.num_edges), deg, std::string("| ") + p.size,
              p.vertices, p.edges, pdeg});
  }
}

}  // namespace
}  // namespace bench
}  // namespace pregelix

int main() {
  pregelix::bench::Run();
  return 0;
}
