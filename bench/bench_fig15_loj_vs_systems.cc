// Reproduces Figure 15: the Pregelix left-outer-join plan versus the other
// systems for SSSP on BTC samples, on two cluster scales.
//
// Paper shape: with its left outer join plan, Pregelix's average iteration
// time for SSSP is up to 15x better than Giraph and up to 35x better than
// GraphLab (and the others fail outright on the larger samples). This is
// the headline "physical flexibility" result: no process-centric system
// can skip the full vertex scan, because none has an index.

#include <vector>

#include "bench/harness.h"

namespace pregelix {
namespace bench {
namespace {

constexpr size_t kWorkerRam = 4 * 1024 * 1024;

void RunScale(Env& env, int workers, const char* title) {
  printf("\n--- %s (%d workers) ---\n", title, workers);
  std::vector<Dataset> datasets;
  for (const auto& [suffix, vertices] :
       std::vector<std::pair<std::string, int64_t>>{{"-a", 6000},
                                                    {"-b", 12000},
                                                    {"-c", 24000},
                                                    {"-d", 48000}}) {
    datasets.push_back(env.Btc("F15" + std::string(suffix) +
                                   std::to_string(workers),
                               vertices, 8.94));
  }
  PrintRow({"dataset", "size/RAM", "Pregelix-LOJ", "Giraph-mem", "GraphLab",
            "Hama", "LOJ vs Giraph"});
  for (const Dataset& dataset : datasets) {
    PregelixPlan plan;
    plan.join = JoinStrategy::kLeftOuter;
    plan.groupby = GroupByStrategy::kHashSort;  // Figure 9's hints
    Outcome loj = RunPregelix(env, dataset, Algorithm::kSssp,
                              env.Cluster(workers, kWorkerRam), plan);
    Outcome giraph = RunBaseline(env, dataset, Algorithm::kSssp,
                                 GiraphMemOptions(), workers, kWorkerRam);
    Outcome graphlab = RunBaseline(env, dataset, Algorithm::kSssp,
                                   GraphLabOptions(), workers, kWorkerRam);
    Outcome hama = RunBaseline(env, dataset, Algorithm::kSssp, HamaOptions(),
                               workers, kWorkerRam);
    char speedup[32];
    if (giraph.ok) {
      snprintf(speedup, sizeof(speedup), "%.1fx",
               giraph.avg_iteration_seconds / loj.avg_iteration_seconds);
    } else {
      snprintf(speedup, sizeof(speedup), "inf (G fails)");
    }
    auto cell = [](const Outcome& o) {
      return o.ok ? Seconds(o.avg_iteration_seconds) : std::string("FAIL");
    };
    PrintRow({dataset.name,
              Ratio3(dataset.Ratio(static_cast<uint64_t>(workers) *
                                   kWorkerRam)),
              Seconds(loj.avg_iteration_seconds), cell(giraph),
              cell(graphlab), cell(hama), speedup});
  }
}

void Run() {
  Env env;
  PrintBanner(
      "Figure 15: Pregelix left outer join plan vs other systems (SSSP)",
      "Bu et al., VLDB 2014, Figure 15 (a)(b)",
      "Pregelix-LOJ per-iteration time is an order of magnitude below "
      "Giraph/GraphLab/Hama (paper: up to 15x vs Giraph, 35x vs GraphLab), "
      "and only Pregelix survives the larger samples");

  RunScale(env, 3, "(a) 24-machine-scale cluster");
  RunScale(env, 4, "(b) 32-machine-scale cluster");
}

}  // namespace
}  // namespace bench
}  // namespace pregelix

int main() {
  pregelix::bench::Run();
  return 0;
}
