// Ablation: B-tree versus LSM B-tree vertex storage (paper Section 5.2).
//
// Paper guidance: "A B-tree index performs well on jobs that frequently
// update vertex data in-place, e.g., PageRank. An LSM B-tree index performs
// well when the size of vertex data is changed drastically from superstep
// to superstep, or when the algorithm performs frequent graph mutations,
// e.g., the path merging algorithm in genome assemblers."
//
//   (a) PageRank (fixed-size in-place updates)      -> expect B-tree wins
//   (b) a path-merging-style churn workload whose vertex values grow
//       drastically each superstep and which adds/removes vertices
//       (the genome assembler pattern)              -> expect LSM wins

#include <string>
#include <vector>

#include "bench/harness.h"
#include "dataflow/cluster.h"
#include "pregel/typed.h"

namespace pregelix {
namespace bench {
namespace {

constexpr int kWorkers = 2;
constexpr size_t kWorkerRam = 1024 * 1024;

/// Genome-assembler-like churn: every superstep each live vertex doubles
/// its value payload (merged path sequence), removes one neighbor vertex
/// from the graph and re-adds it under a shifted id — constant structural
/// churn plus drastic value growth.
class PathChurnProgram : public TypedVertexProgram<std::string, Empty, int64_t> {
 public:
  using Adapter = TypedProgramAdapter<std::string, Empty, int64_t>;

  explicit PathChurnProgram(int rounds) : rounds_(rounds) {}

  void Compute(VertexT& vertex, MessageIterator<int64_t>& messages) override {
    if (vertex.superstep() == 1) {
      vertex.set_value(std::string(16, 'A'));
    }
    if (vertex.superstep() <= rounds_) {
      // Drastic size change: the "merged path" doubles.
      std::string merged = vertex.value() + vertex.value();
      vertex.set_value(merged);
      // Structural churn on original vertices only.
      if (vertex.id() < 100000 && vertex.id() % 7 == 0 &&
          !vertex.edges().empty()) {
        vertex.RemoveVertex(vertex.edges()[0].dst);
        vertex.AddVertex(vertex.id() + 1000000 * vertex.superstep(),
                         std::string(8, 'T'));
      }
      // Keep the wave alive.
      if (!vertex.edges().empty()) {
        vertex.SendMessage(vertex.edges()[0].dst, vertex.id());
      }
    }
    vertex.VoteToHalt();
  }

  std::string FormatValue(int64_t, const std::string& value) const override {
    return std::to_string(value.size());
  }

 private:
  int rounds_;
};

double RunChurn(Env& env, const Dataset& dataset, VertexStorage storage) {
  SimulatedCluster cluster(env.Cluster(kWorkers, kWorkerRam));
  PregelixRuntime runtime(&cluster, &env.dfs());
  PathChurnProgram program(5);
  PathChurnProgram::Adapter adapter(&program);
  PregelixJobConfig job;
  job.name = "churn";
  job.input_dir = dataset.dir;
  job.storage = storage;
  job.join = JoinStrategy::kLeftOuter;
  JobResult result;
  Status s = runtime.Run(&adapter, job, &result);
  PREGELIX_CHECK(s.ok()) << s.ToString();
  return result.supersteps_sim_seconds;
}

void Run() {
  Env env;
  PrintBanner("Ablation: B-tree vs LSM B-tree vertex storage",
              "Bu et al., VLDB 2014, Sections 4 and 5.2",
              "B-tree wins for in-place updates (PageRank); LSM wins under "
              "drastic size changes + graph mutations (genome path merging)");

  Dataset web = env.Webmap("st-web", 15000, 8.0);
  printf("\n--- (a) PageRank (stable-size in-place updates) ---\n");
  PrintRow({"storage", "total", "avg-iteration"}, 18);
  for (const auto& [name, storage] :
       std::vector<std::pair<std::string, VertexStorage>>{
           {"B-tree", VertexStorage::kBTree},
           {"LSM B-tree", VertexStorage::kLsmBTree}}) {
    PregelixPlan plan;
    plan.storage = storage;
    Outcome outcome = RunPregelix(env, web, Algorithm::kPageRank,
                                  env.Cluster(kWorkers, kWorkerRam), plan);
    PrintRow({name, Seconds(outcome.total_seconds),
              Seconds(outcome.avg_iteration_seconds)},
             18);
  }

  Dataset churn = env.Btc("st-churn", 8000, 6.0);
  printf("\n--- (b) path-merging churn (values double each superstep, "
         "vertices added/removed) ---\n");
  PrintRow({"storage", "superstep-total"}, 18);
  const double btree = RunChurn(env, churn, VertexStorage::kBTree);
  const double lsm = RunChurn(env, churn, VertexStorage::kLsmBTree);
  PrintRow({"B-tree", Seconds(btree)}, 18);
  PrintRow({"LSM B-tree", Seconds(lsm)}, 18);
  char ratio[32];
  snprintf(ratio, sizeof(ratio), "%.2fx", btree / lsm);
  printf("LSM advantage under churn: %s\n", ratio);
}

}  // namespace
}  // namespace bench
}  // namespace pregelix

int main() {
  pregelix::bench::Run();
  return 0;
}
