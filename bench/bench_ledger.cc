// Time-ledger overhead: the same jobs with the worker time ledger on
// (the default) and off (`--time-ledger=off`), DESIGN.md §20. The ledger
// reads the steady clock only at category boundaries — attach/detach,
// guard push/pop, reattribution — never in per-tuple loops, so turning
// it on must not move the numbers.
//
// Two gates, one hard and one informational:
//   * simulated seconds (the DESIGN.md cost model) must agree within 2%
//     between the arms — the ledger observes execution, it must never
//     steer it (in practice the delta is 0: the cost model never reads
//     the ledger);
//   * wall-clock overhead is printed and recorded in the JSON but not
//     gated — wall time on a shared CI box is too noisy for a hard bar,
//     the artifact keeps the trajectory honest instead.
//
// Emits BENCH_ledger.json (path = argv[1], default ./BENCH_ledger.json);
// tools/bench_smoke.sh runs this binary in PREGELIX_BENCH_LEDGER_FAST mode
// and validates the artifact.

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/time_ledger.h"

namespace pregelix {
namespace bench {
namespace {

constexpr int kWorkers = 2;
constexpr size_t kWorkerRam = 1024 * 1024;
constexpr double kSimDeltaGate = 0.02;  // |on/off - 1| <= 2% (DESIGN.md §20)

struct ExperimentResult {
  std::string algorithm;
  std::string dataset;
  int64_t vertices = 0;
  int64_t supersteps = 0;
  double off_sim_seconds = 0;
  double on_sim_seconds = 0;
  double off_wall_seconds = 0;
  double on_wall_seconds = 0;
  int64_t attributed_ns = 0;    // ledger-on arm: Σ category time
  int64_t unattributed_ns = 0;  // ledger-on arm: conservation residue
  double sim_delta() const {
    return std::abs(on_sim_seconds / off_sim_seconds - 1.0);
  }
  double wall_ratio() const { return on_wall_seconds / off_wall_seconds; }
};

std::string LowerName(Algorithm algorithm) {
  std::string name = AlgorithmName(algorithm);
  for (char& c : name) c = static_cast<char>(std::tolower(c));
  return name;
}

bool RunExperiment(Env& env, const Dataset& dataset, Algorithm algorithm,
                   ExperimentResult* out) {
  out->algorithm = LowerName(algorithm);
  out->dataset = dataset.name;
  out->vertices = dataset.stats.num_vertices;
  const PregelixPlan plan;

  // Ledger-off arm first: every attach in the run is refused, every guard
  // and reattribution is inert — the zero-instrumentation baseline.
  TimeLedger::Global().SetEnabled(false);
  Outcome off = RunPregelix(env, dataset, algorithm,
                            env.Cluster(kWorkers, kWorkerRam), plan);
  TimeLedger::Global().SetEnabled(true);
  if (!off.ok) {
    fprintf(stderr, "bench_ledger: %s/%s ledger-off failed: %s\n",
            out->algorithm.c_str(), dataset.name.c_str(),
            off.fail_reason.c_str());
    return false;
  }

  // Ledger-on arm: fully instrumented, starting from clean books so the
  // conservation numbers below describe exactly this run.
  TimeLedger::Global().Reset();
  Outcome on = RunPregelix(env, dataset, algorithm,
                           env.Cluster(kWorkers, kWorkerRam), plan);
  const TimeLedgerSnapshot snap = TimeLedger::Global().TakeSnapshot();
  if (!on.ok) {
    fprintf(stderr, "bench_ledger: %s/%s ledger-on failed: %s\n",
            out->algorithm.c_str(), dataset.name.c_str(),
            on.fail_reason.c_str());
    return false;
  }
  if (off.supersteps != on.supersteps) {
    fprintf(stderr,
            "bench_ledger: %s/%s superstep count diverged (%lld off vs "
            "%lld on) — the ledger changed the computation\n",
            out->algorithm.c_str(), dataset.name.c_str(),
            static_cast<long long>(off.supersteps),
            static_cast<long long>(on.supersteps));
    return false;
  }

  out->supersteps = on.supersteps;
  out->off_sim_seconds = off.total_seconds;
  out->on_sim_seconds = on.total_seconds;
  out->off_wall_seconds = off.wall_seconds;
  out->on_wall_seconds = on.wall_seconds;
  out->attributed_ns = snap.attributed_ns();
  out->unattributed_ns = snap.unattributed_ns;
  return true;
}

void PrintExperiment(const ExperimentResult& r) {
  char delta[32];
  snprintf(delta, sizeof(delta), "%.4f%%", r.sim_delta() * 100.0);
  PrintRow({r.algorithm + " " + r.dataset, Seconds(r.off_sim_seconds),
            Seconds(r.on_sim_seconds), delta, Seconds(r.off_wall_seconds),
            Seconds(r.on_wall_seconds), Ratio3(r.wall_ratio())});
}

bool WriteJson(const std::string& path, bool fast,
               const std::vector<ExperimentResult>& results) {
  FILE* f = fopen(path.c_str(), "w");
  if (f == nullptr) {
    fprintf(stderr, "bench_ledger: cannot write %s\n", path.c_str());
    return false;
  }
  fprintf(f, "{\n  \"name\": \"bench_ledger\",\n  \"mode\": \"%s\",\n",
          fast ? "fast" : "full");
  fprintf(f, "  \"sim_delta_gate\": %.2f,\n", kSimDeltaGate);
  fprintf(f, "  \"experiments\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const ExperimentResult& r = results[i];
    fprintf(f, "    {\n");
    fprintf(f, "      \"algorithm\": \"%s\",\n", r.algorithm.c_str());
    fprintf(f, "      \"dataset\": \"%s\",\n", r.dataset.c_str());
    fprintf(f, "      \"vertices\": %lld,\n",
            static_cast<long long>(r.vertices));
    fprintf(f, "      \"supersteps\": %lld,\n",
            static_cast<long long>(r.supersteps));
    fprintf(f, "      \"ledger_off_sim_seconds\": %.6f,\n", r.off_sim_seconds);
    fprintf(f, "      \"ledger_on_sim_seconds\": %.6f,\n", r.on_sim_seconds);
    fprintf(f, "      \"sim_delta\": %.6f,\n", r.sim_delta());
    fprintf(f, "      \"ledger_off_wall_seconds\": %.6f,\n",
            r.off_wall_seconds);
    fprintf(f, "      \"ledger_on_wall_seconds\": %.6f,\n", r.on_wall_seconds);
    fprintf(f, "      \"wall_ratio\": %.4f,\n", r.wall_ratio());
    fprintf(f, "      \"attributed_ns\": %lld,\n",
            static_cast<long long>(r.attributed_ns));
    fprintf(f, "      \"unattributed_ns\": %lld\n",
            static_cast<long long>(r.unattributed_ns));
    fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  fprintf(f, "  ]\n}\n");
  fclose(f);
  return true;
}

int Run(const std::string& out_path) {
  const bool fast = getenv("PREGELIX_BENCH_LEDGER_FAST") != nullptr;
  PrintBanner(
      "Worker time-ledger overhead (on vs off)",
      "this repository's nanosecond-attribution extension (DESIGN.md "
      "Section 20); workload regime from Bu et al., VLDB 2014, Section 7",
      "simulated seconds identical within 2% with the ledger on; wall "
      "overhead small and reported, not gated");

  Env env;
  const int64_t vertices = fast ? 3000 : 26000;
  Dataset btc = env.Btc("BTC-1.0", vertices, 8.94);
  Dataset web = env.Webmap("Web-1.0", vertices, 8.0);

  PrintRow({"experiment", "off sim", "on sim", "delta", "off wall", "on wall",
            "wall x"});
  std::vector<ExperimentResult> results;
  struct Case {
    Dataset* dataset;
    Algorithm algorithm;
  };
  const Case cases[] = {{&btc, Algorithm::kSssp},
                        {&web, Algorithm::kPageRank}};
  for (const Case& c : cases) {
    ExperimentResult r;
    if (!RunExperiment(env, *c.dataset, c.algorithm, &r)) return 1;
    PrintExperiment(r);
    results.push_back(std::move(r));
  }

  printf("\n(sim seconds are the DESIGN.md cost model — the hard gate; "
         "wall seconds are host time and informational only)\n");
  if (!WriteJson(out_path, fast, results)) return 1;
  printf("wrote %s\n", out_path.c_str());

  // Self-gate: the ledger observes, it must not steer. A simulated-time
  // delta means ledger state leaked into the cost model or the plan.
  int failures = 0;
  for (const ExperimentResult& r : results) {
    if (!(r.sim_delta() <= kSimDeltaGate)) {
      fprintf(stderr,
              "bench_ledger: %s on %s: sim %.6fs off vs %.6fs on — delta "
              "%.4f%% exceeds the %.0f%% gate\n",
              r.algorithm.c_str(), r.dataset.c_str(), r.off_sim_seconds,
              r.on_sim_seconds, r.sim_delta() * 100.0,
              kSimDeltaGate * 100.0);
      ++failures;
    }
    if (r.unattributed_ns != 0) {
      // Conservation rides along: the ledger-on arm must balance its books
      // (exact in every build mode — the bench only snapshots after all
      // run threads detached).
      fprintf(stderr,
              "bench_ledger: %s on %s: %lld unattributed ns after the run\n",
              r.algorithm.c_str(), r.dataset.c_str(),
              static_cast<long long>(r.unattributed_ns));
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace bench
}  // namespace pregelix

int main(int argc, char** argv) {
  const std::string out = argc > 1 ? argv[1] : "BENCH_ledger.json";
  return pregelix::bench::Run(out);
}
