// Reproduces Figure 14: index full outer join vs index left outer join
// (plan flexibility), average iteration time on the 8-machine-scale cluster.
//
//   (a) SSSP on BTC: the LEFT OUTER join plan wins by a wide margin
//       (messages are sparse; probing the live-vertex index avoids scanning
//       every vertex every superstep).
//   (b) PageRank on Webmap: the FULL OUTER join plan wins (every vertex is
//       live; per-key probes from the root are wasted work versus one
//       sequential merge scan).
//   (c) CC on BTC: starts message-intensive, ends sparse — the two plans
//       come out close.

#include <vector>

#include "bench/harness.h"

namespace pregelix {
namespace bench {
namespace {

constexpr int kWorkers = 2;  // the paper's small (8-machine) cluster
constexpr size_t kWorkerRam = 1024 * 1024;

void RunCase(Env& env, const char* title,
             const std::vector<Dataset>& datasets, Algorithm algorithm) {
  printf("\n--- %s ---\n", title);
  PrintRow({"dataset", "size/RAM", "LeftOuterJoin", "FullOuterJoin",
            "LOJ/FOJ", "Adaptive*"});
  for (const Dataset& dataset : datasets) {
    PregelixPlan loj;
    loj.join = JoinStrategy::kLeftOuter;
    PregelixPlan foj;
    foj.join = JoinStrategy::kFullOuter;
    PregelixPlan adaptive;
    adaptive.join = JoinStrategy::kAdaptive;
    Outcome left = RunPregelix(env, dataset, algorithm,
                               env.Cluster(kWorkers, kWorkerRam), loj);
    Outcome full = RunPregelix(env, dataset, algorithm,
                               env.Cluster(kWorkers, kWorkerRam), foj);
    Outcome ad = RunPregelix(env, dataset, algorithm,
                             env.Cluster(kWorkers, kWorkerRam), adaptive);
    char ratio[32];
    snprintf(ratio, sizeof(ratio), "%.2fx",
             left.avg_iteration_seconds / full.avg_iteration_seconds);
    PrintRow({dataset.name,
              Ratio3(dataset.Ratio(static_cast<uint64_t>(kWorkers) *
                                   kWorkerRam)),
              Seconds(left.avg_iteration_seconds),
              Seconds(full.avg_iteration_seconds), ratio,
              Seconds(ad.avg_iteration_seconds)});
  }
}

void Run() {
  Env env;
  PrintBanner(
      "Figure 14: index left outer join vs index full outer join",
      "Bu et al., VLDB 2014, Figure 14 (a)(b)(c)",
      "LOJ much faster for SSSP (sparse messages); FOJ faster for PageRank "
      "(all vertices live); the two are close for CC");

  std::vector<Dataset> btc, web;
  for (const auto& [suffix, vertices] :
       std::vector<std::pair<std::string, int64_t>>{
           {"0.3", 13000}, {"0.6", 26000}, {"0.9", 39000}, {"1.2", 52000}}) {
    btc.push_back(env.Btc("BTC-" + suffix, vertices, 8.94));
    web.push_back(env.Webmap("Web-" + suffix, vertices, 8.0));
  }
  RunCase(env, "(a) SSSP on BTC samples (expect LOJ <<< FOJ)", btc,
          Algorithm::kSssp);
  RunCase(env, "(b) PageRank on Webmap samples (expect FOJ < LOJ)", web,
          Algorithm::kPageRank);
  RunCase(env, "(c) CC on BTC samples (expect LOJ ~ FOJ)", btc,
          Algorithm::kCc);
  printf("\n* Adaptive is this repository's extension toward the paper's "
         "future-work optimizer (Section 9): the plan generator re-picks "
         "the join per superstep from the statistics collector, tracking "
         "whichever static plan is better for the phase the algorithm is "
         "in.\n");
}

}  // namespace
}  // namespace bench
}  // namespace pregelix

int main() {
  pregelix::bench::Run();
  return 0;
}
