// Reproduces Figure 11: average per-iteration execution time versus
// dataset-size / aggregated-RAM ratio (same sweep as Figure 10, different
// metric: load/dump costs are excluded, isolating the superstep engines).
//
// Paper shape: same failure pattern as Figure 10; GraphLab has the best
// per-iteration time on the small datasets (lean engine) but degrades and
// dies as data grows; Pregelix's curve is the flattest.

#include <vector>

#include "bench/harness.h"

namespace pregelix {
namespace bench {
namespace {

constexpr int kWorkers = 4;
constexpr size_t kWorkerRam = 1024 * 1024;

void PrintSweep(const char* title, const std::vector<SweepRow>& rows) {
  printf("\n--- %s ---\n", title);
  std::vector<std::string> header = {"dataset", "size/RAM"};
  for (const auto& [name, outcome] : rows[0].systems) header.push_back(name);
  PrintRow(header);
  for (const SweepRow& row : rows) {
    std::vector<std::string> cells = {row.dataset, Ratio3(row.ratio)};
    for (const auto& [name, outcome] : row.systems) {
      cells.push_back(outcome.ok ? Seconds(outcome.avg_iteration_seconds)
                                 : "FAIL");
    }
    PrintRow(cells);
  }
}

void Run() {
  Env env;
  PrintBanner(
      "Figure 11: average iteration time vs dataset size / aggregated RAM",
      "Bu et al., VLDB 2014, Figure 11 (a)(b)(c)",
      "GraphLab fastest per-iteration on tiny data but fails early; "
      "Pregelix's per-iteration curve is the flattest and never fails");

  std::vector<Dataset> webmaps;
  for (const auto& [name, vertices] :
       std::vector<std::pair<std::string, int64_t>>{{"W-0.03", 2500},
                                                    {"W-0.06", 5000},
                                                    {"W-0.10", 8400},
                                                    {"W-0.15", 12600},
                                                    {"W-0.22", 18500},
                                                    {"W-0.30", 25200}}) {
    webmaps.push_back(env.Webmap(name, vertices, 8.0));
  }
  PrintSweep("(a) PageRank on Webmap samples (per-iteration)",
             RunSystemSweep(env, webmaps, Algorithm::kPageRank, kWorkers,
                            kWorkerRam));

  std::vector<Dataset> btcs;
  for (const auto& [name, vertices] :
       std::vector<std::pair<std::string, int64_t>>{{"B-0.03", 2700},
                                                    {"B-0.06", 5400},
                                                    {"B-0.10", 8900},
                                                    {"B-0.15", 13400},
                                                    {"B-0.22", 19600},
                                                    {"B-0.30", 26800}}) {
    btcs.push_back(env.Btc(name, vertices, 8.94));
  }
  PrintSweep("(b) SSSP on BTC samples (per-iteration)",
             RunSystemSweep(env, btcs, Algorithm::kSssp, kWorkers,
                            kWorkerRam));
  PrintSweep("(c) CC on BTC samples (per-iteration)",
             RunSystemSweep(env, btcs, Algorithm::kCc, kWorkers,
                            kWorkerRam));
}

}  // namespace
}  // namespace bench
}  // namespace pregelix

int main() {
  pregelix::bench::Run();
  return 0;
}
