// Reproduces Figure 10: overall execution time versus dataset-size /
// aggregated-RAM ratio, on the simulated 32-machine-class cluster.
//
//   (a) PageRank on Webmap samples
//   (b) SSSP on BTC samples
//   (c) CC on BTC samples
//
// Paper shape to reproduce: Pregelix completes at every ratio (transparent
// out-of-core); Giraph (both settings) stops working past ratio ~0.15;
// GraphLab fails past ~0.07; Hama and GraphX fail on even smaller inputs
// (GraphX cannot load the smallest BTC sample). In the in-memory region
// Pregelix is comparable to Giraph for PageRank/CC.

#include <vector>

#include "bench/harness.h"

namespace pregelix {
namespace bench {
namespace {

constexpr int kWorkers = 4;
constexpr size_t kWorkerRam = 1024 * 1024;  // 4 MB aggregate "cluster RAM"

void PrintSweep(const char* title, const std::vector<SweepRow>& rows) {
  printf("\n--- %s ---\n", title);
  std::vector<std::string> header = {"dataset", "size/RAM"};
  for (const auto& [name, outcome] : rows[0].systems) header.push_back(name);
  PrintRow(header);
  for (const SweepRow& row : rows) {
    std::vector<std::string> cells = {row.dataset, Ratio3(row.ratio)};
    for (const auto& [name, outcome] : row.systems) {
      cells.push_back(SecondsOrFail(outcome));
    }
    PrintRow(cells);
  }
}

void Run() {
  Env env;
  PrintBanner(
      "Figure 10: overall execution time vs dataset size / aggregated RAM",
      "Bu et al., VLDB 2014, Figure 10 (a)(b)(c)",
      "Pregelix never fails; Giraph dies past ~0.15, GraphLab past ~0.07, "
      "GraphX/Hama earlier; Pregelix ~ Giraph in-memory for PageRank/CC");

  // Webmap samples spanning the in-memory -> out-of-core transition.
  std::vector<Dataset> webmaps;
  for (const auto& [name, vertices] :
       std::vector<std::pair<std::string, int64_t>>{{"W-0.03", 2500},
                                                    {"W-0.06", 5000},
                                                    {"W-0.10", 8400},
                                                    {"W-0.15", 12600},
                                                    {"W-0.22", 18500},
                                                    {"W-0.30", 25200}}) {
    webmaps.push_back(env.Webmap(name, vertices, 8.0));
  }
  PrintSweep("(a) PageRank on Webmap samples (5 iterations)",
             RunSystemSweep(env, webmaps, Algorithm::kPageRank, kWorkers,
                            kWorkerRam));

  std::vector<Dataset> btcs;
  for (const auto& [name, vertices] :
       std::vector<std::pair<std::string, int64_t>>{{"B-0.03", 2700},
                                                    {"B-0.06", 5400},
                                                    {"B-0.10", 8900},
                                                    {"B-0.15", 13400},
                                                    {"B-0.22", 19600},
                                                    {"B-0.30", 26800}}) {
    btcs.push_back(env.Btc(name, vertices, 8.94));
  }
  PrintSweep("(b) SSSP on BTC samples",
             RunSystemSweep(env, btcs, Algorithm::kSssp, kWorkers,
                            kWorkerRam));
  PrintSweep("(c) CC on BTC samples",
             RunSystemSweep(env, btcs, Algorithm::kCc, kWorkers,
                            kWorkerRam));
}

}  // namespace
}  // namespace bench
}  // namespace pregelix

int main() {
  pregelix::bench::Run();
  return 0;
}
