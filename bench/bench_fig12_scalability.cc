// Reproduces Figure 12: scalability.
//
//   (a) Pregelix parallel speedup for PageRank, 4 dataset sizes, cluster
//       grown 2 -> 8 workers (the paper's 8 -> 32 machines).
//   (b) Speedup comparison of all systems on the smallest (X-Small)
//       dataset over the same cluster growth.
//   (c) Pregelix scale-up: dataset size grows proportionally with the
//       cluster for PageRank / SSSP / CC.
//
// Paper shape: (a) Pregelix tracks the ideal line closely (slightly worse:
// combiners lose effectiveness as partitions grow, so more bytes cross the
// network); (b) the process-centric systems show super-linear "speedup"
// because they are super-linearly bad when per-machine data grows —
// several of them cannot even run the larger points on small clusters;
// (c) the scale-up curve stays near flat, SSSP closest to ideal because it
// sends the fewest messages.

#include <vector>

#include "bench/harness.h"

namespace pregelix {
namespace bench {
namespace {

constexpr size_t kWorkerRam = 4 * 1024 * 1024;
const std::vector<int> kWorkerCounts = {2, 4, 6, 8};

void Run() {
  Env env;
  PrintBanner("Figure 12: speedup and scale-up",
              "Bu et al., VLDB 2014, Figure 12 (a)(b)(c)",
              "(a) near-ideal speedup, slightly worse for big data; (b) "
              "baselines look super-linear because small clusters overload "
              "them; (c) scale-up near flat, SSSP closest to ideal");

  // --- (a) Pregelix speedup, PageRank, 4 sizes ---------------------------
  printf("\n--- (a) Pregelix PageRank: avg iteration time relative to 2 "
         "workers ---\n");
  std::vector<Dataset> sizes = {
      env.Webmap("Webmap-X-Small", 5000, 8.0),
      env.Webmap("Webmap-Small", 10000, 8.0),
      env.Webmap("Webmap-Medium", 20000, 8.0),
      env.Webmap("Webmap-Large", 40000, 8.0),
  };
  PrintRow({"workers", "X-Small", "Small", "Medium", "Large", "Ideal"});
  std::vector<std::vector<double>> iter_time(sizes.size());
  for (int workers : kWorkerCounts) {
    std::vector<std::string> cells = {std::to_string(workers)};
    for (size_t d = 0; d < sizes.size(); ++d) {
      Outcome outcome = RunPregelix(env, sizes[d], Algorithm::kPageRank,
                                    env.Cluster(workers, kWorkerRam));
      iter_time[d].push_back(outcome.avg_iteration_seconds);
      char buf[32];
      snprintf(buf, sizeof(buf), "%.3f",
               outcome.avg_iteration_seconds / iter_time[d][0]);
      cells.push_back(buf);
    }
    char ideal[32];
    snprintf(ideal, sizeof(ideal), "%.3f",
             static_cast<double>(kWorkerCounts[0]) / workers);
    cells.push_back(ideal);
    PrintRow(cells);
  }

  // --- (b) All systems, X-Small --------------------------------------------
  printf("\n--- (b) PageRank speedup on Webmap-X-Small, all systems "
         "(relative to each system's 2-worker time) ---\n");
  const Dataset& xsmall = sizes[0];
  struct SystemRow {
    std::string name;
    std::vector<double> times;
  };
  std::vector<SystemRow> systems = {{"Pregelix", {}},
                                    {"Giraph-mem", {}},
                                    {"GraphLab", {}},
                                    {"GraphX", {}}};
  for (int workers : kWorkerCounts) {
    systems[0].times.push_back(
        RunPregelix(env, xsmall, Algorithm::kPageRank,
                    env.Cluster(workers, kWorkerRam))
            .avg_iteration_seconds);
    int i = 1;
    for (const auto& options :
         {GiraphMemOptions(), GraphLabOptions(), GraphXOptions()}) {
      Outcome outcome = RunBaseline(env, xsmall, Algorithm::kPageRank,
                                    options, workers, kWorkerRam);
      systems[i++].times.push_back(
          outcome.ok ? outcome.avg_iteration_seconds : -1);
    }
  }
  std::vector<std::string> header = {"workers"};
  for (const auto& row : systems) header.push_back(row.name);
  header.push_back("Ideal");
  PrintRow(header);
  for (size_t w = 0; w < kWorkerCounts.size(); ++w) {
    std::vector<std::string> cells = {std::to_string(kWorkerCounts[w])};
    for (const auto& row : systems) {
      char buf[32];
      if (row.times[w] < 0 || row.times[0] < 0) {
        snprintf(buf, sizeof(buf), "FAIL");
      } else {
        snprintf(buf, sizeof(buf), "%.3f", row.times[w] / row.times[0]);
      }
      cells.push_back(buf);
    }
    char ideal[32];
    snprintf(ideal, sizeof(ideal), "%.3f",
             static_cast<double>(kWorkerCounts[0]) / kWorkerCounts[w]);
    cells.push_back(ideal);
    PrintRow(cells);
  }

  // --- (c) Pregelix scale-up ------------------------------------------------
  printf("\n--- (c) Pregelix scale-up: data grows with the cluster "
         "(relative per-iteration time; ideal = 1.0) ---\n");
  PrintRow({"scale", "PageRank", "SSSP", "CC", "Ideal"});
  std::vector<double> first(3, 0);
  for (size_t i = 0; i < kWorkerCounts.size(); ++i) {
    const int workers = kWorkerCounts[i];
    Dataset web = env.Webmap("scale-web-" + std::to_string(workers),
                             5000 * workers, 8.0);
    Dataset btc = env.Btc("scale-btc-" + std::to_string(workers),
                          5000 * workers, 8.94);
    const Algorithm algorithms[3] = {Algorithm::kPageRank, Algorithm::kSssp,
                                     Algorithm::kCc};
    std::vector<std::string> cells = {
        std::to_string(workers) + "x"};
    for (int a = 0; a < 3; ++a) {
      const Dataset& dataset = a == 0 ? web : btc;
      Outcome outcome = RunPregelix(env, dataset, algorithms[a],
                                    env.Cluster(workers, kWorkerRam));
      if (i == 0) first[a] = outcome.avg_iteration_seconds;
      char buf[32];
      snprintf(buf, sizeof(buf), "%.3f",
               outcome.avg_iteration_seconds / first[a]);
      cells.push_back(buf);
    }
    cells.push_back("1.000");
    PrintRow(cells);
  }
}

}  // namespace
}  // namespace bench
}  // namespace pregelix

int main() {
  pregelix::bench::Run();
  return 0;
}
