#ifndef PREGELIX_BENCH_HARNESS_H_
#define PREGELIX_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/process_centric.h"
#include "common/config.h"
#include "common/temp_dir.h"
#include "dfs/dfs.h"
#include "graph/generator.h"
#include "pregel/job_config.h"
#include "pregel/runtime.h"

namespace pregelix {
namespace bench {

/// One generated dataset on the experiment DFS.
struct Dataset {
  std::string name;
  std::string dir;
  GraphStats stats;
  /// RNG seed the generator/sampler ran with. Reported in the metrics JSON
  /// (pregelix.bench.dataset_seed{dataset=...}) so a failing run can be
  /// reproduced from its artifact alone.
  uint64_t seed = 0;

  /// The x-axis of Figures 10/11/14/15: dataset size over aggregate RAM.
  double Ratio(size_t aggregate_ram_bytes) const {
    return static_cast<double>(stats.size_bytes) /
           static_cast<double>(aggregate_ram_bytes);
  }
};

/// Experiment environment: scratch space, DFS, dataset cache, cluster
/// factory. Every bench binary creates one Env; datasets are generated
/// deterministically (seeded) so runs are reproducible.
class Env {
 public:
  Env();

  DistributedFileSystem& dfs() { return *dfs_; }

  /// Directed power-law graph (Webmap stand-in, Table 3).
  Dataset Webmap(const std::string& name, int64_t vertices,
                 double avg_degree = 8.0);
  /// Undirected near-constant-degree graph (BTC stand-in, Table 4).
  Dataset Btc(const std::string& name, int64_t vertices,
              double avg_degree = 8.94);
  /// Scale-up by copy + renumber (how the paper grew BTC).
  Dataset ScaleUp(const Dataset& base, const std::string& name, int factor);
  /// Random-walk down-sample (how the paper shrank Webmap).
  Dataset Sample(const Dataset& base, const std::string& name,
                 int64_t vertices);

  /// A fresh simulated cluster config rooted in this Env's scratch.
  ClusterConfig Cluster(int workers, size_t worker_ram_bytes);

 private:
  TempDir dir_;
  std::unique_ptr<DistributedFileSystem> dfs_;
  int cluster_counter_ = 0;
};

enum class Algorithm { kPageRank, kSssp, kCc };

const char* AlgorithmName(Algorithm algorithm);

/// One comparison data point.
struct Outcome {
  bool ok = false;
  std::string fail_reason;
  int64_t supersteps = 0;
  double load_seconds = 0;
  double total_seconds = 0;     ///< simulated: load + supersteps (+ dump)
  double avg_iteration_seconds = 0;
  double wall_seconds = 0;
};

/// Physical plan knobs for a Pregelix run (defaults = the paper's default
/// plan: full outer join, sort group-by, unmerged connector, B-tree).
struct PregelixPlan {
  JoinStrategy join = JoinStrategy::kFullOuter;
  GroupByStrategy groupby = GroupByStrategy::kSort;
  GroupByConnector connector = GroupByConnector::kUnmerged;
  VertexStorage storage = VertexStorage::kBTree;
};

/// Runs one algorithm on Pregelix. `pagerank_iterations` bounds PageRank;
/// SSSP/CC run to convergence.
Outcome RunPregelix(Env& env, const Dataset& dataset, Algorithm algorithm,
                    const ClusterConfig& cluster_config,
                    const PregelixPlan& plan = {},
                    int pagerank_iterations = 5);

/// Runs one algorithm on a process-centric baseline engine.
Outcome RunBaseline(Env& env, const Dataset& dataset, Algorithm algorithm,
                    const ProcessCentricEngine::Options& options,
                    int workers, size_t worker_ram_bytes,
                    int pagerank_iterations = 5);

/// One row of a Figure 10/11-style sweep: one dataset, all six systems.
struct SweepRow {
  std::string dataset;
  double ratio = 0;
  std::vector<std::pair<std::string, Outcome>> systems;  ///< ordered
};

/// Runs {Pregelix(default plan), Giraph-mem, Giraph-ooc, GraphLab, GraphX,
/// Hama} over each dataset — the system lineup of Figures 10 and 11.
std::vector<SweepRow> RunSystemSweep(Env& env,
                                     const std::vector<Dataset>& datasets,
                                     Algorithm algorithm, int workers,
                                     size_t worker_ram_bytes,
                                     int pagerank_iterations = 5);

// --- Table formatting -------------------------------------------------------

/// Prints a figure/table banner with the paper reference.
void PrintBanner(const std::string& experiment, const std::string& paper_ref,
                 const std::string& expectation);

/// Fixed-width row helpers.
void PrintRow(const std::vector<std::string>& cells, int width = 14);
std::string Seconds(double s);
std::string SecondsOrFail(const Outcome& outcome);
std::string Ratio3(double r);

}  // namespace bench
}  // namespace pregelix

#endif  // PREGELIX_BENCH_HARNESS_H_
