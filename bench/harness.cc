#include "bench/harness.h"

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "algorithms/algorithms.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "dataflow/cluster.h"
#include "graph/sampler.h"

namespace pregelix {
namespace bench {

Env::Env() : dir_("pregelix-bench") {
  // Bench binaries share the harness entry point, so the environment knobs
  // (PREGELIX_LOG_LEVEL and the metrics export paths) apply to all of them.
  InitLogLevelFromEnv();
  dfs_ = std::make_unique<DistributedFileSystem>(dir_.Sub("dfs"));
}

namespace {

/// Records a dataset's generation seed in the process-wide registry, so the
/// PREGELIX_METRICS_JSON artifact is self-reproducing: the seed that built
/// every graph a failing run touched is in the output.
void RecordDatasetSeed(const Dataset& d) {
  MetricsRegistry::Global()
      .GetGauge("pregelix.bench.dataset_seed", {{"dataset", d.name}})
      ->Set(static_cast<int64_t>(d.seed));
}

}  // namespace

Dataset Env::Webmap(const std::string& name, int64_t vertices,
                    double avg_degree) {
  Dataset d;
  d.name = name;
  d.dir = "data/" + name;
  d.seed = 1000 + static_cast<uint64_t>(vertices);
  Status s = GenerateWebmapLike(*dfs_, d.dir, 4, vertices, avg_degree,
                                d.seed, &d.stats);
  PREGELIX_CHECK(s.ok()) << s.ToString();
  d.stats.name = name;
  RecordDatasetSeed(d);
  return d;
}

Dataset Env::Btc(const std::string& name, int64_t vertices,
                 double avg_degree) {
  Dataset d;
  d.name = name;
  d.dir = "data/" + name;
  d.seed = 2000 + static_cast<uint64_t>(vertices);
  Status s = GenerateBtcLike(*dfs_, d.dir, 4, vertices, avg_degree, d.seed,
                             &d.stats);
  PREGELIX_CHECK(s.ok()) << s.ToString();
  d.stats.name = name;
  RecordDatasetSeed(d);
  return d;
}

Dataset Env::ScaleUp(const Dataset& base, const std::string& name,
                     int factor) {
  Dataset d;
  d.name = name;
  d.dir = "data/" + name;
  Status s = ScaleUpGraph(*dfs_, base.dir, d.dir, 4, factor, &d.stats);
  PREGELIX_CHECK(s.ok()) << s.ToString();
  d.stats.name = name;
  d.seed = base.seed;  // deterministic transform: the base seed reproduces it
  RecordDatasetSeed(d);
  return d;
}

Dataset Env::Sample(const Dataset& base, const std::string& name,
                    int64_t vertices) {
  Dataset d;
  d.name = name;
  d.dir = "data/" + name;
  d.seed = 3000 + static_cast<uint64_t>(vertices);
  Status s = SampleGraphDir(*dfs_, base.dir, d.dir, 4, vertices, d.seed);
  PREGELIX_CHECK(s.ok()) << s.ToString();
  s = MeasureGraph(*dfs_, d.dir, &d.stats);
  PREGELIX_CHECK(s.ok()) << s.ToString();
  d.stats.name = name;
  RecordDatasetSeed(d);
  return d;
}

ClusterConfig Env::Cluster(int workers, size_t worker_ram_bytes) {
  ClusterConfig config;
  config.num_workers = workers;
  config.worker_ram_bytes = worker_ram_bytes;
  config.frame_size = 8 * 1024;
  config.page_size = 2 * 1024;
  config.temp_root = dir_.Sub("cluster-" + std::to_string(cluster_counter_++));
  return config;
}

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kPageRank:
      return "PageRank";
    case Algorithm::kSssp:
      return "SSSP";
    case Algorithm::kCc:
      return "CC";
  }
  return "?";
}

namespace {

/// Owns one typed program + adapter pair for a run.
struct ProgramHolder {
  std::unique_ptr<PageRankProgram> pagerank;
  std::unique_ptr<PageRankProgram::Adapter> pagerank_adapter;
  std::unique_ptr<SsspProgram> sssp;
  std::unique_ptr<SsspProgram::Adapter> sssp_adapter;
  std::unique_ptr<ConnectedComponentsProgram> cc;
  std::unique_ptr<ConnectedComponentsProgram::Adapter> cc_adapter;

  PregelProgram* Make(Algorithm algorithm, int pagerank_iterations) {
    switch (algorithm) {
      case Algorithm::kPageRank:
        pagerank = std::make_unique<PageRankProgram>(pagerank_iterations);
        pagerank_adapter =
            std::make_unique<PageRankProgram::Adapter>(pagerank.get());
        return pagerank_adapter.get();
      case Algorithm::kSssp:
        sssp = std::make_unique<SsspProgram>(0);
        sssp_adapter = std::make_unique<SsspProgram::Adapter>(sssp.get());
        return sssp_adapter.get();
      case Algorithm::kCc:
        cc = std::make_unique<ConnectedComponentsProgram>();
        cc_adapter =
            std::make_unique<ConnectedComponentsProgram::Adapter>(cc.get());
        return cc_adapter.get();
    }
    return nullptr;
  }
};

}  // namespace

Outcome RunPregelix(Env& env, const Dataset& dataset, Algorithm algorithm,
                    const ClusterConfig& cluster_config,
                    const PregelixPlan& plan, int pagerank_iterations) {
  Outcome outcome;
  SimulatedCluster cluster(cluster_config);
  PregelixRuntime runtime(&cluster, &env.dfs());
  ProgramHolder holder;
  PregelProgram* program = holder.Make(algorithm, pagerank_iterations);

  PregelixJobConfig job;
  job.name = std::string("bench-") + AlgorithmName(algorithm);
  job.input_dir = dataset.dir;
  job.join = plan.join;
  job.groupby = plan.groupby;
  job.groupby_connector = plan.connector;
  job.storage = plan.storage;
  JobResult result;
  Status s = runtime.Run(program, job, &result);
  if (!s.ok()) {
    outcome.ok = false;
    outcome.fail_reason = s.ToString();
    return outcome;
  }
  outcome.ok = true;
  outcome.supersteps = result.supersteps;
  outcome.load_seconds = result.load_sim_seconds;
  outcome.total_seconds = result.total_sim_seconds;
  outcome.avg_iteration_seconds = result.avg_iteration_sim_seconds;
  outcome.wall_seconds = result.wall_seconds;

  // PREGELIX_METRICS_JSON=<file>: dump the registry after every Pregelix run
  // (runs share the process-wide registry, so the file accumulates the whole
  // bench binary's counters; the last write wins and is cumulative).
  const char* json_path = getenv("PREGELIX_METRICS_JSON");
  const char* prom_path = getenv("PREGELIX_METRICS_PROM");
  if (json_path != nullptr || prom_path != nullptr) {
    cluster.PublishMetrics();
  }
  if (json_path != nullptr) {
    Status ms = cluster.registry()->ExportJson(json_path);
    if (!ms.ok()) {
      PLOG(Warn) << "metrics json write failed: " << ms.ToString();
    }
  }
  // PREGELIX_METRICS_PROM=<file>: same registry, Prometheus text exposition
  // (node_exporter textfile-collector friendly).
  if (prom_path != nullptr) {
    Status ms = cluster.registry()->ExportPrometheus(prom_path);
    if (!ms.ok()) {
      PLOG(Warn) << "metrics prom write failed: " << ms.ToString();
    }
  }
  return outcome;
}

Outcome RunBaseline(Env& env, const Dataset& dataset, Algorithm algorithm,
                    const ProcessCentricEngine::Options& options,
                    int workers, size_t worker_ram_bytes,
                    int pagerank_iterations) {
  Outcome outcome;
  ProgramHolder holder;
  PregelProgram* program = holder.Make(algorithm, pagerank_iterations);
  ProcessCentricEngine engine(options, workers, worker_ram_bytes);
  ProcessCentricEngine::Result result;
  Status s = engine.Run(env.dfs(), dataset.dir, program,
                        /*max_supersteps=*/200, &result);
  if (!s.ok()) {
    outcome.ok = false;
    outcome.fail_reason = s.ToString();
    return outcome;
  }
  outcome.ok = result.succeeded;
  outcome.fail_reason = result.failure;
  outcome.supersteps = result.supersteps;
  outcome.load_seconds = result.load_sim_seconds;
  outcome.total_seconds = result.total_sim_seconds;
  outcome.avg_iteration_seconds = result.avg_iteration_sim_seconds;
  return outcome;
}

std::vector<SweepRow> RunSystemSweep(Env& env,
                                     const std::vector<Dataset>& datasets,
                                     Algorithm algorithm, int workers,
                                     size_t worker_ram_bytes,
                                     int pagerank_iterations) {
  std::vector<SweepRow> rows;
  const uint64_t aggregate_ram =
      static_cast<uint64_t>(workers) * worker_ram_bytes;
  for (const Dataset& dataset : datasets) {
    SweepRow row;
    row.dataset = dataset.name;
    row.ratio = dataset.Ratio(aggregate_ram);
    row.systems.emplace_back(
        "Pregelix",
        RunPregelix(env, dataset, algorithm,
                    env.Cluster(workers, worker_ram_bytes), PregelixPlan{},
                    pagerank_iterations));
    for (const auto& options :
         {GiraphMemOptions(), GiraphOocOptions(), GraphLabOptions(),
          GraphXOptions(), HamaOptions()}) {
      row.systems.emplace_back(
          options.name,
          RunBaseline(env, dataset, algorithm, options, workers,
                      worker_ram_bytes, pagerank_iterations));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void PrintBanner(const std::string& experiment, const std::string& paper_ref,
                 const std::string& expectation) {
  std::cout << "\n================================================================\n"
            << experiment << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "Expected shape: " << expectation << "\n"
            << "(times are simulated seconds from the DESIGN.md cost model)\n"
            << "================================================================\n";
}

void PrintRow(const std::vector<std::string>& cells, int width) {
  for (const std::string& cell : cells) {
    printf("%-*s", width, cell.c_str());
  }
  printf("\n");
  fflush(stdout);
}

std::string Seconds(double s) {
  char buf[32];
  if (s >= 100) {
    snprintf(buf, sizeof(buf), "%.0f", s);
  } else if (s >= 1) {
    snprintf(buf, sizeof(buf), "%.2f", s);
  } else {
    snprintf(buf, sizeof(buf), "%.3f", s);
  }
  return buf;
}

std::string SecondsOrFail(const Outcome& outcome) {
  return outcome.ok ? Seconds(outcome.total_seconds) : "FAIL";
}

std::string Ratio3(double r) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.3f", r);
  return buf;
}

}  // namespace bench
}  // namespace pregelix
