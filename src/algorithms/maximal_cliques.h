#ifndef PREGELIX_ALGORITHMS_MAXIMAL_CLIQUES_H_
#define PREGELIX_ALGORITHMS_MAXIMAL_CLIQUES_H_

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "pregel/typed.h"

namespace pregelix {

/// Maximal clique enumeration (built-in library, paper Section 6) on an
/// undirected graph given as symmetric adjacency.
///
/// Superstep 1: every vertex sends its (sender-prefixed) neighbor list to
/// all neighbors. Superstep 2: every vertex now knows the full adjacency of
/// its closed neighborhood and runs Bron-Kerbosch with
///   R = {self}, P = higher-id neighbors, X = lower-id neighbors,
/// so each globally-maximal clique is counted exactly once — at its minimum
/// member (X prunes cliques extendable downward). The global aggregate is
/// (clique count, largest clique size) over cliques of size >= 3.
class MaximalCliquesProgram
    : public TypedVertexProgram<int64_t, Empty, std::vector<int64_t>> {
 public:
  using Adapter = TypedProgramAdapter<int64_t, Empty, std::vector<int64_t>>;

  void Compute(VertexT& vertex,
               MessageIterator<std::vector<int64_t>>& messages) override {
    if (vertex.superstep() == 1) {
      vertex.set_value(0);
      const std::vector<int64_t> neighbors = Neighbors(vertex);
      std::vector<int64_t> message;
      message.reserve(neighbors.size() + 1);
      message.push_back(vertex.id());
      message.insert(message.end(), neighbors.begin(), neighbors.end());
      for (int64_t dst : neighbors) {
        vertex.SendMessage(dst, message);
      }
      vertex.VoteToHalt();
      return;
    }

    // Superstep 2: assemble the neighborhood adjacency.
    const std::vector<int64_t> neighbors = Neighbors(vertex);
    std::set<std::pair<int64_t, int64_t>> links;
    while (messages.HasNext()) {
      const std::vector<int64_t> message = messages.Next();
      if (message.empty()) continue;
      const int64_t sender = message[0];
      for (size_t i = 1; i < message.size(); ++i) {
        links.insert({std::min(sender, message[i]),
                      std::max(sender, message[i])});
      }
    }
    auto connected = [&](int64_t a, int64_t b) {
      if (a == vertex.id()) {
        return std::binary_search(neighbors.begin(), neighbors.end(), b);
      }
      if (b == vertex.id()) {
        return std::binary_search(neighbors.begin(), neighbors.end(), a);
      }
      return links.count({std::min(a, b), std::max(a, b)}) > 0;
    };

    std::vector<int64_t> p, x;
    for (int64_t nbr : neighbors) {
      (nbr > vertex.id() ? p : x).push_back(nbr);
    }
    int64_t cliques = 0;
    int64_t max_size = 0;
    std::vector<int64_t> r{vertex.id()};
    BronKerbosch(r, p, x, connected, &cliques, &max_size);
    vertex.set_value(cliques);
    if (cliques > 0) {
      vertex.Contribute(std::pair<int64_t, int64_t>(cliques, max_size));
    }
    vertex.VoteToHalt();
  }

  GlobalAggHooks AggregatorHooks() const override {
    using P = std::pair<int64_t, int64_t>;
    return MakeGlobalAgg<P>(P(0, 0), [](P a, P b) {
      return P(a.first + b.first, std::max(a.second, b.second));
    });
  }

  std::string FormatValue(int64_t, const int64_t& value) const override {
    return std::to_string(value);
  }

 private:
  /// Sorted, deduplicated neighbor set (self-loops dropped).
  static std::vector<int64_t> Neighbors(const VertexT& vertex) {
    std::vector<int64_t> out;
    for (const EdgeT& e : vertex.edges()) {
      if (e.dst != vertex.id()) out.push_back(e.dst);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  template <typename ConnFn>
  static void BronKerbosch(std::vector<int64_t>& r,
                           std::vector<int64_t> p, std::vector<int64_t> x,
                           const ConnFn& connected, int64_t* cliques,
                           int64_t* max_size) {
    if (p.empty() && x.empty()) {
      if (r.size() >= 3) {
        ++*cliques;
        *max_size = std::max<int64_t>(*max_size,
                                      static_cast<int64_t>(r.size()));
      }
      return;
    }
    std::vector<int64_t> p_copy = p;
    for (int64_t v : p_copy) {
      std::vector<int64_t> np, nx;
      for (int64_t u : p) {
        if (u != v && connected(u, v)) np.push_back(u);
      }
      for (int64_t u : x) {
        if (connected(u, v)) nx.push_back(u);
      }
      r.push_back(v);
      BronKerbosch(r, np, nx, connected, cliques, max_size);
      r.pop_back();
      p.erase(std::remove(p.begin(), p.end(), v), p.end());
      x.push_back(v);
    }
  }
};

}  // namespace pregelix

#endif  // PREGELIX_ALGORITHMS_MAXIMAL_CLIQUES_H_
