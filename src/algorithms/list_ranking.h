#ifndef PREGELIX_ALGORITHMS_LIST_RANKING_H_
#define PREGELIX_ALGORITHMS_LIST_RANKING_H_

#include <string>
#include <utility>

#include "common/serde.h"
#include "pregel/typed.h"

namespace pregelix {

/// List ranking by pointer jumping — another Section 6 building block the
/// paper's user community implemented on Pregelix ("Euler tour, list
/// ranking, and pre/post-ordering").
///
/// Input: a linked list given as a graph where each node has exactly one
/// out-edge to its successor (the tail has none). Output: every node's
/// distance to the tail. Pointer jumping halves the remaining distance per
/// round, so ranking an n-node list takes O(log n) supersteps instead of
/// the O(n) a naive walk needs.
///
/// Each round is two supersteps: (request) every unfinished node asks its
/// current successor for its state; (respond/jump) the successor replies
/// with (its successor, its rank) and the asker folds it in:
///     rank += rank(next);  next = next(next).
/// A node finishes when its pointer reaches the tail.
class ListRankingProgram
    : public TypedVertexProgram<std::pair<int64_t, int64_t>, Empty,
                                std::pair<int64_t, int64_t>> {
 public:
  /// Vertex value: (next pointer, rank so far); next == -1 means "I am the
  /// tail / finished at the tail".
  /// Messages: request (kAsk, asker id) or response (next, rank).
  using MsgT = std::pair<int64_t, int64_t>;
  using Adapter =
      TypedProgramAdapter<std::pair<int64_t, int64_t>, Empty, MsgT>;

  static constexpr int64_t kAsk = -1000000007;

  void Compute(VertexT& vertex, MessageIterator<MsgT>& messages) override {
    auto [next, rank] = vertex.value();
    if (vertex.superstep() == 1) {
      next = vertex.edges().empty() ? -1 : vertex.edges()[0].dst;
      rank = vertex.edges().empty() ? 0 : 1;
      vertex.set_value({next, rank});
    }
    // Fold in any responses, and answer any requests with CURRENT state
    // (all requests in a wave carry the same round's state because every
    // node jumps in lockstep).
    bool jumped = false;
    std::vector<int64_t> askers;
    while (messages.HasNext()) {
      const MsgT m = messages.Next();
      if (m.first == kAsk) {
        askers.push_back(m.second);
      } else {
        rank += m.second;
        next = m.first;
        jumped = true;
      }
    }
    if (jumped) vertex.set_value({next, rank});
    for (int64_t asker : askers) {
      vertex.SendMessage(asker, MsgT(next, rank));
    }
    // Keep jumping until the pointer hits the tail.
    const bool requesting_phase =
        vertex.superstep() % 2 == 1;  // odd supersteps ask
    if (requesting_phase && next >= 0) {
      vertex.SendMessage(next, MsgT(kAsk, vertex.id()));
    }
    if (next < 0 && askers.empty()) {
      vertex.VoteToHalt();
    }
    // Nodes still pointing somewhere (or still being asked) stay active so
    // they can answer next superstep.
  }

  std::pair<int64_t, int64_t> DefaultValue() const override {
    return {-1, 0};
  }

  std::string FormatValue(int64_t,
                          const std::pair<int64_t, int64_t>& v) const override {
    return std::to_string(v.second);
  }
};

}  // namespace pregelix

#endif  // PREGELIX_ALGORITHMS_LIST_RANKING_H_
