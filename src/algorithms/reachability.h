#ifndef PREGELIX_ALGORITHMS_REACHABILITY_H_
#define PREGELIX_ALGORITHMS_REACHABILITY_H_

#include <string>

#include "pregel/typed.h"

namespace pregelix {

/// Reachability query (built-in library, paper Section 6): marks every
/// vertex reachable from the source along out-edges. Messages carry no
/// payload (Empty), exercising the zero-byte message path.
class ReachabilityProgram : public TypedVertexProgram<uint8_t, Empty, Empty> {
 public:
  using Adapter = TypedProgramAdapter<uint8_t, Empty, Empty>;

  explicit ReachabilityProgram(int64_t source_id) : source_id_(source_id) {}

  void Compute(VertexT& vertex, MessageIterator<Empty>& messages) override {
    bool newly_reached = false;
    if (vertex.superstep() == 1) {
      vertex.set_value(0);
      if (vertex.id() == source_id_) {
        vertex.set_value(1);
        newly_reached = true;
      }
    } else if (messages.HasNext() && vertex.value() == 0) {
      vertex.set_value(1);
      newly_reached = true;
    }
    if (newly_reached) {
      vertex.SendMessageToAllEdges(Empty{});
    }
    vertex.VoteToHalt();
  }

  // Many identical signals collapse to one.
  bool has_combiner() const override { return true; }
  void Combine(Empty*, const Empty&) const override {}

  std::string FormatValue(int64_t, const uint8_t& value) const override {
    return value != 0 ? "reachable" : "unreachable";
  }

 private:
  int64_t source_id_;
};

}  // namespace pregelix

#endif  // PREGELIX_ALGORITHMS_REACHABILITY_H_
