#ifndef PREGELIX_ALGORITHMS_PAGERANK_H_
#define PREGELIX_ALGORITHMS_PAGERANK_H_

#include <string>

#include "pregel/typed.h"

namespace pregelix {

/// PageRank (paper Section 7: the message-intensive workload, run on the
/// Webmap datasets with the index full outer join plan).
///
/// Superstep 1 initializes every rank to 1/N and scatters rank/degree;
/// supersteps 2..k+1 apply the update
///   rank = (1-d)/N + d * (sum(in) + dangling/N)
/// where the dangling mass is collected through the global aggregator.
/// Votes to halt after `iterations` updates. Uses a sum combiner.
class PageRankProgram : public TypedVertexProgram<double, Empty, double> {
 public:
  using ValueT = double;
  using EdgeT2 = Empty;
  using MsgT = double;
  using Adapter = TypedProgramAdapter<double, Empty, double>;

  explicit PageRankProgram(int iterations, double damping = 0.85)
      : iterations_(iterations), damping_(damping) {}

  void Compute(VertexT& vertex, MessageIterator<double>& messages) override {
    const double n = static_cast<double>(vertex.num_vertices());
    if (vertex.superstep() == 1) {
      vertex.set_value(1.0 / n);
    } else {
      double sum = 0;
      while (messages.HasNext()) sum += messages.Next();
      double dangling = 0;
      vertex.GetAggregate(&dangling);
      vertex.set_value((1.0 - damping_) / n +
                       damping_ * (sum + dangling / n));
    }
    if (vertex.superstep() <= iterations_) {
      if (vertex.edges().empty()) {
        vertex.Contribute(vertex.value());  // dangling mass
      } else {
        vertex.SendMessageToAllEdges(
            vertex.value() / static_cast<double>(vertex.edges().size()));
      }
    } else {
      vertex.VoteToHalt();
    }
  }

  bool has_combiner() const override { return true; }
  void Combine(double* acc, const double& incoming) const override {
    *acc += incoming;
  }

  GlobalAggHooks AggregatorHooks() const override {
    return MakeGlobalAgg<double>(0.0, [](double a, double b) { return a + b; });
  }

  std::string FormatValue(int64_t, const double& value) const override {
    return FormatDouble(value);
  }

 private:
  int iterations_;
  double damping_;
};

}  // namespace pregelix

#endif  // PREGELIX_ALGORITHMS_PAGERANK_H_
