#ifndef PREGELIX_ALGORITHMS_ALGORITHMS_H_
#define PREGELIX_ALGORITHMS_ALGORITHMS_H_

/// Umbrella header for the Pregelix built-in graph algorithm library
/// (paper Section 6): PageRank, single source shortest paths, connected
/// components, reachability, triangle counting, maximal cliques, and
/// random-walk graph sampling — plus two of the Section 6 user-community
/// building blocks (BFS spanning tree, strongly connected components).

#include "algorithms/bfs_tree.h"
#include "algorithms/connected_components.h"
#include "algorithms/graph_sampling.h"
#include "algorithms/list_ranking.h"
#include "algorithms/maximal_cliques.h"
#include "algorithms/pagerank.h"
#include "algorithms/reachability.h"
#include "algorithms/scc.h"
#include "algorithms/sssp.h"
#include "algorithms/triangle_count.h"

#endif  // PREGELIX_ALGORITHMS_ALGORITHMS_H_
