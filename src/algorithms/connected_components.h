#ifndef PREGELIX_ALGORITHMS_CONNECTED_COMPONENTS_H_
#define PREGELIX_ALGORITHMS_CONNECTED_COMPONENTS_H_

#include <algorithm>
#include <limits>
#include <string>

#include "pregel/typed.h"

namespace pregelix {

/// Connected components by min-label propagation (paper Section 7: run on
/// the undirected BTC datasets). Every vertex adopts the smallest vertex id
/// reachable from it; on a symmetric graph this converges to the component
/// minimum. Message-intensive at first, sparse near convergence — the
/// workload where the two join plans tie (Figure 14c). Min combiner.
class ConnectedComponentsProgram
    : public TypedVertexProgram<int64_t, Empty, int64_t> {
 public:
  using Adapter = TypedProgramAdapter<int64_t, Empty, int64_t>;

  void Compute(VertexT& vertex, MessageIterator<int64_t>& messages) override {
    if (vertex.superstep() == 1) {
      vertex.set_value(vertex.id());
      vertex.SendMessageToAllEdges(vertex.id());
      vertex.VoteToHalt();
      return;
    }
    int64_t best = vertex.value();
    while (messages.HasNext()) {
      best = std::min(best, messages.Next());
    }
    if (best < vertex.value()) {
      vertex.set_value(best);
      vertex.SendMessageToAllEdges(best);
    }
    vertex.VoteToHalt();
  }

  bool has_combiner() const override { return true; }
  void Combine(int64_t* acc, const int64_t& incoming) const override {
    *acc = std::min(*acc, incoming);
  }

  int64_t DefaultValue() const override {
    return std::numeric_limits<int64_t>::max();
  }

  std::string FormatValue(int64_t, const int64_t& value) const override {
    return std::to_string(value);
  }
};

}  // namespace pregelix

#endif  // PREGELIX_ALGORITHMS_CONNECTED_COMPONENTS_H_
