#ifndef PREGELIX_ALGORITHMS_GRAPH_SAMPLING_H_
#define PREGELIX_ALGORITHMS_GRAPH_SAMPLING_H_

#include <string>

#include "common/hash.h"
#include "pregel/typed.h"

namespace pregelix {

/// Random-walk-based graph sampling (built-in library, Section 6; the tool
/// footnote 7 says produced the Webmap down-samples). `walkers` tokens
/// start at deterministic seed vertices and take `steps` random-walk hops;
/// every visited vertex is marked. Vertex value counts visits. The walk is
/// deterministic: the next hop is chosen by hashing (vid, superstep, token).
class GraphSamplingProgram : public TypedVertexProgram<int64_t, Empty, int64_t> {
 public:
  using Adapter = TypedProgramAdapter<int64_t, Empty, int64_t>;

  GraphSamplingProgram(int walkers, int steps, uint64_t seed = 7)
      : walkers_(walkers), steps_(steps), seed_(seed) {}

  void Compute(VertexT& vertex, MessageIterator<int64_t>& messages) override {
    if (vertex.superstep() == 1) {
      vertex.set_value(0);
      // Token t starts at the vertex whose hash matches (deterministic
      // seeding without global coordination).
      for (int t = 0; t < walkers_; ++t) {
        if (static_cast<int64_t>(
                Hash64(Slice(reinterpret_cast<const char*>(&t), 4), seed_) %
                static_cast<uint64_t>(vertex.num_vertices())) == vertex.id()) {
          ForwardToken(vertex, t);
          vertex.set_value(vertex.value() + 1);
        }
      }
      vertex.VoteToHalt();
      return;
    }
    while (messages.HasNext()) {
      const int64_t token = messages.Next();
      vertex.set_value(vertex.value() + 1);
      if (vertex.superstep() <= steps_) {
        ForwardToken(vertex, token);
      }
    }
    vertex.VoteToHalt();
  }

  std::string FormatValue(int64_t, const int64_t& value) const override {
    return std::to_string(value);
  }

 private:
  void ForwardToken(VertexT& vertex, int64_t token) {
    if (vertex.edges().empty()) return;
    uint64_t key[3] = {static_cast<uint64_t>(vertex.id()),
                       static_cast<uint64_t>(vertex.superstep()),
                       static_cast<uint64_t>(token)};
    const size_t pick =
        Hash64(Slice(reinterpret_cast<const char*>(key), sizeof(key)),
               seed_) %
        vertex.edges().size();
    vertex.SendMessage(vertex.edges()[pick].dst, token);
  }

  int walkers_;
  int steps_;
  uint64_t seed_;
};

}  // namespace pregelix

#endif  // PREGELIX_ALGORITHMS_GRAPH_SAMPLING_H_
