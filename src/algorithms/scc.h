#ifndef PREGELIX_ALGORITHMS_SCC_H_
#define PREGELIX_ALGORITHMS_SCC_H_

#include <algorithm>
#include <string>
#include <vector>

#include "common/serde.h"
#include "pregel/typed.h"

namespace pregelix {

/// Strongly connected components for directed graphs — one of the advanced
/// algorithms the paper's Hong Kong user group built on Pregelix
/// ("strongly connected components for directed graphs (e.g., the Twitter
/// follower network) [42]", Section 6).
///
/// Forward-backward coloring (Orzan-style), phased inside a single Pregel
/// job with the global aggregator as the phase barrier:
///
///   phase 0  broadcast ids along out-edges so every vertex learns its
///            in-edges (Pregel gives out-edges only);
///   phase 1  forward: propagate min label along out-edges to fixpoint;
///   phase 2  backward: roots (label == own id) propagate along in-edges
///            within their forward region to fixpoint;
///   phase 3  freeze: vertices reached both ways adopt the root as their
///            SCC id and halt forever; everyone else resets and re-enters
///            phase 1 for the next round.
///
/// The aggregator sums "progress" contributions; a phase advances exactly
/// when the previous superstep made none, so all live vertices switch phase
/// in the same superstep. Non-frozen vertices never vote to halt (they must
/// observe the barrier), so the job ends when every vertex is frozen.
///
/// Exercises: struct-valued vertices, tagged messages without a combiner,
/// aggregator-driven control flow, long multi-phase executions.
class SccProgram : public TypedVertexProgram<std::string, Empty,
                                             std::pair<int8_t, int64_t>> {
 public:
  using MsgT = std::pair<int8_t, int64_t>;
  using Adapter = TypedProgramAdapter<std::string, Empty, MsgT>;

  static constexpr int8_t kTagInEdge = 0;
  static constexpr int8_t kTagForward = 1;
  static constexpr int8_t kTagBackward = 2;

  /// Decoded vertex state (serialized into the std::string value).
  struct State {
    uint8_t phase = 0;
    int64_t fwd = -1;
    int64_t scc = -1;          ///< -1 until frozen
    bool reached_back = false;
    std::vector<int64_t> in_edges;

    std::string Encode() const {
      std::string out;
      out.push_back(static_cast<char>(phase));
      PutFixed64(&out, static_cast<uint64_t>(fwd));
      PutFixed64(&out, static_cast<uint64_t>(scc));
      out.push_back(reached_back ? 1 : 0);
      PutFixed32(&out, static_cast<uint32_t>(in_edges.size()));
      for (int64_t e : in_edges) PutFixed64(&out, static_cast<uint64_t>(e));
      return out;
    }
    static State Decode(const std::string& bytes) {
      State s;
      if (bytes.size() < 22) return s;
      const char* p = bytes.data();
      s.phase = static_cast<uint8_t>(p[0]);
      s.fwd = static_cast<int64_t>(DecodeFixed64(p + 1));
      s.scc = static_cast<int64_t>(DecodeFixed64(p + 9));
      s.reached_back = p[17] != 0;
      const uint32_t n = DecodeFixed32(p + 18);
      const char* e = p + 22;
      for (uint32_t i = 0; i < n && e + 8 <= bytes.data() + bytes.size();
           ++i, e += 8) {
        s.in_edges.push_back(static_cast<int64_t>(DecodeFixed64(e)));
      }
      return s;
    }
  };

  void Compute(VertexT& vertex, MessageIterator<MsgT>& messages) override {
    State state = State::Decode(vertex.value());
    if (state.scc >= 0) {
      // Frozen: ignore stray messages, stay asleep.
      vertex.VoteToHalt();
      return;
    }
    int64_t progress = 0;
    // Did the whole graph make progress last superstep? Zero => advance.
    int64_t last_progress = 1;
    if (vertex.superstep() > 1) vertex.GetAggregate(&last_progress);
    const bool advance = vertex.superstep() > 1 && last_progress == 0;

    switch (state.phase) {
      case 0: {  // discover in-edges
        if (vertex.superstep() == 1) {
          for (const EdgeT& e : vertex.edges()) {
            vertex.SendMessage(e.dst, MsgT(kTagInEdge, vertex.id()));
          }
          progress = 1;  // hold everyone in phase 0 one more superstep
        } else {
          while (messages.HasNext()) {
            const MsgT m = messages.Next();
            if (m.first == kTagInEdge) state.in_edges.push_back(m.second);
          }
          std::sort(state.in_edges.begin(), state.in_edges.end());
          state.in_edges.erase(
              std::unique(state.in_edges.begin(), state.in_edges.end()),
              state.in_edges.end());
          state.phase = 1;
          state.fwd = vertex.id();
          for (const EdgeT& e : vertex.edges()) {
            vertex.SendMessage(e.dst, MsgT(kTagForward, state.fwd));
          }
          progress = 1;
        }
        break;
      }
      case 1: {  // forward min-label to fixpoint
        int64_t best = state.fwd;
        while (messages.HasNext()) {
          const MsgT m = messages.Next();
          if (m.first == kTagForward) best = std::min(best, m.second);
        }
        if (best < state.fwd) {
          state.fwd = best;
          for (const EdgeT& e : vertex.edges()) {
            vertex.SendMessage(e.dst, MsgT(kTagForward, state.fwd));
          }
          progress = 1;
        } else if (advance) {
          // Fixpoint: enter the backward phase; roots seed it.
          state.phase = 2;
          state.reached_back = state.fwd == vertex.id();
          if (state.reached_back) {
            for (int64_t src : state.in_edges) {
              vertex.SendMessage(src, MsgT(kTagBackward, state.fwd));
            }
            progress = 1;
          }
        }
        break;
      }
      case 2: {  // backward within the forward region
        bool newly_reached = false;
        while (messages.HasNext()) {
          const MsgT m = messages.Next();
          if (m.first == kTagBackward && m.second == state.fwd &&
              !state.reached_back) {
            state.reached_back = true;
            newly_reached = true;
          }
        }
        if (newly_reached) {
          for (int64_t src : state.in_edges) {
            vertex.SendMessage(src, MsgT(kTagBackward, state.fwd));
          }
          progress = 1;
        } else if (advance) {
          // Fixpoint: freeze or start the next round.
          if (state.reached_back) {
            state.scc = state.fwd;
            vertex.set_value(state.Encode());
            vertex.Contribute<int64_t>(0);
            vertex.VoteToHalt();
            return;
          }
          state.phase = 1;
          state.fwd = vertex.id();
          for (const EdgeT& e : vertex.edges()) {
            vertex.SendMessage(e.dst, MsgT(kTagForward, state.fwd));
          }
          progress = 1;
        }
        break;
      }
      default:
        break;
    }
    vertex.set_value(state.Encode());
    vertex.Contribute(progress);
    // Stay awake: phase barriers need every unfrozen vertex to observe the
    // aggregate next superstep.
  }

  GlobalAggHooks AggregatorHooks() const override {
    return MakeGlobalAgg<int64_t>(
        0, [](int64_t a, int64_t b) { return a + b; });
  }

  std::string InitialValue(int64_t,
                           const std::vector<int64_t>&) const override {
    return State().Encode();
  }
  std::string DefaultValue() const override { return State().Encode(); }

  std::string FormatValue(int64_t vid, const std::string& v) const override {
    const State state = State::Decode(v);
    return std::to_string(state.scc >= 0 ? state.scc : vid);
  }
};

}  // namespace pregelix

#endif  // PREGELIX_ALGORITHMS_SCC_H_
