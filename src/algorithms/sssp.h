#ifndef PREGELIX_ALGORITHMS_SSSP_H_
#define PREGELIX_ALGORITHMS_SSSP_H_

#include <limits>
#include <string>

#include "pregel/typed.h"

namespace pregelix {

/// Single source shortest paths — a direct port of the paper's Figure 9
/// ShortestPathsVertex, the message-sparse workload where the left outer
/// join plan shines. Edge weights default to 1.0 (can be overridden via
/// InitialEdgeValue). Uses a min combiner.
class SsspProgram : public TypedVertexProgram<double, double, double> {
 public:
  using Adapter = TypedProgramAdapter<double, double, double>;

  static constexpr double kInfinity = std::numeric_limits<double>::max();

  explicit SsspProgram(int64_t source_id) : source_id_(source_id) {}

  void Compute(VertexT& vertex, MessageIterator<double>& messages) override {
    if (vertex.superstep() == 1) {
      vertex.set_value(kInfinity);
    }
    double min_dist = vertex.id() == source_id_ ? 0.0 : kInfinity;
    while (messages.HasNext()) {
      min_dist = std::min(min_dist, messages.Next());
    }
    if (min_dist < vertex.value()) {
      vertex.set_value(min_dist);
      for (const EdgeT& edge : vertex.edges()) {
        vertex.SendMessage(edge.dst, min_dist + edge.value);
      }
    }
    vertex.VoteToHalt();
  }

  bool has_combiner() const override { return true; }
  void Combine(double* acc, const double& incoming) const override {
    *acc = std::min(*acc, incoming);
  }

  double InitialEdgeValue(int64_t, int64_t) const override { return 1.0; }
  double DefaultValue() const override { return kInfinity; }

  std::string FormatValue(int64_t, const double& value) const override {
    return value >= kInfinity ? "inf" : FormatDouble(value);
  }

 private:
  int64_t source_id_;
};

}  // namespace pregelix

#endif  // PREGELIX_ALGORITHMS_SSSP_H_
