#ifndef PREGELIX_ALGORITHMS_TRIANGLE_COUNT_H_
#define PREGELIX_ALGORITHMS_TRIANGLE_COUNT_H_

#include <algorithm>
#include <string>
#include <vector>

#include "pregel/typed.h"

namespace pregelix {

/// Triangle counting (built-in library, paper Section 6) on an undirected
/// graph given as symmetric adjacency.
///
/// Superstep 1: every vertex v sends its higher-id neighbor list to each
/// higher-id neighbor. Superstep 2: a vertex u intersects each received
/// list with its own neighbor set; every hit is a triangle v < u < w,
/// counted exactly once. The global count is collected by the aggregator.
/// Exercises vector-valued messages and the default (gather) combine path.
class TriangleCountProgram
    : public TypedVertexProgram<int64_t, Empty, std::vector<int64_t>> {
 public:
  using Adapter = TypedProgramAdapter<int64_t, Empty, std::vector<int64_t>>;

  void Compute(VertexT& vertex,
               MessageIterator<std::vector<int64_t>>& messages) override {
    if (vertex.superstep() == 1) {
      vertex.set_value(0);
      std::vector<int64_t> higher;
      for (const EdgeT& e : vertex.edges()) {
        if (e.dst > vertex.id()) higher.push_back(e.dst);
      }
      std::sort(higher.begin(), higher.end());
      higher.erase(std::unique(higher.begin(), higher.end()), higher.end());
      for (int64_t dst : higher) {
        vertex.SendMessage(dst, higher);
      }
      vertex.VoteToHalt();
      return;
    }
    // Superstep 2: count intersections with the local neighborhood.
    std::vector<int64_t> mine;
    for (const EdgeT& e : vertex.edges()) {
      if (e.dst > vertex.id()) mine.push_back(e.dst);
    }
    std::sort(mine.begin(), mine.end());
    mine.erase(std::unique(mine.begin(), mine.end()), mine.end());
    int64_t count = 0;
    while (messages.HasNext()) {
      const std::vector<int64_t> candidate = messages.Next();
      for (int64_t w : candidate) {
        if (w == vertex.id()) continue;
        if (std::binary_search(mine.begin(), mine.end(), w)) ++count;
      }
    }
    vertex.set_value(count);
    if (count > 0) vertex.Contribute(count);
    vertex.VoteToHalt();
  }

  GlobalAggHooks AggregatorHooks() const override {
    return MakeGlobalAgg<int64_t>(
        0, [](int64_t a, int64_t b) { return a + b; });
  }

  std::string FormatValue(int64_t, const int64_t& value) const override {
    return std::to_string(value);
  }
};

}  // namespace pregelix

#endif  // PREGELIX_ALGORITHMS_TRIANGLE_COUNT_H_
