#ifndef PREGELIX_ALGORITHMS_BFS_TREE_H_
#define PREGELIX_ALGORITHMS_BFS_TREE_H_

#include <algorithm>
#include <string>

#include "pregel/typed.h"

namespace pregelix {

/// BFS spanning tree — the first of the graph-algorithm building blocks the
/// paper's Hong Kong user group implemented on Pregelix (Section 6: "BFS
/// (breadth first search) spanning tree, Euler tour, list ranking...").
///
/// Each vertex records the parent that first reached it; ties within a
/// superstep break toward the smallest parent id, so the tree is
/// deterministic. The vertex value is the parent id (-1 = unreached, source
/// parents itself).
class BfsTreeProgram : public TypedVertexProgram<int64_t, Empty, int64_t> {
 public:
  using Adapter = TypedProgramAdapter<int64_t, Empty, int64_t>;

  explicit BfsTreeProgram(int64_t source_id) : source_id_(source_id) {}

  void Compute(VertexT& vertex, MessageIterator<int64_t>& messages) override {
    if (vertex.superstep() == 1) {
      vertex.set_value(-1);
      if (vertex.id() == source_id_) {
        vertex.set_value(vertex.id());
        vertex.SendMessageToAllEdges(vertex.id());
      }
      vertex.VoteToHalt();
      return;
    }
    if (vertex.value() < 0) {
      int64_t parent = -1;
      while (messages.HasNext()) {
        const int64_t candidate = messages.Next();
        parent = parent < 0 ? candidate : std::min(parent, candidate);
      }
      if (parent >= 0) {
        vertex.set_value(parent);
        vertex.SendMessageToAllEdges(vertex.id());
      }
    }
    vertex.VoteToHalt();
  }

  bool has_combiner() const override { return true; }
  void Combine(int64_t* acc, const int64_t& incoming) const override {
    *acc = std::min(*acc, incoming);
  }

  int64_t DefaultValue() const override { return -1; }

  std::string FormatValue(int64_t, const int64_t& value) const override {
    return std::to_string(value);
  }

 private:
  int64_t source_id_;
};

}  // namespace pregelix

#endif  // PREGELIX_ALGORITHMS_BFS_TREE_H_
