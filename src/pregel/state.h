#ifndef PREGELIX_PREGEL_STATE_H_
#define PREGELIX_PREGEL_STATE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "dataflow/cluster.h"
#include "dfs/dfs.h"
#include "pregel/job_config.h"
#include "pregel/plan_optimizer.h"
#include "pregel/program.h"
#include "storage/index.h"
#include "storage/btree.h"

namespace pregelix {

/// The GS relation of Table 1 — GS(halt, aggregate, superstep) — extended
/// with the Pregel-specific statistics the statistics collector tracks
/// (paper Section 5.7). Primary copy lives on the DFS.
struct GlobalState {
  int64_t superstep = 0;  ///< last completed superstep
  bool halt = false;
  std::string aggregate;  ///< user aggregator value after `superstep`
  int64_t num_vertices = 0;
  int64_t num_edges = 0;
  int64_t live_vertices = 0;
  int64_t messages = 0;  ///< combined messages produced by `superstep`
  /// Combined message payload volume produced by `superstep` — the plan
  /// chooser's message-dominance signal (a sparse frontier with heavy
  /// fanout must not pick the probe join).
  int64_t message_bytes = 0;

  std::string Encode() const;
  Status Decode(const Slice& bytes);
};

/// Per-partition runtime state that survives across superstep jobs (the
/// stored relations: Vertex, Msg, and Vid for the left-outer plan).
struct PartitionState {
  /// Vertex relation partition (B-tree or LSM B-tree).
  std::unique_ptr<OrderedIndex> vertex_index;
  /// Live-vertex index for superstep i (left outer join plan only).
  std::unique_ptr<BTree> vid_index;
  /// Run of vids added by resolve in the previous superstep (sorted); they
  /// participate in the merge alongside Vid (left outer join plan only).
  std::string vid_extra_path;
  /// Sorted (vid, payload) run holding Msg_i for the upcoming superstep.
  std::string msg_path;

  // Outputs of the superstep in flight, installed by the runtime at the
  // barrier:
  std::string next_msg_path;
  uint64_t next_msg_count = 0;
  uint64_t next_msg_bytes = 0;
  std::unique_ptr<BTree> next_vid_index;
  std::string next_vid_extra_path;

  // Exact vertex/edge bookkeeping (set by load, adjusted by resolve).
  int64_t vertices = 0;
  int64_t edges = 0;

  /// Snapshot files this partition contributed to the checkpoint in flight;
  /// the driver folds them into the checkpoint MANIFEST (the commit record
  /// recovery validates before trusting a checkpoint).
  struct CheckpointFileInfo {
    std::string name;  ///< file name within the checkpoint dir
    uint64_t size = 0;
    uint64_t checksum = 0;
  };
  std::vector<CheckpointFileInfo> ckpt_files;
};

/// Shared context handed to every operator clone of a Pregelix job through
/// TaskContext::runtime_context (the paper's per-worker "runtime context",
/// Section 5.7: cached GS tuple + hooks into storage).
struct JobRuntimeContext {
  PregelProgram* program = nullptr;
  const PregelixJobConfig* job_config = nullptr;
  SimulatedCluster* cluster = nullptr;
  DistributedFileSystem* dfs = nullptr;
  std::string job_id;

  /// Cached GS of the previous superstep (read-only during a superstep job).
  GlobalState gs;
  /// Superstep currently executing (gs.superstep + 1).
  int64_t current_superstep = 1;
  /// Plan knobs in effect for the current superstep. Equal the job hints
  /// except under kAdaptive/kAuto, where ResolvePlanDecision resolves them
  /// per superstep (legacy heuristic / PlanOptimizer).
  JoinStrategy current_join = JoinStrategy::kFullOuter;
  GroupByStrategy current_groupby = GroupByStrategy::kSort;
  GroupByConnector current_connector = GroupByConnector::kUnmerged;
  /// Resolved once at job admission (before load); never kAuto.
  VertexStorage current_storage = VertexStorage::kBTree;

  /// Feedback-driven chooser for kAuto knobs; null for static/kAdaptive
  /// jobs. Owned here so operator lambdas and the driver share one
  /// instance whose lifetime matches the job context.
  std::shared_ptr<PlanOptimizer> optimizer;
  /// Plan the previous superstep ran under (driver path), for switch
  /// detection by ResolveAndPublishPlan.
  PlanDecision prev_plan;
  bool has_prev_plan = false;
  /// Verifier fallback pin: when ResolveAndPublishPlan rejects the
  /// optimizer's candidate for `pinned_superstep`, ResolvePlanDecision
  /// returns `pinned_plan` for that superstep instead of re-deriving the
  /// rejected choice (the pin is inert for any other superstep).
  bool plan_pinned = false;
  int64_t pinned_superstep = -1;
  PlanDecision pinned_plan;

  /// True when the Vid live-vertex index must be maintained (any job that
  /// may run a left outer join superstep).
  bool MaintainsVid() const {
    return job_config->join != JoinStrategy::kFullOuter;
  }

  std::vector<PartitionState> partitions;

  /// Guards pending_gs: written by the single global-aggregation clone on a
  /// worker thread, read by the driver at the barrier. The thread join
  /// already orders the two, but the lock makes the contract explicit and
  /// machine-checked (and keeps any future concurrent reader safe).
  Mutex gs_mutex{"pregel_gs", LockRank::kPregelGlobalState};
  GlobalState pending_gs GUARDED_BY(gs_mutex);

  // Mutation counters (resolve side), folded into GS at the barrier.
  std::atomic<int64_t> vertices_added{0};
  std::atomic<int64_t> vertices_removed{0};
  std::atomic<int64_t> edges_delta{0};

  /// Scratch directory of one partition for this job.
  std::string PartitionDir(int p) const {
    return cluster->partition_dir(p) + "/" + job_id;
  }
};

}  // namespace pregelix

#endif  // PREGELIX_PREGEL_STATE_H_
