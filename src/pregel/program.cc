#include "pregel/program.h"

namespace pregelix {

GroupCombiner ListMsgCombiner() {
  GroupCombiner c;
  c.init = [](const Slice& payload, std::string* acc) {
    acc->assign(payload.data(), payload.size());
  };
  c.step = [](const Slice& payload, std::string* acc) {
    acc->append(payload.data(), payload.size());
  };
  return c;
}

PregelProgram::ResolveAction PregelProgram::Resolve(
    int64_t vid, const std::vector<MutationRecord>& mutations,
    std::string* vertex_bytes) const {
  // Default partial order: deletions first, then insertions; the last
  // insertion wins.
  bool deleted = false;
  bool inserted = false;
  for (const MutationRecord& m : mutations) {
    if (m.op == MutationRecord::Op::kRemoveVertex) deleted = true;
  }
  for (const MutationRecord& m : mutations) {
    if (m.op == MutationRecord::Op::kAddVertex) {
      inserted = true;
      *vertex_bytes = m.vertex_bytes;
    }
  }
  if (inserted) return ResolveAction::kUpsert;
  if (deleted) return ResolveAction::kDelete;
  return ResolveAction::kNone;
}

}  // namespace pregelix
