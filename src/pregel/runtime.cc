#include "pregel/runtime.h"

#include <atomic>
#include <chrono>

#include "common/logging.h"
#include "common/temp_dir.h"
#include "common/trace.h"
#include "dataflow/executor.h"
#include "io/file.h"
#include "pregel/plans.h"
#include "pregel/vertex_format.h"
#include "storage/btree.h"
#include "storage/lsm_btree.h"

namespace pregelix {

namespace {

std::atomic<uint64_t> g_job_counter{0};

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<MetricsSnapshot> Delta(const std::vector<MetricsSnapshot>& before,
                                   const std::vector<MetricsSnapshot>& after) {
  std::vector<MetricsSnapshot> out(before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    out[i] = after[i] - before[i];
  }
  return out;
}

MetricsSnapshot Sum(const std::vector<MetricsSnapshot>& deltas) {
  MetricsSnapshot total;
  for (const MetricsSnapshot& d : deltas) total += d;
  return total;
}

std::string GsPath(const JobRuntimeContext& ctx) {
  return "jobs/" + ctx.job_id + "/gs";
}

}  // namespace

PregelixRuntime::PregelixRuntime(SimulatedCluster* cluster,
                                 DistributedFileSystem* dfs,
                                 CostModelParams cost_params)
    : cluster_(cluster), dfs_(dfs), cost_params_(cost_params) {}

Status PregelixRuntime::Run(PregelProgram* program,
                            const PregelixJobConfig& config,
                            JobResult* result) {
  JobRuntimeContext ctx;
  ctx.program = program;
  ctx.job_config = &config;
  ctx.cluster = cluster_;
  ctx.dfs = dfs_;
  ctx.job_id =
      config.name + "-" + std::to_string(g_job_counter.fetch_add(1));
  ctx.partitions.resize(cluster_->num_partitions());
  Status s = RunInternal(program, config, &ctx, /*do_load=*/true,
                         /*do_dump=*/!config.output_dir.empty(), result);
  Cleanup(&ctx);
  return s;
}

Status PregelixRuntime::RunInternal(PregelProgram* program,
                                    const PregelixJobConfig& config,
                                    JobRuntimeContext* ctx, bool do_load,
                                    bool do_dump, JobResult* result) {
  const double wall_start = WallSeconds();
  result->superstep_stats.clear();
  result->recoveries = 0;

  auto init_gs_after_load = [&]() -> Status {
    GlobalState gs;
    gs.superstep = 0;
    gs.halt = false;
    gs.aggregate = program->GlobalAggregator().initial;
    for (const PartitionState& p : ctx->partitions) {
      gs.num_vertices += p.vertices;
      gs.num_edges += p.edges;
    }
    gs.live_vertices = gs.num_vertices;
    ctx->gs = gs;
    return dfs_->Write(GsPath(*ctx), gs.Encode());
  };

  if (do_load) {
    TraceSpan span(cluster_->tracer(), "pregel.load", trace_cat::kPregel,
                   kTraceDriverWorker);
    const std::vector<MetricsSnapshot> before = cluster_->SnapshotAll();
    JobSpec load = BuildLoadJob(ctx);
    PREGELIX_RETURN_NOT_OK(RunJob(*cluster_, load, ctx));
    result->load_sim_seconds = SimulatedStepSeconds(
        Delta(before, cluster_->SnapshotAll()), cost_params_);
    PREGELIX_RETURN_NOT_OK(init_gs_after_load());
    span.AddArg("vertices", ctx->gs.num_vertices);
    span.AddArg("edges", ctx->gs.num_edges);
  }

  int64_t last_checkpoint = -1;
  for (;;) {
    const int64_t superstep = ctx->gs.superstep + 1;
    if (config.max_supersteps > 0 && superstep > config.max_supersteps) {
      break;
    }

    // --- Failure injection + failure manager (paper Section 5.5) ---------
    if (fail_at_superstep_ == superstep && fail_worker_ >= 0) {
      PLOG(Info) << "injecting failure of worker " << fail_worker_
                 << " before superstep " << superstep;
      fail_at_superstep_ = -1;
      // Machine state is gone: close every partition's storage handles
      // before wiping (handles of healthy partitions are rebuilt too — the
      // paper reloads the full state onto a fresh worker set).
      for (PartitionState& p : ctx->partitions) {
        p.vertex_index.reset();
        p.vid_index.reset();
        p.next_vid_index.reset();
      }
      PREGELIX_RETURN_NOT_OK(cluster_->FailWorker(fail_worker_));
      ++result->recoveries;
      int64_t resume = 0;
      bool restart = false;
      PREGELIX_RETURN_NOT_OK(Recover(ctx, &resume, &restart));
      if (restart) {
        const std::vector<MetricsSnapshot> before = cluster_->SnapshotAll();
        JobSpec load = BuildLoadJob(ctx);
        PREGELIX_RETURN_NOT_OK(RunJob(*cluster_, load, ctx));
        result->load_sim_seconds += SimulatedStepSeconds(
            Delta(before, cluster_->SnapshotAll()), cost_params_);
        PREGELIX_RETURN_NOT_OK(init_gs_after_load());
      }
      continue;  // re-evaluate the loop with the recovered GS
    }

    // --- One superstep ----------------------------------------------------
    ctx->current_superstep = superstep;
    ctx->pending_gs = GlobalState{};
    ctx->vertices_added = 0;
    ctx->vertices_removed = 0;
    ctx->edges_delta = 0;

    TraceSpan step_span(cluster_->tracer(), "pregel.superstep",
                        trace_cat::kPregel, kTraceDriverWorker);
    const std::vector<MetricsSnapshot> before = cluster_->SnapshotAll();
    const double step_wall = WallSeconds();
    JobSpec spec = BuildSuperstepJob(ctx);
    PREGELIX_RETURN_NOT_OK(RunJob(*cluster_, spec, ctx));
    const std::vector<MetricsSnapshot> deltas =
        Delta(before, cluster_->SnapshotAll());

    PREGELIX_RETURN_NOT_OK(AdvanceGlobalState(ctx));

    SuperstepStats stats;
    stats.superstep = superstep;
    stats.sim_seconds = SimulatedStepSeconds(deltas, cost_params_);
    stats.wall_seconds = WallSeconds() - step_wall;
    stats.live_vertices = ctx->gs.live_vertices;
    stats.messages = ctx->gs.messages;
    stats.used_left_outer_join =
        ctx->current_join == JoinStrategy::kLeftOuter;
    stats.cluster_delta = Sum(deltas);
    result->superstep_stats.push_back(stats);
    result->supersteps_sim_seconds += stats.sim_seconds;

    // Close the superstep span carrying the SuperstepStats the runtime just
    // computed, so one trace row tells the whole per-iteration story.
    step_span.AddArg("superstep", superstep);
    step_span.AddArg("live_vertices", stats.live_vertices);
    step_span.AddArg("messages", stats.messages);
    step_span.AddArg("left_outer_join", stats.used_left_outer_join ? 1 : 0);
    step_span.AddArg("sim_millis",
                     static_cast<int64_t>(stats.sim_seconds * 1e3));
    step_span.AddArg("cluster_cpu_ops",
                     static_cast<int64_t>(stats.cluster_delta.cpu_ops));
    step_span.AddArg(
        "cluster_net_bytes",
        static_cast<int64_t>(stats.cluster_delta.net_bytes));
    step_span.End();

    // --- Checkpoint at user-selected boundaries ---------------------------
    if (config.checkpoint_interval > 0 &&
        superstep % config.checkpoint_interval == 0 && !ctx->gs.halt) {
      TraceSpan ckpt_span(cluster_->tracer(), "pregel.checkpoint",
                          trace_cat::kPregel, kTraceDriverWorker);
      ckpt_span.AddArg("superstep", superstep);
      JobSpec ckpt = BuildCheckpointJob(ctx, superstep);
      PREGELIX_RETURN_NOT_OK(RunJob(*cluster_, ckpt, ctx));
      PREGELIX_RETURN_NOT_OK(dfs_->Write(
          CheckpointDir(*ctx, superstep) + "/gs", ctx->gs.Encode()));
      last_checkpoint = superstep;
    }
    (void)last_checkpoint;

    if (ctx->gs.halt) break;
  }

  if (do_dump) {
    TraceSpan span(cluster_->tracer(), "pregel.dump", trace_cat::kPregel,
                   kTraceDriverWorker);
    const std::vector<MetricsSnapshot> before = cluster_->SnapshotAll();
    JobSpec dump = BuildDumpJob(ctx);
    PREGELIX_RETURN_NOT_OK(RunJob(*cluster_, dump, ctx));
    result->dump_sim_seconds = SimulatedStepSeconds(
        Delta(before, cluster_->SnapshotAll()), cost_params_);
  }

  result->supersteps = ctx->gs.superstep;
  result->final_gs = ctx->gs;
  result->total_sim_seconds = result->load_sim_seconds +
                              result->supersteps_sim_seconds +
                              result->dump_sim_seconds;
  result->avg_iteration_sim_seconds =
      result->supersteps == 0
          ? 0
          : result->supersteps_sim_seconds /
                static_cast<double>(result->supersteps);
  result->wall_seconds = WallSeconds() - wall_start;
  return Status::OK();
}

Status PregelixRuntime::AdvanceGlobalState(JobRuntimeContext* ctx) {
  GlobalState gs = ctx->pending_gs;
  gs.num_vertices = ctx->gs.num_vertices + ctx->vertices_added.load() -
                    ctx->vertices_removed.load();
  gs.num_edges = ctx->gs.num_edges + ctx->edges_delta.load();
  gs.messages = 0;
  for (PartitionState& p : ctx->partitions) {
    gs.messages += static_cast<int64_t>(p.next_msg_count);
  }
  // Vertices added by resolve start life active; messages keep the job
  // alive via the halt contributions of their senders.
  if (ctx->vertices_added.load() > 0 || gs.messages > 0) {
    gs.halt = false;
  }

  // Install the superstep outputs: Msg_{i+1} replaces Msg_i, Vid_{i+1}
  // replaces Vid_i (sticky, partition-local swaps; no data moves).
  for (PartitionState& p : ctx->partitions) {
    if (!p.msg_path.empty()) DeleteFileIfExists(p.msg_path);
    p.msg_path = p.next_msg_path;
    p.next_msg_path.clear();
    p.next_msg_count = 0;
    if (ctx->job_config->join != JoinStrategy::kFullOuter) {
      if (p.vid_index != nullptr) {
        Status s = p.vid_index->Destroy();
        if (!s.ok()) PLOG(Warn) << "vid destroy: " << s.ToString();
      }
      p.vid_index = std::move(p.next_vid_index);
      if (!p.vid_extra_path.empty()) DeleteFileIfExists(p.vid_extra_path);
      p.vid_extra_path = p.next_vid_extra_path;
      p.next_vid_extra_path.clear();
    }
  }
  ctx->gs = gs;
  return dfs_->Write(GsPath(*ctx), gs.Encode());
}

Status PregelixRuntime::Recover(JobRuntimeContext* ctx,
                                int64_t* resume_superstep,
                                bool* restart_from_load) {
  // Find the newest checkpoint at or below the last completed superstep.
  for (int64_t s = ctx->gs.superstep; s >= 1; --s) {
    const std::string gs_file = CheckpointDir(*ctx, s) + "/gs";
    if (!dfs_->Exists(gs_file)) continue;
    PLOG(Info) << "recovering from checkpoint at superstep " << s;
    JobSpec recovery = BuildRecoveryJob(ctx, s);
    PREGELIX_RETURN_NOT_OK(RunJob(*cluster_, recovery, ctx));
    std::string encoded;
    PREGELIX_RETURN_NOT_OK(dfs_->Read(gs_file, &encoded));
    GlobalState gs;
    PREGELIX_RETURN_NOT_OK(gs.Decode(encoded));
    ctx->gs = gs;
    *resume_superstep = s + 1;
    *restart_from_load = false;
    return Status::OK();
  }
  PLOG(Info) << "no checkpoint found; restarting from load";
  *restart_from_load = true;
  *resume_superstep = 1;
  return Status::OK();
}

void PregelixRuntime::Cleanup(JobRuntimeContext* ctx) {
  for (int p = 0; p < static_cast<int>(ctx->partitions.size()); ++p) {
    PartitionState& state = ctx->partitions[p];
    state.vertex_index.reset();
    state.vid_index.reset();
    state.next_vid_index.reset();
    RemoveAll(ctx->PartitionDir(p));
  }
  Status s = dfs_->DeleteRecursive("jobs/" + ctx->job_id);
  if (!s.ok()) {
    PLOG(Warn) << "job dir cleanup failed: " << s.ToString();
  }
}

Status PregelixRuntime::RunPipeline(
    const std::vector<std::pair<PregelProgram*, PregelixJobConfig>>& jobs,
    std::vector<JobResult>* results) {
  PREGELIX_CHECK(!jobs.empty());
  results->clear();
  results->resize(jobs.size());

  JobRuntimeContext ctx;
  ctx.cluster = cluster_;
  ctx.dfs = dfs_;
  ctx.job_id = jobs[0].second.name + "-pipeline-" +
               std::to_string(g_job_counter.fetch_add(1));
  ctx.partitions.resize(cluster_->num_partitions());

  Status status;
  for (size_t j = 0; j < jobs.size(); ++j) {
    PregelProgram* program = jobs[j].first;
    const PregelixJobConfig& config = jobs[j].second;
    ctx.program = program;
    ctx.job_config = &config;

    if (j > 0) {
      // Compatible-job handoff: reactivate all vertices, clear Msg, rebuild
      // Vid for the next job (no DFS round trip, no re-load).
      status = PrepareNextPipelinedJob(&ctx);
      if (!status.ok()) break;
    }
    const bool last = j + 1 == jobs.size();
    status = RunInternal(program, config, &ctx, /*do_load=*/j == 0,
                         /*do_dump=*/last && !config.output_dir.empty(),
                         &(*results)[j]);
    if (!status.ok()) break;
  }
  Cleanup(&ctx);
  return status;
}

Status PregelixRuntime::PrepareNextPipelinedJob(JobRuntimeContext* ctx) {
  const bool loj = ctx->job_config->join != JoinStrategy::kFullOuter;
  for (int p = 0; p < static_cast<int>(ctx->partitions.size()); ++p) {
    PartitionState& state = ctx->partitions[p];
    if (!state.msg_path.empty()) {
      DeleteFileIfExists(state.msg_path);
      state.msg_path.clear();
    }
    if (!state.vid_extra_path.empty()) {
      DeleteFileIfExists(state.vid_extra_path);
      state.vid_extra_path.clear();
    }
    if (state.vid_index != nullptr) {
      Status s = state.vid_index->Destroy();
      if (!s.ok()) PLOG(Warn) << "vid destroy: " << s.ToString();
      state.vid_index.reset();
    }

    // Reactivate every vertex (all vertices start a Pregel job active) and
    // rebuild the live-vertex index if the next job uses the left-outer
    // plan. Updates are buffered so the scan never races its own writes.
    std::vector<std::pair<std::string, std::string>> reactivations;
    std::unique_ptr<IndexBulkLoader> vid_loader;
    if (loj) {
      PREGELIX_RETURN_NOT_OK(MakePipelineVidIndex(ctx, p, &state.vid_index));
      vid_loader = state.vid_index->NewBulkLoader();
    }
    std::unique_ptr<IndexIterator> it = state.vertex_index->NewIterator();
    PREGELIX_RETURN_NOT_OK(it->SeekToFirst());
    int64_t vertices = 0, edges = 0;
    while (it->Valid()) {
      if (VertexHalt(it->value())) {
        std::string record = it->value().ToString();
        SetVertexHalt(&record, false);
        reactivations.emplace_back(it->key().ToString(), std::move(record));
      }
      if (vid_loader != nullptr) {
        PREGELIX_RETURN_NOT_OK(vid_loader->Add(it->key(), Slice()));
      }
      ++vertices;
      edges += VertexEdgeCount(it->value());
      PREGELIX_RETURN_NOT_OK(it->Next());
    }
    it.reset();
    if (vid_loader != nullptr) {
      PREGELIX_RETURN_NOT_OK(vid_loader->Finish());
    }
    for (const auto& [key, record] : reactivations) {
      PREGELIX_RETURN_NOT_OK(
          state.vertex_index->Upsert(Slice(key), Slice(record)));
    }
    state.vertices = vertices;
    state.edges = edges;
  }

  GlobalState gs;
  gs.superstep = 0;
  gs.halt = false;
  gs.aggregate = ctx->program->GlobalAggregator().initial;
  for (const PartitionState& p : ctx->partitions) {
    gs.num_vertices += p.vertices;
    gs.num_edges += p.edges;
  }
  gs.live_vertices = gs.num_vertices;
  ctx->gs = gs;
  return dfs_->Write(GsPath(*ctx), gs.Encode());
}

Status PregelixRuntime::MakePipelineVidIndex(JobRuntimeContext* ctx, int p,
                                             std::unique_ptr<BTree>* out) {
  const std::string dir = ctx->PartitionDir(p);
  PREGELIX_CHECK(EnsureDir(dir));
  const int worker = ctx->cluster->worker_of_partition(p);
  const std::string path =
      dir + "/vid-pipe-" + std::to_string(g_job_counter.fetch_add(1)) +
      ".btree";
  DeleteFileIfExists(path);
  return BTree::Open(&ctx->cluster->cache(worker), path, out);
}

}  // namespace pregelix
