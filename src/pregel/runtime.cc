#include "pregel/runtime.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/event_journal.h"
#include "common/fault_injection.h"
#include "common/hash.h"
#include "common/logging.h"
#include "common/retry.h"
#include "common/temp_dir.h"
#include "common/time_ledger.h"
#include "common/trace.h"
#include "dataflow/executor.h"
#include "io/file.h"
#include "pregel/plans.h"
#include "pregel/vertex_format.h"
#include "pregel/watchdog.h"
#include "server/job_registry.h"
#include "storage/btree.h"
#include "storage/lsm_btree.h"

namespace pregelix {

namespace {

std::atomic<uint64_t> g_job_counter{0};

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::vector<MetricsSnapshot> Delta(const std::vector<MetricsSnapshot>& before,
                                   const std::vector<MetricsSnapshot>& after) {
  std::vector<MetricsSnapshot> out(before.size());
  for (size_t i = 0; i < before.size(); ++i) {
    out[i] = after[i] - before[i];
  }
  return out;
}

MetricsSnapshot Sum(const std::vector<MetricsSnapshot>& deltas) {
  MetricsSnapshot total;
  for (const MetricsSnapshot& d : deltas) total += d;
  return total;
}

/// Compact "category=ns;..." rendering of a per-superstep ledger delta for
/// the superstep.end journal event; empty when every bucket is zero.
std::string LedgerDeltaString(
    const std::array<int64_t, kNumTimeCategories>& delta) {
  std::string out;
  for (int c = 0; c < kNumTimeCategories; ++c) {
    if (delta[c] == 0) continue;
    if (!out.empty()) out += ";";
    out += kTimeCategoryNames[c];
    out += "=";
    out += std::to_string(delta[c]);
  }
  return out;
}

std::string GsPath(const JobRuntimeContext& ctx) {
  return "jobs/" + ctx.job_id + "/gs";
}

/// Writes the GS tuple to the DFS, retrying transient faults. This is the
/// primary copy (paper Section 5.7); losing it silently would orphan the
/// job, so it gets its own fault point and retry budget.
Status WriteGs(DistributedFileSystem* dfs, const JobRuntimeContext& ctx,
               const GlobalState& gs) {
  return RetryTransient("gs.write", [&]() -> Status {
    PREGELIX_RETURN_NOT_OK(fault::MaybeFail("pregel.gs.write"));
    return dfs->Write(GsPath(ctx), gs.Encode());
  });
}

/// Publishes a job's start/finish to the observability registries (the
/// live status table and the event journal). Both sinks are process-global,
/// bounded, and lock-free when idle-ish, so every job publishes
/// unconditionally — `pregelix serve` / --admin-port then has live data
/// without any per-job opt-in.
void PublishJobStart(const JobRuntimeContext& ctx, const std::string& name) {
  server::JobStatusRegistry::Global().OnJobStart(ctx.job_id, name);
  EventJournal::Global().Append("job.start", ctx.job_id, -1,
                                {{"name", name}});
}

void PublishJobFinish(const JobRuntimeContext& ctx, const Status& s) {
  server::JobStatusRegistry::Global().OnJobFinish(ctx.job_id, s.ok(),
                                                  s.ToString());
  EventJournal::Global().Append(
      "job.finish", ctx.job_id, -1,
      {{"ok", s.ok() ? "true" : "false"},
       {"status", s.ok() ? "OK" : s.ToString()}});
}

}  // namespace

PregelixRuntime::PregelixRuntime(SimulatedCluster* cluster,
                                 DistributedFileSystem* dfs,
                                 CostModelParams cost_params)
    : cluster_(cluster), dfs_(dfs), cost_params_(cost_params) {}

Status PregelixRuntime::Run(PregelProgram* program,
                            const PregelixJobConfig& config,
                            JobResult* result) {
  JobRuntimeContext ctx;
  ctx.program = program;
  ctx.job_config = &config;
  ctx.cluster = cluster_;
  ctx.dfs = dfs_;
  ctx.job_id =
      config.job_id.empty()
          ? config.name + "-" + std::to_string(g_job_counter.fetch_add(1))
          : config.job_id;
  ctx.partitions.resize(cluster_->num_partitions());
  PublishJobStart(ctx, config.name);
  // Time ledger (DESIGN.md §20): the driver thread is attributed for the
  // whole job. Attach can refuse (already attached by an enclosing job or
  // the ledger is disabled); only a successful attach detaches.
  const bool ledger_attached = TimeLedger::AttachCurrentThread(
      TimeLedger::kDriverWorker, TimeCategory::kCompute, "driver");
  Status s = RunInternal(program, config, &ctx, /*do_load=*/true,
                         /*do_dump=*/!config.output_dir.empty(), result);
  if (ledger_attached) TimeLedger::DetachCurrentThread();
  PublishJobFinish(ctx, s);
  // A failed job keeps its DFS state (GS + checkpoints): with a stable
  // job_id, a later Run with resume=true picks up from the newest valid
  // checkpoint instead of re-running lost supersteps from the input.
  Cleanup(&ctx, /*keep_dfs=*/!s.ok() && !config.job_id.empty());
  return s;
}

Status PregelixRuntime::RunInternal(PregelProgram* program,
                                    const PregelixJobConfig& config,
                                    JobRuntimeContext* ctx, bool do_load,
                                    bool do_dump, JobResult* result) {
  const double wall_start = WallSeconds();
  result->superstep_stats.clear();
  result->recoveries = 0;
  result->plan_profile.reset();
  result->plan_decisions.clear();

  // Plan chooser setup. Storage resolves once at admission (the indexes are
  // built at load and never rebuilt mid-job); the three switchable knobs
  // get a feedback-driven PlanOptimizer iff any of them is kAuto.
  // RunPipeline reuses one ctx across jobs, so chooser state resets here.
  ctx->current_storage = ResolveStorageAtAdmission(*ctx);
  ctx->has_prev_plan = false;
  if (config.join == JoinStrategy::kAuto ||
      config.groupby == GroupByStrategy::kAuto ||
      config.groupby_connector == GroupByConnector::kAuto) {
    PlanOptimizerOptions opts;
    opts.groupby_memory_bytes = cluster_->config().groupby_memory_bytes;
    ctx->optimizer = std::make_shared<PlanOptimizer>(opts);
  } else {
    ctx->optimizer.reset();
  }

  // EXPLAIN ANALYZE support: one PlanProfile per superstep, merged into a
  // cumulative job profile. Null when profiling is off — the executor and
  // kernels then skip every instrumentation site on a pointer test. A kAuto
  // job forces profiling on: the optimizer's combiner-reduction and skew
  // signals only exist in the profile.
  const bool profile_plan = config.profile_plan || ctx->optimizer != nullptr;
  std::shared_ptr<PlanProfile> cumulative;
  if (profile_plan) cumulative = std::make_shared<PlanProfile>();

  // Flags a superstep that runs far past the trailing-mean wall time while
  // it is still running (wedged exchange, pathological skew).
  StallWatchdog watchdog(config.stall_factor, cluster_->registry(),
                         config.name, ctx->job_id);

  // Summed buffer-cache hit/miss counters across workers, for per-superstep
  // hit-ratio deltas in the progress log.
  auto cache_counts = [this]() -> std::pair<uint64_t, uint64_t> {
    std::pair<uint64_t, uint64_t> c{0, 0};
    for (int w = 0; w < cluster_->num_workers(); ++w) {
      c.first += cluster_->cache(w).hit_count();
      c.second += cluster_->cache(w).miss_count();
    }
    return c;
  };

  auto init_gs_after_load = [&]() -> Status {
    GlobalState gs;
    gs.superstep = 0;
    gs.halt = false;
    gs.aggregate = program->GlobalAggregator().initial;
    for (const PartitionState& p : ctx->partitions) {
      gs.num_vertices += p.vertices;
      gs.num_edges += p.edges;
    }
    gs.live_vertices = gs.num_vertices;
    ctx->gs = gs;
    return WriteGs(dfs_, *ctx, gs);
  };

  auto load_from_input = [&]() -> Status {
    TraceSpan span(cluster_->tracer(), "pregel.load", trace_cat::kPregel,
                   kTraceDriverWorker);
    const std::vector<MetricsSnapshot> before = cluster_->SnapshotAll();
    JobSpec load = BuildLoadJob(ctx);
    PREGELIX_RETURN_NOT_OK(RunJob(*cluster_, load, ctx));
    result->load_sim_seconds += SimulatedStepSeconds(
        Delta(before, cluster_->SnapshotAll()), cost_params_);
    PREGELIX_RETURN_NOT_OK(init_gs_after_load());
    span.AddArg("vertices", ctx->gs.num_vertices);
    span.AddArg("edges", ctx->gs.num_edges);
    return Status::OK();
  };

  if (do_load) {
    if (config.resume) {
      // Crash restart: rebuild local state from the newest valid checkpoint
      // of this job_id; if none survives validation, load from scratch.
      int64_t resume = 0;
      bool restart = false;
      PREGELIX_RETURN_NOT_OK(Recover(ctx, &resume, &restart));
      if (restart) {
        PREGELIX_RETURN_NOT_OK(load_from_input());
      } else {
        ++result->recoveries;
      }
    } else {
      PREGELIX_RETURN_NOT_OK(load_from_input());
    }
  }

  int64_t last_checkpoint = -1;
  for (;;) {
    const int64_t superstep = ctx->gs.superstep + 1;
    if (config.max_supersteps > 0 && superstep > config.max_supersteps) {
      break;
    }
    // Superstep-scoped fault specs key off this; free when nothing is armed.
    if (fault::FaultInjector::Global().any_armed()) {
      fault::FaultInjector::Global().SetScope(superstep);
    }

    // --- Failure injection + failure manager (paper Section 5.5) ---------
    if (fail_at_superstep_ == superstep && fail_worker_ >= 0) {
      PLOG(Info) << "injecting failure of worker " << fail_worker_
                 << " before superstep " << superstep;
      fail_at_superstep_ = -1;
      // Machine state is gone: close every partition's storage handles
      // before wiping (handles of healthy partitions are rebuilt too — the
      // paper reloads the full state onto a fresh worker set).
      for (PartitionState& p : ctx->partitions) {
        p.vertex_index.reset();
        p.vid_index.reset();
        p.next_vid_index.reset();
      }
      PREGELIX_RETURN_NOT_OK(cluster_->FailWorker(fail_worker_));
      ++result->recoveries;
      int64_t resume = 0;
      bool restart = false;
      PREGELIX_RETURN_NOT_OK(Recover(ctx, &resume, &restart));
      if (restart) {
        const std::vector<MetricsSnapshot> before = cluster_->SnapshotAll();
        JobSpec load = BuildLoadJob(ctx);
        PREGELIX_RETURN_NOT_OK(RunJob(*cluster_, load, ctx));
        result->load_sim_seconds += SimulatedStepSeconds(
            Delta(before, cluster_->SnapshotAll()), cost_params_);
        PREGELIX_RETURN_NOT_OK(init_gs_after_load());
      }
      continue;  // re-evaluate the loop with the recovered GS
    }

    // --- One superstep ----------------------------------------------------
    ctx->current_superstep = superstep;
    {
      MutexLock lock(&ctx->gs_mutex);
      ctx->pending_gs = GlobalState{};
    }
    ctx->vertices_added = 0;
    ctx->vertices_removed = 0;
    ctx->edges_delta = 0;

    server::JobStatusRegistry::Global().OnSuperstepStart(ctx->job_id,
                                                         superstep);
    EventJournal::Global().Append(
        "superstep.begin", ctx->job_id, superstep,
        {{"live", std::to_string(ctx->gs.live_vertices)}});

    TraceSpan step_span(cluster_->tracer(), "pregel.superstep",
                        trace_cat::kPregel, kTraceDriverWorker);
    const std::vector<MetricsSnapshot> before = cluster_->SnapshotAll();
    const std::pair<uint64_t, uint64_t> cache_before = cache_counts();
    // Time-ledger delta for this superstep (DESIGN.md §20). Snapshots fold
    // in-flight time of attached threads, so the delta is a faithful
    // per-superstep attribution up to one in-flight interval of jitter.
    const std::array<int64_t, kNumTimeCategories> ledger_before =
        TimeLedger::Global().TakeSnapshot().category_ns;
    const double step_wall = WallSeconds();
    // Resolve (and publish: fault point, journal, metrics, /jobs/<id>) the
    // physical plan before generating the superstep job. BuildSuperstepJob
    // re-resolves internally, but the optimizer memoizes per superstep so
    // the two calls agree and hysteresis state advances once.
    PlanDecisionRecord plan_record;
    PREGELIX_RETURN_NOT_OK(
        ResolveAndPublishPlan(ctx, cluster_->registry(), &plan_record));
    result->plan_decisions.push_back(plan_record);
    JobSpec spec = BuildSuperstepJob(ctx);
    std::shared_ptr<PlanProfile> step_profile;
    if (profile_plan) step_profile = std::make_shared<PlanProfile>();
    const int64_t stalls_before = watchdog.stall_count();
    watchdog.Arm(superstep);
    const Status step_status =
        RunJob(*cluster_, spec, ctx, step_profile.get());
    watchdog.Disarm(
        static_cast<uint64_t>((WallSeconds() - step_wall) * 1e9));
    const bool stalled = watchdog.stall_count() > stalls_before;
    PREGELIX_RETURN_NOT_OK(step_status);
    const std::vector<MetricsSnapshot> deltas =
        Delta(before, cluster_->SnapshotAll());
    const std::pair<uint64_t, uint64_t> cache_after = cache_counts();

    PREGELIX_RETURN_NOT_OK(AdvanceGlobalState(ctx));

    SuperstepStats stats;
    stats.superstep = superstep;
    stats.sim_seconds = SimulatedStepSeconds(deltas, cost_params_);
    stats.wall_seconds = WallSeconds() - step_wall;
    stats.live_vertices = ctx->gs.live_vertices;
    stats.messages = ctx->gs.messages;
    stats.used_left_outer_join =
        ctx->current_join == JoinStrategy::kLeftOuter;
    stats.groupby_used = ctx->current_groupby;
    stats.connector_used = ctx->current_connector;
    stats.cluster_delta = Sum(deltas);
    const uint64_t cache_hits = cache_after.first - cache_before.first;
    const uint64_t cache_misses = cache_after.second - cache_before.second;
    stats.cache_hit_ratio =
        cache_hits + cache_misses == 0
            ? 1.0
            : static_cast<double>(cache_hits) /
                  static_cast<double>(cache_hits + cache_misses);
    if (step_profile != nullptr) {
      AttachPaperPlanLabels(step_profile.get());
      stats.bytes_shuffled = step_profile->TotalShuffleBytes();
      stats.spill_count = step_profile->TotalSpillCount();
      stats.spill_bytes = step_profile->TotalSpillBytes();
      cumulative->MergeFrom(*step_profile);
      stats.profile = std::move(step_profile);
    } else {
      stats.bytes_shuffled = stats.cluster_delta.net_bytes;
    }

    // Feed the completed superstep back to the chooser; the next superstep's
    // Decide consumes exactly these observations.
    if (ctx->optimizer != nullptr) {
      OptimizerFeedback fb;
      fb.superstep = superstep;
      fb.num_vertices = ctx->gs.num_vertices;
      fb.num_edges = ctx->gs.num_edges;
      fb.live_vertices = ctx->gs.live_vertices;
      fb.messages = ctx->gs.messages;
      fb.message_bytes = ctx->gs.message_bytes;
      fb.bytes_shuffled = stats.bytes_shuffled;
      fb.spill_count = stats.spill_count;
      fb.spill_bytes = stats.spill_bytes;
      fb.cache_hit_ratio = stats.cache_hit_ratio;
      fb.stalled = stalled;
      fb.plan = plan_record.plan;
      if (stats.profile != nullptr) {
        for (const PlanOperatorProfile& op : stats.profile->ops()) {
          if (op.name == "combine-msgs") {
            fb.groupby_skew = op.skew;
            fb.combine_tuples_in = op.total.tuples_in;
            fb.combine_tuples_out = op.total.tuples_out;
          }
        }
      }
      ctx->optimizer->Observe(fb);
    }
    PLOG(Info) << "superstep " << superstep << " [" << config.name
               << "]: live=" << stats.live_vertices
               << " msgs=" << stats.messages << " shuffled_bytes="
               << stats.bytes_shuffled << " cache_hit="
               << static_cast<int>(stats.cache_hit_ratio * 100.0 + 0.5)
               << "% spills=" << stats.spill_count << " plan="
               << PlanDecisionString(plan_record.plan);
    result->superstep_stats.push_back(stats);
    result->supersteps_sim_seconds += stats.sim_seconds;

    // Publish the completed superstep to the live status registry + journal
    // (what /jobs/<id> and /events serve). The cumulative profile is
    // re-serialized with the same deterministic, timing-free writer as
    // `pregelix explain`, so /jobs/<id> carries a stable profile document.
    {
      server::SuperstepBrief brief;
      brief.superstep = superstep;
      brief.wall_seconds = stats.wall_seconds;
      brief.sim_seconds = stats.sim_seconds;
      brief.live_vertices = stats.live_vertices;
      brief.messages = stats.messages;
      brief.bytes_shuffled = stats.bytes_shuffled;
      brief.spill_count = stats.spill_count;
      brief.left_outer_join = stats.used_left_outer_join;
      brief.plan = PlanDecisionString(plan_record.plan);
      const std::array<int64_t, kNumTimeCategories> ledger_after =
          TimeLedger::Global().TakeSnapshot().category_ns;
      for (int c = 0; c < kNumTimeCategories; ++c) {
        brief.ledger_ns[c] = ledger_after[c] - ledger_before[c];
      }
      std::string profile_json;
      if (cumulative != nullptr) {
        std::ostringstream pos;
        cumulative->WriteJson(pos, /*include_timing=*/false);
        profile_json = pos.str();
      }
      server::JobStatusRegistry::Global().OnSuperstep(
          ctx->job_id, brief, std::move(profile_json));
      std::vector<std::pair<std::string, std::string>> step_kv = {
          {"live", std::to_string(stats.live_vertices)},
          {"messages", std::to_string(stats.messages)},
          {"wall_ms",
           std::to_string(static_cast<int64_t>(stats.wall_seconds * 1e3))},
          {"shuffled_bytes", std::to_string(stats.bytes_shuffled)},
          {"spills", std::to_string(stats.spill_count)},
          {"join", stats.used_left_outer_join ? "left-outer" : "full-outer"},
          {"plan", PlanDecisionString(plan_record.plan)}};
      const std::string ledger_delta = LedgerDeltaString(brief.ledger_ns);
      if (!ledger_delta.empty()) {
        step_kv.emplace_back("ledger_ns", ledger_delta);
      }
      EventJournal::Global().Append("superstep.end", ctx->job_id, superstep,
                                    std::move(step_kv));
    }

    // Close the superstep span carrying the SuperstepStats the runtime just
    // computed, so one trace row tells the whole per-iteration story.
    step_span.AddArg("superstep", superstep);
    step_span.AddArg("live_vertices", stats.live_vertices);
    step_span.AddArg("messages", stats.messages);
    step_span.AddArg("left_outer_join", stats.used_left_outer_join ? 1 : 0);
    step_span.AddArg("sim_millis",
                     static_cast<int64_t>(stats.sim_seconds * 1e3));
    step_span.AddArg("cluster_cpu_ops",
                     static_cast<int64_t>(stats.cluster_delta.cpu_ops));
    step_span.AddArg(
        "cluster_net_bytes",
        static_cast<int64_t>(stats.cluster_delta.net_bytes));
    step_span.End();

    // --- Checkpoint at user-selected boundaries ---------------------------
    if (config.checkpoint_interval > 0 &&
        superstep % config.checkpoint_interval == 0 && !ctx->gs.halt) {
      TraceSpan ckpt_span(cluster_->tracer(), "pregel.checkpoint",
                          trace_cat::kPregel, kTraceDriverWorker);
      ckpt_span.AddArg("superstep", superstep);
      PREGELIX_RETURN_NOT_OK(WriteCheckpoint(ctx, superstep));
      last_checkpoint = superstep;
      server::JobStatusRegistry::Global().OnCheckpoint(ctx->job_id,
                                                       superstep);
      EventJournal::Global().Append("checkpoint.commit", ctx->job_id,
                                    superstep);
    }
    (void)last_checkpoint;

    if (ctx->gs.halt) break;
  }

  if (do_dump) {
    TraceSpan span(cluster_->tracer(), "pregel.dump", trace_cat::kPregel,
                   kTraceDriverWorker);
    const std::vector<MetricsSnapshot> before = cluster_->SnapshotAll();
    // The dump only reads the vertex index and truncates its output files
    // on open, so re-running it after a transient fault is idempotent.
    PREGELIX_RETURN_NOT_OK(RetryTransient("dump", [&]() -> Status {
      JobSpec dump = BuildDumpJob(ctx);
      return RunJob(*cluster_, dump, ctx);
    }));
    result->dump_sim_seconds = SimulatedStepSeconds(
        Delta(before, cluster_->SnapshotAll()), cost_params_);
  }

  if (cumulative != nullptr) result->plan_profile = std::move(cumulative);
  result->supersteps = ctx->gs.superstep;
  result->final_gs = ctx->gs;
  result->total_sim_seconds = result->load_sim_seconds +
                              result->supersteps_sim_seconds +
                              result->dump_sim_seconds;
  result->avg_iteration_sim_seconds =
      result->supersteps == 0
          ? 0
          : result->supersteps_sim_seconds /
                static_cast<double>(result->supersteps);
  result->wall_seconds = WallSeconds() - wall_start;
  return Status::OK();
}

Status PregelixRuntime::AdvanceGlobalState(JobRuntimeContext* ctx) {
  GlobalState gs;
  {
    MutexLock lock(&ctx->gs_mutex);
    gs = ctx->pending_gs;
  }
  gs.num_vertices = ctx->gs.num_vertices + ctx->vertices_added.load() -
                    ctx->vertices_removed.load();
  gs.num_edges = ctx->gs.num_edges + ctx->edges_delta.load();
  gs.messages = 0;
  gs.message_bytes = 0;
  for (PartitionState& p : ctx->partitions) {
    gs.messages += static_cast<int64_t>(p.next_msg_count);
    gs.message_bytes += static_cast<int64_t>(p.next_msg_bytes);
  }
  // Vertices added by resolve start life active; messages keep the job
  // alive via the halt contributions of their senders.
  if (ctx->vertices_added.load() > 0 || gs.messages > 0) {
    gs.halt = false;
  }

  // Install the superstep outputs: Msg_{i+1} replaces Msg_i, Vid_{i+1}
  // replaces Vid_i (sticky, partition-local swaps; no data moves).
  for (PartitionState& p : ctx->partitions) {
    if (!p.msg_path.empty()) DeleteFileIfExists(p.msg_path);
    p.msg_path = p.next_msg_path;
    p.next_msg_path.clear();
    p.next_msg_count = 0;
    p.next_msg_bytes = 0;
    if (ctx->job_config->join != JoinStrategy::kFullOuter) {
      if (p.vid_index != nullptr) {
        Status s = p.vid_index->Destroy();
        if (!s.ok()) PLOG(Warn) << "vid destroy: " << s.ToString();
      }
      p.vid_index = std::move(p.next_vid_index);
      if (!p.vid_extra_path.empty()) DeleteFileIfExists(p.vid_extra_path);
      p.vid_extra_path = p.next_vid_extra_path;
      p.next_vid_extra_path.clear();
    }
  }
  ctx->gs = gs;
  return WriteGs(dfs_, *ctx, gs);
}

Status PregelixRuntime::WriteCheckpoint(JobRuntimeContext* ctx,
                                        int64_t superstep) {
  // Ledger: driver-side checkpoint bookkeeping. The snapshot job's task
  // threads attach independently; the driver's share (manifest, GS write,
  // the join barrier of the snapshot job) lands in checkpoint.
  ScopedTimeCategory checkpoint(TimeCategory::kCheckpoint);
  // The snapshot ops only read runtime state and write checkpoint files
  // (installed via temp + rename), so the whole sequence can be retried on
  // transient faults. The MANIFEST is written last: it is the commit
  // point, and recovery ignores any checkpoint without a valid one.
  return RetryTransient("checkpoint", [&]() -> Status {
    JobSpec ckpt = BuildCheckpointJob(ctx, superstep);
    PREGELIX_RETURN_NOT_OK(RunJob(*cluster_, ckpt, ctx));
    const std::string dir = CheckpointDir(*ctx, superstep);
    const std::string gs_encoded = ctx->gs.Encode();
    PREGELIX_RETURN_NOT_OK(fault::MaybeFail("pregel.gs.write"));
    PREGELIX_RETURN_NOT_OK(dfs_->Write(dir + "/gs", gs_encoded));

    std::string manifest;
    manifest += "superstep " + std::to_string(superstep) + "\n";
    manifest +=
        "partitions " + std::to_string(ctx->partitions.size()) + "\n";
    manifest += "gs " + std::to_string(gs_encoded.size()) + " " +
                std::to_string(Hash64(gs_encoded.data(), gs_encoded.size())) +
                "\n";
    for (const PartitionState& p : ctx->partitions) {
      for (const auto& f : p.ckpt_files) {
        manifest += "file " + f.name + " " + std::to_string(f.size) + " " +
                    std::to_string(f.checksum) + "\n";
      }
    }
    // Belt-and-suspenders drain (DESIGN.md §19): every snapshot writer
    // already waited its own ticket in Finish(), but the MANIFEST is the
    // checkpoint's commit point, so nothing may still sit in the
    // write-behind queue when it lands.
    if (cluster_->overlap() != nullptr) {
      cluster_->overlap()->writebehind().Drain("checkpoint.manifest");
    }
    PREGELIX_RETURN_NOT_OK(fault::MaybeFail("pregel.checkpoint.manifest"));
    return dfs_->Write(dir + "/MANIFEST", manifest);
  });
}

Status PregelixRuntime::ValidateCheckpoint(JobRuntimeContext* ctx,
                                           int64_t superstep) {
  const std::string dir = CheckpointDir(*ctx, superstep);
  if (!dfs_->Exists(dir + "/MANIFEST")) {
    return Status::NotFound("checkpoint " + std::to_string(superstep) +
                            " has no manifest (crash before commit)");
  }
  std::string manifest;
  PREGELIX_RETURN_NOT_OK(dfs_->Read(dir + "/MANIFEST", &manifest));

  int64_t manifest_superstep = -1;
  size_t manifest_partitions = 0;
  uint64_t gs_size = 0, gs_checksum = 0;
  size_t files_listed = 0;
  size_t pos = 0;
  while (pos < manifest.size()) {
    size_t eol = manifest.find('\n', pos);
    if (eol == std::string::npos) eol = manifest.size();
    const std::string line = manifest.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    char name[256];
    long long step = 0;
    if (std::sscanf(line.c_str(), "superstep %lld", &step) == 1) {
      manifest_superstep = step;
      continue;
    }
    unsigned long long a = 0, b = 0;
    if (std::sscanf(line.c_str(), "partitions %llu", &a) == 1) {
      manifest_partitions = static_cast<size_t>(a);
      continue;
    }
    if (std::sscanf(line.c_str(), "gs %llu %llu", &a, &b) == 2) {
      gs_size = a;
      gs_checksum = b;
      continue;
    }
    if (std::sscanf(line.c_str(), "file %255s %llu %llu", name, &a, &b) ==
        3) {
      ++files_listed;
      const std::string rel = dir + "/" + name;
      if (!dfs_->Exists(rel)) {
        return Status::Corruption("checkpoint file missing: " + rel);
      }
      uint64_t size = 0;
      PREGELIX_RETURN_NOT_OK(GetFileSize(dfs_->Resolve(rel), &size));
      if (size != a) {
        return Status::Corruption(
            "checkpoint file " + rel + " torn: size " + std::to_string(size) +
            " != manifest " + std::to_string(a));
      }
      uint64_t checksum = 0;
      PREGELIX_RETURN_NOT_OK(ChecksumFile(dfs_->Resolve(rel), &checksum));
      if (checksum != b) {
        return Status::Corruption("checkpoint file " + rel +
                                  " checksum mismatch");
      }
      continue;
    }
    return Status::Corruption("unparseable manifest line: " + line);
  }
  if (manifest_superstep != superstep) {
    return Status::Corruption(
        "manifest superstep " + std::to_string(manifest_superstep) +
        " != dir " + std::to_string(superstep));
  }
  if (manifest_partitions != ctx->partitions.size()) {
    return Status::Corruption(
        "manifest partitions " + std::to_string(manifest_partitions) +
        " != cluster " + std::to_string(ctx->partitions.size()));
  }
  // Snapshots cover at least vertex+msg per partition (and vid for
  // left-outer-capable jobs).
  if (files_listed < 2 * ctx->partitions.size()) {
    return Status::Corruption("manifest lists " +
                              std::to_string(files_listed) +
                              " files; expected >= " +
                              std::to_string(2 * ctx->partitions.size()));
  }
  std::string gs_encoded;
  PREGELIX_RETURN_NOT_OK(dfs_->Read(dir + "/gs", &gs_encoded));
  if (gs_encoded.size() != gs_size ||
      Hash64(gs_encoded.data(), gs_encoded.size()) != gs_checksum) {
    return Status::Corruption("checkpoint gs torn at superstep " +
                              std::to_string(superstep));
  }
  return Status::OK();
}

Status PregelixRuntime::Recover(JobRuntimeContext* ctx,
                                int64_t* resume_superstep,
                                bool* restart_from_load) {
  // Ledger: recovery is checkpoint-path work (validation, state rebuild).
  ScopedTimeCategory checkpoint(TimeCategory::kCheckpoint);
  // List the checkpoints this job left on the DFS (newest first). Listing —
  // rather than counting down from the in-memory GS — lets a fresh driver
  // process resume a job whose in-memory state is gone.
  std::vector<int64_t> candidates;
  const std::string ckpt_root = "jobs/" + ctx->job_id + "/ckpt";
  if (dfs_->Exists(ckpt_root)) {
    std::vector<std::string> entries;
    PREGELIX_RETURN_NOT_OK(dfs_->List(ckpt_root, &entries));
    for (const std::string& e : entries) {
      if (!e.empty() && e.find_first_not_of("0123456789") == std::string::npos) {
        candidates.push_back(std::strtoll(e.c_str(), nullptr, 10));
      }
    }
  }
  std::sort(candidates.rbegin(), candidates.rend());

  for (int64_t s : candidates) {
    Status valid = ValidateCheckpoint(ctx, s);
    if (!valid.ok()) {
      PLOG(Warn) << "checkpoint " << s
                 << " rejected, falling back: " << valid.ToString();
      continue;
    }
    PLOG(Info) << "recovering from checkpoint at superstep " << s;
    JobSpec recovery = BuildRecoveryJob(ctx, s);
    PREGELIX_RETURN_NOT_OK(RunJob(*cluster_, recovery, ctx));
    const std::string gs_file = CheckpointDir(*ctx, s) + "/gs";
    std::string encoded;
    PREGELIX_RETURN_NOT_OK(dfs_->Read(gs_file, &encoded));
    GlobalState gs;
    PREGELIX_RETURN_NOT_OK(gs.Decode(encoded));
    ctx->gs = gs;
    PREGELIX_RETURN_NOT_OK(WriteGs(dfs_, *ctx, gs));
    *resume_superstep = s + 1;
    *restart_from_load = false;
    server::JobStatusRegistry::Global().OnRecovery(ctx->job_id, s);
    EventJournal::Global().Append("recovery.complete", ctx->job_id, s,
                                  {{"resume", std::to_string(s + 1)}});
    return Status::OK();
  }
  PLOG(Info) << "no valid checkpoint found; restarting from load";
  *restart_from_load = true;
  *resume_superstep = 1;
  server::JobStatusRegistry::Global().OnRecovery(ctx->job_id, -1);
  EventJournal::Global().Append("recovery.restart", ctx->job_id, -1,
                                {{"reason", "no valid checkpoint"}});
  return Status::OK();
}

void PregelixRuntime::Cleanup(JobRuntimeContext* ctx, bool keep_dfs) {
  for (int p = 0; p < static_cast<int>(ctx->partitions.size()); ++p) {
    PartitionState& state = ctx->partitions[p];
    state.vertex_index.reset();
    state.vid_index.reset();
    state.next_vid_index.reset();
    RemoveAll(ctx->PartitionDir(p));
  }
  if (keep_dfs) return;  // a resumable job's checkpoints must survive
  Status s = dfs_->DeleteRecursive("jobs/" + ctx->job_id);
  if (!s.ok()) {
    PLOG(Warn) << "job dir cleanup failed: " << s.ToString();
  }
}

Status PregelixRuntime::RunPipeline(
    const std::vector<std::pair<PregelProgram*, PregelixJobConfig>>& jobs,
    std::vector<JobResult>* results) {
  PREGELIX_CHECK(!jobs.empty());
  results->clear();
  results->resize(jobs.size());

  JobRuntimeContext ctx;
  ctx.cluster = cluster_;
  ctx.dfs = dfs_;
  ctx.job_id = jobs[0].second.name + "-pipeline-" +
               std::to_string(g_job_counter.fetch_add(1));
  ctx.partitions.resize(cluster_->num_partitions());
  PublishJobStart(ctx, jobs[0].second.name + "-pipeline");
  const bool ledger_attached = TimeLedger::AttachCurrentThread(
      TimeLedger::kDriverWorker, TimeCategory::kCompute, "driver");

  Status status;
  for (size_t j = 0; j < jobs.size(); ++j) {
    PregelProgram* program = jobs[j].first;
    const PregelixJobConfig& config = jobs[j].second;
    ctx.program = program;
    ctx.job_config = &config;

    if (j > 0) {
      // Compatible-job handoff: reactivate all vertices, clear Msg, rebuild
      // Vid for the next job (no DFS round trip, no re-load).
      status = PrepareNextPipelinedJob(&ctx);
      if (!status.ok()) break;
    }
    const bool last = j + 1 == jobs.size();
    status = RunInternal(program, config, &ctx, /*do_load=*/j == 0,
                         /*do_dump=*/last && !config.output_dir.empty(),
                         &(*results)[j]);
    if (!status.ok()) break;
  }
  if (ledger_attached) TimeLedger::DetachCurrentThread();
  PublishJobFinish(ctx, status);
  Cleanup(&ctx);
  return status;
}

Status PregelixRuntime::PrepareNextPipelinedJob(JobRuntimeContext* ctx) {
  const bool loj = ctx->job_config->join != JoinStrategy::kFullOuter;
  for (int p = 0; p < static_cast<int>(ctx->partitions.size()); ++p) {
    PartitionState& state = ctx->partitions[p];
    if (!state.msg_path.empty()) {
      DeleteFileIfExists(state.msg_path);
      state.msg_path.clear();
    }
    if (!state.vid_extra_path.empty()) {
      DeleteFileIfExists(state.vid_extra_path);
      state.vid_extra_path.clear();
    }
    if (state.vid_index != nullptr) {
      Status s = state.vid_index->Destroy();
      if (!s.ok()) PLOG(Warn) << "vid destroy: " << s.ToString();
      state.vid_index.reset();
    }

    // Reactivate every vertex (all vertices start a Pregel job active) and
    // rebuild the live-vertex index if the next job uses the left-outer
    // plan. Updates are buffered so the scan never races its own writes.
    std::vector<std::pair<std::string, std::string>> reactivations;
    std::unique_ptr<IndexBulkLoader> vid_loader;
    if (loj) {
      PREGELIX_RETURN_NOT_OK(MakePipelineVidIndex(ctx, p, &state.vid_index));
      vid_loader = state.vid_index->NewBulkLoader();
    }
    std::unique_ptr<IndexIterator> it = state.vertex_index->NewIterator();
    PREGELIX_RETURN_NOT_OK(it->SeekToFirst());
    int64_t vertices = 0, edges = 0;
    while (it->Valid()) {
      if (VertexHalt(it->value())) {
        std::string record = it->value().ToString();
        SetVertexHalt(&record, false);
        reactivations.emplace_back(it->key().ToString(), std::move(record));
      }
      if (vid_loader != nullptr) {
        PREGELIX_RETURN_NOT_OK(vid_loader->Add(it->key(), Slice()));
      }
      ++vertices;
      edges += VertexEdgeCount(it->value());
      PREGELIX_RETURN_NOT_OK(it->Next());
    }
    it.reset();
    if (vid_loader != nullptr) {
      PREGELIX_RETURN_NOT_OK(vid_loader->Finish());
    }
    for (const auto& [key, record] : reactivations) {
      PREGELIX_RETURN_NOT_OK(
          state.vertex_index->Upsert(Slice(key), Slice(record)));
    }
    state.vertices = vertices;
    state.edges = edges;
  }

  GlobalState gs;
  gs.superstep = 0;
  gs.halt = false;
  gs.aggregate = ctx->program->GlobalAggregator().initial;
  for (const PartitionState& p : ctx->partitions) {
    gs.num_vertices += p.vertices;
    gs.num_edges += p.edges;
  }
  gs.live_vertices = gs.num_vertices;
  ctx->gs = gs;
  return dfs_->Write(GsPath(*ctx), gs.Encode());
}

Status PregelixRuntime::MakePipelineVidIndex(JobRuntimeContext* ctx, int p,
                                             std::unique_ptr<BTree>* out) {
  const std::string dir = ctx->PartitionDir(p);
  PREGELIX_CHECK(EnsureDir(dir));
  const int worker = ctx->cluster->worker_of_partition(p);
  const std::string path =
      dir + "/vid-pipe-" + std::to_string(g_job_counter.fetch_add(1)) +
      ".btree";
  DeleteFileIfExists(path);
  return BTree::Open(&ctx->cluster->cache(worker), path, out);
}

}  // namespace pregelix
