#include "pregel/state.h"

#include "common/serde.h"

namespace pregelix {

std::string GlobalState::Encode() const {
  std::string out;
  PutFixed64(&out, static_cast<uint64_t>(superstep));
  out.push_back(halt ? 1 : 0);
  PutLengthPrefixed(&out, Slice(aggregate));
  PutFixed64(&out, static_cast<uint64_t>(num_vertices));
  PutFixed64(&out, static_cast<uint64_t>(num_edges));
  PutFixed64(&out, static_cast<uint64_t>(live_vertices));
  PutFixed64(&out, static_cast<uint64_t>(messages));
  PutFixed64(&out, static_cast<uint64_t>(message_bytes));
  return out;
}

Status GlobalState::Decode(const Slice& bytes) {
  Slice in = bytes;
  if (in.size() < 9) return Status::Corruption("GS too short");
  superstep = static_cast<int64_t>(DecodeFixed64(in.data()));
  in.remove_prefix(8);
  halt = in[0] != 0;
  in.remove_prefix(1);
  Slice agg;
  if (!GetLengthPrefixed(&in, &agg)) {
    return Status::Corruption("GS aggregate truncated");
  }
  aggregate = agg.ToString();
  if (in.size() < 40) return Status::Corruption("GS stats truncated");
  num_vertices = static_cast<int64_t>(DecodeFixed64(in.data()));
  num_edges = static_cast<int64_t>(DecodeFixed64(in.data() + 8));
  live_vertices = static_cast<int64_t>(DecodeFixed64(in.data() + 16));
  messages = static_cast<int64_t>(DecodeFixed64(in.data() + 24));
  message_bytes = static_cast<int64_t>(DecodeFixed64(in.data() + 32));
  return Status::OK();
}

}  // namespace pregelix
