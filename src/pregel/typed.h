#ifndef PREGELIX_PREGEL_TYPED_H_
#define PREGELIX_PREGEL_TYPED_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "pregel/program.h"
#include "pregel/serde.h"
#include "pregel/vertex_format.h"

namespace pregelix {

/// Typed facade over the untyped Pregelix engine — the analog of the paper's
/// Java Vertex<I, V, E, M> API (Figure 9), with vid fixed to int64.
///
/// Applications subclass TypedVertexProgram<V, E, M> and implement Compute;
/// TypedProgramAdapter bridges to the byte-level PregelProgram interface the
/// plan generator consumes.

/// Iterator over the messages delivered to one vertex, in the style of the
/// paper's `Iterator<M> msgIterator`.
template <typename M>
class MessageIterator {
 public:
  /// `payload` encoding depends on whether a combiner is configured:
  /// combined = one M; otherwise a length-prefixed list of M.
  MessageIterator(const Slice& payload, bool combined, bool has_messages)
      : remaining_(payload), combined_(combined), has_messages_(has_messages) {}

  bool HasNext() const {
    if (!has_messages_) return false;
    if (combined_) return !consumed_;
    return !remaining_.empty();
  }

  M Next() {
    PREGELIX_CHECK(HasNext());
    M message{};
    if (combined_) {
      Slice in = remaining_;
      PREGELIX_CHECK(Serde<M>::Read(&in, &message)) << "bad combined message";
      consumed_ = true;
    } else {
      Slice item;
      PREGELIX_CHECK(GetLengthPrefixed(&remaining_, &item))
          << "bad message list";
      Slice in = item;
      PREGELIX_CHECK(Serde<M>::Read(&in, &message)) << "bad message item";
    }
    return message;
  }

 private:
  Slice remaining_;
  bool combined_;
  bool has_messages_;
  bool consumed_ = false;
};

/// The vertex handle passed to Compute: state accessors, message sending,
/// halting, and graph mutation — the full Pregel API of paper Section 2.1.
template <typename V, typename E, typename M>
class VertexHandle {
 public:
  struct Edge {
    int64_t dst;
    E value;
  };

  int64_t id() const { return id_; }
  int64_t superstep() const { return superstep_; }
  int64_t num_vertices() const { return num_vertices_; }
  int64_t num_edges() const { return num_edges_; }

  const V& value() const { return value_; }
  void set_value(const V& v) {
    value_ = v;
    dirty_ = true;
  }
  V* mutable_value() {
    dirty_ = true;
    return &value_;
  }

  const std::vector<Edge>& edges() const { return edges_; }
  std::vector<Edge>* mutable_edges() {
    dirty_ = true;
    return &edges_;
  }

  void SendMessage(int64_t dst, const M& message) {
    messages_.emplace_back(dst, message);
  }
  void SendMessageToAllEdges(const M& message) {
    for (const Edge& e : edges_) messages_.emplace_back(e.dst, message);
  }

  void VoteToHalt() { halt_ = true; }
  void Activate() { halt_ = false; }
  bool halted() const { return halt_; }

  /// Reads the global aggregate produced by the previous superstep.
  template <typename A>
  bool GetAggregate(A* out) const {
    if (global_aggregate_.empty()) return false;
    return DeserializeValue(Slice(global_aggregate_), out);
  }
  /// Contributes a value to this superstep's global aggregation.
  template <typename A>
  void Contribute(const A& value) {
    has_aggregate_ = true;
    aggregate_contribution_ = SerializeValue(value);
  }

  /// Graph mutations (resolved by the resolve UDF at the end of the
  /// superstep; paper Figure 5).
  void AddVertex(int64_t vid, const V& value, std::vector<Edge> edges = {}) {
    MutationRecord m;
    m.op = MutationRecord::Op::kAddVertex;
    m.vid = vid;
    m.vertex_bytes = EncodeTyped(false, value, edges);
    mutations_.push_back(std::move(m));
  }
  void RemoveVertex(int64_t vid) {
    MutationRecord m;
    m.op = MutationRecord::Op::kRemoveVertex;
    m.vid = vid;
    mutations_.push_back(std::move(m));
  }

  static std::string EncodeTyped(bool halt, const V& value,
                                 const std::vector<Edge>& edges) {
    std::vector<std::pair<int64_t, std::string>> raw_edges;
    raw_edges.reserve(edges.size());
    for (const Edge& e : edges) {
      raw_edges.emplace_back(e.dst, SerializeValue(e.value));
    }
    std::string out;
    EncodeVertexRecord(halt, Slice(SerializeValue(value)), raw_edges, &out);
    return out;
  }

 private:
  template <typename V2, typename E2, typename M2>
  friend class TypedProgramAdapter;

  int64_t id_ = 0;
  int64_t superstep_ = 1;
  int64_t num_vertices_ = 0;
  int64_t num_edges_ = 0;
  V value_{};
  std::vector<Edge> edges_;
  bool halt_ = false;
  bool dirty_ = false;
  Slice global_aggregate_;
  std::vector<std::pair<int64_t, M>> messages_;
  bool has_aggregate_ = false;
  std::string aggregate_contribution_;
  std::vector<MutationRecord> mutations_;
};

/// Base class for typed vertex programs.
template <typename V, typename E, typename M>
class TypedVertexProgram {
 public:
  using VertexT = VertexHandle<V, E, M>;
  using EdgeT = typename VertexT::Edge;

  virtual ~TypedVertexProgram() = default;

  /// The compute UDF, executed at each active vertex in every superstep.
  virtual void Compute(VertexT& vertex, MessageIterator<M>& messages) = 0;

  /// Message combiner (paper Table 2). When enabled, Combine folds an
  /// incoming message into the accumulator; it must be associative and
  /// commutative.
  virtual bool has_combiner() const { return false; }
  virtual void Combine(M* accumulator, const M& incoming) const {}

  /// Global aggregation hooks (see MakeGlobalAgg below for a typed helper).
  virtual GlobalAggHooks AggregatorHooks() const { return {}; }

  /// Initial state for graph loading.
  virtual V InitialValue(int64_t vid,
                         const std::vector<int64_t>& dests) const {
    return V{};
  }
  virtual E InitialEdgeValue(int64_t src, int64_t dst) const { return E{}; }

  /// Value for vertices auto-created by messages to missing vids.
  virtual V DefaultValue() const { return V{}; }

  /// Result formatting: the text after the vid on each output line.
  virtual std::string FormatValue(int64_t vid, const V& value) const = 0;

  /// Declares that Compute may call AddVertex/RemoveVertex (storage
  /// admission hint, see PregelProgram::MutatesGraph).
  virtual bool mutates_graph() const { return false; }

  /// Custom mutation conflict resolution; default = deletes first, last
  /// insert wins.
  virtual bool has_custom_resolve() const { return false; }
  virtual PregelProgram::ResolveAction ResolveTyped(
      int64_t vid, const std::vector<MutationRecord>& mutations,
      std::string* vertex_bytes) const {
    return PregelProgram::ResolveAction::kNone;
  }
};

/// Full-precision double formatting for result dumps (std::to_string
/// truncates to 6 decimals).
inline std::string FormatDouble(double value) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Builds typed global-aggregation hooks from an identity element and a
/// binary merge function (associative + commutative).
template <typename A>
GlobalAggHooks MakeGlobalAgg(A identity, std::function<A(A, A)> merge) {
  GlobalAggHooks hooks;
  hooks.initial = SerializeValue(identity);
  hooks.step = [merge](const Slice& contribution, std::string* acc) {
    A a{}, c{};
    PREGELIX_CHECK(DeserializeValue(Slice(*acc), &a));
    PREGELIX_CHECK(DeserializeValue(contribution, &c));
    *acc = SerializeValue(merge(a, c));
  };
  return hooks;
}

/// Adapts a typed program to the byte-level PregelProgram interface.
template <typename V, typename E, typename M>
class TypedProgramAdapter : public PregelProgram {
 public:
  using Program = TypedVertexProgram<V, E, M>;
  using VertexT = typename Program::VertexT;
  using EdgeT = typename Program::EdgeT;

  explicit TypedProgramAdapter(Program* program) : program_(program) {}

  Status InitialVertex(int64_t vid, const std::vector<int64_t>& dests,
                       std::string* vertex_bytes) override {
    std::vector<EdgeT> edges;
    edges.reserve(dests.size());
    for (int64_t d : dests) {
      edges.push_back(EdgeT{d, program_->InitialEdgeValue(vid, d)});
    }
    *vertex_bytes = VertexT::EncodeTyped(
        false, program_->InitialValue(vid, dests), edges);
    return Status::OK();
  }

  Status Compute(const ComputeInput& input, ComputeOutput* output) override {
    VertexT vertex;
    vertex.id_ = input.vid;
    vertex.superstep_ = input.superstep;
    vertex.num_vertices_ = input.num_vertices;
    vertex.num_edges_ = input.num_edges;
    vertex.global_aggregate_ = input.global_aggregate;

    size_t original_size = 0;
    if (input.vertex_exists) {
      VertexRecordView view;
      PREGELIX_RETURN_NOT_OK(view.Parse(input.vertex_bytes));
      original_size = input.vertex_bytes.size();
      vertex.halt_ = view.halt;
      if (!DeserializeValue(view.value, &vertex.value_)) {
        return Status::Corruption("vertex value deserialization failed");
      }
      vertex.edges_.reserve(view.edges.size());
      for (const VertexEdgeView& e : view.edges) {
        EdgeT edge;
        edge.dst = e.dst;
        if (!DeserializeValue(e.value, &edge.value)) {
          return Status::Corruption("edge value deserialization failed");
        }
        vertex.edges_.push_back(std::move(edge));
      }
      // A delivered message reactivates a halted vertex (Pregel semantics).
      if (input.has_messages) vertex.halt_ = false;
    } else {
      // Left-outer case of the join: create the vertex with default fields.
      vertex.value_ = program_->DefaultValue();
      vertex.dirty_ = true;
    }

    MessageIterator<M> messages(input.message_payload,
                                program_->has_combiner(),
                                input.has_messages);
    program_->Compute(vertex, messages);

    output->voted_halt = vertex.halt_;
    output->vertex_dirty = vertex.dirty_ || !input.vertex_exists;
    if (output->vertex_dirty) {
      // Compare before storing: input.vertex_bytes may alias the caller's
      // reused output->vertex_bytes buffer, so assigning first would free
      // the very bytes being compared.
      std::string encoded =
          VertexT::EncodeTyped(vertex.halt_, vertex.value_, vertex.edges_);
      // Avoid pointless churn when re-encoding produced identical bytes.
      if (input.vertex_exists && encoded.size() == original_size &&
          Slice(encoded) == input.vertex_bytes) {
        output->vertex_dirty = false;
        output->vertex_bytes.clear();
      } else {
        output->vertex_bytes = std::move(encoded);
      }
    }
    output->messages.reserve(vertex.messages_.size());
    for (const auto& [dst, message] : vertex.messages_) {
      std::string payload;
      if (program_->has_combiner()) {
        Serde<M>::Write(message, &payload);
      } else {
        // Default combine gathers into a list: one length-prefixed item.
        std::string item;
        Serde<M>::Write(message, &item);
        PutLengthPrefixed(&payload, Slice(item));
      }
      output->messages.emplace_back(dst, std::move(payload));
    }
    output->has_aggregate = vertex.has_aggregate_;
    output->aggregate_contribution = std::move(vertex.aggregate_contribution_);
    output->mutations = std::move(vertex.mutations_);
    return Status::OK();
  }

  GroupCombiner MsgCombiner() const override {
    if (!program_->has_combiner()) return ListMsgCombiner();
    GroupCombiner c;
    Program* program = program_;
    c.init = [](const Slice& payload, std::string* acc) {
      acc->assign(payload.data(), payload.size());
    };
    c.step = [program](const Slice& payload, std::string* acc) {
      M accumulator{}, incoming{};
      PREGELIX_CHECK(DeserializeValue(Slice(*acc), &accumulator));
      PREGELIX_CHECK(DeserializeValue(payload, &incoming));
      program->Combine(&accumulator, incoming);
      acc->clear();
      Serde<M>::Write(accumulator, acc);
    };
    return c;
  }

  GlobalAggHooks GlobalAggregator() const override {
    return program_->AggregatorHooks();
  }

  ResolveAction Resolve(int64_t vid,
                        const std::vector<MutationRecord>& mutations,
                        std::string* vertex_bytes) const override {
    if (program_->has_custom_resolve()) {
      return program_->ResolveTyped(vid, mutations, vertex_bytes);
    }
    return PregelProgram::Resolve(vid, mutations, vertex_bytes);
  }

  Status FormatVertex(int64_t vid, const Slice& vertex_bytes,
                      std::string* line) override {
    VertexRecordView view;
    PREGELIX_RETURN_NOT_OK(view.Parse(vertex_bytes));
    V value{};
    if (!DeserializeValue(view.value, &value)) {
      return Status::Corruption("vertex value deserialization failed");
    }
    *line = std::to_string(vid) + " " + program_->FormatValue(vid, value);
    return Status::OK();
  }

  bool MutatesGraph() const override { return program_->mutates_graph(); }

 private:
  Program* program_;
};

}  // namespace pregelix

#endif  // PREGELIX_PREGEL_TYPED_H_
