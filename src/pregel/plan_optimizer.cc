#include "pregel/plan_optimizer.h"

#include <algorithm>
#include <cstdio>

#include "common/event_journal.h"
#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "dataflow/plan_verifier.h"
#include "pregel/plans.h"
#include "pregel/state.h"
#include "server/job_registry.h"

namespace pregelix {

namespace {

/// Installed by SetPlanDecisionOverrideForTesting. Read on the driver path
/// only (single-threaded per job); tests install before Run and clear after.
PlanDecisionOverride g_decision_override;

std::string FormatRatio(const char* tag, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%s=%.3f", tag, v);
  return buf;
}

}  // namespace

void SetPlanDecisionOverrideForTesting(PlanDecisionOverride fn) {
  g_decision_override = std::move(fn);
}

int64_t ApproxVertexScanBytes(int64_t num_vertices, int64_t num_edges) {
  // A full-outer pass reads every Vertex record: ~16 bytes of key + fixed
  // fields per vertex and ~8 bytes per edge entry. Only the order of
  // magnitude matters — it is compared against message volume.
  return num_vertices * 16 + num_edges * 8;
}

JoinStrategy LegacyAdaptiveJoin(int64_t superstep, int64_t live_vertices,
                                int64_t messages, int64_t message_bytes,
                                int64_t num_vertices, int64_t num_edges) {
  // Superstep 1 always scans: everything starts live.
  if (superstep <= 1) return JoinStrategy::kFullOuter;
  // Once the active frontier (live vertices plus combined messages) drops
  // below 1/5 of the graph, probing beats scanning...
  const int64_t frontier = live_vertices + messages;
  if (frontier * 5 >= num_vertices) return JoinStrategy::kFullOuter;
  // ...unless the superstep is message-bound anyway: a sparse frontier with
  // heavy fanout (few destinations, large combined payloads) used to pick
  // the probe join here and spill — the probe side saves the sequential
  // scan but pays random descents per key while still moving every message
  // byte. Stay with the merge scan when message volume rivals it.
  if (message_bytes * 2 >= ApproxVertexScanBytes(num_vertices, num_edges)) {
    return JoinStrategy::kFullOuter;
  }
  return JoinStrategy::kLeftOuter;
}

PlanOptimizer::PlanOptimizer(PlanOptimizerOptions opts) : opts_(opts) {
  // Hash pre-aggregation starts as the optimistic default: with the
  // accumulator table inside budget it is never worse than sort (it skips
  // the run-generation passes), and when it does overflow it degrades to
  // sorted runs — the reactive spill demotion below catches exactly that.
  current_.groupby = GroupByStrategy::kHashSort;
}

void PlanOptimizer::Observe(const OptimizerFeedback& feedback) {
  fb_ = feedback;
  has_feedback_ = true;
}

bool PlanOptimizer::CooledDown(const KnobState& k, int64_t superstep) const {
  return superstep - k.last_switch > opts_.cooldown_supersteps;
}

bool PlanOptimizer::Confirm(KnobState* k, int64_t superstep, bool wants_change,
                            bool reactive) {
  if (!wants_change) {
    k->pending_streak = 0;
    return false;
  }
  if (!CooledDown(*k, superstep)) return false;
  ++k->pending_streak;
  if (reactive || k->pending_streak >= opts_.confirm_supersteps) {
    k->pending_streak = 0;
    k->last_switch = superstep;
    return true;
  }
  return false;
}

PlanDecision PlanOptimizer::Decide(int64_t superstep) {
  if (superstep == decided_superstep_) return decided_;
  last_reactive_ = false;
  last_reason_ = superstep <= 1 || !has_feedback_ ? "initial" : "carry";

  if (superstep > 1 && has_feedback_) {
    const OptimizerFeedback& fb = fb_;
    const double ratio =
        fb.num_vertices <= 0
            ? 1.0
            : static_cast<double>(fb.live_vertices + fb.messages) /
                  static_cast<double>(fb.num_vertices);
    const bool msg_dominant =
        static_cast<double>(fb.message_bytes) >=
        opts_.message_scan_ratio *
            static_cast<double>(
                ApproxVertexScanBytes(fb.num_vertices, fb.num_edges));
    const uint64_t spill_budget = static_cast<uint64_t>(
        opts_.spill_budget_factor *
        static_cast<double>(opts_.groupby_memory_bytes));
    const bool spill_over = fb.spill_bytes > spill_budget;

    // --- join: frontier ratio with a [sparse, dense] hysteresis band. A
    // stall relaxes the edge to the middle of the band (reactive) — a plan
    // that is stalling does not get the benefit of the doubt.
    const bool wants_loj =
        current_.join == JoinStrategy::kFullOuter && !msg_dominant &&
        (ratio < opts_.sparse_frontier_ratio ||
         (fb.stalled && ratio < opts_.dense_frontier_ratio));
    const bool wants_foj =
        current_.join == JoinStrategy::kLeftOuter &&
        (ratio > opts_.dense_frontier_ratio || msg_dominant ||
         (fb.stalled && ratio > opts_.sparse_frontier_ratio));
    if (Confirm(&join_state_, superstep, wants_loj || wants_foj,
                fb.stalled)) {
      current_.join = wants_loj ? JoinStrategy::kLeftOuter
                                : JoinStrategy::kFullOuter;
      ++switch_count_;
      last_reactive_ = last_reactive_ || fb.stalled;
      last_reason_ = fb.stalled         ? "stall"
                     : msg_dominant     ? "msg-volume"
                                        : FormatRatio("frontier", ratio);
    }

    // --- group-by: hash pre-aggregation is the optimistic start; sort is
    // the reactive fallback when the hash table thrashes past the budget.
    // After a spill demotion, re-promotion to hash must be earned: the
    // combiner has to demonstrably reduce (plan profile) with zero spills.
    const double reduction =
        fb.combine_tuples_out > 0
            ? static_cast<double>(fb.combine_tuples_in) /
                  static_cast<double>(fb.combine_tuples_out)
            : 0.0;
    const bool wants_hash = current_.groupby == GroupByStrategy::kSort &&
                            reduction >= opts_.hash_reduction_threshold &&
                            fb.spill_count == 0;
    const bool wants_sort =
        current_.groupby == GroupByStrategy::kHashSort && spill_over;
    if (Confirm(&groupby_state_, superstep, wants_hash || wants_sort,
                /*reactive=*/wants_sort)) {
      current_.groupby = wants_hash ? GroupByStrategy::kHashSort
                                    : GroupByStrategy::kSort;
      ++switch_count_;
      last_reactive_ = last_reactive_ || wants_sort;
      if (wants_sort) {
        last_reason_ = "spill";
      } else if (last_reason_ == "carry") {
        last_reason_ = FormatRatio("reduction", reduction);
      }
    }

    // --- connector: merged (sender-materializing, one-pass preclustered
    // receive) is the relief valve for receive-side memory pressure and
    // skew. The relief hides the original signal, so the backswitch
    // requires the load driver — message volume — to fall to half of what
    // it was at switch time (hysteresis against relief-induced flapping).
    const bool conn_reactive = spill_over || fb.stalled;
    const bool wants_merged =
        current_.connector == GroupByConnector::kUnmerged &&
        (fb.spill_count > 0 || fb.groupby_skew >= opts_.skew_threshold);
    const bool wants_unmerged =
        current_.connector == GroupByConnector::kMerged &&
        fb.spill_count == 0 && fb.groupby_skew < opts_.skew_threshold &&
        fb.message_bytes * 2 < connector_switch_load_;
    if (Confirm(&connector_state_, superstep, wants_merged || wants_unmerged,
                /*reactive=*/wants_merged && conn_reactive)) {
      current_.connector = wants_merged ? GroupByConnector::kMerged
                                        : GroupByConnector::kUnmerged;
      if (wants_merged) connector_switch_load_ = fb.message_bytes;
      ++switch_count_;
      last_reactive_ = last_reactive_ || (wants_merged && conn_reactive);
      if (last_reason_ == "carry") {
        last_reason_ = wants_merged
                           ? (spill_over || fb.spill_count > 0 ? "spill"
                                                               : "skew")
                           : "load-drop";
      }
    }
  }

  PlanDecision out = current_;
  if (g_decision_override && g_decision_override(superstep, &out)) {
    // Adversarial/test schedule: the override's plan is adopted wholesale
    // (and becomes the baseline the next superstep diffs against).
    if (out != current_) ++switch_count_;
    current_ = out;
    last_reason_ = "override";
    last_reactive_ = false;
  }
  decided_superstep_ = superstep;
  decided_ = current_;
  return decided_;
}

VertexStorage ResolveStorageAtAdmission(const JobRuntimeContext& ctx) {
  if (ctx.job_config->storage != VertexStorage::kAuto) {
    return ctx.job_config->storage;
  }
  // Admission time has no runtime feedback; the one decisive signal is the
  // program's own declaration. Out-of-place LSM updates win under mutation
  // churn; in-place B-tree writes win everywhere else.
  return ctx.program != nullptr && ctx.program->MutatesGraph()
             ? VertexStorage::kLsmBTree
             : VertexStorage::kBTree;
}

PlanDecision ResolvePlanDecision(JobRuntimeContext* ctx) {
  const PregelixJobConfig& cfg = *ctx->job_config;
  PlanDecision d;
  switch (cfg.join) {
    case JoinStrategy::kFullOuter:
    case JoinStrategy::kLeftOuter:
      d.join = cfg.join;
      break;
    case JoinStrategy::kAdaptive:
    case JoinStrategy::kAuto:
      // kAuto without an optimizer (plan-generator unit tests, direct
      // BuildSuperstepJob callers) deterministically re-decides via the
      // legacy heuristic — also what a recovering driver does before its
      // optimizer has observed anything.
      d.join = LegacyAdaptiveJoin(ctx->current_superstep,
                                  ctx->gs.live_vertices, ctx->gs.messages,
                                  ctx->gs.message_bytes, ctx->gs.num_vertices,
                                  ctx->gs.num_edges);
      break;
  }
  // Matches the optimizer's own optimistic start so a recovering driver
  // (optimizer not yet fed) re-derives the same superstep-1 plan.
  d.groupby = cfg.groupby == GroupByStrategy::kAuto
                  ? GroupByStrategy::kHashSort
                  : cfg.groupby;
  d.connector = cfg.groupby_connector == GroupByConnector::kAuto
                    ? GroupByConnector::kUnmerged
                    : cfg.groupby_connector;
  if (ctx->optimizer != nullptr) {
    const PlanDecision chosen = ctx->optimizer->Decide(ctx->current_superstep);
    if (cfg.join == JoinStrategy::kAuto) d.join = chosen.join;
    if (cfg.groupby == GroupByStrategy::kAuto) d.groupby = chosen.groupby;
    if (cfg.groupby_connector == GroupByConnector::kAuto) {
      d.connector = chosen.connector;
    }
  }
  // A verifier rejection pinned this superstep to the previous plan; the
  // pin wins over any re-derived choice (the pin is inert for any other
  // superstep, so no cleanup is needed when the driver advances).
  if (ctx->plan_pinned && ctx->pinned_superstep == ctx->current_superstep) {
    d = ctx->pinned_plan;
  }
  ctx->current_join = d.join;
  ctx->current_groupby = d.groupby;
  ctx->current_connector = d.connector;
  return d;
}

Status ResolveAndPublishPlan(JobRuntimeContext* ctx, MetricsRegistry* registry,
                             PlanDecisionRecord* record) {
  // A new superstep starts unpinned; a pin appears below only when the
  // verifier rejects this superstep's candidate plan.
  ctx->plan_pinned = false;
  PlanDecision d = ResolvePlanDecision(ctx);

  // --- Static verification gate (DESIGN.md §18) ---------------------------
  // Every plan switch is verified before anything is published; debug
  // builds verify every superstep. A rejected switch falls back to the
  // previous superstep's plan (known-good: it already passed admission and
  // ran), journals `plan.verify.reject`, and bumps pregelix.verifier.*.
  const bool switching = ctx->has_prev_plan && d != ctx->prev_plan;
#ifdef NDEBUG
  const bool verify_now = switching;
#else
  const bool verify_now = true;
#endif
  std::string verify_reject_reason;
  if (verify_now && ctx->cluster != nullptr) {
    const JobSpec candidate = BuildSuperstepJob(ctx);
    const PlanVerifyResult verdict =
        VerifyPlan(candidate, PlanVerifyOptionsFrom(ctx->cluster->config()));
    CountVerification(registry, verdict);
    if (!verdict.ok()) {
      if (!switching) {
        // Nothing known-good to fall back to — reject the job with the
        // full compiler-style diagnostic (RunJob admission would anyway).
        return Status::InvalidArgument(verdict.Render(candidate.name()));
      }
      const PlanDecision rejected = d;
      ctx->plan_pinned = true;
      ctx->pinned_superstep = ctx->current_superstep;
      ctx->pinned_plan = ctx->prev_plan;
      d = ResolvePlanDecision(ctx);  // applies the pin to ctx->current_*
      std::string rules;
      for (const PlanViolation& v : verdict.violations) {
        if (!rules.empty()) rules += ",";
        rules += v.rule;
      }
      EventJournal::Global().Append(
          "plan.verify.reject", ctx->job_id, ctx->current_superstep,
          {{"rejected", PlanDecisionString(rejected)},
           {"fallback", PlanDecisionString(d)},
           {"rules", rules}});
      if (registry != nullptr) {
        registry
            ->GetCounter("pregelix.verifier.rejects",
                         {{"job", ctx->job_config->name}})
            ->Increment();
      }
      PLOG(Warn) << "plan verifier rejected switch to "
                 << PlanDecisionString(rejected) << " at superstep "
                 << ctx->current_superstep << " (" << rules
                 << "); keeping " << PlanDecisionString(d);
      verify_reject_reason = "verify-reject:" + rules;
    }
  }

  record->superstep = ctx->current_superstep;
  record->plan = d;
  if (!verify_reject_reason.empty()) {
    record->reactive = false;
    record->reason = verify_reject_reason;
  } else if (ctx->optimizer != nullptr) {
    record->reactive = ctx->optimizer->last_reactive();
    record->reason = ctx->optimizer->last_reason();
  } else {
    record->reactive = false;
    record->reason =
        ctx->job_config->join == JoinStrategy::kAdaptive ? "adaptive"
                                                         : "static";
  }

  struct Change {
    const char* knob;
    std::string from, to;
  };
  std::vector<Change> changes;
  if (ctx->has_prev_plan) {
    if (d.join != ctx->prev_plan.join) {
      changes.push_back({"join", JoinStrategyName(ctx->prev_plan.join),
                         JoinStrategyName(d.join)});
    }
    if (d.groupby != ctx->prev_plan.groupby) {
      changes.push_back({"groupby",
                         GroupByStrategyName(ctx->prev_plan.groupby),
                         GroupByStrategyName(d.groupby)});
    }
    if (d.connector != ctx->prev_plan.connector) {
      changes.push_back({"connector",
                         GroupByConnectorName(ctx->prev_plan.connector),
                         GroupByConnectorName(d.connector)});
    }
  }
  record->switched.clear();
  for (const Change& c : changes) {
    if (!record->switched.empty()) record->switched += ",";
    record->switched += c.knob;
  }

  // The switch boundary is a fault point: torture schedules crash exactly
  // here to prove recovery crosses plan switches. It fires before anything
  // is published, so a crashed switch is never journaled as having run.
  if (!changes.empty()) {
    PREGELIX_RETURN_NOT_OK(fault::MaybeFail("pregel.plan.switch"));
  }

  const std::string& job = ctx->job_config->name;
  if (registry != nullptr) {
    registry->GetCounter("pregelix.optimizer.decisions", {{"job", job}})
        ->Increment();
    registry->GetGauge("pregelix.optimizer.left_outer_join", {{"job", job}})
        ->Set(d.join == JoinStrategy::kLeftOuter ? 1 : 0);
    for (const Change& c : changes) {
      registry
          ->GetCounter("pregelix.optimizer.switches",
                       {{"job", job}, {"knob", c.knob}})
          ->Increment();
    }
    if (!changes.empty() && record->reactive) {
      registry
          ->GetCounter("pregelix.optimizer.reactive_switches", {{"job", job}})
          ->Increment();
    }
  }
  for (const Change& c : changes) {
    EventJournal::Global().Append(
        "plan.switch", ctx->job_id, ctx->current_superstep,
        {{"knob", c.knob},
         {"from", c.from},
         {"to", c.to},
         {"reason", record->reason},
         {"reactive", record->reactive ? "true" : "false"},
         {"plan", PlanDecisionString(d)}});
    PLOG(Info) << "plan switch [" << job << "] superstep "
               << ctx->current_superstep << ": " << c.knob << " " << c.from
               << " -> " << c.to << " (" << record->reason << ")";
  }
  server::JobStatusRegistry::Global().OnPlanDecision(
      ctx->job_id, PlanDecisionString(d),
      static_cast<int>(changes.size()));

  ctx->prev_plan = d;
  ctx->has_prev_plan = true;
  return Status::OK();
}

const char* JoinStrategyName(JoinStrategy join) {
  switch (join) {
    case JoinStrategy::kFullOuter:
      return "fullouter";
    case JoinStrategy::kLeftOuter:
      return "leftouter";
    case JoinStrategy::kAdaptive:
      return "adaptive";
    case JoinStrategy::kAuto:
      return "auto";
  }
  return "?";
}

const char* GroupByStrategyName(GroupByStrategy groupby) {
  switch (groupby) {
    case GroupByStrategy::kSort:
      return "sort";
    case GroupByStrategy::kHashSort:
      return "hashsort";
    case GroupByStrategy::kAuto:
      return "auto";
  }
  return "?";
}

const char* GroupByConnectorName(GroupByConnector connector) {
  switch (connector) {
    case GroupByConnector::kUnmerged:
      return "unmerged";
    case GroupByConnector::kMerged:
      return "merged";
    case GroupByConnector::kAuto:
      return "auto";
  }
  return "?";
}

const char* VertexStorageName(VertexStorage storage) {
  switch (storage) {
    case VertexStorage::kBTree:
      return "btree";
    case VertexStorage::kLsmBTree:
      return "lsm";
    case VertexStorage::kAuto:
      return "auto";
  }
  return "?";
}

std::string PlanDecisionString(const PlanDecision& d) {
  std::string out = JoinStrategyName(d.join);
  out += "/";
  out += GroupByStrategyName(d.groupby);
  out += "/";
  out += GroupByConnectorName(d.connector);
  return out;
}

}  // namespace pregelix
