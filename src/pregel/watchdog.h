#ifndef PREGELIX_PREGEL_WATCHDOG_H_
#define PREGELIX_PREGEL_WATCHDOG_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics_registry.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace pregelix {

/// Flags supersteps that run suspiciously long: a background thread wakes
/// when an armed superstep exceeds `factor` times the trailing-mean wall
/// time of recent supersteps and raises a warning log, the
/// `pregelix.pregel.stalls` counter, and the
/// `pregelix.pregel.superstep_stalled` gauge (latest stalled superstep,
/// sticky until the next stall). The flag fires while the superstep is
/// still running — that is the point: a wedged exchange or a pathological
/// skew shows up in the log stream without waiting for the barrier.
///
/// Arming is a no-op until three samples exist (the mean is meaningless
/// earlier) or when `factor <= 0` (disabled). One instance serves one
/// driver loop; Arm/Disarm bracket each superstep.
///
/// Every journaled "watchdog.stall" is guaranteed a terminal partner: the
/// flagged superstep's Disarm emits "watchdog.clear", and a stall whose
/// superstep never disarms (the driver unwound on an error between Arm and
/// Disarm) is closed out by the destructor with "watchdog.unresolved" — an
/// /events replay can always pair every stall with its outcome.
class StallWatchdog {
 public:
  /// `registry` may be null (no metrics surfaced, log only). A non-empty
  /// `job_id` additionally publishes stalls to the process-wide
  /// JobStatusRegistry and EventJournal ("watchdog.stall" /
  /// "watchdog.clear") for the observability server.
  StallWatchdog(double factor, MetricsRegistry* registry,
                const std::string& job_name, const std::string& job_id = "");
  ~StallWatchdog();

  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Call immediately before running superstep `superstep`.
  void Arm(int64_t superstep);
  /// Call after the superstep barrier with its measured wall time; records
  /// the sample into the trailing window.
  void Disarm(uint64_t wall_ns);

  /// Supersteps flagged so far (test hook).
  int64_t stall_count() const;
  /// Journaled stalls that have not (yet) been paired with a clear; the
  /// destructor journals "watchdog.unresolved" when this is non-zero.
  int64_t unresolved_count() const;

 private:
  void Loop();
  uint64_t TrailingMeanNs() const REQUIRES(mutex_);

  const double factor_;
  const std::string job_name_;
  const std::string job_id_;
  Counter* stalls_ = nullptr;
  Gauge* stalled_gauge_ = nullptr;

  mutable Mutex mutex_{"stall_watchdog", LockRank::kWatchdog};
  CondVar cv_;
  bool shutdown_ GUARDED_BY(mutex_) = false;
  bool armed_ GUARDED_BY(mutex_) = false;
  bool flagged_ GUARDED_BY(mutex_) = false;
  int64_t superstep_ GUARDED_BY(mutex_) = 0;
  std::chrono::steady_clock::time_point deadline_ GUARDED_BY(mutex_);
  std::vector<uint64_t> samples_ GUARDED_BY(mutex_);  ///< trailing window
  int64_t stall_count_ GUARDED_BY(mutex_) = 0;
  /// Journal balance: stalls emitted vs clears emitted. Unequal at
  /// destruction means a flagged superstep never disarmed.
  int64_t stalls_journaled_ GUARDED_BY(mutex_) = 0;
  int64_t clears_journaled_ GUARDED_BY(mutex_) = 0;
  std::thread thread_;
};

}  // namespace pregelix

#endif  // PREGELIX_PREGEL_WATCHDOG_H_
