#ifndef PREGELIX_PREGEL_VERTEX_FORMAT_H_
#define PREGELIX_PREGEL_VERTEX_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"

namespace pregelix {

/// Binary layout of one row of the Vertex relation (Table 1 of the paper:
/// Vertex(vid, halt, value, edges)). The vid is the index key; the stored
/// value is:
///
///   [halt u8][value_len u32][value bytes][edge_count u32]
///   ([dst i64][edge_len u32][edge bytes])*
///
/// The halt flag lives in the first byte so plan-level code (filters, Vid
/// maintenance, pipelined-job reactivation) can read and write it without
/// decoding the user-typed value or edges.
struct VertexEdgeView {
  int64_t dst;
  Slice value;
};

struct VertexRecordView {
  bool halt = false;
  Slice value;
  std::vector<VertexEdgeView> edges;

  /// Parses `bytes` (which must outlive the view). Corruption on malformed.
  Status Parse(const Slice& bytes);

  /// Serializes to `out`.
  void Encode(std::string* out) const;
};

/// Reads just the halt flag.
inline bool VertexHalt(const Slice& record) {
  return !record.empty() && record[0] != 0;
}

/// Flips the halt flag in a serialized record in place.
inline void SetVertexHalt(std::string* record, bool halt) {
  if (!record->empty()) (*record)[0] = halt ? 1 : 0;
}

/// Builds a record from parts without a view.
void EncodeVertexRecord(bool halt, const Slice& value,
                        const std::vector<std::pair<int64_t, std::string>>& edges,
                        std::string* out);

/// Reads the edge count without a full parse (for statistics).
int64_t VertexEdgeCount(const Slice& record);

}  // namespace pregelix

#endif  // PREGELIX_PREGEL_VERTEX_FORMAT_H_
