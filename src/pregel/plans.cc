#include "pregel/plans.h"

#include <algorithm>
#include <memory>
#include <utility>
#include <vector>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/serde.h"
#include "common/temp_dir.h"
#include "dataflow/frame.h"
#include "dataflow/ops/sort.h"
#include "dataflow/plan_profile.h"
#include "dataflow/tuple_run.h"
#include "graph/text_io.h"
#include "io/file.h"
#include "pregel/vertex_format.h"
#include "storage/btree.h"
#include "storage/lsm_btree.h"

namespace pregelix {

namespace {

// ---------------------------------------------------------------------------
// Shared helpers

/// Creates (or re-creates) the Vertex index of partition p per the job's
/// admission-resolved storage choice (ctx->current_storage; never kAuto).
/// Existing index files are removed first.
Status MakeVertexIndex(JobRuntimeContext* ctx, int p,
                       std::unique_ptr<OrderedIndex>* out) {
  const std::string dir = ctx->PartitionDir(p);
  PREGELIX_CHECK(EnsureDir(dir));
  const int worker = ctx->cluster->worker_of_partition(p);
  BufferCache& cache = ctx->cluster->cache(worker);
  if (ctx->current_storage == VertexStorage::kBTree) {
    const std::string path = dir + "/vertex.btree";
    DeleteFileIfExists(path);
    std::unique_ptr<BTree> tree;
    PREGELIX_RETURN_NOT_OK(BTree::Open(&cache, path, &tree));
    *out = std::move(tree);
  } else {
    const std::string lsm_dir = dir + "/vertex-lsm";
    RemoveAll(lsm_dir);
    std::unique_ptr<LsmBTree> lsm;
    // The in-memory component budget follows the group-by budget scale.
    PREGELIX_RETURN_NOT_OK(LsmBTree::Open(
        &cache, lsm_dir, ctx->cluster->config().groupby_memory_bytes,
        ctx->cluster->overlap(), &lsm));
    *out = std::move(lsm);
  }
  return Status::OK();
}

Status MakeVidIndex(JobRuntimeContext* ctx, int p, const std::string& name,
                    std::unique_ptr<BTree>* out) {
  const std::string dir = ctx->PartitionDir(p);
  PREGELIX_CHECK(EnsureDir(dir));
  const int worker = ctx->cluster->worker_of_partition(p);
  const std::string path = dir + "/" + name;
  DeleteFileIfExists(path);
  return BTree::Open(&ctx->cluster->cache(worker), path, out);
}

SortConfig MakeSortConfig(JobRuntimeContext* ctx, TaskContext& task,
                          const std::string& tag) {
  SortConfig config;
  config.field_count = 2;
  config.key_field = 0;
  config.memory_budget_bytes = task.config->groupby_memory_bytes;
  config.frame_size = task.config->frame_size;
  config.scratch_prefix = ctx->PartitionDir(task.partition) + "/" + tag +
                          "-" + std::to_string(ctx->current_superstep);
  config.metrics = task.metrics;
  config.tracer = task.tracer;
  config.worker = task.worker;
  config.profile = task.profile;
  config.overlap = task.overlap;
  return config;
}

/// Eager shuffle-driven group-by gate (DESIGN.md §19). The send-side
/// grouper may stream partial groups into the shuffle as they form only
/// when (a) the overlap runtime exists, (b) the connector is the pipelined
/// unmerged one — the merging connector's receiver requires fully sorted,
/// finished sender runs — and (c) the combiner has no final transform:
/// non-eager plans apply `finish` at the sender and the receiver re-applies
/// it to the re-combined groups, which is only byte-identical when finish
/// is absent (both shipped combiners are pure accumulators).
bool EagerShuffleEnabled(const JobRuntimeContext* ctx) {
  return ctx->cluster->overlap() != nullptr &&
         ctx->current_connector == GroupByConnector::kUnmerged &&
         !ctx->program->MsgCombiner().finish;
}

/// Per-partition global-state contribution tuple payload
/// (flows D4/D5 pre-aggregated at the worker, paper Section 5.3.3).
struct Contribution {
  bool halt = true;  ///< AND identity
  int64_t live = 0;
  std::string aggregate;  ///< partial aggregate (or empty when no hooks)
  bool has_aggregate = false;

  std::string Encode() const {
    std::string out;
    out.push_back(halt ? 1 : 0);
    out.push_back(has_aggregate ? 1 : 0);
    PutFixed64(&out, static_cast<uint64_t>(live));
    PutLengthPrefixed(&out, Slice(aggregate));
    return out;
  }
  Status Decode(Slice in) {
    if (in.size() < 10) return Status::Corruption("contribution too short");
    halt = in[0] != 0;
    has_aggregate = in[1] != 0;
    in.remove_prefix(2);
    live = static_cast<int64_t>(DecodeFixed64(in.data()));
    in.remove_prefix(8);
    Slice agg;
    if (!GetLengthPrefixed(&in, &agg)) {
      return Status::Corruption("contribution aggregate truncated");
    }
    aggregate = agg.ToString();
    return Status::OK();
  }
};

/// Encodes one mutation as a list item for the resolve group-by.
std::string EncodeMutationItem(const MutationRecord& m) {
  std::string payload;
  payload.push_back(static_cast<char>(m.op));
  payload.append(m.vertex_bytes);
  std::string item;
  PutLengthPrefixed(&item, Slice(payload));
  return item;
}

Status DecodeMutationItems(int64_t vid, const Slice& list,
                           std::vector<MutationRecord>* out) {
  out->clear();
  Slice in = list;
  Slice item;
  while (GetLengthPrefixed(&in, &item)) {
    if (item.empty()) return Status::Corruption("empty mutation item");
    MutationRecord m;
    m.op = static_cast<MutationRecord::Op>(item[0]);
    m.vid = vid;
    m.vertex_bytes.assign(item.data() + 1, item.size() - 1);
    out->push_back(std::move(m));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Load plan

Status RunScanOp(JobRuntimeContext* ctx, TaskContext& task) {
  std::vector<std::string> names;
  PREGELIX_RETURN_NOT_OK(
      ctx->dfs->List(ctx->job_config->input_dir, &names));
  std::string record;
  int index = 0;
  for (const std::string& name : names) {
    if (name.rfind("part-", 0) != 0) continue;
    // Round-robin part files over scan clones (data locality in spirit).
    if (index++ % task.num_partitions != task.partition) continue;
    PREGELIX_RETURN_NOT_OK(ScanGraphPart(
        *ctx->dfs, ctx->job_config->input_dir + "/" + name,
        [&](int64_t vid, const std::vector<int64_t>& dests) -> Status {
          PREGELIX_RETURN_NOT_OK(
              ctx->program->InitialVertex(vid, dests, &record));
          const std::string key = OrderedKeyI64(vid);
          const Slice fields[2] = {Slice(key), Slice(record)};
          task.metrics->AddCpuOps(1);
          return task.output(0).Append(fields);
        }));
  }
  return Status::OK();
}

Status RunLoadOp(JobRuntimeContext* ctx, TaskContext& task) {
  const int p = task.partition;
  PartitionState& state = ctx->partitions[p];
  PREGELIX_RETURN_NOT_OK(MakeVertexIndex(ctx, p, &state.vertex_index));
  const bool loj = ctx->MaintainsVid();

  ExternalSortGrouper sorter(MakeSortConfig(ctx, task, "loadsort"));
  FrameTupleAccessor acc(2);
  std::string frame;
  while (task.input(0).Next(&frame)) {
    acc.Reset(Slice(frame));
    for (int t = 0; t < acc.tuple_count(); ++t) {
      const Slice fields[2] = {acc.field(t, 0), acc.field(t, 1)};
      PREGELIX_RETURN_NOT_OK(sorter.Add(fields));
    }
  }

  // Bulk load Vertex (and Vid = all vertices, initially all active).
  std::unique_ptr<IndexBulkLoader> loader;
  if (auto* btree = dynamic_cast<BTree*>(state.vertex_index.get())) {
    loader = btree->NewBulkLoader();
  } else {
    loader = static_cast<LsmBTree*>(state.vertex_index.get())->NewBulkLoader();
  }
  std::unique_ptr<IndexBulkLoader> vid_loader;
  if (loj) {
    PREGELIX_RETURN_NOT_OK(
        MakeVidIndex(ctx, p, "vid-1.btree", &state.vid_index));
    vid_loader = state.vid_index->NewBulkLoader();
  }
  std::string last_key;
  int64_t vertices = 0, edges = 0;
  PREGELIX_RETURN_NOT_OK(
      sorter.Finish([&](std::span<const Slice> fields) -> Status {
        if (!last_key.empty() && Slice(last_key) == fields[0]) {
          PLOG(Warn) << "duplicate vid in input, keeping first";
          return Status::OK();
        }
        last_key = fields[0].ToString();
        PREGELIX_RETURN_NOT_OK(loader->Add(fields[0], fields[1]));
        if (vid_loader != nullptr) {
          PREGELIX_RETURN_NOT_OK(vid_loader->Add(fields[0], Slice()));
        }
        ++vertices;
        edges += VertexEdgeCount(fields[1]);
        return Status::OK();
      }));
  PREGELIX_RETURN_NOT_OK(loader->Finish());
  if (vid_loader != nullptr) {
    PREGELIX_RETURN_NOT_OK(vid_loader->Finish());
  }
  state.vertices = vertices;
  state.edges = edges;
  state.msg_path.clear();
  state.vid_extra_path.clear();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Superstep plan: compute operator

/// Shared compute machinery for both join strategies.
class ComputeDriver {
 public:
  ComputeDriver(JobRuntimeContext* ctx, TaskContext& task)
      : ctx_(ctx),
        task_(task),
        state_(ctx->partitions[task.partition]),
        loj_(ctx->current_join == JoinStrategy::kLeftOuter),
        defer_updates_(ctx->current_join == JoinStrategy::kFullOuter),
        agg_hooks_(ctx->program->GlobalAggregator()),
        pending_(ctx->PartitionDir(task.partition) + "/pending-" +
                     std::to_string(ctx->current_superstep),
                 task.config->frame_size, 2, task.metrics, task.overlap) {
    contribution_.aggregate = agg_hooks_.initial;
    contribution_.has_aggregate = agg_hooks_.valid();
    const GroupCombiner combiner = ctx->program->MsgCombiner();
    SortConfig gconf = MakeSortConfig(ctx, task, "sendgb");
    if (ctx->current_groupby == GroupByStrategy::kHashSort) {
      hash_grouper_ =
          std::make_unique<HashSortGrouper>(gconf, combiner);
    } else {
      sort_grouper_ =
          std::make_unique<ExternalSortGrouper>(gconf, combiner);
    }
    if (EagerShuffleEnabled(ctx)) {
      // Budget overflows stream partial groups straight into the shuffle,
      // so the receive-side group-by starts while compute is still running.
      auto sink = [this](std::span<const Slice> fields) {
        return task_.output(0).Append(fields);
      };
      if (hash_grouper_ != nullptr) {
        hash_grouper_->SetEagerSink(sink);
      } else {
        sort_grouper_->SetEagerSink(sink);
      }
    }
  }

  Status Init() {
    if (ctx_->MaintainsVid()) {
      PREGELIX_RETURN_NOT_OK(MakeVidIndex(
          ctx_, task_.partition,
          "vid-" + std::to_string(ctx_->current_superstep + 1) + ".btree",
          &state_.next_vid_index));
      next_vid_loader_ = state_.next_vid_index->NewBulkLoader();
    }
    return Status::OK();
  }

  /// Runs the compute UDF for one joined row (post-filter) and routes its
  /// output to the in-flight mini-operators.
  Status Process(int64_t vid, bool vertex_exists, const Slice& vertex_bytes,
                 bool has_messages, const Slice& payload) {
    input_.vid = vid;
    input_.vertex_exists = vertex_exists;
    input_.vertex_bytes = vertex_bytes;
    input_.has_messages = has_messages;
    input_.message_payload = payload;
    input_.superstep = ctx_->current_superstep;
    input_.global_aggregate = Slice(ctx_->gs.aggregate);
    input_.num_vertices = ctx_->gs.num_vertices;
    input_.num_edges = ctx_->gs.num_edges;
    output_.Clear();
    PREGELIX_RETURN_NOT_OK(ctx_->program->Compute(input_, &output_));
    task_.metrics->AddCpuOps(1 + output_.messages.size());

    // D3: messages into the sender-side pre-combine.
    const std::string vid_key_storage = OrderedKeyI64(vid);
    for (const auto& [dst, msg_payload] : output_.messages) {
      const std::string dst_key = OrderedKeyI64(dst);
      const Slice fields[2] = {Slice(dst_key), Slice(msg_payload)};
      PREGELIX_RETURN_NOT_OK(hash_grouper_ != nullptr
                                 ? hash_grouper_->Add(fields)
                                 : sort_grouper_->Add(fields));
    }

    // D2: vertex update (fused mini-operator).
    if (output_.vertex_dirty) {
      PREGELIX_RETURN_NOT_OK(
          ApplyUpdate(vid_key_storage, vertex_exists, vertex_bytes,
                      output_.vertex_bytes));
      ctx_->edges_delta.fetch_add(
          VertexEdgeCount(Slice(output_.vertex_bytes)) -
          (vertex_exists ? VertexEdgeCount(vertex_bytes) : 0));
      if (!vertex_exists) ctx_->vertices_added.fetch_add(1);
    } else if (vertex_exists &&
               VertexHalt(vertex_bytes) != output_.voted_halt) {
      std::string record = vertex_bytes.ToString();
      SetVertexHalt(&record, output_.voted_halt);
      PREGELIX_RETURN_NOT_OK(
          ApplyUpdate(vid_key_storage, vertex_exists, vertex_bytes, record));
    } else if (!vertex_exists) {
      return Status::Internal(
          "compute created a vertex without marking it dirty");
    }

    // D4/D5: global state contributions.
    contribution_.halt &= output_.voted_halt && output_.messages.empty();
    if (!output_.voted_halt) ++contribution_.live;
    if (agg_hooks_.valid() && output_.has_aggregate) {
      agg_hooks_.step(Slice(output_.aggregate_contribution),
                      &contribution_.aggregate);
    }

    // D6: mutations.
    for (const MutationRecord& m : output_.mutations) {
      const std::string key = OrderedKeyI64(m.vid);
      const std::string item = EncodeMutationItem(m);
      const Slice fields[2] = {Slice(key), Slice(item)};
      PREGELIX_RETURN_NOT_OK(task_.output(2).Append(fields));
    }

    // D11/D12: the live-vertex set for the next superstep.
    if (next_vid_loader_ != nullptr && !output_.voted_halt) {
      PREGELIX_RETURN_NOT_OK(
          next_vid_loader_->Add(Slice(vid_key_storage), Slice()));
    }
    return Status::OK();
  }

  /// Flushes messages, contribution, pending updates, and the Vid loader.
  Status Finish() {
    // Pending (deferred) Vertex updates: safe to apply now — the index scan
    // has completed.
    if (pending_any_) {
      PREGELIX_RETURN_NOT_OK(pending_.Finish());
      TupleRunReader reader(pending_.path(), 2, task_.metrics,
                            task_.overlap);
      PREGELIX_RETURN_NOT_OK(reader.Init());
      while (reader.Valid()) {
        PREGELIX_RETURN_NOT_OK(
            state_.vertex_index->Upsert(reader.field(0), reader.field(1)));
        PREGELIX_RETURN_NOT_OK(reader.Next());
      }
      if (task_.profile != nullptr) {
        task_.profile->AddIoWait(pending_.io_wait_ns() +
                                 reader.io_wait_ns());
      }
      DeleteFileIfExists(pending_.path());
    }
    // Combined message stream to the connector (sorted by destination, so
    // the merging connector's receiver sees sorted sender runs).
    auto emit = [&](std::span<const Slice> fields) {
      return task_.output(0).Append(fields);
    };
    PREGELIX_RETURN_NOT_OK(hash_grouper_ != nullptr
                               ? hash_grouper_->Finish(emit)
                               : sort_grouper_->Finish(emit));
    // Contribution tuple (m-to-one).
    const std::string key = OrderedKeyI64(task_.partition);
    const std::string payload = contribution_.Encode();
    const Slice fields[2] = {Slice(key), Slice(payload)};
    PREGELIX_RETURN_NOT_OK(task_.output(1).Append(fields));
    if (next_vid_loader_ != nullptr) {
      PREGELIX_RETURN_NOT_OK(next_vid_loader_->Finish());
    }
    return Status::OK();
  }

 private:
  /// D2 application policy: the full-outer plan is mid-scan on the Vertex
  /// index, so only same-size in-place B-tree overwrites are safe
  /// immediately; anything structural is buffered and applied after the
  /// scan. The left-outer plan holds no Vertex scan, so it applies
  /// immediately.
  Status ApplyUpdate(const std::string& key, bool vertex_exists,
                     const Slice& old_bytes, const std::string& new_bytes) {
    const bool is_btree =
        ctx_->current_storage == VertexStorage::kBTree;
    const bool in_place_safe = is_btree && vertex_exists &&
                               old_bytes.size() == new_bytes.size();
    if (!defer_updates_ || in_place_safe) {
      return state_.vertex_index->Upsert(Slice(key), Slice(new_bytes));
    }
    pending_any_ = true;
    const Slice fields[2] = {Slice(key), Slice(new_bytes)};
    return pending_.Append(fields);
  }

  JobRuntimeContext* ctx_;
  TaskContext& task_;
  PartitionState& state_;
  const bool loj_;
  const bool defer_updates_;
  GlobalAggHooks agg_hooks_;

  std::unique_ptr<ExternalSortGrouper> sort_grouper_;
  std::unique_ptr<HashSortGrouper> hash_grouper_;
  std::unique_ptr<IndexBulkLoader> next_vid_loader_;
  TupleRunWriter pending_;
  bool pending_any_ = false;
  Contribution contribution_;
  ComputeInput input_;
  ComputeOutput output_;
};

/// Index full outer join strategy (Figure 8 left): single-pass merge of the
/// sorted Msg run with the full Vertex index scan.
Status RunComputeFullOuter(JobRuntimeContext* ctx, TaskContext& task) {
  PartitionState& state = ctx->partitions[task.partition];
  ComputeDriver driver(ctx, task);
  PREGELIX_RETURN_NOT_OK(driver.Init());

  TupleRunReader msg(state.msg_path, 2, task.metrics, task.overlap);
  PREGELIX_RETURN_NOT_OK(msg.Init());
  std::unique_ptr<IndexIterator> vertex = state.vertex_index->NewIterator();
  PREGELIX_RETURN_NOT_OK(vertex->SeekToFirst());

  while (msg.Valid() || vertex->Valid()) {
    int cmp;
    if (!msg.Valid()) {
      cmp = 1;  // vertex only
    } else if (!vertex->Valid()) {
      cmp = -1;  // message only
    } else {
      cmp = msg.field(0).compare(vertex->key());
    }
    if (cmp < 0) {
      // Left-outer case: message to a missing vertex — create it.
      const int64_t vid = DecodeOrderedI64(msg.field(0).data());
      PREGELIX_RETURN_NOT_OK(
          driver.Process(vid, /*vertex_exists=*/false, Slice(),
                         /*has_messages=*/true, msg.field(1)));
      PREGELIX_RETURN_NOT_OK(msg.Next());
    } else if (cmp == 0) {
      const int64_t vid = DecodeOrderedI64(msg.field(0).data());
      PREGELIX_RETURN_NOT_OK(driver.Process(vid, true, vertex->value(), true,
                                            msg.field(1)));
      PREGELIX_RETURN_NOT_OK(msg.Next());
      PREGELIX_RETURN_NOT_OK(vertex->Next());
    } else {
      // Right-outer case: vertex without messages — the filter
      // σ(halt=false || payload≠NULL) prunes halted ones.
      const Slice record = vertex->value();
      if (!VertexHalt(record)) {
        const int64_t vid = DecodeOrderedI64(vertex->key().data());
        PREGELIX_RETURN_NOT_OK(
            driver.Process(vid, true, record, false, Slice()));
      } else {
        task.metrics->AddCpuOps(1);  // scanned and filtered
      }
      PREGELIX_RETURN_NOT_OK(vertex->Next());
    }
  }
  if (task.profile != nullptr) task.profile->AddIoWait(msg.io_wait_ns());
  return driver.Finish();
}

/// Index left outer join strategy (Figure 8 right): merge(choose()) of Msg
/// with the Vid live-vertex index (plus resolve-added vids), probing the
/// Vertex index per resulting key.
Status RunComputeLeftOuter(JobRuntimeContext* ctx, TaskContext& task) {
  PartitionState& state = ctx->partitions[task.partition];
  ComputeDriver driver(ctx, task);
  PREGELIX_RETURN_NOT_OK(driver.Init());

  TupleRunReader msg(state.msg_path, 2, task.metrics, task.overlap);
  PREGELIX_RETURN_NOT_OK(msg.Init());
  std::unique_ptr<IndexIterator> vid_it;
  if (state.vid_index != nullptr) {
    vid_it = state.vid_index->NewIterator();
    PREGELIX_RETURN_NOT_OK(vid_it->SeekToFirst());
  }
  TupleRunReader extra(state.vid_extra_path, 2, task.metrics, task.overlap);
  PREGELIX_RETURN_NOT_OK(extra.Init());

  std::string probe_value;
  while (msg.Valid() || (vid_it != nullptr && vid_it->Valid()) ||
         extra.Valid()) {
    // Smallest key among the three sorted sources.
    Slice min_key;
    bool has_msg = false;
    auto consider = [&](const Slice& key) {
      if (min_key.empty() || key.compare(min_key) < 0) min_key = key;
    };
    if (msg.Valid()) consider(msg.field(0));
    if (vid_it != nullptr && vid_it->Valid()) consider(vid_it->key());
    if (extra.Valid()) consider(extra.field(0));

    const std::string key = min_key.ToString();
    Slice payload;
    if (msg.Valid() && msg.field(0) == Slice(key)) {
      has_msg = true;
      payload = msg.field(1);  // valid until msg.Next()
    }
    // choose(): advance all sources holding this key; Msg supplies payload.
    if (vid_it != nullptr && vid_it->Valid() && vid_it->key() == Slice(key)) {
      PREGELIX_RETURN_NOT_OK(vid_it->Next());
    }
    while (extra.Valid() && extra.field(0) == Slice(key)) {
      PREGELIX_RETURN_NOT_OK(extra.Next());
    }

    // Probe the Vertex index: a probe pays the root-to-leaf descent
    // ("it needs to search the index from the root every time; this is not
    // worthwhile if most data in the leaf nodes will be qualified as join
    // results" — paper Section 7.5), versus 1 op/row for the merge scan.
    const int64_t vid = DecodeOrderedI64(key.data());
    Status probe = state.vertex_index->Get(Slice(key), &probe_value);
    task.metrics->AddCpuOps(4);
    if (probe.IsNotFound()) {
      if (has_msg) {
        PREGELIX_RETURN_NOT_OK(
            driver.Process(vid, false, Slice(), true, payload));
      }
      // else: a live-set entry whose vertex was removed by a mutation.
    } else {
      PREGELIX_RETURN_NOT_OK(probe);
      if (has_msg || !VertexHalt(Slice(probe_value))) {
        PREGELIX_RETURN_NOT_OK(
            driver.Process(vid, true, Slice(probe_value), has_msg, payload));
      }
    }
    if (has_msg) {
      PREGELIX_RETURN_NOT_OK(msg.Next());
    }
  }
  if (task.profile != nullptr) {
    task.profile->AddIoWait(msg.io_wait_ns() + extra.io_wait_ns());
  }
  return driver.Finish();
}

// ---------------------------------------------------------------------------
// Superstep plan: combine / global aggregation / resolve operators

Status RunCombineOp(JobRuntimeContext* ctx, TaskContext& task) {
  const int p = task.partition;
  PartitionState& state = ctx->partitions[p];
  const std::string path =
      ctx->PartitionDir(p) + "/msg-" +
      std::to_string(ctx->current_superstep + 1);
  TupleRunWriter writer(path, task.config->frame_size, 2, task.metrics,
                        task.overlap);
  uint64_t payload_bytes = 0;
  auto emit = [&](std::span<const Slice> fields) {
    payload_bytes += fields[1].size();
    return writer.Append(fields);
  };
  const GroupCombiner combiner = ctx->program->MsgCombiner();
  FrameTupleAccessor acc(2);
  std::string frame;

  if (ctx->current_connector == GroupByConnector::kMerged) {
    // The merging connector already delivers a key-sorted stream: one-pass
    // preclustered group-by.
    PreclusteredGrouper grouper(combiner, task.metrics);
    while (task.input(0).Next(&frame)) {
      acc.Reset(Slice(frame));
      for (int t = 0; t < acc.tuple_count(); ++t) {
        PREGELIX_RETURN_NOT_OK(
            grouper.Add(acc.field(t, 0), acc.field(t, 1), emit));
      }
    }
    PREGELIX_RETURN_NOT_OK(grouper.Finish(emit));
  } else if (ctx->current_groupby == GroupByStrategy::kHashSort) {
    HashSortGrouper grouper(MakeSortConfig(ctx, task, "recvgb"), combiner);
    while (task.input(0).Next(&frame)) {
      acc.Reset(Slice(frame));
      for (int t = 0; t < acc.tuple_count(); ++t) {
        const Slice fields[2] = {acc.field(t, 0), acc.field(t, 1)};
        PREGELIX_RETURN_NOT_OK(grouper.Add(fields));
      }
    }
    PREGELIX_RETURN_NOT_OK(grouper.Finish(emit));
  } else {
    ExternalSortGrouper grouper(MakeSortConfig(ctx, task, "recvgb"),
                                combiner);
    while (task.input(0).Next(&frame)) {
      acc.Reset(Slice(frame));
      for (int t = 0; t < acc.tuple_count(); ++t) {
        const Slice fields[2] = {acc.field(t, 0), acc.field(t, 1)};
        PREGELIX_RETURN_NOT_OK(grouper.Add(fields));
      }
    }
    PREGELIX_RETURN_NOT_OK(grouper.Finish(emit));
  }
  PREGELIX_RETURN_NOT_OK(writer.Finish());
  if (task.profile != nullptr) task.profile->AddIoWait(writer.io_wait_ns());
  state.next_msg_path = path;
  state.next_msg_count = writer.count();
  state.next_msg_bytes = payload_bytes;
  return Status::OK();
}

Status RunGlobalAggOp(JobRuntimeContext* ctx, TaskContext& task) {
  GlobalAggHooks hooks = ctx->program->GlobalAggregator();
  GlobalState next = ctx->gs;
  next.superstep = ctx->current_superstep;
  next.halt = true;
  next.live_vertices = 0;
  std::string agg_acc = hooks.initial;

  // Contributions arrive in frame-arrival order, which varies run to run.
  // One tuple arrives per compute clone, keyed by partition id: buffer and
  // sort them so the aggregator folds in partition order and float
  // aggregates (e.g. PageRank's dangling mass) are bit-stable across runs.
  FrameTupleAccessor acc(2);
  std::string frame;
  std::vector<std::pair<std::string, std::string>> contribs;
  while (task.input(0).Next(&frame)) {
    acc.Reset(Slice(frame));
    for (int t = 0; t < acc.tuple_count(); ++t) {
      contribs.emplace_back(acc.field(t, 0).ToString(),
                            acc.field(t, 1).ToString());
    }
  }
  std::sort(contribs.begin(), contribs.end());
  for (const auto& [key, encoded] : contribs) {
    Contribution c;
    PREGELIX_RETURN_NOT_OK(c.Decode(Slice(encoded)));
    next.halt = next.halt && c.halt;
    next.live_vertices += c.live;
    if (hooks.valid() && c.has_aggregate) {
      hooks.step(Slice(c.aggregate), &agg_acc);
    }
    task.metrics->AddCpuOps(1);
  }
  if (hooks.valid()) {
    if (hooks.finish) hooks.finish(&agg_acc);
    next.aggregate = agg_acc;
  }
  {
    MutexLock lock(&ctx->gs_mutex);
    ctx->pending_gs = next;
  }
  return Status::OK();
}

Status RunResolveOp(JobRuntimeContext* ctx, TaskContext& task) {
  const int p = task.partition;
  PartitionState& state = ctx->partitions[p];
  const bool loj = ctx->MaintainsVid();

  ExternalSortGrouper grouper(MakeSortConfig(ctx, task, "resolve"),
                              ListMsgCombiner());
  FrameTupleAccessor acc(2);
  std::string frame;
  bool any = false;
  while (task.input(0).Next(&frame)) {
    acc.Reset(Slice(frame));
    for (int t = 0; t < acc.tuple_count(); ++t) {
      const Slice fields[2] = {acc.field(t, 0), acc.field(t, 1)};
      PREGELIX_RETURN_NOT_OK(grouper.Add(fields));
      any = true;
    }
  }
  if (!any) {
    // Nothing to resolve; still drain the grouper for symmetry.
    return grouper.Finish(
        [](std::span<const Slice>) { return Status::OK(); });
  }

  std::unique_ptr<TupleRunWriter> extra_writer;
  if (loj) {
    const std::string path =
        ctx->PartitionDir(p) + "/vidextra-" +
        std::to_string(ctx->current_superstep + 1);
    extra_writer = std::make_unique<TupleRunWriter>(
        path, task.config->frame_size, 2, task.metrics, task.overlap);
  }
  std::vector<MutationRecord> mutations;
  std::string vertex_bytes;
  std::string old_bytes;
  PREGELIX_RETURN_NOT_OK(grouper.Finish(
      [&](std::span<const Slice> fields) -> Status {
        const int64_t vid = DecodeOrderedI64(fields[0].data());
        PREGELIX_RETURN_NOT_OK(
            DecodeMutationItems(vid, fields[1], &mutations));
        vertex_bytes.clear();
        const PregelProgram::ResolveAction action =
            ctx->program->Resolve(vid, mutations, &vertex_bytes);
        task.metrics->AddCpuOps(mutations.size());
        const Status get = state.vertex_index->Get(fields[0], &old_bytes);
        const bool existed = get.ok();
        if (!existed && !get.IsNotFound()) return get;
        switch (action) {
          case PregelProgram::ResolveAction::kUpsert: {
            PREGELIX_RETURN_NOT_OK(
                state.vertex_index->Upsert(fields[0], Slice(vertex_bytes)));
            if (!existed) ctx->vertices_added.fetch_add(1);
            ctx->edges_delta.fetch_add(
                VertexEdgeCount(Slice(vertex_bytes)) -
                (existed ? VertexEdgeCount(Slice(old_bytes)) : 0));
            if (extra_writer != nullptr &&
                !VertexHalt(Slice(vertex_bytes))) {
              const Slice vfields[2] = {fields[0], Slice()};
              PREGELIX_RETURN_NOT_OK(extra_writer->Append(vfields));
            }
            break;
          }
          case PregelProgram::ResolveAction::kDelete: {
            if (existed) {
              PREGELIX_RETURN_NOT_OK(state.vertex_index->Delete(fields[0]));
              ctx->vertices_removed.fetch_add(1);
              ctx->edges_delta.fetch_sub(VertexEdgeCount(Slice(old_bytes)));
            }
            break;
          }
          case PregelProgram::ResolveAction::kNone:
            break;
        }
        return Status::OK();
      }));
  if (extra_writer != nullptr) {
    PREGELIX_RETURN_NOT_OK(extra_writer->Finish());
    if (task.profile != nullptr) {
      task.profile->AddIoWait(extra_writer->io_wait_ns());
    }
    state.next_vid_extra_path = extra_writer->path();
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Dump / checkpoint / recovery operators

Status RunDumpOp(JobRuntimeContext* ctx, TaskContext& task) {
  PREGELIX_RETURN_NOT_OK(fault::MaybeFail("pregel.dump"));
  PartitionState& state = ctx->partitions[task.partition];
  std::unique_ptr<WritableFile> out;
  PREGELIX_RETURN_NOT_OK(ctx->dfs->OpenForWrite(
      ctx->job_config->output_dir + "/part-" +
          std::to_string(task.partition),
      &out));
  std::unique_ptr<IndexIterator> it = state.vertex_index->NewIterator();
  PREGELIX_RETURN_NOT_OK(it->SeekToFirst());
  std::string line;
  while (it->Valid()) {
    line.clear();
    PREGELIX_RETURN_NOT_OK(ctx->program->FormatVertex(
        DecodeOrderedI64(it->key().data()), it->value(), &line));
    line.push_back('\n');
    PREGELIX_RETURN_NOT_OK(out->Append(line));
    task.metrics->AddCpuOps(1);
    PREGELIX_RETURN_NOT_OK(it->Next());
  }
  return out->Close();
}

namespace {

/// Installs `<dir>/<name>.tmp` as `<dir>/<name>` and records its size and
/// checksum in the partition's manifest contribution. Snapshot writers
/// target the .tmp name, so a crash mid-write never leaves a torn file
/// under a committed name.
Status CommitSnapshotFile(JobRuntimeContext* ctx, const std::string& dir,
                          const std::string& name, PartitionState* state) {
  PREGELIX_RETURN_NOT_OK(fault::MaybeFail("pregel.checkpoint.file"));
  const std::string final_path = ctx->dfs->Resolve(dir + "/" + name);
  PREGELIX_RETURN_NOT_OK(RenameFile(final_path + ".tmp", final_path));
  PartitionState::CheckpointFileInfo info;
  info.name = name;
  PREGELIX_RETURN_NOT_OK(GetFileSize(final_path, &info.size));
  PREGELIX_RETURN_NOT_OK(ChecksumFile(final_path, &info.checksum));
  state->ckpt_files.push_back(std::move(info));
  return Status::OK();
}

}  // namespace

Status RunCheckpointOp(JobRuntimeContext* ctx, TaskContext& task,
                       int64_t superstep) {
  PartitionState& state = ctx->partitions[task.partition];
  const std::string dir = CheckpointDir(*ctx, superstep);
  PREGELIX_RETURN_NOT_OK(ctx->dfs->MakeDirs(dir));
  const std::string suffix = "-part-" + std::to_string(task.partition);
  state.ckpt_files.clear();

  // Vertex snapshot. Snapshot writers go through the write-behind queue;
  // Finish() drains the file's ticket before CommitSnapshotFile sizes and
  // checksums it, so the commit protocol sees fully-written bytes.
  TupleRunWriter vertex_writer(
      ctx->dfs->Resolve(dir + "/vertex" + suffix) + ".tmp",
      task.config->frame_size, 2, task.metrics, task.overlap);
  std::unique_ptr<IndexIterator> it = state.vertex_index->NewIterator();
  PREGELIX_RETURN_NOT_OK(it->SeekToFirst());
  while (it->Valid()) {
    const Slice fields[2] = {it->key(), it->value()};
    PREGELIX_RETURN_NOT_OK(vertex_writer.Append(fields));
    PREGELIX_RETURN_NOT_OK(it->Next());
  }
  PREGELIX_RETURN_NOT_OK(vertex_writer.Finish());
  if (task.profile != nullptr) {
    task.profile->AddIoWait(vertex_writer.io_wait_ns());
  }
  PREGELIX_RETURN_NOT_OK(
      CommitSnapshotFile(ctx, dir, "vertex" + suffix, &state));

  // Msg snapshot (the checkpoint of Msg means user programs need not be
  // failure-aware, paper Section 5.5).
  TupleRunWriter msg_writer(ctx->dfs->Resolve(dir + "/msg" + suffix) + ".tmp",
                            task.config->frame_size, 2, task.metrics,
                            task.overlap);
  TupleRunReader msg(state.msg_path, 2, task.metrics, task.overlap);
  PREGELIX_RETURN_NOT_OK(msg.Init());
  while (msg.Valid()) {
    const Slice fields[2] = {msg.field(0), msg.field(1)};
    PREGELIX_RETURN_NOT_OK(msg_writer.Append(fields));
    PREGELIX_RETURN_NOT_OK(msg.Next());
  }
  PREGELIX_RETURN_NOT_OK(msg_writer.Finish());
  if (task.profile != nullptr) {
    task.profile->AddIoWait(msg_writer.io_wait_ns() + msg.io_wait_ns());
  }
  PREGELIX_RETURN_NOT_OK(CommitSnapshotFile(ctx, dir, "msg" + suffix, &state));

  // Vid snapshot (left-outer plan): live set merged with resolve extras.
  if (ctx->MaintainsVid()) {
    TupleRunWriter vid_writer(
        ctx->dfs->Resolve(dir + "/vid" + suffix) + ".tmp",
        task.config->frame_size, 2, task.metrics, task.overlap);
    std::unique_ptr<IndexIterator> vid_it;
    if (state.vid_index != nullptr) {
      vid_it = state.vid_index->NewIterator();
      PREGELIX_RETURN_NOT_OK(vid_it->SeekToFirst());
    }
    TupleRunReader extra(state.vid_extra_path, 2, task.metrics,
                         task.overlap);
    PREGELIX_RETURN_NOT_OK(extra.Init());
    while ((vid_it != nullptr && vid_it->Valid()) || extra.Valid()) {
      Slice key;
      if (vid_it != nullptr && vid_it->Valid() &&
          (!extra.Valid() || vid_it->key().compare(extra.field(0)) <= 0)) {
        key = vid_it->key();
      } else {
        key = extra.field(0);
      }
      const std::string k = key.ToString();
      const Slice fields[2] = {Slice(k), Slice()};
      PREGELIX_RETURN_NOT_OK(vid_writer.Append(fields));
      if (vid_it != nullptr && vid_it->Valid() && vid_it->key() == Slice(k)) {
        PREGELIX_RETURN_NOT_OK(vid_it->Next());
      }
      while (extra.Valid() && extra.field(0) == Slice(k)) {
        PREGELIX_RETURN_NOT_OK(extra.Next());
      }
    }
    PREGELIX_RETURN_NOT_OK(vid_writer.Finish());
    if (task.profile != nullptr) {
      task.profile->AddIoWait(vid_writer.io_wait_ns() + extra.io_wait_ns());
    }
    PREGELIX_RETURN_NOT_OK(
        CommitSnapshotFile(ctx, dir, "vid" + suffix, &state));
  }
  return Status::OK();
}

Status RunRecoveryOp(JobRuntimeContext* ctx, TaskContext& task,
                     int64_t superstep) {
  const int p = task.partition;
  PartitionState& state = ctx->partitions[p];
  const std::string dir = CheckpointDir(*ctx, superstep);
  const std::string suffix = "-part-" + std::to_string(p);

  // Rebuild Vertex by bulk load from the (sorted) snapshot.
  PREGELIX_RETURN_NOT_OK(MakeVertexIndex(ctx, p, &state.vertex_index));
  std::unique_ptr<IndexBulkLoader> loader;
  if (auto* btree = dynamic_cast<BTree*>(state.vertex_index.get())) {
    loader = btree->NewBulkLoader();
  } else {
    loader = static_cast<LsmBTree*>(state.vertex_index.get())->NewBulkLoader();
  }
  int64_t vertices = 0, edges = 0;
  {
    TupleRunReader reader(ctx->dfs->Resolve(dir + "/vertex" + suffix), 2,
                          task.metrics, task.overlap);
    PREGELIX_RETURN_NOT_OK(reader.Init());
    while (reader.Valid()) {
      PREGELIX_RETURN_NOT_OK(loader->Add(reader.field(0), reader.field(1)));
      ++vertices;
      edges += VertexEdgeCount(reader.field(1));
      PREGELIX_RETURN_NOT_OK(reader.Next());
    }
    if (task.profile != nullptr) {
      task.profile->AddIoWait(reader.io_wait_ns());
    }
  }
  PREGELIX_RETURN_NOT_OK(loader->Finish());
  state.vertices = vertices;
  state.edges = edges;

  // Restore the local Msg run.
  const std::string msg_path =
      ctx->PartitionDir(p) + "/msg-recovered-" + std::to_string(superstep);
  {
    PREGELIX_CHECK(EnsureDir(ctx->PartitionDir(p)));
    TupleRunWriter writer(msg_path, task.config->frame_size, 2,
                          task.metrics, task.overlap);
    TupleRunReader reader(ctx->dfs->Resolve(dir + "/msg" + suffix), 2,
                          task.metrics, task.overlap);
    PREGELIX_RETURN_NOT_OK(reader.Init());
    while (reader.Valid()) {
      const Slice fields[2] = {reader.field(0), reader.field(1)};
      PREGELIX_RETURN_NOT_OK(writer.Append(fields));
      PREGELIX_RETURN_NOT_OK(reader.Next());
    }
    PREGELIX_RETURN_NOT_OK(writer.Finish());
    if (task.profile != nullptr) {
      task.profile->AddIoWait(writer.io_wait_ns() + reader.io_wait_ns());
    }
  }
  state.msg_path = msg_path;
  state.next_msg_path.clear();
  state.vid_extra_path.clear();
  state.next_vid_extra_path.clear();
  state.next_vid_index.reset();

  // Restore Vid (left-outer plan).
  if (ctx->MaintainsVid()) {
    PREGELIX_RETURN_NOT_OK(MakeVidIndex(
        ctx, p, "vid-recovered-" + std::to_string(superstep) + ".btree",
        &state.vid_index));
    std::unique_ptr<IndexBulkLoader> vid_loader =
        state.vid_index->NewBulkLoader();
    TupleRunReader reader(ctx->dfs->Resolve(dir + "/vid" + suffix), 2,
                          task.metrics, task.overlap);
    PREGELIX_RETURN_NOT_OK(reader.Init());
    while (reader.Valid()) {
      PREGELIX_RETURN_NOT_OK(vid_loader->Add(reader.field(0), Slice()));
      PREGELIX_RETURN_NOT_OK(reader.Next());
    }
    PREGELIX_RETURN_NOT_OK(vid_loader->Finish());
    if (task.profile != nullptr) {
      task.profile->AddIoWait(reader.io_wait_ns());
    }
  } else {
    state.vid_index.reset();
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// Plan builders

namespace {
SuperstepSpecTamper g_superstep_spec_tamper;
}  // namespace

void SetSuperstepSpecTamperForTesting(SuperstepSpecTamper fn) {
  g_superstep_spec_tamper = std::move(fn);
}

std::string CheckpointDir(const JobRuntimeContext& ctx, int64_t superstep) {
  return "jobs/" + ctx.job_id + "/ckpt/" + std::to_string(superstep);
}

JobSpec BuildLoadJob(JobRuntimeContext* ctx) {
  const int partitions = ctx->cluster->num_partitions();
  const size_t groupby_bytes = ctx->cluster->config().groupby_memory_bytes;
  JobSpec spec;
  spec.set_name(ctx->job_config->name + "-load");
  auto scan_op = std::make_shared<LambdaOperatorDescriptor>(
      "scan-input",
      [ctx](TaskContext& task) { return RunScanOp(ctx, task); });
  scan_op->DeclarePorts(0, 1);  // output 0: input-file order, no properties
  const int scan = spec.AddOperator(scan_op, partitions);
  auto load_op = std::make_shared<LambdaOperatorDescriptor>(
      "sort-bulkload",
      [ctx](TaskContext& task) { return RunLoadOp(ctx, task); });
  load_op
      ->DeclarePorts(1, 0)
      // The bulk loader sorts locally but each partition must already hold
      // all of its keys.
      ->DeclareInput(0, {Sortedness::kUnsorted, Partitioning::kHashByKey})
      ->DeclareMemoryBytes(groupby_bytes);
  const int load = spec.AddOperator(load_op, partitions);
  ConnectorSpec conn;
  conn.src_op = scan;
  conn.dst_op = load;
  conn.kind = ConnectorKind::kMToNPartition;
  conn.key_field = 0;
  conn.field_count = 2;
  spec.Connect(conn);
  return spec;
}

JobSpec BuildSuperstepJob(JobRuntimeContext* ctx) {
  const int partitions = ctx->cluster->num_partitions();
  JobSpec spec;
  spec.set_name(ctx->job_config->name + "-superstep-" +
                std::to_string(ctx->current_superstep));

  // Resolve the physical plan knobs for this superstep: static hints pass
  // through, kAdaptive runs the legacy frontier heuristic, and kAuto
  // consults the feedback-driven PlanOptimizer. Idempotent for the same
  // superstep, so direct callers may rebuild the job after tweaking stats.
  ResolvePlanDecision(ctx);
  const bool loj = ctx->current_join == JoinStrategy::kLeftOuter;
  const bool merged = ctx->current_connector == GroupByConnector::kMerged;
  const size_t groupby_bytes = ctx->cluster->config().groupby_memory_bytes;
  auto compute_op = std::make_shared<LambdaOperatorDescriptor>(
      loj ? "compute-left-outer-join" : "compute-full-outer-join",
      [ctx, loj](TaskContext& task) {
        return loj ? RunComputeLeftOuter(ctx, task)
                   : RunComputeFullOuter(ctx, task);
      });
  // Eager shuffle (DESIGN.md §19): partial groups leave the sender out of
  // global key order, so output 0 loses its sortedness property. The
  // unmerged combine input only requires kUnsorted, so the plan stays
  // verifier-legal; the merged connector never runs eager.
  const bool eager = EagerShuffleEnabled(ctx);
  compute_op
      ->DeclarePorts(0, 3)
      // Output 0: the send-side group-by emits combined messages in
      // destination-key order (what the merging connector's receiver
      // merges). Outputs 1 (GS contributions) and 2 (mutations) carry no
      // properties.
      ->DeclareOutput(0, {eager ? Sortedness::kUnsorted
                                : Sortedness::kSortedByKey,
                          Partitioning::kArbitrary})
      ->DeclareMemoryBytes(groupby_bytes);  // the "sendgb" grouper
  const int compute = spec.AddOperator(compute_op, partitions);
  auto combine_op = std::make_shared<LambdaOperatorDescriptor>(
      "combine-msgs",
      [ctx](TaskContext& task) { return RunCombineOp(ctx, task); });
  combine_op
      ->DeclarePorts(1, 0)
      // Under the merged connector the receive side runs the preclustered
      // grouper, which needs key-sorted arrival; either way the message
      // stream must be partitioned like the vertices.
      ->DeclareInput(0, {merged ? Sortedness::kSortedByKey
                                : Sortedness::kUnsorted,
                         Partitioning::kHashByKey})
      ->DeclareMemoryBytes(groupby_bytes);  // the "recvgb" grouper
  const int combine = spec.AddOperator(combine_op, partitions);
  auto global_op = std::make_shared<LambdaOperatorDescriptor>(
      "global-agg",
      [ctx](TaskContext& task) { return RunGlobalAggOp(ctx, task); });
  global_op->DeclarePorts(1, 0)->DeclareInput(
      0, {Sortedness::kUnsorted, Partitioning::kSingleton});
  const int global = spec.AddOperator(global_op, 1);
  auto resolve_op = std::make_shared<LambdaOperatorDescriptor>(
      "resolve",
      [ctx](TaskContext& task) { return RunResolveOp(ctx, task); });
  resolve_op
      ->DeclarePorts(1, 0)
      ->DeclareInput(0, {Sortedness::kUnsorted, Partitioning::kHashByKey})
      ->DeclareMemoryBytes(groupby_bytes);  // the mutation sorter
  const int resolve = spec.AddOperator(resolve_op, partitions);

  // D3/D7: messages, via the configured group-by connector.
  ConnectorSpec msgs;
  msgs.src_op = compute;
  msgs.src_output = 0;
  msgs.dst_op = combine;
  msgs.kind = merged ? ConnectorKind::kMToNPartitionMerge
                     : ConnectorKind::kMToNPartition;
  msgs.key_field = 0;
  msgs.field_count = 2;
  spec.Connect(msgs);

  // D4/D5: contributions to the single global-aggregation clone.
  ConnectorSpec contrib;
  contrib.src_op = compute;
  contrib.src_output = 1;
  contrib.dst_op = global;
  contrib.kind = ConnectorKind::kMToOne;
  contrib.field_count = 2;
  spec.Connect(contrib);

  // D6: mutations to resolve, partitioned like the vertices.
  ConnectorSpec muts;
  muts.src_op = compute;
  muts.src_output = 2;
  muts.dst_op = resolve;
  muts.kind = ConnectorKind::kMToNPartition;
  muts.key_field = 0;
  muts.field_count = 2;
  spec.Connect(muts);

  if (g_superstep_spec_tamper) g_superstep_spec_tamper(ctx, &spec);
  return spec;
}

JobSpec BuildDumpJob(JobRuntimeContext* ctx) {
  JobSpec spec;
  spec.set_name(ctx->job_config->name + "-dump");
  auto dump_op = std::make_shared<LambdaOperatorDescriptor>(
      "dump-result",
      [ctx](TaskContext& task) { return RunDumpOp(ctx, task); });
  dump_op->DeclarePorts(0, 0);  // reads the Vertex index, writes the DFS
  spec.AddOperator(dump_op, ctx->cluster->num_partitions());
  return spec;
}

JobSpec BuildCheckpointJob(JobRuntimeContext* ctx, int64_t superstep) {
  JobSpec spec;
  spec.set_name(ctx->job_config->name + "-checkpoint-" +
                std::to_string(superstep));
  auto ckpt_op = std::make_shared<LambdaOperatorDescriptor>(
      "checkpoint", [ctx, superstep](TaskContext& task) {
        return RunCheckpointOp(ctx, task, superstep);
      });
  ckpt_op->DeclarePorts(0, 0);  // snapshots partition state to the DFS
  spec.AddOperator(ckpt_op, ctx->cluster->num_partitions());
  return spec;
}

JobSpec BuildRecoveryJob(JobRuntimeContext* ctx, int64_t superstep) {
  JobSpec spec;
  spec.set_name(ctx->job_config->name + "-recovery-" +
                std::to_string(superstep));
  auto recover_op = std::make_shared<LambdaOperatorDescriptor>(
      "recover", [ctx, superstep](TaskContext& task) {
        return RunRecoveryOp(ctx, task, superstep);
      });
  recover_op->DeclarePorts(0, 0);  // rebuilds partition state from the DFS
  spec.AddOperator(recover_op, ctx->cluster->num_partitions());
  return spec;
}

void AttachPaperPlanLabels(PlanProfile* profile) {
  profile->AttachLabels([](const std::string& name) -> std::string {
    if (name == "compute-full-outer-join") {
      return "Msg \xE2\x8B\x88 Vertex full-outer scan-merge + compute UDF "
             "(Figs. 3, 8 left)";
    }
    if (name == "compute-left-outer-join") {
      return "Vid-merge + left-outer Vertex probe + compute UDF (Fig. 8 "
             "right)";
    }
    if (name == "combine-msgs") {
      return "message combine group-by, flows D3\xE2\x86\x92""D7 (Fig. 5)";
    }
    if (name == "global-agg") {
      return "global aggregation clone, flows D4/D5 (Fig. 4)";
    }
    if (name == "resolve") {
      return "vertex mutation resolve, flow D6 (Fig. 4)";
    }
    if (name == "scan-input") return "DFS adjacency scan + parse (load)";
    if (name == "sort-bulkload") {
      return "external sort + Vertex/Vid index bulk load";
    }
    if (name == "dump-result") return "Vertex scan \xE2\x86\x92 DFS dump";
    if (name == "checkpoint") return "Vertex/Msg/Vid snapshot (Sec. 5.5)";
    if (name == "recover") return "checkpoint reload (Sec. 5.5)";
    return "";
  });
}

}  // namespace pregelix
