#ifndef PREGELIX_PREGEL_PLAN_OPTIMIZER_H_
#define PREGELIX_PREGEL_PLAN_OPTIMIZER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "pregel/job_config.h"

// Feedback-driven per-superstep plan chooser (the cost-based optimizer the
// paper's Section 9 leaves as future work; DESIGN.md "Adaptive plan
// optimization").
//
// The chooser consumes the *previous* superstep's observations — live-vertex
// ratio, combined message count and bytes, spill count/bytes, group-by skew,
// cache-hit ratio, and whether the stall watchdog fired — and re-chooses
// among the paper's physical variants at every superstep boundary:
//
//   join       Vid-merge full-outer scan  vs  left-outer Vertex probe
//   group-by   sort-based                 vs  hash pre-aggregation
//   connector  unmerged (pipelined)       vs  merged (preclustered receive)
//   storage    B-tree vs LSM — admission time only (indexes are built once)
//
// Every knob carries hysteresis: a proactive switch needs the signal to hold
// for `confirm_supersteps` consecutive supersteps, and any switch opens a
// `cooldown_supersteps` window during which the knob cannot switch back.
// Reactive switches (watchdog stall, spill bytes past the budget-derived
// threshold) skip the confirmation streak but still respect the cooldown, so
// the chooser cannot oscillate even under an adversarial signal.

namespace pregelix {

struct JobRuntimeContext;
class MetricsRegistry;

/// The three per-superstep-switchable knobs, fully resolved (never an
/// adaptive/auto value).
struct PlanDecision {
  JoinStrategy join = JoinStrategy::kFullOuter;
  GroupByStrategy groupby = GroupByStrategy::kSort;
  GroupByConnector connector = GroupByConnector::kUnmerged;

  bool operator==(const PlanDecision& o) const {
    return join == o.join && groupby == o.groupby && connector == o.connector;
  }
  bool operator!=(const PlanDecision& o) const { return !(*this == o); }
};

/// What one completed superstep tells the chooser (assembled by the driver
/// from GS, SuperstepStats, the PlanProfile when profiling is on, and the
/// stall watchdog).
struct OptimizerFeedback {
  int64_t superstep = 0;  ///< the superstep these observations describe
  int64_t num_vertices = 0;
  int64_t num_edges = 0;
  int64_t live_vertices = 0;
  int64_t messages = 0;       ///< combined messages produced (count)
  int64_t message_bytes = 0;  ///< combined message payload volume
  uint64_t bytes_shuffled = 0;
  uint64_t spill_count = 0;
  uint64_t spill_bytes = 0;
  double cache_hit_ratio = 1.0;
  /// Combine-op worker skew (max/median wall) from the plan profile; 1.0
  /// when unknown (profiling off).
  double groupby_skew = 1.0;
  /// Combine-op input/output tuple counts from the plan profile; 0 when
  /// unknown. Their ratio is the combiner reduction factor.
  uint64_t combine_tuples_in = 0;
  uint64_t combine_tuples_out = 0;
  /// The stall watchdog flagged this superstep while it ran.
  bool stalled = false;
  /// The plan these observations were made under.
  PlanDecision plan;
};

/// Tuning thresholds. Defaults are what DESIGN.md documents; tests construct
/// edge cases explicitly.
struct PlanOptimizerOptions {
  /// Per-operator group-by memory budget; the reactive spill threshold is
  /// `spill_budget_factor` times this.
  uint64_t groupby_memory_bytes = 32ull << 20;
  /// Enter the left-outer probe join when (live + messages) / |V| drops
  /// below this...
  double sparse_frontier_ratio = 0.20;
  /// ...and return to the full-outer scan only once it rises above this
  /// (the gap between the two is the hysteresis band).
  double dense_frontier_ratio = 0.35;
  /// Message volume past `message_scan_ratio * approx_scan_bytes` keeps the
  /// sequential scan-merge: the superstep is message-bound either way, and
  /// the probe join only adds random I/O (the legacy heuristic's blind
  /// spot).
  double message_scan_ratio = 0.5;
  /// Reactive spill threshold = factor * groupby_memory_bytes.
  double spill_budget_factor = 1.0;
  /// Combine-op skew (max/median wall) past this prefers the merged
  /// connector (sender-side materialization absorbs the skewed receiver).
  double skew_threshold = 4.0;
  /// Hash pre-aggregation is the optimistic start; after a spill demotes
  /// the group-by to sort, re-promotion to hash requires the combiner
  /// reduction (tuples in / tuples out) to reach this.
  double hash_reduction_threshold = 2.0;
  /// Proactive switches need the signal for this many consecutive
  /// supersteps.
  int confirm_supersteps = 2;
  /// After any switch the knob is pinned for this many supersteps.
  int cooldown_supersteps = 2;
};

/// One driver-visible decision: what ran at `superstep`, whether it differed
/// from the previous superstep, and why.
struct PlanDecisionRecord {
  int64_t superstep = 0;
  PlanDecision plan;
  bool reactive = false;
  /// Comma-separated knob names that changed ("join,connector"); empty when
  /// the previous plan carried over.
  std::string switched;
  std::string reason;  ///< short cause tag ("frontier=0.04", "stall", ...)
};

class PlanOptimizer {
 public:
  explicit PlanOptimizer(PlanOptimizerOptions opts = {});

  /// Feeds the observations of a completed superstep. Called by the driver
  /// at each barrier, before deciding the next superstep.
  void Observe(const OptimizerFeedback& feedback);

  /// Chooses the plan for `superstep`. Idempotent per superstep: repeated
  /// calls with the same superstep return the cached decision without
  /// advancing hysteresis state.
  PlanDecision Decide(int64_t superstep);

  /// True when the most recent Decide switched reactively (stall / spill
  /// threshold) rather than via the confirmation streak.
  bool last_reactive() const { return last_reactive_; }
  /// Short cause tag of the most recent Decide.
  const std::string& last_reason() const { return last_reason_; }

  /// Total knob switches so far (a join+connector switch in one superstep
  /// counts 2).
  int64_t switch_count() const { return switch_count_; }

  const PlanOptimizerOptions& options() const { return opts_; }

 private:
  struct KnobState {
    int pending_streak = 0;       ///< consecutive supersteps wanting a change
    int64_t last_switch = -1000;  ///< superstep of the last switch
  };

  /// True when the knob may switch at `superstep` given its cooldown.
  bool CooledDown(const KnobState& k, int64_t superstep) const;
  /// Streak bookkeeping shared by all knobs: returns true when the switch
  /// should be taken now.
  bool Confirm(KnobState* k, int64_t superstep, bool wants_change,
               bool reactive);

  PlanOptimizerOptions opts_;
  bool has_feedback_ = false;
  OptimizerFeedback fb_;  ///< latest observations

  PlanDecision current_;
  KnobState join_state_, groupby_state_, connector_state_;
  /// Message volume at the moment the connector switched to merged; the
  /// backswitch needs the load to halve (the merged connector hides the
  /// spill signal that caused the switch).
  int64_t connector_switch_load_ = 0;

  int64_t decided_superstep_ = -1;
  PlanDecision decided_;
  bool last_reactive_ = false;
  std::string last_reason_ = "initial";
  int64_t switch_count_ = 0;
};

/// Test-only override: when set, every kAuto decision is offered to `fn`
/// (superstep, in/out decision); returning true forces the (possibly
/// adversarial) plan it wrote. Pass nullptr to clear. Not thread-safe
/// against in-flight jobs — install before Run, clear after.
using PlanDecisionOverride =
    std::function<bool(int64_t superstep, PlanDecision* decision)>;
void SetPlanDecisionOverrideForTesting(PlanDecisionOverride fn);

/// The legacy single-knob `JoinStrategy::kAdaptive` heuristic, message-bytes
/// aware: left-outer only when the frontier is sparse AND the combined
/// message volume does not rival the sequential scan the full-outer plan
/// would do anyway (heavy-fanout supersteps are message-bound; probing only
/// adds random I/O and Vid maintenance).
JoinStrategy LegacyAdaptiveJoin(int64_t superstep, int64_t live_vertices,
                                int64_t messages, int64_t message_bytes,
                                int64_t num_vertices, int64_t num_edges);

/// The scan-volume approximation shared by the legacy heuristic and the
/// optimizer's message-dominance guard: what a full-outer pass over the
/// Vertex relation roughly reads, from the graph shape alone.
int64_t ApproxVertexScanBytes(int64_t num_vertices, int64_t num_edges);

/// Admission-time storage resolution: static hints pass through; kAuto picks
/// LSM when the program declares graph mutations (out-of-place updates win
/// under churn), B-tree otherwise. Deterministic, so a recovering driver
/// process re-derives the same choice.
VertexStorage ResolveStorageAtAdmission(const JobRuntimeContext& ctx);

/// Resolves the three switchable knobs for ctx->current_superstep and writes
/// them into ctx->current_{join,groupby,connector}. Static hints pass
/// through; kAdaptive join uses the legacy heuristic; kAuto knobs ask
/// ctx->optimizer (falling back to the same defaults when no optimizer is
/// installed, e.g. plan-generator unit tests). Pure apart from the
/// optimizer's own memoized Decide.
PlanDecision ResolvePlanDecision(JobRuntimeContext* ctx);

/// Driver-path resolution: ResolvePlanDecision plus the observable effects —
/// the `pregel.plan.switch` fault point when the plan changed, a
/// `plan.switch` EventJournal event per switched knob, the
/// `pregelix.optimizer.*` metrics, and the JobStatusRegistry publish. Fills
/// `record` for JobResult::plan_decisions / `pregelix explain`.
///
/// Every plan switch passes the static verifier (dataflow/plan_verifier.h)
/// before publication — debug builds verify every superstep. A rejected
/// switch pins the previous superstep's plan (JobRuntimeContext::pinned_*),
/// journals `plan.verify.reject`, bumps `pregelix.verifier.rejects`, and the
/// superstep proceeds under the known-good plan.
Status ResolveAndPublishPlan(JobRuntimeContext* ctx, MetricsRegistry* registry,
                             PlanDecisionRecord* record);

// Canonical knob spellings (CLI flags, events, /jobs/<id>, explain).
const char* JoinStrategyName(JoinStrategy join);
const char* GroupByStrategyName(GroupByStrategy groupby);
const char* GroupByConnectorName(GroupByConnector connector);
const char* VertexStorageName(VertexStorage storage);
/// "fullouter/sort/unmerged"-style compact plan string.
std::string PlanDecisionString(const PlanDecision& d);

}  // namespace pregelix

#endif  // PREGELIX_PREGEL_PLAN_OPTIMIZER_H_
