#ifndef PREGELIX_PREGEL_JOB_CONFIG_H_
#define PREGELIX_PREGEL_JOB_CONFIG_H_

#include <cstdint>
#include <string>

namespace pregelix {

/// Physical plan hints (paper Section 5.3; Figure 9 shows them set on a
/// job). Together with vertex storage they span the sixteen tailored
/// executions of Section 5.8.
enum class JoinStrategy {
  /// Index full outer join: scan the whole Vertex index and merge with the
  /// sorted Msg stream. Best when most vertices are live (PageRank).
  kFullOuter,
  /// Index left outer join: merge Msg with the Vid (live vertex) index via
  /// choose(), probe Vertex per key. Best for sparse-message algorithms
  /// (single source shortest paths).
  kLeftOuter,
  /// EXTENSION (the paper's future work asks for a cost-based optimizer,
  /// Section 9): the plan generator re-chooses the join per superstep from
  /// the statistics collector — full outer while most vertices participate,
  /// left outer once the frontier (live vertices + messages) drops below
  /// 1/5 of the graph. Algorithms like CC, which are dense early and sparse
  /// late (Figure 14c), get both plans' best halves.
  kAdaptive,
  /// Feedback-driven: the PlanOptimizer re-chooses per superstep from the
  /// previous superstep's observed stats and profile, with hysteresis and
  /// reactive stall/spill switches (DESIGN.md "Adaptive plan optimization").
  kAuto,
};

enum class GroupByStrategy {
  kSort,      ///< sort-based group-by at sender and receiver
  kHashSort,  ///< hash pre-aggregation with sorted runs
  kAuto,      ///< per-superstep choice by the PlanOptimizer
};

enum class GroupByConnector {
  /// m-to-n partitioning connector (fully pipelined); the receiver re-groups.
  kUnmerged,
  /// m-to-n partitioning merging connector (sender-side materializing); the
  /// receiver applies a one-pass preclustered group-by.
  kMerged,
  /// Per-superstep choice by the PlanOptimizer.
  kAuto,
};

enum class VertexStorage {
  kBTree,     ///< in-place updates; best for stable-size vertex data
  kLsmBTree,  ///< out-of-place; best under heavy mutation / size churn
  /// Resolved once at job admission by the PlanOptimizer (indexes are built
  /// at load; storage cannot switch mid-job).
  kAuto,
};

/// One Pregelix job: a vertex program applied to a graph until it halts.
struct PregelixJobConfig {
  std::string name = "pregelix-job";

  /// DFS directory with `part-*` adjacency input.
  std::string input_dir;
  /// DFS directory for the result dump; empty = skip the dump phase.
  std::string output_dir;

  JoinStrategy join = JoinStrategy::kFullOuter;
  GroupByStrategy groupby = GroupByStrategy::kSort;
  GroupByConnector groupby_connector = GroupByConnector::kUnmerged;
  VertexStorage storage = VertexStorage::kBTree;

  /// Plan profiling (EXPLAIN ANALYZE): collect a per-operator PlanProfile
  /// for every superstep job, attach it to the SuperstepStats, and keep the
  /// cumulative job profile on the JobResult. Off by default; off costs one
  /// null-pointer test per instrumentation site.
  bool profile_plan = false;

  /// Stall watchdog: warn (log + metrics) when a superstep runs longer than
  /// `stall_factor` times the trailing-mean superstep wall time. <= 0
  /// disables the watchdog.
  double stall_factor = 4.0;

  /// Checkpoint every k supersteps (0 = no checkpoints). Paper Section 5.5.
  int checkpoint_interval = 0;
  /// Safety valve; 0 = run until the global halt condition.
  int max_supersteps = 200;

  /// Stable job identity on the DFS. Empty = derive a fresh unique id from
  /// `name` (the default for fire-and-forget jobs). Set it to make the
  /// job's checkpoints addressable across driver processes, which `resume`
  /// needs.
  std::string job_id;
  /// Resume a crashed job: instead of loading the input, recover from the
  /// newest valid checkpoint under jobs/<job_id>/ckpt (falling back to a
  /// fresh load if none survives validation). Requires `job_id`.
  bool resume = false;
};

}  // namespace pregelix

#endif  // PREGELIX_PREGEL_JOB_CONFIG_H_
