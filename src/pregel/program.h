#ifndef PREGELIX_PREGEL_PROGRAM_H_
#define PREGELIX_PREGEL_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "dataflow/ops/sort.h"

namespace pregelix {

/// A graph mutation emitted by compute (flow D6 of the logical plan).
struct MutationRecord {
  enum class Op : uint8_t { kAddVertex = 0, kRemoveVertex = 1 };
  Op op;
  int64_t vid;
  std::string vertex_bytes;  ///< serialized vertex record for kAddVertex
};

/// What the runtime hands one compute call (the joined Msg ⟗ Vertex row of
/// flow D1, post-filter).
struct ComputeInput {
  int64_t vid = 0;
  bool vertex_exists = false;
  Slice vertex_bytes;       ///< valid when vertex_exists
  bool has_messages = false;
  Slice message_payload;    ///< combined payload (combiner output) when
                            ///< has_messages; encoding per MsgCombiner
  int64_t superstep = 1;
  Slice global_aggregate;   ///< previous superstep's global aggregate value
  int64_t num_vertices = 0;
  int64_t num_edges = 0;
};

/// What one compute call produces (the multi-flow output of the compute UDF:
/// D2 vertex update, D3 messages, D4/D5 global state, D6 mutations).
struct ComputeOutput {
  bool vertex_dirty = false;
  std::string vertex_bytes;  ///< written back to Vertex when vertex_dirty
  bool voted_halt = false;   ///< halt state after this call
  std::vector<std::pair<int64_t, std::string>> messages;  ///< (dst, payload)
  bool has_aggregate = false;
  std::string aggregate_contribution;
  std::vector<MutationRecord> mutations;

  void Clear() {
    vertex_dirty = false;
    vertex_bytes.clear();
    voted_halt = false;
    messages.clear();
    has_aggregate = false;
    aggregate_contribution.clear();
    mutations.clear();
  }
};

/// Hooks for the global aggregate (flows D5/D9). `step` must be able to fold
/// both raw contributions and partial aggregates (two-stage aggregation,
/// paper Section 5.3.3), i.e., be associative and commutative.
struct GlobalAggHooks {
  std::string initial;  ///< identity element (also the superstep-1 value)
  std::function<void(const Slice& contribution, std::string* acc)> step;
  std::function<void(std::string* acc)> finish;  ///< optional, applied at the
                                                 ///< single global stage only
  bool valid() const { return static_cast<bool>(step); }
};

/// Untyped vertex program: the four UDFs of Table 2 plus input/output
/// formatting, all over serialized bytes. Applications use the typed facade
/// in pregel/typed.h, which adapts a Vertex<V,E,M>-style program to this
/// interface; the plan generator and operators only ever see this one.
class PregelProgram {
 public:
  virtual ~PregelProgram() = default;

  /// Builds the initial vertex record from one input adjacency line.
  virtual Status InitialVertex(int64_t vid,
                               const std::vector<int64_t>& dests,
                               std::string* vertex_bytes) = 0;

  /// The compute UDF.
  virtual Status Compute(const ComputeInput& input, ComputeOutput* output) = 0;

  /// The combine UDF as group-by hooks over message payloads. The default
  /// (no user combiner) gathers messages into a length-prefixed list; in
  /// that case message payloads emitted by Compute must already be
  /// length-prefixed single items (the typed facade does this).
  virtual GroupCombiner MsgCombiner() const = 0;

  /// The aggregate UDF; invalid hooks disable global aggregation.
  virtual GlobalAggHooks GlobalAggregator() const { return {}; }

  /// The resolve UDF (conflict resolution for graph mutations). Receives
  /// all mutations for one vid in emission order; returns the action to
  /// apply against the Vertex relation. The default applies deletions
  /// before insertions, last insertion wins (paper Section 2.1).
  enum class ResolveAction { kNone, kUpsert, kDelete };
  virtual ResolveAction Resolve(int64_t vid,
                                const std::vector<MutationRecord>& mutations,
                                std::string* vertex_bytes) const;

  /// Formats one vertex for result output.
  virtual Status FormatVertex(int64_t vid, const Slice& vertex_bytes,
                              std::string* line) = 0;

  /// Declares that Compute may emit graph mutations (flow D6). The
  /// admission-time storage chooser (VertexStorage::kAuto) picks the LSM
  /// B-tree for mutation-heavy programs; everything else keeps the in-place
  /// B-tree.
  virtual bool MutatesGraph() const { return false; }
};

/// The default "gather into a list" combiner: payloads are length-prefixed
/// item sequences; combining is concatenation (associative across spills).
GroupCombiner ListMsgCombiner();

}  // namespace pregelix

#endif  // PREGELIX_PREGEL_PROGRAM_H_
