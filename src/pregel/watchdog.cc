#include "pregel/watchdog.h"

#include <numeric>

#include "common/event_journal.h"
#include "common/logging.h"
#include "server/job_registry.h"

namespace pregelix {

namespace {
/// Trailing-mean window; small enough to track a phase change (e.g. the
/// adaptive join flipping to the sparse plan) within a few supersteps.
constexpr size_t kWindow = 8;
}  // namespace

StallWatchdog::StallWatchdog(double factor, MetricsRegistry* registry,
                             const std::string& job_name,
                             const std::string& job_id)
    : factor_(factor), job_name_(job_name), job_id_(job_id) {
  if (factor_ <= 0) return;  // disabled: no thread, Arm/Disarm are no-ops
  if (registry != nullptr) {
    const MetricLabels labels{{"job", job_name_}};
    stalls_ = registry->GetCounter("pregelix.pregel.stalls", labels);
    stalled_gauge_ =
        registry->GetGauge("pregelix.pregel.superstep_stalled", labels);
  }
  thread_ = std::thread([this]() { Loop(); });
}

StallWatchdog::~StallWatchdog() {
  if (!thread_.joinable()) return;
  {
    MutexLock lock(&mutex_);
    shutdown_ = true;
  }
  cv_.NotifyAll();
  thread_.join();
  // Terminal balance check: a stall journaled for a superstep that never
  // reached Disarm (the driver unwound on an error mid-superstep) would
  // otherwise leave /events replays with an unpaired "watchdog.stall".
  MutexLock lock(&mutex_);
  if (stalls_journaled_ > clears_journaled_ && !job_id_.empty()) {
    EventJournal::Global().Append(
        "watchdog.unresolved", job_id_, superstep_,
        {{"unresolved",
          std::to_string(stalls_journaled_ - clears_journaled_)}});
  }
}

uint64_t StallWatchdog::TrailingMeanNs() const {
  if (samples_.empty()) return 0;
  const uint64_t sum =
      std::accumulate(samples_.begin(), samples_.end(), uint64_t{0});
  return sum / samples_.size();
}

void StallWatchdog::Arm(int64_t superstep) {
  if (factor_ <= 0) return;
  MutexLock lock(&mutex_);
  superstep_ = superstep;
  flagged_ = false;
  if (samples_.size() < 3) {
    // Too few samples for a meaningful mean; watch from superstep 4 on.
    armed_ = false;
    return;
  }
  const uint64_t budget_ns =
      static_cast<uint64_t>(factor_ * static_cast<double>(TrailingMeanNs()));
  deadline_ =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(budget_ns);
  armed_ = true;
  cv_.NotifyAll();
}

void StallWatchdog::Disarm(uint64_t wall_ns) {
  if (factor_ <= 0) return;
  MutexLock lock(&mutex_);
  if (flagged_ && !job_id_.empty()) {
    // The flagged superstep finished after all: record the resolution so a
    // /events reader can pair every stall with its outcome.
    EventJournal::Global().Append(
        "watchdog.clear", job_id_, superstep_,
        {{"wall_ms", std::to_string(wall_ns / 1000000)}});
    ++clears_journaled_;
  }
  armed_ = false;
  samples_.push_back(wall_ns);
  if (samples_.size() > kWindow) {
    samples_.erase(samples_.begin());
  }
  cv_.NotifyAll();
}

int64_t StallWatchdog::stall_count() const {
  MutexLock lock(&mutex_);
  return stall_count_;
}

int64_t StallWatchdog::unresolved_count() const {
  MutexLock lock(&mutex_);
  return stalls_journaled_ - clears_journaled_;
}

void StallWatchdog::Loop() {
  MutexLock lock(&mutex_);
  while (!shutdown_) {
    if (!armed_ || flagged_) {
      cv_.Wait(&mutex_);
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now < deadline_) {
      cv_.WaitFor(&mutex_, deadline_ - now);
      continue;
    }
    // Deadline passed with the superstep still running: flag it now, while
    // it is stuck, not after the barrier.
    flagged_ = true;
    ++stall_count_;
    if (stalls_ != nullptr) stalls_->Increment();
    if (stalled_gauge_ != nullptr) stalled_gauge_->Set(superstep_);
    if (!job_id_.empty()) {
      // Journal (rank 64) and job registry (rank 62) both rank above this
      // lock (kWatchdog = 48), so publishing from inside the loop is safe.
      EventJournal::Global().Append(
          "watchdog.stall", job_id_, superstep_,
          {{"trailing_mean_ms", std::to_string(TrailingMeanNs() / 1000000)},
           {"factor", std::to_string(factor_)}});
      ++stalls_journaled_;
      server::JobStatusRegistry::Global().OnStall(job_id_, superstep_);
    }
    PLOG(Warn) << "stall watchdog [" << job_name_ << "]: superstep "
               << superstep_ << " exceeded " << factor_
               << "x the trailing-mean wall time ("
               << TrailingMeanNs() / 1000000 << " ms) and is still running";
  }
}

}  // namespace pregelix
