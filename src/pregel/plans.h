#ifndef PREGELIX_PREGEL_PLANS_H_
#define PREGELIX_PREGEL_PLANS_H_

#include <cstdint>
#include <functional>

#include "dataflow/job.h"
#include "pregel/state.h"

namespace pregelix {

class PlanProfile;

/// The Pregelix plan generator (paper Section 5.7): produces the physical
/// dataflow jobs for data loading, each Pregel superstep, result writing,
/// checkpointing, and recovery, honoring the job's physical hints (join
/// strategy, group-by strategy, group-by connector, vertex storage).

/// Load: scan DFS part files -> parse -> m-to-n partition by vid ->
/// external sort -> bulk load the Vertex index (and Vid for the left-outer
/// plan); sets per-partition vertex/edge counts.
JobSpec BuildLoadJob(JobRuntimeContext* ctx);

/// One superstep i (Figures 3-5, 8): the compute source joins Msg_i with
/// Vertex (full-outer scan or Vid-merge + left-outer probe), runs the
/// compute UDF with its mini-operators (filter, Vertex update, projections),
/// and feeds three flows: messages to the combine group-by (D3->D7), global
/// state contributions to the aggregation clone (D4/D5), and mutations to
/// resolve (D6).
JobSpec BuildSuperstepJob(JobRuntimeContext* ctx);

/// Dump: scan Vertex -> format -> DFS output part files.
JobSpec BuildDumpJob(JobRuntimeContext* ctx);

/// Checkpoint after superstep `superstep` completed: Vertex + Msg (+ Vid)
/// snapshots plus GS to the DFS (paper Section 5.5).
JobSpec BuildCheckpointJob(JobRuntimeContext* ctx, int64_t superstep);

/// Recovery: reload Vertex/Msg/Vid of every partition from the checkpoint
/// taken after `superstep`.
JobSpec BuildRecoveryJob(JobRuntimeContext* ctx, int64_t superstep);

/// DFS directory of one checkpoint.
std::string CheckpointDir(const JobRuntimeContext& ctx, int64_t superstep);

/// Test-only: when set, mutates every JobSpec BuildSuperstepJob returns —
/// simulates a buggy plan generator so the verifier's switch-rejection
/// fallback (plan_optimizer.cc) can be exercised end to end. Pass nullptr
/// to clear. Install before Run, clear after; not thread-safe against
/// in-flight jobs.
using SuperstepSpecTamper = std::function<void(JobRuntimeContext*, JobSpec*)>;
void SetSuperstepSpecTamperForTesting(SuperstepSpecTamper fn);

/// Annotates a collected PlanProfile with the paper's operator vocabulary
/// (Vid-merge, left-outer probe, combine group-by D3->D7, aggregation clone
/// D4/D5, mutation resolve D6 -- Figures 3-5 and 8) so EXPLAIN output reads
/// like the paper's plan diagrams.
void AttachPaperPlanLabels(PlanProfile* profile);

}  // namespace pregelix

#endif  // PREGELIX_PREGEL_PLANS_H_
