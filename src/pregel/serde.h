#ifndef PREGELIX_PREGEL_SERDE_H_
#define PREGELIX_PREGEL_SERDE_H_

#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "common/serde.h"
#include "common/slice.h"

namespace pregelix {

/// Value serialization for the typed Pregel API (the analog of Hadoop's
/// Writable types the paper's Java API uses: VLongWritable, DoubleWritable,
/// ...). Specialize Serde<T> for custom vertex/edge/message types.
template <typename T, typename Enable = void>
struct Serde;

/// All trivially copyable types (ints, doubles, PODs without pointers).
template <typename T>
struct Serde<T, std::enable_if_t<std::is_trivially_copyable_v<T>>> {
  static void Write(const T& value, std::string* out) {
    out->append(reinterpret_cast<const char*>(&value), sizeof(T));
  }
  static bool Read(Slice* in, T* value) {
    if (in->size() < sizeof(T)) return false;
    memcpy(value, in->data(), sizeof(T));
    in->remove_prefix(sizeof(T));
    return true;
  }
};

template <>
struct Serde<std::string> {
  static void Write(const std::string& value, std::string* out) {
    PutLengthPrefixed(out, Slice(value));
  }
  static bool Read(Slice* in, std::string* value) {
    Slice s;
    if (!GetLengthPrefixed(in, &s)) return false;
    value->assign(s.data(), s.size());
    return true;
  }
};

template <typename T>
struct Serde<std::vector<T>> {
  static void Write(const std::vector<T>& value, std::string* out) {
    PutFixed32(out, static_cast<uint32_t>(value.size()));
    for (const T& item : value) Serde<T>::Write(item, out);
  }
  static bool Read(Slice* in, std::vector<T>* value) {
    if (in->size() < 4) return false;
    const uint32_t n = DecodeFixed32(in->data());
    in->remove_prefix(4);
    value->clear();
    value->reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      T item;
      if (!Serde<T>::Read(in, &item)) return false;
      value->push_back(std::move(item));
    }
    return true;
  }
};

template <typename A, typename B>
struct Serde<std::pair<A, B>> {
  static void Write(const std::pair<A, B>& value, std::string* out) {
    Serde<A>::Write(value.first, out);
    Serde<B>::Write(value.second, out);
  }
  static bool Read(Slice* in, std::pair<A, B>* value) {
    return Serde<A>::Read(in, &value->first) &&
           Serde<B>::Read(in, &value->second);
  }
};

/// Marker type for algorithms whose messages or values carry no data
/// (e.g. reachability signals).
struct Empty {};

template <>
struct Serde<Empty> {
  static void Write(const Empty&, std::string*) {}
  static bool Read(Slice*, Empty*) { return true; }
};

/// One-call helpers.
template <typename T>
std::string SerializeValue(const T& value) {
  std::string out;
  Serde<T>::Write(value, &out);
  return out;
}

template <typename T>
bool DeserializeValue(const Slice& bytes, T* value) {
  Slice in = bytes;
  return Serde<T>::Read(&in, value);
}

}  // namespace pregelix

#endif  // PREGELIX_PREGEL_SERDE_H_
