#include "pregel/vertex_format.h"

#include "common/serde.h"

namespace pregelix {

Status VertexRecordView::Parse(const Slice& bytes) {
  edges.clear();
  Slice in = bytes;
  if (in.size() < 1 + 4) return Status::Corruption("vertex record too short");
  halt = in[0] != 0;
  in.remove_prefix(1);
  Slice v;
  if (!GetLengthPrefixed(&in, &v)) {
    return Status::Corruption("vertex value truncated");
  }
  value = v;
  if (in.size() < 4) return Status::Corruption("vertex edge count missing");
  const uint32_t count = DecodeFixed32(in.data());
  in.remove_prefix(4);
  edges.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (in.size() < 8) return Status::Corruption("vertex edge truncated");
    VertexEdgeView edge;
    edge.dst = static_cast<int64_t>(DecodeFixed64(in.data()));
    in.remove_prefix(8);
    Slice ev;
    if (!GetLengthPrefixed(&in, &ev)) {
      return Status::Corruption("vertex edge value truncated");
    }
    edge.value = ev;
    edges.push_back(edge);
  }
  return Status::OK();
}

void VertexRecordView::Encode(std::string* out) const {
  out->clear();
  out->push_back(halt ? 1 : 0);
  PutLengthPrefixed(out, value);
  PutFixed32(out, static_cast<uint32_t>(edges.size()));
  for (const VertexEdgeView& edge : edges) {
    PutFixed64(out, static_cast<uint64_t>(edge.dst));
    PutLengthPrefixed(out, edge.value);
  }
}

int64_t VertexEdgeCount(const Slice& record) {
  if (record.size() < 9) return 0;
  const uint32_t vlen = DecodeFixed32(record.data() + 1);
  const size_t off = 1 + 4 + static_cast<size_t>(vlen);
  if (record.size() < off + 4) return 0;
  return DecodeFixed32(record.data() + off);
}

void EncodeVertexRecord(
    bool halt, const Slice& value,
    const std::vector<std::pair<int64_t, std::string>>& edges,
    std::string* out) {
  out->clear();
  out->push_back(halt ? 1 : 0);
  PutLengthPrefixed(out, value);
  PutFixed32(out, static_cast<uint32_t>(edges.size()));
  for (const auto& [dst, ev] : edges) {
    PutFixed64(out, static_cast<uint64_t>(dst));
    PutLengthPrefixed(out, Slice(ev));
  }
}

}  // namespace pregelix
