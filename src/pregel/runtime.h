#ifndef PREGELIX_PREGEL_RUNTIME_H_
#define PREGELIX_PREGEL_RUNTIME_H_

#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "dataflow/cluster.h"
#include "dataflow/plan_profile.h"
#include "dfs/dfs.h"
#include "pregel/job_config.h"
#include "pregel/program.h"
#include "pregel/state.h"

namespace pregelix {

/// Per-superstep statistics (the statistics collector of paper Section 5.7
/// plus the cost-model reading used by the experiment harness).
struct SuperstepStats {
  int64_t superstep = 0;
  double sim_seconds = 0;   ///< cost-model time (max worker + barrier)
  double wall_seconds = 0;  ///< actual wall clock, sanity column
  int64_t live_vertices = 0;
  int64_t messages = 0;  ///< combined messages produced for the next step
  /// Join plan executed (interesting under kAdaptive/kAuto).
  bool used_left_outer_join = false;
  /// Group-by strategy and connector executed (interesting under kAuto).
  GroupByStrategy groupby_used = GroupByStrategy::kSort;
  GroupByConnector connector_used = GroupByConnector::kUnmerged;
  MetricsSnapshot cluster_delta;  ///< summed counters across workers

  /// Connector bytes moved this superstep (from the plan profile when
  /// profiling is on; the cross-worker net-bytes delta otherwise).
  uint64_t bytes_shuffled = 0;
  /// Buffer-cache hit ratio over this superstep's accesses (1.0 when the
  /// superstep touched the cache not at all).
  double cache_hit_ratio = 1.0;
  /// Group-by/sort spills this superstep (profiling on; 0 otherwise).
  uint64_t spill_count = 0;
  uint64_t spill_bytes = 0;
  /// Per-operator plan profile of this superstep's job (profiling on).
  std::shared_ptr<const PlanProfile> profile;
};

struct JobResult {
  int64_t supersteps = 0;
  double load_sim_seconds = 0;
  double dump_sim_seconds = 0;
  double supersteps_sim_seconds = 0;  ///< sum over supersteps
  double total_sim_seconds = 0;       ///< load + supersteps + dump
  double avg_iteration_sim_seconds = 0;
  double wall_seconds = 0;
  int recoveries = 0;
  GlobalState final_gs;
  std::vector<SuperstepStats> superstep_stats;
  /// One record per executed superstep: the plan the chooser resolved plus
  /// whether/why it switched (kAuto; static plans record themselves too).
  std::vector<PlanDecisionRecord> plan_decisions;
  /// Cumulative plan profile over all supersteps (profiling on): operators
  /// merged by name, so an adaptive job shows both compute variants.
  std::shared_ptr<const PlanProfile> plan_profile;
};

/// The Pregelix client-side driver: plan generator, superstep loop,
/// statistics collector, and failure manager (paper Section 5.7). One
/// runtime can execute many jobs against a shared SimulatedCluster; Run is
/// thread-safe across instances (used for the multi-tenant throughput
/// experiment) because each job keeps its own partition-scoped state.
class PregelixRuntime {
 public:
  PregelixRuntime(SimulatedCluster* cluster, DistributedFileSystem* dfs,
                  CostModelParams cost_params = {});

  /// Runs one job: load -> supersteps until global halt -> dump.
  Status Run(PregelProgram* program, const PregelixJobConfig& config,
             JobResult* result);

  /// Runs a chain of compatible jobs with job pipelining (paper
  /// Section 5.6): the vertex state of job k feeds job k+1 directly —
  /// no HDFS write/read, no re-load, no index rebuild; all vertices are
  /// reactivated between jobs. Only the last job dumps output.
  Status RunPipeline(
      const std::vector<std::pair<PregelProgram*, PregelixJobConfig>>& jobs,
      std::vector<JobResult>* results);

  /// Failure injection (tests & experiments): before executing superstep
  /// `superstep` of the next Run, worker `worker` loses its local state; the
  /// failure manager then recovers from the latest checkpoint (or re-loads
  /// from the input when none exists).
  void InjectFailure(int64_t superstep, int worker) {
    fail_at_superstep_ = superstep;
    fail_worker_ = worker;
  }

 private:
  Status RunInternal(PregelProgram* program, const PregelixJobConfig& config,
                     JobRuntimeContext* ctx, bool do_load, bool do_dump,
                     JobResult* result);

  /// Installs the superstep outputs (Msg/Vid swap), folds mutation counters
  /// into GS, writes GS to the DFS.
  Status AdvanceGlobalState(JobRuntimeContext* ctx);

  /// The failure manager: recover from the newest *valid* checkpoint (the
  /// ckpt directory is listed and each candidate's MANIFEST is verified —
  /// superstep id, file sizes, per-file checksums — before any state is
  /// loaded), or signal that a restart-from-load is needed.
  Status Recover(JobRuntimeContext* ctx, int64_t* resume_superstep,
                 bool* restart_from_load);

  /// Verifies the MANIFEST of the checkpoint at `superstep`: present,
  /// matching superstep id and partition count, every snapshot file present
  /// with the recorded size and checksum, GS intact. Returns Corruption
  /// (torn or damaged state) or NotFound (incomplete checkpoint: the crash
  /// happened before the manifest commit) — never trusts a dir just
  /// because it exists.
  Status ValidateCheckpoint(JobRuntimeContext* ctx, int64_t superstep);

  /// Commits a checkpoint: snapshot job, GS write, then the MANIFEST write
  /// as the atomic commit point. Transient I/O errors are retried with
  /// backoff.
  Status WriteCheckpoint(JobRuntimeContext* ctx, int64_t superstep);

  /// Releases all per-partition storage of a finished job. `keep_dfs` keeps
  /// the job's DFS directory (GS + checkpoints) so a crashed job can be
  /// resumed by a later Run with the same job_id.
  void Cleanup(JobRuntimeContext* ctx, bool keep_dfs = false);

  /// Between pipelined jobs: reactivate vertices, clear Msg, rebuild Vid.
  Status PrepareNextPipelinedJob(JobRuntimeContext* ctx);
  Status MakePipelineVidIndex(JobRuntimeContext* ctx, int p,
                              std::unique_ptr<BTree>* out);

  SimulatedCluster* cluster_;
  DistributedFileSystem* dfs_;
  CostModelParams cost_params_;

  int64_t fail_at_superstep_ = -1;
  int fail_worker_ = -1;
};

}  // namespace pregelix

#endif  // PREGELIX_PREGEL_RUNTIME_H_
