#ifndef PREGELIX_DFS_DFS_H_
#define PREGELIX_DFS_DFS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/slice.h"
#include "common/status.h"
#include "io/file.h"

namespace pregelix {

/// Directory-backed stand-in for HDFS (see DESIGN.md substitutions).
///
/// Pregelix uses the DFS for graph input/output part files, the primary copy
/// of the global state GS, and checkpoints (paper Sections 5.2, 5.5). All
/// paths are relative to the DFS root; writes are atomic (temp + rename) to
/// match the durability the experiments rely on.
class DistributedFileSystem {
 public:
  explicit DistributedFileSystem(std::string root);

  const std::string& root() const { return root_; }
  std::string Resolve(const std::string& rel_path) const;

  Status Write(const std::string& rel_path, const Slice& contents);
  Status Append(const std::string& rel_path, const Slice& contents);
  /// Streaming writer for bulk data (graph part files, checkpoints).
  Status OpenForWrite(const std::string& rel_path,
                      std::unique_ptr<WritableFile>* out);
  /// Size of one file.
  Status FileSize(const std::string& rel_path, uint64_t* size) const;
  /// Total bytes under a directory (recursive).
  uint64_t DirSize(const std::string& rel_dir) const;
  Status Read(const std::string& rel_path, std::string* out) const;
  bool Exists(const std::string& rel_path) const;
  Status Delete(const std::string& rel_path);
  Status DeleteRecursive(const std::string& rel_path);
  Status MakeDirs(const std::string& rel_path);
  /// Lists file names (not paths) directly under a directory, sorted.
  Status List(const std::string& rel_dir, std::vector<std::string>* out) const;

 private:
  std::string root_;
};

}  // namespace pregelix

#endif  // PREGELIX_DFS_DFS_H_
