#include "dfs/dfs.h"

#include <algorithm>
#include <filesystem>

#include "common/logging.h"
#include "common/temp_dir.h"
#include "io/file.h"

namespace pregelix {

namespace fs = std::filesystem;

DistributedFileSystem::DistributedFileSystem(std::string root)
    : root_(std::move(root)) {
  PREGELIX_CHECK(EnsureDir(root_)) << "cannot create DFS root " << root_;
}

std::string DistributedFileSystem::Resolve(const std::string& rel) const {
  return (fs::path(root_) / rel).string();
}

Status DistributedFileSystem::Write(const std::string& rel,
                                    const Slice& contents) {
  const std::string path = Resolve(rel);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  return WriteStringToFileAtomic(path, contents);
}

Status DistributedFileSystem::Append(const std::string& rel,
                                     const Slice& contents) {
  const std::string path = Resolve(rel);
  std::string existing;
  if (FileExists(path)) {
    PREGELIX_RETURN_NOT_OK(ReadFileToString(path, &existing));
  } else {
    std::error_code ec;
    fs::create_directories(fs::path(path).parent_path(), ec);
  }
  existing.append(contents.data(), contents.size());
  return WriteStringToFileAtomic(path, existing);
}

Status DistributedFileSystem::OpenForWrite(
    const std::string& rel, std::unique_ptr<WritableFile>* out) {
  const std::string path = Resolve(rel);
  std::error_code ec;
  fs::create_directories(fs::path(path).parent_path(), ec);
  return WritableFile::Open(path, nullptr, out);
}

Status DistributedFileSystem::FileSize(const std::string& rel,
                                       uint64_t* size) const {
  return GetFileSize(Resolve(rel), size);
}

uint64_t DistributedFileSystem::DirSize(const std::string& rel) const {
  uint64_t total = 0;
  std::error_code ec;
  fs::recursive_directory_iterator it(Resolve(rel), ec);
  if (ec) return 0;
  for (const auto& entry : it) {
    if (entry.is_regular_file(ec)) {
      total += entry.file_size(ec);
    }
  }
  return total;
}

Status DistributedFileSystem::Read(const std::string& rel,
                                   std::string* out) const {
  return ReadFileToString(Resolve(rel), out);
}

bool DistributedFileSystem::Exists(const std::string& rel) const {
  return FileExists(Resolve(rel));
}

Status DistributedFileSystem::Delete(const std::string& rel) {
  DeleteFileIfExists(Resolve(rel));
  return Status::OK();
}

Status DistributedFileSystem::DeleteRecursive(const std::string& rel) {
  RemoveAll(Resolve(rel));
  return Status::OK();
}

Status DistributedFileSystem::MakeDirs(const std::string& rel) {
  if (!EnsureDir(Resolve(rel))) {
    return Status::IoError("mkdirs " + rel);
  }
  return Status::OK();
}

Status DistributedFileSystem::List(const std::string& rel,
                                   std::vector<std::string>* out) const {
  out->clear();
  std::error_code ec;
  fs::directory_iterator it(Resolve(rel), ec);
  if (ec) return Status::NotFound("list " + rel);
  for (const auto& entry : it) {
    out->push_back(entry.path().filename().string());
  }
  std::sort(out->begin(), out->end());
  return Status::OK();
}

}  // namespace pregelix
