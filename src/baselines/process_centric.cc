#include "baselines/process_centric.h"

#include <algorithm>

#include "baselines/memory_meter.h"
#include "common/hash.h"
#include "common/logging.h"
#include "graph/text_io.h"
#include "pregel/vertex_format.h"

namespace pregelix {

namespace {

/// Per-entry overhead of a message-store slot (hash bucket + object refs).
constexpr uint64_t kMsgEntryOverhead = 16;

/// Logical bytes of the edge portion of a vertex record (for replication
/// accounting).
uint64_t EdgePortion(const Slice& record) {
  VertexRecordView view;
  if (!view.Parse(record).ok()) return 0;
  const uint64_t non_edge = 1 + 4 + view.value.size() + 4;
  return record.size() > non_edge ? record.size() - non_edge : 0;
}

}  // namespace

struct ProcessCentricEngine::Worker {
  explicit Worker(size_t budget, double overhead)
      : meter(budget, overhead) {}

  std::unordered_map<int64_t, std::string> vertices;
  uint64_t vertex_bytes = 0;  ///< logical resident vertex store size
  uint64_t edge_bytes = 0;    ///< edge share, for mirror replication
  std::unordered_map<int64_t, std::string> inbox;       ///< superstep input
  uint64_t inbox_bytes = 0;
  std::unordered_map<int64_t, std::string> next_inbox;  ///< being produced
  uint64_t next_inbox_bytes = 0;
  MemoryMeter meter;
  WorkerMetrics metrics;
};

ProcessCentricEngine::ProcessCentricEngine(Options options, int num_workers,
                                           size_t worker_ram_bytes,
                                           CostModelParams cost_params)
    : options_(std::move(options)),
      num_workers_(num_workers),
      worker_ram_bytes_(worker_ram_bytes),
      cost_params_(cost_params) {}

Status ProcessCentricEngine::Run(
    const DistributedFileSystem& dfs, const std::string& input_dir,
    PregelProgram* program, int max_supersteps, Result* result,
    std::unordered_map<int64_t, std::string>* values_out) {
  *result = Result();
  std::vector<std::unique_ptr<Worker>> workers;
  workers.reserve(num_workers_);
  for (int w = 0; w < num_workers_; ++w) {
    workers.push_back(std::make_unique<Worker>(worker_ram_bytes_,
                                               options_.overhead_factor));
  }
  auto worker_of = [&](int64_t vid) {
    return static_cast<int>(HashVid(vid) %
                            static_cast<uint64_t>(num_workers_));
  };
  auto snapshot_all = [&]() {
    std::vector<MetricsSnapshot> snaps;
    snaps.reserve(workers.size());
    for (auto& w : workers) snaps.push_back(w->metrics.Snapshot());
    return snaps;
  };
  auto delta = [](const std::vector<MetricsSnapshot>& a,
                  const std::vector<MetricsSnapshot>& b) {
    std::vector<MetricsSnapshot> d(a.size());
    for (size_t i = 0; i < a.size(); ++i) d[i] = b[i] - a[i];
    return d;
  };
  auto fail = [&](const std::string& stage, const Status& s) {
    result->succeeded = false;
    result->failure = options_.name + " failed during " + stage + ": " +
                      s.ToString();
    for (auto& w : workers) {
      result->peak_worker_bytes =
          std::max(result->peak_worker_bytes, w->meter.peak_bytes());
    }
    return Status::OK();  // a failed baseline run is a data point
  };

  // --- Load -----------------------------------------------------------------
  {
    const std::vector<MetricsSnapshot> before = snapshot_all();
    std::string record;
    Status load_status = ScanGraphDir(
        dfs, input_dir,
        [&](int64_t vid, const std::vector<int64_t>& dests) -> Status {
          PREGELIX_RETURN_NOT_OK(program->InitialVertex(vid, dests, &record));
          Worker& w = *workers[worker_of(vid)];
          w.metrics.AddDiskRead(10 + 8 * dests.size());  // text input
          w.metrics.AddCpuOps(1);
          // Loader working set: resident copy x load_skew (triplet
          // construction, partition skew) + extra immutable copies.
          const double load_factor =
              options_.load_skew + options_.extra_copies;
          PREGELIX_RETURN_NOT_OK(w.meter.Charge(
              static_cast<uint64_t>(record.size() * load_factor), "load"));
          if (options_.edge_replication > 1.0) {
            const uint64_t edge_part = EdgePortion(Slice(record));
            PREGELIX_RETURN_NOT_OK(w.meter.Charge(
                static_cast<uint64_t>(edge_part *
                                      (options_.edge_replication - 1.0)),
                "mirror replication"));
            w.edge_bytes += edge_part;
          }
          w.vertex_bytes += record.size();
          w.vertices.emplace(vid, record);
          return Status::OK();
        });
    if (!load_status.ok()) {
      if (load_status.IsOutOfMemory()) return fail("load", load_status);
      return load_status;
    }
    // Transient loader overhead is released after loading; the steady-state
    // store (plus mirrors) stays.
    for (auto& w : workers) {
      const double transient = options_.load_skew + options_.extra_copies - 1.0;
      if (transient > 0) {
        w->meter.Release(
            static_cast<uint64_t>(w->vertex_bytes * transient));
      }
      if (options_.vertices_on_disk || options_.spill_vertices) {
        // Vertex data itself lives on disk; only the processing buffer /
        // metadata fraction stays resident.
        const double resident = options_.vertices_on_disk
                                    ? options_.disk_resident_fraction
                                    : options_.resident_metadata_fraction;
        w->meter.Release(static_cast<uint64_t>(w->vertex_bytes *
                                               (1.0 - resident)));
        w->metrics.AddDiskWrite(w->vertex_bytes);
      }
    }
    result->load_sim_seconds =
        SimulatedStepSeconds(delta(before, snapshot_all()), cost_params_);
  }

  // --- Global state ---------------------------------------------------------
  GlobalAggHooks agg_hooks = program->GlobalAggregator();
  std::string global_aggregate = agg_hooks.initial;
  int64_t num_vertices = 0;
  int64_t num_edges = 0;
  for (auto& w : workers) {
    num_vertices += static_cast<int64_t>(w->vertices.size());
    for (auto& [vid, record] : w->vertices) {
      num_edges += VertexEdgeCount(Slice(record));
    }
  }
  const GroupCombiner combiner = program->MsgCombiner();

  // --- Superstep loop ---------------------------------------------------------
  ComputeInput input;
  ComputeOutput output;
  for (int64_t superstep = 1;
       max_supersteps == 0 || superstep <= max_supersteps; ++superstep) {
    const std::vector<MetricsSnapshot> before = snapshot_all();
    bool halt_and = true;
    uint64_t messages_sent = 0;
    std::string next_aggregate = agg_hooks.initial;

    // Delivers one message into its destination's next inbox with eager
    // combining; returns OutOfMemory when the store bursts the budget.
    auto deliver = [&](int wi, Worker& w, int64_t dst,
                       const std::string& payload) -> Status {
      ++messages_sent;
      Worker& dest = *workers[worker_of(dst)];
      if (worker_of(dst) != wi || !options_.sender_combining) {
        w.metrics.AddNet(payload.size() + 8);
      }
      auto it = dest.next_inbox.find(dst);
      uint64_t delta_bytes = 0;
      if (it == dest.next_inbox.end()) {
        std::string acc;
        combiner.init(Slice(payload), &acc);
        delta_bytes = acc.size() + kMsgEntryOverhead;
        dest.next_inbox.emplace(dst, std::move(acc));
      } else {
        const size_t old_size = it->second.size();
        combiner.step(Slice(payload), &it->second);
        delta_bytes =
            it->second.size() > old_size ? it->second.size() - old_size : 0;
      }
      dest.next_inbox_bytes += delta_bytes;
      dest.metrics.AddCpuOps(1);
      return dest.meter.Charge(
          static_cast<uint64_t>(delta_bytes * options_.message_overhead),
          "message store");
    };

    for (int wi = 0; wi < num_workers_; ++wi) {
      Worker& w = *workers[wi];
      // Managed-runtime pressure: the fuller the heap, the more the
      // collector steals from the mutator. This is what makes the
      // process-centric systems "perform super-linearly worse when the
      // volume of data assigned to a slave machine increases" (paper
      // Section 7.3) and gives them steeper size-scaling curves than
      // Pregelix in Figures 10-11.
      const double heap_fill =
          static_cast<double>(w.meter.used_bytes()) /
          static_cast<double>(w.meter.budget_bytes());
      const double pressure = 1.0 + 2.0 * heap_fill * heap_fill;
      const double tuple_cost = options_.cpu_ops_per_tuple * pressure;
      // GraphX: each superstep materializes new immutable vertex/edge RDDs
      // before the old ones are released.
      if (options_.extra_copies > 0) {
        Status s = w.meter.Charge(
            static_cast<uint64_t>(w.vertex_bytes * options_.extra_copies),
            "immutable dataset copy");
        if (!s.ok()) return fail("superstep (rdd copy)", s);
      }
      // Hama / Giraph-ooc: the whole vertex store streams through disk
      // every superstep.
      if (options_.vertices_on_disk || options_.spill_vertices) {
        w.metrics.AddDiskRead(w.vertex_bytes);
        w.metrics.AddDiskWrite(w.vertex_bytes);
      }

      // The process-centric scan: every vertex in the partition is visited;
      // halted vertices without messages are skipped cheaply but still cost
      // the iteration (no live-vertex index — paper Section 2.3).
      for (auto& [vid, record] : w.vertices) {
        auto inbox_it = w.inbox.find(vid);
        const bool has_msg = inbox_it != w.inbox.end();
        if (VertexHalt(Slice(record)) && !has_msg) {
          // Even skipped vertices cost the object-graph iteration.
          w.metrics.AddCpuOps(static_cast<uint64_t>(tuple_cost));
          continue;
        }
        input.vid = vid;
        input.vertex_exists = true;
        input.vertex_bytes = Slice(record);
        input.has_messages = has_msg;
        input.message_payload = has_msg ? Slice(inbox_it->second) : Slice();
        input.superstep = superstep;
        input.global_aggregate = Slice(global_aggregate);
        input.num_vertices = num_vertices;
        input.num_edges = num_edges;
        output.Clear();
        PREGELIX_RETURN_NOT_OK(program->Compute(input, &output));
        if (!output.mutations.empty()) {
          return Status::NotSupported(
              options_.name + ": graph mutations are not supported by the "
                              "baseline engines");
        }
        w.metrics.AddCpuOps(
            static_cast<uint64_t>(tuple_cost * (2 + output.messages.size())));

        // Vertex update in place.
        std::string new_record;
        if (output.vertex_dirty) {
          new_record = output.vertex_bytes;
        } else if (VertexHalt(Slice(record)) != output.voted_halt) {
          new_record = record;
          SetVertexHalt(&new_record, output.voted_halt);
        }
        if (!new_record.empty()) {
          if (new_record.size() > record.size()) {
            Status s = w.meter.Charge(new_record.size() - record.size(),
                                      "vertex growth");
            if (!s.ok()) return fail("superstep (vertex growth)", s);
          } else {
            w.meter.Release(record.size() - new_record.size());
          }
          w.vertex_bytes += new_record.size();
          w.vertex_bytes -= record.size();
          record = std::move(new_record);
        }

        halt_and = halt_and && output.voted_halt && output.messages.empty();
        if (agg_hooks.valid() && output.has_aggregate) {
          agg_hooks.step(Slice(output.aggregate_contribution),
                         &next_aggregate);
        }

        // Deliver messages into the destination workers' next inboxes.
        for (const auto& [dst, payload] : output.messages) {
          Status s = deliver(wi, w, dst, payload);
          if (!s.ok()) return fail("superstep (message store)", s);
        }
        // Consumed messages are freed as compute proceeds (the message
        // store drains while the next one fills).
        if (has_msg) {
          const uint64_t entry = inbox_it->second.size() + kMsgEntryOverhead;
          w.meter.Release(static_cast<uint64_t>(
              entry * options_.message_overhead));
          w.inbox_bytes = entry > w.inbox_bytes ? 0 : w.inbox_bytes - entry;
        }
      }
      // Messages to vertices that do not exist create them (receiver side).
      for (auto& [dst, payload] : w.inbox) {
        if (w.vertices.count(dst) > 0) continue;
        input.vid = dst;
        input.vertex_exists = false;
        input.vertex_bytes = Slice();
        input.has_messages = true;
        input.message_payload = Slice(payload);
        input.superstep = superstep;
        input.global_aggregate = Slice(global_aggregate);
        input.num_vertices = num_vertices;
        input.num_edges = num_edges;
        output.Clear();
        PREGELIX_RETURN_NOT_OK(program->Compute(input, &output));
        if (output.vertex_dirty) {
          Status s = w.meter.Charge(output.vertex_bytes.size(),
                                    "vertex creation");
          if (!s.ok()) return fail("superstep (vertex creation)", s);
          w.vertex_bytes += output.vertex_bytes.size();
          w.vertices.emplace(dst, output.vertex_bytes);
          ++num_vertices;
        }
        halt_and = halt_and && output.voted_halt && output.messages.empty();
        for (const auto& [mdst, payload] : output.messages) {
          Status s = deliver(wi, w, mdst, payload);
          if (!s.ok()) return fail("superstep (message store)", s);
        }
      }
      if (options_.extra_copies > 0) {
        w.meter.Release(
            static_cast<uint64_t>(w.vertex_bytes * options_.extra_copies));
      }
    }

    // Barrier: consume inboxes, install next inboxes.
    for (auto& w : workers) {
      w->meter.Release(static_cast<uint64_t>(w->inbox_bytes *
                                             options_.message_overhead));
      w->inbox = std::move(w->next_inbox);
      w->inbox_bytes = w->next_inbox_bytes;
      w->next_inbox.clear();
      w->next_inbox_bytes = 0;
    }
    if (agg_hooks.valid()) {
      std::string finished = next_aggregate;
      if (agg_hooks.finish) agg_hooks.finish(&finished);
      global_aggregate = finished;
    }

    result->supersteps = superstep;
    result->supersteps_sim_seconds +=
        SimulatedStepSeconds(delta(before, snapshot_all()), cost_params_);

    if (halt_and && messages_sent == 0) break;
  }

  result->succeeded = true;
  result->final_aggregate = global_aggregate;
  if (values_out != nullptr) {
    values_out->clear();
    std::string line;
    for (auto& w : workers) {
      for (auto& [vid, record] : w->vertices) {
        PREGELIX_RETURN_NOT_OK(
            program->FormatVertex(vid, Slice(record), &line));
        // FormatVertex prefixes "<vid> "; keep just the value text.
        const size_t space = line.find(' ');
        (*values_out)[vid] =
            space == std::string::npos ? line : line.substr(space + 1);
      }
    }
  }
  result->avg_iteration_sim_seconds =
      result->supersteps == 0
          ? 0
          : result->supersteps_sim_seconds /
                static_cast<double>(result->supersteps);
  result->total_sim_seconds =
      result->load_sim_seconds + result->supersteps_sim_seconds;
  for (auto& w : workers) {
    result->peak_worker_bytes =
        std::max(result->peak_worker_bytes, w->meter.peak_bytes());
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// System configurations (constants documented in DESIGN.md Section 5)

ProcessCentricEngine::Options GiraphMemOptions() {
  ProcessCentricEngine::Options o;
  o.name = "Giraph-mem";
  o.overhead_factor = 2.5;
  o.cpu_ops_per_tuple = 3.0;  // JVM object iteration per vertex/message
  return o;
}

ProcessCentricEngine::Options GiraphOocOptions() {
  ProcessCentricEngine::Options o;
  o.name = "Giraph-ooc";
  o.overhead_factor = 2.5;
  o.spill_vertices = true;
  o.resident_metadata_fraction = 0.35;
  o.cpu_ops_per_tuple = 3.4;  // JVM iteration + spill bookkeeping
  return o;
}

ProcessCentricEngine::Options HamaOptions() {
  ProcessCentricEngine::Options o;
  o.name = "Hama";
  o.overhead_factor = 5.0;  // notoriously heavy BSP framework objects
  o.vertices_on_disk = true;
  o.disk_resident_fraction = 0.75;  // "limited" ooc: most data stays hot
  o.message_overhead = 3.0;  // memory-resident message objects
  o.cpu_ops_per_tuple = 4.5;
  return o;
}

ProcessCentricEngine::Options GraphLabOptions() {
  ProcessCentricEngine::Options o;
  o.name = "GraphLab";
  o.overhead_factor = 2.0;
  o.edge_replication = 2.8;   // vertex mirrors across machines
  o.cpu_ops_per_tuple = 0.25;  // lean C++ engine: fastest when data fits
  return o;
}

ProcessCentricEngine::Options GraphXOptions() {
  ProcessCentricEngine::Options o;
  o.name = "GraphX";
  o.overhead_factor = 2.0;
  o.extra_copies = 1.0;  // immutable RDDs: old + new generation coexist
  o.load_skew = 5.5;     // triplet construction + partition skew at load
  o.sender_combining = false;
  o.cpu_ops_per_tuple = 3.2;
  return o;
}

}  // namespace pregelix
