#ifndef PREGELIX_BASELINES_MEMORY_METER_H_
#define PREGELIX_BASELINES_MEMORY_METER_H_

#include <algorithm>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace pregelix {

/// Byte-accounted memory budget for one simulated baseline worker.
///
/// The process-centric systems of the paper hold their working set in
/// language-runtime object graphs; `overhead_factor` stands in for that
/// runtime bloat (object headers, references, boxing — cf. the bloat-aware
/// design paper [14] the authors wrote about exactly this). When charged
/// bytes exceed the budget the meter returns OutOfMemory, which is how the
/// baselines reproduce the failure thresholds of Figures 10-11.
class MemoryMeter {
 public:
  MemoryMeter(size_t budget_bytes, double overhead_factor)
      : budget_(budget_bytes), factor_(overhead_factor) {}

  /// Charges `logical_bytes` of application data (the meter applies the
  /// overhead factor). Fails when the budget would be exceeded.
  Status Charge(uint64_t logical_bytes, const char* what) {
    const uint64_t physical =
        static_cast<uint64_t>(static_cast<double>(logical_bytes) * factor_);
    if (used_ + physical > budget_) {
      return Status::OutOfMemory(
          std::string(what) + ": needs " + std::to_string(used_ + physical) +
          " bytes, budget " + std::to_string(budget_));
    }
    used_ += physical;
    peak_ = std::max(peak_, used_);
    return Status::OK();
  }

  void Release(uint64_t logical_bytes) {
    const uint64_t physical =
        static_cast<uint64_t>(static_cast<double>(logical_bytes) * factor_);
    used_ = physical > used_ ? 0 : used_ - physical;
  }

  void ReleaseAll() { used_ = 0; }

  uint64_t used_bytes() const { return used_; }
  uint64_t peak_bytes() const { return peak_; }
  uint64_t budget_bytes() const { return budget_; }

 private:
  uint64_t budget_;
  double factor_;
  uint64_t used_ = 0;
  uint64_t peak_ = 0;
};

}  // namespace pregelix

#endif  // PREGELIX_BASELINES_MEMORY_METER_H_
