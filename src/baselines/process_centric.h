#ifndef PREGELIX_BASELINES_PROCESS_CENTRIC_H_
#define PREGELIX_BASELINES_PROCESS_CENTRIC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "dfs/dfs.h"
#include "pregel/program.h"

namespace pregelix {

/// Architectural analog of the process-centric Pregel systems the paper
/// compares against (Giraph, Hama, GraphLab, GraphX). One engine core
/// implements the worker/master message-passing loop of Figure 1; the
/// per-system Options encode how each system holds its working set, which
/// is what determines where it falls over (see DESIGN.md Section 5 and the
/// constants below).
///
/// All engines run the same byte-level PregelProgram as Pregelix, so the
/// comparison isolates the runtime architecture — mirroring the paper's use
/// of each system's built-in PageRank/SSSP/CC.
class ProcessCentricEngine {
 public:
  struct Options {
    std::string name;

    /// Runtime bloat multiplier on resident application bytes.
    double overhead_factor = 3.5;

    /// Extra multiplier on resident *message* bytes (message stores are the
    /// heaviest objects in these systems).
    double message_overhead = 1.0;

    /// Vertices live in immutable sorted files on disk, re-read and
    /// re-written each superstep (Hama); `disk_resident_fraction` of the
    /// vertex data stays resident anyway (processing buffers).
    bool vertices_on_disk = false;
    double disk_resident_fraction = 0.05;

    /// Crude out-of-core vertex support (Giraph-ooc): vertex data spills to
    /// disk every superstep, but `resident_metadata_fraction` of it (partition
    /// metadata + message-store infrastructure) stays resident anyway —
    /// "it does not yet work as expected" (paper Section 7.2).
    bool spill_vertices = false;
    double resident_metadata_fraction = 0.35;

    /// Edge replication factor (GraphLab mirrors): multiplies resident edge
    /// bytes beyond the overhead factor.
    double edge_replication = 1.0;

    /// Immutable dataset copies per superstep (GraphX RDDs): each superstep
    /// transiently holds this many extra copies of the vertex/edge store.
    double extra_copies = 0.0;

    /// Relative CPU cost per compute/message operation (1.0 = the paper's
    /// Giraph-like cost; GraphLab's lean engine is lower, which is why it is
    /// the fastest system on tiny datasets).
    double cpu_ops_per_tuple = 1.0;

    /// Loader skew multiplier: effective per-worker load-time footprint is
    /// multiplied by this (GraphX could not even load BTC-Tiny; partition
    /// skew and triplet construction blow up its loader).
    double load_skew = 1.0;

    /// Map-side (sender) combining supported? GraphX's Pregel-on-join did
    /// not pre-combine, so its full message volume crosses the network.
    bool sender_combining = true;
  };

  struct Result {
    bool succeeded = false;
    std::string failure;        ///< stage + reason when !succeeded
    int64_t supersteps = 0;
    double load_sim_seconds = 0;
    double supersteps_sim_seconds = 0;
    double avg_iteration_sim_seconds = 0;
    double total_sim_seconds = 0;
    uint64_t peak_worker_bytes = 0;
    std::string final_aggregate;
  };

  ProcessCentricEngine(Options options, int num_workers,
                       size_t worker_ram_bytes,
                       CostModelParams cost_params = {});

  const std::string& name() const { return options_.name; }

  /// Runs `program` over the graph in `input_dir`. Out-of-memory produces
  /// succeeded=false with the failing stage recorded (the run is not an
  /// error at the harness level — failures are data points in the figures).
  /// When `values_out` is non-null and the run succeeds, it receives every
  /// vertex's formatted final value (correctness checks in tests).
  Status Run(const DistributedFileSystem& dfs, const std::string& input_dir,
             PregelProgram* program, int max_supersteps, Result* result,
             std::unordered_map<int64_t, std::string>* values_out = nullptr);

 private:
  struct Worker;

  Options options_;
  int num_workers_;
  size_t worker_ram_bytes_;
  CostModelParams cost_params_;
};

/// Factory configurations for the paper's comparison systems. The constants
/// are the documented knobs of DESIGN.md Section 5; they put the failure
/// thresholds in the paper's order (GraphX < GraphLab ~ Hama < Giraph <
/// Pregelix=never) without per-experiment tuning.
ProcessCentricEngine::Options GiraphMemOptions();
ProcessCentricEngine::Options GiraphOocOptions();
ProcessCentricEngine::Options HamaOptions();
ProcessCentricEngine::Options GraphLabOptions();
ProcessCentricEngine::Options GraphXOptions();

}  // namespace pregelix

#endif  // PREGELIX_BASELINES_PROCESS_CENTRIC_H_
