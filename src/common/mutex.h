#ifndef PREGELIX_COMMON_MUTEX_H_
#define PREGELIX_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

// Annotated locking primitives for the simulated cluster.
//
// Every mutex in the engine is a pregelix::Mutex constructed with a name and
// a LockRank. The name groups all instances of one structure (every
// FrameChannel's lock is "channel"); the rank encodes the global acquisition
// order. Two enforcement layers sit on top:
//
//  - Compile time: the thread_annotations.h attributes (GUARDED_BY /
//    REQUIRES / ACQUIRE / RELEASE) make clang's -Wthread-safety prove that
//    guarded fields are only touched with their lock held. Enabled by
//    cmake -DPREGELIX_THREAD_SAFETY_ANALYSIS=ON.
//
//  - Run time: when lock_order::SetEnabled(true) (the default in !NDEBUG
//    builds), every acquisition is checked against the held-lock stack of
//    the calling thread. Acquiring a lock whose rank is <= a held lock's
//    rank, or creating a cycle in the process-global name-level acquisition
//    graph, reports a violation (default: print both held-lock stacks and
//    abort). See DESIGN.md §12 for the rank table and how to read a report.
//
// Cost when the runtime detector is off: one relaxed atomic load plus a
// thread-local vector push/pop per acquisition.

namespace pregelix {

/// Global acquisition order: a thread may only acquire a ranked lock whose
/// rank is strictly greater than every ranked lock it already holds.
/// kUnranked locks skip the rank check but still feed the cycle graph.
/// Gaps are deliberate — new locks slot in without renumbering.
enum class LockRank : int {
  kUnranked = 0,
  kCluster = 10,         // SimulatedCluster worker table
  kChannel = 20,         // FrameChannel queue + spill state
  kBufferCache = 30,     // BufferCache page table / LRU / files
  kOverlapPrefetch = 32,    // PrefetchPool slots (under kChannel & kBufferCache)
  kOverlapWriteBehind = 34, // WriteBehindQueue jobs + budget (under kChannel)
  kExecutorStatus = 40,  // RunJob first-error slot
  kPregelGlobalState = 45,  // JobRuntimeContext pending GS
  kWatchdog = 48,        // StallWatchdog arm/disarm state
  kTraceRegistry = 50,   // Tracer thread-buffer registry
  kTraceBuffer = 55,     // one Tracer thread buffer
  kFaultInjector = 60,   // FaultInjector point table
  kJobRegistry = 62,     // JobStatusRegistry job table
  kEventJournal = 64,    // EventJournal ring + spill stream
  kServer = 66,          // ObservabilityServer connection queue
  kMetricsRegistry = 70, // MetricsRegistry instrument table
  kLogging = 90,         // log serialization; loggable under any lock
};

/// Annotated std::mutex wrapper carrying a static name and rank.
/// Satisfies BasicLockable so std::condition_variable_any (via CondVar)
/// waits through the instrumented lock/unlock, keeping the runtime
/// detector's held-lock stack accurate across waits.
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name = "unnamed",
                 LockRank rank = LockRank::kUnranked)
      : name_(name), rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE();
  void unlock() RELEASE();
  bool try_lock() TRY_ACQUIRE(true);

  const char* name() const { return name_; }
  LockRank rank() const { return rank_; }

 private:
  std::mutex mu_;
  const char* const name_;
  const LockRank rank_;
};

/// RAII lock holder (the only way the engine takes a Mutex).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() RELEASE() { mu_->unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to pregelix::Mutex. Waits release and reacquire
/// through the instrumented Mutex, so rank checks and the held-lock stack
/// stay correct across the wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex* mu) REQUIRES(mu) { cv_.wait(*mu); }

  template <typename Rep, typename Period>
  std::cv_status WaitFor(Mutex* mu,
                         const std::chrono::duration<Rep, Period>& d)
      REQUIRES(mu) {
    return cv_.wait_for(*mu, d);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

namespace lock_order {

/// One detected violation, handed to the installed handler.
struct Violation {
  enum class Kind { kRankInversion, kCycle, kRecursive };
  Kind kind;
  /// Human-readable report: the offending acquisition, the acquiring
  /// thread's held-lock stack, and for cycles the full edge path with the
  /// held-lock stack recorded when each edge was first observed.
  std::string report;
};

/// Violation callback. The default handler prints the report to stderr and
/// aborts; a test handler that returns lets the acquisition proceed.
using Handler = void (*)(const Violation&);

/// Installs a handler; returns the previous one. nullptr restores the
/// default print-and-abort handler.
Handler SetHandler(Handler handler);

/// Turns runtime checking on/off. Defaults to on in !NDEBUG builds.
void SetEnabled(bool enabled);
bool Enabled();

/// Drops all recorded acquisition edges (not the held-lock stacks). Tests
/// call this between scenarios so edges from one scenario cannot complete
/// a cycle in the next.
void ResetGraphForTest();

/// Names of the locks the calling thread currently holds, outermost first.
std::vector<std::string> HeldLocksForTest();

}  // namespace lock_order

}  // namespace pregelix

#endif  // PREGELIX_COMMON_MUTEX_H_
