#ifndef PREGELIX_COMMON_HASH_H_
#define PREGELIX_COMMON_HASH_H_

#include <cstdint>
#include <cstddef>

#include "common/slice.h"

namespace pregelix {

/// 64-bit FNV-1a over a byte range. Deterministic across platforms; used for
/// hash partitioning and the hash group-by table.
inline uint64_t Hash64(const char* data, size_t n, uint64_t seed = 0) {
  uint64_t h = 14695981039346656037ull ^ seed;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 1099511628211ull;
  }
  // Final avalanche (splitmix64 tail) so short keys spread well.
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

inline uint64_t Hash64(const Slice& s, uint64_t seed = 0) {
  return Hash64(s.data(), s.size(), seed);
}

/// Transparent hash functor for byte-keyed tables: hashes Slice,
/// std::string, and const char* identically, so containers declared with it
/// support heterogeneous lookup (find(Slice) against std::string keys
/// without materializing a temporary string). Pair with SliceEq.
struct SliceHash {
  using is_transparent = void;
  size_t operator()(const Slice& s) const {
    return static_cast<size_t>(Hash64(s));
  }
  size_t operator()(const std::string& s) const {
    return static_cast<size_t>(Hash64(Slice(s)));
  }
  size_t operator()(const char* s) const {
    return static_cast<size_t>(Hash64(Slice(s)));
  }
};

/// Transparent equality for byte-keyed tables; see SliceHash.
struct SliceEq {
  using is_transparent = void;
  bool operator()(const Slice& a, const Slice& b) const { return a == b; }
};

/// Hashes a vertex id directly (used by the default hash partitioner).
inline uint64_t HashVid(int64_t vid) {
  uint64_t h = static_cast<uint64_t>(vid) * 0x9e3779b97f4a7c15ull;
  h ^= h >> 32;
  h *= 0xd6e8feb86659fd93ull;
  h ^= h >> 32;
  return h;
}

}  // namespace pregelix

#endif  // PREGELIX_COMMON_HASH_H_
