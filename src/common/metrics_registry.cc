#include "common/metrics_registry.h"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "common/logging.h"

namespace pregelix {

namespace {

/// Registry map key: name plus normalized labels, using separators that
/// cannot appear in metric names.
std::string EntryKey(const std::string& name, const MetricLabels& labels) {
  std::string key = name;
  for (const auto& [k, v] : labels.kv) {
    key.push_back('\x01');
    key.append(k);
    key.push_back('\x02');
    key.append(v);
  }
  return key;
}

void AppendJsonEscaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          os << ' ';
        } else {
          os << c;
        }
    }
  }
}

void WriteLabels(std::ostream& os, const MetricLabels& labels) {
  os << "{";
  bool first = true;
  for (const auto& [k, v] : labels.kv) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    AppendJsonEscaped(os, k);
    os << "\":\"";
    AppendJsonEscaped(os, v);
    os << "\"";
  }
  os << "}";
}

/// Prometheus metric-name sanitization: legal chars are [a-zA-Z0-9_:];
/// everything else (notably the '.' separators of our naming convention)
/// becomes '_', and a leading digit gets a '_' prefix.
std::string PromName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(legal ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

/// Label-value escaping per the exposition format: backslash, double quote,
/// and line feed.
void AppendPromEscaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '\\':
        os << "\\\\";
        break;
      case '"':
        os << "\\\"";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
}

/// Writes `{k="v",...}` (or nothing when empty), with an optional extra
/// trailing pair — used for the `le` bound of histogram buckets.
void WritePromLabels(std::ostream& os, const MetricLabels& labels,
                     const char* extra_key = nullptr,
                     const std::string& extra_value = std::string()) {
  if (labels.kv.empty() && extra_key == nullptr) return;
  os << "{";
  bool first = true;
  for (const auto& [k, v] : labels.kv) {
    if (!first) os << ",";
    first = false;
    os << PromName(k) << "=\"";
    AppendPromEscaped(os, v);
    os << "\"";
  }
  if (extra_key != nullptr) {
    if (!first) os << ",";
    os << extra_key << "=\"";
    AppendPromEscaped(os, extra_value);
    os << "\"";
  }
  os << "}";
}

/// Inclusive upper bound of histogram bucket i: 0 for bucket 0 (which holds
/// only the value 0), 2^i - 1 for bucket i >= 1.
uint64_t BucketUpperBound(int i) {
  if (i <= 0) return 0;
  if (i >= 64) return ~0ull;
  return (uint64_t{1} << i) - 1;
}

}  // namespace

void MetricLabels::Normalize() {
  std::stable_sort(kv.begin(), kv.end(), [](const auto& a, const auto& b) {
    return a.first < b.first;
  });
  // Last write wins for duplicate keys.
  for (size_t i = 0; i + 1 < kv.size();) {
    if (kv[i].first == kv[i + 1].first) {
      kv.erase(kv.begin() + static_cast<long>(i));
    } else {
      ++i;
    }
  }
}

void Histogram::Observe(uint64_t value) {
  int bucket = 0;
  if (value > 0) {
    bucket = 64 - __builtin_clzll(value);  // floor(log2(v)) + 1
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  // Release after the bucket update so a snapshot reading count (acquire)
  // sees every bucket increment it counts; with both relaxed, Percentile
  // could observe count == n but fewer than n bucket increments and walk
  // off the end of the populated buckets.
  count_.fetch_add(1, std::memory_order_release);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (value > prev &&
         !max_.compare_exchange_weak(prev, value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0;
  p = std::max(0.0, std::min(100.0, p));
  // Rank of the requested observation (1-based ceiling).
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n));
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      if (i == 0) return 0;
      // Upper bound of bucket i = 2^i - 1; clamp to the observed max.
      const uint64_t upper =
          i >= 64 ? ~0ull : (uint64_t{1} << i) - 1;
      return std::min(upper, max());
    }
  }
  return max();
}

uint64_t Histogram::SnapshotBuckets(uint64_t out[kNumBuckets]) const {
  uint64_t total = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
    total += out[i];
  }
  return total;
}

MetricsRegistry::Entry* MetricsRegistry::GetOrCreateLocked(
    const std::string& name, MetricLabels labels, Kind kind) {
  labels.Normalize();
  const std::string key = EntryKey(name, labels);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    PREGELIX_CHECK(it->second.kind == kind)
        << "metric " << name << " re-registered as a different kind";
    return &it->second;
  }
  Entry entry;
  entry.name = name;
  entry.labels = std::move(labels);
  entry.kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<Histogram>();
      break;
  }
  return &entries_.emplace(key, std::move(entry)).first->second;
}

const MetricsRegistry::Entry* MetricsRegistry::FindLocked(
    const std::string& name, const MetricLabels& labels) const {
  MetricLabels normalized = labels;
  normalized.Normalize();
  auto it = entries_.find(EntryKey(name, normalized));
  return it == entries_.end() ? nullptr : &it->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     MetricLabels labels) {
  MutexLock lock(&mutex_);
  return GetOrCreateLocked(name, std::move(labels), Kind::kCounter)
      ->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 MetricLabels labels) {
  MutexLock lock(&mutex_);
  return GetOrCreateLocked(name, std::move(labels), Kind::kGauge)
      ->gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         MetricLabels labels) {
  MutexLock lock(&mutex_);
  return GetOrCreateLocked(name, std::move(labels), Kind::kHistogram)
      ->histogram.get();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name,
                                       const MetricLabels& labels) const {
  MutexLock lock(&mutex_);
  const Entry* entry = FindLocked(name, labels);
  return entry != nullptr && entry->kind == Kind::kCounter
             ? entry->counter->value()
             : 0;
}

int64_t MetricsRegistry::GaugeValue(const std::string& name,
                                    const MetricLabels& labels) const {
  MutexLock lock(&mutex_);
  const Entry* entry = FindLocked(name, labels);
  return entry != nullptr && entry->kind == Kind::kGauge
             ? entry->gauge->value()
             : 0;
}

size_t MetricsRegistry::size() const {
  MutexLock lock(&mutex_);
  return entries_.size();
}

uint64_t MetricsRegistry::SumCounters(const std::string& name) const {
  MutexLock lock(&mutex_);
  uint64_t total = 0;
  for (const auto& [key, entry] : entries_) {
    if (entry.kind == Kind::kCounter && entry.name == name) {
      total += entry.counter->value();
    }
  }
  return total;
}

void MetricsRegistry::WriteKindLocked(std::ostream& os, Kind kind) const {
  bool first = true;
  for (const auto& [key, entry] : entries_) {
    if (entry.kind != kind) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    AppendJsonEscaped(os, entry.name);
    os << "\",\"labels\":";
    WriteLabels(os, entry.labels);
    switch (kind) {
      case Kind::kCounter:
        os << ",\"value\":" << entry.counter->value();
        break;
      case Kind::kGauge:
        os << ",\"value\":" << entry.gauge->value();
        break;
      case Kind::kHistogram: {
        const Histogram& h = *entry.histogram;
        char mean[32];
        snprintf(mean, sizeof(mean), "%.3f", h.mean());
        os << ",\"count\":" << h.count() << ",\"sum\":" << h.sum()
           << ",\"mean\":" << mean << ",\"p50\":" << h.Percentile(50)
           << ",\"p90\":" << h.Percentile(90)
           << ",\"p99\":" << h.Percentile(99) << ",\"max\":" << h.max();
        break;
      }
    }
    os << "}";
  }
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  MutexLock lock(&mutex_);
  os << "{\"counters\":[";
  WriteKindLocked(os, Kind::kCounter);
  os << "],\"gauges\":[";
  WriteKindLocked(os, Kind::kGauge);
  os << "],\"histograms\":[";
  WriteKindLocked(os, Kind::kHistogram);
  os << "]}";
}

Status MetricsRegistry::ExportJson(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open metrics output " + path);
  }
  WriteJson(out);
  out.close();
  if (!out.good()) return Status::IoError("short write to " + path);
  return Status::OK();
}

void MetricsRegistry::WritePrometheus(std::ostream& os) const {
  MutexLock lock(&mutex_);
  // entries_ is keyed name + '\x01' + labels, so all series of one family
  // are contiguous: emit HELP/TYPE once per family boundary.
  std::string current_family;
  bool any_family = false;
  for (const auto& [key, entry] : entries_) {
    const std::string pname = PromName(entry.name);
    if (!any_family || entry.name != current_family) {
      any_family = true;
      current_family = entry.name;
      const char* type = entry.kind == Kind::kCounter   ? "counter"
                         : entry.kind == Kind::kGauge   ? "gauge"
                                                        : "histogram";
      os << "# HELP " << pname << " " << entry.name << "\n";
      os << "# TYPE " << pname << " " << type << "\n";
    }
    switch (entry.kind) {
      case Kind::kCounter:
        os << pname;
        WritePromLabels(os, entry.labels);
        os << " " << entry.counter->value() << "\n";
        break;
      case Kind::kGauge:
        os << pname;
        WritePromLabels(os, entry.labels);
        os << " " << entry.gauge->value() << "\n";
        break;
      case Kind::kHistogram: {
        // Snapshot the buckets once and derive _count from the snapshot so
        // the +Inf bucket equals _count under concurrent Observe.
        uint64_t buckets[Histogram::kNumBuckets];
        const uint64_t total =
            entry.histogram->SnapshotBuckets(buckets);
        int highest = 0;
        for (int i = 0; i < Histogram::kNumBuckets; ++i) {
          if (buckets[i] != 0) highest = i;
        }
        uint64_t cumulative = 0;
        for (int i = 0; i <= highest; ++i) {
          cumulative += buckets[i];
          os << pname << "_bucket";
          WritePromLabels(os, entry.labels, "le",
                          std::to_string(BucketUpperBound(i)));
          os << " " << cumulative << "\n";
        }
        os << pname << "_bucket";
        WritePromLabels(os, entry.labels, "le", "+Inf");
        os << " " << total << "\n";
        os << pname << "_sum";
        WritePromLabels(os, entry.labels);
        os << " " << entry.histogram->sum() << "\n";
        os << pname << "_count";
        WritePromLabels(os, entry.labels);
        os << " " << total << "\n";
        break;
      }
    }
  }
}

Status MetricsRegistry::ExportPrometheus(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open metrics output " + path);
  }
  WritePrometheus(out);
  out.close();
  if (!out.good()) return Status::IoError("short write to " + path);
  return Status::OK();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace pregelix
