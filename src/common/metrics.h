#ifndef PREGELIX_COMMON_METRICS_H_
#define PREGELIX_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <vector>

namespace pregelix {

/// Point-in-time copy of one worker's resource counters.
struct MetricsSnapshot {
  uint64_t cpu_ops = 0;           ///< tuple operations, comparisons, UDF calls
  uint64_t disk_read_bytes = 0;   ///< sequential read volume
  uint64_t disk_write_bytes = 0;  ///< sequential write volume
  uint64_t disk_seeks = 0;        ///< random I/Os (cold index probes)
  uint64_t net_bytes = 0;         ///< bytes crossing worker boundaries
  /// Disk bytes (a subset of disk_read/write_bytes) moved by the overlap
  /// runtime's background threads — I/O that can hide behind compute. The
  /// cost model credits up to the CPU time back (DESIGN.md §19).
  uint64_t overlap_io_bytes = 0;

  MetricsSnapshot operator-(const MetricsSnapshot& o) const {
    MetricsSnapshot d;
    d.cpu_ops = cpu_ops - o.cpu_ops;
    d.disk_read_bytes = disk_read_bytes - o.disk_read_bytes;
    d.disk_write_bytes = disk_write_bytes - o.disk_write_bytes;
    d.disk_seeks = disk_seeks - o.disk_seeks;
    d.net_bytes = net_bytes - o.net_bytes;
    d.overlap_io_bytes = overlap_io_bytes - o.overlap_io_bytes;
    return d;
  }
  MetricsSnapshot& operator+=(const MetricsSnapshot& o) {
    cpu_ops += o.cpu_ops;
    disk_read_bytes += o.disk_read_bytes;
    disk_write_bytes += o.disk_write_bytes;
    disk_seeks += o.disk_seeks;
    net_bytes += o.net_bytes;
    overlap_io_bytes += o.overlap_io_bytes;
    return *this;
  }
};

/// Thread-safe per-worker resource meter.
///
/// Every layer that moves bytes or burns CPU reports here: the buffer cache
/// reports page I/O, run files report sequential I/O, connectors report
/// network bytes, operators report tuple ops. The cost model (below) turns a
/// snapshot delta into simulated seconds on the paper's cluster hardware.
class WorkerMetrics {
 public:
  WorkerMetrics() = default;
  WorkerMetrics(const WorkerMetrics&) = delete;
  WorkerMetrics& operator=(const WorkerMetrics&) = delete;

  void AddCpuOps(uint64_t n) { cpu_ops_.fetch_add(n, std::memory_order_relaxed); }
  void AddDiskRead(uint64_t n) {
    disk_read_bytes_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddDiskWrite(uint64_t n) {
    disk_write_bytes_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddSeeks(uint64_t n) { disk_seeks_.fetch_add(n, std::memory_order_relaxed); }
  void AddNet(uint64_t n) { net_bytes_.fetch_add(n, std::memory_order_relaxed); }
  void AddOverlapIo(uint64_t n) {
    overlap_io_bytes_.fetch_add(n, std::memory_order_relaxed);
  }

  MetricsSnapshot Snapshot() const {
    MetricsSnapshot s;
    s.cpu_ops = cpu_ops_.load(std::memory_order_relaxed);
    s.disk_read_bytes = disk_read_bytes_.load(std::memory_order_relaxed);
    s.disk_write_bytes = disk_write_bytes_.load(std::memory_order_relaxed);
    s.disk_seeks = disk_seeks_.load(std::memory_order_relaxed);
    s.net_bytes = net_bytes_.load(std::memory_order_relaxed);
    s.overlap_io_bytes = overlap_io_bytes_.load(std::memory_order_relaxed);
    return s;
  }

  void Reset() {
    cpu_ops_.store(0, std::memory_order_relaxed);
    disk_read_bytes_.store(0, std::memory_order_relaxed);
    disk_write_bytes_.store(0, std::memory_order_relaxed);
    disk_seeks_.store(0, std::memory_order_relaxed);
    net_bytes_.store(0, std::memory_order_relaxed);
    overlap_io_bytes_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> cpu_ops_{0};
  std::atomic<uint64_t> disk_read_bytes_{0};
  std::atomic<uint64_t> disk_write_bytes_{0};
  std::atomic<uint64_t> disk_seeks_{0};
  std::atomic<uint64_t> net_bytes_{0};
  std::atomic<uint64_t> overlap_io_bytes_{0};
};

/// Hardware rates of the simulated cluster node (DESIGN.md Section 7). The
/// defaults model one worker of the paper's testbed: a 2.26 GHz Xeon core
/// running managed-runtime data-plane code (1M tuple-operations/s — a
/// tuple-op is a full operator step over one tuple, not an instruction), a
/// 7.2K RPM disk with readahead, and a share of a Gigabit Ethernet link.
struct CostModelParams {
  double cpu_ops_per_sec = 1e6;
  double disk_bytes_per_sec = 100e6;
  double seek_sec = 0.005;
  double net_bytes_per_sec = 117e6;
  double barrier_sec = 0.001;            ///< per-superstep master coordination
  double per_worker_coord_sec = 0.00025;
};

/// Simulated seconds one worker spends on the given counter delta.
double SimulatedWorkerSeconds(const MetricsSnapshot& delta,
                              const CostModelParams& params);

/// Simulated seconds with full overlap of CPU, disk, and network (the
/// bottleneck resource dominates). Used for multi-job throughput estimates:
/// concurrent jobs overlap one job's CPU with another's I/O, which is where
/// the paper's jobs-per-hour gains come from (Figure 13).
double OverlappedWorkerSeconds(const MetricsSnapshot& delta,
                               const CostModelParams& params);

/// BSP step time: the max across workers plus the barrier overhead.
double SimulatedStepSeconds(const std::vector<MetricsSnapshot>& deltas,
                            const CostModelParams& params);

}  // namespace pregelix

#endif  // PREGELIX_COMMON_METRICS_H_
