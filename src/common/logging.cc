#include "common/logging.h"

#include <atomic>
#include <mutex>

namespace pregelix {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_log_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }
void SetLogLevel(LogLevel level) { g_log_level = static_cast<int>(level); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  enabled_ = fatal || static_cast<int>(level) >= g_log_level.load();
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::lock_guard<std::mutex> lock(g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  if (fatal_) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace pregelix
