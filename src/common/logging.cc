#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <thread>

#include "common/mutex.h"

namespace pregelix {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarn)};
std::atomic<FatalHandler> g_fatal_handler{nullptr};
Mutex g_log_mutex{"log", LockRank::kLogging};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }
void SetLogLevel(LogLevel level) { g_log_level = static_cast<int>(level); }

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a')
                                         : c);
  }
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarn;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void InitLogLevelFromEnv() {
  const char* env = std::getenv("PREGELIX_LOG_LEVEL");
  if (env == nullptr || *env == '\0') return;
  LogLevel level;
  if (ParseLogLevel(env, &level)) {
    SetLogLevel(level);
  } else {
    PLOG(Warn) << "ignoring unparsable PREGELIX_LOG_LEVEL=\"" << env
               << "\" (want debug|info|warn|error)";
  }
}

void SetFatalHandler(FatalHandler handler) { g_fatal_handler = handler; }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal) {
  enabled_ = fatal || static_cast<int>(level) >= g_log_level.load();
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    const auto now = std::chrono::system_clock::now();
    const std::time_t secs = std::chrono::system_clock::to_time_t(now);
    const int millis = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            now.time_since_epoch())
            .count() %
        1000);
    std::tm tm_buf{};
    localtime_r(&secs, &tm_buf);
    char stamp[40];
    snprintf(stamp, sizeof(stamp), "%04d-%02d-%02d %02d:%02d:%02d.%03d",
             tm_buf.tm_year + 1900, tm_buf.tm_mon + 1, tm_buf.tm_mday,
             tm_buf.tm_hour, tm_buf.tm_min, tm_buf.tm_sec, millis);
    stream_ << "[" << LevelName(level) << " " << stamp << " tid "
            << std::this_thread::get_id() << " " << base << ":" << line
            << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    MutexLock lock(&g_log_mutex);
    std::cerr << stream_.str() << std::endl;
  }
  if (fatal_) {
    // Give the crash-dump hook one shot at flushing traces/metrics; it is
    // cleared before running so a fatal error inside it cannot recurse.
    FatalHandler handler = g_fatal_handler.exchange(nullptr);
    if (handler != nullptr) handler();
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace pregelix
