#ifndef PREGELIX_COMMON_TIME_LEDGER_H_
#define PREGELIX_COMMON_TIME_LEDGER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

// Worker time ledger (DESIGN.md §20).
//
// Attributes *all* wall time of every attached thread to exactly one of a
// closed category set, under the conservation invariant
//
//     Σ categories == elapsed ± ε
//
// (ε = 0 by construction on the owner thread; the only residue comes from
// guard misuse, which is counted, never silently dropped). The discipline
// follows DTrace-style whole-system profiling — every nanosecond lands in
// exactly one bucket — and the per-query wait-state breakdowns of
// Umbra/HyPer-style profilers.
//
// A thread participates by attaching (`TimeLedger::AttachCurrentThread`)
// with a pseudo-worker id, a base category, and an optional label (the
// operator name for executor task threads). From then on RAII
// `ScopedTimeCategory` guards push/pop an explicit category stack: entering
// a scope settles the elapsed time into the *previous* category and charges
// subsequent time to the new one; leaving resumes the parent. Nested scopes
// therefore suspend their parent — no nanosecond is ever double-counted.
// `Reattribute` moves already-elapsed (and already-measured) nanoseconds
// from the current category into another one; the run-file layer uses it to
// move measured overlap waits into `io_wait` so the ledger bucket equals
// PR 9's per-operator `io_wait_ns` exactly. `ChargeLockWait` is called by
// `pregelix::Mutex` on every *contended* acquisition and both reclassifies
// the blocked interval as `lock_wait` and feeds a per-lock-name table.
//
// The ledger's own internals use only std:: primitives (a raw std::mutex
// for the thread registry, atomics everywhere else) — never a
// pregelix::Mutex — because pregelix::Mutex::lock() calls back into the
// ledger; the same rule the lock-order detector follows.
//
// Threads that never attach pay one thread-local load per guard; a
// disabled ledger (`SetEnabled(false)`) refuses attaches, so every guard,
// reattribution, and lock-wait charge in the process becomes inert.

namespace pregelix {

class MetricsRegistry;

namespace ledger_internal {
struct ThreadRecord;
}  // namespace ledger_internal

/// The closed category set. tools/lint_ledger.py cross-checks the
/// kTimeCategoryNames literal below two-way against the DESIGN.md §20
/// category table; adding a category means updating both.
enum class TimeCategory : int {
  kCompute = 0,   ///< operator activations: the default for task threads
  kSort,          ///< in-memory run formation (quick/merge sort kernels)
  kMerge,         ///< loser-tree merge of sorted runs / streams
  kGroupBy,       ///< group-by combine/emit (sort- and hash-based)
  kShuffleWait,   ///< parked in a connector channel send/recv
  kBarrierWait,   ///< driver waiting on the superstep join barrier
  kIoRead,        ///< foreground file reads (pread / buffered read)
  kIoWrite,       ///< foreground file writes (append / pwrite / flush)
  kIoWait,        ///< uncovered overlap waits (absorbs PR 9's io_wait_ns)
  kLockWait,      ///< contended pregelix::Mutex acquisitions
  kCheckpoint,    ///< driver-side checkpoint/recovery bookkeeping
  kServe,         ///< observability-server request handling
  kIdle,          ///< attached but parked with no work (pool workers)
};

inline constexpr int kNumTimeCategories = 13;

/// Category names, indexed by TimeCategory. This literal is the source of
/// truth tools/lint_ledger.py scans.
inline constexpr const char* kTimeCategoryNames[kNumTimeCategories] = {
    "compute",      "sort",    "merge",      "group_by", "shuffle_wait",
    "barrier_wait", "io_read", "io_write",   "io_wait",  "lock_wait",
    "checkpoint",   "serve",   "idle",
};

inline const char* TimeCategoryName(TimeCategory c) {
  return kTimeCategoryNames[static_cast<int>(c)];
}

/// A point-in-time copy of the whole ledger: folded (detached) thread time
/// plus the in-flight time of still-attached threads, all read with one
/// clock sample so the conservation invariant survives the copy.
struct TimeLedgerSnapshot {
  /// One (worker, label) aggregation cell.
  struct Cell {
    int worker = 0;
    std::string label;  ///< operator name; "" for unlabeled threads
    std::array<int64_t, kNumTimeCategories> ns{};
  };
  /// One contended-lock row, keyed by the static pregelix::Mutex name.
  struct LockWait {
    std::string name;
    int64_t ns = 0;
    int64_t count = 0;  ///< contended acquisitions
  };

  std::vector<Cell> cells;  ///< sorted by (worker, label)
  std::array<int64_t, kNumTimeCategories> category_ns{};  ///< Σ over cells
  std::vector<LockWait> locks;  ///< sorted by ns, descending
  int64_t elapsed_ns = 0;       ///< Σ attached thread-nanoseconds
  int64_t unattributed_ns = 0;  ///< |elapsed − Σ categories| at detach
  int64_t misuse_count = 0;     ///< guards destroyed off-thread / unbalanced

  int64_t attributed_ns() const;
  int64_t ns(TimeCategory c) const {
    return category_ns[static_cast<int>(c)];
  }
  /// Σ of one category over cells whose label is non-empty, by label
  /// (the per-operator io_wait export).
  std::map<std::string, int64_t> ByLabel(TimeCategory c) const;
};

/// Process-wide time ledger. All mutation goes through the static
/// per-thread entry points; the instance API is snapshots and export.
class TimeLedger {
 public:
  /// Pseudo-worker ids for threads that are not simulated-cluster workers.
  static constexpr int kDriverWorker = -1;
  static constexpr int kServerWorker = -2;
  static constexpr int kOverlapWorker = -3;

  TimeLedger();
  ~TimeLedger();
  TimeLedger(const TimeLedger&) = delete;
  TimeLedger& operator=(const TimeLedger&) = delete;

  /// The instance every attach/guard in the process feeds.
  static TimeLedger& Global();

  // --- per-thread entry points (all inert on unattached threads) ----------

  /// Starts attributing this thread's time, base category `base`. Returns
  /// false (and stays inert) when already attached or the ledger is
  /// disabled. `label` names the cell (operator name for task threads).
  static bool AttachCurrentThread(int worker, TimeCategory base,
                                  std::string label = "");
  /// Settles the final interval, verifies conservation (exact on the owner
  /// thread; drift feeds `unattributed_ns`), folds the thread's
  /// accumulators into the ledger, and detaches.
  static void DetachCurrentThread();
  static bool CurrentThreadAttached();

  /// Moves `ns` already-elapsed nanoseconds from the current category into
  /// `to`. Used where a wait was *measured* by other means (the overlap
  /// layer's wait counters) so two accountings of the same interval agree
  /// to the nanosecond. When the current category is already `to`, or the
  /// thread sits in a shuffle/checkpoint wait that claims its own I/O, the
  /// caller is expected to skip the call.
  static void Reattribute(TimeCategory to, uint64_t ns);

  /// Called by pregelix::Mutex for a contended acquisition that blocked
  /// `ns` nanoseconds: reclassifies the interval as lock_wait and charges
  /// the per-lock table under `lock_name` (a static string).
  static void ChargeLockWait(const char* lock_name, uint64_t ns);

  /// Monotonic nanoseconds (steady clock), the ledger's one time base.
  static uint64_t NowNs();

  // --- instance API --------------------------------------------------------

  /// Refusing attaches while disabled makes every guard in the process
  /// inert; already-attached threads keep their accounting.
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_release);
  }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  TimeLedgerSnapshot TakeSnapshot() const;

  /// Registers/refreshes `pregelix.ledger.unattributed_ns` and
  /// `pregelix.ledger.guard_misuse` (DESIGN.md §10) in `registry`.
  void PublishMetrics(MetricsRegistry* registry) const;

  /// `/profilez` JSON: categories, per-worker and per-operator breakdowns,
  /// the lock table, and the conservation residue.
  void WriteJson(std::ostream& os) const;
  /// `/profilez?format=collapsed`: `worker;operator;category <ns>` lines,
  /// one per non-zero cell×category — flamegraph.pl's collapsed-stack
  /// input format.
  void WriteCollapsed(std::ostream& os) const;
  /// Prometheus text exposition appended after the registry's:
  /// `pregelix_time_seconds_total{category,worker}`,
  /// `pregelix_lock_wait_seconds_total{lock}` (top-k by wait time), and
  /// `pregelix_io_wait_seconds_total{operator}`.
  void WritePrometheus(std::ostream& os) const;

  /// Drops all folded time, lock rows, and residue counters (tests).
  /// Attached threads stay attached; their in-flight time restarts from
  /// now.
  void Reset();

 private:
  using ThreadRecord = ledger_internal::ThreadRecord;
  friend class ScopedTimeCategory;

  void FoldLocked(ThreadRecord* rec, uint64_t now_ns);
  void AddLockWait(const char* name, uint64_t ns);
  void CountMisuse() { misuse_count_.fetch_add(1, std::memory_order_relaxed); }

  std::atomic<bool> enabled_{true};
  std::atomic<int64_t> unattributed_ns_{0};
  std::atomic<int64_t> misuse_count_{0};

  /// Contended-lock table: fixed slots claimed by CAS on the name pointer
  /// (static Mutex names), merged by string value at snapshot time. Lock-
  /// free so a contended engine lock never serializes on the ledger.
  static constexpr int kLockSlots = 64;
  struct LockSlot {
    std::atomic<const char*> name{nullptr};
    std::atomic<int64_t> ns{0};
    std::atomic<int64_t> count{0};
  };
  mutable std::array<LockSlot, kLockSlots> lock_slots_;
  /// Overflow bucket when all slots are claimed by distinct names.
  LockSlot lock_overflow_;

  /// Raw std::mutex on purpose — see the header comment.
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<ThreadRecord>> live_;
  /// Folded (detached-thread) time, keyed by (worker, label).
  std::map<std::pair<int, std::string>,
           std::array<int64_t, kNumTimeCategories>>
      folded_;
  int64_t folded_elapsed_ns_ = 0;
};

/// RAII category scope: construction suspends the current category and
/// charges subsequent time to `category`; destruction resumes the parent.
/// Inert on unattached threads. Destroying a guard on a different thread
/// than the one that created it (or after that thread detached) is counted
/// misuse: the guard skips accounting rather than corrupting another
/// thread's stack, and the ledger's misuse counter records it.
class ScopedTimeCategory {
 public:
  explicit ScopedTimeCategory(TimeCategory category);
  ~ScopedTimeCategory();

  ScopedTimeCategory(const ScopedTimeCategory&) = delete;
  ScopedTimeCategory& operator=(const ScopedTimeCategory&) = delete;

 private:
  void* record_ = nullptr;  ///< the ThreadRecord this guard pushed onto
};

}  // namespace pregelix

#endif  // PREGELIX_COMMON_TIME_LEDGER_H_
