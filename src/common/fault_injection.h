// Deterministic fault injection.
//
// A process-global registry of named fault points. Library code declares a
// point with fault::MaybeFail("io.file.write") (or MaybeFailWrite for
// torn-write support); tests arm points with a FaultSpec describing *when*
// the point fires (nth hit, every kth hit, seeded probability, optionally
// restricted to one superstep) and *what* happens (a Status error of a
// chosen code, a torn write, or a simulated crash that unwinds to the
// driver as kAborted).
//
// Determinism: a point's decision for its i-th hit depends only on
// (point name, spec seed, i) — never on wall clock, thread ids, or global
// RNG state — so the same seed yields the same failure schedule for the
// same sequence of hits. See DESIGN.md §12.
//
// Cost when disarmed: one relaxed atomic load per MaybeFail call.
#ifndef PREGELIX_COMMON_FAULT_INJECTION_H_
#define PREGELIX_COMMON_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace pregelix {
namespace fault {

enum class Trigger {
  kAlways,       // fire on every hit
  kNthHit,       // fire on the n-th hit only (1-based)
  kEveryKth,     // fire on every k-th hit (hits n, 2n, 3n, ...)
  kProbability,  // fire per-hit with probability p, seeded & deterministic
};

enum class Action {
  kError,      // return Status(code, message)
  kTornWrite,  // truncate the write, then return the error (MaybeFailWrite
               // callers only; plain MaybeFail treats this as kError)
  kCrash,      // return kAborted: the runtime treats this as a process
               // crash and unwinds to the driver without retrying
};

struct FaultSpec {
  Trigger trigger = Trigger::kAlways;
  // kNthHit: the hit index that fires (1-based). kEveryKth: the period.
  uint64_t n = 1;
  // kProbability: chance per hit in [0,1], decided by hashing
  // (point, seed, hit index) so concurrent hits stay deterministic
  // per hit index.
  double probability = 1.0;
  uint64_t seed = 0;
  // If >= 0, fire only while the injector scope (set by the runtime at the
  // top of each superstep) equals this superstep.
  int64_t scope_superstep = -1;
  Action action = Action::kError;
  StatusCode code = StatusCode::kIoError;
  std::string message;  // defaults to "injected fault at <point>"
  // Stop firing after this many fires (0 = unlimited).
  uint64_t max_fires = 0;
};

struct PointStats {
  uint64_t hits = 0;
  uint64_t fires = 0;
};

/// Process-global fault point registry. Thread-safe.
class FaultInjector {
 public:
  static FaultInjector& Global();

  /// Arms (or re-arms, resetting counters) a fault point.
  void Arm(const std::string& point, FaultSpec spec);
  /// Disarms one point; its counters are discarded.
  void Disarm(const std::string& point);
  /// Disarms everything and clears the scope. Tests call this in teardown.
  void Reset();

  /// Sets the current superstep scope (kNoScope = none). The Pregel driver
  /// calls this at the top of each superstep so specs with scope_superstep
  /// only fire inside their target superstep.
  static constexpr int64_t kNoScope = -1;
  void SetScope(int64_t superstep);
  int64_t scope() const;

  /// Evaluates the point. Returns OK unless an armed spec fires.
  Status MaybeFail(const std::string& point);

  /// Write-path variant: `*len` holds the intended write size. On a
  /// kTornWrite fire it is reduced to the prefix the caller must still
  /// write before returning the error (simulating a partial write); on any
  /// other fire it is set to 0.
  Status MaybeFailWrite(const std::string& point, size_t* len);

  /// Hit/fire counters for a point (zeros if never armed).
  PointStats Stats(const std::string& point) const;

  bool any_armed() const;

 private:
  struct PointState {
    FaultSpec spec;
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  // Decides & records one hit. Returns whether the point fires and (by
  // copy) the spec to apply.
  bool RecordHit(const std::string& point, FaultSpec* spec_out);

  mutable Mutex mu_{"fault_injector", LockRank::kFaultInjector};
  std::map<std::string, PointState> points_ GUARDED_BY(mu_);
  int64_t scope_superstep_ GUARDED_BY(mu_) = kNoScope;
  // Fast path: number of armed points, read without the lock.
  std::atomic<int> armed_count_{0};
};

/// Shorthands used at injection sites.
inline Status MaybeFail(const std::string& point) {
  FaultInjector& fi = FaultInjector::Global();
  if (!fi.any_armed()) return Status::OK();
  return fi.MaybeFail(point);
}

inline Status MaybeFailWrite(const std::string& point, size_t* len) {
  FaultInjector& fi = FaultInjector::Global();
  if (!fi.any_armed()) return Status::OK();
  return fi.MaybeFailWrite(point, len);
}

/// Literal-name overloads: the std::string is only materialized once a spec
/// is armed, so a disarmed point on a per-tuple path costs exactly one
/// relaxed atomic load — no temporary string (point names longer than the
/// SSO limit would otherwise heap-allocate on every call).
inline Status MaybeFail(const char* point) {
  FaultInjector& fi = FaultInjector::Global();
  if (!fi.any_armed()) return Status::OK();
  return fi.MaybeFail(std::string(point));
}

inline Status MaybeFailWrite(const char* point, size_t* len) {
  FaultInjector& fi = FaultInjector::Global();
  if (!fi.any_armed()) return Status::OK();
  return fi.MaybeFailWrite(std::string(point), len);
}

/// True when `s` is the result of an Action::kCrash fire: the runtime
/// must not retry it and must unwind to the driver.
inline bool IsSimulatedCrash(const Status& s) { return s.IsAborted(); }

}  // namespace fault
}  // namespace pregelix

#endif  // PREGELIX_COMMON_FAULT_INJECTION_H_
