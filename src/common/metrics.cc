#include "common/metrics.h"

#include <algorithm>

namespace pregelix {

double SimulatedWorkerSeconds(const MetricsSnapshot& delta,
                              const CostModelParams& params) {
  const double cpu = static_cast<double>(delta.cpu_ops) / params.cpu_ops_per_sec;
  const double disk =
      static_cast<double>(delta.disk_read_bytes + delta.disk_write_bytes) /
      params.disk_bytes_per_sec;
  double t = cpu + disk;
  t += static_cast<double>(delta.disk_seeks) * params.seek_sec;
  t += static_cast<double>(delta.net_bytes) / params.net_bytes_per_sec;
  // Overlap credit (DESIGN.md §19): bytes the overlap runtime moved on a
  // background thread proceed concurrently with compute, so up to the CPU
  // time of the window (and never more than the disk time itself) is
  // hidden. With the overlap runtime off, overlap_io_bytes is 0 and this is
  // the strict phase-serial sum.
  const double overlapped =
      static_cast<double>(delta.overlap_io_bytes) / params.disk_bytes_per_sec;
  t -= std::min(overlapped, std::min(cpu, disk));
  return t;
}

double OverlappedWorkerSeconds(const MetricsSnapshot& delta,
                               const CostModelParams& params) {
  const double cpu = static_cast<double>(delta.cpu_ops) / params.cpu_ops_per_sec;
  const double disk =
      static_cast<double>(delta.disk_read_bytes + delta.disk_write_bytes) /
          params.disk_bytes_per_sec +
      static_cast<double>(delta.disk_seeks) * params.seek_sec;
  const double net = static_cast<double>(delta.net_bytes) / params.net_bytes_per_sec;
  return std::max(cpu, std::max(disk, net));
}

double SimulatedStepSeconds(const std::vector<MetricsSnapshot>& deltas,
                            const CostModelParams& params) {
  double max_worker = 0.0;
  for (const MetricsSnapshot& d : deltas) {
    max_worker = std::max(max_worker, SimulatedWorkerSeconds(d, params));
  }
  return max_worker + params.barrier_sec +
         params.per_worker_coord_sec * static_cast<double>(deltas.size());
}

}  // namespace pregelix
