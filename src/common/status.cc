#include "common/status.h"

namespace pregelix {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kOutOfMemory:
      return "OutOfMemory";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotSupported:
      return "NotSupported";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace pregelix
