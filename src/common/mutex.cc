#include "common/mutex.h"

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <vector>

#include "common/time_ledger.h"

namespace pregelix {

namespace lock_order {
namespace {

// The detector must not use pregelix::Mutex (recursion) or PLOG (the log
// mutex is itself instrumented), so everything here is raw std:: primitives
// and fprintf.

#ifdef NDEBUG
std::atomic<bool> g_enabled{false};
#else
std::atomic<bool> g_enabled{true};
#endif

void DefaultHandler(const Violation& v) {
  fprintf(stderr, "%s\n", v.report.c_str());
  fflush(stderr);
  std::abort();
}

std::atomic<Handler> g_handler{&DefaultHandler};

/// Per-thread stack of held locks, outermost first. Wrapped with an
/// `alive` flag because locks are still taken after this thread's TLS
/// destructors have run — the crash-dump atexit hook exports traces and
/// metrics during exit(), and glibc destroys main-thread TLS before the
/// atexit handlers fire. Once the destructor has flipped `alive`, lock
/// tracking degrades to plain (unchecked) locking instead of pushing into
/// a destructed vector.
struct TlsHeld {
  std::vector<const Mutex*> stack;
  bool alive = true;
  ~TlsHeld() { alive = false; }
};
thread_local TlsHeld tls_held;

/// Name-level acquisition graph. Nodes are lock names (all instances of one
/// structure share a node); an edge a->b means "some thread held a while
/// acquiring b". Each edge stores the holder's full held-lock stack at the
/// time the edge was first seen, so a cycle report can show both sides'
/// stacks.
struct Graph {
  std::mutex mu;
  struct Edge {
    std::vector<std::string> holder_stack;  // held names when edge created
  };
  std::map<std::string, std::map<std::string, Edge>> edges;

  // DFS: is `to` reachable from `from`? Fills path (names, inclusive).
  bool Reachable(const std::string& from, const std::string& to,
                 std::set<std::string>* visited,
                 std::vector<std::string>* path) {
    if (!visited->insert(from).second) return false;
    path->push_back(from);
    if (from == to) return true;
    auto it = edges.find(from);
    if (it != edges.end()) {
      for (const auto& [next, edge] : it->second) {
        if (Reachable(next, to, visited, path)) return true;
      }
    }
    path->pop_back();
    return false;
  }
};

Graph& graph() {
  static Graph* g = new Graph();
  return *g;
}

std::string DescribeHeld(const std::vector<const Mutex*>& held) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < held.size(); ++i) {
    if (i > 0) os << " -> ";
    os << held[i]->name() << "(rank "
       << static_cast<int>(held[i]->rank()) << ")";
  }
  os << "]";
  return os.str();
}

std::string DescribeStack(const std::vector<std::string>& names) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) os << " -> ";
    os << names[i];
  }
  os << "]";
  return os.str();
}

void Report(Violation::Kind kind, const std::string& report) {
  Violation v;
  v.kind = kind;
  v.report = report;
  g_handler.load()(v);
}

/// Rank + cycle checks for one acquisition; called before blocking on the
/// underlying std::mutex so a would-be deadlock reports instead of hanging.
void CheckAcquire(const Mutex* m) {
  if (!tls_held.alive) return;  // exit-time acquisition, TLS already gone
  const std::vector<const Mutex*>& held_stack = tls_held.stack;
  if (held_stack.empty()) return;

  for (const Mutex* h : held_stack) {
    if (h == m) {
      std::ostringstream os;
      os << "lock-order violation (recursive acquisition): thread already "
         << "holds \"" << m->name() << "\"; held " << DescribeHeld(held_stack);
      Report(Violation::Kind::kRecursive, os.str());
      return;  // acquiring would self-deadlock; handler decided to continue
    }
  }

  // Rank discipline: every ranked lock acquired must outrank every ranked
  // lock held.
  if (m->rank() != LockRank::kUnranked) {
    for (const Mutex* h : held_stack) {
      if (h->rank() == LockRank::kUnranked) continue;
      if (static_cast<int>(h->rank()) >= static_cast<int>(m->rank())) {
        std::ostringstream os;
        os << "lock-order violation (rank inversion): acquiring \""
           << m->name() << "\" (rank " << static_cast<int>(m->rank())
           << ") while holding \"" << h->name() << "\" (rank "
           << static_cast<int>(h->rank())
           << "); a ranked lock must outrank every ranked lock held. held "
           << DescribeHeld(held_stack);
        Report(Violation::Kind::kRankInversion, os.str());
        break;
      }
    }
  }

  // Cycle detection over the name-level acquisition graph.
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  for (const Mutex* h : held_stack) {
    if (std::string(h->name()) == m->name()) continue;
    auto& out = g.edges[h->name()];
    if (out.find(m->name()) != out.end()) continue;  // known edge
    // Inserting h->m: if m already reaches h, this edge closes a cycle.
    std::set<std::string> visited;
    std::vector<std::string> path;
    if (g.Reachable(m->name(), h->name(), &visited, &path)) {
      std::ostringstream os;
      os << "lock-order violation (cycle): acquiring \"" << m->name()
         << "\" while holding \"" << h->name()
         << "\" completes the cycle ";
      for (const std::string& n : path) os << n << " -> ";
      os << m->name() << ".\n  this thread holds "
         << DescribeHeld(held_stack) << "\n";
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        const Graph::Edge& e = g.edges[path[i]][path[i + 1]];
        os << "  edge " << path[i] << " -> " << path[i + 1]
           << " first seen with holder stack "
           << DescribeStack(e.holder_stack) << "\n";
      }
      Report(Violation::Kind::kCycle, os.str());
    }
    Graph::Edge edge;
    edge.holder_stack.reserve(held_stack.size());
    for (const Mutex* held : held_stack) {
      edge.holder_stack.push_back(held->name());
    }
    out.emplace(m->name(), std::move(edge));
  }
}

}  // namespace

Handler SetHandler(Handler handler) {
  return g_handler.exchange(handler != nullptr ? handler : &DefaultHandler);
}

void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void ResetGraphForTest() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  g.edges.clear();
}

std::vector<std::string> HeldLocksForTest() {
  std::vector<std::string> names;
  if (!tls_held.alive) return names;
  names.reserve(tls_held.stack.size());
  for (const Mutex* m : tls_held.stack) names.emplace_back(m->name());
  return names;
}

}  // namespace lock_order

void Mutex::lock() {
  if (lock_order::Enabled()) lock_order::CheckAcquire(this);
  // Contention accounting (DESIGN.md §20): the rank/cycle checks above run
  // unconditionally; only the *contended* slow path pays two clock reads.
  // ChargeLockWait is inert on threads not attached to the time ledger, and
  // the ledger itself never takes a pregelix::Mutex, so this cannot recurse.
  if (!mu_.try_lock()) {
    const uint64_t wait_start_ns = TimeLedger::NowNs();
    mu_.lock();
    TimeLedger::ChargeLockWait(name_, TimeLedger::NowNs() - wait_start_ns);
  }
  auto& held = lock_order::tls_held;
  if (held.alive) held.stack.push_back(this);
}

void Mutex::unlock() {
  auto& held = lock_order::tls_held;
  if (held.alive) {
    for (size_t i = held.stack.size(); i > 0; --i) {
      if (held.stack[i - 1] == this) {
        held.stack.erase(held.stack.begin() + static_cast<long>(i - 1));
        break;
      }
    }
  }
  mu_.unlock();
}

bool Mutex::try_lock() {
  // try_lock cannot deadlock, so it skips the checks but still tracks.
  if (!mu_.try_lock()) return false;
  auto& held = lock_order::tls_held;
  if (held.alive) held.stack.push_back(this);
  return true;
}

}  // namespace pregelix
