#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>

namespace pregelix {

namespace {

uint64_t SteadyNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::atomic<uint64_t> g_tracer_id_counter{1};

/// JSON string escaping for span names (categories are static literals from
/// trace_cat and pass through, but escaping them too is harmless).
void AppendJsonEscaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

}  // namespace

Tracer::Tracer()
    : tracer_id_(g_tracer_id_counter.fetch_add(1)),
      epoch_ns_(SteadyNanos()) {}

Tracer::~Tracer() = default;

uint64_t Tracer::NowMicros() const {
  return (SteadyNanos() - epoch_ns_) / 1000;
}

Tracer::ThreadBuffer* Tracer::GetThreadBuffer() {
  // Per-thread cache of (tracer id -> buffer). Ids are process-unique and
  // never reused, so a stale entry for a destroyed tracer can never be hit
  // through a live tracer's lookup.
  thread_local std::vector<std::pair<uint64_t, ThreadBuffer*>> tl_buffers;
  for (const auto& [id, buffer] : tl_buffers) {
    if (id == tracer_id_) return buffer;
  }
  MutexLock lock(&registry_mutex_);
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = static_cast<int>(buffers_.size());
  ThreadBuffer* raw = buffer.get();
  buffers_.push_back(std::move(buffer));
  tl_buffers.emplace_back(tracer_id_, raw);
  return raw;
}

void Tracer::Record(TraceEvent event) {
  ThreadBuffer* buffer = GetThreadBuffer();
  event.tid = buffer->tid;
  MutexLock lock(&buffer->mutex);
  buffer->events.push_back(std::move(event));
}

std::vector<TraceEvent> Tracer::Collect() const {
  std::vector<TraceEvent> out;
  {
    MutexLock lock(&registry_mutex_);
    for (const auto& buffer : buffers_) {
      MutexLock buffer_lock(&buffer->mutex);
      out.insert(out.end(), buffer->events.begin(), buffer->events.end());
    }
  }
  // Spans are appended to their buffer at End(), so a nested span precedes
  // its parent in insertion order. Sort by start time, breaking same-tick
  // ties by duration descending so an enclosing span always comes before
  // the spans it contains.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.start_us != b.start_us) {
                       return a.start_us < b.start_us;
                     }
                     return a.duration_us > b.duration_us;
                   });
  return out;
}

size_t Tracer::event_count() const {
  MutexLock lock(&registry_mutex_);
  size_t n = 0;
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(&buffer->mutex);
    n += buffer->events.size();
  }
  return n;
}

void Tracer::Clear() {
  MutexLock lock(&registry_mutex_);
  for (const auto& buffer : buffers_) {
    MutexLock buffer_lock(&buffer->mutex);
    buffer->events.clear();
  }
}

void Tracer::WriteChromeTrace(std::ostream& os) const {
  const std::vector<TraceEvent> events = Collect();
  os << "{\"traceEvents\":[";
  bool first = true;
  // Name each pid track once: worker-N for simulated workers, driver for
  // the superstep loop.
  std::vector<int> workers;
  for (const TraceEvent& e : events) {
    if (std::find(workers.begin(), workers.end(), e.worker) ==
        workers.end()) {
      workers.push_back(e.worker);
    }
  }
  std::sort(workers.begin(), workers.end());
  for (int w : workers) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << w
       << ",\"tid\":0,\"args\":{\"name\":\""
       << (w == kTraceDriverWorker ? std::string("driver")
                                   : "worker-" + std::to_string(w))
       << "\"}}";
  }
  for (const TraceEvent& e : events) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":\"";
    AppendJsonEscaped(os, e.name);
    os << "\",\"cat\":\"";
    AppendJsonEscaped(os, e.category);
    os << "\",\"ph\":\"X\",\"pid\":" << e.worker << ",\"tid\":" << e.tid
       << ",\"ts\":" << e.start_us << ",\"dur\":" << e.duration_us;
    if (!e.args.empty()) {
      os << ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : e.args) {
        if (!first_arg) os << ",";
        first_arg = false;
        os << "\"";
        AppendJsonEscaped(os, key);
        os << "\":" << value;
      }
      os << "}";
    }
    os << "}";
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
}

Status Tracer::ExportChromeTrace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open trace output " + path);
  }
  WriteChromeTrace(out);
  out.close();
  if (!out.good()) return Status::IoError("short write to " + path);
  return Status::OK();
}

void Tracer::WriteSummaryJson(std::ostream& os) const {
  struct Agg {
    uint64_t count = 0;
    uint64_t total_us = 0;
    uint64_t min_us = ~0ull;
    uint64_t max_us = 0;
  };
  std::map<std::pair<std::string, std::string>, Agg> aggs;
  for (const TraceEvent& e : Collect()) {
    Agg& a = aggs[{e.category, e.name}];
    ++a.count;
    a.total_us += e.duration_us;
    a.min_us = std::min(a.min_us, e.duration_us);
    a.max_us = std::max(a.max_us, e.duration_us);
  }
  std::vector<std::pair<std::pair<std::string, std::string>, Agg>> rows(
      aggs.begin(), aggs.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_us > b.second.total_us;
  });
  os << "[";
  bool first = true;
  for (const auto& [key, a] : rows) {
    if (!first) os << ",";
    first = false;
    os << "{\"cat\":\"";
    AppendJsonEscaped(os, key.first);
    os << "\",\"name\":\"";
    AppendJsonEscaped(os, key.second);
    os << "\",\"count\":" << a.count << ",\"total_us\":" << a.total_us
       << ",\"min_us\":" << (a.count == 0 ? 0 : a.min_us)
       << ",\"max_us\":" << a.max_us << "}";
  }
  os << "]";
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

}  // namespace pregelix
