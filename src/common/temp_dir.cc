#include "common/temp_dir.h"

#include <atomic>
#include <chrono>
#include <filesystem>
#include <system_error>

#include "common/logging.h"

namespace pregelix {

namespace fs = std::filesystem;

namespace {
std::atomic<uint64_t> g_dir_counter{0};
}  // namespace

TempDir::TempDir(const std::string& prefix) {
  const char* base = getenv("TMPDIR");
  fs::path root = base != nullptr ? base : "/tmp";
  const uint64_t stamp =
      std::chrono::steady_clock::now().time_since_epoch().count();
  for (int attempt = 0; attempt < 100; ++attempt) {
    fs::path candidate =
        root / (prefix + "-" + std::to_string(stamp) + "-" +
                std::to_string(g_dir_counter.fetch_add(1)));
    std::error_code ec;
    if (fs::create_directories(candidate, ec) && !ec) {
      path_ = candidate.string();
      return;
    }
  }
  PREGELIX_CHECK(false) << "could not create temp dir under " << root;
}

TempDir::~TempDir() {
  if (!keep_ && !path_.empty()) {
    RemoveAll(path_);
  }
}

std::string TempDir::Sub(const std::string& name) const {
  fs::path p = fs::path(path_) / name;
  std::error_code ec;
  fs::create_directories(p, ec);
  return p.string();
}

bool EnsureDir(const std::string& path) {
  std::error_code ec;
  fs::create_directories(path, ec);
  return !ec || fs::exists(path);
}

void RemoveAll(const std::string& path) {
  std::error_code ec;
  fs::remove_all(path, ec);
}

}  // namespace pregelix
