#ifndef PREGELIX_COMMON_CRASH_DUMP_H_
#define PREGELIX_COMMON_CRASH_DUMP_H_

#include <string>

namespace pregelix {

class Tracer;
class MetricsRegistry;
class EventJournal;

/// Best-effort observability flush on the way out of a dying process.
///
/// Once configured, the trace buffer and/or metrics registry are written to
/// their files on BOTH exit paths:
///   - normal/abnormal exit() (atexit hook), so a driver that bails out
///     mid-job with exit(1) still leaves its trace behind, and
///   - fatal log messages (PREGELIX_CHECK failures) via SetFatalHandler,
///     which runs before abort().
/// DumpNow() is idempotent — whichever path fires first wins, and callers
/// that already export explicitly on success simply make the hook a no-op.
/// The pointed-to tracer/registry must outlive the process (the CLI and
/// bench harness pass the cluster-owned instances, which live until exit).
namespace crash_dump {

/// Events from the journal tail flushed on abnormal exit (JSONL).
inline constexpr size_t kJournalTailEvents = 256;

/// Installs (or re-points) the dump targets. Null tracer/registry/journal
/// or an empty path skips that half. The atexit + fatal hooks are
/// registered on the first call only. When a journal + events_path are set,
/// DumpNow flushes the journal's live spill stream if one is writing to
/// `events_path` already, and otherwise writes the newest
/// kJournalTailEvents events to `events_path` as JSONL.
void Configure(const Tracer* tracer, const std::string& trace_path,
               const MetricsRegistry* registry,
               const std::string& metrics_json_path,
               const std::string& metrics_prom_path = std::string(),
               EventJournal* journal = nullptr,
               const std::string& events_path = std::string(),
               bool events_spill_active = false);

/// Flushes immediately (first caller wins; later calls are no-ops).
/// Explicitly calling this after a successful export makes the exit hooks
/// silent.
void DumpNow();

/// Marks the dump as already taken WITHOUT writing anything, so the exit
/// hooks become no-ops. Callers that export explicitly on success (the CLI
/// writes trace/metrics files itself) use this to keep the atexit hook from
/// re-exporting over the finished files during exit() — by which point
/// thread-local state the exporters touch may already be destructed.
void MarkClean();

}  // namespace crash_dump
}  // namespace pregelix

#endif  // PREGELIX_COMMON_CRASH_DUMP_H_
