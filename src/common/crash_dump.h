#ifndef PREGELIX_COMMON_CRASH_DUMP_H_
#define PREGELIX_COMMON_CRASH_DUMP_H_

#include <string>

namespace pregelix {

class Tracer;
class MetricsRegistry;

/// Best-effort observability flush on the way out of a dying process.
///
/// Once configured, the trace buffer and/or metrics registry are written to
/// their files on BOTH exit paths:
///   - normal/abnormal exit() (atexit hook), so a driver that bails out
///     mid-job with exit(1) still leaves its trace behind, and
///   - fatal log messages (PREGELIX_CHECK failures) via SetFatalHandler,
///     which runs before abort().
/// DumpNow() is idempotent — whichever path fires first wins, and callers
/// that already export explicitly on success simply make the hook a no-op.
/// The pointed-to tracer/registry must outlive the process (the CLI and
/// bench harness pass the cluster-owned instances, which live until exit).
namespace crash_dump {

/// Installs (or re-points) the dump targets. Null tracer/registry or an
/// empty path skips that half. The atexit + fatal hooks are registered on
/// the first call only.
void Configure(const Tracer* tracer, const std::string& trace_path,
               const MetricsRegistry* registry,
               const std::string& metrics_json_path,
               const std::string& metrics_prom_path = std::string());

/// Flushes immediately (first caller wins; later calls are no-ops).
/// Explicitly calling this after a successful export makes the exit hooks
/// silent.
void DumpNow();

}  // namespace crash_dump
}  // namespace pregelix

#endif  // PREGELIX_COMMON_CRASH_DUMP_H_
