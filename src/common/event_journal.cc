#include "common/event_journal.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace pregelix {

namespace {

void AppendJsonEscaped(std::ostream& os, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

int64_t NowWallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

uint64_t NowSteadyNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

void WriteEventJson(std::ostream& os, const JournalEvent& e) {
  os << "{\"seq\":" << e.seq << ",\"wall_us\":" << e.wall_us
     << ",\"steady_ns\":" << e.steady_ns << ",\"category\":\"";
  AppendJsonEscaped(os, e.category);
  os << "\",\"job\":\"";
  AppendJsonEscaped(os, e.job_id);
  os << "\",\"superstep\":" << e.superstep << ",\"kv\":{";
  bool first = true;
  for (const auto& [k, v] : e.kv) {
    if (!first) os << ",";
    first = false;
    os << "\"";
    AppendJsonEscaped(os, k);
    os << "\":\"";
    AppendJsonEscaped(os, v);
    os << "\"";
  }
  os << "}}";
}

EventJournal::EventJournal(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  MutexLock lock(&mutex_);
  ring_.resize(capacity_);
}

uint64_t EventJournal::Append(
    const std::string& category, const std::string& job_id, int64_t superstep,
    std::vector<std::pair<std::string, std::string>> kv) {
  JournalEvent e;
  e.wall_us = NowWallMicros();
  e.steady_ns = NowSteadyNanos();
  e.category = category;
  e.job_id = job_id;
  e.superstep = superstep;
  e.kv = std::move(kv);

  MutexLock lock(&mutex_);
  e.seq = next_seq_++;
  const uint64_t seq = e.seq;
  if (spill_open_) {
    WriteEventJson(spill_, e);
    spill_ << "\n";
    spill_.flush();
  }
  ring_[static_cast<size_t>(seq % capacity_)] = std::move(e);
  return seq;
}

std::vector<JournalEvent> EventJournal::SnapshotSince(uint64_t since_seq,
                                                      size_t limit) const {
  std::vector<JournalEvent> out;
  MutexLock lock(&mutex_);
  const uint64_t last = next_seq_ - 1;
  if (last == 0) return out;
  const uint64_t oldest =
      last > capacity_ ? last - capacity_ + 1 : uint64_t{1};
  uint64_t first = std::max(oldest, since_seq + 1);
  if (first > last) return out;
  if (limit > 0 && last - first + 1 > limit) first = last - limit + 1;
  out.reserve(static_cast<size_t>(last - first + 1));
  for (uint64_t s = first; s <= last; ++s) {
    out.push_back(ring_[static_cast<size_t>(s % capacity_)]);
  }
  return out;
}

void EventJournal::WriteJsonl(std::ostream& os, uint64_t since_seq,
                              size_t limit) const {
  for (const JournalEvent& e : SnapshotSince(since_seq, limit)) {
    WriteEventJson(os, e);
    os << "\n";
  }
}

Status EventJournal::DumpTail(const std::string& path,
                              size_t max_events) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) {
    return Status::IoError("cannot open journal tail output " + path);
  }
  WriteJsonl(out, 0, max_events);
  out.close();
  if (!out.good()) return Status::IoError("short write to " + path);
  return Status::OK();
}

Status EventJournal::SetSpillPath(const std::string& path) {
  MutexLock lock(&mutex_);
  if (spill_open_) {
    spill_.close();
    spill_open_ = false;
  }
  if (path.empty()) return Status::OK();
  spill_.open(path, std::ios::trunc);
  if (!spill_.is_open()) {
    return Status::IoError("cannot open journal spill " + path);
  }
  spill_open_ = true;
  return Status::OK();
}

void EventJournal::FlushSpill() {
  MutexLock lock(&mutex_);
  if (spill_open_) spill_.flush();
}

uint64_t EventJournal::last_seq() const {
  MutexLock lock(&mutex_);
  return next_seq_ - 1;
}

uint64_t EventJournal::dropped() const {
  MutexLock lock(&mutex_);
  const uint64_t last = next_seq_ - 1;
  return last > capacity_ ? last - capacity_ : 0;
}

EventJournal& EventJournal::Global() {
  static EventJournal* journal = new EventJournal();
  return *journal;
}

}  // namespace pregelix
