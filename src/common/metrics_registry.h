#ifndef PREGELIX_COMMON_METRICS_REGISTRY_H_
#define PREGELIX_COMMON_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

// Labeled metrics for the dataflow / storage / Pregel stack.
//
// A MetricsRegistry hands out pointers to named, labeled instruments
// (counters, gauges, histograms). Lookup-or-create takes the registry lock
// once; the returned pointer is stable for the registry's lifetime, so hot
// paths capture it at setup time and then pay one relaxed atomic op per
// update. This subsumes the five fixed WorkerMetrics counters: those remain
// the cost-model input, while the registry carries the labeled,
// per-operator / per-storage-tier breakdown the cost model cannot express.
//
// Naming convention (see DESIGN.md "Observability"):
//   pregelix.<layer>.<name>    e.g. pregelix.buffer.hits
// with labels such as operator, worker, superstep, storage_tier.

namespace pregelix {

/// Label set for one instrument. Keys are normalized (sorted, deduplicated
/// last-wins) so {a=1,b=2} and {b=2,a=1} name the same instrument.
struct MetricLabels {
  std::vector<std::pair<std::string, std::string>> kv;

  MetricLabels() = default;
  MetricLabels(
      std::initializer_list<std::pair<std::string, std::string>> init)
      : kv(init) {}

  MetricLabels& Add(std::string key, std::string value) {
    kv.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  void Normalize();
};

/// Monotonically increasing counter.
class Counter {
 public:
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins signed value.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Histogram over non-negative integer observations (e.g. microseconds,
/// bytes). Power-of-two buckets: bucket 0 holds value 0, bucket i holds
/// [2^(i-1), 2^i). Observe is wait-free; percentiles are estimated at the
/// upper bound of the bucket containing the requested rank, which bounds
/// the error by the bucket width.
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  void Observe(uint64_t value);

  // Acquire pairs with the release in Observe: a snapshot that reads
  // count == n is guaranteed to see at least n bucket increments, so
  // Percentile's rank walk cannot run past the populated buckets while a
  // concurrent Observe is mid-flight.
  uint64_t count() const { return count_.load(std::memory_order_acquire); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  /// Value at percentile p in [0, 100]. 0 when empty.
  uint64_t Percentile(double p) const;

  /// Copies the bucket counters into `out` (kNumBuckets slots) and returns
  /// their sum. Exposition derives its `_count` from this sum — not from
  /// count() — so the `+Inf` bucket always equals `_count` even while
  /// concurrent Observe calls are mid-flight between the bucket increment
  /// and the count increment.
  uint64_t SnapshotBuckets(uint64_t out[kNumBuckets]) const;

 private:
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Lookup-or-create. The returned pointer stays valid for the registry's
  /// lifetime; a (name, labels) pair always resolves to the same instrument.
  /// Registering the same name as two different instrument kinds aborts.
  Counter* GetCounter(const std::string& name, MetricLabels labels = {});
  Gauge* GetGauge(const std::string& name, MetricLabels labels = {});
  Histogram* GetHistogram(const std::string& name, MetricLabels labels = {});

  /// Test/inspection helpers: value of an instrument, 0 if absent.
  uint64_t CounterValue(const std::string& name,
                        const MetricLabels& labels = {}) const;
  int64_t GaugeValue(const std::string& name,
                     const MetricLabels& labels = {}) const;

  /// Number of registered (name, labels) instruments.
  size_t size() const;

  /// Sums counter values across all label sets of `name`.
  uint64_t SumCounters(const std::string& name) const;

  /// Flat JSON dump:
  ///   {"counters":[{"name":...,"labels":{...},"value":N},...],
  ///    "gauges":[...],
  ///    "histograms":[{...,"count":N,"sum":N,"mean":X,"p50":N,...}]}
  /// Deterministically ordered by (name, labels).
  void WriteJson(std::ostream& os) const;
  Status ExportJson(const std::string& path) const;

  /// Prometheus text exposition (format version 0.0.4): one HELP/TYPE pair
  /// per metric family, metric names sanitized to [a-zA-Z0-9_:] ('.' maps
  /// to '_'), label values escaped (backslash, double quote, newline), and
  /// histograms rendered as cumulative `_bucket{le="..."}` series over the
  /// power-of-two bucket bounds plus `+Inf`, `_sum`, and `_count`.
  void WritePrometheus(std::ostream& os) const;
  Status ExportPrometheus(const std::string& path) const;

  /// Process-wide default instance.
  static MetricsRegistry& Global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Entry {
    std::string name;
    MetricLabels labels;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* GetOrCreateLocked(const std::string& name, MetricLabels labels,
                           Kind kind) REQUIRES(mutex_);
  void WriteKindLocked(std::ostream& os, Kind kind) const REQUIRES(mutex_);
  const Entry* FindLocked(const std::string& name,
                          const MetricLabels& labels) const REQUIRES(mutex_);

  mutable Mutex mutex_{"metrics_registry", LockRank::kMetricsRegistry};
  /// Keyed by name + normalized labels; std::map keeps the JSON dump in a
  /// stable, diff-friendly order.
  std::map<std::string, Entry> entries_ GUARDED_BY(mutex_);
};

}  // namespace pregelix

#endif  // PREGELIX_COMMON_METRICS_REGISTRY_H_
