#include "common/fault_injection.h"

#include "common/event_journal.h"
#include "common/hash.h"
#include "common/metrics_registry.h"

namespace pregelix {
namespace fault {

namespace {

const char* ActionName(Action action) {
  switch (action) {
    case Action::kError:
      return "error";
    case Action::kTornWrite:
      return "torn-write";
    case Action::kCrash:
      return "crash";
  }
  return "unknown";
}

/// Records a fire in the event journal. Called after RecordHit returned —
/// no injector lock is held here, so the journal's higher-ranked lock is
/// taken on its own.
void JournalFire(const std::string& point, const FaultSpec& spec,
                 int64_t scope) {
  EventJournal::Global().Append("fault.fire", /*job_id=*/"", scope,
                                {{"point", point},
                                 {"action", ActionName(spec.action)}});
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const std::string& point, FaultSpec spec) {
  MutexLock lock(&mu_);
  if (spec.message.empty()) spec.message = "injected fault at " + point;
  auto it = points_.find(point);
  if (it == points_.end()) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
    points_[point].spec = std::move(spec);
  } else {
    it->second = PointState{};
    it->second.spec = std::move(spec);
  }
}

void FaultInjector::Disarm(const std::string& point) {
  MutexLock lock(&mu_);
  if (points_.erase(point) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::Reset() {
  MutexLock lock(&mu_);
  points_.clear();
  scope_superstep_ = kNoScope;
  armed_count_.store(0, std::memory_order_relaxed);
}

void FaultInjector::SetScope(int64_t superstep) {
  MutexLock lock(&mu_);
  scope_superstep_ = superstep;
}

int64_t FaultInjector::scope() const {
  MutexLock lock(&mu_);
  return scope_superstep_;
}

bool FaultInjector::any_armed() const {
  return armed_count_.load(std::memory_order_relaxed) > 0;
}

bool FaultInjector::RecordHit(const std::string& point, FaultSpec* spec_out) {
  MutexLock lock(&mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return false;
  PointState& state = it->second;
  const FaultSpec& spec = state.spec;
  const uint64_t hit = ++state.hits;  // 1-based
  if (spec.scope_superstep >= 0 && spec.scope_superstep != scope_superstep_) {
    return false;
  }
  if (spec.max_fires > 0 && state.fires >= spec.max_fires) return false;
  bool fire = false;
  switch (spec.trigger) {
    case Trigger::kAlways:
      fire = true;
      break;
    case Trigger::kNthHit:
      fire = (hit == spec.n);
      break;
    case Trigger::kEveryKth:
      fire = (spec.n > 0 && hit % spec.n == 0);
      break;
    case Trigger::kProbability: {
      // Stateless per-hit decision: depends only on (point, seed, hit), so
      // a fixed hit sequence replays the same schedule regardless of
      // thread interleaving between *different* points.
      const uint64_t h = Hash64(point.data(), point.size(), spec.seed ^ hit);
      const double u =
          static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);
      fire = (u < spec.probability);
      break;
    }
  }
  if (!fire) return false;
  ++state.fires;
  *spec_out = spec;
  MetricsRegistry::Global()
      .GetCounter("pregelix.fault.fires", {{"point", point}})
      ->Increment();
  return true;
}

Status FaultInjector::MaybeFail(const std::string& point) {
  FaultSpec spec;
  if (!RecordHit(point, &spec)) return Status::OK();
  JournalFire(point, spec, scope());
  if (spec.action == Action::kCrash) {
    return Status::Aborted("simulated crash at " + point);
  }
  return Status(spec.code, spec.message);
}

Status FaultInjector::MaybeFailWrite(const std::string& point, size_t* len) {
  FaultSpec spec;
  if (!RecordHit(point, &spec)) return Status::OK();
  JournalFire(point, spec, scope());
  if (spec.action == Action::kTornWrite) {
    *len = *len / 2;  // write a prefix, then fail: a torn write
  } else {
    *len = 0;
  }
  if (spec.action == Action::kCrash) {
    return Status::Aborted("simulated crash at " + point);
  }
  return Status(spec.code, spec.message);
}

PointStats FaultInjector::Stats(const std::string& point) const {
  MutexLock lock(&mu_);
  auto it = points_.find(point);
  PointStats stats;
  if (it != points_.end()) {
    stats.hits = it->second.hits;
    stats.fires = it->second.fires;
  }
  return stats;
}

}  // namespace fault
}  // namespace pregelix
