#ifndef PREGELIX_COMMON_TEMP_DIR_H_
#define PREGELIX_COMMON_TEMP_DIR_H_

#include <string>

namespace pregelix {

/// RAII scratch directory; removed recursively on destruction.
///
/// Tests and benchmarks create one per run; the cluster places per-worker
/// scratch subdirectories and the simulated DFS under it.
class TempDir {
 public:
  /// Creates a unique directory under $TMPDIR (or /tmp) with the prefix.
  explicit TempDir(const std::string& prefix = "pregelix");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }

  /// Creates (if needed) and returns a subdirectory path.
  std::string Sub(const std::string& name) const;

  /// Keeps the directory on destruction (for debugging).
  void Keep() { keep_ = true; }

 private:
  std::string path_;
  bool keep_ = false;
};

/// mkdir -p. Returns false on failure.
bool EnsureDir(const std::string& path);

/// rm -rf. Missing path is not an error.
void RemoveAll(const std::string& path);

}  // namespace pregelix

#endif  // PREGELIX_COMMON_TEMP_DIR_H_
