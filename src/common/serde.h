#ifndef PREGELIX_COMMON_SERDE_H_
#define PREGELIX_COMMON_SERDE_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "common/slice.h"

namespace pregelix {

// Little-endian fixed-width encoding, used inside tuples and pages.

inline void EncodeFixed32(char* dst, uint32_t v) { memcpy(dst, &v, 4); }
inline void EncodeFixed64(char* dst, uint64_t v) { memcpy(dst, &v, 8); }
inline uint32_t DecodeFixed32(const char* src) {
  uint32_t v;
  memcpy(&v, src, 4);
  return v;
}
inline uint64_t DecodeFixed64(const char* src) {
  uint64_t v;
  memcpy(&v, src, 8);
  return v;
}

inline void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4];
  EncodeFixed32(buf, v);
  dst->append(buf, 4);
}
inline void PutFixed64(std::string* dst, uint64_t v) {
  char buf[8];
  EncodeFixed64(buf, v);
  dst->append(buf, 8);
}
inline void PutDouble(std::string* dst, double v) {
  char buf[8];
  memcpy(buf, &v, 8);
  dst->append(buf, 8);
}
inline double DecodeDouble(const char* src) {
  double v;
  memcpy(&v, src, 8);
  return v;
}

/// Length-prefixed byte string.
inline void PutLengthPrefixed(std::string* dst, const Slice& s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}
/// Reads a length-prefixed byte string from `input`, advancing it. Returns
/// false on truncation.
inline bool GetLengthPrefixed(Slice* input, Slice* out) {
  if (input->size() < 4) return false;
  uint32_t len = DecodeFixed32(input->data());
  input->remove_prefix(4);
  if (input->size() < len) return false;
  *out = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

// Big-endian (order-preserving) encodings for index keys: memcmp order on
// the encoded bytes equals numeric order on the value.

/// Encodes a signed 64-bit vertex id into 8 bytes whose memcmp order matches
/// the numeric order (sign bit flipped, big-endian).
inline void EncodeOrderedI64(char* dst, int64_t value) {
  uint64_t u = static_cast<uint64_t>(value) ^ (1ull << 63);
  for (int i = 7; i >= 0; --i) {
    dst[7 - i] = static_cast<char>((u >> (i * 8)) & 0xff);
  }
}
inline int64_t DecodeOrderedI64(const char* src) {
  uint64_t u = 0;
  for (int i = 0; i < 8; ++i) {
    u = (u << 8) | static_cast<uint8_t>(src[i]);
  }
  return static_cast<int64_t>(u ^ (1ull << 63));
}
inline std::string OrderedKeyI64(int64_t value) {
  std::string s(8, '\0');
  EncodeOrderedI64(s.data(), value);
  return s;
}

}  // namespace pregelix

#endif  // PREGELIX_COMMON_SERDE_H_
