#ifndef PREGELIX_COMMON_RANDOM_H_
#define PREGELIX_COMMON_RANDOM_H_

#include <cstdint>

namespace pregelix {

/// Deterministic xorshift128+ generator. All data generation in the repo is
/// seeded so experiments and tests are reproducible bit-for-bit.
class Random {
 public:
  explicit Random(uint64_t seed = 0x853c49e6748fea9bull) {
    s0_ = seed ^ 0x9e3779b97f4a7c15ull;
    s1_ = seed * 0xbf58476d1ce4e5b9ull + 1;
    // Warm up so nearby seeds diverge.
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n).
  uint64_t Uniform(uint64_t n) { return n == 0 ? 0 : Next() % n; }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-like skewed value in [0, n): value v is drawn with probability
  /// proportional to 1/(v+1)^theta, approximated via rejection-free inverse
  /// power sampling. Used for power-law out-degree and endpoint selection.
  uint64_t Skewed(uint64_t n, double theta = 0.99);

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace pregelix

#endif  // PREGELIX_COMMON_RANDOM_H_
