#include "common/crash_dump.h"

#include <atomic>
#include <cstdlib>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/trace.h"

namespace pregelix {
namespace crash_dump {

namespace {

// Configured targets. Plain pointers + strings behind an atomic "configured"
// flag: Configure runs before any worker threads exist, and the dump paths
// (atexit, fatal handler) are single-shot via g_dumped.
struct Targets {
  const Tracer* tracer = nullptr;
  std::string trace_path;
  const MetricsRegistry* registry = nullptr;
  std::string metrics_json_path;
  std::string metrics_prom_path;
};

Targets& targets() {
  static Targets* t = new Targets();  // leaked: must survive atexit order
  return *t;
}

std::atomic<bool> g_hooks_installed{false};
std::atomic<bool> g_dumped{false};

void AtExitDump() { DumpNow(); }

}  // namespace

void DumpNow() {
  if (g_dumped.exchange(true)) return;
  const Targets& t = targets();
  if (t.tracer != nullptr && !t.trace_path.empty()) {
    const Status s = t.tracer->ExportChromeTrace(t.trace_path);
    if (!s.ok()) {
      PLOG(Warn) << "crash-dump trace export failed: " << s.ToString();
    }
  }
  if (t.registry != nullptr) {
    if (!t.metrics_json_path.empty()) {
      const Status s = t.registry->ExportJson(t.metrics_json_path);
      if (!s.ok()) {
        PLOG(Warn) << "crash-dump metrics export failed: " << s.ToString();
      }
    }
    if (!t.metrics_prom_path.empty()) {
      const Status s = t.registry->ExportPrometheus(t.metrics_prom_path);
      if (!s.ok()) {
        PLOG(Warn) << "crash-dump metrics export failed: " << s.ToString();
      }
    }
  }
}

void Configure(const Tracer* tracer, const std::string& trace_path,
               const MetricsRegistry* registry,
               const std::string& metrics_json_path,
               const std::string& metrics_prom_path) {
  Targets& t = targets();
  t.tracer = tracer;
  t.trace_path = trace_path;
  t.registry = registry;
  t.metrics_json_path = metrics_json_path;
  t.metrics_prom_path = metrics_prom_path;
  g_dumped = false;  // re-arming after an explicit DumpNow is intentional
  if (!g_hooks_installed.exchange(true)) {
    std::atexit(AtExitDump);
    SetFatalHandler(&DumpNow);
  }
}

}  // namespace crash_dump
}  // namespace pregelix
