#include "common/crash_dump.h"

#include <atomic>
#include <cstdlib>

#include "common/event_journal.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/trace.h"

namespace pregelix {
namespace crash_dump {

namespace {

// Configured targets. Plain pointers + strings behind an atomic "configured"
// flag: Configure runs before any worker threads exist, and the dump paths
// (atexit, fatal handler) are single-shot via g_dumped.
struct Targets {
  const Tracer* tracer = nullptr;
  std::string trace_path;
  const MetricsRegistry* registry = nullptr;
  std::string metrics_json_path;
  std::string metrics_prom_path;
  EventJournal* journal = nullptr;
  std::string events_path;
  /// True when the journal is already live-spilling to events_path: the
  /// dump then only flushes the spill stream instead of truncating the
  /// full on-disk journal down to the in-memory tail.
  bool events_spill_active = false;
};

Targets& targets() {
  static Targets* t = new Targets();  // leaked: must survive atexit order
  return *t;
}

std::atomic<bool> g_hooks_installed{false};
std::atomic<bool> g_dumped{false};

void AtExitDump() { DumpNow(); }

}  // namespace

void DumpNow() {
  if (g_dumped.exchange(true)) return;
  const Targets& t = targets();
  if (t.tracer != nullptr && !t.trace_path.empty()) {
    const Status s = t.tracer->ExportChromeTrace(t.trace_path);
    if (!s.ok()) {
      PLOG(Warn) << "crash-dump trace export failed: " << s.ToString();
    }
  }
  if (t.registry != nullptr) {
    if (!t.metrics_json_path.empty()) {
      const Status s = t.registry->ExportJson(t.metrics_json_path);
      if (!s.ok()) {
        PLOG(Warn) << "crash-dump metrics export failed: " << s.ToString();
      }
    }
    if (!t.metrics_prom_path.empty()) {
      const Status s = t.registry->ExportPrometheus(t.metrics_prom_path);
      if (!s.ok()) {
        PLOG(Warn) << "crash-dump metrics export failed: " << s.ToString();
      }
    }
  }
  if (t.journal != nullptr) {
    if (t.events_spill_active) {
      t.journal->FlushSpill();
    } else if (!t.events_path.empty()) {
      const Status s =
          t.journal->DumpTail(t.events_path, kJournalTailEvents);
      if (!s.ok()) {
        PLOG(Warn) << "crash-dump journal export failed: " << s.ToString();
      }
    }
  }
}

void MarkClean() { g_dumped.store(true); }

void Configure(const Tracer* tracer, const std::string& trace_path,
               const MetricsRegistry* registry,
               const std::string& metrics_json_path,
               const std::string& metrics_prom_path, EventJournal* journal,
               const std::string& events_path, bool events_spill_active) {
  Targets& t = targets();
  t.tracer = tracer;
  t.trace_path = trace_path;
  t.registry = registry;
  t.metrics_json_path = metrics_json_path;
  t.metrics_prom_path = metrics_prom_path;
  t.journal = journal;
  t.events_path = events_path;
  t.events_spill_active = events_spill_active;
  g_dumped = false;  // re-arming after an explicit DumpNow is intentional
  if (!g_hooks_installed.exchange(true)) {
    std::atexit(AtExitDump);
    SetFatalHandler(&DumpNow);
  }
}

}  // namespace crash_dump
}  // namespace pregelix
