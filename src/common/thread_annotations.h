#ifndef PREGELIX_COMMON_THREAD_ANNOTATIONS_H_
#define PREGELIX_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis attributes (-Wthread-safety), compiled to
// nothing on other compilers. Build with
//   cmake -DPREGELIX_THREAD_SAFETY_ANALYSIS=ON   (requires clang)
// to promote these declarations into compile errors. The vocabulary and
// macro names follow the Clang documentation so the annotations read the
// same here as in abseil/LLVM code:
//
//   GUARDED_BY(mu)     a field that may only be touched with mu held
//   REQUIRES(mu)       a function that must be called with mu held
//   EXCLUDES(mu)       a function that must be called with mu NOT held
//   ACQUIRE/RELEASE    functions that take / drop mu themselves
//   CAPABILITY         marks a class as a lockable capability (Mutex)
//   SCOPED_CAPABILITY  marks an RAII lock holder (MutexLock)
//
// See DESIGN.md §12 for which structure is guarded by which lock and the
// global lock-rank order the runtime detector enforces.

#if defined(__clang__) && (!defined(SWIG))
#define PREGELIX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define PREGELIX_THREAD_ANNOTATION(x)  // no-op
#endif

#define CAPABILITY(x) PREGELIX_THREAD_ANNOTATION(capability(x))

#define SCOPED_CAPABILITY PREGELIX_THREAD_ANNOTATION(scoped_lockable)

#define GUARDED_BY(x) PREGELIX_THREAD_ANNOTATION(guarded_by(x))

#define PT_GUARDED_BY(x) PREGELIX_THREAD_ANNOTATION(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  PREGELIX_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  PREGELIX_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  PREGELIX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  PREGELIX_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  PREGELIX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  PREGELIX_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  PREGELIX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  PREGELIX_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  PREGELIX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define TRY_ACQUIRE_SHARED(...) \
  PREGELIX_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) PREGELIX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  PREGELIX_THREAD_ANNOTATION(assert_capability(x))

#define RETURN_CAPABILITY(x) PREGELIX_THREAD_ANNOTATION(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  PREGELIX_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // PREGELIX_COMMON_THREAD_ANNOTATIONS_H_
