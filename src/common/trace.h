#ifndef PREGELIX_COMMON_TRACE_H_
#define PREGELIX_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

// Operator-level tracing for the dataflow / storage / Pregel stack.
//
// A Tracer records nested spans (name, category, worker, start, duration,
// counter deltas) into per-thread buffers: a recording thread appends to a
// buffer only it writes, so the hot path takes no shared lock (the registry
// lock is paid once per thread, when its buffer is created). Export produces
// either Chrome `trace_event` JSON — loadable in chrome://tracing and
// Perfetto, with one track per simulated worker — or a flat per-span-name
// summary for machine diffing.
//
// Cost when off: a span construction is one relaxed atomic load. Compiling
// with -DPREGELIX_DISABLE_TRACING removes even that (TraceSpan becomes an
// empty object and nothing is recorded, regardless of runtime flags).

namespace pregelix {

/// Span categories; exported as the Chrome `cat` field. Free-form strings
/// are allowed, but the instrumented layers stick to this taxonomy so
/// traces can be filtered per layer (see DESIGN.md "Observability").
namespace trace_cat {
inline constexpr const char* kDataflow = "dataflow";
inline constexpr const char* kOperator = "operator";
inline constexpr const char* kStorage = "storage";
inline constexpr const char* kBuffer = "buffer";
inline constexpr const char* kPregel = "pregel";
}  // namespace trace_cat

/// Worker id used for spans emitted by the driver (the superstep loop),
/// which runs outside any simulated worker. Exported as its own track.
inline constexpr int kTraceDriverWorker = -1;

/// One completed span. `args` carries small integer annotations (superstep
/// number, counter deltas, tuple counts) into the Chrome `args` object.
struct TraceEvent {
  std::string name;
  const char* category = trace_cat::kDataflow;
  int worker = 0;
  int tid = 0;  ///< recording-thread track, assigned per thread buffer
  uint64_t start_us = 0;
  uint64_t duration_us = 0;
  std::vector<std::pair<std::string, int64_t>> args;
};

class Tracer {
 public:
  Tracer();
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Runtime switch. Spans started while disabled record nothing.
  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Microseconds since this tracer was constructed (the trace timebase).
  uint64_t NowMicros() const;

  /// Appends one finished event to the calling thread's buffer.
  void Record(TraceEvent event);

  /// Merged copy of all buffers, ordered by start time.
  std::vector<TraceEvent> Collect() const;

  /// Total recorded events across all thread buffers.
  size_t event_count() const;

  /// Drops all recorded events (buffers stay registered).
  void Clear();

  /// Chrome trace_event JSON: {"traceEvents":[...]} with one "X" (complete)
  /// event per span plus process_name metadata naming each worker track.
  void WriteChromeTrace(std::ostream& os) const;
  Status ExportChromeTrace(const std::string& path) const;

  /// Flat aggregation: per (category, name) count / total / min / max
  /// microseconds, as a JSON array sorted by total descending.
  void WriteSummaryJson(std::ostream& os) const;

  /// Process-wide default instance (disabled until Enable()).
  static Tracer& Global();

 private:
  friend class TraceSpan;

  struct ThreadBuffer {
    /// Ranked after registry_mutex_: Collect/Clear/event_count hold the
    /// registry lock while visiting each buffer; the recording owner takes
    /// only its own buffer lock.
    mutable Mutex mutex{"trace_buffer", LockRank::kTraceBuffer};
    std::vector<TraceEvent> events GUARDED_BY(mutex);
    int tid = 0;  ///< written once at creation, by the owning thread
  };

  /// The calling thread's buffer for this tracer (created on first use).
  ThreadBuffer* GetThreadBuffer();

  const uint64_t tracer_id_;  ///< process-unique, never reused
  std::atomic<bool> enabled_{false};
  uint64_t epoch_ns_ = 0;  ///< steady-clock origin of the timebase

  mutable Mutex registry_mutex_{"trace_registry", LockRank::kTraceRegistry};
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      GUARDED_BY(registry_mutex_);
};

/// RAII span: records one complete event from construction to destruction.
/// When the tracer is null or disabled at construction time the span is
/// inert — destruction and AddArg cost nothing.
class TraceSpan {
 public:
#ifndef PREGELIX_DISABLE_TRACING
  TraceSpan(Tracer* tracer, std::string name, const char* category,
            int worker, const WorkerMetrics* metrics = nullptr)
      : tracer_(tracer != nullptr && tracer->enabled() ? tracer : nullptr) {
    if (tracer_ == nullptr) return;
    event_.name = std::move(name);
    event_.category = category;
    event_.worker = worker;
    event_.start_us = tracer_->NowMicros();
    metrics_ = metrics;
    if (metrics_ != nullptr) entry_ = metrics_->Snapshot();
  }

  ~TraceSpan() { End(); }

  /// Attaches an integer annotation (exported into Chrome `args`).
  void AddArg(const char* key, int64_t value) {
    if (tracer_ != nullptr) event_.args.emplace_back(key, value);
  }

  bool active() const { return tracer_ != nullptr; }

  /// Ends the span early (idempotent). Counter deltas against the entry
  /// snapshot are appended as args when a meter was supplied.
  void End() {
    if (tracer_ == nullptr) return;
    event_.duration_us = tracer_->NowMicros() - event_.start_us;
    if (metrics_ != nullptr) {
      const MetricsSnapshot d = metrics_->Snapshot() - entry_;
      if (d.cpu_ops != 0) AddArg("cpu_ops", static_cast<int64_t>(d.cpu_ops));
      if (d.disk_read_bytes != 0) {
        AddArg("disk_read_bytes", static_cast<int64_t>(d.disk_read_bytes));
      }
      if (d.disk_write_bytes != 0) {
        AddArg("disk_write_bytes", static_cast<int64_t>(d.disk_write_bytes));
      }
      if (d.disk_seeks != 0) {
        AddArg("disk_seeks", static_cast<int64_t>(d.disk_seeks));
      }
      if (d.net_bytes != 0) {
        AddArg("net_bytes", static_cast<int64_t>(d.net_bytes));
      }
    }
    Tracer* t = tracer_;
    tracer_ = nullptr;
    t->Record(std::move(event_));
  }

 private:
  Tracer* tracer_ = nullptr;
  const WorkerMetrics* metrics_ = nullptr;
  MetricsSnapshot entry_;
  TraceEvent event_;
#else
  TraceSpan(Tracer*, std::string, const char*, int,
            const WorkerMetrics* = nullptr) {}
  void AddArg(const char*, int64_t) {}
  bool active() const { return false; }
  void End() {}
#endif

 public:
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
};

}  // namespace pregelix

#endif  // PREGELIX_COMMON_TRACE_H_
