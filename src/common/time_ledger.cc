#include "common/time_ledger.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "common/metrics_registry.h"

namespace pregelix {

namespace {

/// Lock rows exported to Prometheus (top-k by wait time); the JSON surface
/// carries the full table.
constexpr size_t kPrometheusLockTopK = 16;

/// Pseudo-worker ids render as names; real workers as their index.
std::string WorkerKey(int worker) {
  switch (worker) {
    case TimeLedger::kDriverWorker:
      return "driver";
    case TimeLedger::kServerWorker:
      return "server";
    case TimeLedger::kOverlapWorker:
      return "overlap";
    default:
      return std::to_string(worker);
  }
}

void AppendJsonString(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

/// Nanoseconds as decimal seconds with full nanosecond precision, so the
/// ledger's Prometheus families and its JSON report identical totals.
void AppendSeconds(std::ostream& os, int64_t ns) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9f", static_cast<double>(ns) / 1e9);
  os << buf;
}

void WriteCategoryObject(
    std::ostream& os, const std::array<int64_t, kNumTimeCategories>& ns,
    bool nonzero_only) {
  os << '{';
  bool first = true;
  for (int c = 0; c < kNumTimeCategories; ++c) {
    if (nonzero_only && ns[c] == 0) continue;
    if (!first) os << ',';
    first = false;
    os << '"' << kTimeCategoryNames[c] << "\":" << ns[c];
  }
  os << '}';
}

}  // namespace

int64_t TimeLedgerSnapshot::attributed_ns() const {
  int64_t sum = 0;
  for (int64_t v : category_ns) sum += v;
  return sum;
}

std::map<std::string, int64_t> TimeLedgerSnapshot::ByLabel(
    TimeCategory c) const {
  std::map<std::string, int64_t> out;
  for (const Cell& cell : cells) {
    if (cell.label.empty()) continue;
    const int64_t v = cell.ns[static_cast<int>(c)];
    if (v != 0) out[cell.label] += v;
  }
  return out;
}

namespace ledger_internal {

/// Per-thread accounting state. The owner thread is the only writer of
/// `acc`/`current`/`last_switch_ns` (relaxed atomics so snapshots may read
/// them live); `stack` is owner-only and never read elsewhere.
struct ThreadRecord {
  int worker = 0;
  std::string label;
  uint64_t attach_ns = 0;
  std::atomic<int> current{static_cast<int>(TimeCategory::kCompute)};
  std::atomic<uint64_t> last_switch_ns{0};
  std::array<std::atomic<int64_t>, kNumTimeCategories> acc{};
  std::vector<int> stack;  ///< suspended parent categories, owner-only
};

}  // namespace ledger_internal

namespace {

thread_local ledger_internal::ThreadRecord* tls_record = nullptr;

/// Charges [last_switch, now) to the current category. Owner thread only;
/// `now` never precedes `last_switch_ns` there (same steady clock).
void Settle(ledger_internal::ThreadRecord* r, uint64_t now_ns) {
  const uint64_t last = r->last_switch_ns.load(std::memory_order_relaxed);
  r->acc[static_cast<size_t>(r->current.load(std::memory_order_relaxed))]
      .fetch_add(static_cast<int64_t>(now_ns - last),
                 std::memory_order_relaxed);
  r->last_switch_ns.store(now_ns, std::memory_order_relaxed);
}

}  // namespace

TimeLedger::TimeLedger() = default;
TimeLedger::~TimeLedger() = default;

TimeLedger& TimeLedger::Global() {
  // Deliberately leaked: worker threads may detach during process exit,
  // after static destructors would have run.
  static TimeLedger* instance = new TimeLedger();
  return *instance;
}

uint64_t TimeLedger::NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool TimeLedger::CurrentThreadAttached() { return tls_record != nullptr; }

bool TimeLedger::AttachCurrentThread(int worker, TimeCategory base,
                                     std::string label) {
  TimeLedger& ledger = Global();
  if (!ledger.enabled() || tls_record != nullptr) return false;
  auto rec = std::make_unique<ThreadRecord>();
  rec->worker = worker;
  rec->label = std::move(label);
  const uint64_t now = NowNs();
  rec->attach_ns = now;
  rec->last_switch_ns.store(now, std::memory_order_relaxed);
  rec->current.store(static_cast<int>(base), std::memory_order_relaxed);
  tls_record = rec.get();
  std::lock_guard<std::mutex> lock(ledger.registry_mu_);
  ledger.live_.push_back(std::move(rec));
  return true;
}

void TimeLedger::DetachCurrentThread() {
  ThreadRecord* r = tls_record;
  if (r == nullptr) return;
  TimeLedger& ledger = Global();
  const uint64_t now = NowNs();
  Settle(r, now);
  // Guards that outlive their thread's attachment are misuse; the time they
  // bracketed is already settled, so conservation is unaffected.
  if (!r->stack.empty()) {
    ledger.misuse_count_.fetch_add(static_cast<int64_t>(r->stack.size()),
                                   std::memory_order_relaxed);
  }
  const int64_t elapsed = static_cast<int64_t>(now - r->attach_ns);
  int64_t attributed = 0;
  for (const auto& a : r->acc) {
    attributed += a.load(std::memory_order_relaxed);
  }
  const int64_t drift = elapsed - attributed;
  // Exact by construction: every transition settles against the same clock
  // this detach read. Any residue is a ledger bug, not measurement noise.
  PREGELIX_DCHECK(drift == 0)
      << "time ledger conservation violated on detach: elapsed " << elapsed
      << " ns vs attributed " << attributed << " ns (worker " << r->worker
      << ", label '" << r->label << "')";
  if (drift != 0) {
    ledger.unattributed_ns_.fetch_add(drift < 0 ? -drift : drift,
                                      std::memory_order_relaxed);
  }
  tls_record = nullptr;
  std::lock_guard<std::mutex> lock(ledger.registry_mu_);
  ledger.FoldLocked(r, now);
  for (auto it = ledger.live_.begin(); it != ledger.live_.end(); ++it) {
    if (it->get() == r) {
      ledger.live_.erase(it);
      break;
    }
  }
}

void TimeLedger::FoldLocked(ThreadRecord* rec, uint64_t now_ns) {
  auto& folded = folded_[{rec->worker, rec->label}];
  for (int c = 0; c < kNumTimeCategories; ++c) {
    folded[static_cast<size_t>(c)] +=
        rec->acc[static_cast<size_t>(c)].load(std::memory_order_relaxed);
  }
  folded_elapsed_ns_ += static_cast<int64_t>(now_ns - rec->attach_ns);
}

void TimeLedger::Reattribute(TimeCategory to, uint64_t ns) {
  ThreadRecord* r = tls_record;
  if (r == nullptr || ns == 0) return;
  const uint64_t now = NowNs();
  Settle(r, now);
  const size_t cur =
      static_cast<size_t>(r->current.load(std::memory_order_relaxed));
  if (cur == static_cast<size_t>(to)) return;
  // Signed accumulators: overlapping reattributions (a contended cv
  // reacquisition inside a measured overlap wait) may transiently drive a
  // bucket negative; the sum — and so conservation — is untouched.
  r->acc[cur].fetch_sub(static_cast<int64_t>(ns), std::memory_order_relaxed);
  r->acc[static_cast<size_t>(to)].fetch_add(static_cast<int64_t>(ns),
                                            std::memory_order_relaxed);
}

void TimeLedger::ChargeLockWait(const char* lock_name, uint64_t ns) {
  ThreadRecord* r = tls_record;
  if (r == nullptr || ns == 0) return;
  Reattribute(TimeCategory::kLockWait, ns);
  Global().AddLockWait(lock_name, ns);
}

void TimeLedger::AddLockWait(const char* name, uint64_t ns) {
  for (LockSlot& slot : lock_slots_) {
    const char* cur = slot.name.load(std::memory_order_acquire);
    if (cur == nullptr) {
      if (!slot.name.compare_exchange_strong(cur, name,
                                             std::memory_order_acq_rel)) {
        // Lost the claim; `cur` now holds the winner's name.
        if (cur != name && std::strcmp(cur, name) != 0) continue;
      }
    } else if (cur != name && std::strcmp(cur, name) != 0) {
      continue;
    }
    slot.ns.fetch_add(static_cast<int64_t>(ns), std::memory_order_relaxed);
    slot.count.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  lock_overflow_.ns.fetch_add(static_cast<int64_t>(ns),
                              std::memory_order_relaxed);
  lock_overflow_.count.fetch_add(1, std::memory_order_relaxed);
}

TimeLedgerSnapshot TimeLedger::TakeSnapshot() const {
  TimeLedgerSnapshot snap;
  const uint64_t now = NowNs();
  std::map<std::pair<int, std::string>,
           std::array<int64_t, kNumTimeCategories>>
      cells;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    cells = folded_;
    snap.elapsed_ns = folded_elapsed_ns_;
    for (const auto& rec : live_) {
      auto& cell = cells[{rec->worker, rec->label}];
      for (int c = 0; c < kNumTimeCategories; ++c) {
        cell[static_cast<size_t>(c)] +=
            rec->acc[static_cast<size_t>(c)].load(std::memory_order_relaxed);
      }
      // In-flight time of the live thread's current interval. Racing the
      // owner's own settle can mis-slot up to one interval — snapshot
      // jitter only; detach-time accounting is exact.
      const uint64_t last =
          rec->last_switch_ns.load(std::memory_order_relaxed);
      const int cur = rec->current.load(std::memory_order_relaxed);
      if (now > last) {
        cell[static_cast<size_t>(cur)] += static_cast<int64_t>(now - last);
      }
      if (now > rec->attach_ns) {
        snap.elapsed_ns += static_cast<int64_t>(now - rec->attach_ns);
      }
    }
  }
  for (auto& [key, ns] : cells) {
    TimeLedgerSnapshot::Cell cell;
    cell.worker = key.first;
    cell.label = key.second;
    cell.ns = ns;
    for (int c = 0; c < kNumTimeCategories; ++c) {
      snap.category_ns[static_cast<size_t>(c)] += ns[static_cast<size_t>(c)];
    }
    snap.cells.push_back(std::move(cell));
  }
  std::map<std::string, std::pair<int64_t, int64_t>> locks;
  for (const LockSlot& slot : lock_slots_) {
    const char* name = slot.name.load(std::memory_order_acquire);
    if (name == nullptr) continue;
    auto& row = locks[name];
    row.first += slot.ns.load(std::memory_order_relaxed);
    row.second += slot.count.load(std::memory_order_relaxed);
  }
  if (lock_overflow_.count.load(std::memory_order_relaxed) != 0) {
    auto& row = locks["other"];
    row.first += lock_overflow_.ns.load(std::memory_order_relaxed);
    row.second += lock_overflow_.count.load(std::memory_order_relaxed);
  }
  for (const auto& [name, row] : locks) {
    snap.locks.push_back({name, row.first, row.second});
  }
  std::stable_sort(snap.locks.begin(), snap.locks.end(),
                   [](const TimeLedgerSnapshot::LockWait& a,
                      const TimeLedgerSnapshot::LockWait& b) {
                     return a.ns > b.ns;
                   });
  snap.unattributed_ns = unattributed_ns_.load(std::memory_order_relaxed);
  snap.misuse_count = misuse_count_.load(std::memory_order_relaxed);
  return snap;
}

void TimeLedger::PublishMetrics(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->GetGauge("pregelix.ledger.unattributed_ns")
      ->Set(unattributed_ns_.load(std::memory_order_relaxed));
  registry->GetGauge("pregelix.ledger.guard_misuse")
      ->Set(misuse_count_.load(std::memory_order_relaxed));
}

void TimeLedger::WriteJson(std::ostream& os) const {
  const TimeLedgerSnapshot snap = TakeSnapshot();
  os << "{\"elapsed_ns\":" << snap.elapsed_ns
     << ",\"attributed_ns\":" << snap.attributed_ns()
     << ",\"unattributed_ns\":" << snap.unattributed_ns
     << ",\"guard_misuse\":" << snap.misuse_count << ",\"categories\":";
  WriteCategoryObject(os, snap.category_ns, /*nonzero_only=*/false);
  // Per-worker rollup (labels merged).
  std::map<int, std::array<int64_t, kNumTimeCategories>> by_worker;
  for (const auto& cell : snap.cells) {
    auto& w = by_worker[cell.worker];
    for (int c = 0; c < kNumTimeCategories; ++c) {
      w[static_cast<size_t>(c)] += cell.ns[static_cast<size_t>(c)];
    }
  }
  os << ",\"workers\":{";
  bool first = true;
  for (const auto& [worker, ns] : by_worker) {
    if (!first) os << ',';
    first = false;
    AppendJsonString(os, WorkerKey(worker));
    os << ':';
    WriteCategoryObject(os, ns, /*nonzero_only=*/true);
  }
  os << "},\"operators\":{";
  std::map<std::string, std::array<int64_t, kNumTimeCategories>> by_label;
  for (const auto& cell : snap.cells) {
    if (cell.label.empty()) continue;
    auto& l = by_label[cell.label];
    for (int c = 0; c < kNumTimeCategories; ++c) {
      l[static_cast<size_t>(c)] += cell.ns[static_cast<size_t>(c)];
    }
  }
  first = true;
  for (const auto& [label, ns] : by_label) {
    if (!first) os << ',';
    first = false;
    AppendJsonString(os, label);
    os << ':';
    WriteCategoryObject(os, ns, /*nonzero_only=*/true);
  }
  os << "},\"locks\":{";
  first = true;
  for (const auto& lw : snap.locks) {
    if (!first) os << ',';
    first = false;
    AppendJsonString(os, lw.name);
    os << ":{\"ns\":" << lw.ns << ",\"count\":" << lw.count << '}';
  }
  os << "}}";
}

void TimeLedger::WriteCollapsed(std::ostream& os) const {
  const TimeLedgerSnapshot snap = TakeSnapshot();
  for (const auto& cell : snap.cells) {
    for (int c = 0; c < kNumTimeCategories; ++c) {
      const int64_t ns = cell.ns[static_cast<size_t>(c)];
      if (ns <= 0) continue;
      os << WorkerKey(cell.worker) << ';'
         << (cell.label.empty() ? "-" : cell.label) << ';'
         << kTimeCategoryNames[c] << ' ' << ns << '\n';
    }
  }
}

void TimeLedger::WritePrometheus(std::ostream& os) const {
  const TimeLedgerSnapshot snap = TakeSnapshot();
  os << "# HELP pregelix_time_seconds_total Attributed worker wall time by "
        "ledger category (DESIGN.md section 20).\n"
        "# TYPE pregelix_time_seconds_total counter\n";
  std::map<int, std::array<int64_t, kNumTimeCategories>> by_worker;
  for (const auto& cell : snap.cells) {
    auto& w = by_worker[cell.worker];
    for (int c = 0; c < kNumTimeCategories; ++c) {
      w[static_cast<size_t>(c)] += cell.ns[static_cast<size_t>(c)];
    }
  }
  for (const auto& [worker, ns] : by_worker) {
    for (int c = 0; c < kNumTimeCategories; ++c) {
      if (ns[static_cast<size_t>(c)] == 0) continue;
      os << "pregelix_time_seconds_total{category=\"" << kTimeCategoryNames[c]
         << "\",worker=\"" << WorkerKey(worker) << "\"} ";
      AppendSeconds(os, ns[static_cast<size_t>(c)]);
      os << '\n';
    }
  }
  os << "# HELP pregelix_lock_wait_seconds_total Contended pregelix::Mutex "
        "wait time by static lock name (top-" << kPrometheusLockTopK
     << ").\n# TYPE pregelix_lock_wait_seconds_total counter\n";
  for (size_t i = 0; i < snap.locks.size() && i < kPrometheusLockTopK; ++i) {
    os << "pregelix_lock_wait_seconds_total{lock=\"" << snap.locks[i].name
       << "\"} ";
    AppendSeconds(os, snap.locks[i].ns);
    os << '\n';
  }
  const std::map<std::string, int64_t> io_wait =
      snap.ByLabel(TimeCategory::kIoWait);
  os << "# HELP pregelix_io_wait_seconds_total Overlap I/O wait by operator "
        "(the ledger io_wait bucket, per-operator).\n"
        "# TYPE pregelix_io_wait_seconds_total counter\n";
  for (const auto& [label, ns] : io_wait) {
    os << "pregelix_io_wait_seconds_total{operator=\"" << label << "\"} ";
    AppendSeconds(os, ns);
    os << '\n';
  }
}

void TimeLedger::Reset() {
  const uint64_t now = NowNs();
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    folded_.clear();
    folded_elapsed_ns_ = 0;
    for (auto& rec : live_) {
      for (auto& a : rec->acc) a.store(0, std::memory_order_relaxed);
      rec->attach_ns = now;
      rec->last_switch_ns.store(now, std::memory_order_relaxed);
    }
  }
  for (LockSlot& slot : lock_slots_) {
    slot.ns.store(0, std::memory_order_relaxed);
    slot.count.store(0, std::memory_order_relaxed);
  }
  lock_overflow_.ns.store(0, std::memory_order_relaxed);
  lock_overflow_.count.store(0, std::memory_order_relaxed);
  unattributed_ns_.store(0, std::memory_order_relaxed);
  misuse_count_.store(0, std::memory_order_relaxed);
}

ScopedTimeCategory::ScopedTimeCategory(TimeCategory category) {
  ledger_internal::ThreadRecord* r = tls_record;
  if (r == nullptr) return;
  const uint64_t now = TimeLedger::NowNs();
  Settle(r, now);
  r->stack.push_back(r->current.load(std::memory_order_relaxed));
  r->current.store(static_cast<int>(category), std::memory_order_relaxed);
  record_ = r;
}

ScopedTimeCategory::~ScopedTimeCategory() {
  if (record_ == nullptr) return;  // created on an unattached thread
  ledger_internal::ThreadRecord* r = tls_record;
  if (r != record_ || r->stack.empty()) {
    // Destroyed on a different thread, after its thread detached, or
    // against an already-drained stack: count it, touch nothing. (The
    // pointer comparison never dereferences a possibly-freed record.)
    TimeLedger::Global().CountMisuse();
    return;
  }
  const uint64_t now = TimeLedger::NowNs();
  Settle(r, now);
  r->current.store(r->stack.back(), std::memory_order_relaxed);
  r->stack.pop_back();
}

}  // namespace pregelix
