// Bounded retry-with-backoff for transient I/O failures.
//
// Only kIoError is considered transient: corruption means the bytes are
// gone, kAborted is a (simulated) crash and must unwind to the driver
// untouched. Attempts are surfaced in the metrics registry so a run's
// artifact shows how much retrying it took to finish.
#ifndef PREGELIX_COMMON_RETRY_H_
#define PREGELIX_COMMON_RETRY_H_

#include <algorithm>
#include <chrono>
#include <functional>
#include <string>
#include <thread>

#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/status.h"

namespace pregelix {

struct RetryPolicy {
  int max_attempts = 4;
  // Sleep before attempt k (k >= 2) is backoff_ms * 2^(k-2), capped below.
  int backoff_ms = 2;
  int max_backoff_ms = 50;
};

/// Runs `fn` until it succeeds, fails terminally, or the attempt budget is
/// spent. `what` labels the retry counters (`pregelix.retry.*{op=what}`).
inline Status RetryTransient(const std::string& what,
                             const std::function<Status()>& fn,
                             MetricsRegistry* registry = nullptr,
                             RetryPolicy policy = RetryPolicy()) {
  if (registry == nullptr) registry = &MetricsRegistry::Global();
  Counter* attempts =
      registry->GetCounter("pregelix.retry.attempts", {{"op", what}});
  Counter* retried_ok =
      registry->GetCounter("pregelix.retry.recovered", {{"op", what}});
  Counter* exhausted =
      registry->GetCounter("pregelix.retry.exhausted", {{"op", what}});
  Status s;
  int backoff = policy.backoff_ms;
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    attempts->Increment();
    s = fn();
    if (s.ok()) {
      if (attempt > 1) retried_ok->Increment();
      return s;
    }
    // Terminal: anything but a transient I/O error, or the last attempt.
    if (!s.IsIoError() || attempt == policy.max_attempts) break;
    PLOG(Warn) << what << " attempt " << attempt
               << " failed, retrying: " << s.ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(backoff));
    backoff = std::min(backoff * 2, policy.max_backoff_ms);
  }
  if (s.IsIoError()) exhausted->Increment();
  return s;
}

}  // namespace pregelix

#endif  // PREGELIX_COMMON_RETRY_H_
