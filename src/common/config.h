#ifndef PREGELIX_COMMON_CONFIG_H_
#define PREGELIX_COMMON_CONFIG_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace pregelix {

class Tracer;
class MetricsRegistry;

/// I/O / compute overlap (DESIGN.md §19). kAuto is the default and enables
/// the overlap runtime (double-buffered run reads, async write-behind,
/// eager shuffle-driven group-by); kOff forces the phase-serial pipeline
/// (the benchmark baseline and a safety hatch).
enum class OverlapMode { kOff, kOn, kAuto };

/// Configuration of the simulated shared-nothing cluster.
///
/// One ClusterConfig describes a cluster of `num_workers` worker "machines",
/// each with its own scratch directory, buffer cache, and a simulated RAM
/// budget `worker_ram_bytes`. The paper's defaults are reproduced at a scaled
/// size: the access-method buffer cache gets 1/4 of worker RAM and each
/// group-by clone gets a fixed buffer (Section 7.1 of the paper).
struct ClusterConfig {
  int num_workers = 4;
  /// Partitions per worker; the scheduler assigns as many partitions to a
  /// machine as it has cores (paper Section 5.7). 1 keeps tests simple.
  int partitions_per_worker = 1;

  size_t frame_size = 32 * 1024;  ///< dataflow frame (network/sort unit)
  size_t page_size = 4 * 1024;    ///< storage page (B-tree node)

  /// Simulated physical RAM per worker. Baselines are byte-accounted against
  /// this; Pregelix derives its explicit budgets from it (see Derive()).
  size_t worker_ram_bytes = 16u << 20;

  size_t buffer_cache_pages = 0;    ///< 0 = derive as worker_ram/4 / page_size
  size_t sort_memory_frames = 0;    ///< 0 = derive as worker_ram/16 / frame
  size_t groupby_memory_bytes = 0;  ///< 0 = derive as worker_ram/16
  size_t channel_capacity_frames = 16;

  /// I/O / compute overlap. kAuto (default) turns the overlap runtime on;
  /// kOff is the strictly phase-serial baseline.
  OverlapMode overlap = OverlapMode::kAuto;
  /// Byte budget of the async write-behind queue (pending, not-yet-written
  /// blocks). 0 = derive as worker_ram/16 (min 256 KB).
  size_t writebehind_budget_bytes = 0;

  std::string temp_root;  ///< scratch root; must be set by the caller
  uint64_t seed = 42;

  /// Observability sinks. nullptr = use the process-wide Tracer::Global()
  /// and MetricsRegistry::Global(); tests pass their own for isolation.
  /// Spans cost nothing unless the tracer is enabled.
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics_registry = nullptr;

  int num_partitions() const { return num_workers * partitions_per_worker; }

  /// Fills any zero budget fields from worker_ram_bytes.
  ClusterConfig Derive() const {
    ClusterConfig c = *this;
    if (c.buffer_cache_pages == 0) {
      c.buffer_cache_pages = (c.worker_ram_bytes / 4) / c.page_size;
      if (c.buffer_cache_pages < 16) c.buffer_cache_pages = 16;
    }
    if (c.sort_memory_frames == 0) {
      c.sort_memory_frames = (c.worker_ram_bytes / 16) / c.frame_size;
      if (c.sort_memory_frames < 4) c.sort_memory_frames = 4;
    }
    if (c.groupby_memory_bytes == 0) {
      c.groupby_memory_bytes = c.worker_ram_bytes / 16;
      if (c.groupby_memory_bytes < 64 * 1024) c.groupby_memory_bytes = 64 * 1024;
    }
    if (c.writebehind_budget_bytes == 0) {
      c.writebehind_budget_bytes = c.worker_ram_bytes / 16;
      if (c.writebehind_budget_bytes < 256 * 1024) {
        c.writebehind_budget_bytes = 256 * 1024;
      }
    }
    return c;
  }

  bool overlap_enabled() const { return overlap != OverlapMode::kOff; }

  /// Total simulated cluster RAM; figures plot dataset size relative to this.
  size_t aggregate_ram_bytes() const {
    return worker_ram_bytes * static_cast<size_t>(num_workers);
  }
};

}  // namespace pregelix

#endif  // PREGELIX_COMMON_CONFIG_H_
