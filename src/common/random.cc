#include "common/random.h"

#include <cmath>

namespace pregelix {

uint64_t Random::Skewed(uint64_t n, double theta) {
  if (n <= 1) return 0;
  // Inverse transform of the continuous power-law density on [1, n+1):
  // x = ((u * (hi^(1-theta) - 1)) + 1)^(1/(1-theta)).
  const double one_minus = 1.0 - theta;
  const double hi = std::pow(static_cast<double>(n + 1), one_minus);
  const double u = NextDouble();
  const double x = std::pow(u * (hi - 1.0) + 1.0, 1.0 / one_minus);
  uint64_t v = static_cast<uint64_t>(x) - 1;
  return v >= n ? n - 1 : v;
}

}  // namespace pregelix
