#ifndef PREGELIX_COMMON_EVENT_JOURNAL_H_
#define PREGELIX_COMMON_EVENT_JOURNAL_H_

#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

// Structured event journal (see DESIGN.md "Live observability server").
//
// A fixed-capacity ring of structured events with a process-monotonic
// sequence number. Producers (the superstep driver, the stall watchdog, the
// fault injector) append; consumers replay with SnapshotSince /
// WriteJsonl(since) — the `GET /events?since=<seq>` endpoint — or dump the
// tail on the way out of a dying process (crash_dump.h). When the ring
// wraps, the oldest events are overwritten; `dropped()` counts how many a
// full replay from seq 0 can no longer see. Optionally every event is also
// spilled as one JSONL line to a file (`pregelix run --events-out=`), so a
// journal longer than the ring survives on disk.

namespace pregelix {

/// One journal event. `seq` is assigned by Append, starts at 1, and never
/// repeats within a process. `superstep` is -1 when not applicable.
struct JournalEvent {
  uint64_t seq = 0;
  int64_t wall_us = 0;     ///< microseconds since the unix epoch
  uint64_t steady_ns = 0;  ///< monotonic clock, for intra-process ordering
  std::string category;    ///< e.g. "superstep.begin" (see DESIGN.md table)
  std::string job_id;      ///< empty for process-scoped events
  int64_t superstep = -1;
  std::vector<std::pair<std::string, std::string>> kv;
};

/// Writes one event as a single JSON object (no trailing newline).
void WriteEventJson(std::ostream& os, const JournalEvent& e);

/// Thread-safe fixed-capacity event ring. Append is O(1) plus, when a spill
/// path is set, one buffered+flushed file line.
class EventJournal {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit EventJournal(size_t capacity = kDefaultCapacity);

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;

  /// Appends an event (seq/timestamps are filled in here) and returns its
  /// assigned seq.
  uint64_t Append(const std::string& category, const std::string& job_id,
                  int64_t superstep,
                  std::vector<std::pair<std::string, std::string>> kv = {});

  /// Events with seq > since_seq still present in the ring, in seq order.
  /// `limit` > 0 caps the result to the *newest* `limit` of them.
  std::vector<JournalEvent> SnapshotSince(uint64_t since_seq,
                                          size_t limit = 0) const;

  /// JSONL replay: one event per line, seq order, same filter as
  /// SnapshotSince. The `GET /events?since=` body.
  void WriteJsonl(std::ostream& os, uint64_t since_seq,
                  size_t limit = 0) const;

  /// Truncates `path` and writes the newest `max_events` events as JSONL.
  /// The crash-dump hook uses this to leave the journal tail behind on
  /// abnormal exit.
  Status DumpTail(const std::string& path, size_t max_events) const;

  /// Enables (non-empty) or disables (empty) the per-event JSONL spill.
  /// The file is truncated on open; every Append then writes and flushes
  /// one line.
  Status SetSpillPath(const std::string& path);
  /// Flushes the spill stream if one is open (crash-dump hook).
  void FlushSpill();

  uint64_t last_seq() const;
  /// Events overwritten by ring wraparound (not replayable from memory).
  uint64_t dropped() const;
  size_t capacity() const { return capacity_; }

  /// Process-wide default instance (what the runtime/watchdog/fault
  /// injector feed and `pregelix serve` serves).
  static EventJournal& Global();

 private:
  const size_t capacity_;
  mutable Mutex mutex_{"event_journal", LockRank::kEventJournal};
  std::vector<JournalEvent> ring_ GUARDED_BY(mutex_);  ///< slot = seq % cap
  uint64_t next_seq_ GUARDED_BY(mutex_) = 1;
  std::ofstream spill_ GUARDED_BY(mutex_);
  bool spill_open_ GUARDED_BY(mutex_) = false;
};

}  // namespace pregelix

#endif  // PREGELIX_COMMON_EVENT_JOURNAL_H_
