#ifndef PREGELIX_COMMON_SLICE_H_
#define PREGELIX_COMMON_SLICE_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace pregelix {

/// A non-owning view over a byte range, in the style of leveldb::Slice.
///
/// Used for index keys/values and tuple fields. The referenced storage must
/// outlive the Slice.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const void* data, size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}
  /// Implicit construction from std::string is intentional: keys are often
  /// built in std::string buffers.
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* cstr) : data_(cstr), size_(strlen(cstr)) {}      // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  std::string ToString() const { return std::string(data_, size_); }

  /// Three-way lexicographic (memcmp) comparison.
  int compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return 1;
    }
    return r;
  }

  bool starts_with(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

  void remove_prefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

 private:
  const char* data_;
  size_t size_;
};

/// First 8 bytes of a key as a big-endian integer, zero-padded on the
/// right. The "normalized key prefix" of the sort/merge kernels: for any
/// two keys, NormalizedKeyPrefix(a) < NormalizedKeyPrefix(b) implies
/// a.compare(b) < 0, so a single integer compare replaces memcmp whenever
/// the prefixes differ; only a prefix *tie* needs the full comparison.
/// (Zero padding is safe because 0x00 is the minimum byte: a shorter key
/// can only pad down, never up, matching lexicographic prefix order.)
inline uint64_t NormalizedKeyPrefix(const Slice& key) {
  if (key.size() >= 8) {
    uint64_t v;
    memcpy(&v, key.data(), 8);
#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_BIG_ENDIAN__
    return v;
#else
    return __builtin_bswap64(v);
#endif
  }
  uint64_t v = 0;
  for (size_t i = 0; i < key.size(); ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(key[i]))
         << (56 - 8 * i);
  }
  return v;
}

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() &&
         (a.size() == 0 || memcmp(a.data(), b.data(), a.size()) == 0);
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.compare(b) < 0;
}

}  // namespace pregelix

#endif  // PREGELIX_COMMON_SLICE_H_
