#ifndef PREGELIX_COMMON_SLICE_H_
#define PREGELIX_COMMON_SLICE_H_

#include <cstddef>
#include <cstring>
#include <string>

namespace pregelix {

/// A non-owning view over a byte range, in the style of leveldb::Slice.
///
/// Used for index keys/values and tuple fields. The referenced storage must
/// outlive the Slice.
class Slice {
 public:
  Slice() : data_(nullptr), size_(0) {}
  Slice(const char* data, size_t size) : data_(data), size_(size) {}
  Slice(const void* data, size_t size)
      : data_(static_cast<const char*>(data)), size_(size) {}
  /// Implicit construction from std::string is intentional: keys are often
  /// built in std::string buffers.
  Slice(const std::string& s) : data_(s.data()), size_(s.size()) {}  // NOLINT
  Slice(const char* cstr) : data_(cstr), size_(strlen(cstr)) {}      // NOLINT

  const char* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  char operator[](size_t i) const { return data_[i]; }

  std::string ToString() const { return std::string(data_, size_); }

  /// Three-way lexicographic (memcmp) comparison.
  int compare(const Slice& other) const {
    const size_t min_len = size_ < other.size_ ? size_ : other.size_;
    int r = min_len == 0 ? 0 : memcmp(data_, other.data_, min_len);
    if (r == 0) {
      if (size_ < other.size_) return -1;
      if (size_ > other.size_) return 1;
    }
    return r;
  }

  bool starts_with(const Slice& prefix) const {
    return size_ >= prefix.size_ &&
           memcmp(data_, prefix.data_, prefix.size_) == 0;
  }

  void remove_prefix(size_t n) {
    data_ += n;
    size_ -= n;
  }

 private:
  const char* data_;
  size_t size_;
};

inline bool operator==(const Slice& a, const Slice& b) {
  return a.size() == b.size() &&
         (a.size() == 0 || memcmp(a.data(), b.data(), a.size()) == 0);
}
inline bool operator!=(const Slice& a, const Slice& b) { return !(a == b); }
inline bool operator<(const Slice& a, const Slice& b) {
  return a.compare(b) < 0;
}

}  // namespace pregelix

#endif  // PREGELIX_COMMON_SLICE_H_
