#ifndef PREGELIX_COMMON_LOGGING_H_
#define PREGELIX_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace pregelix {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Default kWarn so
/// tests and benches stay quiet unless asked.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

/// Parses "debug" / "info" / "warn" / "error" (case-insensitive; "warning"
/// also accepted) into *out. Returns false on anything else, *out untouched.
bool ParseLogLevel(const std::string& name, LogLevel* out);

/// Applies the PREGELIX_LOG_LEVEL environment variable (same spellings as
/// ParseLogLevel) to the global level. Unset or unparsable values leave the
/// level alone; unparsable values additionally earn a warning. Entry points
/// (CLI, bench harness) call this before their flag parsing so an explicit
/// --log-level= flag wins over the environment.
void InitLogLevelFromEnv();

/// Handler invoked once, before abort, when a fatal log message
/// (PREGELIX_CHECK failure) fires: the hook crash_dump uses to flush trace
/// buffers and metrics from a dying process. The handler is cleared before
/// it runs, so a fatal error inside the handler cannot recurse. Null
/// uninstalls.
using FatalHandler = void (*)();
void SetFatalHandler(FatalHandler handler);

namespace internal_logging {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Lets the ternary in PREGELIX_CHECK have type void on both arms while the
/// << chain still binds tighter than &.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal_logging

#define PLOG(level)                                                     \
  ::pregelix::internal_logging::LogMessage(                             \
      ::pregelix::LogLevel::k##level, __FILE__, __LINE__)               \
      .stream()

/// CHECK-style invariant assertions: always on, abort with a message.
#define PREGELIX_CHECK(cond)                                            \
  (cond) ? (void)0                                                      \
         : ::pregelix::internal_logging::Voidify() &                    \
           ::pregelix::internal_logging::LogMessage(                    \
               ::pregelix::LogLevel::kError, __FILE__, __LINE__, true)  \
               .stream()                                                \
           << "Check failed: " #cond " "

#define PREGELIX_CHECK_OK(expr)                                         \
  do {                                                                  \
    ::pregelix::Status _st = (expr);                                    \
    PREGELIX_CHECK(_st.ok()) << _st.ToString();                         \
  } while (0)

/// Debug-only invariant assertions: compiled out under NDEBUG (the
/// condition is type-checked but never evaluated, and the streamed
/// expression is swallowed).
#ifdef NDEBUG
#define PREGELIX_DCHECK(cond) \
  while (false) PREGELIX_CHECK(cond)
#else
#define PREGELIX_DCHECK(cond) PREGELIX_CHECK(cond)
#endif

}  // namespace pregelix

#endif  // PREGELIX_COMMON_LOGGING_H_
