#ifndef PREGELIX_COMMON_STATUS_H_
#define PREGELIX_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace pregelix {

/// Error category for a Status.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kIoError,
  kCorruption,
  kOutOfMemory,
  kResourceExhausted,
  kAborted,
  kFailedPrecondition,
  kInternal,
  kNotSupported,
};

/// Returns a human-readable name for a status code ("IoError", ...).
const char* StatusCodeName(StatusCode code);

/// Lightweight status type used across the storage and dataflow layers.
///
/// The engine does not throw exceptions on expected failure paths (I/O
/// errors, key-not-found, budget exhaustion); those travel as Status values.
/// The one deliberate exception type is SimulatedOutOfMemory, thrown by the
/// baseline engines' accounting allocator to reproduce the paper's baseline
/// failure behaviour (see src/baselines).
///
/// [[nodiscard]] on the class: silently dropping a returned Status hides
/// I/O and corruption errors, so every ignored return is a compile warning;
/// the rare deliberate discard must say so via a named local or
/// PREGELIX_IGNORE_STATUS.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string m = "") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m = "") {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status InvalidArgument(std::string m = "") {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status IoError(std::string m = "") {
    return Status(StatusCode::kIoError, std::move(m));
  }
  static Status Corruption(std::string m = "") {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status OutOfMemory(std::string m = "") {
    return Status(StatusCode::kOutOfMemory, std::move(m));
  }
  static Status ResourceExhausted(std::string m = "") {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Aborted(std::string m = "") {
    return Status(StatusCode::kAborted, std::move(m));
  }
  static Status FailedPrecondition(std::string m = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Internal(std::string m = "") {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status NotSupported(std::string m = "") {
    return Status(StatusCode::kNotSupported, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsOutOfMemory() const { return code_ == StatusCode::kOutOfMemory; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsIoError() const { return code_ == StatusCode::kIoError; }

  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is not OK.
#define PREGELIX_RETURN_NOT_OK(expr)              \
  do {                                            \
    ::pregelix::Status _s = (expr);               \
    if (!_s.ok()) return _s;                      \
  } while (0)

/// Documents a deliberately ignored Status (cleanup paths where the primary
/// error is already being reported). Prefer logging or propagating.
#define PREGELIX_IGNORE_STATUS(expr)              \
  do {                                            \
    ::pregelix::Status _s = (expr);               \
    (void)_s;                                     \
  } while (0)

}  // namespace pregelix

#endif  // PREGELIX_COMMON_STATUS_H_
