#include "io/run_file.h"

#include <utility>

#include "common/fault_injection.h"
#include "common/serde.h"

namespace pregelix {

namespace {

/// Reattributes the overlap-wait delta measured into `*counter` across one
/// blocking call (DESIGN.md §20). The wait interval was already spent in the
/// caller's current ledger category; moving exactly the measured nanoseconds
/// keeps the ledger's wait bucket equal to the profiled io_wait_ns.
class WaitReattribution {
 public:
  WaitReattribution(const uint64_t* counter, TimeCategory to)
      : counter_(counter), before_(*counter), to_(to) {}
  ~WaitReattribution() {
    const uint64_t delta = *counter_ - before_;
    if (delta > 0) TimeLedger::Reattribute(to_, delta);
  }

 private:
  const uint64_t* counter_;
  const uint64_t before_;
  const TimeCategory to_;
};

}  // namespace

Status RunFileWriter::Open(const std::string& path, WorkerMetrics* metrics,
                           OverlapRuntime* overlap,
                           std::unique_ptr<RunFileWriter>* out) {
  std::unique_ptr<WritableFile> file;
  PREGELIX_RETURN_NOT_OK(WritableFile::Open(path, metrics, &file));
  out->reset(new RunFileWriter(std::move(file), metrics, overlap));
  return Status::OK();
}

RunFileWriter::~RunFileWriter() {
  if (overlap_ != nullptr && !finished_) {
    // Abandoned writer (error unwind): the queued jobs still reference our
    // file, so wait them out before the file handle dies.
    (void)overlap_->writebehind().WaitTicket(&ticket_);
  }
}

Status RunFileWriter::AppendBlock(const Slice& block) {
  PREGELIX_RETURN_NOT_OK(fault::MaybeFail("io.run_file.append"));
  char header[4];
  EncodeFixed32(header, static_cast<uint32_t>(block.size()));
  if (overlap_ == nullptr) {
    PREGELIX_RETURN_NOT_OK(file_->Append(Slice(header, 4)));
    PREGELIX_RETURN_NOT_OK(file_->Append(block));
  } else {
    // Async write-behind: hand the framed block to the background worker.
    // Errors (including the io.writebehind.flush fault point, torn-write
    // capable) latch into the ticket and surface at Finish, the way a
    // synchronous writer's error would surface to its caller.
    std::string buf;
    buf.reserve(4 + block.size());
    buf.append(header, 4);
    buf.append(block.data(), block.size());
    const size_t bytes = buf.size();
    WritableFile* file = file_.get();
    WorkerMetrics* metrics = metrics_;
    WaitReattribution reattr(&io_wait_ns_, wait_category_);
    overlap_->writebehind().Enqueue(
        &ticket_, bytes,
        [file, metrics, buf = std::move(buf)]() -> Status {
          size_t len = buf.size();
          Status injected = fault::MaybeFailWrite("io.writebehind.flush", &len);
          if (!injected.ok()) {
            if (len > 0) {
              // Torn write: the prefix reaches the file before the error.
              (void)file->Append(Slice(buf.data(), len));
            }
            return injected;
          }
          PREGELIX_RETURN_NOT_OK(file->Append(Slice(buf)));
          if (metrics != nullptr) metrics->AddOverlapIo(buf.size());
          return Status::OK();
        },
        &io_wait_ns_);
  }
  ++num_blocks_;
  bytes_appended_ += 4 + block.size();
  return Status::OK();
}

Status RunFileWriter::Finish() {
  finished_ = true;
  if (overlap_ != nullptr) {
    // Per-file drain barrier: every queued block is on disk (or failed)
    // before Close — commit points that size/checksum/rename this file
    // (checkpoint snapshots, channel spills) stay exact.
    WaitReattribution reattr(&io_wait_ns_, wait_category_);
    PREGELIX_RETURN_NOT_OK(
        overlap_->writebehind().WaitTicket(&ticket_, &io_wait_ns_));
  }
  return file_->Close();
}

Status RunFileReader::Open(const std::string& path, WorkerMetrics* metrics,
                           OverlapRuntime* overlap,
                           std::unique_ptr<RunFileReader>* out) {
  std::unique_ptr<RandomAccessFile> file;
  PREGELIX_RETURN_NOT_OK(RandomAccessFile::Open(path, metrics, &file));
  out->reset(new RunFileReader(std::move(file), metrics, overlap));
  return Status::OK();
}

RunFileReader::~RunFileReader() { CancelPrefetch(); }

void RunFileReader::Reset() {
  CancelPrefetch();
  offset_ = 0;
}

Status RunFileReader::ReadBlockAt(uint64_t offset, std::string* out,
                                  uint64_t* next_offset) {
  char header[4];
  PREGELIX_RETURN_NOT_OK(file_->Read(offset, 4, header));
  const uint32_t len = DecodeFixed32(header);
  out->resize(len);
  if (len > 0) {
    PREGELIX_RETURN_NOT_OK(file_->Read(offset + 4, len, out->data()));
  }
  *next_offset = offset + 4 + len;
  return Status::OK();
}

void RunFileReader::IssuePrefetch() {
  const uint64_t offset = offset_;
  overlap_->prefetch().Schedule(&slot_, [this, offset]() -> Status {
    PREGELIX_RETURN_NOT_OK(fault::MaybeFail("io.prefetch.read"));
    PREGELIX_RETURN_NOT_OK(ReadBlockAt(offset, &ahead_, &ahead_next_));
    if (metrics_ != nullptr) metrics_->AddOverlapIo(ahead_next_ - offset);
    return Status::OK();
  });
  ahead_valid_ = true;
  issued_offset_ = offset;
}

void RunFileReader::CancelPrefetch() {
  if (!ahead_valid_) return;
  overlap_->prefetch().Cancel(&slot_);
  ahead_valid_ = false;
}

Status RunFileReader::NextBlock(std::string* out) {
  if (AtEnd()) {
    CancelPrefetch();  // Reset() mid-stream can leave a stale read-ahead
    return Status::NotFound("eof");
  }
  PREGELIX_RETURN_NOT_OK(fault::MaybeFail("io.run_file.read"));
  if (overlap_ == nullptr) {
    return ReadBlockAt(offset_, out, &offset_);
  }
  if (!ahead_valid_ || issued_offset_ != offset_) {
    CancelPrefetch();  // stale (e.g. after Reset): re-issue at offset_
    IssuePrefetch();
  }
  Status s;
  {
    WaitReattribution reattr(&io_wait_ns_, wait_category_);
    s = overlap_->prefetch().Await(&slot_, &io_wait_ns_);
  }
  ahead_valid_ = false;
  PREGELIX_RETURN_NOT_OK(s);
  out->swap(ahead_);
  offset_ = ahead_next_;
  if (!AtEnd()) IssuePrefetch();  // read ahead while the caller consumes
  return Status::OK();
}

}  // namespace pregelix
