#include "io/run_file.h"

#include "common/fault_injection.h"
#include "common/serde.h"

namespace pregelix {

Status RunFileWriter::Open(const std::string& path, WorkerMetrics* metrics,
                           std::unique_ptr<RunFileWriter>* out) {
  std::unique_ptr<WritableFile> file;
  PREGELIX_RETURN_NOT_OK(WritableFile::Open(path, metrics, &file));
  out->reset(new RunFileWriter(std::move(file)));
  return Status::OK();
}

Status RunFileWriter::AppendBlock(const Slice& block) {
  PREGELIX_RETURN_NOT_OK(fault::MaybeFail("io.run_file.append"));
  char header[4];
  EncodeFixed32(header, static_cast<uint32_t>(block.size()));
  PREGELIX_RETURN_NOT_OK(file_->Append(Slice(header, 4)));
  PREGELIX_RETURN_NOT_OK(file_->Append(block));
  ++num_blocks_;
  return Status::OK();
}

Status RunFileWriter::Finish() { return file_->Close(); }

Status RunFileReader::Open(const std::string& path, WorkerMetrics* metrics,
                           std::unique_ptr<RunFileReader>* out) {
  std::unique_ptr<RandomAccessFile> file;
  PREGELIX_RETURN_NOT_OK(RandomAccessFile::Open(path, metrics, &file));
  out->reset(new RunFileReader(std::move(file)));
  return Status::OK();
}

Status RunFileReader::NextBlock(std::string* out) {
  if (AtEnd()) return Status::NotFound("eof");
  PREGELIX_RETURN_NOT_OK(fault::MaybeFail("io.run_file.read"));
  char header[4];
  PREGELIX_RETURN_NOT_OK(file_->Read(offset_, 4, header));
  const uint32_t len = DecodeFixed32(header);
  offset_ += 4;
  out->resize(len);
  if (len > 0) {
    PREGELIX_RETURN_NOT_OK(file_->Read(offset_, len, out->data()));
  }
  offset_ += len;
  return Status::OK();
}

}  // namespace pregelix
