#include "io/file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/fault_injection.h"
#include "common/logging.h"
#include "common/time_ledger.h"

namespace pregelix {

namespace {
constexpr size_t kWriteBufferSize = 64 * 1024;

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

Status WriteFully(int fd, const char* data, size_t n,
                  const std::string& path) {
  size_t done = 0;
  while (done < n) {
    ssize_t w = ::write(fd, data + done, n - done);
    if (w < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("write " + path));
    }
    done += static_cast<size_t>(w);
  }
  return Status::OK();
}
}  // namespace

// ---------------------------------------------------------------------------
// WritableFile

WritableFile::WritableFile(int fd, std::string path, WorkerMetrics* metrics)
    : fd_(fd), path_(std::move(path)), metrics_(metrics) {
  buffer_.reserve(kWriteBufferSize);
}

Status WritableFile::Open(const std::string& path, WorkerMetrics* metrics,
                          std::unique_ptr<WritableFile>* out) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("open " + path));
  }
  out->reset(new WritableFile(fd, path, metrics));
  return Status::OK();
}

WritableFile::~WritableFile() {
  if (!closed_) {
    PREGELIX_IGNORE_STATUS(Close());  // best effort in a destructor
  }
}

Status WritableFile::Append(const Slice& data) {
  size_ += data.size();
  if (buffer_.size() + data.size() < kWriteBufferSize) {
    buffer_.append(data.data(), data.size());
    return Status::OK();
  }
  PREGELIX_RETURN_NOT_OK(FlushBuffer());
  if (data.size() >= kWriteBufferSize) {
    // Large write: go straight to the kernel.
    ScopedTimeCategory io_write(TimeCategory::kIoWrite);
    size_t allowed = data.size();
    Status injected = fault::MaybeFailWrite("io.file.write", &allowed);
    PREGELIX_RETURN_NOT_OK(WriteFully(fd_, data.data(), allowed, path_));
    PREGELIX_RETURN_NOT_OK(injected);
    if (metrics_ != nullptr) metrics_->AddDiskWrite(data.size());
    return Status::OK();
  }
  buffer_.append(data.data(), data.size());
  return Status::OK();
}

Status WritableFile::FlushBuffer() {
  if (buffer_.empty()) return Status::OK();
  ScopedTimeCategory io_write(TimeCategory::kIoWrite);
  size_t allowed = buffer_.size();
  Status injected = fault::MaybeFailWrite("io.file.write", &allowed);
  PREGELIX_RETURN_NOT_OK(WriteFully(fd_, buffer_.data(), allowed, path_));
  if (!injected.ok()) {
    // A torn write leaves the prefix on disk; the tail is lost.
    buffer_.clear();
    return injected;
  }
  if (metrics_ != nullptr) metrics_->AddDiskWrite(buffer_.size());
  buffer_.clear();
  return Status::OK();
}

Status WritableFile::Flush() { return FlushBuffer(); }

Status WritableFile::Close() {
  if (closed_) return Status::OK();
  Status s = FlushBuffer();
  if (::close(fd_) != 0 && s.ok()) {
    s = Status::IoError(ErrnoMessage("close " + path_));
  }
  closed_ = true;
  return s;
}

// ---------------------------------------------------------------------------
// RandomAccessFile

RandomAccessFile::RandomAccessFile(int fd, std::string path, uint64_t size,
                                   WorkerMetrics* metrics)
    : fd_(fd), path_(std::move(path)), size_(size), metrics_(metrics) {}

Status RandomAccessFile::Open(const std::string& path, WorkerMetrics* metrics,
                              std::unique_ptr<RandomAccessFile>* out) {
  int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("open " + path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError(ErrnoMessage("fstat " + path));
  }
  out->reset(new RandomAccessFile(fd, path, static_cast<uint64_t>(st.st_size),
                                  metrics));
  return Status::OK();
}

RandomAccessFile::~RandomAccessFile() { ::close(fd_); }

Status RandomAccessFile::Read(uint64_t offset, size_t n, char* scratch) const {
  PREGELIX_RETURN_NOT_OK(fault::MaybeFail("io.file.read"));
  ScopedTimeCategory io_read(TimeCategory::kIoRead);
  size_t done = 0;
  while (done < n) {
    ssize_t r = ::pread(fd_, scratch + done, n - done,
                        static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("pread " + path_));
    }
    if (r == 0) {
      return Status::IoError("short read at " + std::to_string(offset) +
                             " in " + path_);
    }
    done += static_cast<size_t>(r);
  }
  if (metrics_ != nullptr) metrics_->AddDiskRead(n);
  return Status::OK();
}

Status RandomAccessFile::Write(uint64_t offset, const Slice& data) {
  ScopedTimeCategory io_write(TimeCategory::kIoWrite);
  size_t allowed = data.size();
  Status injected = fault::MaybeFailWrite("io.file.pwrite", &allowed);
  size_t done = 0;
  while (done < allowed) {
    ssize_t r = ::pwrite(fd_, data.data() + done, allowed - done,
                         static_cast<off_t>(offset + done));
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("pwrite " + path_));
    }
    done += static_cast<size_t>(r);
  }
  PREGELIX_RETURN_NOT_OK(injected);
  if (offset + data.size() > size_) size_ = offset + data.size();
  if (metrics_ != nullptr) metrics_->AddDiskWrite(data.size());
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Helpers

Status GetFileSize(const std::string& path, uint64_t* size) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound("stat " + path);
  }
  *size = static_cast<uint64_t>(st.st_size);
  return Status::OK();
}

void DeleteFileIfExists(const std::string& path) { ::unlink(path.c_str()); }

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status ReadFileToString(const std::string& path, std::string* out) {
  uint64_t size = 0;
  PREGELIX_RETURN_NOT_OK(GetFileSize(path, &size));
  std::unique_ptr<RandomAccessFile> file;
  PREGELIX_RETURN_NOT_OK(RandomAccessFile::Open(path, nullptr, &file));
  out->resize(size);
  if (size == 0) return Status::OK();
  return file->Read(0, size, out->data());
}

Status WriteStringToFileAtomic(const std::string& path,
                               const Slice& contents) {
  const std::string tmp = path + ".tmp";
  {
    std::unique_ptr<WritableFile> file;
    PREGELIX_RETURN_NOT_OK(WritableFile::Open(tmp, nullptr, &file));
    PREGELIX_RETURN_NOT_OK(file->Append(contents));
    PREGELIX_RETURN_NOT_OK(file->Close());
  }
  return RenameFile(tmp, path);
}

Status RenameFile(const std::string& from, const std::string& to) {
  PREGELIX_RETURN_NOT_OK(fault::MaybeFail("io.file.rename"));
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IoError(ErrnoMessage("rename " + from + " -> " + to));
  }
  return Status::OK();
}

Status ChecksumFile(const std::string& path, uint64_t* checksum) {
  uint64_t size = 0;
  PREGELIX_RETURN_NOT_OK(GetFileSize(path, &size));
  std::unique_ptr<RandomAccessFile> file;
  PREGELIX_RETURN_NOT_OK(RandomAccessFile::Open(path, nullptr, &file));
  uint64_t h = 14695981039346656037ull;
  std::string chunk(64 * 1024, '\0');
  for (uint64_t offset = 0; offset < size;) {
    const size_t n =
        static_cast<size_t>(std::min<uint64_t>(chunk.size(), size - offset));
    PREGELIX_RETURN_NOT_OK(file->Read(offset, n, chunk.data()));
    for (size_t i = 0; i < n; ++i) {
      h ^= static_cast<uint8_t>(chunk[i]);
      h *= 1099511628211ull;
    }
    offset += n;
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  *checksum = h;
  return Status::OK();
}

}  // namespace pregelix
