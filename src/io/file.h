#ifndef PREGELIX_IO_FILE_H_
#define PREGELIX_IO_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/slice.h"
#include "common/status.h"

namespace pregelix {

/// Append-only file with a small user-space write buffer.
///
/// All byte traffic is reported to the owning worker's metrics (if any), so
/// the cost model sees every spill and materialization.
class WritableFile {
 public:
  static Status Open(const std::string& path, WorkerMetrics* metrics,
                     std::unique_ptr<WritableFile>* out);
  ~WritableFile();

  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  Status Append(const Slice& data);
  Status Flush();
  Status Close();

  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

 private:
  WritableFile(int fd, std::string path, WorkerMetrics* metrics);

  Status FlushBuffer();

  int fd_;
  std::string path_;
  WorkerMetrics* metrics_;
  std::string buffer_;
  uint64_t size_ = 0;
  bool closed_ = false;
};

/// Positional-read file (pread).
class RandomAccessFile {
 public:
  static Status Open(const std::string& path, WorkerMetrics* metrics,
                     std::unique_ptr<RandomAccessFile>* out);
  ~RandomAccessFile();

  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Reads exactly n bytes at offset into scratch; fails on short read.
  Status Read(uint64_t offset, size_t n, char* scratch) const;

  /// Writes exactly n bytes at offset (used by the buffer cache to write
  /// dirty pages back in place).
  Status Write(uint64_t offset, const Slice& data);

  uint64_t size() const { return size_; }
  void set_size(uint64_t s) { size_ = s; }
  const std::string& path() const { return path_; }

 private:
  RandomAccessFile(int fd, std::string path, uint64_t size,
                   WorkerMetrics* metrics);

  int fd_;
  std::string path_;
  mutable uint64_t size_;
  WorkerMetrics* metrics_;
};

/// Returns the size of a file, or NotFound.
Status GetFileSize(const std::string& path, uint64_t* size);

/// Deletes a file; missing file is not an error.
void DeleteFileIfExists(const std::string& path);

/// True if the path exists.
bool FileExists(const std::string& path);

/// Reads an entire (small) file into a string.
Status ReadFileToString(const std::string& path, std::string* out);

/// Atomically replaces `path` with `contents` (write temp + rename).
Status WriteStringToFileAtomic(const std::string& path, const Slice& contents);

/// Renames `from` to `to` (atomic within a filesystem). Fault point
/// "io.file.rename".
Status RenameFile(const std::string& from, const std::string& to);

/// Streams the file through a 64-bit FNV-1a hash (with a final avalanche).
/// Used by checkpoint manifests to detect torn or corrupted snapshot files.
Status ChecksumFile(const std::string& path, uint64_t* checksum);

}  // namespace pregelix

#endif  // PREGELIX_IO_FILE_H_
