#include "io/overlap.h"

#include <chrono>
#include <utility>

#include "common/event_journal.h"
#include "common/logging.h"
#include "common/metrics_registry.h"
#include "common/time_ledger.h"

namespace pregelix {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

// ---------------------------------------------------------------------------
// PrefetchPool

PrefetchPool::PrefetchPool() : worker_([this] { WorkerLoop(); }) {}

PrefetchPool::~PrefetchPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
    cv_.NotifyAll();
  }
  worker_.join();
}

void PrefetchPool::Schedule(Slot* slot, std::function<Status()> fn) {
  MutexLock lock(&mu_);
  PREGELIX_CHECK(slot->state == Slot::State::kIdle)
      << "prefetch slot scheduled twice";
  slot->state = Slot::State::kQueued;
  slot->fn = std::move(fn);
  slot->status = Status::OK();
  queue_.push_back(slot);
  cv_.NotifyAll();
}

Status PrefetchPool::Await(Slot* slot, uint64_t* wait_ns) {
  MutexLock lock(&mu_);
  if (slot->state == Slot::State::kIdle) {
    return Status::InvalidArgument("prefetch await with nothing scheduled");
  }
  if (slot->state == Slot::State::kReady) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    misses_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t t0 = NowNs();
    while (slot->state != Slot::State::kReady) cv_.Wait(&mu_);
    if (wait_ns != nullptr) *wait_ns += NowNs() - t0;
  }
  slot->state = Slot::State::kIdle;
  slot->fn = nullptr;
  return std::move(slot->status);
}

void PrefetchPool::Cancel(Slot* slot) {
  MutexLock lock(&mu_);
  switch (slot->state) {
    case Slot::State::kIdle:
      return;
    case Slot::State::kQueued:
      // Not started: pull it out of the queue.
      for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (*it == slot) {
          queue_.erase(it);
          break;
        }
      }
      break;
    case Slot::State::kRunning:
      while (slot->state != Slot::State::kReady) cv_.Wait(&mu_);
      break;
    case Slot::State::kReady:
      break;
  }
  wasted_.fetch_add(1, std::memory_order_relaxed);
  slot->state = Slot::State::kIdle;
  slot->fn = nullptr;
  slot->status = Status::OK();
}

void PrefetchPool::WorkerLoop() {
  // Time ledger (DESIGN.md §20): background workers attribute queue parks
  // to idle and the read jobs themselves to io_read.
  TimeLedger::AttachCurrentThread(TimeLedger::kOverlapWorker,
                                  TimeCategory::kIdle, "overlap.prefetch");
  for (;;) {
    Slot* slot = nullptr;
    std::function<Status()> fn;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(&mu_);
      if (queue_.empty()) {
        TimeLedger::DetachCurrentThread();
        return;  // stop_ with nothing left
      }
      slot = queue_.front();
      queue_.pop_front();
      slot->state = Slot::State::kRunning;
      fn = slot->fn;  // run outside the lock
    }
    Status s;
    {
      ScopedTimeCategory io_read(TimeCategory::kIoRead);
      s = fn();
    }
    {
      MutexLock lock(&mu_);
      slot->status = std::move(s);
      slot->state = Slot::State::kReady;
      cv_.NotifyAll();
    }
  }
}

// ---------------------------------------------------------------------------
// WriteBehindQueue

WriteBehindQueue::WriteBehindQueue(size_t budget_bytes, uint64_t stall_warn_ns)
    : budget_(budget_bytes),
      stall_warn_ns_(stall_warn_ns),
      worker_([this] { WorkerLoop(); }) {}

WriteBehindQueue::~WriteBehindQueue() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
    cv_.NotifyAll();
  }
  worker_.join();
}

void WriteBehindQueue::Enqueue(Ticket* ticket, size_t bytes,
                               std::function<Status()> fn,
                               uint64_t* stall_ns) {
  MutexLock lock(&mu_);
  if (queue_bytes_ + bytes > budget_ && !queue_.empty()) {
    // Over budget: stall until the worker frees space. An oversized job is
    // admitted once the queue is empty so a budget smaller than one block
    // cannot wedge the pipeline.
    stalls_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t t0 = NowNs();
    while (queue_bytes_ + bytes > budget_ && !queue_.empty()) cv_.Wait(&mu_);
    if (stall_ns != nullptr) *stall_ns += NowNs() - t0;
  }
  queue_bytes_ += bytes;
  queue_bytes_mirror_.store(queue_bytes_, std::memory_order_relaxed);
  ++ticket->pending;
  queue_.push_back(Job{ticket, bytes, std::move(fn)});
  cv_.NotifyAll();
}

Status WriteBehindQueue::WaitTicket(Ticket* ticket, uint64_t* wait_ns) {
  uint64_t waited = 0;
  Status result;
  {
    MutexLock lock(&mu_);
    if (ticket->pending > 0) {
      const uint64_t t0 = NowNs();
      while (ticket->pending > 0) cv_.Wait(&mu_);
      waited = NowNs() - t0;
      if (wait_ns != nullptr) *wait_ns += waited;
    }
    result = std::move(ticket->error);
    ticket->error = Status::OK();
  }
  MaybeJournalStall("writebehind.ticket", waited);
  return result;
}

void WriteBehindQueue::Drain(const char* where) {
  uint64_t waited = 0;
  {
    MutexLock lock(&mu_);
    if (!queue_.empty() || in_flight_) {
      const uint64_t t0 = NowNs();
      while (!queue_.empty() || in_flight_) cv_.Wait(&mu_);
      waited = NowNs() - t0;
    }
  }
  MaybeJournalStall(where, waited);
}

void WriteBehindQueue::MaybeJournalStall(const char* where,
                                         uint64_t waited_ns) const {
  if (waited_ns <= stall_warn_ns_) return;
  EventJournal::Global().Append(
      "pipeline.stall", "", -1,
      {{"queue", "writebehind"},
       {"where", where},
       {"waited_ms", std::to_string(waited_ns / 1000000)}});
}

void WriteBehindQueue::WorkerLoop() {
  // Time ledger (DESIGN.md §20): parks are idle, flush jobs io_write.
  TimeLedger::AttachCurrentThread(TimeLedger::kOverlapWorker,
                                  TimeCategory::kIdle, "overlap.writebehind");
  for (;;) {
    Job job;
    bool skip = false;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(&mu_);
      if (queue_.empty()) {
        TimeLedger::DetachCurrentThread();
        return;  // stop_ with nothing left
      }
      job = std::move(queue_.front());
      queue_.pop_front();
      in_flight_ = true;
      // A failed ticket stops writing, the way a synchronous writer stops
      // appending after its first error.
      skip = !job.ticket->error.ok();
    }
    Status s;
    {
      ScopedTimeCategory io_write(TimeCategory::kIoWrite);
      s = skip ? Status::OK() : job.fn();
    }
    {
      MutexLock lock(&mu_);
      queue_bytes_ -= job.bytes;
      queue_bytes_mirror_.store(queue_bytes_, std::memory_order_relaxed);
      in_flight_ = false;
      --job.ticket->pending;
      if (!s.ok() && job.ticket->error.ok()) job.ticket->error = std::move(s);
      cv_.NotifyAll();
    }
  }
}

// ---------------------------------------------------------------------------
// OverlapRuntime

OverlapRuntime::OverlapRuntime(size_t writebehind_budget_bytes,
                               uint64_t stall_warn_ns)
    : stall_warn_ns_(stall_warn_ns),
      writebehind_(writebehind_budget_bytes, stall_warn_ns) {}

void OverlapRuntime::PublishMetrics(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->GetGauge("pregelix.io.prefetch_hits")
      ->Set(static_cast<int64_t>(prefetch_.hits()));
  registry->GetGauge("pregelix.io.prefetch_wasted")
      ->Set(static_cast<int64_t>(prefetch_.wasted()));
  registry->GetGauge("pregelix.io.writebehind_queue_bytes")
      ->Set(static_cast<int64_t>(writebehind_.queue_bytes()));
  registry->GetGauge("pregelix.io.writebehind_stalls")
      ->Set(static_cast<int64_t>(writebehind_.stall_count()));
}

}  // namespace pregelix
