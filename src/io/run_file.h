#ifndef PREGELIX_IO_RUN_FILE_H_
#define PREGELIX_IO_RUN_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/slice.h"
#include "common/status.h"
#include "common/time_ledger.h"
#include "io/file.h"
#include "io/overlap.h"

namespace pregelix {

/// Sequential file of length-prefixed blocks (dataflow frames).
///
/// Run files back everything that is "temporary local data" in the paper:
/// sort runs, the per-partition Msg relation, and sender-side materialized
/// connector channels. Blocks are typically whole frames.
///
/// With an OverlapRuntime attached (DESIGN.md §19) the writer appends
/// through the async write-behind queue — AppendBlock hands the block to a
/// background thread and returns; Finish() is the per-file drain barrier
/// that waits for every queued block and surfaces the first error — and the
/// reader double-buffers: each NextBlock returns the block read ahead in
/// the background and schedules the next one. Null OverlapRuntime* means
/// strictly synchronous I/O; on-disk bytes are identical either way.
class RunFileWriter {
 public:
  static Status Open(const std::string& path, WorkerMetrics* metrics,
                     std::unique_ptr<RunFileWriter>* out) {
    return Open(path, metrics, /*overlap=*/nullptr, out);
  }
  static Status Open(const std::string& path, WorkerMetrics* metrics,
                     OverlapRuntime* overlap,
                     std::unique_ptr<RunFileWriter>* out);
  ~RunFileWriter();

  Status AppendBlock(const Slice& block);
  Status Finish();

  uint64_t num_blocks() const { return num_blocks_; }
  uint64_t bytes_written() const { return bytes_appended_; }
  const std::string& path() const { return file_->path(); }

  /// Foreground ns this writer spent blocked on the write-behind queue
  /// (budget stalls + the Finish drain). 0 in synchronous mode.
  uint64_t io_wait_ns() const { return io_wait_ns_; }

  /// Time-ledger category the measured overlap waits are reattributed to
  /// (DESIGN.md §20). Default io_wait, which keeps the ledger bucket equal
  /// to io_wait_ns(); channel spills set shuffle_wait because the park is
  /// part of the connector transfer, not a storage-layer wait.
  void set_wait_category(TimeCategory c) { wait_category_ = c; }

 private:
  RunFileWriter(std::unique_ptr<WritableFile> file, WorkerMetrics* metrics,
                OverlapRuntime* overlap)
      : file_(std::move(file)), metrics_(metrics), overlap_(overlap) {}

  std::unique_ptr<WritableFile> file_;
  WorkerMetrics* metrics_;
  OverlapRuntime* overlap_;
  WriteBehindQueue::Ticket ticket_;
  bool finished_ = false;
  uint64_t num_blocks_ = 0;
  uint64_t bytes_appended_ = 0;
  uint64_t io_wait_ns_ = 0;
  TimeCategory wait_category_ = TimeCategory::kIoWait;
};

/// Sequential reader over a run file.
class RunFileReader {
 public:
  static Status Open(const std::string& path, WorkerMetrics* metrics,
                     std::unique_ptr<RunFileReader>* out) {
    return Open(path, metrics, /*overlap=*/nullptr, out);
  }
  static Status Open(const std::string& path, WorkerMetrics* metrics,
                     OverlapRuntime* overlap,
                     std::unique_ptr<RunFileReader>* out);
  ~RunFileReader();

  /// Reads the next block into *out (resized). Returns NotFound at EOF.
  Status NextBlock(std::string* out);

  /// Restarts from the beginning (abandoning any read-ahead).
  void Reset();

  bool AtEnd() const { return offset_ >= file_->size(); }

  /// Foreground ns this reader spent blocked waiting for a prefetched
  /// block. 0 in synchronous mode.
  uint64_t io_wait_ns() const { return io_wait_ns_; }

  /// See RunFileWriter::set_wait_category.
  void set_wait_category(TimeCategory c) { wait_category_ = c; }

 private:
  RunFileReader(std::unique_ptr<RandomAccessFile> file, WorkerMetrics* metrics,
                OverlapRuntime* overlap)
      : file_(std::move(file)), metrics_(metrics), overlap_(overlap) {}

  /// Reads the length-prefixed block at `offset` into `*out` and sets
  /// `*next_offset` past it. Runs on the prefetch worker (or inline when
  /// synchronous).
  Status ReadBlockAt(uint64_t offset, std::string* out,
                     uint64_t* next_offset);
  /// Queues the read-ahead of the block at offset_.
  void IssuePrefetch();
  /// Abandons an outstanding read-ahead (Reset / destruction).
  void CancelPrefetch();

  std::unique_ptr<RandomAccessFile> file_;
  WorkerMetrics* metrics_;
  OverlapRuntime* overlap_;
  uint64_t offset_ = 0;

  // Double-buffer state. The foreground owns ahead_valid_/issued_offset_;
  // the prefetch worker writes ahead_/ahead_next_, published by Await.
  PrefetchPool::Slot slot_;
  bool ahead_valid_ = false;
  uint64_t issued_offset_ = 0;
  std::string ahead_;
  uint64_t ahead_next_ = 0;
  uint64_t io_wait_ns_ = 0;
  TimeCategory wait_category_ = TimeCategory::kIoWait;
};

}  // namespace pregelix

#endif  // PREGELIX_IO_RUN_FILE_H_
