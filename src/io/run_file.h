#ifndef PREGELIX_IO_RUN_FILE_H_
#define PREGELIX_IO_RUN_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/metrics.h"
#include "common/slice.h"
#include "common/status.h"
#include "io/file.h"

namespace pregelix {

/// Sequential file of length-prefixed blocks (dataflow frames).
///
/// Run files back everything that is "temporary local data" in the paper:
/// sort runs, the per-partition Msg relation, and sender-side materialized
/// connector channels. Blocks are typically whole frames.
class RunFileWriter {
 public:
  static Status Open(const std::string& path, WorkerMetrics* metrics,
                     std::unique_ptr<RunFileWriter>* out);

  Status AppendBlock(const Slice& block);
  Status Finish();

  uint64_t num_blocks() const { return num_blocks_; }
  uint64_t bytes_written() const { return file_->size(); }
  const std::string& path() const { return file_->path(); }

 private:
  explicit RunFileWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<WritableFile> file_;
  uint64_t num_blocks_ = 0;
};

/// Sequential reader over a run file.
class RunFileReader {
 public:
  static Status Open(const std::string& path, WorkerMetrics* metrics,
                     std::unique_ptr<RunFileReader>* out);

  /// Reads the next block into *out (resized). Returns NotFound at EOF.
  Status NextBlock(std::string* out);

  /// Restarts from the beginning.
  void Reset() { offset_ = 0; }

  bool AtEnd() const { return offset_ >= file_->size(); }

 private:
  explicit RunFileReader(std::unique_ptr<RandomAccessFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<RandomAccessFile> file_;
  uint64_t offset_ = 0;
};

}  // namespace pregelix

#endif  // PREGELIX_IO_RUN_FILE_H_
