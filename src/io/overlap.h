#ifndef PREGELIX_IO_OVERLAP_H_
#define PREGELIX_IO_OVERLAP_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

// I/O / compute overlap layer (DESIGN.md §19 "Overlapped pipeline").
//
// Two small background workers owned by the SimulatedCluster (never
// process-global):
//
//  - PrefetchPool: one thread servicing read-ahead requests for
//    RunFileReader, so the loser-tree merge and the Msg-relation scan refill
//    the next block while the consumer is still chewing on the previous one.
//
//  - WriteBehindQueue: one thread draining a bounded, byte-budgeted FIFO of
//    append jobs for RunFileWriter (sort spills, checkpoint snapshots,
//    channel materializations) and LSM component flushes. Per-client
//    Tickets order completion: WaitTicket() is the per-file drain barrier
//    every commit point (checkpoint MANIFEST, LSM CURRENT) sits behind, and
//    Drain() is the whole-queue barrier the checkpoint manifest write takes
//    belt-and-suspenders.
//
// Lock ranks: kOverlapPrefetch (22) and kOverlapWriteBehind (24) sit above
// kChannel (20) because FrameChannel spills enqueue/await under its own
// lock. The workers drop the queue lock before touching files, so fault
// injection (60) and metrics (70) never nest under an overlap lock the
// foreground also holds.
//
// A drain that blocks longer than the stall-warn window journals a
// `pipeline.stall` event (DESIGN.md §15).

namespace pregelix {

class MetricsRegistry;

/// Background read-ahead worker. Each reader owns one Slot; the closure it
/// schedules performs the actual read into reader-owned buffers, so the
/// pool never touches file state itself.
class PrefetchPool {
 public:
  /// Per-reader request state. All fields are guarded by the pool mutex;
  /// the owning reader must Cancel() (or Await()) before destroying it.
  struct Slot {
    enum class State { kIdle, kQueued, kRunning, kReady };
    State state = State::kIdle;
    std::function<Status()> fn;
    Status status;
  };

  PrefetchPool();
  ~PrefetchPool();

  PrefetchPool(const PrefetchPool&) = delete;
  PrefetchPool& operator=(const PrefetchPool&) = delete;

  /// Queues a read-ahead. The slot must be kIdle.
  void Schedule(Slot* slot, std::function<Status()> fn);

  /// Blocks until the slot's request completes, returns its status, and
  /// resets the slot to kIdle. A request already kReady on entry counts as
  /// a prefetch hit; `*wait_ns` (optional) receives the ns spent blocked.
  Status Await(Slot* slot, uint64_t* wait_ns = nullptr);

  /// Abandons an outstanding or completed request (counts it as wasted).
  /// Blocks only if the request is mid-read on the worker. No-op on kIdle.
  void Cancel(Slot* slot);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  uint64_t wasted() const { return wasted_.load(std::memory_order_relaxed); }

 private:
  void WorkerLoop();

  mutable Mutex mu_{"overlap_prefetch", LockRank::kOverlapPrefetch};
  CondVar cv_;
  std::deque<Slot*> queue_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> wasted_{0};
  std::thread worker_;
};

/// Background write-behind worker: a byte-budgeted FIFO of append/flush
/// jobs. One thread preserves per-file write order; per-client Tickets
/// latch the first error (later jobs on a failed ticket are skipped, the
/// way a synchronous writer stops appending after an error).
class WriteBehindQueue {
 public:
  /// Per-client completion tracker. Guarded by the queue mutex; the owner
  /// must WaitTicket() before destroying it or anything its jobs touch.
  struct Ticket {
    uint64_t pending = 0;
    Status error;
  };

  WriteBehindQueue(size_t budget_bytes, uint64_t stall_warn_ns);
  ~WriteBehindQueue();

  WriteBehindQueue(const WriteBehindQueue&) = delete;
  WriteBehindQueue& operator=(const WriteBehindQueue&) = delete;

  /// Queues a job owning `bytes` of the byte budget. Blocks while the queue
  /// is over budget (a write-behind stall; counted, and added to
  /// `*stall_ns` if given) — except that an oversized job is admitted alone
  /// so budgets smaller than one block cannot wedge. `fn` runs on the
  /// worker thread; its status latches into the ticket.
  void Enqueue(Ticket* ticket, size_t bytes, std::function<Status()> fn,
               uint64_t* stall_ns = nullptr);

  /// Blocks until every job enqueued against `ticket` has completed, then
  /// returns-and-clears the ticket's first error. The per-file drain
  /// barrier. `*wait_ns` (optional) receives the ns spent blocked.
  Status WaitTicket(Ticket* ticket, uint64_t* wait_ns = nullptr);

  /// Blocks until the whole queue is empty and no job is in flight — the
  /// commit-point barrier. Job errors stay latched in their tickets.
  /// `where` names the barrier in the `pipeline.stall` journal event.
  void Drain(const char* where);

  uint64_t queue_bytes() const {
    return queue_bytes_mirror_.load(std::memory_order_relaxed);
  }
  uint64_t stall_count() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  void WorkerLoop();
  /// Journals `pipeline.stall` if `waited_ns` exceeds the warn window.
  void MaybeJournalStall(const char* where, uint64_t waited_ns) const;

  const size_t budget_;
  const uint64_t stall_warn_ns_;
  mutable Mutex mu_{"overlap_writebehind", LockRank::kOverlapWriteBehind};
  CondVar cv_;
  struct Job {
    Ticket* ticket = nullptr;
    size_t bytes = 0;
    std::function<Status()> fn;
  };
  std::deque<Job> queue_ GUARDED_BY(mu_);
  size_t queue_bytes_ GUARDED_BY(mu_) = 0;
  bool in_flight_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> queue_bytes_mirror_{0};
  std::atomic<uint64_t> stalls_{0};
  std::thread worker_;
};

/// The overlap runtime a SimulatedCluster owns when `ClusterConfig::overlap`
/// is enabled: the prefetch pool, the write-behind queue, and the
/// observability glue. Consumers receive a nullable OverlapRuntime* — null
/// means strictly synchronous I/O (the phase-serial baseline).
class OverlapRuntime {
 public:
  /// `stall_warn_ns` is the drain watchdog window: a barrier blocking
  /// longer journals `pipeline.stall`.
  explicit OverlapRuntime(size_t writebehind_budget_bytes,
                          uint64_t stall_warn_ns = 500'000'000);

  PrefetchPool& prefetch() { return prefetch_; }
  WriteBehindQueue& writebehind() { return writebehind_; }
  uint64_t stall_warn_ns() const { return stall_warn_ns_; }

  /// Sets the pregelix.io.* gauges from the live counters (called from
  /// SimulatedCluster::PublishMetrics).
  void PublishMetrics(MetricsRegistry* registry) const;

 private:
  const uint64_t stall_warn_ns_;
  PrefetchPool prefetch_;
  WriteBehindQueue writebehind_;
};

}  // namespace pregelix

#endif  // PREGELIX_IO_OVERLAP_H_
