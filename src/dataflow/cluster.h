#ifndef PREGELIX_DATAFLOW_CLUSTER_H_
#define PREGELIX_DATAFLOW_CLUSTER_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "buffer/buffer_cache.h"
#include "common/config.h"
#include "common/metrics.h"
#include "common/metrics_registry.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/trace.h"
#include "io/overlap.h"

namespace pregelix {

/// The simulated shared-nothing cluster (DESIGN.md substitution #1).
///
/// One SimulatedCluster owns N "worker machines": each worker has its own
/// scratch directory (its local disks), its own buffer cache sized from the
/// configured worker RAM (paper: 1/4 of physical RAM for access methods),
/// and its own resource meter. Dataflow partitions map to workers with a
/// fixed round-robin map — the analog of Hyracks' absolute location
/// constraints, which Pregelix uses for sticky iterative scheduling.
class SimulatedCluster {
 public:
  explicit SimulatedCluster(const ClusterConfig& config);
  ~SimulatedCluster();

  SimulatedCluster(const SimulatedCluster&) = delete;
  SimulatedCluster& operator=(const SimulatedCluster&) = delete;

  const ClusterConfig& config() const { return config_; }
  int num_workers() const { return config_.num_workers; }
  int num_partitions() const { return config_.num_partitions(); }

  int worker_of_partition(int partition) const {
    return partition % config_.num_workers;
  }

  // The per-worker accessors hand out references that tasks hold for a
  // whole job, so they cannot ride workers_mutex_; their contract is that
  // FailWorker (the only mutator) never runs concurrently with a job on
  // the same worker — the fault-tolerance driver fails workers between
  // superstep jobs. Metrics/stat scrapes (PublishMetrics, SnapshotAll) may
  // run at any time and therefore do take the lock.
  WorkerMetrics& metrics(int worker) NO_THREAD_SAFETY_ANALYSIS {
    return *workers_[worker]->metrics;
  }
  BufferCache& cache(int worker) NO_THREAD_SAFETY_ANALYSIS {
    return *workers_[worker]->cache;
  }
  const std::string& worker_dir(int worker) const NO_THREAD_SAFETY_ANALYSIS {
    return workers_[worker]->dir;
  }

  /// Observability sinks (from ClusterConfig, falling back to the process
  /// globals). Never null.
  Tracer* tracer() const { return tracer_; }
  MetricsRegistry* registry() const { return registry_; }

  /// The overlap runtime (DESIGN.md §19): prefetch + write-behind worker
  /// threads shared by every job on this cluster. Null when the cluster was
  /// configured with OverlapMode::kOff — callers pass the pointer through
  /// to run files / channels / the LSM, all of which treat null as
  /// "strictly synchronous I/O".
  OverlapRuntime* overlap() const { return overlap_.get(); }

  /// Publishes per-worker counters (cost-model meters and buffer-cache
  /// hit/miss/eviction/writeback) into the registry as labeled gauges.
  /// Called before a metrics export; cheap enough to call repeatedly.
  void PublishMetrics();

  /// Scratch directory for one partition (under its worker's disks).
  std::string partition_dir(int partition) const;

  /// Per-worker counter snapshot, for cost-model deltas at superstep
  /// boundaries.
  std::vector<MetricsSnapshot> SnapshotAll() const;

  /// Simulated failure (paper Section 5.5): wipes the worker's local state
  /// so recovery must reload from the checkpoint. The worker's scratch is
  /// recreated empty.
  Status FailWorker(int worker);

  /// Unique id generator for scratch file names.
  uint64_t NextFileId() { return next_file_id_.fetch_add(1); }

 private:
  struct Worker {
    std::unique_ptr<WorkerMetrics> metrics;
    std::unique_ptr<BufferCache> cache;
    std::string dir;
  };

  ClusterConfig config_;
  Tracer* tracer_ = nullptr;
  MetricsRegistry* registry_ = nullptr;
  /// Guards the worker table against FailWorker's cache replacement racing
  /// a concurrent metrics scrape. The vector itself is fixed after
  /// construction; the lock covers the per-worker cache pointer swap.
  mutable Mutex workers_mutex_{"cluster", LockRank::kCluster};
  std::vector<std::unique_ptr<Worker>> workers_ GUARDED_BY(workers_mutex_);
  std::atomic<uint64_t> next_file_id_{0};
  /// Declared last: destroyed first, so its worker threads (which touch
  /// worker files and metrics) stop before the workers they serve die.
  std::unique_ptr<OverlapRuntime> overlap_;
};

}  // namespace pregelix

#endif  // PREGELIX_DATAFLOW_CLUSTER_H_
