#ifndef PREGELIX_DATAFLOW_EXECUTOR_H_
#define PREGELIX_DATAFLOW_EXECUTOR_H_

#include "common/status.h"
#include "dataflow/cluster.h"
#include "dataflow/job.h"
#include "dataflow/plan_profile.h"

namespace pregelix {

/// Executes a dataflow job on the simulated cluster and blocks until it
/// finishes. Admission first runs the static plan verifier
/// (dataflow/plan_verifier.h) against the cluster's budgets: an invalid
/// plan is rejected with InvalidArgument carrying the multi-line diagnostic
/// and never starts executing. Every (operator, partition) clone then runs
/// on its own thread, like Hyracks tasks; connectors move frames through
/// FrameChannels. On the first task failure the job aborts: the shared
/// abort flag unblocks all channel waits and the first error is returned.
///
/// `runtime_context` is passed through to every TaskContext (the per-job
/// state hook used by the Pregelix layer).
///
/// `profile`, when non-null, turns on plan profiling for this job: the
/// executor initializes it from the spec, hands each task its
/// (operator, partition) slot, meters every connector edge, times each
/// activation, and finalizes the tree (skew + critical path) before
/// returning. Null costs nothing beyond one pointer test per site.
Status RunJob(SimulatedCluster& cluster, const JobSpec& spec,
              void* runtime_context = nullptr, PlanProfile* profile = nullptr);

}  // namespace pregelix

#endif  // PREGELIX_DATAFLOW_EXECUTOR_H_
