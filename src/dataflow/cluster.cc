#include "dataflow/cluster.h"

#include "common/logging.h"
#include "common/temp_dir.h"

namespace pregelix {

SimulatedCluster::SimulatedCluster(const ClusterConfig& config)
    : config_(config.Derive()),
      tracer_(config.tracer != nullptr ? config.tracer : &Tracer::Global()),
      registry_(config.metrics_registry != nullptr ? config.metrics_registry
                                                   : &MetricsRegistry::Global()) {
  PREGELIX_CHECK(!config_.temp_root.empty())
      << "ClusterConfig.temp_root must be set";
  PREGELIX_CHECK(config_.num_workers > 0);
  for (int w = 0; w < config_.num_workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->dir = config_.temp_root + "/worker-" + std::to_string(w);
    PREGELIX_CHECK(EnsureDir(worker->dir));
    worker->metrics = std::make_unique<WorkerMetrics>();
    worker->cache = std::make_unique<BufferCache>(
        config_.page_size, config_.buffer_cache_pages, worker->metrics.get());
    worker->cache->SetObservability(tracer_, registry_, w);
    workers_.push_back(std::move(worker));
  }
  if (config_.overlap_enabled()) {
    overlap_ = std::make_unique<OverlapRuntime>(config_.writebehind_budget_bytes);
    for (auto& worker : workers_) {
      worker->cache->SetOverlap(overlap_.get());
    }
  }
}

SimulatedCluster::~SimulatedCluster() {
  // Members destroy in reverse declaration order, so the overlap runtime
  // (and its pool threads) dies before the workers' caches — settle every
  // in-flight read-ahead and detach while the pool is still alive.
  if (overlap_ != nullptr) {
    MutexLock lock(&workers_mutex_);
    for (auto& worker : workers_) {
      worker->cache->DetachOverlap();
    }
  }
}

std::string SimulatedCluster::partition_dir(int partition) const
    NO_THREAD_SAFETY_ANALYSIS {
  // Reads only the worker dir string, fixed at construction.
  return workers_[worker_of_partition(partition)]->dir + "/p" +
         std::to_string(partition);
}

std::vector<MetricsSnapshot> SimulatedCluster::SnapshotAll() const {
  MutexLock lock(&workers_mutex_);
  std::vector<MetricsSnapshot> out;
  out.reserve(workers_.size());
  for (const auto& worker : workers_) {
    out.push_back(worker->metrics->Snapshot());
  }
  return out;
}

void SimulatedCluster::PublishMetrics() {
  MutexLock lock(&workers_mutex_);
  for (size_t w = 0; w < workers_.size(); ++w) {
    const Worker& worker = *workers_[w];
    const MetricsSnapshot snap = worker.metrics->Snapshot();
    const MetricLabels labels{{"worker", std::to_string(w)}};
    registry_->GetGauge("pregelix.worker.cpu_ops", labels)
        ->Set(static_cast<int64_t>(snap.cpu_ops));
    registry_->GetGauge("pregelix.worker.disk_read_bytes", labels)
        ->Set(static_cast<int64_t>(snap.disk_read_bytes));
    registry_->GetGauge("pregelix.worker.disk_write_bytes", labels)
        ->Set(static_cast<int64_t>(snap.disk_write_bytes));
    registry_->GetGauge("pregelix.worker.disk_seeks", labels)
        ->Set(static_cast<int64_t>(snap.disk_seeks));
    registry_->GetGauge("pregelix.worker.net_bytes", labels)
        ->Set(static_cast<int64_t>(snap.net_bytes));
    registry_->GetGauge("pregelix.worker.overlap_io_bytes", labels)
        ->Set(static_cast<int64_t>(snap.overlap_io_bytes));
    worker.cache->PublishMetrics(registry_);
  }
  if (overlap_ != nullptr) overlap_->PublishMetrics(registry_);
}

Status SimulatedCluster::FailWorker(int worker) {
  PREGELIX_CHECK(worker >= 0 && worker < num_workers());
  MutexLock lock(&workers_mutex_);
  Worker& w = *workers_[worker];
  // Drop the buffer cache (all open files and cached pages die with the
  // machine), then wipe and recreate its scratch directory.
  w.cache = std::make_unique<BufferCache>(
      config_.page_size, config_.buffer_cache_pages, w.metrics.get());
  w.cache->SetObservability(tracer_, registry_, worker);
  if (overlap_ != nullptr) w.cache->SetOverlap(overlap_.get());
  RemoveAll(w.dir);
  if (!EnsureDir(w.dir)) {
    return Status::IoError("cannot recreate worker dir " + w.dir);
  }
  return Status::OK();
}

}  // namespace pregelix
